# Build/test entry points for the lsopc repository.
#
#   make build   - compile every package and command
#   make test    - full test suite (tier-1 gate)
#   make race    - race-detector run over the parallel execution layers
#   make vet     - static analysis
#   make bench   - the headline benchmarks behind the Table II claims
#   make trace   - instrumented run + JSONL trace validation (tracecheck)
#   make benchjson - regenerate the "after" entry of BENCH_batchfft.json
#   make check   - build + vet + test + race, the pre-commit bundle

GO ?= go

.PHONY: all build test race vet bench benchjson benchsessions trace check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages whose correctness depends on goroutine scheduling: the
# engine worker pool, the batched FFT passes, the litho paths that fan
# kernels/corners across workers, the session runtime (pool + banks),
# the observability layer (shared sinks, atomic metrics), and the root
# package's concurrent-pipeline equivalence and trace-integrity tests.
race:
	$(GO) test -race ./internal/engine ./internal/fft ./internal/litho ./internal/core ./internal/rt ./internal/obs .

# One instrumented benchmark run; fails if the emitted JSONL trace is
# malformed or missing any event family of the taxonomy (DESIGN.md §9).
trace:
	$(GO) run ./cmd/lsopc -preset test -case B1 -iters 3 -tracefile /tmp/lsopc-trace.jsonl
	$(GO) run ./cmd/tracecheck -require iteration,corner,plan_cache,pool,span /tmp/lsopc-trace.jsonl

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench 'BenchmarkTable2PerCase|BenchmarkAerialExact|BenchmarkAerialFused|BenchmarkGradient$$|BenchmarkBatch' -benchmem ./...

benchjson:
	$(GO) run ./cmd/benchjson -label after

# Concurrent-session throughput (layouts/sec at 1, 2, NumCPU sessions)
# versus the dedicated-pipeline-per-job architecture.
benchsessions:
	$(GO) run ./cmd/benchjson -sessions -label after

check: build vet test race
