# Build/test entry points for the lsopc repository.
#
#   make build   - compile every package and command
#   make test    - full test suite (tier-1 gate)
#   make race    - race-detector run over the parallel execution layers
#   make vet     - static analysis
#   make bench   - the headline benchmarks behind the Table II claims,
#               then regenerate BENCH_multires.json (full-res float64
#               vs coarse-to-fine float32) and BENCH_tiled.json
#               (monolithic vs tiled full-chip), both gated by benchdiff
#   make trace   - instrumented runs (single-window and tiled, the tiled
#               one with the -serve live endpoint attached) + JSONL
#               trace validation (tracecheck) + analytics (tracestats)
#               + Chrome/Perfetto timeline export + the live-telemetry
#               end-to-end smoke (SSE + /runs during a tiled run) and
#               the chrome-export golden test
#   make benchjson - regenerate the "after" entry of BENCH_batchfft.json
#   make benchgate - benchdiff smoke gate: identical inputs pass, a
#               synthetically inflated copy must fail
#   make ci      - build + vet + gofmt hygiene + test, the CI bundle
#   make check   - build + vet + test + race, the pre-commit bundle

GO ?= go

.PHONY: all build test race vet fmtcheck ci bench benchjson benchsessions trace benchgate check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages whose correctness depends on goroutine scheduling: the
# engine worker pool, the batched FFT passes, the litho paths that fan
# kernels/corners across workers, the session runtime (pool + banks),
# the observability layer (shared sinks, atomic metrics), and the root
# package's concurrent-pipeline equivalence and trace-integrity tests.
race:
	$(GO) test -race ./internal/engine ./internal/fft ./internal/litho ./internal/core ./internal/pixelilt ./internal/rt ./internal/obs ./internal/obs/recorder ./internal/solve ./internal/tiling .

# Instrumented benchmark runs; fails if an emitted JSONL trace is
# malformed, missing any event family of the taxonomy (DESIGN.md §9),
# carries an unknown event kind (-strict) or violates the per-run
# invariants (run ids everywhere, per-run monotonic iterations), then
# prints the tracestats analytics report over the same trace. The tiled
# leg runs with -serve attached (flag smoke: server up for the whole
# run, graceful shutdown after) and its trace is exported to a
# Chrome/Perfetto timeline. The final leg is the live-telemetry e2e
# smoke — a tiled run observed over real HTTP must show per-tile
# progress on /runs and stream SSE events while in flight — plus the
# chrome-export golden-fixture test. The closing leg is the flight-
# recorder drill: a -poison-tile run must abort, leave a postmortem
# bundle with a resumable checkpoint under -flight-dir, emit a strict-
# valid capture event in its trace, and the bundle must be readable by
# tracestats -bundle.
trace:
	$(GO) run ./cmd/lsopc -preset test -case B1 -iters 3 -health -tracefile /tmp/lsopc-trace.jsonl
	$(GO) run ./cmd/tracecheck -strict -require iteration,corner,plan_cache,pool,span /tmp/lsopc-trace.jsonl
	$(GO) run ./cmd/tracestats /tmp/lsopc-trace.jsonl
	$(GO) run ./cmd/benchgen -dir /tmp/lsopc-bench -chip 2x2 -cells B1,B4
	$(GO) run ./cmd/lsopc -preset test -glp /tmp/lsopc-bench/chip_2x2.glp -tiled -halo 256 -iters 3 -health -serve 127.0.0.1:0 -tracefile /tmp/lsopc-trace-tiled.jsonl
	$(GO) run ./cmd/tracecheck -strict -require tile_start,tile_done,iteration,span /tmp/lsopc-trace-tiled.jsonl
	$(GO) run ./cmd/tracestats /tmp/lsopc-trace-tiled.jsonl
	$(GO) run ./cmd/tracestats -chrome /tmp/lsopc-trace-tiled.chrome.json /tmp/lsopc-trace-tiled.jsonl
	$(GO) test -count=1 -run 'TestLiveServerStreamsTiledRun' .
	$(GO) test -count=1 -run 'TestWriteChromeTrace' ./internal/obs/analyze
	rm -rf /tmp/lsopc-flight
	@if $(GO) run ./cmd/lsopc -preset test -glp /tmp/lsopc-bench/chip_2x2.glp -tiled -halo 256 -iters 3 -health -poison-tile 1 -flight-dir /tmp/lsopc-flight -tracefile /tmp/lsopc-trace-poison.jsonl; then \
		echo "trace: poisoned tiled run did NOT abort"; exit 1; \
	else \
		echo "trace: poisoned tile correctly aborted the run"; \
	fi
	@for f in manifest.json events.jsonl goroutines.txt heap.pb.gz checkpoint.ckpt metrics.txt; do \
		if ! test -s /tmp/lsopc-flight/*/$$f; then \
			echo "trace: bundle is missing $$f"; exit 1; \
		fi; \
	done; echo "trace: postmortem bundle is complete"
	$(GO) run ./cmd/tracecheck -strict -require tile_start,iteration,health,capture /tmp/lsopc-trace-poison.jsonl
	$(GO) run ./cmd/tracestats -bundle /tmp/lsopc-flight/*

# Perf-regression smoke gate: two quick benchmark passes into one
# artefact, benchdiff must pass the file against itself and must FAIL
# against a copy with 25% inflated metrics (proving the gate trips).
# The multires leg measures one Table II case in both variants and
# requires the coarse-to-fine float32 path to be no slower than the
# full-resolution float64 reference — the speedup is enforced, not
# merely recorded. The tiled leg measures a 2x2 cell-array chip
# monolithic vs tiled; the 0.67 threshold is the issue's >= 0.6·N
# speedup bound at N=1 worker (tiled <= monolithic/0.6), so on any
# N-worker host the gate only gets easier to clear.
benchgate:
	$(GO) run ./cmd/benchjson -bench BatchFFT -label r1 -o /tmp/lsopc-benchgate.json
	$(GO) run ./cmd/benchjson -bench BatchFFT -label r2 -o /tmp/lsopc-benchgate.json
	$(GO) run ./cmd/benchdiff /tmp/lsopc-benchgate.json /tmp/lsopc-benchgate.json
	$(GO) run ./cmd/benchdiff -inflate 1.25 -o /tmp/lsopc-benchgate-slow.json /tmp/lsopc-benchgate.json
	@if $(GO) run ./cmd/benchdiff -q /tmp/lsopc-benchgate.json /tmp/lsopc-benchgate-slow.json; then \
		echo "benchgate: inflated copy was NOT flagged as a regression"; exit 1; \
	else \
		echo "benchgate: regression correctly detected on the inflated copy"; \
	fi
	$(GO) run ./cmd/benchjson -multires -bench B4 -o /tmp/lsopc-benchgate-multires.json
	$(GO) run ./cmd/benchdiff -old-labels baseline -new-labels multires /tmp/lsopc-benchgate-multires.json /tmp/lsopc-benchgate-multires.json
	$(GO) run ./cmd/benchjson -tiled -o /tmp/lsopc-benchgate-tiled.json
	$(GO) run ./cmd/benchdiff -old-labels monolithic -new-labels tiled -threshold 0.67 /tmp/lsopc-benchgate-tiled.json /tmp/lsopc-benchgate-tiled.json

vet:
	$(GO) vet ./...

# Source-hygiene gate: gofmt must have nothing to reformat. gofmt -l
# exits 0 even when files need formatting, so the target fails on any
# output instead.
fmtcheck:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to reformat:"; echo "$$out"; exit 1; \
	fi

# The CI bundle: static analysis + formatting hygiene + tier-1 build and
# tests. GitHub Actions (.github/workflows/ci.yml) runs this target plus
# the heavier race/trace/benchgate legs.
ci: build vet fmtcheck test

bench:
	$(GO) test -run xxx -bench 'BenchmarkTable2PerCase|BenchmarkAerialExact|BenchmarkAerialFused|BenchmarkGradient$$|BenchmarkBatch' -benchmem ./...
	$(GO) run ./cmd/benchjson -multires
	$(GO) run ./cmd/benchdiff -old-labels baseline -new-labels multires BENCH_multires.json BENCH_multires.json
	$(GO) run ./cmd/benchjson -tiled
	$(GO) run ./cmd/benchdiff -old-labels monolithic -new-labels tiled -threshold 0.67 BENCH_tiled.json BENCH_tiled.json

benchjson:
	$(GO) run ./cmd/benchjson -label after

# Concurrent-session throughput (layouts/sec at 1, 2, NumCPU sessions)
# versus the dedicated-pipeline-per-job architecture.
benchsessions:
	$(GO) run ./cmd/benchjson -sessions -label after

check: build vet test race
