// Top-level benchmarks: one per table/figure of the paper plus the
// micro-benchmarks behind the §III-E acceleration claims. Run with
//
//	go test -bench=. -benchmem
//
// Table/figure benches execute at PresetTest scale so the suite finishes
// in minutes; cmd/tables regenerates the full-scale artefacts.
package lsopc_test

import (
	"testing"

	"lsopc"
	"lsopc/internal/experiments"
	"lsopc/internal/litho"
)

// BenchmarkTable1 runs the complete Table I pipeline (four baselines +
// the level-set method, optimize and evaluate) on one benchmark.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Run(experiments.Options{
			Preset:    lsopc.PresetTest,
			Cases:     []string{"B4"},
			IterScale: 0.2,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2PerCase measures the Table II quantity directly: one
// level-set optimization wall time per engine.
func BenchmarkTable2PerCase(b *testing.B) {
	for _, eng := range []*lsopc.Engine{lsopc.CPUEngine(), lsopc.GPUEngine()} {
		b.Run(eng.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.EngineRuntime(lsopc.PresetTest, "B4", eng, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig1Measurement regenerates the Fig. 1 metric illustration
// (corner prints, PV band, EPE probes).
func BenchmarkFig1Measurement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1Measurement(lsopc.PresetTest, "B1"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Evolution regenerates the Fig. 2 evolution snapshots.
func BenchmarkFig2Evolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2Evolution(lsopc.PresetTest, "B4", 10, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCGvsGD runs the contribution-(ii) convergence ablation.
func BenchmarkCGvsGD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CGvsGD(lsopc.PresetTest, "B4", 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCombinedKernel measures the Eq. 17 fused-kernel ablation.
func BenchmarkCombinedKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CombinedKernelAblation(lsopc.PresetTest, "B4", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPVBWeightSweep runs the w_pvb trade-off ablation.
func BenchmarkPVBWeightSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PVBWeightSweep(lsopc.PresetTest, "B4", []float64{0, 0.6}, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks behind the §III-E acceleration claims ---

func newBenchPipeline(b *testing.B, eng *lsopc.Engine) *lsopc.Pipeline {
	b.Helper()
	pipe, err := lsopc.NewPipeline(lsopc.PresetTest, eng)
	if err != nil {
		b.Fatal(err)
	}
	return pipe
}

// BenchmarkAerialExact measures the exact K-kernel SOCS forward pass.
func BenchmarkAerialExact(b *testing.B) {
	pipe := newBenchPipeline(b, lsopc.GPUEngine())
	target, err := pipe.Target(lsopc.Benchmark("B4"))
	if err != nil {
		b.Fatal(err)
	}
	sim := pipe.Simulator()
	spec := sim.MaskSpectrum(target)
	out := &lsopc.Field{W: target.W, H: target.H, Data: make([]float64, len(target.Data))}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Aerial(out, spec, litho.Nominal)
	}
}

// BenchmarkAerialFused measures the Eq. 17 single-convolution forward.
func BenchmarkAerialFused(b *testing.B) {
	pipe := newBenchPipeline(b, lsopc.GPUEngine())
	target, err := pipe.Target(lsopc.Benchmark("B4"))
	if err != nil {
		b.Fatal(err)
	}
	sim := pipe.Simulator()
	spec := sim.MaskSpectrum(target)
	out := &lsopc.Field{W: target.W, H: target.H, Data: make([]float64, len(target.Data))}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.AerialFast(out, spec, litho.Nominal)
	}
}

// BenchmarkGradient measures one full forward+adjoint corner evaluation,
// the inner loop of every optimizer iteration.
func BenchmarkGradient(b *testing.B) {
	pipe := newBenchPipeline(b, lsopc.GPUEngine())
	target, err := pipe.Target(lsopc.Benchmark("B4"))
	if err != nil {
		b.Fatal(err)
	}
	sim := pipe.Simulator()
	spec := sim.MaskSpectrum(target)
	n := sim.GridSize()
	grad := &lsopc.Field{W: n, H: n, Data: make([]float64, n*n)}
	imgs := litho.NewCornerImages(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grad.Zero()
		sim.ForwardAndGradient(grad, spec, litho.Nominal, target, imgs, 1)
	}
}

// BenchmarkEvaluate measures the contest metric checkers.
func BenchmarkEvaluate(b *testing.B) {
	pipe := newBenchPipeline(b, lsopc.GPUEngine())
	layout := lsopc.Benchmark("B4")
	target, err := pipe.Target(layout)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Evaluate(layout, target, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaskComplexity runs the §I manufacturability study.
func BenchmarkMaskComplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MaskComplexityStudy(lsopc.PresetTest, "B4", 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHybridFlow runs the rule-based / ILT / warm-started-ILT
// comparison with MRC checking.
func BenchmarkHybridFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HybridStudy(lsopc.PresetTest, "B4", 6); err != nil {
			b.Fatal(err)
		}
	}
}
