// Command benchdiff is the statistical perf-regression gate over the
// BENCH_*.json artefacts cmd/benchjson writes. It aggregates each
// benchmark's metric across the selected runs of two files (min-of-N by
// default, median with -stat median), applies a noise-aware
// relative-epsilon rule, and exits non-zero when any benchmark
// regressed — so CI enforces the perf trajectory instead of archiving
// it.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -threshold 0.15 -stat median old.json new.json
//	benchdiff -old-labels seed -new-labels after BENCH_batchfft.json BENCH_batchfft.json
//	benchdiff -json old.json new.json
//	benchdiff -inflate 1.25 -o slow.json base.json   # CI fixture: synthetic slowdown
//
// Exit status: 0 = no regressions, 1 = at least one regression,
// 2 = usage or input error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"lsopc/internal/benchfmt"
)

func main() {
	var (
		metric    = flag.String("metric", benchfmt.MetricNsPerOp, "measurement to compare: ns_per_op|bytes_per_op|allocs_per_op")
		stat      = flag.String("stat", benchfmt.StatMin, "aggregate across runs: min|median")
		oldLabels = flag.String("old-labels", "", "comma-separated run labels to use from the old file (default: all)")
		newLabels = flag.String("new-labels", "", "comma-separated run labels to use from the new file (default: all)")
		threshold = flag.Float64("threshold", 0.10, "relative noise allowance: regression when new > old*(1+threshold)")
		minDelta  = flag.Float64("min-delta", 0, "absolute metric-unit floor below which a difference never regresses")
		jsonOut   = flag.Bool("json", false, "emit the comparison as JSON")
		quiet     = flag.Bool("q", false, "suppress the per-benchmark table (verdict line only)")
		inflate   = flag.Float64("inflate", 0, "fixture mode: scale every metric of the input file by this factor and write it to -o")
		inflOut   = flag.String("o", "", "output path for -inflate")
	)
	flag.Parse()

	if *inflate != 0 {
		if flag.NArg() != 1 || *inflOut == "" {
			fmt.Fprintln(os.Stderr, "usage: benchdiff -inflate FACTOR -o out.json in.json")
			os.Exit(2)
		}
		f, err := benchfmt.Load(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if err := f.Inflate(*inflate).Save(*inflOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: wrote %s (metrics ×%g)\n", *inflOut, *inflate)
		return
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] old.json new.json")
		flag.PrintDefaults()
		os.Exit(2)
	}
	oldF, err := benchfmt.Load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newF, err := benchfmt.Load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	res, err := benchfmt.Compare(oldF, newF, benchfmt.CompareOptions{
		Metric:    *metric,
		Stat:      *stat,
		OldLabels: splitLabels(*oldLabels),
		NewLabels: splitLabels(*newLabels),
		Threshold: *threshold,
		MinDelta:  *minDelta,
	})
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	} else {
		if !*quiet {
			printTable(res)
		}
		verdict := "ok"
		if res.Regressions > 0 {
			verdict = fmt.Sprintf("%d regression(s)", res.Regressions)
		}
		fmt.Printf("benchdiff: %s (%s of %s, threshold +%.1f%%)\n",
			verdict, res.Stat, res.Metric, 100*res.Threshold)
	}
	if res.Regressions > 0 {
		os.Exit(1)
	}
}

func printTable(res *benchfmt.Result) {
	fmt.Printf("%-32s %14s %14s %8s\n", "benchmark", "old "+res.Metric, "new "+res.Metric, "ratio")
	for _, d := range res.Deltas {
		switch {
		case d.OnlyOld:
			fmt.Printf("%-32s %14.0f %14s %8s  (removed)\n", d.Name, d.Old, "-", "-")
		case d.OnlyNew:
			fmt.Printf("%-32s %14s %14.0f %8s  (added)\n", d.Name, "-", d.New, "-")
		default:
			mark := ""
			if d.Regression {
				mark = "  REGRESSION"
			}
			fmt.Printf("%-32s %14.0f %14.0f %8.3f%s\n", d.Name, d.Old, d.New, d.Ratio, mark)
		}
	}
}

func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
