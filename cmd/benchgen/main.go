// Command benchgen writes the synthetic ICCAD-2013-style benchmark
// layouts (B1…B10) as GLP text files, optionally with PGM previews.
// With -chip it instead composes benchmark cells into an NxM cell-array
// chip layout — the multi-window inputs for lsopc -tiled.
//
// Usage:
//
//	benchgen -dir bench/             # writes B1.glp … B10.glp
//	benchgen -dir bench/ -pgm        # also writes raster previews
//	benchgen -dir bench/ -chip 2x2   # writes chip_2x2.glp (cells cycle B1…B10)
//	benchgen -dir bench/ -chip 3x2 -cells B1,B4,B5
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lsopc/internal/gds"
	"lsopc/internal/geom"
	"lsopc/internal/layouts"
	"lsopc/internal/render"
)

func main() {
	var (
		dir    = flag.String("dir", "benchmarks", "output directory")
		pgm    = flag.Bool("pgm", false, "also write 512-px PGM previews")
		gdsOut = flag.Bool("gds", false, "also write GDSII streams")
		chip   = flag.String("chip", "", "compose an NxM cell-array chip layout instead (e.g. 2x2)")
		cells  = flag.String("cells", "", "comma-separated cell ids for -chip, \"-\" = empty slot (default: cycle through B1…B10)")
	)
	flag.Parse()

	var err error
	if *chip != "" {
		err = runChip(*dir, *chip, *cells, *pgm, *gdsOut)
	} else {
		err = run(*dir, *pgm, *gdsOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

// runChip writes one composed cell-array chip layout.
func runChip(dir, spec, cellList string, pgm, gdsOut bool) error {
	nx, ny, err := parseChipSpec(spec)
	if err != nil {
		return err
	}
	var ids []string
	if cellList != "" {
		for _, id := range strings.Split(cellList, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	l, err := layouts.Chip(nx, ny, ids)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, l.Name+".glp")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := geom.WriteGLP(f, l); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%s: %dx%d nm, area %d nm², %d shapes → %s\n",
		l.Name, l.W, l.H, l.Area(), l.ShapeCount(), path)

	if pgm {
		raster, err := geom.Rasterize(l, 8)
		if err != nil {
			return err
		}
		if err := render.SavePGM(filepath.Join(dir, l.Name+".pgm"), raster, 0, 1); err != nil {
			return err
		}
	}
	if gdsOut {
		gf, err := os.Create(filepath.Join(dir, l.Name+".gds"))
		if err != nil {
			return err
		}
		if err := gds.Write(gf, l); err != nil {
			gf.Close()
			return err
		}
		if err := gf.Close(); err != nil {
			return err
		}
	}
	return nil
}

// parseChipSpec parses "NxM" into a positive cell-array shape.
func parseChipSpec(s string) (nx, ny int, err error) {
	if n, _ := fmt.Sscanf(strings.ToLower(s), "%dx%d", &nx, &ny); n != 2 || nx < 1 || ny < 1 {
		return 0, 0, fmt.Errorf("invalid -chip %q, want NxM (e.g. 2x2)", s)
	}
	return nx, ny, nil
}

func run(dir string, pgm, gdsOut bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, spec := range layouts.All() {
		l, err := spec.Build()
		if err != nil {
			return err
		}
		path := filepath.Join(dir, spec.ID+".glp")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := geom.WriteGLP(f, l); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%-4s area %7d nm², %2d shapes → %s\n", spec.ID, l.Area(), l.ShapeCount(), path)

		if pgm {
			raster, err := geom.Rasterize(l, 4) // 512-px preview
			if err != nil {
				return err
			}
			pgmPath := filepath.Join(dir, spec.ID+".pgm")
			if err := render.SavePGM(pgmPath, raster, 0, 1); err != nil {
				return err
			}
		}
		if gdsOut {
			gf, err := os.Create(filepath.Join(dir, spec.ID+".gds"))
			if err != nil {
				return err
			}
			if err := gds.Write(gf, l); err != nil {
				gf.Close()
				return err
			}
			if err := gf.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
