// Command benchgen writes the synthetic ICCAD-2013-style benchmark
// layouts (B1…B10) as GLP text files, optionally with PGM previews.
//
// Usage:
//
//	benchgen -dir bench/           # writes B1.glp … B10.glp
//	benchgen -dir bench/ -pgm      # also writes raster previews
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lsopc/internal/gds"
	"lsopc/internal/geom"
	"lsopc/internal/layouts"
	"lsopc/internal/render"
)

func main() {
	var (
		dir    = flag.String("dir", "benchmarks", "output directory")
		pgm    = flag.Bool("pgm", false, "also write 512-px PGM previews")
		gdsOut = flag.Bool("gds", false, "also write GDSII streams")
	)
	flag.Parse()

	if err := run(*dir, *pgm, *gdsOut); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(dir string, pgm, gdsOut bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, spec := range layouts.All() {
		l, err := spec.Build()
		if err != nil {
			return err
		}
		path := filepath.Join(dir, spec.ID+".glp")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := geom.WriteGLP(f, l); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%-4s area %7d nm², %2d shapes → %s\n", spec.ID, l.Area(), l.ShapeCount(), path)

		if pgm {
			raster, err := geom.Rasterize(l, 4) // 512-px preview
			if err != nil {
				return err
			}
			pgmPath := filepath.Join(dir, spec.ID+".pgm")
			if err := render.SavePGM(pgmPath, raster, 0, 1); err != nil {
				return err
			}
		}
		if gdsOut {
			gf, err := os.Create(filepath.Join(dir, spec.ID+".gds"))
			if err != nil {
				return err
			}
			if err := gds.Write(gf, l); err != nil {
				gf.Close()
				return err
			}
			if err := gf.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
