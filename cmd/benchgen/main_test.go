package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunWritesAllBenchmarks(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, true, true); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"B1", "B5", "B10"} {
		if _, err := os.Stat(filepath.Join(dir, id+".glp")); err != nil {
			t.Errorf("%s.glp missing: %v", id, err)
		}
		if _, err := os.Stat(filepath.Join(dir, id+".pgm")); err != nil {
			t.Errorf("%s.pgm missing: %v", id, err)
		}
		if _, err := os.Stat(filepath.Join(dir, id+".gds")); err != nil {
			t.Errorf("%s.gds missing: %v", id, err)
		}
	}
}

func TestRunChipWritesComposedLayout(t *testing.T) {
	dir := t.TempDir()
	if err := runChip(dir, "2x2", "B1, B4", false, false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "chip_2x2.glp")); err != nil {
		t.Fatalf("chip_2x2.glp missing: %v", err)
	}
	if err := runChip(dir, "2", "", false, false); err == nil {
		t.Fatal("malformed -chip spec accepted")
	}
	if err := runChip(dir, "2x0", "", false, false); err == nil {
		t.Fatal("zero-row chip accepted")
	}
	if err := runChip(dir, "2x2", "B99", false, false); err == nil {
		t.Fatal("unknown cell accepted")
	}
}

func TestRunFailsOnUnwritableDir(t *testing.T) {
	if err := run("/proc/definitely/not/writable", false, false); err == nil {
		t.Fatal("unwritable dir accepted")
	}
}
