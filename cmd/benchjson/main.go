// Command benchjson runs the performance benchmarks behind the batched
// FFT / concurrent-corner work and merges the results into a JSON
// artefact (BENCH_batchfft.json by default), keyed by a run label so
// before/after measurements live side by side:
//
//	go run ./cmd/benchjson -label after
//	go run ./cmd/benchjson -label seed -o BENCH_batchfft.json
//	go run ./cmd/benchjson -sessions -label after
//	go run ./cmd/benchjson -tiled        # full-chip monolithic vs tiled
//
// Each benchmark is executed with the standard testing.Benchmark driver,
// so ns/op, B/op, and allocs/op match `go test -bench` output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"lsopc"
	"lsopc/internal/benchfmt"
	"lsopc/internal/engine"
	"lsopc/internal/experiments"
	"lsopc/internal/fft"
	"lsopc/internal/grid"
	"lsopc/internal/litho"
)

// The artefact schema (File/Run/Measurement) lives in internal/benchfmt,
// shared with cmd/benchdiff so the regression gate reads exactly what
// this command writes.

func main() {
	out := flag.String("o", "", "output JSON file (merged in place)")
	label := flag.String("label", "", "run label, e.g. seed or after (required)")
	note := flag.String("note", "", "free-form note stored with the run")
	filter := flag.String("bench", "", "substring filter on benchmark names")
	sessions := flag.Bool("sessions", false, "measure concurrent-session throughput instead (BENCH_sessions.json)")
	multires := flag.Bool("multires", false, "measure Table II per-case runtime, full-res float64 vs coarse-to-fine float32 (BENCH_multires.json)")
	tiled := flag.Bool("tiled", false, "measure full-chip runtime, monolithic window vs tiled overlap-halo optimization (BENCH_tiled.json)")
	tracePath := flag.String("tracefile", "", "write a structured JSONL event trace of the sessions sweep to this file")
	metrics := flag.Bool("metrics", false, "store the full flat metrics snapshot with the run (sessions mode)")
	recorder := flag.Bool("recorder", false, "tee a flight recorder into the sweep's trace path to measure its emit overhead (sessions mode)")
	flag.Parse()
	if *multires {
		// Labels are fixed ("baseline"/"multires"): the artefact compares
		// the two variants against each other, not runs over time.
		if *out == "" {
			*out = "BENCH_multires.json"
		}
		multiresMain(*out, *note, *filter)
		return
	}
	if *tiled {
		// Labels are fixed ("monolithic"/"tiled") for the same reason.
		if *out == "" {
			*out = "BENCH_tiled.json"
		}
		tiledMain(*out, *note, *filter)
		return
	}
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}
	if *sessions {
		if *out == "" {
			*out = "BENCH_sessions.json"
		}
		sessionsMain(*out, *label, *note, *tracePath, *metrics, *recorder)
		return
	}
	if *out == "" {
		*out = "BENCH_batchfft.json"
	}

	benches := benchmarks()
	run := benchfmt.Run{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note:       *note,
		Benchmarks: map[string]benchfmt.Measurement{},
	}
	for _, b := range benches {
		if *filter != "" && !strings.Contains(b.name, *filter) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %-28s ", b.name)
		r := testing.Benchmark(b.fn)
		m := benchfmt.Measurement{
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
		run.Benchmarks[b.name] = m
		fmt.Fprintf(os.Stderr, "%12d ns/op %8d B/op %5d allocs/op (n=%d)\n",
			m.NsPerOp, m.BytesPerOp, m.AllocsPerOp, m.Iterations)
	}

	file := benchfmt.File{
		Description: "Benchmarks for the batched kernel-parallel FFT execution and concurrent process-corner simulation. Labels: seed = before the change, after = with batched/banded FFT paths.",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Runs:        map[string]benchfmt.Run{},
	}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not valid JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if file.Runs == nil {
		file.Runs = map[string]benchfmt.Run{}
	}
	file.Runs[*label] = run

	if err := file.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (label %q, %d benchmarks)\n", *out, *label, len(run.Benchmarks))
}

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// benchmarks mirrors the top-level bench_test.go definitions that the
// acceptance numbers are quoted from, plus FFT micro-benchmarks for the
// batched plan itself.
func benchmarks() []namedBench {
	return []namedBench{
		{"Table2PerCase/cpu", benchTable2(lsopc.CPUEngine())},
		{"Table2PerCase/gpu", benchTable2(lsopc.GPUEngine())},
		{"AerialExact", benchAerial(false)},
		{"AerialFused", benchAerial(true)},
		{"Gradient", benchGradient},
		{"BatchFFT/forward8x128", benchBatchForward},
		{"BatchFFT/inverseBanded8x128", benchBatchInverseBanded},
	}
}

func benchTable2(eng *lsopc.Engine) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.EngineRuntime(lsopc.PresetTest, "B4", eng, 10); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchPipeline(b *testing.B) (*lsopc.Pipeline, *lsopc.Field, *grid.CField) {
	pipe, err := lsopc.NewPipeline(lsopc.PresetTest, lsopc.GPUEngine())
	if err != nil {
		b.Fatal(err)
	}
	target, err := pipe.Target(lsopc.Benchmark("B4"))
	if err != nil {
		b.Fatal(err)
	}
	return pipe, target, pipe.Simulator().MaskSpectrum(target)
}

func benchAerial(fused bool) func(b *testing.B) {
	return func(b *testing.B) {
		pipe, target, spec := benchPipeline(b)
		sim := pipe.Simulator()
		out := grid.NewField(target.W, target.H)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if fused {
				sim.AerialFast(out, spec, litho.Nominal)
			} else {
				sim.Aerial(out, spec, litho.Nominal)
			}
		}
	}
}

func benchGradient(b *testing.B) {
	pipe, target, spec := benchPipeline(b)
	sim := pipe.Simulator()
	n := sim.GridSize()
	grad := grid.NewField(n, n)
	imgs := litho.NewCornerImages(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grad.Zero()
		sim.ForwardAndGradient(grad, spec, litho.Nominal, target, imgs, 1)
	}
}

const (
	fftBatch = 8
	fftSize  = 128
	fftBand  = 28 // matches the kernel box radius at PresetTest scale
)

func newFFTBatch() []*grid.CField {
	fields := make([]*grid.CField, fftBatch)
	for i := range fields {
		f := grid.NewCField(fftSize, fftSize)
		for j := range f.Data {
			f.Data[j] = complex(float64(j%17)*0.25, float64(j%13)*-0.5)
		}
		fields[i] = f
	}
	return fields
}

func benchBatchForward(b *testing.B) {
	p := fft.NewBatchPlan2D(fftSize, fftSize, engine.New("bench", runtime.NumCPU()))
	fields := newFFTBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.BatchForward(fields)
	}
}

func benchBatchInverseBanded(b *testing.B) {
	p := fft.NewBatchPlan2D(fftSize, fftSize, engine.New("bench", runtime.NumCPU()))
	fields := newFFTBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.BatchInverseBanded(fields, fftBand)
	}
}
