package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"lsopc"
	"lsopc/internal/benchfmt"
)

// multiresMain measures the Table II per-case optimization runtime for
// the full-resolution float64 reference and the coarse-to-fine float32
// fast path, writing both into one artefact under the fixed labels
// "baseline" and "multires". The same file then gates the speedup:
//
//	benchdiff -old-labels baseline -new-labels multires \
//	    BENCH_multires.json BENCH_multires.json
//
// exits non-zero if the fast path is ever slower than the reference —
// the schedule's quality equivalence is enforced separately by
// TestMultiResMatchesBaselineQuality (EPE/PVB within tolerance on all
// ten benchmarks).
func multiresMain(out, note, filter string) {
	const maxIter = 10 // matches the Table2PerCase measurements in BENCH_batchfft.json

	basePipe, err := lsopc.NewPipeline(lsopc.PresetTest, lsopc.GPUEngine())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fastPipe, err := lsopc.NewPipeline(lsopc.PresetTest, lsopc.GPUEngine(), lsopc.WithPrecision(lsopc.Float32))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	baseOpts := lsopc.DefaultLevelSetOptions()
	baseOpts.MaxIter = maxIter
	fastOpts := baseOpts
	fastOpts.MultiResFactor = 2

	variants := []struct {
		label string
		pipe  *lsopc.Pipeline
		opts  lsopc.LevelSetOptions
		note  string
	}{
		{"baseline", basePipe, baseOpts, "full-resolution float64 reference (the PR 1 batched path)"},
		{"multires", fastPipe, fastOpts, "coarse-to-fine factor 2 + float32 batches; " + note},
	}

	file := benchfmt.File{
		Description: "Table II per-case optimization runtime (PresetTest, 10 iterations): full-resolution float64 baseline vs coarse-to-fine multi-resolution with float32 spectral batches. Quality equivalence (final EPE/PVB within tolerance on all ten ICCAD cases) is enforced by TestMultiResMatchesBaselineQuality; this artefact locks in the speed side via cmd/benchdiff (-old-labels baseline -new-labels multires).",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Runs:        map[string]benchfmt.Run{},
	}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not valid JSON: %v\n", out, err)
			os.Exit(1)
		}
	}
	if file.Runs == nil {
		file.Runs = map[string]benchfmt.Run{}
	}

	runs := make([]benchfmt.Run, len(variants))
	for i, v := range variants {
		runs[i] = benchfmt.Run{
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			Note:       v.note,
			Benchmarks: map[string]benchfmt.Measurement{},
		}
	}
	// Variants interleave per case (baseline then multires back to back)
	// so slow thermal/host drift across the sweep cannot masquerade as a
	// variant difference.
	for _, spec := range lsopc.Benchmarks() {
		name := "Table2PerCase/" + spec.ID
		if filter != "" && !strings.Contains(name, filter) {
			continue
		}
		layout := lsopc.Benchmark(spec.ID)
		for i, v := range variants {
			pipe, opts := v.pipe, v.opts
			fmt.Fprintf(os.Stderr, "running %-10s %-22s ", v.label, name)
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := pipe.OptimizeLevelSet(layout, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			m := benchfmt.Measurement{
				NsPerOp:     r.NsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				Iterations:  r.N,
			}
			runs[i].Benchmarks[name] = m
			fmt.Fprintf(os.Stderr, "%12d ns/op (n=%d)\n", m.NsPerOp, m.Iterations)
		}
	}
	for i, v := range variants {
		file.Runs[v.label] = runs[i]
	}

	if err := file.Save(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (labels baseline+multires)\n", out)
}
