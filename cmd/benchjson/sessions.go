package main

// Concurrent-throughput mode (-sessions): how many full level-set
// optimization jobs per second the runtime sustains across the ten
// ICCAD benchmarks, comparing
//
//   - dedicated-pipelines — the pre-session architecture: every job
//     synthesises its own SOCS kernel banks and allocates fresh
//     simulator scratch (what N duplicated Pipelines used to cost);
//   - sessions/1, sessions/2, sessions/N — one shared resource bank with
//     1, 2, and NumCPU concurrent sessions leasing pooled scratch, the
//     jobs fanned across goroutines on an Engine.Split partition.
//
// Every mode runs the identical core optimization (same schedule, same
// iteration budget), so the delta is purely the resource architecture.
// Results land in BENCH_sessions.json keyed by run label.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"lsopc"
	"lsopc/internal/core"
	"lsopc/internal/grid"
	"lsopc/internal/litho"
	"lsopc/internal/obs"
	"lsopc/internal/optics"
)

// SessionsMeasurement is one throughput mode's outcome. The metrics map
// holds per-mode observability rates derived from the default registry:
// pool_hit_rate (pool leases served from the free list), plan_cache_hit_rate
// (FFT plan lookups served from cache) and worker_utilization (busy time
// per engine worker over the mode's wall time).
type SessionsMeasurement struct {
	Sessions      int                `json:"sessions"`
	Layouts       int                `json:"layouts"`
	ElapsedSec    float64            `json:"elapsed_sec"`
	LayoutsPerSec float64            `json:"layouts_per_sec"`
	Note          string             `json:"note,omitempty"`
	Metrics       map[string]float64 `json:"metrics,omitempty"`
}

// SessionsRun is one labelled sweep of all modes.
type SessionsRun struct {
	Timestamp  string                         `json:"timestamp"`
	GoMaxProcs int                            `json:"gomaxprocs"`
	NumCPU     int                            `json:"numcpu"`
	MaxIter    int                            `json:"max_iter"`
	Note       string                         `json:"note,omitempty"`
	Modes      map[string]SessionsMeasurement `json:"modes"`
	// Snapshot is the full flat dump of the default metrics registry at
	// the end of the sweep (-metrics only).
	Snapshot map[string]float64 `json:"metrics_snapshot,omitempty"`
}

// modeMetrics derives the per-mode observability rates from two registry
// snapshots bracketing the mode plus the engine's busy-time accumulator.
// workers is the mode's logical worker count (a sessions/k Split can run
// more logical workers than the root engine has), so utilization stays a
// fraction of the scheduled capacity even when oversubscribed.
func modeMetrics(before, after map[string]float64, wb *obs.WorkerBusy, wall time.Duration, workers int) map[string]float64 {
	d := func(k string) float64 { return after[k] - before[k] }
	m := map[string]float64{}
	if leases := d("rt.pool.leases"); leases > 0 {
		m["pool_hit_rate"] = d("rt.pool.reuses") / leases
	}
	if lookups := d("fft.plan_cache.hits") + d("fft.plan_cache.misses"); lookups > 0 {
		m["plan_cache_hit_rate"] = d("fft.plan_cache.hits") / lookups
	}
	if wb != nil && wall > 0 {
		m["worker_utilization"] = wb.UtilizationOver(wall, workers)
	}
	return m
}

// SessionsFile is the BENCH_sessions.json artefact.
type SessionsFile struct {
	Description string                 `json:"description"`
	GOOS        string                 `json:"goos"`
	GOARCH      string                 `json:"goarch"`
	Runs        map[string]SessionsRun `json:"runs"`
}

const sessionsMaxIter = 5

// optimizeJob is the unit of work every mode runs per layout: a full
// level-set optimization against the rasterised target.
func optimizeJob(sim *litho.Simulator, target *grid.Field) error {
	opts := core.DefaultOptions()
	opts.MaxIter = sessionsMaxIter
	opt, err := core.New(sim, target, opts)
	if err != nil {
		return err
	}
	defer opt.Release()
	_, err = opt.Run()
	return err
}

func sessionsMain(out, label, note, tracePath string, withSnapshot, withRecorder bool) {
	eng := lsopc.GPUEngine()
	// Per-worker busy-time accounting: Split sub-engines inherit the
	// accumulator with disjoint slots, so the sessions/k fan-out
	// attributes busy time to distinct workers. Sized for the widest
	// fan-out of the sweep — Sessions(k) keeps at least one worker per
	// sub-engine, so k can exceed the root worker count on small hosts.
	maxWorkers := eng.Workers()
	if n := runtime.NumCPU(); n > maxWorkers {
		maxWorkers = n
	}
	if maxWorkers < 2 {
		maxWorkers = 2 // the sweep always runs a sessions/2 mode
	}
	wb := obs.NewWorkerBusy(maxWorkers)
	eng.InstrumentBusy(wb)
	var popts []lsopc.PipelineOption
	var sinks []lsopc.TraceSink
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		sink := lsopc.NewJSONLTraceSink(f)
		sinks = append(sinks, sink)
		defer func() {
			lsopc.SetRuntimeTrace(nil)
			if err := lsopc.FlushTrace(sink); err != nil {
				fatal(err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "event trace written to %s\n", tracePath)
		}()
	}
	if withRecorder {
		// The recorder-enabled leg: every event also lands in the flight
		// recorder's per-run rings, so the throughput delta against the
		// plain legs is the recorder's hot-path cost. Bundles (if any)
		// go to a throwaway directory.
		dir, err := os.MkdirTemp("", "lsopc-flight-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		rec := lsopc.NewFlightRecorder(lsopc.FlightRecorderConfig{Dir: dir})
		defer rec.Close()
		sinks = append(sinks, rec)
		popts = append(popts, lsopc.WithFlightRecorder(rec))
	}
	if len(sinks) > 0 {
		tee := lsopc.TeeTraceSink(sinks...)
		lsopc.SetRuntimeTrace(tee)
		defer lsopc.SetRuntimeTrace(nil)
		popts = append(popts, lsopc.WithTraceSink(tee))
	}
	pipe, err := lsopc.NewPipeline(lsopc.PresetTest, eng, popts...)
	if err != nil {
		fatal(err)
	}
	defer pipe.Release()
	cfg := pipe.Simulator().Config()

	// Targets are rasterised once up front; every mode optimizes the
	// same images.
	specs := lsopc.Benchmarks()
	targets := make([]*grid.Field, len(specs))
	for i, s := range specs {
		t, err := pipe.Target(lsopc.Benchmark(s.ID))
		if err != nil {
			fatal(err)
		}
		targets[i] = t
	}

	run := SessionsRun{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		MaxIter:    sessionsMaxIter,
		Note:       note,
		Modes:      map[string]SessionsMeasurement{},
	}

	// Before: one dedicated pipeline per job, kernel banks re-derived
	// every time (bypassing the memoized bank cache via optics.NewBank).
	fmt.Fprintf(os.Stderr, "running %-24s ", "dedicated-pipelines")
	snap := lsopc.MetricsSnapshot()
	wb.Reset()
	start := time.Now()
	for i := range targets {
		nom, err := optics.NewBank(cfg.Optics, 0, eng)
		if err != nil {
			fatal(err)
		}
		def, err := optics.NewBank(cfg.Optics, cfg.DefocusNM, eng)
		if err != nil {
			fatal(err)
		}
		sim, err := litho.NewWithBanks(cfg, eng, nom, def)
		if err != nil {
			fatal(err)
		}
		err = optimizeJob(sim, targets[i])
		sim.Release()
		if err != nil {
			fatal(err)
		}
	}
	elapsed := time.Since(start)
	record(&run, "dedicated-pipelines", 1, len(targets), elapsed,
		"per-job kernel-bank synthesis and scratch (pre-session architecture)",
		modeMetrics(snap, lsopc.MetricsSnapshot(), wb, elapsed, eng.Workers()))

	// After: 1, 2, and NumCPU concurrent sessions over one shared bank.
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}
	for _, k := range counts {
		name := fmt.Sprintf("sessions/%d", k)
		fmt.Fprintf(os.Stderr, "running %-24s ", name)
		sessions, err := pipe.Sessions(k)
		if err != nil {
			fatal(err)
		}
		snap := lsopc.MetricsSnapshot()
		wb.Reset()
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, k)
		for w := 0; w < k; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(targets); i += k {
					if err := optimizeJob(sessions[w].Simulator(), targets[i]); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				fatal(err)
			}
		}
		for _, s := range sessions {
			s.Close()
		}
		logical := eng.Workers()
		if k > logical {
			logical = k
		}
		record(&run, name, k, len(targets), elapsed, "shared bank, pooled scratch",
			modeMetrics(snap, lsopc.MetricsSnapshot(), wb, elapsed, logical))
	}
	if withSnapshot {
		run.Snapshot = lsopc.MetricsSnapshot()
	}

	file := SessionsFile{
		Description: "Concurrent optimization throughput (layouts/sec over the ten ICCAD benchmarks at PresetTest scale, MaxIter=5). dedicated-pipelines re-derives kernel banks per job like the pre-session architecture; sessions/k runs k concurrent sessions over one shared resource bank.",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Runs:        map[string]SessionsRun{},
	}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not valid JSON: %v\n", out, err)
			os.Exit(1)
		}
	}
	if file.Runs == nil {
		file.Runs = map[string]SessionsRun{}
	}
	file.Runs[label] = run

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (label %q, %d modes)\n", out, label, len(run.Modes))
}

func record(run *SessionsRun, name string, k, layouts int, elapsed time.Duration, note string, metrics map[string]float64) {
	m := SessionsMeasurement{
		Sessions:      k,
		Layouts:       layouts,
		ElapsedSec:    elapsed.Seconds(),
		LayoutsPerSec: float64(layouts) / elapsed.Seconds(),
		Note:          note,
		Metrics:       metrics,
	}
	run.Modes[name] = m
	fmt.Fprintf(os.Stderr, "%8.2fs  %6.2f layouts/sec  pool-hit=%.0f%% util=%.0f%%\n",
		m.ElapsedSec, m.LayoutsPerSec, 100*metrics["pool_hit_rate"], 100*metrics["worker_utilization"])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
