package main

// Concurrent-throughput mode (-sessions): how many full level-set
// optimization jobs per second the runtime sustains across the ten
// ICCAD benchmarks, comparing
//
//   - dedicated-pipelines — the pre-session architecture: every job
//     synthesises its own SOCS kernel banks and allocates fresh
//     simulator scratch (what N duplicated Pipelines used to cost);
//   - sessions/1, sessions/2, sessions/N — one shared resource bank with
//     1, 2, and NumCPU concurrent sessions leasing pooled scratch, the
//     jobs fanned across goroutines on an Engine.Split partition.
//
// Every mode runs the identical core optimization (same schedule, same
// iteration budget), so the delta is purely the resource architecture.
// Results land in BENCH_sessions.json keyed by run label.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"lsopc"
	"lsopc/internal/core"
	"lsopc/internal/grid"
	"lsopc/internal/litho"
	"lsopc/internal/optics"
)

// SessionsMeasurement is one throughput mode's outcome.
type SessionsMeasurement struct {
	Sessions      int     `json:"sessions"`
	Layouts       int     `json:"layouts"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	LayoutsPerSec float64 `json:"layouts_per_sec"`
	Note          string  `json:"note,omitempty"`
}

// SessionsRun is one labelled sweep of all modes.
type SessionsRun struct {
	Timestamp  string                         `json:"timestamp"`
	GoMaxProcs int                            `json:"gomaxprocs"`
	NumCPU     int                            `json:"numcpu"`
	MaxIter    int                            `json:"max_iter"`
	Note       string                         `json:"note,omitempty"`
	Modes      map[string]SessionsMeasurement `json:"modes"`
}

// SessionsFile is the BENCH_sessions.json artefact.
type SessionsFile struct {
	Description string                 `json:"description"`
	GOOS        string                 `json:"goos"`
	GOARCH      string                 `json:"goarch"`
	Runs        map[string]SessionsRun `json:"runs"`
}

const sessionsMaxIter = 5

// optimizeJob is the unit of work every mode runs per layout: a full
// level-set optimization against the rasterised target.
func optimizeJob(sim *litho.Simulator, target *grid.Field) error {
	opts := core.DefaultOptions()
	opts.MaxIter = sessionsMaxIter
	opt, err := core.New(sim, target, opts)
	if err != nil {
		return err
	}
	defer opt.Release()
	_, err = opt.Run()
	return err
}

func sessionsMain(out, label, note string) {
	eng := lsopc.GPUEngine()
	pipe, err := lsopc.NewPipeline(lsopc.PresetTest, eng)
	if err != nil {
		fatal(err)
	}
	cfg := pipe.Simulator().Config()

	// Targets are rasterised once up front; every mode optimizes the
	// same images.
	specs := lsopc.Benchmarks()
	targets := make([]*grid.Field, len(specs))
	for i, s := range specs {
		t, err := pipe.Target(lsopc.Benchmark(s.ID))
		if err != nil {
			fatal(err)
		}
		targets[i] = t
	}

	run := SessionsRun{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		MaxIter:    sessionsMaxIter,
		Note:       note,
		Modes:      map[string]SessionsMeasurement{},
	}

	// Before: one dedicated pipeline per job, kernel banks re-derived
	// every time (bypassing the memoized bank cache via optics.NewBank).
	fmt.Fprintf(os.Stderr, "running %-24s ", "dedicated-pipelines")
	start := time.Now()
	for i := range targets {
		nom, err := optics.NewBank(cfg.Optics, 0, eng)
		if err != nil {
			fatal(err)
		}
		def, err := optics.NewBank(cfg.Optics, cfg.DefocusNM, eng)
		if err != nil {
			fatal(err)
		}
		sim, err := litho.NewWithBanks(cfg, eng, nom, def)
		if err != nil {
			fatal(err)
		}
		err = optimizeJob(sim, targets[i])
		sim.Release()
		if err != nil {
			fatal(err)
		}
	}
	record(&run, "dedicated-pipelines", 1, len(targets), time.Since(start),
		"per-job kernel-bank synthesis and scratch (pre-session architecture)")

	// After: 1, 2, and NumCPU concurrent sessions over one shared bank.
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}
	for _, k := range counts {
		name := fmt.Sprintf("sessions/%d", k)
		fmt.Fprintf(os.Stderr, "running %-24s ", name)
		sessions, err := pipe.Sessions(k)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, k)
		for w := 0; w < k; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(targets); i += k {
					if err := optimizeJob(sessions[w].Simulator(), targets[i]); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				fatal(err)
			}
		}
		for _, s := range sessions {
			s.Close()
		}
		record(&run, name, k, len(targets), elapsed, "shared bank, pooled scratch")
	}

	file := SessionsFile{
		Description: "Concurrent optimization throughput (layouts/sec over the ten ICCAD benchmarks at PresetTest scale, MaxIter=5). dedicated-pipelines re-derives kernel banks per job like the pre-session architecture; sessions/k runs k concurrent sessions over one shared resource bank.",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Runs:        map[string]SessionsRun{},
	}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not valid JSON: %v\n", out, err)
			os.Exit(1)
		}
	}
	if file.Runs == nil {
		file.Runs = map[string]SessionsRun{}
	}
	file.Runs[label] = run

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (label %q, %d modes)\n", out, label, len(run.Modes))
}

func record(run *SessionsRun, name string, k, layouts int, elapsed time.Duration, note string) {
	m := SessionsMeasurement{
		Sessions:      k,
		Layouts:       layouts,
		ElapsedSec:    elapsed.Seconds(),
		LayoutsPerSec: float64(layouts) / elapsed.Seconds(),
		Note:          note,
	}
	run.Modes[name] = m
	fmt.Fprintf(os.Stderr, "%8.2fs  %6.2f layouts/sec\n", m.ElapsedSec, m.LayoutsPerSec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
