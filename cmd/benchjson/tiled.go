package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"lsopc"
	"lsopc/internal/benchfmt"
	"lsopc/internal/layouts"
)

// tiledMain measures full-chip optimization wall time monolithic vs
// tiled on the same composed cell-array chip, writing both into one
// artefact under the fixed labels "monolithic" and "tiled". The
// monolithic variant simulates the whole chip in one window (a custom
// pipeline whose grid covers the chip); the tiled variant decomposes it
// into PresetTest-sized windows with an overlap halo and stitches the
// seams. The chip is sparse (25% cell occupancy, like real designs):
// that is where tiling wins even on one worker, because its work
// scales with the occupied windows — empty tiles are skipped — while
// the monolithic window pays full-grid FFTs for the whole canvas.
// Worker fan-out across tiles stacks on top of that on multi-core
// hosts. The same file then gates the scaling win:
//
//	benchdiff -old-labels monolithic -new-labels tiled \
//	    BENCH_tiled.json BENCH_tiled.json
//
// Quality parity between the two paths is enforced separately by
// TestTiledMatchesMonolithic (EPE/PVB on B1).
func tiledMain(out, note, filter string) {
	const (
		maxIter = 10 // matches the Table2PerCase measurements
		pitchNM = 16
		kernels = 4 // PresetTest optics
	)

	eng := lsopc.GPUEngine()
	// 4x4 cell array, 4 occupied slots scattered across it (the cycle
	// places B1/B4 at (0,0), (1,1), (0,2) and (1,3)).
	chip, err := layouts.Chip(4, 4, []string{"B1", "-", "-", "-", "-", "B4", "-", "-"})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	opts := lsopc.DefaultLevelSetOptions()
	opts.MaxIter = maxIter
	topts := lsopc.TileOptions{
		HaloNM:       256,
		Core:         opts,
		StitchPasses: 2,
		StitchIters:  4,
	}

	// One un-timed tiled run up front: verifies the decomposition is a
	// real multi-tile problem and captures its shape for the run notes.
	// The probe pipeline is released again so each timed variant below
	// runs with only its own pipeline resident (a chip-spanning bank
	// plus a tile bank at once would distort both via GC pressure).
	shape := ""
	{
		probePipe, err := lsopc.NewPipeline(lsopc.PresetTest, eng)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		probe, err := probePipe.OptimizeTiled(chip, topts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		probePipe.Release()
		if len(probe.Grid.Tiles) < 4 {
			fmt.Fprintf(os.Stderr, "benchjson: chip decomposes into %d tiles, want >= 4\n", len(probe.Grid.Tiles))
			os.Exit(1)
		}
		occupied := 0
		for _, st := range probe.Tiles {
			if !st.Empty {
				occupied++
			}
		}
		shape = fmt.Sprintf("%s: %dx%d nm, %dx%d tiles / %d non-empty (window %d nm, halo %d nm), %d workers",
			chip.Name, chip.W, chip.H, probe.Grid.NX, probe.Grid.NY, occupied,
			probe.Grid.WindowNM, probe.Grid.HaloNM, probe.Workers)
		fmt.Fprintln(os.Stderr, shape)
	}

	variants := []struct {
		label string
		note  string
		run   func() (func() error, func())
	}{
		{"monolithic", "one chip-spanning window; " + shape, func() (func() error, func()) {
			// Monolithic: one window spanning the whole chip.
			mono, err := lsopc.NewCustomPipeline(chip.W/pitchNM, pitchNM, kernels, eng)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			return func() error {
				_, err := mono.OptimizeLevelSet(chip, opts)
				return err
			}, mono.Release
		}},
		{"tiled", "OptimizeTiled with overlap-halo stitching; " + shape + "; " + note, func() (func() error, func()) {
			// Tiled: PresetTest windows (128 px = 2048 nm) over the chip.
			tiledPipe, err := lsopc.NewPipeline(lsopc.PresetTest, eng)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			return func() error {
				_, err := tiledPipe.OptimizeTiled(chip, topts)
				return err
			}, tiledPipe.Release
		}},
	}

	file := benchfmt.File{
		Description: "Full-chip optimization wall time (10 iterations) on a sparse 4x4 cell-array chip (4 occupied slots, like real designs): one monolithic chip-spanning simulation window vs parallel tiled optimization with overlap-halo stitching (window = PresetTest grid, empty tiles skipped). Seam quality parity is enforced by TestTiledMatchesMonolithic; this artefact locks in the tiled scaling via cmd/benchdiff (-old-labels monolithic -new-labels tiled).",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Runs:        map[string]benchfmt.Run{},
	}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not valid JSON: %v\n", out, err)
			os.Exit(1)
		}
	}
	if file.Runs == nil {
		file.Runs = map[string]benchfmt.Run{}
	}

	name := "FullChip/" + chip.Name
	if filter != "" && !strings.Contains(name, filter) {
		fmt.Fprintf(os.Stderr, "benchjson: filter %q excludes %s, nothing to do\n", filter, name)
		return
	}
	for _, v := range variants {
		fmt.Fprintf(os.Stderr, "running %-12s %-22s ", v.label, name)
		iter, release := v.run()
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := iter(); err != nil {
					b.Fatal(err)
				}
			}
		})
		release()
		runtime.GC()
		m := benchfmt.Measurement{
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
		file.Runs[v.label] = benchfmt.Run{
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			Note:       v.note,
			Benchmarks: map[string]benchfmt.Measurement{name: m},
		}
		fmt.Fprintf(os.Stderr, "%12d ns/op (n=%d)\n", m.NsPerOp, m.Iterations)
	}

	if err := file.Save(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (labels monolithic+tiled)\n", out)
}
