// Command evaluate measures a mask image against a target layout with
// the ICCAD 2013 contest checkers (#EPE, PV band, shape violations,
// score).
//
// Usage:
//
//	evaluate -case B4 -mask mask.pgm -preset fast
//	evaluate -glp design.glp -mask mask.pgm -rt 123  # score with a given runtime
//	evaluate -case B4                                 # evaluate the raw design itself
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lsopc"
	"lsopc/internal/render"
)

func main() {
	var (
		caseID    = flag.String("case", "B4", "benchmark id (B1…B10); ignored when -glp is set")
		glpPath   = flag.String("glp", "", "evaluate against a GLP layout file")
		maskPath  = flag.String("mask", "", "mask PGM to evaluate (default: the design itself)")
		presetStr = flag.String("preset", "fast", "simulation preset: test|fast|paper")
		rtSec     = flag.Float64("rt", 0, "runtime seconds to include in the score")
	)
	flag.Parse()

	if err := run(*caseID, *glpPath, *maskPath, *presetStr, *rtSec); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

func run(caseID, glpPath, maskPath, presetStr string, rtSec float64) error {
	preset, err := lsopc.ParsePreset(presetStr)
	if err != nil {
		return err
	}
	pipe, err := lsopc.NewPipeline(preset, lsopc.GPUEngine())
	if err != nil {
		return err
	}

	var layout *lsopc.Layout
	if glpPath != "" {
		layout, err = lsopc.LoadGLP(glpPath)
	} else {
		layout, err = lsopc.BenchmarkByID(caseID)
	}
	if err != nil {
		return err
	}

	var mask *lsopc.Field
	if maskPath != "" {
		loaded, err := render.LoadPGM(maskPath)
		if err != nil {
			return err
		}
		if loaded.W != pipe.GridSize() || loaded.H != pipe.GridSize() {
			return fmt.Errorf("mask %dx%d does not match the %s preset grid (%d px)",
				loaded.W, loaded.H, preset, pipe.GridSize())
		}
		bin := &lsopc.Field{W: loaded.W, H: loaded.H, Data: make([]float64, len(loaded.Data))}
		bin.Binarize(loaded)
		mask = bin
	} else {
		mask, err = pipe.Target(layout)
		if err != nil {
			return err
		}
		fmt.Println("no -mask given: evaluating the unoptimized design")
	}

	report, err := pipe.Evaluate(layout, mask, time.Duration(rtSec*float64(time.Second)))
	if err != nil {
		return err
	}
	fmt.Printf("layout %s (area %d nm²), preset %s\n", layout.Name, layout.Area(), preset)
	fmt.Println(report)
	return nil
}
