// Command lsopc optimizes one mask with the level-set ILT method (or a
// baseline) and reports the ICCAD 2013 contest metrics.
//
// Usage:
//
//	lsopc -case B4 -preset fast
//	lsopc -glp design.glp -preset fast -method MOSAIC_exact
//	lsopc -case B1 -iters 30 -pvb-weight 0.8 -out mask.pgm -ascii
//	lsopc -case B4 -tracefile run.jsonl          # structured event trace
//	lsopc -case B4 -metrics 127.0.0.1:6060       # live /metrics + pprof
//	lsopc -case B4 -serve 127.0.0.1:6060         # live /runs + SSE event stream
//	lsopc -glp chip.glp -tiled -tile-workers 4   # full-chip tiled run
//	lsopc -glp chip.glp -tiled -halo 320 -stitch-passes 3 -out chip.pgm
//	lsopc -case B4 -checkpoint run.ckpt          # Ctrl-C writes a resumable checkpoint
//	lsopc -case B4 -resume run.ckpt              # continue it bit-identically
//	lsopc -case B4 -health -flight-dir flight    # postmortem bundle on a watchdog abort
//	lsopc -glp chip.glp -tiled -health -poison-tile 1 -flight-dir flight  # forced abort drill
//
// Ctrl-C (SIGINT) cancels a run gracefully: the optimizer stops at the
// next iteration boundary, trace sinks are flushed, with -checkpoint
// the resumable state is written out, and the process exits with
// status 130.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"lsopc"
	"lsopc/internal/render"
)

// cliConfig carries every parsed flag.
type cliConfig struct {
	caseID      string
	glpPath     string
	preset      string
	method      string
	iters       int
	pvbWeight   float64
	serial      bool
	outPath     string
	outGLP      string
	ascii       bool
	trace       bool
	tracePath   string
	metricsAddr string
	serveAddr   string
	health      bool
	multires    int
	precision   string
	checkpoint  string
	resume      string

	tiled        bool
	halo         int
	tileWorkers  int
	stitchPasses int
	stitchIters  int

	flightDir  string
	poisonTile int
}

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.caseID, "case", "B4", "benchmark id (B1…B10); ignored when -glp is set")
	flag.StringVar(&cfg.glpPath, "glp", "", "optimize a GLP layout file instead of a benchmark")
	flag.StringVar(&cfg.preset, "preset", "fast", "simulation preset: test|fast|paper")
	flag.StringVar(&cfg.method, "method", "level-set", "optimizer: level-set|MOSAIC_fast|MOSAIC_exact|robust|PVOPC")
	flag.IntVar(&cfg.iters, "iters", 0, "override the method's iteration budget (0 = default)")
	flag.Float64Var(&cfg.pvbWeight, "pvb-weight", -1, "override w_pvb (negative = default)")
	flag.BoolVar(&cfg.serial, "serial", false, "run on the serial (CPU) engine instead of the parallel one")
	flag.StringVar(&cfg.outPath, "out", "", "write the optimized mask as a PGM file")
	flag.StringVar(&cfg.outGLP, "out-glp", "", "write the optimized mask geometry as a GLP file")
	flag.BoolVar(&cfg.ascii, "ascii", false, "print an ASCII preview of target vs printed image")
	flag.BoolVar(&cfg.trace, "trace", false, "print the per-iteration cost trace (level-set only)")
	flag.StringVar(&cfg.tracePath, "tracefile", "", "write a structured JSONL event trace (iterations, corner timings, plan-cache and pool events) to this file")
	flag.StringVar(&cfg.metricsAddr, "metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address for the duration of the run (e.g. 127.0.0.1:6060)")
	flag.StringVar(&cfg.serveAddr, "serve", "", "serve live run status on this address for the duration of the run: /runs, /runs/{id}, /runs/{id}/events (SSE), /healthz, plus the -metrics endpoints (e.g. :6060)")
	flag.BoolVar(&cfg.health, "health", false, "run the numerical-health watchdog (NaN/Inf, stall, divergence detection; aborts the run on an unhealthy iteration)")
	flag.IntVar(&cfg.multires, "multires", 1, "coarse-to-fine start factor (power of two): begin on a grid downsampled by this factor, halving each level; 1 = single resolution")
	flag.StringVar(&cfg.precision, "precision", "float64", "forward-model precision: float64 (bit-exact reference) | float32 (fast path)")
	flag.StringVar(&cfg.checkpoint, "checkpoint", "", "write a resumable checkpoint to this file when the run is cancelled (Ctrl-C)")
	flag.StringVar(&cfg.resume, "resume", "", "resume a cancelled run from this checkpoint file (options must match the original run)")

	flag.BoolVar(&cfg.tiled, "tiled", false, "full-chip tiled optimization: decompose the layout into overlapping tiles (the preset's grid is the tile window), optimize them concurrently and stitch the seams (level-set only)")
	flag.IntVar(&cfg.halo, "halo", 0, "tile overlap halo in nm (0 = derive from the SOCS kernel energy support)")
	flag.IntVar(&cfg.tileWorkers, "tile-workers", 0, "concurrent tile sessions (0 = one per engine worker)")
	flag.IntVar(&cfg.stitchPasses, "stitch-passes", 0, "max halo-stitching consistency passes (0 = default 2, negative = none)")
	flag.IntVar(&cfg.stitchIters, "stitch-iters", 0, "per-tile iteration budget inside a stitch pass (0 = max(4, iters/4))")

	flag.StringVar(&cfg.flightDir, "flight-dir", "", "enable the flight recorder: keep per-run event tails and write a postmortem bundle (event tail, goroutine/heap/CPU profiles, run snapshot, resumable checkpoint) under this directory when a run aborts or is cancelled")
	flag.IntVar(&cfg.poisonTile, "poison-tile", 0, "fault injection for testing the abort path: NaN-poison the Nth tile's target (1-based) so the health watchdog aborts it (requires -tiled and -health)")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "lsopc:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130) // conventional SIGINT exit status
		}
		os.Exit(1)
	}
}

// validateFlags rejects flag combinations before any resources are
// built: negative counts, and -tiled paired with options the tiled
// path ignores or cannot honour.
func validateFlags(cfg cliConfig) error {
	switch {
	case cfg.iters < 0:
		return fmt.Errorf("-iters must be ≥ 0, got %d", cfg.iters)
	case cfg.halo < 0:
		return fmt.Errorf("-halo must be ≥ 0 nm, got %d", cfg.halo)
	case cfg.tileWorkers < 0:
		return fmt.Errorf("-tile-workers must be ≥ 0, got %d", cfg.tileWorkers)
	case cfg.stitchIters < 0:
		return fmt.Errorf("-stitch-iters must be ≥ 0, got %d", cfg.stitchIters)
	case cfg.multires < 0:
		return fmt.Errorf("-multires must be ≥ 0, got %d", cfg.multires)
	case cfg.poisonTile < 0:
		return fmt.Errorf("-poison-tile must be ≥ 0, got %d", cfg.poisonTile)
	}
	if cfg.poisonTile != 0 && !cfg.health {
		return fmt.Errorf("-poison-tile requires -health: only the watchdog turns the injected NaN into an abort")
	}
	if cfg.tiled {
		switch {
		case cfg.method != "level-set":
			return fmt.Errorf("-tiled supports only the level-set method (got %q)", cfg.method)
		case cfg.ascii:
			return fmt.Errorf("-tiled ignores -ascii: the preview renders one simulation window, not a chip")
		case cfg.trace:
			return fmt.Errorf("-tiled ignores -trace: per-tile histories are not printed (use -tracefile)")
		case cfg.checkpoint != "" || cfg.resume != "":
			return fmt.Errorf("-tiled does not support -checkpoint/-resume: tiles restart from the blended consensus, re-run the pass instead")
		}
	} else {
		switch {
		case cfg.halo != 0:
			return fmt.Errorf("-halo requires -tiled")
		case cfg.tileWorkers != 0:
			return fmt.Errorf("-tile-workers requires -tiled")
		case cfg.stitchPasses != 0:
			return fmt.Errorf("-stitch-passes requires -tiled")
		case cfg.stitchIters != 0:
			return fmt.Errorf("-stitch-iters requires -tiled")
		case cfg.poisonTile != 0:
			return fmt.Errorf("-poison-tile requires -tiled")
		}
	}
	if cfg.checkpoint != "" && cfg.checkpoint == cfg.resume {
		return fmt.Errorf("-checkpoint and -resume name the same file %q; pick a fresh checkpoint path", cfg.checkpoint)
	}
	return nil
}

func run(cfg cliConfig) error {
	if err := validateFlags(cfg); err != nil {
		return err
	}
	preset, err := lsopc.ParsePreset(cfg.preset)
	if err != nil {
		return err
	}
	prec, err := lsopc.ParsePrecision(cfg.precision)
	if err != nil {
		return err
	}
	// SIGINT cancels the run at the next iteration boundary; a second
	// SIGINT (after stop() restores default handling) kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	eng := lsopc.GPUEngine()
	if cfg.serial {
		eng = lsopc.CPUEngine()
	}
	// shutdown gracefully stops an observability server on every exit
	// path — normal completion, errors, and the SIGINT cancel path all
	// reach the deferred call; active SSE streams are closed and any
	// late serve error is surfaced.
	shutdown := func(name string, s interface {
		Shutdown(context.Context) error
	}) {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := s.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "lsopc: %s shutdown: %v\n", name, err)
		}
	}
	if cfg.metricsAddr != "" {
		srv, err := lsopc.ServeMetrics(cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer shutdown("metrics endpoint", srv)
		fmt.Fprintf(os.Stderr, "metrics endpoint on http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr())
	}
	// Trace sinks: the JSONL file (-tracefile) and the live telemetry
	// feed (-serve) compose through one tee installed both as the
	// runtime sink and as the pipeline sink.
	var sinks []lsopc.TraceSink
	var flight *lsopc.FlightRecorder
	if cfg.serveAddr != "" {
		var lopts []lsopc.LiveOption
		if cfg.flightDir != "" {
			lopts = append(lopts, lsopc.WithFlightDir(cfg.flightDir))
		}
		live, err := lsopc.ServeLive(cfg.serveAddr, lopts...)
		if err != nil {
			return fmt.Errorf("live endpoint: %w", err)
		}
		defer shutdown("live endpoint", live)
		fmt.Fprintf(os.Stderr, "live status on http://%s/runs (SSE at /runs/{id}/events, metrics at /metrics)\n", live.Addr())
		sinks = append(sinks, live.Sink())
		flight = live.Recorder() // Sink() above already feeds its rings
	}
	if cfg.tracePath != "" {
		f, err := os.Create(cfg.tracePath)
		if err != nil {
			return err
		}
		sink := lsopc.NewJSONLTraceSink(f)
		sinks = append(sinks, sink)
		// The deferred flush runs on every exit path — a cancelled run's
		// trace (including its cancelled/checkpoint events) still lands
		// on disk. It runs after the tee's SetRuntimeTrace(nil) below
		// (LIFO), so no events race the flush+close.
		defer func() {
			if err := lsopc.FlushTrace(sink); err != nil {
				fmt.Fprintln(os.Stderr, "lsopc: trace flush:", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "event trace written to %s\n", cfg.tracePath)
		}()
	}
	if cfg.flightDir != "" && flight == nil {
		// Standalone flight recorder (no -serve): its capture events go
		// to whatever other sinks are attached, and the recorder itself
		// joins the tee so its per-run rings see every event.
		rec := lsopc.NewFlightRecorder(lsopc.FlightRecorderConfig{
			Dir:  cfg.flightDir,
			Sink: lsopc.TeeTraceSink(sinks...),
		})
		defer rec.Close()
		sinks = append(sinks, rec)
		flight = rec
	}
	if flight != nil {
		fmt.Fprintf(os.Stderr, "flight recorder armed: postmortem bundles under %s\n", cfg.flightDir)
	}
	var popts []lsopc.PipelineOption
	if flight != nil {
		popts = append(popts, lsopc.WithFlightRecorder(flight))
	}
	if len(sinks) > 0 {
		// Install as the runtime sink before the pipeline is built so
		// plan-cache and pool events from bank/session construction land
		// in the same stream as the optimizer's iteration events.
		tee := lsopc.TeeTraceSink(sinks...)
		lsopc.SetRuntimeTrace(tee)
		defer lsopc.SetRuntimeTrace(nil)
		popts = append(popts, lsopc.WithTraceSink(tee))
	}
	if cfg.health {
		popts = append(popts, lsopc.WithHealthPolicy(lsopc.DefaultHealthPolicy()))
	}
	if prec != lsopc.Float64 {
		popts = append(popts, lsopc.WithPrecision(prec))
	}
	pipe, err := lsopc.NewPipeline(preset, eng, popts...)
	if err != nil {
		return err
	}
	defer pipe.Release()

	layout, err := loadLayout(cfg.caseID, cfg.glpPath)
	if err != nil {
		return err
	}
	fmt.Printf("layout %s: %d shapes, pattern area %d nm²\n", layout.Name, layout.ShapeCount(), layout.Area())
	fmt.Printf("preset %s: %d px @ %g nm/px, engine %s\n", preset, pipe.GridSize(), pipe.PixelNM(), eng.Name())

	if cfg.tiled {
		return runTiled(ctx, pipe, layout, cfg)
	}

	var result *lsopc.RunResult
	switch cfg.method {
	case "level-set":
		opts := lsopc.DefaultLevelSetOptions()
		if cfg.iters > 0 {
			opts.MaxIter = cfg.iters
		}
		if cfg.pvbWeight >= 0 {
			opts.PVBWeight = cfg.pvbWeight
		}
		opts.MultiResFactor = cfg.multires
		if cfg.resume != "" {
			var cp *lsopc.Checkpoint
			if cp, err = loadCheckpoint(cfg.resume); err != nil {
				return err
			}
			result, err = pipe.ResumeLevelSet(ctx, layout, opts, cp)
		} else {
			result, err = pipe.OptimizeLevelSetContext(ctx, layout, opts)
		}
	case "MOSAIC_fast", "MOSAIC_exact", "robust", "PVOPC":
		opts := lsopc.DefaultBaselineOptions(parseVariant(cfg.method))
		if cfg.iters > 0 {
			opts.MaxIter = cfg.iters
		}
		if cfg.pvbWeight >= 0 {
			opts.PVBWeight = cfg.pvbWeight
		}
		opts.MultiResFactor = cfg.multires
		if cfg.resume != "" {
			var cp *lsopc.Checkpoint
			if cp, err = loadCheckpoint(cfg.resume); err != nil {
				return err
			}
			result, err = pipe.ResumeBaseline(ctx, layout, opts, cp)
		} else {
			result, err = pipe.OptimizeBaselineContext(ctx, layout, opts)
		}
	default:
		return fmt.Errorf("unknown method %q", cfg.method)
	}
	if err != nil {
		return handleCancelled(err, cfg.checkpoint)
	}

	fmt.Printf("method %s finished in %v\n", result.Method, result.Elapsed.Round(1e6))
	switch {
	case result.LevelSet != nil && result.LevelSet.Aborted:
		fmt.Printf("health watchdog ABORTED the run at iteration %d: %s\n",
			result.LevelSet.Iterations, result.LevelSet.AbortReason)
	case result.Baseline != nil && result.Baseline.Aborted:
		fmt.Printf("health watchdog ABORTED the run at iteration %d: %s\n",
			result.Baseline.Iterations, result.Baseline.AbortReason)
	}
	fmt.Println(result.Report)

	if cfg.trace && result.LevelSet != nil {
		fmt.Println("iter  cost_total  cost_nominal  cost_pvb  max|v|  dt  lambda")
		for _, h := range result.LevelSet.History {
			fmt.Printf("%4d  %10.4f  %12.4f  %8.4f  %6.3g  %.3g  %.3f\n",
				h.Iter, h.CostTotal, h.CostNominal, h.CostPVB, h.MaxVelocity, h.TimeStep, h.LambdaPRP)
		}
	}
	if cfg.ascii {
		printed, _, _ := pipe.PrintedImages(result.Mask)
		target, err := pipe.Target(layout)
		if err != nil {
			return err
		}
		fmt.Println("printed image with target contour ('+': contour printed, 'x': contour missing, '#': printed):")
		fmt.Print(render.ContourOverlayASCII(target, printed, 100))
	}
	if cfg.outPath != "" {
		if err := render.SavePGM(cfg.outPath, result.Mask, 0, 1); err != nil {
			return err
		}
		fmt.Printf("mask written to %s\n", cfg.outPath)
	}
	if cfg.outGLP != "" {
		maskLayout := lsopc.MaskToLayout(layout.Name+"_mask", result.Mask, int(pipe.PixelNM()))
		if err := lsopc.SaveGLP(cfg.outGLP, maskLayout); err != nil {
			return err
		}
		fmt.Printf("mask geometry (%d rects) written to %s\n", len(maskLayout.Rects), cfg.outGLP)
	}
	return nil
}

// loadCheckpoint reads a -resume checkpoint file.
func loadCheckpoint(path string) (*lsopc.Checkpoint, error) {
	cp, err := lsopc.LoadCheckpoint(path)
	if err != nil {
		return nil, fmt.Errorf("resume: %w", err)
	}
	fmt.Printf("resuming %s from iteration %d (checkpoint %s)\n", cp.Method, cp.DoneIters+cp.Iter, path)
	return cp, nil
}

// handleCancelled is the partial-result exit path: a cancelled run
// reports where it stopped and, with -checkpoint, persists the
// resumable state before the (non-nil) error propagates to main.
func handleCancelled(err error, checkpointPath string) error {
	var cerr *lsopc.CancelledError
	if !errors.As(err, &cerr) {
		return err
	}
	fmt.Fprintf(os.Stderr, "lsopc: %v\n", cerr)
	if checkpointPath != "" {
		if werr := lsopc.SaveCheckpoint(checkpointPath, cerr.Checkpoint); werr != nil {
			return fmt.Errorf("cancelled, and writing the checkpoint failed: %w", werr)
		}
		fmt.Fprintf(os.Stderr, "checkpoint written to %s — resume with -resume %s (same options)\n",
			checkpointPath, checkpointPath)
	} else {
		fmt.Fprintln(os.Stderr, "no -checkpoint path was given; the partial state is discarded")
	}
	return err
}

// runTiled is the -tiled mode: a full-chip tiled optimization whose
// tile window is the pipeline's simulation grid. The contest report is
// skipped — its checkers evaluate a single simulation window, not a
// chip — in favour of the per-tile and seam-convergence summary.
func runTiled(ctx context.Context, pipe *lsopc.Pipeline, layout *lsopc.Layout, cfg cliConfig) error {
	opts := lsopc.DefaultLevelSetOptions()
	if cfg.iters > 0 {
		opts.MaxIter = cfg.iters
	}
	if cfg.pvbWeight >= 0 {
		opts.PVBWeight = cfg.pvbWeight
	}
	opts.MultiResFactor = cfg.multires

	result, err := pipe.OptimizeTiledContext(ctx, layout, lsopc.TileOptions{
		HaloNM:       cfg.halo,
		Workers:      cfg.tileWorkers,
		Core:         opts,
		StitchPasses: cfg.stitchPasses,
		StitchIters:  cfg.stitchIters,
		PoisonTile:   cfg.poisonTile,
	})
	if err != nil {
		var terr *lsopc.TileAbortError
		if rec := pipe.FlightRecorder(); rec != nil && errors.As(err, &terr) {
			if dir, ok := rec.Captured(terr.Trace); ok {
				fmt.Fprintf(os.Stderr, "postmortem bundle written to %s (inspect with tracestats -bundle)\n", dir)
			}
		}
		return err
	}
	g := result.Grid
	fmt.Printf("tiled: %dx%d tiles (window %d nm, halo %d nm, core %d nm), %d workers\n",
		g.NX, g.NY, g.WindowNM, g.HaloNM, g.CoreNM, result.Workers)
	for _, st := range result.Tiles {
		switch {
		case st.Empty:
			fmt.Printf("  tile %2d (%d,%d): empty window, skipped\n", st.Index+1, st.IX, st.IY)
		default:
			verdict := "budget"
			if st.Converged {
				verdict = "converged"
			}
			fmt.Printf("  tile %2d (%d,%d): %3d iters, %s, %v\n",
				st.Index+1, st.IX, st.IY, st.Iterations, verdict, st.Dur.Round(1e6))
		}
	}
	seamVerdict := "NOT converged"
	if result.SeamConverged {
		seamVerdict = "converged"
	}
	fmt.Printf("seams: worst disagreement %.4f after %d stitch passes (%s)\n",
		result.Seam, result.Passes, seamVerdict)
	fmt.Printf("tiled run finished in %v (chip mask %dx%d px)\n",
		result.Elapsed.Round(1e6), result.Mask.W, result.Mask.H)

	if cfg.outPath != "" {
		if err := render.SavePGM(cfg.outPath, result.Mask, 0, 1); err != nil {
			return err
		}
		fmt.Printf("mask written to %s\n", cfg.outPath)
	}
	if cfg.outGLP != "" {
		maskLayout := lsopc.MaskToLayout(layout.Name+"_mask", result.Mask, int(pipe.PixelNM()))
		if err := lsopc.SaveGLP(cfg.outGLP, maskLayout); err != nil {
			return err
		}
		fmt.Printf("mask geometry (%d rects) written to %s\n", len(maskLayout.Rects), cfg.outGLP)
	}
	return nil
}

func loadLayout(caseID, glpPath string) (*lsopc.Layout, error) {
	if glpPath == "" {
		return lsopc.BenchmarkByID(caseID)
	}
	return lsopc.LoadGLP(glpPath)
}

func parseVariant(s string) lsopc.BaselineVariant {
	switch s {
	case "MOSAIC_fast":
		return lsopc.MosaicFast
	case "MOSAIC_exact":
		return lsopc.MosaicExact
	case "robust":
		return lsopc.RobustOPC
	default:
		return lsopc.PVOPC
	}
}
