// Command lsopc optimizes one mask with the level-set ILT method (or a
// baseline) and reports the ICCAD 2013 contest metrics.
//
// Usage:
//
//	lsopc -case B4 -preset fast
//	lsopc -glp design.glp -preset fast -method MOSAIC_exact
//	lsopc -case B1 -iters 30 -pvb-weight 0.8 -out mask.pgm -ascii
//	lsopc -case B4 -tracefile run.jsonl          # structured event trace
//	lsopc -case B4 -metrics 127.0.0.1:6060       # live /metrics + pprof
//	lsopc -glp chip.glp -tiled -tile-workers 4   # full-chip tiled run
//	lsopc -glp chip.glp -tiled -halo 320 -stitch-passes 3 -out chip.pgm
package main

import (
	"flag"
	"fmt"
	"os"

	"lsopc"
	"lsopc/internal/render"
)

func main() {
	var (
		caseID    = flag.String("case", "B4", "benchmark id (B1…B10); ignored when -glp is set")
		glpPath   = flag.String("glp", "", "optimize a GLP layout file instead of a benchmark")
		presetStr = flag.String("preset", "fast", "simulation preset: test|fast|paper")
		method    = flag.String("method", "level-set", "optimizer: level-set|MOSAIC_fast|MOSAIC_exact|robust|PVOPC")
		iters     = flag.Int("iters", 0, "override the method's iteration budget (0 = default)")
		pvbWeight = flag.Float64("pvb-weight", -1, "override w_pvb (negative = default)")
		serial    = flag.Bool("serial", false, "run on the serial (CPU) engine instead of the parallel one")
		outPath   = flag.String("out", "", "write the optimized mask as a PGM file")
		outGLP    = flag.String("out-glp", "", "write the optimized mask geometry as a GLP file")
		ascii     = flag.Bool("ascii", false, "print an ASCII preview of target vs printed image")
		trace     = flag.Bool("trace", false, "print the per-iteration cost trace (level-set only)")
		tracePath = flag.String("tracefile", "", "write a structured JSONL event trace (iterations, corner timings, plan-cache and pool events) to this file")
		metrics   = flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address for the duration of the run (e.g. 127.0.0.1:6060)")
		health    = flag.Bool("health", false, "run the numerical-health watchdog (NaN/Inf, stall, divergence detection; aborts the run on an unhealthy iteration)")
		multires  = flag.Int("multires", 1, "coarse-to-fine start factor (power of two): begin on a grid downsampled by this factor, halving each level; 1 = single resolution")
		precision = flag.String("precision", "float64", "forward-model precision: float64 (bit-exact reference) | float32 (fast path)")

		tiled        = flag.Bool("tiled", false, "full-chip tiled optimization: decompose the layout into overlapping tiles (the preset's grid is the tile window), optimize them concurrently and stitch the seams (level-set only)")
		halo         = flag.Int("halo", 0, "tile overlap halo in nm (0 = derive from the SOCS kernel energy support)")
		tileWorkers  = flag.Int("tile-workers", 0, "concurrent tile sessions (0 = one per engine worker)")
		stitchPasses = flag.Int("stitch-passes", 0, "max halo-stitching consistency passes (0 = default 2, negative = none)")
		stitchIters  = flag.Int("stitch-iters", 0, "per-tile iteration budget inside a stitch pass (0 = max(4, iters/4))")
	)
	flag.Parse()

	tc := tileConfig{enabled: *tiled, halo: *halo, workers: *tileWorkers, stitchPasses: *stitchPasses, stitchIters: *stitchIters}
	if err := run(*caseID, *glpPath, *presetStr, *method, *iters, *pvbWeight, *serial, *outPath, *outGLP, *ascii, *trace, *tracePath, *metrics, *health, *multires, *precision, tc); err != nil {
		fmt.Fprintln(os.Stderr, "lsopc:", err)
		os.Exit(1)
	}
}

// tileConfig carries the -tiled flag family.
type tileConfig struct {
	enabled      bool
	halo         int
	workers      int
	stitchPasses int
	stitchIters  int
}

func run(caseID, glpPath, presetStr, method string, iters int, pvbWeight float64, serial bool, outPath, outGLP string, ascii, trace bool, tracePath, metricsAddr string, health bool, multires int, precisionStr string, tc tileConfig) error {
	preset, err := lsopc.ParsePreset(presetStr)
	if err != nil {
		return err
	}
	prec, err := lsopc.ParsePrecision(precisionStr)
	if err != nil {
		return err
	}
	eng := lsopc.GPUEngine()
	if serial {
		eng = lsopc.CPUEngine()
	}
	if metricsAddr != "" {
		srv, addr, err := lsopc.ServeMetrics(metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics endpoint on http://%s/metrics (pprof under /debug/pprof/)\n", addr)
	}
	var popts []lsopc.PipelineOption
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		sink := lsopc.NewJSONLTraceSink(f)
		// Install as the runtime sink before the pipeline is built so
		// plan-cache and pool events from bank/session construction land
		// in the same stream as the optimizer's iteration events.
		lsopc.SetRuntimeTrace(sink)
		popts = append(popts, lsopc.WithTraceSink(sink))
		defer func() {
			lsopc.SetRuntimeTrace(nil)
			if err := lsopc.FlushTrace(sink); err != nil {
				fmt.Fprintln(os.Stderr, "lsopc: trace flush:", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "event trace written to %s\n", tracePath)
		}()
	}
	if health {
		popts = append(popts, lsopc.WithHealthPolicy(lsopc.DefaultHealthPolicy()))
	}
	if prec != lsopc.Float64 {
		popts = append(popts, lsopc.WithPrecision(prec))
	}
	pipe, err := lsopc.NewPipeline(preset, eng, popts...)
	if err != nil {
		return err
	}
	defer pipe.Release()

	layout, err := loadLayout(caseID, glpPath)
	if err != nil {
		return err
	}
	fmt.Printf("layout %s: %d shapes, pattern area %d nm²\n", layout.Name, layout.ShapeCount(), layout.Area())
	fmt.Printf("preset %s: %d px @ %g nm/px, engine %s\n", preset, pipe.GridSize(), pipe.PixelNM(), eng.Name())

	if tc.enabled {
		return runTiled(pipe, layout, method, iters, pvbWeight, multires, outPath, outGLP, tc)
	}

	var result *lsopc.RunResult
	switch method {
	case "level-set":
		opts := lsopc.DefaultLevelSetOptions()
		if iters > 0 {
			opts.MaxIter = iters
		}
		if pvbWeight >= 0 {
			opts.PVBWeight = pvbWeight
		}
		opts.MultiResFactor = multires
		result, err = pipe.OptimizeLevelSet(layout, opts)
	case "MOSAIC_fast", "MOSAIC_exact", "robust", "PVOPC":
		opts := lsopc.DefaultBaselineOptions(parseVariant(method))
		if iters > 0 {
			opts.MaxIter = iters
		}
		if pvbWeight >= 0 {
			opts.PVBWeight = pvbWeight
		}
		opts.MultiResFactor = multires
		result, err = pipe.OptimizeBaseline(layout, opts)
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	if err != nil {
		return err
	}

	fmt.Printf("method %s finished in %v\n", result.Method, result.Elapsed.Round(1e6))
	switch {
	case result.LevelSet != nil && result.LevelSet.Aborted:
		fmt.Printf("health watchdog ABORTED the run at iteration %d: %s\n",
			result.LevelSet.Iterations, result.LevelSet.AbortReason)
	case result.Baseline != nil && result.Baseline.Aborted:
		fmt.Printf("health watchdog ABORTED the run at iteration %d: %s\n",
			result.Baseline.Iterations, result.Baseline.AbortReason)
	}
	fmt.Println(result.Report)

	if trace && result.LevelSet != nil {
		fmt.Println("iter  cost_total  cost_nominal  cost_pvb  max|v|  dt  lambda")
		for _, h := range result.LevelSet.History {
			fmt.Printf("%4d  %10.4f  %12.4f  %8.4f  %6.3g  %.3g  %.3f\n",
				h.Iter, h.CostTotal, h.CostNominal, h.CostPVB, h.MaxVelocity, h.TimeStep, h.LambdaPRP)
		}
	}
	if ascii {
		printed, _, _ := pipe.PrintedImages(result.Mask)
		target, err := pipe.Target(layout)
		if err != nil {
			return err
		}
		fmt.Println("printed image with target contour ('+': contour printed, 'x': contour missing, '#': printed):")
		fmt.Print(render.ContourOverlayASCII(target, printed, 100))
	}
	if outPath != "" {
		if err := render.SavePGM(outPath, result.Mask, 0, 1); err != nil {
			return err
		}
		fmt.Printf("mask written to %s\n", outPath)
	}
	if outGLP != "" {
		maskLayout := lsopc.MaskToLayout(layout.Name+"_mask", result.Mask, int(pipe.PixelNM()))
		if err := lsopc.SaveGLP(outGLP, maskLayout); err != nil {
			return err
		}
		fmt.Printf("mask geometry (%d rects) written to %s\n", len(maskLayout.Rects), outGLP)
	}
	return nil
}

// runTiled is the -tiled mode: a full-chip tiled optimization whose
// tile window is the pipeline's simulation grid. The contest report is
// skipped — its checkers evaluate a single simulation window, not a
// chip — in favour of the per-tile and seam-convergence summary.
func runTiled(pipe *lsopc.Pipeline, layout *lsopc.Layout, method string, iters int, pvbWeight float64, multires int, outPath, outGLP string, tc tileConfig) error {
	if method != "level-set" {
		return fmt.Errorf("-tiled supports only the level-set method (got %q)", method)
	}
	opts := lsopc.DefaultLevelSetOptions()
	if iters > 0 {
		opts.MaxIter = iters
	}
	if pvbWeight >= 0 {
		opts.PVBWeight = pvbWeight
	}
	opts.MultiResFactor = multires

	result, err := pipe.OptimizeTiled(layout, lsopc.TileOptions{
		HaloNM:       tc.halo,
		Workers:      tc.workers,
		Core:         opts,
		StitchPasses: tc.stitchPasses,
		StitchIters:  tc.stitchIters,
	})
	if err != nil {
		return err
	}
	g := result.Grid
	fmt.Printf("tiled: %dx%d tiles (window %d nm, halo %d nm, core %d nm), %d workers\n",
		g.NX, g.NY, g.WindowNM, g.HaloNM, g.CoreNM, result.Workers)
	for _, st := range result.Tiles {
		switch {
		case st.Empty:
			fmt.Printf("  tile %2d (%d,%d): empty window, skipped\n", st.Index+1, st.IX, st.IY)
		default:
			verdict := "budget"
			if st.Converged {
				verdict = "converged"
			}
			fmt.Printf("  tile %2d (%d,%d): %3d iters, %s, %v\n",
				st.Index+1, st.IX, st.IY, st.Iterations, verdict, st.Dur.Round(1e6))
		}
	}
	seamVerdict := "NOT converged"
	if result.SeamConverged {
		seamVerdict = "converged"
	}
	fmt.Printf("seams: worst disagreement %.4f after %d stitch passes (%s)\n",
		result.Seam, result.Passes, seamVerdict)
	fmt.Printf("tiled run finished in %v (chip mask %dx%d px)\n",
		result.Elapsed.Round(1e6), result.Mask.W, result.Mask.H)

	if outPath != "" {
		if err := render.SavePGM(outPath, result.Mask, 0, 1); err != nil {
			return err
		}
		fmt.Printf("mask written to %s\n", outPath)
	}
	if outGLP != "" {
		maskLayout := lsopc.MaskToLayout(layout.Name+"_mask", result.Mask, int(pipe.PixelNM()))
		if err := lsopc.SaveGLP(outGLP, maskLayout); err != nil {
			return err
		}
		fmt.Printf("mask geometry (%d rects) written to %s\n", len(maskLayout.Rects), outGLP)
	}
	return nil
}

func loadLayout(caseID, glpPath string) (*lsopc.Layout, error) {
	if glpPath == "" {
		return lsopc.BenchmarkByID(caseID)
	}
	return lsopc.LoadGLP(glpPath)
}

func parseVariant(s string) lsopc.BaselineVariant {
	switch s {
	case "MOSAIC_fast":
		return lsopc.MosaicFast
	case "MOSAIC_exact":
		return lsopc.MosaicExact
	case "robust":
		return lsopc.RobustOPC
	default:
		return lsopc.PVOPC
	}
}
