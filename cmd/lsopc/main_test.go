package main

import (
	"path/filepath"
	"testing"

	"lsopc"
)

func TestParseVariant(t *testing.T) {
	cases := map[string]lsopc.BaselineVariant{
		"MOSAIC_fast":  lsopc.MosaicFast,
		"MOSAIC_exact": lsopc.MosaicExact,
		"robust":       lsopc.RobustOPC,
		"PVOPC":        lsopc.PVOPC,
	}
	for s, want := range cases {
		if got := parseVariant(s); got != want {
			t.Errorf("parseVariant(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestLoadLayoutBenchmark(t *testing.T) {
	l, err := loadLayout("B4", "")
	if err != nil || l.Name != "B4" {
		t.Fatalf("benchmark load: %v, %v", l, err)
	}
	if _, err := loadLayout("B99", ""); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestLoadLayoutGLP(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.glp")
	src := lsopc.NewLayout("x", 256, 256)
	src.Rects = append(src.Rects, lsopc.NewRect(10, 10, 50, 50))
	if err := lsopc.SaveGLP(path, src); err != nil {
		t.Fatal(err)
	}
	l, err := loadLayout("ignored", path)
	if err != nil || l.Area() != 1600 {
		t.Fatalf("GLP load: %+v, %v", l, err)
	}
	if _, err := loadLayout("", filepath.Join(t.TempDir(), "missing.glp")); err == nil {
		t.Fatal("missing GLP accepted")
	}
}
