package main

import (
	"path/filepath"
	"strings"
	"testing"

	"lsopc"
)

func TestValidateFlags(t *testing.T) {
	base := cliConfig{method: "level-set"}
	tiled := func(mut func(*cliConfig)) cliConfig {
		c := base
		c.tiled = true
		if mut != nil {
			mut(&c)
		}
		return c
	}
	cases := []struct {
		name    string
		cfg     cliConfig
		wantErr string // substring; "" = valid
	}{
		{"defaults", base, ""},
		{"negative iters", func() cliConfig { c := base; c.iters = -1; return c }(), "-iters"},
		{"negative halo", func() cliConfig { c := base; c.halo = -10; return c }(), "-halo"},
		{"negative workers", func() cliConfig { c := base; c.tileWorkers = -2; return c }(), "-tile-workers"},
		{"negative stitch iters", func() cliConfig { c := base; c.stitchIters = -1; return c }(), "-stitch-iters"},
		{"negative multires", func() cliConfig { c := base; c.multires = -4; return c }(), "-multires"},
		{"tiled level-set", tiled(nil), ""},
		{"tiled with tile knobs", tiled(func(c *cliConfig) { c.halo = 300; c.tileWorkers = 4; c.stitchPasses = -1; c.stitchIters = 8 }), ""},
		{"tiled baseline", tiled(func(c *cliConfig) { c.method = "PVOPC" }), "level-set"},
		{"tiled ascii", tiled(func(c *cliConfig) { c.ascii = true }), "-ascii"},
		{"tiled trace", tiled(func(c *cliConfig) { c.trace = true }), "-trace"},
		{"tiled checkpoint", tiled(func(c *cliConfig) { c.checkpoint = "x.ckpt" }), "-checkpoint"},
		{"tiled resume", tiled(func(c *cliConfig) { c.resume = "x.ckpt" }), "-checkpoint"},
		{"halo without tiled", func() cliConfig { c := base; c.halo = 300; return c }(), "requires -tiled"},
		{"workers without tiled", func() cliConfig { c := base; c.tileWorkers = 4; return c }(), "requires -tiled"},
		{"stitch passes without tiled", func() cliConfig { c := base; c.stitchPasses = 3; return c }(), "requires -tiled"},
		{"stitch iters without tiled", func() cliConfig { c := base; c.stitchIters = 8; return c }(), "requires -tiled"},
		{"checkpoint equals resume", func() cliConfig {
			c := base
			c.checkpoint, c.resume = "run.ckpt", "run.ckpt"
			return c
		}(), "same file"},
		{"checkpoint and distinct resume", func() cliConfig {
			c := base
			c.checkpoint, c.resume = "next.ckpt", "prev.ckpt"
			return c
		}(), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%+v) = %v, want nil", tc.cfg, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFlags(%+v) accepted, want error mentioning %q", tc.cfg, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateFlags error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseVariant(t *testing.T) {
	cases := map[string]lsopc.BaselineVariant{
		"MOSAIC_fast":  lsopc.MosaicFast,
		"MOSAIC_exact": lsopc.MosaicExact,
		"robust":       lsopc.RobustOPC,
		"PVOPC":        lsopc.PVOPC,
	}
	for s, want := range cases {
		if got := parseVariant(s); got != want {
			t.Errorf("parseVariant(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestLoadLayoutBenchmark(t *testing.T) {
	l, err := loadLayout("B4", "")
	if err != nil || l.Name != "B4" {
		t.Fatalf("benchmark load: %v, %v", l, err)
	}
	if _, err := loadLayout("B99", ""); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestLoadLayoutGLP(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.glp")
	src := lsopc.NewLayout("x", 256, 256)
	src.Rects = append(src.Rects, lsopc.NewRect(10, 10, 50, 50))
	if err := lsopc.SaveGLP(path, src); err != nil {
		t.Fatal(err)
	}
	l, err := loadLayout("ignored", path)
	if err != nil || l.Area() != 1600 {
		t.Fatalf("GLP load: %+v, %v", l, err)
	}
	if _, err := loadLayout("", filepath.Join(t.TempDir(), "missing.glp")); err == nil {
		t.Fatal("missing GLP accepted")
	}
}
