// Command pw runs a full process-window (focus-exposure matrix)
// analysis: Bossung CD data and window yield for a benchmark design or
// an optimized mask PGM.
//
// Usage:
//
//	pw -case B5 -cut 237,175,v -preset fast
//	pw -case B4 -mask mask.pgm -cut 256,256,h -target-cd 80
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"lsopc"
	"lsopc/internal/render"
)

func main() {
	var (
		caseID    = flag.String("case", "B5", "benchmark id (B1…B10)")
		glpPath   = flag.String("glp", "", "analyse a GLP layout instead of a benchmark")
		maskPath  = flag.String("mask", "", "mask PGM to analyse (default: the design itself)")
		presetStr = flag.String("preset", "fast", "simulation preset: test|fast|paper")
		cutStr    = flag.String("cut", "", "CD cut as x,y,h|v in pixels (default: grid centre, horizontal)")
		targetCD  = flag.Float64("target-cd", 0, "drawn CD in nm for yield (default: nominal measured CD)")
		tol       = flag.Float64("tol", 0.10, "CD tolerance fraction for the window yield")
	)
	flag.Parse()
	if err := run(*caseID, *glpPath, *maskPath, *presetStr, *cutStr, *targetCD, *tol); err != nil {
		fmt.Fprintln(os.Stderr, "pw:", err)
		os.Exit(1)
	}
}

func run(caseID, glpPath, maskPath, presetStr, cutStr string, targetCD, tol float64) error {
	preset, err := lsopc.ParsePreset(presetStr)
	if err != nil {
		return err
	}
	pipe, err := lsopc.NewPipeline(preset, lsopc.GPUEngine())
	if err != nil {
		return err
	}

	var layout *lsopc.Layout
	if glpPath != "" {
		layout, err = lsopc.LoadGLP(glpPath)
	} else {
		layout, err = lsopc.BenchmarkByID(caseID)
	}
	if err != nil {
		return err
	}

	mask, err := pipe.Target(layout)
	if err != nil {
		return err
	}
	if maskPath != "" {
		loaded, err := render.LoadPGM(maskPath)
		if err != nil {
			return err
		}
		if loaded.W != pipe.GridSize() {
			return fmt.Errorf("mask %dx%d does not match the %d-px grid", loaded.W, loaded.H, pipe.GridSize())
		}
		bin := lsopc.NewField(loaded.W, loaded.H)
		bin.Binarize(loaded)
		mask = bin
	}

	cut, err := parseCut(cutStr, pipe.GridSize())
	if err != nil {
		return err
	}
	res, err := pipe.ProcessWindow(mask, cut)
	if err != nil {
		return err
	}

	fmt.Printf("process window of %s (%s preset), cut at (%d,%d) %s\n",
		layout.Name, preset, cut.X, cut.Y, orientation(cut))
	printBossung(res)
	ref := targetCD
	if ref == 0 {
		ref = res.TargetCD
	}
	fmt.Printf("nominal CD %.0f nm; window yield (±%.0f%% of %.0f nm): %.0f%%\n",
		res.TargetCD, tol*100, ref, 100*res.WindowYield(ref, tol))
	return nil
}

func parseCut(s string, gridSize int) (lsopc.CutLine, error) {
	if s == "" {
		return lsopc.CutLine{X: gridSize / 2, Y: gridSize / 2, Horizontal: true}, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return lsopc.CutLine{}, fmt.Errorf("cut must be x,y,h|v, got %q", s)
	}
	x, err := strconv.Atoi(parts[0])
	if err != nil {
		return lsopc.CutLine{}, fmt.Errorf("bad cut x %q", parts[0])
	}
	y, err := strconv.Atoi(parts[1])
	if err != nil {
		return lsopc.CutLine{}, fmt.Errorf("bad cut y %q", parts[1])
	}
	switch parts[2] {
	case "h":
		return lsopc.CutLine{X: x, Y: y, Horizontal: true}, nil
	case "v":
		return lsopc.CutLine{X: x, Y: y, Horizontal: false}, nil
	}
	return lsopc.CutLine{}, fmt.Errorf("cut orientation must be h or v, got %q", parts[2])
}

func orientation(c lsopc.CutLine) string {
	if c.Horizontal {
		return "horizontal"
	}
	return "vertical"
}

func printBossung(res *lsopc.ProcessWindowResult) {
	byDose := res.Bossung()
	doses := make([]float64, 0, len(byDose))
	for d := range byDose {
		doses = append(doses, d)
	}
	sort.Float64s(doses)
	fmt.Printf("%-10s", "dose\\focus")
	for _, p := range byDose[doses[0]] {
		fmt.Printf(" %6.0fnm", p.DefocusNM)
	}
	fmt.Println()
	for _, d := range doses {
		fmt.Printf("%-10.2f", d)
		for _, p := range byDose[d] {
			fmt.Printf(" %6.0fnm", p.CDNM)
		}
		fmt.Println()
	}
}
