package main

import (
	"testing"

	"lsopc"
)

func TestParseCut(t *testing.T) {
	c, err := parseCut("10,20,h", 64)
	if err != nil || c.X != 10 || c.Y != 20 || !c.Horizontal {
		t.Fatalf("got %+v, %v", c, err)
	}
	c, err = parseCut("5,6,v", 64)
	if err != nil || c.Horizontal {
		t.Fatalf("vertical cut parsed wrong: %+v, %v", c, err)
	}
	// Default: grid centre, horizontal.
	c, err = parseCut("", 128)
	if err != nil || c.X != 64 || c.Y != 64 || !c.Horizontal {
		t.Fatalf("default cut %+v, %v", c, err)
	}
	for _, bad := range []string{"1,2", "a,2,h", "1,b,v", "1,2,x", "1,2,3,4"} {
		if _, err := parseCut(bad, 64); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestOrientation(t *testing.T) {
	if orientation(lsopc.CutLine{Horizontal: true}) != "horizontal" {
		t.Fatal("horizontal label wrong")
	}
	if orientation(lsopc.CutLine{}) != "vertical" {
		t.Fatal("vertical label wrong")
	}
}
