// Command tables regenerates the paper's evaluation artefacts: Table I
// (quality comparison), Table II (runtime comparison), the Fig. 1/Fig. 2
// data, and the ablation studies.
//
// Usage:
//
//	tables -table 1 -preset fast            # Table I on all ten benchmarks
//	tables -table 2 -preset fast            # Table II
//	tables -table 12 -cases B4,B10          # both tables, two cases
//	tables -fig 1 -case B1 -dir out/        # Fig. 1 images + probe data
//	tables -fig 2 -case B4 -dir out/        # Fig. 2 evolution snapshots
//	tables -ablation all -case B4           # CG-vs-GD, Eq.17, w_pvb sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lsopc"
	"lsopc/internal/experiments"
	"lsopc/internal/render"
)

func main() {
	var (
		table     = flag.String("table", "", "regenerate tables: 1, 2 or 12")
		fig       = flag.Int("fig", 0, "regenerate a figure: 1 or 2")
		ablation  = flag.String("ablation", "", "run ablations: cg|kernel|pvb|complexity|step|hybrid|resolution|all")
		presetStr = flag.String("preset", "fast", "simulation preset: test|fast|paper")
		casesStr  = flag.String("cases", "", "comma-separated benchmark ids (default: all)")
		caseID    = flag.String("case", "B4", "benchmark for figures/ablations")
		iterScale = flag.Float64("iter-scale", 1, "scale every method's iteration budget")
		dir       = flag.String("dir", "out", "output directory for figure images")
		quiet     = flag.Bool("q", false, "suppress per-run progress")
		csvPath   = flag.String("csv", "", "also write raw table results as CSV")
		tracePath = flag.String("tracefile", "", "write a structured JSONL event trace of every run to this file")
	)
	flag.Parse()

	if *table == "" && *fig == 0 && *ablation == "" {
		*table = "12" // default: everything tabular
	}
	if err := run(*table, *fig, *ablation, *presetStr, *casesStr, *caseID, *iterScale, *dir, *quiet, *csvPath, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run(table string, fig int, ablation, presetStr, casesStr, caseID string, iterScale float64, dir string, quiet bool, csvPath, tracePath string) error {
	preset, err := lsopc.ParsePreset(presetStr)
	if err != nil {
		return err
	}

	if table != "" {
		opts := experiments.Options{Preset: preset, IterScale: iterScale}
		if casesStr != "" {
			opts.Cases = strings.Split(casesStr, ",")
		}
		if !quiet {
			opts.Progress = os.Stderr
		}
		if tracePath != "" {
			f, err := os.Create(tracePath)
			if err != nil {
				return err
			}
			sink := lsopc.NewJSONLTraceSink(f)
			opts.Sink = sink
			defer func() {
				lsopc.FlushTrace(sink)
				f.Close()
			}()
		}
		rows, err := experiments.Run(opts)
		if err != nil {
			return err
		}
		if strings.Contains(table, "1") {
			fmt.Println(experiments.FormatTable1(rows))
		}
		if strings.Contains(table, "2") {
			fmt.Println(experiments.FormatTable2(rows))
		}
		if csvPath != "" {
			f, err := os.Create(csvPath)
			if err != nil {
				return err
			}
			if err := experiments.WriteCSV(f, rows); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "raw results written to %s\n", csvPath)
		}
	}

	switch fig {
	case 0:
	case 1:
		if err := runFig1(preset, caseID, dir); err != nil {
			return err
		}
	case 2:
		if err := runFig2(preset, caseID, dir); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown figure %d (want 1 or 2)", fig)
	}

	if ablation != "" {
		if err := runAblations(ablation, preset, caseID); err != nil {
			return err
		}
	}
	return nil
}

func runFig1(preset lsopc.Preset, caseID, dir string) error {
	d, err := experiments.Fig1Measurement(preset, caseID)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := map[string]*lsopc.Field{
		"fig1_target.pgm":  d.Target,
		"fig1_nominal.pgm": d.Nominal,
		"fig1_outer.pgm":   d.Outer,
		"fig1_inner.pgm":   d.Inner,
		"fig1_pvband.pgm":  d.PVBand,
	}
	for name, f := range files {
		if err := render.SavePGM(filepath.Join(dir, name), f, 0, 1); err != nil {
			return err
		}
	}
	fmt.Printf("Fig.1 data for %s (unoptimized design):\n", caseID)
	fmt.Printf("  PV band area: %.0f nm² (Fig. 1b region written to fig1_pvband.pgm)\n", d.PVBandNM2)
	fmt.Printf("  EPE probes: %d, violations (D ≥ %.0f nm): %d\n", len(d.ProbeDists), d.EPEThreshold, d.Violations)
	hist := make(map[int]int)
	for _, dist := range d.ProbeDists {
		hist[int(dist/5)*5]++
	}
	fmt.Println("  probe distance histogram (5 nm bins):")
	for lo := 0; lo <= 80; lo += 5 {
		if n := hist[lo]; n > 0 {
			fmt.Printf("    %2d–%2d nm: %d\n", lo, lo+5, n)
		}
	}
	fmt.Printf("  images written to %s/\n", dir)
	return nil
}

func runFig2(preset lsopc.Preset, caseID, dir string) error {
	iters, every := 40, 10
	if preset == lsopc.PresetTest {
		iters, every = 12, 4
	}
	run, err := experiments.Fig2Evolution(preset, caseID, iters, every)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fmt.Printf("Fig.2 evolution for %s: %d snapshots over %d iterations\n",
		caseID, len(run.LevelSet.Snapshots), run.LevelSet.Iterations)
	for _, s := range run.LevelSet.Snapshots {
		name := fmt.Sprintf("fig2_iter%03d.pgm", s.Iter)
		if err := render.SavePGM(filepath.Join(dir, name), s.Mask, 0, 1); err != nil {
			return err
		}
		fmt.Printf("  iter %3d: mask area %6.0f px → %s\n", s.Iter, s.Mask.Sum(), name)
	}
	final := "fig2_final.pgm"
	if err := render.SavePGM(filepath.Join(dir, final), run.Mask, 0, 1); err != nil {
		return err
	}
	fmt.Printf("  final:    mask area %6.0f px → %s\n", run.Mask.Sum(), final)
	fmt.Println(run.Report)
	return nil
}

func runAblations(which string, preset lsopc.Preset, caseID string) error {
	all := which == "all"
	if all || which == "cg" {
		traces, err := experiments.CGvsGD(preset, caseID, 25)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatConvergence(traces))
	}
	if all || which == "kernel" {
		res, err := experiments.CombinedKernelAblation(preset, caseID, 5)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if all || which == "pvb" {
		rows, err := experiments.PVBWeightSweep(preset, caseID, []float64{0, 0.3, 0.6, 1.0}, 25)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatPVBSweep(rows))
	}
	if all || which == "step" {
		traces, err := experiments.TimeStepStudy(preset, caseID, 25)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatConvergence(traces))
	}
	if all || which == "hybrid" {
		rows, err := experiments.HybridStudy(preset, caseID, 25)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatHybrid(caseID, rows))
	}
	if all || which == "resolution" {
		rows, err := experiments.ResolutionStudy([]lsopc.Preset{lsopc.PresetTest, lsopc.PresetFast}, caseID, 25)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatResolution(caseID, rows))
	}
	if all || which == "complexity" {
		rows, err := experiments.MaskComplexityStudy(preset, caseID, 1)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatComplexity(caseID, rows))
	}
	if !all && which != "cg" && which != "kernel" && which != "pvb" && which != "complexity" && which != "step" && which != "hybrid" && which != "resolution" {
		return fmt.Errorf("unknown ablation %q (want cg|kernel|pvb|complexity|step|hybrid|resolution|all)", which)
	}
	return nil
}
