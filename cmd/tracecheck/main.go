// Command tracecheck validates a structured JSONL event trace produced
// by the -tracefile flag of lsopc/benchjson (or any obs.JSONLSink
// stream). It fails with a non-zero exit when a line is not valid JSON,
// an event carries no type, or the sink-assigned sequence numbers are
// not strictly increasing — the integrity invariants concurrent
// sessions rely on. Session-scoped events (iterations, corners, spans,
// health, level/tile/stitch, cancelled, checkpoint) must carry their
// run id — the trace field live consumers key on — and each run's
// iteration numbers must be strictly increasing, the invariant the SSE
// stream and run registry rely on. Tiled-run events carry structural
// invariants of their own: tile_start/tile_done must name a tile
// ordinal ≥ 1, and stitch_pass must name a pass ≥ 1 over ≥ 1
// re-optimized tiles. Cancellation events must carry their cause
// message, and checkpoint events must report ≥ 1 captured state fields.
// Event kinds outside the taxonomy are counted and reported (a schema
// drift signal) instead of silently passing; -strict turns them into a
// failure. With -require it additionally asserts that given event types
// are present, so CI can prove a run actually exercised the
// instrumented layers.
//
// Usage:
//
//	tracecheck run.jsonl
//	tracecheck -require iteration,corner,plan_cache,pool run.jsonl
//	tracecheck -strict run.jsonl               # unknown event kinds fail
//	lsopc -case B1 -tracefile /dev/stdout ... | tracecheck -
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"lsopc/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated event types that must appear at least once")
	strict := flag.Bool("strict", false, "fail when the trace contains event kinds outside the known taxonomy")
	quiet := flag.Bool("q", false, "suppress the per-type summary")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require types] [-strict] <trace.jsonl | ->")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	name := flag.Arg(0)
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	counts, unknown, err := check(in)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		types := make([]string, 0, len(counts))
		for t := range counts {
			types = append(types, t)
		}
		sort.Strings(types)
		total := 0
		for _, t := range types {
			marker := ""
			if unknown[t] > 0 {
				marker = "  (UNKNOWN kind)"
			}
			fmt.Printf("%-12s %d%s\n", t, counts[t], marker)
			total += counts[t]
		}
		fmt.Printf("%-12s %d\n", "total", total)
	}
	if len(unknown) > 0 {
		kinds := make([]string, 0, len(unknown))
		n := 0
		for t, c := range unknown {
			kinds = append(kinds, t)
			n += c
		}
		sort.Strings(kinds)
		msg := fmt.Errorf("%d event(s) of unknown kind(s) %s — taxonomy drift? (obs event constants vs this trace)",
			n, strings.Join(kinds, ", "))
		if *strict {
			fatal(msg)
		}
		fmt.Fprintln(os.Stderr, "tracecheck: warning:", msg)
	}
	if *require != "" {
		var missing []string
		for _, t := range strings.Split(*require, ",") {
			t = strings.TrimSpace(t)
			if t != "" && counts[t] == 0 {
				missing = append(missing, t)
			}
		}
		if len(missing) > 0 {
			fatal(fmt.Errorf("required event types missing from trace: %s", strings.Join(missing, ", ")))
		}
	}
}

// knownTypes is the event taxonomy (DESIGN.md §9); anything else in a
// trace is counted as unknown.
var knownTypes = map[string]bool{
	obs.EventIteration:   true,
	obs.EventCorner:      true,
	obs.EventPlanCache:   true,
	obs.EventPool:        true,
	obs.EventSpan:        true,
	obs.EventProgress:    true,
	obs.EventHealth:      true,
	obs.EventLevelSwitch: true,
	obs.EventTileStart:   true,
	obs.EventTileDone:    true,
	obs.EventStitchPass:  true,
	obs.EventCancelled:   true,
	obs.EventCheckpoint:  true,
	obs.EventCapture:     true,
}

// runtimeScoped are the process-level kinds legitimately emitted with
// no run id (plan-cache lookups and pool leases during bank/session
// construction, free-form progress lines).
var runtimeScoped = map[string]bool{
	obs.EventPlanCache: true,
	obs.EventPool:      true,
	obs.EventProgress:  true,
}

// check validates every line of the stream and tallies events per type;
// the second map tallies the subset whose kind is outside the taxonomy.
func check(in io.Reader) (counts, unknown map[string]int, err error) {
	counts = map[string]int{}
	unknown = map[string]int{}
	// lastIter tracks the most recent iteration number per run id to
	// enforce per-run monotonicity (stitch re-runs and resumed runs use
	// iteration offsets precisely to preserve it).
	lastIter := map[string]int{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	lastSeq := int64(0)
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			return nil, nil, fmt.Errorf("line %d: empty line", line)
		}
		var e obs.Event
		if err := json.Unmarshal(text, &e); err != nil {
			return nil, nil, fmt.Errorf("line %d: invalid JSON: %v", line, err)
		}
		if e.Type == "" {
			return nil, nil, fmt.Errorf("line %d: event has no type", line)
		}
		if !knownTypes[e.Type] {
			unknown[e.Type]++
		} else if !runtimeScoped[e.Type] && e.Trace == "" {
			return nil, nil, fmt.Errorf("line %d: %s event without a run id (trace)", line, e.Type)
		}
		if e.Seq != 0 {
			if e.Seq <= lastSeq {
				return nil, nil, fmt.Errorf("line %d: seq %d not strictly increasing after %d", line, e.Seq, lastSeq)
			}
			lastSeq = e.Seq
		}
		switch e.Type {
		case obs.EventIteration:
			if last, seen := lastIter[e.Trace]; seen && e.Iter <= last {
				return nil, nil, fmt.Errorf("line %d: run %s iteration %d not increasing after %d",
					line, e.Trace, e.Iter, last)
			}
			lastIter[e.Trace] = e.Iter
		case obs.EventTileStart, obs.EventTileDone:
			if e.Tile < 1 {
				return nil, nil, fmt.Errorf("line %d: %s without a tile ordinal (tile=%d)", line, e.Type, e.Tile)
			}
			if e.Pass < 0 {
				return nil, nil, fmt.Errorf("line %d: %s with negative pass %d", line, e.Type, e.Pass)
			}
		case obs.EventStitchPass:
			if e.Pass < 1 {
				return nil, nil, fmt.Errorf("line %d: stitch_pass with pass %d, want ≥ 1", line, e.Pass)
			}
			if e.N < 1 {
				return nil, nil, fmt.Errorf("line %d: stitch_pass re-optimizing %d tiles, want ≥ 1", line, e.N)
			}
		case obs.EventCancelled:
			if e.Msg == "" {
				return nil, nil, fmt.Errorf("line %d: cancelled event without a cause message", line)
			}
		case obs.EventCheckpoint:
			if e.N < 1 {
				return nil, nil, fmt.Errorf("line %d: checkpoint event capturing %d state fields, want ≥ 1", line, e.N)
			}
		case obs.EventCapture:
			if e.Msg == "" {
				return nil, nil, fmt.Errorf("line %d: capture event without a trigger reason", line)
			}
			if e.Name == "" {
				return nil, nil, fmt.Errorf("line %d: capture event without a bundle directory", line)
			}
			if e.N < 1 {
				return nil, nil, fmt.Errorf("line %d: capture event listing %d bundle files, want ≥ 1", line, e.N)
			}
		}
		counts[e.Type]++
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if line == 0 {
		return nil, nil, fmt.Errorf("trace is empty")
	}
	return counts, unknown, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
