// Command tracecheck validates a structured JSONL event trace produced
// by the -tracefile flag of lsopc/benchjson (or any obs.JSONLSink
// stream). It fails with a non-zero exit when a line is not valid JSON,
// an event carries no type, or the sink-assigned sequence numbers are
// not strictly increasing — the integrity invariants concurrent
// sessions rely on. Tiled-run events carry structural invariants of
// their own: tile_start/tile_done must name a tile ordinal ≥ 1, and
// stitch_pass must name a pass ≥ 1 over ≥ 1 re-optimized tiles.
// Cancellation events must carry their cause message, and checkpoint
// events must report ≥ 1 captured state fields. With
// -require it additionally asserts that given event types are present,
// so CI can prove a run actually exercised the instrumented layers.
//
// Usage:
//
//	tracecheck run.jsonl
//	tracecheck -require iteration,corner,plan_cache,pool run.jsonl
//	lsopc -case B1 -tracefile /dev/stdout ... | tracecheck -
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"lsopc/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated event types that must appear at least once")
	quiet := flag.Bool("q", false, "suppress the per-type summary")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require types] <trace.jsonl | ->")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	name := flag.Arg(0)
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	counts, err := check(in)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		types := make([]string, 0, len(counts))
		for t := range counts {
			types = append(types, t)
		}
		sort.Strings(types)
		total := 0
		for _, t := range types {
			fmt.Printf("%-12s %d\n", t, counts[t])
			total += counts[t]
		}
		fmt.Printf("%-12s %d\n", "total", total)
	}
	if *require != "" {
		var missing []string
		for _, t := range strings.Split(*require, ",") {
			t = strings.TrimSpace(t)
			if t != "" && counts[t] == 0 {
				missing = append(missing, t)
			}
		}
		if len(missing) > 0 {
			fatal(fmt.Errorf("required event types missing from trace: %s", strings.Join(missing, ", ")))
		}
	}
}

// check validates every line of the stream and tallies events per type.
func check(in io.Reader) (map[string]int, error) {
	counts := map[string]int{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	lastSeq := int64(0)
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			return nil, fmt.Errorf("line %d: empty line", line)
		}
		var e obs.Event
		if err := json.Unmarshal(text, &e); err != nil {
			return nil, fmt.Errorf("line %d: invalid JSON: %v", line, err)
		}
		if e.Type == "" {
			return nil, fmt.Errorf("line %d: event has no type", line)
		}
		if e.Seq != 0 {
			if e.Seq <= lastSeq {
				return nil, fmt.Errorf("line %d: seq %d not strictly increasing after %d", line, e.Seq, lastSeq)
			}
			lastSeq = e.Seq
		}
		switch e.Type {
		case obs.EventTileStart, obs.EventTileDone:
			if e.Tile < 1 {
				return nil, fmt.Errorf("line %d: %s without a tile ordinal (tile=%d)", line, e.Type, e.Tile)
			}
			if e.Pass < 0 {
				return nil, fmt.Errorf("line %d: %s with negative pass %d", line, e.Type, e.Pass)
			}
		case obs.EventStitchPass:
			if e.Pass < 1 {
				return nil, fmt.Errorf("line %d: stitch_pass with pass %d, want ≥ 1", line, e.Pass)
			}
			if e.N < 1 {
				return nil, fmt.Errorf("line %d: stitch_pass re-optimizing %d tiles, want ≥ 1", line, e.N)
			}
		case obs.EventCancelled:
			if e.Msg == "" {
				return nil, fmt.Errorf("line %d: cancelled event without a cause message", line)
			}
		case obs.EventCheckpoint:
			if e.N < 1 {
				return nil, fmt.Errorf("line %d: checkpoint event capturing %d state fields, want ≥ 1", line, e.N)
			}
		}
		counts[e.Type]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if line == 0 {
		return nil, fmt.Errorf("trace is empty")
	}
	return counts, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
