package main

import (
	"strings"
	"testing"
)

func TestCheckCountsPerType(t *testing.T) {
	trace := strings.Join([]string{
		`{"type":"iteration","seq":1,"iter":0,"cost":1}`,
		`{"type":"iteration","seq":2,"iter":1,"cost":0.5}`,
		`{"type":"corner","seq":3,"name":"forward","corner":"nominal"}`,
		`{"type":"plan_cache","seq":4,"name":"plan1d","hit":true}`,
	}, "\n") + "\n"
	counts, err := check(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"iteration": 2, "corner": 1, "plan_cache": 1}
	for typ, n := range want {
		if counts[typ] != n {
			t.Fatalf("counts[%s] = %d, want %d (all: %v)", typ, counts[typ], n, counts)
		}
	}
}

func TestCheckTiledEvents(t *testing.T) {
	good := strings.Join([]string{
		`{"type":"tile_start","seq":1,"tile":1,"pass":0}`,
		`{"type":"tile_done","seq":2,"tile":1,"pass":0,"dur_ns":100}`,
		`{"type":"stitch_pass","seq":3,"pass":1,"n":2,"seam":0.03}`,
	}, "\n") + "\n"
	counts, err := check(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if counts["tile_start"] != 1 || counts["tile_done"] != 1 || counts["stitch_pass"] != 1 {
		t.Fatalf("counts = %v", counts)
	}

	bad := map[string]string{
		"tile_start without tile": `{"type":"tile_start","seq":1,"pass":0}` + "\n",
		"tile_done tile 0":        `{"type":"tile_done","seq":1,"tile":0}` + "\n",
		"stitch_pass without n":   `{"type":"stitch_pass","seq":1,"pass":1}` + "\n",
		"stitch_pass pass 0":      `{"type":"stitch_pass","seq":1,"pass":0,"n":2}` + "\n",
	}
	for name, trace := range bad {
		if _, err := check(strings.NewReader(trace)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCheckRejectsEmptyTrace(t *testing.T) {
	if _, err := check(strings.NewReader("")); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestCheckRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"invalid JSON":   "{not json}\n",
		"missing type":   `{"seq":1,"iter":0}` + "\n",
		"non-increasing": `{"type":"span","seq":5}` + "\n" + `{"type":"span","seq":5}` + "\n",
		"decreasing seq": `{"type":"span","seq":5}` + "\n" + `{"type":"span","seq":2}` + "\n",
		"empty mid-line": `{"type":"span","seq":1}` + "\n\n" + `{"type":"span","seq":2}` + "\n",
	}
	for name, trace := range cases {
		if _, err := check(strings.NewReader(trace)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
