package main

import (
	"strings"
	"testing"
)

func TestCheckCountsPerType(t *testing.T) {
	trace := strings.Join([]string{
		`{"type":"iteration","seq":1,"trace":"s1","iter":0,"cost":1}`,
		`{"type":"iteration","seq":2,"trace":"s1","iter":1,"cost":0.5}`,
		`{"type":"corner","seq":3,"trace":"s1","name":"forward","corner":"nominal"}`,
		`{"type":"plan_cache","seq":4,"name":"plan1d","hit":true}`,
	}, "\n") + "\n"
	counts, unknown, err := check(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"iteration": 2, "corner": 1, "plan_cache": 1}
	for typ, n := range want {
		if counts[typ] != n {
			t.Fatalf("counts[%s] = %d, want %d (all: %v)", typ, counts[typ], n, counts)
		}
	}
	if len(unknown) != 0 {
		t.Fatalf("unknown = %v, want none", unknown)
	}
}

func TestCheckTiledEvents(t *testing.T) {
	good := strings.Join([]string{
		`{"type":"tile_start","seq":1,"trace":"s1","tile":1,"pass":0}`,
		`{"type":"tile_done","seq":2,"trace":"s1","tile":1,"pass":0,"dur_ns":100}`,
		`{"type":"stitch_pass","seq":3,"trace":"s1","pass":1,"n":2,"seam":0.03}`,
	}, "\n") + "\n"
	counts, _, err := check(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if counts["tile_start"] != 1 || counts["tile_done"] != 1 || counts["stitch_pass"] != 1 {
		t.Fatalf("counts = %v", counts)
	}

	bad := map[string]string{
		"tile_start without tile": `{"type":"tile_start","seq":1,"trace":"s1","pass":0}` + "\n",
		"tile_done tile 0":        `{"type":"tile_done","seq":1,"trace":"s1","tile":0}` + "\n",
		"stitch_pass without n":   `{"type":"stitch_pass","seq":1,"trace":"s1","pass":1}` + "\n",
		"stitch_pass pass 0":      `{"type":"stitch_pass","seq":1,"trace":"s1","pass":0,"n":2}` + "\n",
	}
	for name, trace := range bad {
		if _, _, err := check(strings.NewReader(trace)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCheckRejectsEmptyTrace(t *testing.T) {
	if _, _, err := check(strings.NewReader("")); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestCheckRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"invalid JSON":   "{not json}\n",
		"missing type":   `{"seq":1,"iter":0}` + "\n",
		"non-increasing": `{"type":"span","seq":5,"trace":"s1","name":"optimize.levelset"}` + "\n" + `{"type":"span","seq":5,"trace":"s1","name":"evaluate"}` + "\n",
		"decreasing seq": `{"type":"span","seq":5,"trace":"s1","name":"optimize.levelset"}` + "\n" + `{"type":"span","seq":2,"trace":"s1","name":"evaluate"}` + "\n",
		"empty mid-line": `{"type":"span","seq":1,"trace":"s1"}` + "\n\n" + `{"type":"span","seq":2,"trace":"s1"}` + "\n",
	}
	for name, trace := range cases {
		if _, _, err := check(strings.NewReader(trace)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCheckRequiresRunIDs(t *testing.T) {
	// Session-scoped kinds must carry a trace id…
	sessionScoped := map[string]string{
		"iteration":  `{"type":"iteration","seq":1,"iter":0,"cost":1}` + "\n",
		"span":       `{"type":"span","seq":1,"name":"optimize.levelset"}` + "\n",
		"health":     `{"type":"health","seq":1,"iter":3,"msg":"cost_nan"}` + "\n",
		"tile_start": `{"type":"tile_start","seq":1,"tile":1}` + "\n",
		"cancelled":  `{"type":"cancelled","seq":1,"iter":2,"msg":"context canceled"}` + "\n",
	}
	for name, trace := range sessionScoped {
		if _, _, err := check(strings.NewReader(trace)); err == nil {
			t.Errorf("%s without run id: accepted", name)
		}
	}
	// …while runtime-scoped kinds legitimately have none.
	runtime := strings.Join([]string{
		`{"type":"plan_cache","seq":1,"name":"plan1d","hit":true}`,
		`{"type":"pool","seq":2,"name":"field.lease","hit":false}`,
		`{"type":"progress","seq":3,"msg":"warmup"}`,
	}, "\n") + "\n"
	if _, _, err := check(strings.NewReader(runtime)); err != nil {
		t.Fatalf("runtime-scoped events rejected: %v", err)
	}
}

func TestCheckIterationMonotonicPerRun(t *testing.T) {
	// Interleaved runs are fine as long as each run's own iteration
	// numbers increase (the concurrent-session layout of a real trace).
	good := strings.Join([]string{
		`{"type":"iteration","seq":1,"trace":"s1","iter":0,"cost":1}`,
		`{"type":"iteration","seq":2,"trace":"s2","iter":0,"cost":1}`,
		`{"type":"iteration","seq":3,"trace":"s1","iter":1,"cost":0.9}`,
		`{"type":"iteration","seq":4,"trace":"s2","iter":1,"cost":0.8}`,
	}, "\n") + "\n"
	if _, _, err := check(strings.NewReader(good)); err != nil {
		t.Fatal(err)
	}

	bad := map[string]string{
		"repeated iter": strings.Join([]string{
			`{"type":"iteration","seq":1,"trace":"s1","iter":2,"cost":1}`,
			`{"type":"iteration","seq":2,"trace":"s1","iter":2,"cost":0.9}`,
		}, "\n") + "\n",
		"decreasing iter": strings.Join([]string{
			`{"type":"iteration","seq":1,"trace":"s1","iter":5,"cost":1}`,
			`{"type":"iteration","seq":2,"trace":"s1","iter":3,"cost":0.9}`,
		}, "\n") + "\n",
	}
	for name, trace := range bad {
		if _, _, err := check(strings.NewReader(trace)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCheckReportsUnknownKinds(t *testing.T) {
	trace := strings.Join([]string{
		`{"type":"iteration","seq":1,"trace":"s1","iter":0,"cost":1}`,
		`{"type":"flux_capacitor","seq":2}`,
		`{"type":"flux_capacitor","seq":3}`,
	}, "\n") + "\n"
	counts, unknown, err := check(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if unknown["flux_capacitor"] != 2 {
		t.Fatalf("unknown = %v, want flux_capacitor:2", unknown)
	}
	if counts["flux_capacitor"] != 2 || counts["iteration"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}
