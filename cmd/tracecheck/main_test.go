package main

import (
	"strings"
	"testing"
)

func TestCheckCountsPerType(t *testing.T) {
	trace := strings.Join([]string{
		`{"type":"iteration","seq":1,"iter":0,"cost":1}`,
		`{"type":"iteration","seq":2,"iter":1,"cost":0.5}`,
		`{"type":"corner","seq":3,"name":"forward","corner":"nominal"}`,
		`{"type":"plan_cache","seq":4,"name":"plan1d","hit":true}`,
	}, "\n") + "\n"
	counts, err := check(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"iteration": 2, "corner": 1, "plan_cache": 1}
	for typ, n := range want {
		if counts[typ] != n {
			t.Fatalf("counts[%s] = %d, want %d (all: %v)", typ, counts[typ], n, counts)
		}
	}
}

func TestCheckRejectsEmptyTrace(t *testing.T) {
	if _, err := check(strings.NewReader("")); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestCheckRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"invalid JSON":   "{not json}\n",
		"missing type":   `{"seq":1,"iter":0}` + "\n",
		"non-increasing": `{"type":"span","seq":5}` + "\n" + `{"type":"span","seq":5}` + "\n",
		"decreasing seq": `{"type":"span","seq":5}` + "\n" + `{"type":"span","seq":2}` + "\n",
		"empty mid-line": `{"type":"span","seq":1}` + "\n\n" + `{"type":"span","seq":2}` + "\n",
	}
	for name, trace := range cases {
		if _, err := check(strings.NewReader(trace)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
