// Command tracestats turns the structured JSONL event traces written by
// the -tracefile flag of cmd/lsopc and cmd/benchjson into human-readable
// analytics: event inventory, plan-cache and pool hit rates, a per-phase
// latency table with exact p50/p95/p99 over the raw span durations, and
// per-session convergence summaries (slope of ln(cost), stalls,
// non-finite costs, divergence, watchdog health events). Coarse-to-fine
// traces additionally get per-resolution-level convergence segments and
// per-grid-size corner phases ("corner:…@64"). Tiled runs (lsopc -tiled)
// get per-tile latency percentiles and a stitch-pass convergence table.
//
// Usage:
//
//	tracestats run.jsonl
//	tracestats run1.jsonl run2.jsonl           # independent reports
//	tracestats -diff before.jsonl after.jsonl  # run-vs-run comparison
//	tracestats -json run.jsonl                 # machine-readable
//	tracestats -chrome timeline.json run.jsonl # Perfetto-loadable timeline
//	tracestats -bundle flight/s1-non_finite... # inspect a postmortem bundle
//	lsopc -case B1 -tracefile /dev/stdout ... | tracestats -
//
// Exit status: 0 on success, 1 on a parse failure (empty trace, invalid
// JSON, type-less events), 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"lsopc/internal/obs"
	"lsopc/internal/obs/analyze"
	"lsopc/internal/obs/recorder"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit the parsed run(s) / diff as JSON")
		diff     = flag.Bool("diff", false, "compare exactly two traces (A then B)")
		topN     = flag.Int("top", 0, "show only the top N phases by total time (0 = all)")
		stallWin = flag.Int("stall-window", 0, "stall-detection trailing window (0 = default)")
		chrome   = flag.String("chrome", "", "write a Chrome Trace Event timeline (Perfetto / chrome://tracing) of the trace to this file instead of reporting")
		bundle   = flag.Bool("bundle", false, "treat each argument as a flight-recorder postmortem bundle directory: validate its manifest and report its event tail")
	)
	flag.Parse()
	if flag.NArg() < 1 || (*diff && flag.NArg() != 2) || (*chrome != "" && (flag.NArg() != 1 || *diff)) || (*bundle && (*diff || *chrome != "")) {
		fmt.Fprintln(os.Stderr, "usage: tracestats [-json] [-top N] <trace.jsonl | -> ...")
		fmt.Fprintln(os.Stderr, "       tracestats -diff [-json] before.jsonl after.jsonl")
		fmt.Fprintln(os.Stderr, "       tracestats -chrome timeline.json <trace.jsonl | ->")
		fmt.Fprintln(os.Stderr, "       tracestats -bundle <bundle-dir> ...")
		os.Exit(2)
	}

	if *bundle {
		for i, dir := range flag.Args() {
			if i > 0 {
				fmt.Println()
			}
			if err := inspectBundle(dir, *stallWin, *topN, *jsonOut); err != nil {
				fmt.Fprintln(os.Stderr, "tracestats:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *chrome != "" {
		if err := exportChrome(flag.Arg(0), *chrome); err != nil {
			fmt.Fprintln(os.Stderr, "tracestats:", err)
			os.Exit(1)
		}
		return
	}

	runs := make([]*analyze.Run, flag.NArg())
	for i, path := range flag.Args() {
		run, err := parse(path, *stallWin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracestats:", err)
			os.Exit(1)
		}
		runs[i] = run
	}

	if *diff {
		d := analyze.Diff(runs[0], runs[1])
		if *jsonOut {
			emitJSON(d)
			return
		}
		printDiff(d)
		return
	}
	if *jsonOut {
		if len(runs) == 1 {
			emitJSON(runs[0])
		} else {
			emitJSON(runs)
		}
		return
	}
	for i, run := range runs {
		if i > 0 {
			fmt.Println()
		}
		printRun(run, *topN)
	}
}

// inspectBundle renders one flight-recorder postmortem bundle: the
// validated manifest (trigger, captured files, notes), the latest
// runtime snapshot, and the regular analytics report over the bundle's
// event tail.
func inspectBundle(dir string, stallWin, topN int, jsonOut bool) error {
	man, err := recorder.Open(dir)
	if err != nil {
		return err
	}
	run, err := parse(filepath.Join(dir, recorder.EventsFile), stallWin)
	if err != nil {
		return fmt.Errorf("bundle %s: %w", dir, err)
	}
	run.Label = fmt.Sprintf("bundle %s", dir)
	if jsonOut {
		emitJSON(map[string]any{"manifest": man, "run": run})
		return nil
	}
	fmt.Printf("=== bundle %s ===\n", dir)
	fmt.Printf("run %s  trigger %s  captured %s\n",
		man.RunID, man.Trigger, time.Unix(0, man.TimeNS).UTC().Format(time.RFC3339))
	if man.Tile > 0 {
		fmt.Printf("aborted tile %d (window %s nm)\n", man.Tile, man.Window)
	}
	if man.CheckpointIter > 0 {
		fmt.Printf("resumable checkpoint at iteration %d (%s)\n",
			man.CheckpointIter, recorder.CheckpointFile)
	}
	fmt.Printf("files: %v\n", man.Files)
	for _, n := range man.Notes {
		fmt.Printf("note: %s\n", n)
	}
	if st, ok := lastRuntimeSnapshot(filepath.Join(dir, recorder.RuntimeFile)); ok {
		fmt.Printf("runtime at capture: %d goroutines, heap %.1f MiB (%d objects), %d GCs\n",
			st.Goroutines, float64(st.HeapAlloc)/(1<<20), st.HeapObjects, st.GCNum)
	}
	fmt.Println()
	printRun(run, topN)
	return nil
}

// lastRuntimeSnapshot returns the final sample of a bundle's
// runtime.jsonl (the one taken at capture time).
func lastRuntimeSnapshot(path string) (obs.RuntimeStats, bool) {
	f, err := os.Open(path)
	if err != nil {
		return obs.RuntimeStats{}, false
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	var last obs.RuntimeStats
	ok := false
	for {
		var st obs.RuntimeStats
		if err := dec.Decode(&st); err != nil {
			break
		}
		last, ok = st, true
	}
	return last, ok
}

// exportChrome converts one JSONL trace (path or "-" for stdin) into a
// Chrome Trace Event timeline file.
func exportChrome(inPath, outPath string) error {
	in := os.Stdin
	if inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	skipped, err := analyze.WriteChromeTrace(out, in)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("chrome export: %w", err)
	}
	fmt.Fprintf(os.Stderr, "chrome timeline written to %s (load at ui.perfetto.dev; %d non-timeline events skipped)\n",
		outPath, skipped)
	return nil
}

// parse reads one trace (path or "-" for stdin) with optional threshold
// overrides.
func parse(path string, stallWin int) (*analyze.Run, error) {
	th := analyze.DefaultThresholds()
	if stallWin > 0 {
		th.StallWindow = stallWin
	}
	if path == "-" {
		run, err := analyze.Parse(os.Stdin, th)
		if err != nil {
			return nil, fmt.Errorf("stdin: %w", err)
		}
		run.Label = "stdin"
		return run, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	run, err := analyze.Parse(f, th)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	run.Label = path
	return run, nil
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "tracestats:", err)
		os.Exit(1)
	}
}

func printRun(r *analyze.Run, topN int) {
	fmt.Printf("=== %s ===\n", r.Label)
	fmt.Printf("events: %d  wall: %s\n", r.Events, fmtDur(r.WallNS))
	for _, t := range sortedKeys(r.ByType) {
		fmt.Printf("  %-12s %d\n", t, r.ByType[t])
	}
	if r.PlanCache.Total() > 0 {
		fmt.Printf("plan cache: %.1f%% hit (%d/%d)\n",
			100*r.PlanCache.Rate(), r.PlanCache.Hits, r.PlanCache.Total())
	}
	if r.Pool.Total() > 0 {
		fmt.Printf("pool:       %.1f%% hit (%d/%d leases, %d releases)\n",
			100*r.Pool.Rate(), r.Pool.Hits, r.Pool.Total(), r.PoolReleases)
	}

	if td := r.Tiled; td != nil {
		fmt.Printf("\ntiled: %d tiles, %d tile runs (%d converged)\n", td.Tiles, td.Runs, td.Converged)
		if td.Runs > 0 {
			fmt.Printf("  tile latency: mean %s  p50 %s  p95 %s  p99 %s  max %s\n",
				fmtDur(int64(td.MeanTileNS)), fmtDur(int64(td.P50TileNS)),
				fmtDur(int64(td.P95TileNS)), fmtDur(int64(td.P99TileNS)), fmtDur(td.MaxTileNS))
		}
		for _, sp := range td.Stitch {
			verdict := "OPEN"
			if sp.Converged {
				verdict = "converged"
			}
			fmt.Printf("  stitch pass %d: %d tiles re-optimized, seam %.4f, %s (%s)\n",
				sp.Pass, sp.Tiles, sp.Seam, verdict, fmtDur(sp.DurNS))
		}
	}

	if len(r.Phases) > 0 {
		fmt.Printf("\n%-36s %7s %12s %10s %10s %10s %10s\n",
			"phase", "count", "total", "p50", "p95", "p99", "max")
		for i, p := range r.Phases {
			if topN > 0 && i >= topN {
				fmt.Printf("  ... %d more phases\n", len(r.Phases)-topN)
				break
			}
			fmt.Printf("%-36s %7d %12s %10s %10s %10s %10s\n",
				p.Name, p.Count, fmtDur(p.TotalNS),
				fmtDur(int64(p.P50NS)), fmtDur(int64(p.P95NS)),
				fmtDur(int64(p.P99NS)), fmtDur(p.MaxNS))
		}
	}

	for _, id := range r.SessionIDs() {
		s := r.Sessions[id]
		if len(s.Iterations) == 0 && len(s.Health) == 0 && !s.Cancelled {
			continue
		}
		name := s.ID
		if name == "" {
			name = "(runtime)"
		}
		fmt.Printf("\nsession %s", name)
		if s.Engine != "" {
			fmt.Printf(" [%s]", s.Engine)
		}
		fmt.Println()
		c := s.Convergence
		if c.Iterations > 0 {
			fmt.Printf("  iterations: %d  cost %.6g -> %.6g (best %.6g @%d, change %+.1f%%)\n",
				c.Iterations, c.FirstCost, c.FinalCost, c.BestCost, c.BestIter,
				-100*c.ReductionFrac)
			fmt.Printf("  slope ln(cost)/iter: %+.4g\n", c.SlopeLogPerIter)
			if c.NonFinite {
				fmt.Printf("  NON-FINITE cost at iteration %d\n", c.NonFiniteIter)
			}
			// Coarse-to-fine sessions sum costs over different grid sizes,
			// so stall/divergence verdicts only make sense per level.
			if len(s.Levels) > 0 {
				fmt.Println("  (costs span multiple resolutions; see per-level summaries)")
			} else {
				if c.Stalled {
					fmt.Printf("  STALLED from iteration %d\n", c.StallIter)
				}
				if c.Diverged {
					fmt.Println("  DIVERGED (final cost well above best)")
				}
			}
		}
		for _, lv := range s.Levels {
			fmt.Printf("  level %4dpx: iters %d (from %d)", lv.GridN, lv.Iterations, lv.StartIter)
			lc := lv.Convergence
			if lc.Iterations > 0 {
				fmt.Printf("  cost %.6g -> %.6g  slope %+.3g", lc.FirstCost, lc.FinalCost, lc.SlopeLogPerIter)
			}
			if lv.MeanIterNS > 0 {
				fmt.Printf("  iter p50 %s p95 %s", fmtDur(int64(lv.P50IterNS)), fmtDur(int64(lv.P95IterNS)))
			}
			if lv.InterpNS > 0 {
				fmt.Printf("  interp %s", fmtDur(lv.InterpNS))
			}
			fmt.Println()
		}
		for _, h := range s.Health {
			fmt.Printf("  health: iter %d %s (cost %g)\n", h.Iter, h.Reason, h.Cost)
		}
		if s.Cancelled {
			fmt.Printf("  CANCELLED at iteration %d (%d checkpoint(s) captured)\n",
				s.CancelledIter, s.Checkpoints)
		}
	}
}

func printDiff(d *analyze.RunDiff) {
	fmt.Printf("=== diff: A=%s  B=%s ===\n", d.A, d.B)
	if d.WallRatio > 0 {
		fmt.Printf("wall ratio (B/A): %.3f\n", d.WallRatio)
	}
	fmt.Printf("plan cache hit: %.1f%% -> %.1f%%   pool hit: %.1f%% -> %.1f%%\n",
		100*d.APlanHitRate, 100*d.BPlanHitRate, 100*d.APoolHitRate, 100*d.BPoolHitRate)

	fmt.Printf("\n%-36s %7s %7s %10s %10s %8s\n",
		"phase", "A cnt", "B cnt", "A p50", "B p50", "p50 B/A")
	for _, p := range d.Phases {
		switch {
		case p.OnlyA:
			fmt.Printf("%-36s %7d %7s %10s %10s %8s  (only A)\n",
				p.Name, p.ACount, "-", fmtDur(int64(p.AP50NS)), "-", "-")
		case p.OnlyB:
			fmt.Printf("%-36s %7s %7d %10s %10s %8s  (only B)\n",
				p.Name, "-", p.BCount, "-", fmtDur(int64(p.BP50NS)), "-")
		default:
			fmt.Printf("%-36s %7d %7d %10s %10s %8.3f\n",
				p.Name, p.ACount, p.BCount,
				fmtDur(int64(p.AP50NS)), fmtDur(int64(p.BP50NS)), p.P50Ratio)
		}
	}

	c := d.Convergence
	fmt.Printf("\nconvergence: %d vs %d sessions, %d vs %d iterations\n",
		c.ASessions, c.BSessions, c.AIterations, c.BIterations)
	if c.ASessions > 0 && c.BSessions > 0 {
		fmt.Printf("  mean final cost %.6g -> %.6g (ratio %.3f)\n",
			c.AMeanFinalCost, c.BMeanFinalCost, c.FinalCostRatio)
	}
	if c.AStalledRuns+c.BStalledRuns > 0 {
		fmt.Printf("  stalled runs: %d vs %d\n", c.AStalledRuns, c.BStalledRuns)
	}
	if c.ANonFiniteRuns+c.BNonFiniteRuns > 0 {
		fmt.Printf("  non-finite runs: %d vs %d\n", c.ANonFiniteRuns, c.BNonFiniteRuns)
	}
	if c.AUnhealthy+c.BUnhealthy > 0 {
		fmt.Printf("  health events: %d vs %d\n", c.AUnhealthy, c.BUnhealthy)
	}
}

// fmtDur renders nanoseconds with duration-style units.
func fmtDur(ns int64) string {
	if ns == 0 {
		return "0"
	}
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
	return fmt.Sprintf("%dns", ns)
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
