package main

import (
	"strings"
	"testing"
	"time"
)

func TestFmtDur(t *testing.T) {
	cases := map[int64]string{
		0:                              "0",
		250:                            "250ns",
		int64(3500 * time.Nanosecond):  "3.5µs",
		int64(42 * time.Millisecond):   "42.00ms",
		int64(2500 * time.Millisecond): "2.50s",
	}
	for ns, want := range cases {
		if got := fmtDur(ns); got != want {
			t.Errorf("fmtDur(%d) = %q, want %q", ns, got, want)
		}
	}
}

func TestParseStdinLabelAndErrors(t *testing.T) {
	if _, err := parse("/nonexistent/trace.jsonl", 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSortedKeys(t *testing.T) {
	got := sortedKeys(map[string]int{"span": 1, "corner": 2, "iteration": 3})
	want := "corner,iteration,span"
	if strings.Join(got, ",") != want {
		t.Fatalf("sortedKeys = %v, want %s", got, want)
	}
}
