package lsopc

import (
	"sync"
	"testing"
)

// reportsMatch compares everything deterministic in a report (RuntimeSec
// is wall-clock and legitimately differs between runs).
func reportsMatch(a, b Report) bool {
	return a.EPEViolations == b.EPEViolations &&
		a.PVBandNM2 == b.PVBandNM2 &&
		a.ShapeViolations == b.ShapeViolations
}

func masksEqual(t *testing.T, id string, a, b *Field) {
	t.Helper()
	if a.W != b.W || a.H != b.H {
		t.Fatalf("%s: mask shapes differ: %dx%d vs %dx%d", id, a.W, a.H, b.W, b.H)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("%s: masks diverge at pixel %d", id, i)
		}
	}
}

// TestConcurrentOptimizationMatchesSerial is the concurrency acceptance
// gate: all ten ICCAD benchmarks optimized concurrently through ONE
// pipeline must be bit-identical to the serial loop — same masks, same
// metrics, same iteration traces. Sessions lease private scratch from
// the shared bank, and the engine layer guarantees worker-count
// independence, so scheduling must not leak into results. Run under
// `go test -race .` (make race) this is also the data-race gate for the
// whole session runtime.
func TestConcurrentOptimizationMatchesSerial(t *testing.T) {
	p, err := NewPipeline(PresetTest, GPUEngine())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultLevelSetOptions()
	opts.MaxIter = 3

	specs := Benchmarks()
	layoutByID := make(map[string]*Layout, len(specs))
	serial := make(map[string]*RunResult, len(specs))
	for _, s := range specs {
		l := Benchmark(s.ID)
		layoutByID[s.ID] = l
		run, err := p.OptimizeLevelSet(l, opts)
		if err != nil {
			t.Fatalf("%s serial: %v", s.ID, err)
		}
		serial[s.ID] = run
	}

	// All ten at once through the same pipeline handle.
	concurrent := make(map[string]*RunResult, len(specs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, s := range specs {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			run, err := p.OptimizeLevelSet(layoutByID[id], opts)
			if err != nil {
				t.Errorf("%s concurrent: %v", id, err)
				return
			}
			mu.Lock()
			concurrent[id] = run
			mu.Unlock()
		}(s.ID)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for id, want := range serial {
		got := concurrent[id]
		masksEqual(t, id, want.Mask, got.Mask)
		if !reportsMatch(want.Report, got.Report) {
			t.Fatalf("%s: reports differ: %+v vs %+v", id, want.Report, got.Report)
		}
		if len(want.LevelSet.History) != len(got.LevelSet.History) {
			t.Fatalf("%s: history lengths differ", id)
		}
		for i := range want.LevelSet.History {
			if want.LevelSet.History[i] != got.LevelSet.History[i] {
				t.Fatalf("%s: iteration %d trace differs", id, i)
			}
		}
	}
}

// TestSessionsPartitionMatchesSerial drives explicit sessions whose
// engines partition the pipeline's workers (the recommended layout for
// batch throughput) and checks results stay bit-identical to the
// shared-handle path.
func TestSessionsPartitionMatchesSerial(t *testing.T) {
	p, err := NewPipeline(PresetTest, GPUEngine())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultLevelSetOptions()
	opts.MaxIter = 2

	ids := []string{"B1", "B4", "B7", "B10"}
	want := make(map[string]*RunResult, len(ids))
	for _, id := range ids {
		run, err := p.OptimizeLevelSet(Benchmark(id), opts)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = run
	}

	sessions, err := p.Sessions(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]*RunResult, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			defer sessions[i].Close()
			run, err := sessions[i].OptimizeLevelSet(Benchmark(id), opts)
			if err != nil {
				t.Errorf("%s on session %d: %v", id, i, err)
				return
			}
			got[i] = run
		}(i, id)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, id := range ids {
		masksEqual(t, id, want[id].Mask, got[i].Mask)
		if !reportsMatch(want[id].Report, got[i].Report) {
			t.Fatalf("%s: reports differ", id)
		}
	}
}

// TestSessionReuse checks the pipeline's free list: a closed session is
// handed back warm, and reuse does not perturb results.
func TestSessionReuse(t *testing.T) {
	p, err := NewPipeline(PresetTest, CPUEngine())
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.Session()
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()
	s2, err := p.Session()
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s1 {
		t.Fatal("idle session was not reused")
	}
	l := Benchmark("B3")
	mask, err := p.Target(l)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s2.Evaluate(l, mask, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	r2, err := p.Evaluate(l, mask, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reportsMatch(r1, r2) {
		t.Fatalf("session reuse changed the report: %+v vs %+v", r1, r2)
	}
	p.Release()
}

// TestTargetIsPrivateCopy guards the ownership contract: Target hands
// each caller a private mutable copy while the bank's master stays
// pristine, so one caller scribbling on its target cannot corrupt
// concurrent jobs on the same layout.
func TestTargetIsPrivateCopy(t *testing.T) {
	p, err := NewPipeline(PresetTest, nil)
	if err != nil {
		t.Fatal(err)
	}
	l := Benchmark("B2")
	a, err := p.Target(l)
	if err != nil {
		t.Fatal(err)
	}
	sum := a.Sum()
	a.Fill(7)
	b, err := p.Target(l)
	if err != nil {
		t.Fatal(err)
	}
	if b.Sum() != sum {
		t.Fatal("mutating a returned target corrupted the shared master")
	}
}
