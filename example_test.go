package lsopc_test

import (
	"fmt"
	"log"

	"lsopc"
)

// ExampleNewPipeline shows the minimal optimize-and-evaluate flow.
func ExampleNewPipeline() {
	pipe, err := lsopc.NewPipeline(lsopc.PresetTest, lsopc.GPUEngine())
	if err != nil {
		log.Fatal(err)
	}
	opts := lsopc.DefaultLevelSetOptions()
	opts.MaxIter = 5
	run, err := pipe.OptimizeLevelSet(lsopc.Benchmark("B10"), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(run.Method, "shape violations:", run.Report.ShapeViolations)
	// Output: level-set shape violations: 0
}

// ExamplePipeline_OptimizeBaseline runs a pixel-based comparison method.
func ExamplePipeline_OptimizeBaseline() {
	pipe, err := lsopc.NewPipeline(lsopc.PresetTest, nil)
	if err != nil {
		log.Fatal(err)
	}
	opts := lsopc.DefaultBaselineOptions(lsopc.MosaicFast)
	opts.MaxIter = 6
	run, err := pipe.OptimizeBaseline(lsopc.Benchmark("B10"), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(run.Method, "shape violations:", run.Report.ShapeViolations)
	// Output: MOSAIC_fast shape violations: 0
}

// ExampleNewLayout builds a custom design and validates it.
func ExampleNewLayout() {
	l := lsopc.NewLayout("demo", 2048, 2048)
	l.Rects = append(l.Rects, lsopc.NewRect(500, 500, 700, 1100))
	l.Polys = append(l.Polys, lsopc.NewPolygon(
		lsopc.Point{X: 900, Y: 500}, lsopc.Point{X: 1300, Y: 500},
		lsopc.Point{X: 1300, Y: 580}, lsopc.Point{X: 980, Y: 580},
		lsopc.Point{X: 980, Y: 1100}, lsopc.Point{X: 900, Y: 1100},
	))
	if err := l.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println(l.ShapeCount(), "shapes,", l.Area(), "nm²")
	// Output: 2 shapes, 193600 nm²
}

// ExampleBenchmarks lists the reproduction suite.
func ExampleBenchmarks() {
	for _, s := range lsopc.Benchmarks()[:3] {
		fmt.Println(s.ID, s.PatternArea)
	}
	// Output:
	// B1 215344
	// B2 169280
	// B3 213504
}
