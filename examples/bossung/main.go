// Bossung: full process-window analysis of an optimized mask — the
// focus-exposure matrix a lithographer inspects. Optimizes a line
// pattern, then sweeps the printed critical dimension (CD) across the
// ±25 nm focus / ±2 % dose window and prints the Bossung curves and the
// process-window yield, comparing the raw design against the optimized
// mask.
//
//	go run ./examples/bossung
package main

import (
	"fmt"
	"log"
	"sort"

	"lsopc"
)

func main() {
	// PresetFast (4 nm pixels) keeps CD quantisation well below the
	// ±10 % tolerance band; expect a couple of minutes on one core.
	pipe, err := lsopc.NewPipeline(lsopc.PresetFast, lsopc.GPUEngine())
	if err != nil {
		log.Fatal(err)
	}

	// A dense-line benchmark; the cut measures the centre line's width.
	layout := lsopc.Benchmark("B5")
	target, err := pipe.Target(layout)
	if err != nil {
		log.Fatal(err)
	}
	// B5's middle line spans y = 660–740 nm (drawn CD 80 nm) at
	// x ≈ 500–1400 nm; at 4 nm/px its centre is pixel (237, 175).
	// Measure the vertical width of that line.
	cut := lsopc.CutLine{X: 237, Y: 175, Horizontal: false}
	const drawnCD = 80.0

	fmt.Println("process window of the unoptimized design:")
	rawYield := report(pipe, target, cut, drawnCD)

	opts := lsopc.DefaultLevelSetOptions()
	opts.MaxIter = 25
	run, err := pipe.OptimizeLevelSet(layout, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprocess window of the level-set optimized mask:")
	optYield := report(pipe, run.Mask, cut, drawnCD)

	fmt.Printf("\nwindow yield (CD within ±10%% of the drawn %g nm): raw %.0f%% → optimized %.0f%%\n",
		drawnCD, 100*rawYield, 100*optYield)
}

// report prints the Bossung table for the mask and returns the window
// yield against the drawn CD at ±10 % tolerance.
func report(pipe *lsopc.Pipeline, mask *lsopc.Field, cut lsopc.CutLine, drawnCD float64) float64 {
	res, err := pipe.ProcessWindow(mask, cut)
	if err != nil {
		log.Fatal(err)
	}
	byDose := res.Bossung()
	doses := make([]float64, 0, len(byDose))
	for d := range byDose {
		doses = append(doses, d)
	}
	sort.Float64s(doses)

	fmt.Printf("  %-10s", "dose\\focus")
	for _, p := range byDose[doses[0]] {
		fmt.Printf(" %6.0fnm", p.DefocusNM)
	}
	fmt.Println()
	for _, d := range doses {
		fmt.Printf("  %-10.2f", d)
		for _, p := range byDose[d] {
			fmt.Printf(" %6.0fnm", p.CDNM)
		}
		fmt.Println()
	}
	fmt.Printf("  nominal CD: %.0f nm (drawn %g nm)\n", res.TargetCD, drawnCD)
	return res.WindowYield(drawnCD, 0.10)
}
