// Custompattern: optimize a user-defined layout built entirely through
// the public API — an SRAM-bitcell-flavoured pattern with rectangles and
// a rectilinear polygon — then compare the level-set method against a
// pixel-based baseline on it.
//
//	go run ./examples/custompattern
package main

import (
	"fmt"
	"log"

	"lsopc"
)

func main() {
	// Build a custom 2048×2048 nm layout. Any rectilinear geometry
	// works; dimensions here are printable at the 193 nm/NA 1.35 system
	// the simulator models.
	l := lsopc.NewLayout("bitcell", 2048, 2048)
	// Word-line style horizontal wires.
	l.Rects = append(l.Rects,
		lsopc.NewRect(480, 560, 1460, 640),
		lsopc.NewRect(480, 1300, 1460, 1380),
	)
	// Two pull-down stacks.
	l.Rects = append(l.Rects,
		lsopc.NewRect(600, 760, 700, 1200),
		lsopc.NewRect(1240, 760, 1340, 1200),
	)
	// A Z-shaped interconnect between them.
	l.Polys = append(l.Polys, lsopc.NewPolygon(
		lsopc.Point{X: 820, Y: 800}, lsopc.Point{X: 1140, Y: 800},
		lsopc.Point{X: 1140, Y: 1000}, lsopc.Point{X: 920, Y: 1000},
		lsopc.Point{X: 920, Y: 1160}, lsopc.Point{X: 820, Y: 1160},
	))
	if err := l.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom layout %q: %d shapes, %d nm²\n", l.Name, l.ShapeCount(), l.Area())

	// Persist it as GLP so the cmd/lsopc and cmd/evaluate tools can
	// work with the same design.
	if err := lsopc.SaveGLP("bitcell.glp", l); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote bitcell.glp")

	pipe, err := lsopc.NewPipeline(lsopc.PresetTest, lsopc.GPUEngine())
	if err != nil {
		log.Fatal(err)
	}

	// Level-set method vs the strongest baseline.
	lsOpts := lsopc.DefaultLevelSetOptions()
	lsOpts.MaxIter = 15
	ls, err := pipe.OptimizeLevelSet(l, lsOpts)
	if err != nil {
		log.Fatal(err)
	}
	blOpts := lsopc.DefaultBaselineOptions(lsopc.MosaicExact)
	blOpts.MaxIter = 30
	bl, err := pipe.OptimizeBaseline(l, blOpts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %s\n", "level-set:", ls.Report)
	fmt.Printf("%-14s %s\n", "MOSAIC_exact:", bl.Report)
	if ls.Report.Score() <= bl.Report.Score() {
		fmt.Println("level-set wins on the contest score for this pattern")
	} else {
		fmt.Println("baseline wins on this pattern at these budgets")
	}
}
