// Evolution: reproduce the paper's Fig. 2 — watch the level-set contour
// evolve from the initial (target-shaped) mask to the optimized mask,
// with ASCII previews in the terminal and PGM snapshots on disk.
//
//	go run ./examples/evolution
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"lsopc"
	"lsopc/internal/render"
)

func main() {
	pipe, err := lsopc.NewPipeline(lsopc.PresetTest, lsopc.GPUEngine())
	if err != nil {
		log.Fatal(err)
	}
	layout := lsopc.Benchmark("B7") // the U-shape with inner contacts

	opts := lsopc.DefaultLevelSetOptions()
	opts.MaxIter = 16
	opts.SnapshotEvery = 5 // record the mask at iterations 0, 5, 10, 15
	run, err := pipe.OptimizeLevelSet(layout, opts)
	if err != nil {
		log.Fatal(err)
	}

	target, err := pipe.Target(layout)
	if err != nil {
		log.Fatal(err)
	}

	outDir := "evolution_out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Fig.2-style evolution on %s (ψ contour per snapshot):\n\n", layout.Name)
	for _, s := range run.LevelSet.Snapshots {
		printed, _, _ := pipe.PrintedImages(s.Mask)
		fmt.Printf("--- iteration %d: mask area %.0f px, printed vs target ---\n",
			s.Iter, s.Mask.Sum())
		fmt.Print(render.ContourOverlayASCII(target, printed, 72))
		path := filepath.Join(outDir, fmt.Sprintf("mask_iter%02d.pgm", s.Iter))
		if err := render.SavePGM(path, s.Mask, 0, 1); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("--- final optimized mask ---")
	fmt.Print(render.ASCII(run.Mask, 72, 0, 1))
	if err := render.SavePGM(filepath.Join(outDir, "mask_final.pgm"), run.Mask, 0, 1); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncost trace: %.2f", run.LevelSet.History[0].CostTotal)
	for _, h := range run.LevelSet.History[1:] {
		fmt.Printf(" → %.2f", h.CostTotal)
	}
	fmt.Printf("\n%s\nsnapshots written to %s/\n", run.Report, outDir)
}
