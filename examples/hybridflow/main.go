// Hybridflow: chain the classic RETs with the paper's optimizer the way
// a production flow would — rule-based OPC and SRAF seeding feeding the
// level-set ILT, with mask rule checking (MRC) on every result.
//
//	go run ./examples/hybridflow
package main

import (
	"fmt"
	"log"
	"time"

	"lsopc"
)

func main() {
	pipe, err := lsopc.NewPipeline(lsopc.PresetTest, lsopc.GPUEngine())
	if err != nil {
		log.Fatal(err)
	}
	layout := lsopc.Benchmark("B1")
	target, err := pipe.Target(layout)
	if err != nil {
		log.Fatal(err)
	}
	rules := lsopc.DefaultMaskRules(pipe.PixelNM())

	show := func(name string, mask *lsopc.Field, elapsed time.Duration) {
		report, err := pipe.Evaluate(layout, mask, elapsed)
		if err != nil {
			log.Fatal(err)
		}
		viols, err := lsopc.CheckMaskRules(mask, rules)
		if err != nil {
			log.Fatal(err)
		}
		c := lsopc.Complexity(mask)
		fmt.Printf("%-22s %s | MRC viol: %d | islands: %d (tiny %d), jogs: %d\n",
			name, report, len(viols), c.Islands, c.TinyIslands, c.JogCount)
	}

	// 0. The raw design.
	show("design (no OPC)", target, 0)

	// 1. Rule-based OPC: microseconds, limited quality.
	start := time.Now()
	ruleMask, err := lsopc.RuleOPC(target, lsopc.DefaultRuleOPC(pipe.PixelNM()))
	if err != nil {
		log.Fatal(err)
	}
	show("rule-based OPC", ruleMask, time.Since(start))

	// 2. Level-set ILT from scratch (the paper's flow).
	opts := lsopc.DefaultLevelSetOptions()
	opts.MaxIter = 15
	ls, err := pipe.OptimizeLevelSet(layout, opts)
	if err != nil {
		log.Fatal(err)
	}
	show("level-set ILT", ls.Mask, ls.Elapsed)

	// 3. Hybrid: warm-start the ILT from the rule-based mask.
	opts.InitialMask = ruleMask
	hybrid, err := pipe.OptimizeLevelSet(layout, opts)
	if err != nil {
		log.Fatal(err)
	}
	show("hybrid (rule→ILT)", hybrid.Mask, hybrid.Elapsed)

	// 4. SRAF-seeded ILT: assist bars in the initial level set.
	seed, err := lsopc.AddSRAF(target, lsopc.DefaultSRAF(pipe.PixelNM()))
	if err != nil {
		log.Fatal(err)
	}
	opts.InitialMask = seed
	srafRun, err := pipe.OptimizeLevelSet(layout, opts)
	if err != nil {
		log.Fatal(err)
	}
	show("SRAF-seeded ILT", srafRun.Mask, srafRun.Elapsed)

	// Export the best mask's geometry for downstream tools.
	best := hybrid.Mask
	maskLayout := lsopc.MaskToLayout(layout.Name+"_opt", best, int(pipe.PixelNM()))
	if err := lsopc.SaveGLP("hybrid_mask.glp", maskLayout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhybrid mask exported as geometry: %d rects → hybrid_mask.glp\n", len(maskLayout.Rects))
}
