// Processwindow: reproduce the paper's Fig. 1 — the two robustness
// metrics. Prints a benchmark at the three process corners (nominal;
// outer = +2 % dose; inner = 25 nm defocus, −2 % dose), shows the PV
// band (the XOR of the extreme contours) and the EPE probe measurements,
// and demonstrates how the process-variation cost term shrinks both.
//
//	go run ./examples/processwindow
package main

import (
	"fmt"
	"log"

	"lsopc"
	"lsopc/internal/render"
)

func main() {
	pipe, err := lsopc.NewPipeline(lsopc.PresetTest, lsopc.GPUEngine())
	if err != nil {
		log.Fatal(err)
	}
	layout := lsopc.Benchmark("B4")
	target, err := pipe.Target(layout)
	if err != nil {
		log.Fatal(err)
	}

	// --- Fig. 1(b): the PV band of the unoptimized design. ---
	nominal, outer, inner := pipe.PrintedImages(target)
	fmt.Println("unoptimized design printed at the three process corners:")
	fmt.Printf("  nominal: %6.0f px   outer(+2%% dose): %6.0f px   inner(defocus,−2%%): %6.0f px\n",
		nominal.Sum(), outer.Sum(), inner.Sum())

	band := pvBand(outer, inner)
	fmt.Println("\nPV band (XOR of outer and inner contours, Fig. 1b):")
	fmt.Print(render.ASCII(band, 72, 0, 1))
	px := pipe.PixelNM()
	fmt.Printf("PV band area: %.0f nm²\n\n", band.Sum()*px*px)

	// --- Optimize with and without the PV-band cost (Eq. 12/13). ---
	for _, w := range []float64{0, 1.0} {
		opts := lsopc.DefaultLevelSetOptions()
		opts.MaxIter = 25
		opts.PVBWeight = w
		run, err := pipe.OptimizeLevelSet(layout, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("optimized with w_pvb = %.1f: %s\n", w, run.Report)
	}

	fmt.Println("\n(the weighted run trades nominal-only fidelity for a tighter")
	fmt.Println(" process window — the paper's Eq. 12 cost in action; see the")
	fmt.Println(" w_pvb sweep in EXPERIMENTS.md for the full trade-off curve)")
}

func pvBand(outer, inner *lsopc.Field) *lsopc.Field {
	band := &lsopc.Field{W: outer.W, H: outer.H, Data: make([]float64, len(outer.Data))}
	for i := range band.Data {
		if (outer.Data[i] > 0.5) != (inner.Data[i] > 0.5) {
			band.Data[i] = 1
		}
	}
	return band
}
