// Quickstart: optimize one ICCAD-2013-style benchmark with the paper's
// level-set method and print the contest metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lsopc"
)

func main() {
	// A pipeline bundles the lithography simulator (193 nm immersion,
	// 24-kernel-style SOCS model) with the contest metric checkers.
	// PresetTest keeps this demo under a few seconds; use PresetFast or
	// PresetPaper for real runs.
	pipe, err := lsopc.NewPipeline(lsopc.PresetTest, lsopc.GPUEngine())
	if err != nil {
		log.Fatal(err)
	}

	// B4 is the smallest benchmark: three isolated vertical bars.
	layout := lsopc.Benchmark("B4")
	fmt.Printf("optimizing %s: %d shapes, %d nm² pattern area\n",
		layout.Name, layout.ShapeCount(), layout.Area())

	// Algorithm 1 of the paper: level-set evolution with the
	// process-variation cost and PRP conjugate-gradient velocity.
	opts := lsopc.DefaultLevelSetOptions()
	opts.MaxIter = 15
	run, err := pipe.OptimizeLevelSet(layout, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("finished in %v after %d iterations\n",
		run.Elapsed.Round(1e6), run.LevelSet.Iterations)
	fmt.Println("optimized: ", run.Report)

	// Compare with the unoptimized design (mask = target).
	target, err := pipe.Target(layout)
	if err != nil {
		log.Fatal(err)
	}
	raw, err := pipe.Evaluate(layout, target, run.Elapsed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unoptimized:", raw)
	fmt.Printf("score improvement: %.0f → %.0f\n", raw.Score(), run.Report.Score())
}
