package lsopc

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"testing"
	"time"

	"lsopc/internal/core"
	"lsopc/internal/geom"
	"lsopc/internal/obs"
	"lsopc/internal/obs/analyze"
	"lsopc/internal/obs/recorder"
)

// TestFlightRecorderTiledAbortBundle is the postmortem acceptance gate:
// a tiled run whose poisoned tile trips the watchdog must leave behind
// a complete, manifest-valid bundle — event tail, goroutine dump, heap
// and CPU profiles, resumable checkpoint — and the checkpoint must
// actually resume through core.Resume against the reconstructed tile.
func TestFlightRecorderTiledAbortBundle(t *testing.T) {
	flightDir := t.TempDir()
	rec := NewFlightRecorder(FlightRecorderConfig{
		Dir:        flightDir,
		CPUProfile: 60 * time.Millisecond,
	})
	defer rec.Close()

	hp := DefaultHealthPolicy()
	pipe, err := NewCustomPipeline(64, 16, 4, GPUEngine(),
		WithTraceSink(rec),
		WithHealthPolicy(hp),
		WithFlightRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Release()

	layout := Benchmark("B1")
	opts := DefaultLevelSetOptions()
	opts.MaxIter = 20

	_, err = pipe.OptimizeTiled(layout, TileOptions{
		HaloNM:     256,
		Core:       opts,
		PoisonTile: 3, // NaN-poison the third tile's target
	})
	if err == nil {
		t.Fatal("poisoned tiled run succeeded")
	}
	var terr *TileAbortError
	if !errors.As(err, &terr) {
		t.Fatalf("error %T %v, want *TileAbortError", err, err)
	}
	if terr.Reason != obs.HealthNonFiniteCost {
		t.Fatalf("abort reason %q, want %q", terr.Reason, obs.HealthNonFiniteCost)
	}
	if terr.Checkpoint == nil {
		t.Fatal("abort carried no checkpoint")
	}

	// The abort must have triggered exactly one capture for the run.
	dir, ok := rec.Captured(terr.Trace)
	if !ok {
		t.Fatalf("no bundle captured for %q", terr.Trace)
	}

	// The bundle must be complete and self-consistent.
	man, err := OpenBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.RunID != terr.Trace || man.Trigger != obs.HealthNonFiniteCost {
		t.Fatalf("manifest identity = %+v", man)
	}
	if man.Tile != terr.Tile+1 || man.Window == "" {
		t.Fatalf("manifest tile attribution = tile %d window %q", man.Tile, man.Window)
	}
	if man.Events < 1 || man.CheckpointIter < 1 {
		t.Fatalf("manifest events=%d checkpoint_iter=%d, want both ≥ 1", man.Events, man.CheckpointIter)
	}
	for _, f := range []string{recorder.EventsFile, recorder.RuntimeFile, recorder.GoroutinesFile, recorder.HeapFile, recorder.CPUFile, recorder.CheckpointFile, recorder.MetricsFile} {
		found := false
		for _, got := range man.Files {
			if got == f {
				found = true
			}
		}
		if !found {
			t.Fatalf("bundle files %v, missing %s (notes: %v)", man.Files, f, man.Notes)
		}
		if fi, err := os.Stat(filepath.Join(dir, f)); err != nil || fi.Size() == 0 {
			t.Fatalf("bundle file %s: err=%v empty=%v", f, err, fi != nil && fi.Size() == 0)
		}
	}

	// The event tail must be readable by the trace toolchain (the same
	// parser behind tracestats -bundle).
	ef, err := os.Open(filepath.Join(dir, recorder.EventsFile))
	if err != nil {
		t.Fatal(err)
	}
	run, err := analyze.Parse(ef, analyze.DefaultThresholds())
	ef.Close()
	if err != nil {
		t.Fatalf("event tail unreadable by the inspector: %v", err)
	}
	if run.Events != man.Events {
		t.Fatalf("inspector parsed %d events, manifest says %d", run.Events, man.Events)
	}

	// And the checkpoint must resume: rebuild the aborted tile's target
	// from the manifest's window (without the poison) and continue the
	// optimization from the captured state.
	cp, err := LoadCheckpoint(filepath.Join(dir, recorder.CheckpointFile))
	if err != nil {
		t.Fatal(err)
	}
	clip := layout.Clip(terr.Window)
	target, err := geom.Rasterize(clip, 16)
	if err != nil {
		t.Fatal(err)
	}
	ropts := opts
	ropts.Health = nil
	ropts.Sink = nil
	res, err := core.Resume(context.Background(), pipe.Simulator(), target, ropts, cp)
	if err != nil {
		t.Fatalf("resume from bundle checkpoint: %v", err)
	}
	if res.Iterations < cp.Iter {
		t.Fatalf("resumed run reports %d iterations, checkpoint was at %d", res.Iterations, cp.Iter)
	}
}

// labelSnapshotSink captures a labeled goroutine profile from inside a
// run: Emit is invoked on the optimizer goroutine, which executes under
// pprof.Do, so the debug=1 profile must show its run_id/phase labels.
type labelSnapshotSink struct {
	once sync.Once
	buf  bytes.Buffer
}

func (s *labelSnapshotSink) Emit(e obs.Event) {
	if e.Type == obs.EventIteration {
		s.once.Do(func() {
			pprof.Lookup("goroutine").WriteTo(&s.buf, 1)
		})
	}
}

// TestRunGoroutineCarriesPprofLabels deterministically pins the label
// plumbing: during an optimization the driver goroutine is labeled with
// the run id and phase.
func TestRunGoroutineCarriesPprofLabels(t *testing.T) {
	sink := &labelSnapshotSink{}
	pipe, err := NewPipeline(PresetTest, GPUEngine(), WithTraceSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Release()
	opts := DefaultLevelSetOptions()
	opts.MaxIter = 3
	if _, err := pipe.OptimizeLevelSet(Benchmark("B4"), opts); err != nil {
		t.Fatal(err)
	}
	prof := sink.buf.String()
	if prof == "" {
		t.Fatal("no goroutine profile captured (no iteration events?)")
	}
	for _, want := range []string{`"run_id":"s1"`, `"phase":"level-set"`} {
		if !bytes.Contains(sink.buf.Bytes(), []byte(want)) {
			t.Fatalf("goroutine profile lacks label %s:\n%s", want, prof)
		}
	}
}

// TestCPUProfileAttributesRunLabels is the sampling-based acceptance
// check: a CPU profile collected across a labeled run must contain
// samples tagged with the run_id label (the run is long enough that the
// 100 Hz sampler lands several samples inside pprof.Do).
func TestCPUProfileAttributesRunLabels(t *testing.T) {
	var sink obs.CollectorSink
	pipe, err := NewPipeline(PresetTest, GPUEngine(), WithTraceSink(&sink))
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Release()
	layout := Benchmark("B4")
	opts := DefaultLevelSetOptions()
	opts.MaxIter = 40
	opts.Tolerance = 0 // keep iterating: the profile needs CPU time

	for attempt := 0; attempt < 3; attempt++ {
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			t.Fatal(err)
		}
		_, rerr := pipe.OptimizeLevelSet(layout, opts)
		pprof.StopCPUProfile()
		if rerr != nil {
			t.Fatal(rerr)
		}
		evs := sink.Events()
		trace := ""
		for i := len(evs) - 1; i >= 0; i-- {
			if evs[i].Type == obs.EventIteration {
				trace = evs[i].Trace
				break
			}
		}
		if trace == "" {
			t.Fatal("run produced no iteration events")
		}
		zr, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			t.Fatal(err)
		}
		// Label keys and values land in the profile's string table only
		// when a sample references them.
		if bytes.Contains(raw, []byte("run_id")) && bytes.Contains(raw, []byte(trace)) {
			return
		}
		opts.MaxIter *= 2 // sampler missed: give it more run to hit
	}
	t.Fatal("CPU profile never attributed samples to the run_id label")
}
