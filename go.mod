module lsopc

go 1.22
