// Package benchfmt defines the on-disk schema of the BENCH_*.json
// artefacts that cmd/benchjson writes (labelled runs of go-test-style
// measurements) and the noise-aware comparison logic cmd/benchdiff uses
// to turn two such artefacts into a pass/fail perf-regression gate.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Measurement is one benchmark result in go-test units.
type Measurement struct {
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	Iterations  int    `json:"iterations"`
	Note        string `json:"note,omitempty"`
}

// Metric names selectable for comparison.
const (
	MetricNsPerOp     = "ns_per_op"
	MetricBytesPerOp  = "bytes_per_op"
	MetricAllocsPerOp = "allocs_per_op"
)

// Value returns the named metric of the measurement.
func (m Measurement) Value(metric string) (float64, error) {
	switch metric {
	case MetricNsPerOp:
		return float64(m.NsPerOp), nil
	case MetricBytesPerOp:
		return float64(m.BytesPerOp), nil
	case MetricAllocsPerOp:
		return float64(m.AllocsPerOp), nil
	}
	return 0, fmt.Errorf("benchfmt: unknown metric %q", metric)
}

// Run is one labelled benchmark sweep.
type Run struct {
	Timestamp  string                 `json:"timestamp"`
	GoMaxProcs int                    `json:"gomaxprocs"`
	NumCPU     int                    `json:"numcpu"`
	Note       string                 `json:"note,omitempty"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

// File is the on-disk artefact: metadata plus labelled runs.
type File struct {
	Description string         `json:"description"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	Runs        map[string]Run `json:"runs"`
}

// Load reads and decodes one BENCH_*.json artefact.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// Save writes the artefact as indented JSON (trailing newline, matching
// what cmd/benchjson writes).
func (f *File) Save(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Labels returns the run labels in sorted order.
func (f *File) Labels() []string {
	out := make([]string, 0, len(f.Runs))
	for l := range f.Runs {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Inflate returns a deep copy with every benchmark's metrics scaled by
// factor — the synthetic-slowdown fixture the CI smoke gate uses to
// prove the regression check actually trips.
func (f *File) Inflate(factor float64) *File {
	out := &File{Description: f.Description, GOOS: f.GOOS, GOARCH: f.GOARCH, Runs: map[string]Run{}}
	for label, run := range f.Runs {
		nr := run
		nr.Benchmarks = make(map[string]Measurement, len(run.Benchmarks))
		for name, m := range run.Benchmarks {
			m.NsPerOp = int64(float64(m.NsPerOp) * factor)
			m.BytesPerOp = int64(float64(m.BytesPerOp) * factor)
			m.AllocsPerOp = int64(float64(m.AllocsPerOp) * factor)
			nr.Benchmarks[name] = m
		}
		out.Runs[label] = nr
	}
	return out
}
