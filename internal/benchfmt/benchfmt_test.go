package benchfmt

import (
	"path/filepath"
	"testing"
)

func mkFile(runs map[string]map[string]int64) *File {
	f := &File{Runs: map[string]Run{}}
	for label, benches := range runs {
		r := Run{Benchmarks: map[string]Measurement{}}
		for name, ns := range benches {
			r.Benchmarks[name] = Measurement{NsPerOp: ns, BytesPerOp: ns / 10, AllocsPerOp: 3, Iterations: 100}
		}
		f.Runs[label] = r
	}
	return f
}

func TestCompareIdenticalPasses(t *testing.T) {
	f := mkFile(map[string]map[string]int64{
		"r1": {"A": 1000, "B": 2000},
		"r2": {"A": 1100, "B": 1900},
	})
	res, err := Compare(f, f, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 0 {
		t.Fatalf("identical files: %d regressions: %+v", res.Regressions, res.Deltas)
	}
	if res.Metric != MetricNsPerOp || res.Stat != StatMin || res.Threshold != 0.10 {
		t.Fatalf("defaults not applied: %+v", res)
	}
	// min-of-N: A aggregates to 1000, B to 1900.
	for _, d := range res.Deltas {
		want := map[string]float64{"A": 1000, "B": 1900}[d.Name]
		if d.Old != want || d.New != want {
			t.Fatalf("delta %s = %+v, want both sides %g", d.Name, d, want)
		}
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	oldF := mkFile(map[string]map[string]int64{"r": {"A": 1000, "B": 2000}})
	newF := mkFile(map[string]map[string]int64{"r": {"A": 1250, "B": 2050}})
	res, err := Compare(oldF, newF, CompareOptions{Threshold: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1: %+v", res.Regressions, res.Deltas)
	}
	for _, d := range res.Deltas {
		if d.Name == "A" && !d.Regression {
			t.Fatalf("A (+25%%) not flagged: %+v", d)
		}
		if d.Name == "B" && d.Regression {
			t.Fatalf("B (+2.5%%) flagged: %+v", d)
		}
	}
}

func TestCompareMinDeltaFloor(t *testing.T) {
	oldF := mkFile(map[string]map[string]int64{"r": {"tiny": 100}})
	newF := mkFile(map[string]map[string]int64{"r": {"tiny": 150}})
	// +50% but only 50 ns — below the absolute floor.
	res, err := Compare(oldF, newF, CompareOptions{MinDelta: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 0 {
		t.Fatalf("sub-floor delta flagged: %+v", res.Deltas)
	}
}

func TestCompareMedianAndLabels(t *testing.T) {
	oldF := mkFile(map[string]map[string]int64{
		"r1": {"A": 1000},
		"r2": {"A": 1200},
		"r3": {"A": 5000}, // outlier the median ignores
	})
	newF := mkFile(map[string]map[string]int64{"s1": {"A": 1210}})
	res, err := Compare(oldF, newF, CompareOptions{Stat: StatMedian})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Deltas[0]; d.Old != 1200 || d.Regression {
		t.Fatalf("median delta = %+v, want old 1200, no regression", d)
	}
	// Selecting only the outlier run makes the new side look fast.
	res, err = Compare(oldF, newF, CompareOptions{OldLabels: []string{"r3"}})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Deltas[0]; d.Old != 5000 {
		t.Fatalf("label-selected old = %g, want 5000", d.Old)
	}
	if _, err := Compare(oldF, newF, CompareOptions{OldLabels: []string{"nope"}}); err == nil {
		t.Fatal("unknown label accepted")
	}
}

func TestCompareOneSidedBenchmarks(t *testing.T) {
	oldF := mkFile(map[string]map[string]int64{"r": {"A": 1000, "gone": 500}})
	newF := mkFile(map[string]map[string]int64{"r": {"A": 1000, "added": 700}})
	res, err := Compare(oldF, newF, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 0 {
		t.Fatalf("one-sided benchmarks counted as regressions: %+v", res.Deltas)
	}
	seen := map[string]Delta{}
	for _, d := range res.Deltas {
		seen[d.Name] = d
	}
	if !seen["gone"].OnlyOld || !seen["added"].OnlyNew {
		t.Fatalf("one-sided flags wrong: %+v", res.Deltas)
	}
}

func TestInflateAndRoundTrip(t *testing.T) {
	f := mkFile(map[string]map[string]int64{"r": {"A": 1000}})
	slow := f.Inflate(1.25)
	if got := slow.Runs["r"].Benchmarks["A"].NsPerOp; got != 1250 {
		t.Fatalf("inflated ns = %d, want 1250", got)
	}
	if f.Runs["r"].Benchmarks["A"].NsPerOp != 1000 {
		t.Fatal("Inflate mutated the original")
	}
	res, err := Compare(f, slow, CompareOptions{Threshold: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 1 {
		t.Fatalf("inflated copy not flagged: %+v", res.Deltas)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Runs["r"].Benchmarks["A"] != f.Runs["r"].Benchmarks["A"] {
		t.Fatalf("round trip lost data: %+v", got.Runs["r"])
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestMeasurementValue(t *testing.T) {
	m := Measurement{NsPerOp: 10, BytesPerOp: 20, AllocsPerOp: 30}
	for metric, want := range map[string]float64{
		MetricNsPerOp: 10, MetricBytesPerOp: 20, MetricAllocsPerOp: 30,
	} {
		v, err := m.Value(metric)
		if err != nil || v != want {
			t.Fatalf("Value(%s) = %g, %v", metric, v, err)
		}
	}
	if _, err := m.Value("walrus"); err == nil {
		t.Fatal("unknown metric accepted")
	}
}
