package benchfmt

import (
	"fmt"
	"sort"
	"strings"
)

// Stat names for aggregating a benchmark's metric across several runs.
const (
	// StatMin takes the minimum across runs — the classic min-of-N rule:
	// the fastest observation is the least noise-contaminated one.
	StatMin = "min"
	// StatMedian takes the median across runs.
	StatMedian = "median"
)

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// Metric selects which measurement column to compare
	// (default ns_per_op).
	Metric string
	// Stat aggregates the metric across the selected runs
	// (default min).
	Stat string
	// OldLabels / NewLabels select which runs of each file participate;
	// empty selects every run in the file.
	OldLabels []string
	NewLabels []string
	// Threshold is the relative-epsilon noise allowance: a benchmark
	// regresses only when new > old × (1 + Threshold). Default 0.10.
	Threshold float64
	// MinDelta is an absolute floor (in metric units) under which a
	// difference is never a regression, so microsecond-scale noise on
	// tiny benchmarks cannot trip the gate.
	MinDelta float64
}

// withDefaults fills zero fields.
func (o CompareOptions) withDefaults() CompareOptions {
	if o.Metric == "" {
		o.Metric = MetricNsPerOp
	}
	if o.Stat == "" {
		o.Stat = StatMin
	}
	if o.Threshold == 0 {
		o.Threshold = 0.10
	}
	return o
}

// Delta compares one benchmark across the two files.
type Delta struct {
	Name string  `json:"name"`
	Old  float64 `json:"old"`
	New  float64 `json:"new"`
	// Ratio is New/Old (0 when Old is 0 or the benchmark is one-sided).
	Ratio      float64 `json:"ratio,omitempty"`
	Regression bool    `json:"regression,omitempty"`
	// OnlyOld/OnlyNew mark benchmarks present on a single side; they are
	// reported but never count as regressions.
	OnlyOld bool `json:"only_old,omitempty"`
	OnlyNew bool `json:"only_new,omitempty"`
}

// Result is the full gate outcome.
type Result struct {
	Metric      string  `json:"metric"`
	Stat        string  `json:"stat"`
	Threshold   float64 `json:"threshold"`
	Deltas      []Delta `json:"deltas"`
	Regressions int     `json:"regressions"`
}

// Compare aggregates each benchmark's metric over the selected runs of
// both files (min-of-N or median) and flags regressions with the
// relative-epsilon rule. Benchmarks present on only one side are
// reported informationally. An error is returned when a requested label
// does not exist or the selection matches no benchmarks at all.
func Compare(oldF, newF *File, opts CompareOptions) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Stat != StatMin && opts.Stat != StatMedian {
		return nil, fmt.Errorf("benchfmt: unknown stat %q (want %s|%s)", opts.Stat, StatMin, StatMedian)
	}
	oldVals, err := aggregate(oldF, opts.OldLabels, opts.Metric, opts.Stat)
	if err != nil {
		return nil, fmt.Errorf("old file: %w", err)
	}
	newVals, err := aggregate(newF, opts.NewLabels, opts.Metric, opts.Stat)
	if err != nil {
		return nil, fmt.Errorf("new file: %w", err)
	}
	if len(oldVals) == 0 || len(newVals) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmarks selected (old %d, new %d)", len(oldVals), len(newVals))
	}

	names := map[string]bool{}
	for n := range oldVals {
		names[n] = true
	}
	for n := range newVals {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	res := &Result{Metric: opts.Metric, Stat: opts.Stat, Threshold: opts.Threshold}
	for _, n := range ordered {
		ov, inOld := oldVals[n]
		nv, inNew := newVals[n]
		d := Delta{Name: n, Old: ov, New: nv, OnlyOld: !inNew, OnlyNew: !inOld}
		if inOld && inNew {
			if ov != 0 {
				d.Ratio = nv / ov
			}
			if nv > ov*(1+opts.Threshold) && nv-ov > opts.MinDelta {
				d.Regression = true
				res.Regressions++
			}
		}
		res.Deltas = append(res.Deltas, d)
	}
	return res, nil
}

// aggregate collapses each benchmark's metric across the selected runs.
func aggregate(f *File, labels []string, metric, stat string) (map[string]float64, error) {
	selected := labels
	if len(selected) == 0 {
		selected = f.Labels()
	}
	samples := map[string][]float64{}
	for _, label := range selected {
		run, ok := f.Runs[label]
		if !ok {
			return nil, fmt.Errorf("no run labelled %q (have %s)", label, strings.Join(f.Labels(), ", "))
		}
		for name, m := range run.Benchmarks {
			v, err := m.Value(metric)
			if err != nil {
				return nil, err
			}
			samples[name] = append(samples[name], v)
		}
	}
	out := make(map[string]float64, len(samples))
	for name, vals := range samples {
		sort.Float64s(vals)
		switch stat {
		case StatMin:
			out[name] = vals[0]
		case StatMedian:
			mid := len(vals) / 2
			if len(vals)%2 == 1 {
				out[name] = vals[mid]
			} else {
				out[name] = (vals[mid-1] + vals[mid]) / 2
			}
		}
	}
	return out, nil
}
