package core

import (
	"testing"

	"lsopc/internal/grid"
	"lsopc/internal/litho"
	"lsopc/internal/solve"
)

// allocOpts returns an option set whose steady-state iteration touches
// no allocating side channel: no reinitialisation (replaces ψ), no
// snapshots (clones the mask), and an iteration budget big enough that
// the pre-sized history slice never regrows.
func allocOpts(budget int) Options {
	opts := DefaultOptions()
	opts.MaxIter = budget
	opts.ReinitEvery = 0
	opts.SnapshotEvery = 0
	opts.Tolerance = 0 // never converge inside the measured window
	return opts
}

// warmDriver builds an optimizer mid-run: the solve driver constructed
// and one step taken, so every lazily-reached path is already warm.
func warmDriver(t testing.TB, sim *litho.Simulator, target *grid.Field, budget int) (*Optimizer, *solve.Driver) {
	o, err := New(sim, target, allocOpts(budget))
	if err != nil {
		t.Fatal(err)
	}
	drv, err := o.driver()
	if err != nil {
		t.Fatal(err)
	}
	drv.Step()
	return o, drv
}

func TestIterationZeroAllocWarm(t *testing.T) {
	sim := newTestSim(t, 4)
	o, drv := warmDriver(t, sim, crossTarget(64), 1000)
	defer o.Release()
	if avg := testing.AllocsPerRun(20, func() {
		drv.Step()
	}); avg != 0 {
		t.Fatalf("warm level-set iteration allocates %.1f objects/op, want 0", avg)
	}
}

func BenchmarkLevelSetIteration(b *testing.B) {
	sim := newTestSimB(b, 8)
	o, drv := warmDriver(b, sim, crossTarget(64), b.N+2)
	defer o.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drv.Step()
	}
}

// newTestSimB mirrors newTestSim for benchmarks.
func newTestSimB(b *testing.B, kernels int) *litho.Simulator {
	b.Helper()
	cfg := litho.DefaultConfig(64, 32)
	cfg.Optics.Kernels = kernels
	s, err := litho.NewSimulator(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	return s
}
