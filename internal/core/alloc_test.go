package core

import (
	"testing"

	"lsopc/internal/grid"
	"lsopc/internal/litho"
)

// allocOpts returns an option set whose steady-state iteration touches
// no allocating side channel: no reinitialisation (replaces ψ), no
// snapshots (clones the mask), and an iteration budget big enough that
// the pre-sized history slice never regrows.
func allocOpts(budget int) Options {
	opts := DefaultOptions()
	opts.MaxIter = budget
	opts.ReinitEvery = 0
	opts.SnapshotEvery = 0
	opts.Tolerance = 0 // never converge inside the measured window
	return opts
}

// warmOptimizer builds an optimizer mid-run: start() done and one step
// taken, so every lazily-reached path is already warm.
func warmOptimizer(t testing.TB, sim *litho.Simulator, target *grid.Field, budget int) *Optimizer {
	o, err := New(sim, target, allocOpts(budget))
	if err != nil {
		t.Fatal(err)
	}
	if err := o.start(); err != nil {
		t.Fatal(err)
	}
	o.step(0)
	return o
}

func TestIterationZeroAllocWarm(t *testing.T) {
	sim := newTestSim(t, 4)
	o := warmOptimizer(t, sim, crossTarget(64), 1000)
	defer o.Release()
	iter := 1
	if avg := testing.AllocsPerRun(20, func() {
		o.step(iter)
		iter++
	}); avg != 0 {
		t.Fatalf("warm level-set iteration allocates %.1f objects/op, want 0", avg)
	}
}

func BenchmarkLevelSetIteration(b *testing.B) {
	sim := newTestSimB(b, 8)
	o := warmOptimizer(b, sim, crossTarget(64), b.N+2)
	defer o.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.step(i + 1)
	}
}

// newTestSimB mirrors newTestSim for benchmarks.
func newTestSimB(b *testing.B, kernels int) *litho.Simulator {
	b.Helper()
	cfg := litho.DefaultConfig(64, 32)
	cfg.Optics.Kernels = kernels
	s, err := litho.NewSimulator(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	return s
}
