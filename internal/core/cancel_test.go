package core

import (
	"context"
	"errors"
	"testing"

	"lsopc/internal/grid"
	"lsopc/internal/litho"
	"lsopc/internal/obs"
	"lsopc/internal/solve"
)

// cancelAtSink cancels a context when the iteration event numbered
// `at` is emitted — the deterministic stand-in for a user's Ctrl-C:
// the step that emits the event completes, and the driver observes the
// cancellation at the next iteration boundary.
type cancelAtSink struct {
	at     int
	cancel context.CancelFunc
}

func (s *cancelAtSink) Emit(e obs.Event) {
	if e.Type == obs.EventIteration && e.Iter == s.at {
		s.cancel()
	}
}

// cancelRun runs the (possibly multi-resolution) optimization and
// cancels it deterministically after global iteration `at` completes,
// returning the captured checkpoint.
func cancelRun(t *testing.T, sim *litho.Simulator, target *grid.Field, opts Options, at int) *solve.Checkpoint {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts.Sink = &cancelAtSink{at: at, cancel: cancel}
	_, err := RunMultiResolution(ctx, sim, target, opts)
	var cerr *solve.Cancelled
	if !errors.As(err, &cerr) {
		t.Fatalf("cancelled run returned %v, want *solve.Cancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
	return cerr.Checkpoint
}

// expectIdentical asserts a resumed run reproduced the uninterrupted
// reference bit for bit: same history row by row, same final ψ and
// mask.
func expectIdentical(t *testing.T, res, ref *Result) {
	t.Helper()
	if res.Iterations != ref.Iterations || res.Converged != ref.Converged {
		t.Fatalf("resumed run: %d iters converged=%v, reference %d/%v",
			res.Iterations, res.Converged, ref.Iterations, ref.Converged)
	}
	if len(res.History) != len(ref.History) {
		t.Fatalf("resumed history %d rows, reference %d", len(res.History), len(ref.History))
	}
	for i := range ref.History {
		if res.History[i] != ref.History[i] {
			t.Fatalf("history[%d] diverged after resume:\n  resumed   %+v\n  reference %+v",
				i, res.History[i], ref.History[i])
		}
	}
	if !res.Psi.Equal(ref.Psi, 0) {
		t.Fatal("resumed ψ differs from the uninterrupted run")
	}
	if !res.Mask.Equal(ref.Mask, 0) {
		t.Fatal("resumed mask differs from the uninterrupted run")
	}
}

func TestCancelMonolithicResumeBitIdentical(t *testing.T) {
	sim := newTestSim(t, 3)
	target := crossTarget(64)
	opts := DefaultOptions()
	opts.MaxIter = 10

	ref, err := RunMultiResolution(context.Background(), sim, target, opts)
	if err != nil {
		t.Fatal(err)
	}

	cp := cancelRun(t, sim, target, opts, 3)
	if cp.Factor != 1 || cp.Iter != 4 {
		t.Fatalf("checkpoint at factor %d iter %d, want 1/4", cp.Factor, cp.Iter)
	}
	if len(cp.History) != 4 {
		t.Fatalf("checkpoint history %d rows, want 4", len(cp.History))
	}

	opts.Sink = nil
	res, err := Resume(context.Background(), sim, target, opts, cp)
	if err != nil {
		t.Fatal(err)
	}
	expectIdentical(t, res, ref)
}

func TestCancelMultiResBetweenLevels(t *testing.T) {
	sim := newTestSim(t, 3)
	target := crossTarget(64)
	opts := DefaultOptions()
	opts.MaxIter = 12
	opts.Tolerance = 0 // use the full budget: keeps the level offsets pinned
	opts.MultiResFactor = 4
	opts.MultiResIters = 2 // levels: 64/4 ×2, 64/2 ×2, full ×8

	ref, err := RunMultiResolution(context.Background(), sim, target, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Global iteration 1 is the coarsest level's last step, so the
	// cancellation lands on the boundary *between* levels: the hand-off
	// has happened and the factor-2 level is checkpointed untouched.
	cp := cancelRun(t, sim, target, opts, 1)
	if cp.Factor != 2 || cp.Iter != 0 {
		t.Fatalf("checkpoint at factor %d iter %d, want 2/0", cp.Factor, cp.Iter)
	}
	if cp.DoneIters != 2 || len(cp.Done) != 2 {
		t.Fatalf("checkpoint carries %d done iterations (%d rows), want 2", cp.DoneIters, len(cp.Done))
	}

	opts.Sink = nil
	res, err := Resume(context.Background(), sim, target, opts, cp)
	if err != nil {
		t.Fatal(err)
	}
	expectIdentical(t, res, ref)
}

func TestCancelMultiResInsideFineLevel(t *testing.T) {
	sim := newTestSim(t, 3)
	target := crossTarget(64)
	opts := DefaultOptions()
	opts.MaxIter = 12
	opts.Tolerance = 0 // use the full budget: keeps the level offsets pinned
	opts.MultiResFactor = 4
	opts.MultiResIters = 2

	ref, err := RunMultiResolution(context.Background(), sim, target, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Global iteration 5 is the second step of the full-resolution level
	// (offset 4): the checkpoint must land inside that level.
	cp := cancelRun(t, sim, target, opts, 5)
	if cp.Factor != 1 || cp.Iter != 2 || cp.Offset != 4 {
		t.Fatalf("checkpoint at factor %d iter %d offset %d, want 1/2/4", cp.Factor, cp.Iter, cp.Offset)
	}

	opts.Sink = nil
	res, err := Resume(context.Background(), sim, target, opts, cp)
	if err != nil {
		t.Fatal(err)
	}
	expectIdentical(t, res, ref)
}

func TestResumeRejectsMismatchedRun(t *testing.T) {
	sim := newTestSim(t, 3)
	target := crossTarget(64)
	opts := DefaultOptions()
	opts.MaxIter = 10

	cp := cancelRun(t, sim, target, opts, 2)

	opts.Sink = nil
	if _, err := Resume(context.Background(), sim, target, opts, nil); err == nil {
		t.Fatal("nil checkpoint accepted")
	}
	bad := *cp
	bad.Method = "something-else"
	if _, err := Resume(context.Background(), sim, target, opts, &bad); err == nil {
		t.Fatal("foreign-method checkpoint accepted")
	}
	bad = *cp
	bad.Factor = 2
	if _, err := Resume(context.Background(), sim, target, opts, &bad); err == nil {
		t.Fatal("coarse-level checkpoint accepted by a single-resolution run")
	}
	multi := opts
	multi.MultiResFactor = 4
	bad = *cp
	bad.Factor = 8 // not a level of the factor-4 schedule
	if _, err := Resume(context.Background(), sim, target, multi, &bad); err == nil {
		t.Fatal("checkpoint at a factor outside the schedule accepted")
	}
}
