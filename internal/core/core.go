// Package core implements the paper's contribution: level-set based
// inverse lithography with the process-variation-aware cost function and
// Polak–Ribière–Polyak conjugate-gradient contour evolution
// (Algorithm 1 of the paper).
//
// Per iteration the optimizer:
//  1. extracts the binary mask from the level-set function ψ (Eq. 6),
//  2. simulates the three process corners and accumulates the total
//     cost gradient G = G_nom + w_pvb·(G_outer + G_inner)
//     (Eqs. 11–14),
//  3. forms the evolution velocity v = −G·|∇ψ| + λ^PRP·v_prev
//     (Eqs. 10, 15, 16),
//  4. advances ψ by a CFL-limited step Δt = λ_t / max|v| (lines 5–6),
//  5. periodically reinitialises ψ to a signed distance function.
//
// The loop stops after MaxIter iterations or when max|v| ≤ ε.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"lsopc/internal/grid"
	"lsopc/internal/levelset"
	"lsopc/internal/litho"
	"lsopc/internal/metrics"
	"lsopc/internal/obs"
	"lsopc/internal/rt"
	"lsopc/internal/solve"
)

// methodName tags this optimizer's checkpoints and cancellation events.
const methodName = "level-set"

// Optimizer-loop metrics in the default registry.
var (
	mIterations = obs.Default.Counter("core.iterations")
	mStepNS     = obs.Default.Histogram("core.step_ns", obs.DurationBounds)
)

// Options configures the optimizer. DefaultOptions gives the paper's
// configuration; the switches expose the ablations (plain gradient
// descent, upwind stencil, curvature smoothing, fused-kernel forward).
type Options struct {
	// MaxIter is the iteration budget N of Algorithm 1.
	MaxIter int
	// Tolerance is the velocity stopping threshold ε.
	Tolerance float64
	// LambdaT scales the CFL time step: Δt = LambdaT / max|v|, i.e. the
	// contour moves at most LambdaT pixels per iteration.
	LambdaT float64
	// PVBWeight is w_pvb, the weight of the process-variation cost
	// (Eq. 13). Zero optimizes nominal fidelity only.
	PVBWeight float64
	// UseCG enables the PRP conjugate-gradient velocity (Eqs. 15–16);
	// disabled it degenerates to steepest descent, the ablation the
	// paper's contribution (ii) is measured against.
	UseCG bool
	// UseUpwind selects the Godunov upwind stencil for |∇ψ| instead of
	// central differences (a stability extension beyond the paper).
	UseUpwind bool
	// ReinitEvery reinitialises ψ to a signed distance function every
	// that many iterations (0 disables).
	ReinitEvery int
	// CurvatureWeight adds κ·|∇ψ| contour smoothing to the velocity
	// (optional regulariser; 0 reproduces the paper).
	CurvatureWeight float64
	// SnapshotEvery records a mask snapshot every that many iterations
	// (0 disables), feeding the Fig. 2 evolution views.
	SnapshotEvery int
	// AdaptiveStep implements Algorithm 1's "choose a proper time step"
	// (line 5) with feedback: when an iteration raises the cost the step
	// scale λ_t is halved, and it recovers slowly on success. Disabled,
	// λ_t stays fixed.
	AdaptiveStep bool
	// KeepBest returns the lowest-cost iterate instead of the last one,
	// which de-noises the pixel-quantised contour updates.
	KeepBest bool
	// CleanupTinyPx removes mask islands and fills enclosed holes
	// smaller than this many pixels from the final mask (0 disables) —
	// the manufacturability cleanup of §I.
	CleanupTinyPx int
	// LineSearch evaluates the true cost at {½, 1, 2}× the CFL step and
	// advances with the best candidate — the "optimal time step" idea of
	// Lv et al. (the paper's reference [9]). Each iteration costs two
	// extra forward simulations per corner.
	LineSearch bool
	// BandWidthPx restricts the evolution to the narrow band
	// |ψ| ≤ BandWidthPx around the contour (0 = global evolution).
	// Classic Osher–Sethian narrow-banding: far-field velocity noise
	// cannot nucleate spurious features away from the pattern.
	BandWidthPx float64
	// SubpixelReinit uses the fast-marching method for periodic
	// reinitialisation, preserving the contour's sub-pixel position
	// (the EDT default snaps it to the pixel lattice).
	SubpixelReinit bool
	// InitialMask seeds ψ₀ from this mask instead of the target —
	// e.g. a rule-based OPC output (hybrid flow) or a previous node's
	// solution. Must match the grid; nil uses the target (Algorithm 1,
	// line 1).
	InitialMask *grid.Field
	// InitialPsi seeds the level-set function directly, bypassing the
	// signed-distance initialisation — used by the coarse-to-fine driver
	// to hand an upsampled, redistanced ψ to the next level. Takes
	// precedence over InitialMask. The field is cloned; the caller keeps
	// ownership.
	InitialPsi *grid.Field
	// MultiResFactor > 1 enables coarse-to-fine evolution (see
	// RunMultiResolution): the run starts on a grid downsampled by this
	// power-of-two factor, halving the factor each level until full
	// resolution. 0 or 1 runs single-resolution. Plain Optimizer.Run
	// ignores it — only RunMultiResolution consumes the schedule.
	MultiResFactor int
	// MultiResIters is the iteration budget per coarse level. Full
	// resolution gets the remainder of MaxIter after all coarse levels;
	// 0 defaults to MaxIter/2 split evenly across the coarse levels.
	MultiResIters int
	// IterOffset shifts the iteration numbers reported in History,
	// snapshots, trace events and watchdog verdicts — the coarse-to-fine
	// driver uses it to keep one globally contiguous iteration axis
	// across levels. Plain runs leave it 0.
	IterOffset int
	// Sink receives one structured iteration event per optimizer step
	// (cost terms, gradient norm, step size) plus per-corner simulate
	// spans from the underlying simulator sessions. nil (the default)
	// disables tracing; the disabled path is a nil check and performs no
	// allocations, so the steady-state iteration stays allocation-free.
	Sink obs.Sink
	// TraceID tags this run's events so traces from concurrent
	// optimizations through a shared sink stay distinguishable.
	TraceID string
	// Health enables the numerical-health watchdog: each iteration's
	// cost, gradient norm and time step are judged against the policy,
	// unhealthy iterations emit a typed health event to Sink, and with
	// AbortOnUnhealthy the run stops early (Result.Aborted/AbortReason).
	// nil disables the watchdog entirely.
	Health *obs.HealthPolicy
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		MaxIter:      50,
		Tolerance:    1e-6,
		LambdaT:      2,
		PVBWeight:    0.6,
		UseCG:        true,
		ReinitEvery:  10,
		AdaptiveStep: true,
		KeepBest:     true,
	}
}

// Validate checks option sanity.
func (o Options) Validate() error {
	switch {
	case o.MaxIter < 1:
		return fmt.Errorf("core: MaxIter must be ≥ 1, got %d", o.MaxIter)
	case o.Tolerance < 0:
		return fmt.Errorf("core: Tolerance must be ≥ 0, got %g", o.Tolerance)
	case o.LambdaT <= 0:
		return fmt.Errorf("core: LambdaT must be positive, got %g", o.LambdaT)
	case o.PVBWeight < 0:
		return fmt.Errorf("core: PVBWeight must be ≥ 0, got %g", o.PVBWeight)
	case o.ReinitEvery < 0 || o.SnapshotEvery < 0:
		return fmt.Errorf("core: periods must be ≥ 0")
	case o.CurvatureWeight < 0:
		return fmt.Errorf("core: CurvatureWeight must be ≥ 0, got %g", o.CurvatureWeight)
	case o.CleanupTinyPx < 0:
		return fmt.Errorf("core: CleanupTinyPx must be ≥ 0, got %d", o.CleanupTinyPx)
	case o.BandWidthPx < 0:
		return fmt.Errorf("core: BandWidthPx must be ≥ 0, got %g", o.BandWidthPx)
	case o.MultiResFactor < 0:
		return fmt.Errorf("core: MultiResFactor must be ≥ 0, got %d", o.MultiResFactor)
	case o.MultiResFactor > 1 && !grid.IsPow2(o.MultiResFactor):
		return fmt.Errorf("core: MultiResFactor must be a power of two, got %d", o.MultiResFactor)
	case o.MultiResIters < 0:
		return fmt.Errorf("core: MultiResIters must be ≥ 0, got %d", o.MultiResIters)
	case o.IterOffset < 0:
		return fmt.Errorf("core: IterOffset must be ≥ 0, got %d", o.IterOffset)
	}
	return nil
}

// IterStats records one iteration of the optimization trace.
type IterStats struct {
	Iter        int
	CostNominal float64 // ‖R_nom − R*‖² (Eq. 7)
	CostPVB     float64 // ‖R_in − R*‖² + ‖R_out − R*‖² (Eq. 12)
	CostTotal   float64 // Eq. 13
	MaxVelocity float64
	TimeStep    float64
	LambdaPRP   float64
}

// Snapshot is a mask state captured mid-evolution (Fig. 2).
type Snapshot struct {
	Iter int
	Mask *grid.Field
}

// Result is the outcome of one optimization run.
type Result struct {
	Mask       *grid.Field // optimized binary mask M* (Eq. 6 of final ψ)
	Psi        *grid.Field // final level-set function
	Iterations int
	Converged  bool // stopped on the velocity tolerance
	// Aborted is set when the health watchdog stopped the run early;
	// AbortReason carries the obs.Health* reason code.
	Aborted     bool
	AbortReason string
	// AbortCheckpoint is the solver state at the aborted iteration
	// boundary (nil unless Aborted) — resumable via Resume, persisted by
	// the flight recorder's postmortem bundles.
	AbortCheckpoint *solve.Checkpoint
	History         []IterStats
	Snapshots       []Snapshot
}

// FinalCost returns the total cost at the last iteration.
func (r *Result) FinalCost() float64 {
	if len(r.History) == 0 {
		return math.NaN()
	}
	return r.History[len(r.History)-1].CostTotal
}

// BestCost returns the lowest total cost seen during the run; with
// Options.KeepBest this is the cost of the returned mask.
func (r *Result) BestCost() float64 {
	if len(r.History) == 0 {
		return math.NaN()
	}
	best := r.History[0].CostTotal
	for _, h := range r.History[1:] {
		if h.CostTotal < best {
			best = h.CostTotal
		}
	}
	return best
}

// Optimizer runs level-set ILT for one target. Not safe for concurrent
// use (it owns the simulator's scratch). All of its working memory is
// leased from the simulator's pool at construction and returned by
// Release, and the per-iteration engine tasks are bound once, so the
// steady-state iteration allocates nothing.
type Optimizer struct {
	sim    *litho.Simulator
	target *grid.Field
	opts   Options
	pool   *rt.Pool
	// corners holds one worker per process corner when the PV-band cost
	// is active: the three corners simulate concurrently on sibling
	// simulators scheduled on Split sub-engines, so the corner fan-out
	// and the per-corner FFT fan-out compose without oversubscription.
	// nil when PVBWeight == 0 (nominal-only optimization).
	corners []*cornerWorker
	// Pre-bound engine tasks (created once; see simulateCorners and
	// costAtPsi).
	cornerTasks []func()
	costTasks   []func()
	combineBody func(lo, hi int)

	// Leased run scratch, returned by Release.
	mask     *grid.Field
	maskSpec *grid.CField
	imgs     *litho.CornerImages
	grad     *grid.Field // G_i (Eq. 14)
	gmag     *grid.Field // |∇ψ_i|
	gTerm    *grid.Field // g_i = G_i·|∇ψ_i|
	gPrev    *grid.Field // g_{i-1}
	velocity *grid.Field // v_i
	curv     *grid.Field // nil unless CurvatureWeight > 0
	psiCand  *grid.Field // nil unless LineSearch
	bestMask *grid.Field // nil unless KeepBest
	bestPsi  *grid.Field // nil unless KeepBest

	// Per-run state reset by start; the iteration-loop bookkeeping
	// (step scale, best cost, history, watchdog) lives in the
	// solve.Driver built per run.
	psi *grid.Field // level-set function (reallocated by reinit)

	released bool
}

// cornerWorker bundles one process corner's simulator and result
// buffers. Each worker owns its gradient and image scratch, so the three
// corners can run concurrently; results are combined afterwards in the
// fixed nominal→outer→inner order, which keeps the total gradient
// bit-identical to the serial accumulation for any engine.
type cornerWorker struct {
	sim    *litho.Simulator
	cond   litho.Condition
	weight float64
	grad   *grid.Field
	imgs   *litho.CornerImages
	cost   float64
}

// ErrShapeMismatch is returned when the target does not match the
// simulator grid.
var ErrShapeMismatch = errors.New("core: target shape does not match simulator grid")

// New builds an optimizer for the given simulator and target image
// (the rasterised design, 1 inside pattern). The target must match the
// simulator grid.
func New(sim *litho.Simulator, target *grid.Field, opts Options) (*Optimizer, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := sim.GridSize()
	if target.W != n || target.H != n {
		return nil, fmt.Errorf("%w: target %dx%d, grid %d", ErrShapeMismatch, target.W, target.H, n)
	}
	o := &Optimizer{sim: sim, target: target, opts: opts, pool: sim.Pool()}
	pool := o.pool
	if opts.Sink != nil {
		// Attach before the corner siblings are created so they inherit
		// the sink and emit per-corner simulate spans under one trace id.
		sim.SetSink(opts.Sink, opts.TraceID)
	}
	if opts.PVBWeight > 0 {
		subs := sim.Engine().Split(len(litho.AllConditions))
		for i, cond := range litho.AllConditions {
			csim, err := sim.Sibling(subs[i])
			if err != nil {
				o.Release()
				return nil, err
			}
			weight := 1.0
			if cond != litho.Nominal {
				weight = opts.PVBWeight
			}
			o.corners = append(o.corners, &cornerWorker{
				sim:    csim,
				cond:   cond,
				weight: weight,
				grad:   pool.Field(n, n),
				imgs:   litho.LeaseCornerImages(pool, n),
			})
		}
		// Bind the per-corner simulate and cost-probe tasks and the
		// gradient combine once, so each iteration reuses them.
		o.cornerTasks = make([]func(), len(o.corners))
		o.costTasks = make([]func(), len(o.corners))
		for i := range o.corners {
			c := o.corners[i]
			o.cornerTasks[i] = func() {
				c.grad.Zero()
				c.cost = c.sim.ForwardAndGradient(c.grad, o.maskSpec, c.cond, o.target, c.imgs, c.weight)
			}
			o.costTasks[i] = func() {
				c.sim.Forward(c.imgs, o.maskSpec, c.cond)
				c.cost = litho.CostAt(c.imgs.R, o.target)
			}
		}
		o.combineBody = func(lo, hi int) {
			d := o.grad.Data
			g0 := o.corners[0].grad.Data
			g1 := o.corners[1].grad.Data
			g2 := o.corners[2].grad.Data
			for j := lo; j < hi; j++ {
				d[j] = g0[j] + g1[j] + g2[j]
			}
		}
	}
	o.mask = pool.Field(n, n)
	o.maskSpec = pool.CField(n, n)
	o.imgs = litho.LeaseCornerImages(pool, n)
	o.grad = pool.Field(n, n)
	o.gmag = pool.Field(n, n)
	o.gTerm = pool.Field(n, n)
	o.gPrev = pool.Field(n, n)
	o.velocity = pool.Field(n, n)
	if opts.CurvatureWeight > 0 {
		o.curv = pool.Field(n, n)
	}
	if opts.LineSearch {
		o.psiCand = pool.Field(n, n)
	}
	if opts.KeepBest {
		o.bestMask = pool.Field(n, n)
		o.bestPsi = pool.Field(n, n)
	}
	return o, nil
}

// Release returns the optimizer's leased scratch (including the sibling
// corner sessions) to the pool. The simulator passed to New is caller-
// owned and not touched. Results returned by Run remain valid: they own
// their fields. Release is idempotent and nil-safe.
func (o *Optimizer) Release() {
	if o == nil || o.released {
		return
	}
	o.released = true
	pool := o.pool
	for _, c := range o.corners {
		c.sim.Release()
		pool.PutField(c.grad)
		c.imgs.ReleaseTo(pool)
		c.grad, c.imgs = nil, nil
	}
	o.corners, o.cornerTasks, o.costTasks, o.combineBody = nil, nil, nil, nil
	pool.PutField(o.mask)
	pool.PutCField(o.maskSpec)
	o.imgs.ReleaseTo(pool)
	for _, f := range []*grid.Field{o.grad, o.gmag, o.gTerm, o.gPrev, o.velocity, o.curv, o.psiCand, o.bestMask, o.bestPsi} {
		pool.PutField(f)
	}
	o.mask, o.maskSpec, o.imgs = nil, nil, nil
	o.grad, o.gmag, o.gTerm, o.gPrev, o.velocity = nil, nil, nil, nil, nil
	o.curv, o.psiCand, o.bestMask, o.bestPsi, o.psi = nil, nil, nil, nil, nil
}

// simulateCorners runs ForwardAndGradient for all three corners
// concurrently (each on its own sibling simulator and sub-engine) and
// leaves per-corner costs and gradients in the workers.
func (o *Optimizer) simulateCorners() {
	o.sim.Engine().Parallel(o.cornerTasks...)
}

// Run executes Algorithm 1 and returns the optimized mask. The result
// owns its fields, so it stays valid after Release.
func (o *Optimizer) Run() (*Result, error) {
	return o.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the loop yields at
// every iteration boundary, and a cancelled context surfaces as a
// *solve.Cancelled error (unwrapping to the context's error) carrying a
// checkpoint the run can resume from bit-identically.
func (o *Optimizer) RunContext(ctx context.Context) (*Result, error) {
	drv, err := o.driver()
	if err != nil {
		return nil, err
	}
	out, err := drv.Run(ctx)
	if err != nil {
		return nil, err
	}
	return o.finish(out), nil
}

// driver starts a fresh run (ψ initialisation) and wraps the optimizer
// in the shared solve runtime that owns the iteration bookkeeping.
func (o *Optimizer) driver() (*solve.Driver, error) {
	if err := o.start(); err != nil {
		return nil, err
	}
	return solve.NewDriver((*levelStepper)(o), solve.Config{
		Method:        methodName,
		MaxIter:       o.opts.MaxIter,
		Offset:        o.opts.IterOffset,
		Tolerance:     o.opts.Tolerance,
		AdaptiveStep:  o.opts.AdaptiveStep,
		BaseScale:     o.opts.LambdaT,
		KeepBest:      o.opts.KeepBest,
		SnapshotEvery: o.opts.SnapshotEvery,
		Sink:          o.opts.Sink,
		Trace:         o.opts.TraceID,
		Engine:        o.sim.Engine().Name(),
		Health:        o.opts.Health,
		Observe:       observeStep,
	}), nil
}

// observeStep feeds the per-iteration metrics at the same measurement
// point the pre-driver loop used.
func observeStep(d time.Duration) {
	mIterations.Inc()
	mStepNS.Observe(float64(d))
}

// start initialises the run state (Algorithm 1, line 1): M₀ = R* (or
// the supplied warm start), ψ₀ = signed distance of M₀.
func (o *Optimizer) start() error {
	n := o.sim.GridSize()
	switch {
	case o.opts.InitialPsi != nil:
		if o.opts.InitialPsi.W != n || o.opts.InitialPsi.H != n {
			return fmt.Errorf("%w: initial psi %dx%d, grid %d",
				ErrShapeMismatch, o.opts.InitialPsi.W, o.opts.InitialPsi.H, n)
		}
		o.psi = o.opts.InitialPsi.Clone()
	case o.opts.InitialMask != nil:
		if o.opts.InitialMask.W != n || o.opts.InitialMask.H != n {
			return fmt.Errorf("%w: initial mask %dx%d, grid %d",
				ErrShapeMismatch, o.opts.InitialMask.W, o.opts.InitialMask.H, n)
		}
		o.psi = levelset.SignedDistance(o.opts.InitialMask)
	default:
		o.psi = levelset.SignedDistance(o.target)
	}
	return nil
}

// lineSearchFactors are the step multiples probed by Options.LineSearch.
var lineSearchFactors = [3]float64{0.5, 1, 2}

// levelStepper is the Optimizer viewed through the solve.Stepper
// contract: Eval computes the PRP velocity from a fresh simulation,
// Advance applies the CFL step (with optional line search and periodic
// reinitialisation), and SaveState/RestoreState serialize the level-set
// state for checkpoints. Defined as a type conversion of Optimizer so
// the methods stay allocation-free.
type levelStepper Optimizer

// Eval runs lines 7–8 of Algorithm 1 for local iteration i: extract
// mask, simulate the corners, accumulate the gradient, and form the
// evolution velocity. All scratch lives on the optimizer and every
// engine task is pre-bound, so a steady-state call allocates nothing.
func (s *levelStepper) Eval(i int) solve.Stats {
	o := (*Optimizer)(s)
	levelset.MaskFromPsi(o.mask, o.psi)
	o.sim.MaskSpectrumInto(o.maskSpec, o.mask)

	var costNom, costPVB float64
	if o.corners != nil {
		// All three corners concurrently; combine gradients in the
		// fixed nominal→outer→inner order so the sum matches the
		// serial accumulation bit-for-bit on any engine.
		o.simulateCorners()
		costNom = o.corners[0].cost
		costPVB = o.corners[1].cost + o.corners[2].cost
		o.sim.Engine().ForChunk(len(o.grad.Data), o.combineBody)
	} else {
		o.grad.Zero()
		costNom = o.sim.ForwardAndGradient(o.grad, o.maskSpec, litho.Nominal, o.target, o.imgs, 1)
	}

	// Velocity (Eq. 10 with our sign convention): v = +G·|∇ψ|.
	// The paper writes v = −∂L/∂M·|∇ψ| for its ψ orientation; with
	// ψ < 0 inside and M = H(−ψ) (Eqs. 5–6), dL/dt = −⟨G·δ(ψ), v⟩,
	// so descent requires v = +G|∇ψ|: raising ψ where ∂L/∂M > 0
	// retracts the contour there. The PRP momentum term (Eqs.
	// 15–16) is added when CG is enabled.
	if o.opts.UseUpwind {
		// The upwind stencil selects one-sided differences by the
		// sign of the advection speed, which is G here.
		levelset.GradMagUpwind(o.gmag, o.psi, o.grad)
	} else {
		levelset.GradMag(o.gmag, o.psi)
	}
	o.gTerm.Mul(o.grad, o.gmag)

	lambda := 0.0
	if o.opts.UseCG && i > 0 {
		lambda = prpCoefficient(o.gTerm, o.gPrev)
	}
	if lambda == 0 {
		o.velocity.CopyFrom(o.gTerm)
	} else {
		// v_i = g_i + λ·v_{i−1}; velocity still holds v_{i−1}.
		for j := range o.velocity.Data {
			o.velocity.Data[j] = o.gTerm.Data[j] + lambda*o.velocity.Data[j]
		}
		// Restart safeguard: the conjugate direction must remain a
		// descent direction (positively aligned with g, since the
		// update applies +v). A contour that jumped pixels can
		// decorrelate the gradients enough to violate this.
		if o.velocity.Dot(o.gTerm) <= 0 {
			lambda = 0
			o.velocity.CopyFrom(o.gTerm)
		}
	}
	if o.opts.CurvatureWeight > 0 {
		// Mean-curvature smoothing: ψ_t += w·κ|∇ψ| erodes
		// high-curvature protrusions (κ > 0 on convex contour
		// segments for ψ < 0 inside).
		levelset.Curvature(o.curv, o.psi)
		o.curv.Mul(o.curv, o.gmag)
		o.velocity.AddScaled(o.curv, o.opts.CurvatureWeight)
	}
	o.gPrev.CopyFrom(o.gTerm)

	// Narrow-band restriction: freeze ψ away from the contour.
	if band := o.opts.BandWidthPx; band > 0 {
		for j, p := range o.psi.Data {
			if p > band || p < -band {
				o.velocity.Data[j] = 0
			}
		}
	}

	return solve.Stats{
		Cost:        costNom + o.opts.PVBWeight*costPVB,
		CostNominal: costNom,
		CostPVB:     costPVB,
		LambdaPRP:   lambda,
		Detailed:    true,
	}
}

// SaveBest copies the current iterate into the keep-best store.
func (s *levelStepper) SaveBest() {
	o := (*Optimizer)(s)
	o.bestMask.CopyFrom(o.mask)
	o.bestPsi.CopyFrom(o.psi)
}

// StepSize returns the CFL time step under the driver's λ_t scale and
// the velocity's max abs entry (the convergence statistic, line 12).
func (s *levelStepper) StepSize(scale float64) (dt, maxV float64) {
	o := (*Optimizer)(s)
	maxV = o.velocity.MaxAbs()
	dt = levelset.TimeStep(scale, o.velocity)
	return dt, maxV
}

// GradNorm returns ‖g‖ for tracing and health verdicts.
func (s *levelStepper) GradNorm() float64 {
	return (*Optimizer)(s).gTerm.Norm()
}

// Advance applies lines 5–6 of Algorithm 1: optional exact line search
// over the step size, the level-set update, and the periodic
// reinitialisation that keeps ψ a signed distance function.
func (s *levelStepper) Advance(i int, dt float64) float64 {
	o := (*Optimizer)(s)
	// Optional exact line search over the step size (reference [9]'s
	// optimal time step): probe {½, 1, 2}× the CFL step.
	if o.opts.LineSearch && dt > 0 {
		bestDt, bestC := dt, math.Inf(1)
		for _, f := range lineSearchFactors {
			cand := dt * f
			o.psiCand.CopyFrom(o.psi)
			o.psiCand.AddScaled(o.velocity, cand)
			if c := o.costAtPsi(o.psiCand); c < bestC {
				bestC, bestDt = c, cand
			}
		}
		dt = bestDt
	}

	levelset.Evolve(o.psi, o.velocity, dt)

	if o.opts.ReinitEvery > 0 && (i+1)%o.opts.ReinitEvery == 0 {
		if o.opts.SubpixelReinit {
			o.psi = levelset.ReinitializeFMM(o.psi)
		} else {
			o.psi = levelset.Reinitialize(o.psi)
		}
	}
	return dt
}

// Snapshot clones the current mask for the snapshot series.
func (s *levelStepper) Snapshot() *grid.Field {
	return (*Optimizer)(s).mask.Clone()
}

// State clones ψ — the multi-resolution hand-off and Outcome.State.
func (s *levelStepper) State() *grid.Field {
	return (*Optimizer)(s).psi.Clone()
}

// SaveState clones the fields a bit-exact resume needs: ψ, the CG
// memory (previous gradient term and velocity), and the keep-best
// iterate when tracked.
func (s *levelStepper) SaveState() map[string]*grid.Field {
	o := (*Optimizer)(s)
	st := map[string]*grid.Field{
		"psi":      o.psi.Clone(),
		"gprev":    o.gPrev.Clone(),
		"velocity": o.velocity.Clone(),
	}
	if o.opts.KeepBest {
		st["bestmask"] = o.bestMask.Clone()
		st["bestpsi"] = o.bestPsi.Clone()
	}
	return st
}

// RestoreState loads a SaveState map back into the optimizer's scratch.
func (s *levelStepper) RestoreState(st map[string]*grid.Field) error {
	o := (*Optimizer)(s)
	psi := st["psi"]
	if psi == nil {
		return fmt.Errorf("core: checkpoint state carries no psi field")
	}
	if psi.W != o.psi.W || psi.H != o.psi.H {
		return fmt.Errorf("%w: checkpoint psi %dx%d, grid %d", ErrShapeMismatch, psi.W, psi.H, o.psi.W)
	}
	o.psi.CopyFrom(psi)
	for key, dst := range map[string]*grid.Field{
		"gprev":    o.gPrev,
		"velocity": o.velocity,
		"bestmask": o.bestMask,
		"bestpsi":  o.bestPsi,
	} {
		f := st[key]
		if f == nil || dst == nil {
			continue
		}
		if f.W != dst.W || f.H != dst.H {
			return fmt.Errorf("%w: checkpoint %s %dx%d, grid %d", ErrShapeMismatch, key, f.W, f.H, dst.W)
		}
		dst.CopyFrom(f)
	}
	return nil
}

// finish assembles the result from the driver's outcome. Mask and ψ are
// cloned out of the leased scratch so the result survives Release.
func (o *Optimizer) finish(out *solve.Outcome) *Result {
	res := &Result{
		Iterations:      out.Iterations,
		Converged:       out.Converged,
		Aborted:         out.Aborted,
		AbortReason:     out.AbortReason,
		AbortCheckpoint: out.AbortCheckpoint,
		History:         historyFromSolve(out.History),
		Snapshots:       snapshotsFromSolve(out.Snapshots),
	}
	levelset.MaskFromPsi(o.mask, o.psi)
	if o.opts.KeepBest && !math.IsInf(out.BestCost, 1) {
		res.Mask = o.bestMask.Clone()
		res.Psi = o.bestPsi.Clone()
	} else {
		res.Mask = o.mask.Clone()
		res.Psi = o.psi.Clone()
	}
	if o.opts.CleanupTinyPx > 0 {
		metrics.RemoveTinyFeatures(res.Mask, o.opts.CleanupTinyPx, o.opts.CleanupTinyPx)
	}
	return res
}

// historyFromSolve converts the driver's history records to this
// package's schema (CostTotal carries the driver's Cost).
func historyFromSolve(hs []solve.IterStats) []IterStats {
	out := make([]IterStats, len(hs))
	for i, h := range hs {
		out[i] = IterStats{
			Iter:        h.Iter,
			CostNominal: h.CostNominal,
			CostPVB:     h.CostPVB,
			CostTotal:   h.Cost,
			MaxVelocity: h.MaxVelocity,
			TimeStep:    h.TimeStep,
			LambdaPRP:   h.LambdaPRP,
		}
	}
	return out
}

// snapshotsFromSolve converts the driver's snapshot series (identical
// field layout; nil stays nil).
func snapshotsFromSolve(ss []solve.Snapshot) []Snapshot {
	if len(ss) == 0 {
		return nil
	}
	out := make([]Snapshot, len(ss))
	for i, s := range ss {
		out[i] = Snapshot(s)
	}
	return out
}

// costAtPsi evaluates the total cost (Eq. 13) of the mask induced by the
// candidate level-set function, reusing the optimizer's scratch buffers
// (it overwrites mask and maskSpec; the caller recomputes them next
// iteration).
func (o *Optimizer) costAtPsi(psi *grid.Field) float64 {
	levelset.MaskFromPsi(o.mask, psi)
	o.sim.MaskSpectrumInto(o.maskSpec, o.mask)
	if o.corners != nil {
		o.sim.Engine().Parallel(o.costTasks...)
		return o.corners[0].cost + o.opts.PVBWeight*o.corners[1].cost + o.opts.PVBWeight*o.corners[2].cost
	}
	o.sim.Forward(o.imgs, o.maskSpec, litho.Nominal)
	return litho.CostAt(o.imgs.R, o.target)
}

// prpCoefficient computes the Polak–Ribière–Polyak coefficient (Eq. 16)
//
//	λ = (‖g_i‖² − g_i·g_{i−1}) / ‖g_{i−1}‖²
//
// with the standard PRP+ safeguard: non-finite or negative values reset
// the search direction to steepest descent (λ = 0), which is what
// prevents the jamming the paper mentions.
func prpCoefficient(g, gPrev *grid.Field) float64 {
	den := gPrev.Norm2()
	if den == 0 {
		return 0
	}
	lambda := (g.Norm2() - g.Dot(gPrev)) / den
	if math.IsNaN(lambda) || math.IsInf(lambda, 0) || lambda < 0 {
		return 0
	}
	// The binarised mask makes successive gradients far less correlated
	// than in smooth optimization, so unclamped PRP values can exceed 10
	// and turn the momentum into an amplifier. Capping at 1 keeps the
	// accumulated direction a convex-ish blend, which is what restores
	// the paper's "jamming prevented, convergence improved" behaviour.
	if lambda > 1 {
		lambda = 1
	}
	return lambda
}
