// Package core implements the paper's contribution: level-set based
// inverse lithography with the process-variation-aware cost function and
// Polak–Ribière–Polyak conjugate-gradient contour evolution
// (Algorithm 1 of the paper).
//
// Per iteration the optimizer:
//  1. extracts the binary mask from the level-set function ψ (Eq. 6),
//  2. simulates the three process corners and accumulates the total
//     cost gradient G = G_nom + w_pvb·(G_outer + G_inner)
//     (Eqs. 11–14),
//  3. forms the evolution velocity v = −G·|∇ψ| + λ^PRP·v_prev
//     (Eqs. 10, 15, 16),
//  4. advances ψ by a CFL-limited step Δt = λ_t / max|v| (lines 5–6),
//  5. periodically reinitialises ψ to a signed distance function.
//
// The loop stops after MaxIter iterations or when max|v| ≤ ε.
package core

import (
	"errors"
	"fmt"
	"math"

	"lsopc/internal/grid"
	"lsopc/internal/levelset"
	"lsopc/internal/litho"
	"lsopc/internal/metrics"
)

// Options configures the optimizer. DefaultOptions gives the paper's
// configuration; the switches expose the ablations (plain gradient
// descent, upwind stencil, curvature smoothing, fused-kernel forward).
type Options struct {
	// MaxIter is the iteration budget N of Algorithm 1.
	MaxIter int
	// Tolerance is the velocity stopping threshold ε.
	Tolerance float64
	// LambdaT scales the CFL time step: Δt = LambdaT / max|v|, i.e. the
	// contour moves at most LambdaT pixels per iteration.
	LambdaT float64
	// PVBWeight is w_pvb, the weight of the process-variation cost
	// (Eq. 13). Zero optimizes nominal fidelity only.
	PVBWeight float64
	// UseCG enables the PRP conjugate-gradient velocity (Eqs. 15–16);
	// disabled it degenerates to steepest descent, the ablation the
	// paper's contribution (ii) is measured against.
	UseCG bool
	// UseUpwind selects the Godunov upwind stencil for |∇ψ| instead of
	// central differences (a stability extension beyond the paper).
	UseUpwind bool
	// ReinitEvery reinitialises ψ to a signed distance function every
	// that many iterations (0 disables).
	ReinitEvery int
	// CurvatureWeight adds κ·|∇ψ| contour smoothing to the velocity
	// (optional regulariser; 0 reproduces the paper).
	CurvatureWeight float64
	// SnapshotEvery records a mask snapshot every that many iterations
	// (0 disables), feeding the Fig. 2 evolution views.
	SnapshotEvery int
	// AdaptiveStep implements Algorithm 1's "choose a proper time step"
	// (line 5) with feedback: when an iteration raises the cost the step
	// scale λ_t is halved, and it recovers slowly on success. Disabled,
	// λ_t stays fixed.
	AdaptiveStep bool
	// KeepBest returns the lowest-cost iterate instead of the last one,
	// which de-noises the pixel-quantised contour updates.
	KeepBest bool
	// CleanupTinyPx removes mask islands and fills enclosed holes
	// smaller than this many pixels from the final mask (0 disables) —
	// the manufacturability cleanup of §I.
	CleanupTinyPx int
	// LineSearch evaluates the true cost at {½, 1, 2}× the CFL step and
	// advances with the best candidate — the "optimal time step" idea of
	// Lv et al. (the paper's reference [9]). Each iteration costs two
	// extra forward simulations per corner.
	LineSearch bool
	// BandWidthPx restricts the evolution to the narrow band
	// |ψ| ≤ BandWidthPx around the contour (0 = global evolution).
	// Classic Osher–Sethian narrow-banding: far-field velocity noise
	// cannot nucleate spurious features away from the pattern.
	BandWidthPx float64
	// SubpixelReinit uses the fast-marching method for periodic
	// reinitialisation, preserving the contour's sub-pixel position
	// (the EDT default snaps it to the pixel lattice).
	SubpixelReinit bool
	// InitialMask seeds ψ₀ from this mask instead of the target —
	// e.g. a rule-based OPC output (hybrid flow) or a previous node's
	// solution. Must match the grid; nil uses the target (Algorithm 1,
	// line 1).
	InitialMask *grid.Field
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		MaxIter:      50,
		Tolerance:    1e-6,
		LambdaT:      2,
		PVBWeight:    0.6,
		UseCG:        true,
		ReinitEvery:  10,
		AdaptiveStep: true,
		KeepBest:     true,
	}
}

// Validate checks option sanity.
func (o Options) Validate() error {
	switch {
	case o.MaxIter < 1:
		return fmt.Errorf("core: MaxIter must be ≥ 1, got %d", o.MaxIter)
	case o.Tolerance < 0:
		return fmt.Errorf("core: Tolerance must be ≥ 0, got %g", o.Tolerance)
	case o.LambdaT <= 0:
		return fmt.Errorf("core: LambdaT must be positive, got %g", o.LambdaT)
	case o.PVBWeight < 0:
		return fmt.Errorf("core: PVBWeight must be ≥ 0, got %g", o.PVBWeight)
	case o.ReinitEvery < 0 || o.SnapshotEvery < 0:
		return fmt.Errorf("core: periods must be ≥ 0")
	case o.CurvatureWeight < 0:
		return fmt.Errorf("core: CurvatureWeight must be ≥ 0, got %g", o.CurvatureWeight)
	case o.CleanupTinyPx < 0:
		return fmt.Errorf("core: CleanupTinyPx must be ≥ 0, got %d", o.CleanupTinyPx)
	case o.BandWidthPx < 0:
		return fmt.Errorf("core: BandWidthPx must be ≥ 0, got %g", o.BandWidthPx)
	}
	return nil
}

// IterStats records one iteration of the optimization trace.
type IterStats struct {
	Iter        int
	CostNominal float64 // ‖R_nom − R*‖² (Eq. 7)
	CostPVB     float64 // ‖R_in − R*‖² + ‖R_out − R*‖² (Eq. 12)
	CostTotal   float64 // Eq. 13
	MaxVelocity float64
	TimeStep    float64
	LambdaPRP   float64
}

// Snapshot is a mask state captured mid-evolution (Fig. 2).
type Snapshot struct {
	Iter int
	Mask *grid.Field
}

// Result is the outcome of one optimization run.
type Result struct {
	Mask       *grid.Field // optimized binary mask M* (Eq. 6 of final ψ)
	Psi        *grid.Field // final level-set function
	Iterations int
	Converged  bool // stopped on the velocity tolerance
	History    []IterStats
	Snapshots  []Snapshot
}

// FinalCost returns the total cost at the last iteration.
func (r *Result) FinalCost() float64 {
	if len(r.History) == 0 {
		return math.NaN()
	}
	return r.History[len(r.History)-1].CostTotal
}

// BestCost returns the lowest total cost seen during the run; with
// Options.KeepBest this is the cost of the returned mask.
func (r *Result) BestCost() float64 {
	if len(r.History) == 0 {
		return math.NaN()
	}
	best := r.History[0].CostTotal
	for _, h := range r.History[1:] {
		if h.CostTotal < best {
			best = h.CostTotal
		}
	}
	return best
}

// Optimizer runs level-set ILT for one target. Not safe for concurrent
// use (it owns the simulator's scratch).
type Optimizer struct {
	sim    *litho.Simulator
	target *grid.Field
	opts   Options
	// corners holds one worker per process corner when the PV-band cost
	// is active: the three corners simulate concurrently on sibling
	// simulators scheduled on Split sub-engines, so the corner fan-out
	// and the per-corner FFT fan-out compose without oversubscription.
	// nil when PVBWeight == 0 (nominal-only optimization).
	corners []*cornerWorker
}

// cornerWorker bundles one process corner's simulator and result
// buffers. Each worker owns its gradient and image scratch, so the three
// corners can run concurrently; results are combined afterwards in the
// fixed nominal→outer→inner order, which keeps the total gradient
// bit-identical to the serial accumulation for any engine.
type cornerWorker struct {
	sim    *litho.Simulator
	cond   litho.Condition
	weight float64
	grad   *grid.Field
	imgs   *litho.CornerImages
	cost   float64
}

// ErrShapeMismatch is returned when the target does not match the
// simulator grid.
var ErrShapeMismatch = errors.New("core: target shape does not match simulator grid")

// New builds an optimizer for the given simulator and target image
// (the rasterised design, 1 inside pattern). The target must match the
// simulator grid.
func New(sim *litho.Simulator, target *grid.Field, opts Options) (*Optimizer, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := sim.GridSize()
	if target.W != n || target.H != n {
		return nil, fmt.Errorf("%w: target %dx%d, grid %d", ErrShapeMismatch, target.W, target.H, n)
	}
	o := &Optimizer{sim: sim, target: target, opts: opts}
	if opts.PVBWeight > 0 {
		subs := sim.Engine().Split(len(litho.AllConditions))
		for i, cond := range litho.AllConditions {
			csim, err := sim.Sibling(subs[i])
			if err != nil {
				return nil, err
			}
			weight := 1.0
			if cond != litho.Nominal {
				weight = opts.PVBWeight
			}
			o.corners = append(o.corners, &cornerWorker{
				sim:    csim,
				cond:   cond,
				weight: weight,
				grad:   grid.NewField(n, n),
				imgs:   litho.NewCornerImages(n),
			})
		}
	}
	return o, nil
}

// simulateCorners runs ForwardAndGradient for all three corners
// concurrently (each on its own sibling simulator and sub-engine) and
// leaves per-corner costs and gradients in the workers.
func (o *Optimizer) simulateCorners(maskSpec *grid.CField) {
	tasks := make([]func(), len(o.corners))
	for i := range o.corners {
		c := o.corners[i]
		tasks[i] = func() {
			c.grad.Zero()
			c.cost = c.sim.ForwardAndGradient(c.grad, maskSpec, c.cond, o.target, c.imgs, c.weight)
		}
	}
	o.sim.Engine().Parallel(tasks...)
}

// Run executes Algorithm 1 and returns the optimized mask.
func (o *Optimizer) Run() (*Result, error) {
	n := o.sim.GridSize()

	// Initialisation (line 1): M₀ = R* (or the supplied warm start),
	// ψ₀ = signed distance of M₀.
	init := o.target
	if o.opts.InitialMask != nil {
		if o.opts.InitialMask.W != n || o.opts.InitialMask.H != n {
			return nil, fmt.Errorf("%w: initial mask %dx%d, grid %d",
				ErrShapeMismatch, o.opts.InitialMask.W, o.opts.InitialMask.H, n)
		}
		init = o.opts.InitialMask
	}
	psi := levelset.SignedDistance(init)
	mask := grid.NewField(n, n)
	maskSpec := grid.NewCField(n, n)
	imgs := litho.NewCornerImages(n)

	grad := grid.NewField(n, n)     // G_i (Eq. 14)
	gmag := grid.NewField(n, n)     // |∇ψ_i|
	gTerm := grid.NewField(n, n)    // g_i = G_i·|∇ψ_i|
	gPrev := grid.NewField(n, n)    // g_{i-1}
	velocity := grid.NewField(n, n) // v_i
	var curv *grid.Field
	if o.opts.CurvatureWeight > 0 {
		curv = grid.NewField(n, n)
	}

	res := &Result{}
	lambdaT := o.opts.LambdaT
	bestCost := math.Inf(1)
	var bestMask, bestPsi, psiCand *grid.Field
	for i := 0; i < o.opts.MaxIter; i++ {
		// Lines 7–8: extract mask, simulate, accumulate gradient.
		levelset.MaskFromPsi(mask, psi)
		o.sim.MaskSpectrumInto(maskSpec, mask)

		var costNom, costPVB float64
		if o.corners != nil {
			// All three corners concurrently; combine gradients in the
			// fixed nominal→outer→inner order so the sum matches the
			// serial accumulation bit-for-bit on any engine.
			o.simulateCorners(maskSpec)
			costNom = o.corners[0].cost
			costPVB = o.corners[1].cost + o.corners[2].cost
			g0, g1, g2 := o.corners[0].grad.Data, o.corners[1].grad.Data, o.corners[2].grad.Data
			o.sim.Engine().ForChunk(len(grad.Data), func(lo, hi int) {
				for j := lo; j < hi; j++ {
					grad.Data[j] = g0[j] + g1[j] + g2[j]
				}
			})
		} else {
			grad.Zero()
			costNom = o.sim.ForwardAndGradient(grad, maskSpec, litho.Nominal, o.target, imgs, 1)
		}

		// Velocity (Eq. 10 with our sign convention): v = +G·|∇ψ|.
		// The paper writes v = −∂L/∂M·|∇ψ| for its ψ orientation; with
		// ψ < 0 inside and M = H(−ψ) (Eqs. 5–6), dL/dt = −⟨G·δ(ψ), v⟩,
		// so descent requires v = +G|∇ψ|: raising ψ where ∂L/∂M > 0
		// retracts the contour there. The PRP momentum term (Eqs.
		// 15–16) is added when CG is enabled.
		if o.opts.UseUpwind {
			// The upwind stencil selects one-sided differences by the
			// sign of the advection speed, which is G here.
			levelset.GradMagUpwind(gmag, psi, grad)
		} else {
			levelset.GradMag(gmag, psi)
		}
		gTerm.Mul(grad, gmag)

		lambda := 0.0
		if o.opts.UseCG && i > 0 {
			lambda = prpCoefficient(gTerm, gPrev)
		}
		if lambda == 0 {
			velocity.CopyFrom(gTerm)
		} else {
			// v_i = g_i + λ·v_{i−1}; velocity still holds v_{i−1}.
			for j := range velocity.Data {
				velocity.Data[j] = gTerm.Data[j] + lambda*velocity.Data[j]
			}
			// Restart safeguard: the conjugate direction must remain a
			// descent direction (positively aligned with g, since the
			// update applies +v). A contour that jumped pixels can
			// decorrelate the gradients enough to violate this.
			if velocity.Dot(gTerm) <= 0 {
				lambda = 0
				velocity.CopyFrom(gTerm)
			}
		}
		if o.opts.CurvatureWeight > 0 {
			// Mean-curvature smoothing: ψ_t += w·κ|∇ψ| erodes
			// high-curvature protrusions (κ > 0 on convex contour
			// segments for ψ < 0 inside).
			levelset.Curvature(curv, psi)
			curv.Mul(curv, gmag)
			velocity.AddScaled(curv, o.opts.CurvatureWeight)
		}
		gPrev.CopyFrom(gTerm)

		// Narrow-band restriction: freeze ψ away from the contour.
		if band := o.opts.BandWidthPx; band > 0 {
			for j, p := range psi.Data {
				if p > band || p < -band {
					velocity.Data[j] = 0
				}
			}
		}

		costTotal := costNom + o.opts.PVBWeight*costPVB
		// Feedback time-step control (line 5's "choose a proper time
		// step"): shrink λ_t after an overshoot, recover slowly.
		if o.opts.AdaptiveStep && i > 0 {
			if costTotal > res.History[i-1].CostTotal {
				lambdaT = math.Max(lambdaT*0.5, o.opts.LambdaT/16)
			} else {
				lambdaT = math.Min(lambdaT*1.1, o.opts.LambdaT)
			}
		}
		if o.opts.KeepBest && costTotal < bestCost {
			bestCost = costTotal
			bestMask = mask.Clone()
			bestPsi = psi.Clone()
		}

		// Record stats before the update so the trace reflects the
		// state the velocity was computed from.
		maxV := velocity.MaxAbs()
		dt := levelset.TimeStep(lambdaT, velocity)
		res.History = append(res.History, IterStats{
			Iter:        i,
			CostNominal: costNom,
			CostPVB:     costPVB,
			CostTotal:   costTotal,
			MaxVelocity: maxV,
			TimeStep:    dt,
			LambdaPRP:   lambda,
		})
		if o.opts.SnapshotEvery > 0 && i%o.opts.SnapshotEvery == 0 {
			res.Snapshots = append(res.Snapshots, Snapshot{Iter: i, Mask: mask.Clone()})
		}

		res.Iterations = i + 1
		// Line 12: stop when the front has stalled.
		if maxV <= o.opts.Tolerance {
			res.Converged = true
			break
		}

		// Optional exact line search over the step size (reference [9]'s
		// optimal time step): probe {½, 1, 2}× the CFL step.
		if o.opts.LineSearch && dt > 0 {
			if psiCand == nil {
				psiCand = grid.NewField(n, n)
			}
			bestDt, bestC := dt, math.Inf(1)
			for _, f := range []float64{0.5, 1, 2} {
				cand := dt * f
				psiCand.CopyFrom(psi)
				psiCand.AddScaled(velocity, cand)
				if c := o.costAtPsi(psiCand, mask, maskSpec, imgs); c < bestC {
					bestC, bestDt = c, cand
				}
			}
			dt = bestDt
			res.History[len(res.History)-1].TimeStep = dt
		}

		// Lines 5–6: CFL step and level-set update.
		levelset.Evolve(psi, velocity, dt)

		// Periodic reinitialisation keeps ψ a signed distance function.
		if o.opts.ReinitEvery > 0 && (i+1)%o.opts.ReinitEvery == 0 {
			if o.opts.SubpixelReinit {
				psi = levelset.ReinitializeFMM(psi)
			} else {
				psi = levelset.Reinitialize(psi)
			}
		}
	}

	levelset.MaskFromPsi(mask, psi)
	res.Mask = mask
	res.Psi = psi
	if o.opts.KeepBest && bestMask != nil {
		res.Mask = bestMask
		res.Psi = bestPsi
	}
	if o.opts.CleanupTinyPx > 0 {
		metrics.RemoveTinyFeatures(res.Mask, o.opts.CleanupTinyPx, o.opts.CleanupTinyPx)
	}
	return res, nil
}

// costAtPsi evaluates the total cost (Eq. 13) of the mask induced by the
// candidate level-set function, reusing the caller's scratch buffers.
func (o *Optimizer) costAtPsi(psi, mask *grid.Field, maskSpec *grid.CField, imgs *litho.CornerImages) float64 {
	levelset.MaskFromPsi(mask, psi)
	o.sim.MaskSpectrumInto(maskSpec, mask)
	if o.corners != nil {
		tasks := make([]func(), len(o.corners))
		for i := range o.corners {
			c := o.corners[i]
			tasks[i] = func() {
				c.sim.Forward(c.imgs, maskSpec, c.cond)
				c.cost = litho.CostAt(c.imgs.R, o.target)
			}
		}
		o.sim.Engine().Parallel(tasks...)
		return o.corners[0].cost + o.opts.PVBWeight*o.corners[1].cost + o.opts.PVBWeight*o.corners[2].cost
	}
	o.sim.Forward(imgs, maskSpec, litho.Nominal)
	return litho.CostAt(imgs.R, o.target)
}

// prpCoefficient computes the Polak–Ribière–Polyak coefficient (Eq. 16)
//
//	λ = (‖g_i‖² − g_i·g_{i−1}) / ‖g_{i−1}‖²
//
// with the standard PRP+ safeguard: non-finite or negative values reset
// the search direction to steepest descent (λ = 0), which is what
// prevents the jamming the paper mentions.
func prpCoefficient(g, gPrev *grid.Field) float64 {
	den := gPrev.Norm2()
	if den == 0 {
		return 0
	}
	lambda := (g.Norm2() - g.Dot(gPrev)) / den
	if math.IsNaN(lambda) || math.IsInf(lambda, 0) || lambda < 0 {
		return 0
	}
	// The binarised mask makes successive gradients far less correlated
	// than in smooth optimization, so unclamped PRP values can exceed 10
	// and turn the momentum into an amplifier. Capping at 1 keeps the
	// accumulated direction a convex-ish blend, which is what restores
	// the paper's "jamming prevented, convergence improved" behaviour.
	if lambda > 1 {
		lambda = 1
	}
	return lambda
}
