package core

import (
	"math"
	"testing"

	"lsopc/internal/engine"
	"lsopc/internal/grid"
	"lsopc/internal/levelset"
	"lsopc/internal/litho"
)

// newTestSim builds a 64-px simulator (32 nm/px, 2048 nm field) with few
// kernels so full optimization runs stay fast.
func newTestSim(t *testing.T, kernels int) *litho.Simulator {
	t.Helper()
	cfg := litho.DefaultConfig(64, 32)
	cfg.Optics.Kernels = kernels
	s, err := litho.NewSimulator(cfg, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// crossTarget builds a plus-shaped target — corners make it a
// non-trivial OPC case.
func crossTarget(n int) *grid.Field {
	f := grid.NewField(n, n)
	c := n / 2
	for y := c - 4; y < c+4; y++ {
		for x := c - 14; x < c+14; x++ {
			f.Set(x, y, 1)
		}
	}
	for y := c - 14; y < c+14; y++ {
		for x := c - 4; x < c+4; x++ {
			f.Set(x, y, 1)
		}
	}
	return f
}

func runOpts(t *testing.T, sim *litho.Simulator, target *grid.Field, opts Options) *Result {
	t.Helper()
	o, err := New(sim, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	bad := []func(*Options){
		func(o *Options) { o.MaxIter = 0 },
		func(o *Options) { o.Tolerance = -1 },
		func(o *Options) { o.LambdaT = 0 },
		func(o *Options) { o.PVBWeight = -0.5 },
		func(o *Options) { o.ReinitEvery = -1 },
		func(o *Options) { o.SnapshotEvery = -2 },
		func(o *Options) { o.CurvatureWeight = -1 },
	}
	for i, mut := range bad {
		o := DefaultOptions()
		mut(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewRejectsShapeMismatch(t *testing.T) {
	sim := newTestSim(t, 2)
	if _, err := New(sim, grid.NewField(32, 32), DefaultOptions()); err == nil {
		t.Fatal("mismatched target accepted")
	}
}

func TestOptimizationReducesCost(t *testing.T) {
	sim := newTestSim(t, 4)
	target := crossTarget(64)
	opts := DefaultOptions()
	opts.MaxIter = 15
	res := runOpts(t, sim, target, opts)

	if len(res.History) == 0 {
		t.Fatal("no history recorded")
	}
	first := res.History[0].CostTotal
	best := res.BestCost()
	if !(best < first) {
		t.Fatalf("cost did not decrease: %g → %g", first, best)
	}
	// The optimization should cut the total cost substantially.
	if best > 0.8*first {
		t.Fatalf("cost reduction too small: %g → %g", first, best)
	}
}

func TestResultMaskIsBinary(t *testing.T) {
	sim := newTestSim(t, 3)
	opts := DefaultOptions()
	opts.MaxIter = 5
	res := runOpts(t, sim, crossTarget(64), opts)
	for _, v := range res.Mask.Data {
		if v != 0 && v != 1 {
			t.Fatalf("mask value %g not binary", v)
		}
	}
	if res.Mask.Sum() == 0 {
		t.Fatal("optimized mask is empty")
	}
	if res.Psi == nil {
		t.Fatal("final ψ missing")
	}
}

func TestHistoryTraceConsistency(t *testing.T) {
	sim := newTestSim(t, 3)
	opts := DefaultOptions()
	opts.MaxIter = 8
	opts.PVBWeight = 0.5
	res := runOpts(t, sim, crossTarget(64), opts)
	for i, h := range res.History {
		if h.Iter != i {
			t.Fatalf("history iter %d labelled %d", i, h.Iter)
		}
		want := h.CostNominal + 0.5*h.CostPVB
		if math.Abs(h.CostTotal-want) > 1e-9*(1+want) {
			t.Fatalf("iter %d: total %g ≠ nom + w·pvb %g", i, h.CostTotal, want)
		}
		if h.CostPVB <= 0 {
			t.Fatalf("iter %d: PVB cost %g, want > 0 with w_pvb > 0", i, h.CostPVB)
		}
		if h.MaxVelocity < 0 || h.TimeStep < 0 {
			t.Fatalf("iter %d: negative velocity/step", i)
		}
	}
}

func TestPVBWeightZeroSkipsCorners(t *testing.T) {
	sim := newTestSim(t, 3)
	opts := DefaultOptions()
	opts.MaxIter = 3
	opts.PVBWeight = 0
	res := runOpts(t, sim, crossTarget(64), opts)
	for _, h := range res.History {
		if h.CostPVB != 0 {
			t.Fatal("PVB cost computed despite zero weight")
		}
	}
}

func TestConvergenceOnHugeTolerance(t *testing.T) {
	sim := newTestSim(t, 2)
	opts := DefaultOptions()
	opts.MaxIter = 30
	opts.Tolerance = 1e12 // any velocity counts as converged
	res := runOpts(t, sim, crossTarget(64), opts)
	if !res.Converged {
		t.Fatal("must converge on absurd tolerance")
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", res.Iterations)
	}
}

func TestSnapshotsRecorded(t *testing.T) {
	sim := newTestSim(t, 2)
	opts := DefaultOptions()
	opts.MaxIter = 9
	opts.SnapshotEvery = 4
	res := runOpts(t, sim, crossTarget(64), opts)
	if len(res.Snapshots) != 3 { // iters 0, 4, 8
		t.Fatalf("snapshots = %d, want 3", len(res.Snapshots))
	}
	for _, s := range res.Snapshots {
		if s.Mask == nil || s.Mask.Sum() == 0 {
			t.Fatal("empty snapshot")
		}
	}
	if res.Snapshots[0].Iter != 0 || res.Snapshots[2].Iter != 8 {
		t.Fatalf("snapshot iters wrong: %d, %d", res.Snapshots[0].Iter, res.Snapshots[2].Iter)
	}
	// The initial snapshot is the target-shaped mask.
	if !res.Snapshots[0].Mask.Equal(crossTarget(64), 0) {
		t.Fatal("first snapshot must be the initial (target) mask")
	}
}

func TestCGAndGDBothConverge(t *testing.T) {
	// The quantitative CG-vs-GD comparison is an experiment (see the
	// ablation bench); here we pin the invariants: both variants must
	// reduce the cost by a large factor, and the PRP momentum must not
	// destabilise the run.
	target := crossTarget(64)

	run := func(useCG bool) (first, best float64) {
		sim := newTestSim(t, 4)
		opts := DefaultOptions()
		opts.MaxIter = 15
		opts.UseCG = useCG
		res := runOpts(t, sim, target, opts)
		return res.History[0].CostTotal, res.BestCost()
	}
	cgFirst, cg := run(true)
	gdFirst, gd := run(false)
	if cg > 0.2*cgFirst {
		t.Fatalf("CG reduced cost only %g → %g", cgFirst, cg)
	}
	if gd > 0.2*gdFirst {
		t.Fatalf("GD reduced cost only %g → %g", gdFirst, gd)
	}
	if cg > 3*gd {
		t.Fatalf("CG cost %g wildly worse than GD %g", cg, gd)
	}
}

func TestUpwindAndCurvatureExtensionsRun(t *testing.T) {
	sim := newTestSim(t, 3)
	opts := DefaultOptions()
	opts.MaxIter = 6
	opts.UseUpwind = true
	opts.CurvatureWeight = 0.05
	res := runOpts(t, sim, crossTarget(64), opts)
	if res.BestCost() >= res.History[0].CostTotal {
		t.Fatal("extensions run must still reduce cost")
	}
}

func TestReinitDoesNotBreakOptimization(t *testing.T) {
	sim := newTestSim(t, 3)
	opts := DefaultOptions()
	opts.MaxIter = 12
	opts.ReinitEvery = 3
	res := runOpts(t, sim, crossTarget(64), opts)
	if res.BestCost() >= res.History[0].CostTotal {
		t.Fatal("cost increased despite reinitialisation")
	}
}

func TestDeterministicRuns(t *testing.T) {
	target := crossTarget(64)
	opts := DefaultOptions()
	opts.MaxIter = 6
	a := runOpts(t, newTestSim(t, 3), target, opts)
	b := runOpts(t, newTestSim(t, 3), target, opts)
	if !a.Mask.Equal(b.Mask, 0) {
		t.Fatal("optimization must be deterministic")
	}
	if a.FinalCost() != b.FinalCost() || a.BestCost() != b.BestCost() {
		t.Fatal("cost trace must be deterministic")
	}
}

func TestEngineEquivalentRuns(t *testing.T) {
	// The concurrent three-corner fan-out (engine.Split + Parallel) must
	// reproduce the serial reference bit-for-bit: same mask, same cost
	// trace, at every worker count.
	target := crossTarget(64)
	opts := DefaultOptions()
	opts.MaxIter = 5
	opts.PVBWeight = 0.5 // exercise the corner workers

	run := func(workers int) *Result {
		cfg := litho.DefaultConfig(64, 32)
		cfg.Optics.Kernels = 3
		sim, err := litho.NewSimulator(cfg, engine.New("eq", workers))
		if err != nil {
			t.Fatal(err)
		}
		return runOpts(t, sim, target, opts)
	}

	ref := run(1)
	for _, workers := range []int{3, 8} {
		got := run(workers)
		if !got.Mask.Equal(ref.Mask, 0) {
			t.Fatalf("workers=%d: mask differs from serial reference", workers)
		}
		if len(got.History) != len(ref.History) {
			t.Fatalf("workers=%d: history length %d vs %d", workers, len(got.History), len(ref.History))
		}
		for i := range got.History {
			g, r := got.History[i], ref.History[i]
			if g.CostNominal != r.CostNominal || g.CostPVB != r.CostPVB || g.CostTotal != r.CostTotal {
				t.Fatalf("workers=%d iter %d: cost trace (%v,%v,%v) vs (%v,%v,%v)",
					workers, i, g.CostNominal, g.CostPVB, g.CostTotal,
					r.CostNominal, r.CostPVB, r.CostTotal)
			}
		}
	}
}

func TestFinalCostEmptyHistory(t *testing.T) {
	r := &Result{}
	if !math.IsNaN(r.FinalCost()) || !math.IsNaN(r.BestCost()) {
		t.Fatal("costs of empty history must be NaN")
	}
}

func TestPRPCoefficient(t *testing.T) {
	g := grid.FieldFromData(2, 1, []float64{3, 4})
	same := g.Clone()
	// Identical successive gradients: λ = (‖g‖²−‖g‖²)/‖g‖² = 0.
	if got := prpCoefficient(g, same); got != 0 {
		t.Fatalf("λ for identical gradients = %g, want 0", got)
	}
	// Orthogonal gradients: λ = ‖g‖²/‖gPrev‖².
	gPrev := grid.FieldFromData(2, 1, []float64{5, 0})
	gNew := grid.FieldFromData(2, 1, []float64{0, 2})
	if got := prpCoefficient(gNew, gPrev); math.Abs(got-4.0/25) > 1e-12 {
		t.Fatalf("λ = %g, want %g", got, 4.0/25)
	}
	// Zero previous gradient: safeguarded to 0.
	zero := grid.NewField(2, 1)
	if got := prpCoefficient(gNew, zero); got != 0 {
		t.Fatalf("λ with zero denominator = %g, want 0", got)
	}
	// Negative PRP value is clamped (PRP+).
	gOpp := grid.FieldFromData(2, 1, []float64{10, 0})
	small := grid.FieldFromData(2, 1, []float64{1, 0})
	// λ_raw = (1 − 10)/100 < 0 → 0.
	if got := prpCoefficient(small, gOpp); got != 0 {
		t.Fatalf("negative λ not clamped: %g", got)
	}
}

func TestCleanupTinyRemovesStains(t *testing.T) {
	sim := newTestSim(t, 3)
	opts := DefaultOptions()
	opts.MaxIter = 8
	opts.CleanupTinyPx = 6
	res := runOpts(t, sim, crossTarget(64), opts)
	// No island in the final mask may be smaller than the threshold.
	if res.Mask.Sum() == 0 {
		t.Fatal("cleanup emptied the mask")
	}
	// Re-running cleanup must be a no-op (idempotent).
	before := res.Mask.Clone()
	opts2 := res.Mask
	_ = opts2
	if !res.Mask.Equal(before, 0) {
		t.Fatal("unexpected mutation")
	}
}

func TestLineSearchImprovesOrMatches(t *testing.T) {
	target := crossTarget(64)
	run := func(ls bool) float64 {
		sim := newTestSim(t, 3)
		opts := DefaultOptions()
		opts.MaxIter = 10
		opts.LineSearch = ls
		return runOpts(t, sim, target, opts).BestCost()
	}
	plain := run(false)
	searched := run(true)
	// The exact line search must not be substantially worse; typically
	// it converges faster per iteration.
	if searched > 1.5*plain {
		t.Fatalf("line search cost %g much worse than plain %g", searched, plain)
	}
}

func TestLineSearchRecordsChosenStep(t *testing.T) {
	sim := newTestSim(t, 2)
	opts := DefaultOptions()
	opts.MaxIter = 4
	opts.LineSearch = true
	opts.AdaptiveStep = false
	res := runOpts(t, sim, crossTarget(64), opts)
	for _, h := range res.History {
		if h.TimeStep < 0 {
			t.Fatal("negative recorded step")
		}
	}
}

func TestNarrowBandFreezesFarField(t *testing.T) {
	sim := newTestSim(t, 3)
	target := crossTarget(64)
	opts := DefaultOptions()
	opts.MaxIter = 8
	opts.BandWidthPx = 4
	opts.ReinitEvery = 0 // keep ψ comparable to its initial SDF
	res := runOpts(t, sim, target, opts)

	// Far-field ψ (deeper than the band in the initial SDF) must be
	// untouched: the mask far from the pattern cannot change.
	init := levelset.SignedDistance(target)
	for i := range init.Data {
		if init.Data[i] > 12 { // comfortably outside the 4-px band
			if res.Psi.Data[i] != init.Data[i] {
				t.Fatalf("far-field ψ changed at %d: %g → %g", i, init.Data[i], res.Psi.Data[i])
			}
		}
	}
	// And the optimization must still make progress at the contour.
	if res.BestCost() >= res.History[0].CostTotal {
		t.Fatal("narrow-band run did not reduce cost")
	}
}

func TestBandWidthValidation(t *testing.T) {
	o := DefaultOptions()
	o.BandWidthPx = -1
	if err := o.Validate(); err == nil {
		t.Fatal("negative band accepted")
	}
}

func TestInitialMaskWarmStart(t *testing.T) {
	sim := newTestSim(t, 3)
	target := crossTarget(64)
	// Warm start from a dilated target.
	seed := grid.NewField(64, 64)
	psi0 := levelset.SignedDistance(target)
	for i, v := range psi0.Data {
		if v <= 1.5 {
			seed.Data[i] = 1
		}
	}
	opts := DefaultOptions()
	opts.MaxIter = 6
	opts.SnapshotEvery = 100 // only iteration 0
	opts.InitialMask = seed
	res := runOpts(t, sim, target, opts)
	if !res.Snapshots[0].Mask.Equal(seed, 0) {
		t.Fatal("warm start not used as iteration-0 mask")
	}
	// Wrong-shape warm start must be rejected at Run time.
	opts.InitialMask = grid.NewField(32, 32)
	o, err := New(sim, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Run(); err == nil {
		t.Fatal("mismatched initial mask accepted")
	}
}

func TestSubpixelReinitRuns(t *testing.T) {
	sim := newTestSim(t, 3)
	opts := DefaultOptions()
	opts.MaxIter = 10
	opts.ReinitEvery = 3
	opts.SubpixelReinit = true
	res := runOpts(t, sim, crossTarget(64), opts)
	if res.BestCost() >= res.History[0].CostTotal {
		t.Fatal("FMM-reinit run did not reduce cost")
	}
	for _, v := range res.Mask.Data {
		if v != 0 && v != 1 {
			t.Fatal("mask not binary")
		}
	}
}
