package core

import (
	"math"
	"testing"

	"lsopc/internal/grid"
	"lsopc/internal/obs"
)

// nanTarget is a plus-shaped target poisoned with NaN values, which
// makes the fidelity cost Σ(R−R*)² non-finite from the first iteration —
// the injection path for watchdog tests.
func nanTarget(n int) *grid.Field {
	f := crossTarget(n)
	c := n / 2
	f.Set(c, c, math.NaN())
	return f
}

// TestWatchdogAbortsNaNRun injects a NaN cost and checks the watchdog
// emits a typed health event and terminates the run within the first
// iteration (the ISSUE acceptance criterion; run under -race via the
// package's standard race target).
func TestWatchdogAbortsNaNRun(t *testing.T) {
	sim := newTestSim(t, 2)
	sink := &obs.CollectorSink{}
	opts := DefaultOptions()
	opts.MaxIter = 20
	opts.PVBWeight = 0 // nominal-only: the NaN comes from the target
	hp := obs.DefaultHealthPolicy()
	opts.Health = &hp
	opts.Sink = sink
	opts.TraceID = "nan-run"

	res := runOpts(t, sim, nanTarget(64), opts)
	if !res.Aborted {
		t.Fatalf("NaN run not aborted: %d iterations, aborted=%v", res.Iterations, res.Aborted)
	}
	if res.AbortReason != obs.HealthNonFiniteCost {
		t.Fatalf("abort reason = %q, want %q", res.AbortReason, obs.HealthNonFiniteCost)
	}
	if res.Iterations != 1 {
		t.Fatalf("run terminated after %d iterations, want 1 (within the poisoned iteration)", res.Iterations)
	}
	var health []obs.Event
	for _, e := range sink.Events() {
		if e.Type == obs.EventHealth {
			health = append(health, e)
		}
	}
	if len(health) != 1 {
		t.Fatalf("health events = %d, want 1", len(health))
	}
	if h := health[0]; h.Msg != obs.HealthNonFiniteCost || h.Trace != "nan-run" || h.Iter != 0 {
		t.Fatalf("health event = %+v", h)
	}
	if !math.IsNaN(health[0].Cost) {
		t.Fatalf("health event cost = %g, want NaN", health[0].Cost)
	}
}

// TestWatchdogNonAbortingPolicy keeps the run going but still traces the
// unhealthy iterations.
func TestWatchdogNonAbortingPolicy(t *testing.T) {
	sim := newTestSim(t, 2)
	sink := &obs.CollectorSink{}
	opts := DefaultOptions()
	opts.MaxIter = 5
	opts.PVBWeight = 0
	hp := obs.DefaultHealthPolicy()
	hp.AbortOnUnhealthy = false
	opts.Health = &hp
	opts.Sink = sink

	res := runOpts(t, sim, nanTarget(64), opts)
	if res.Aborted || res.AbortReason != "" {
		t.Fatalf("non-aborting policy aborted the run: %+v", res)
	}
	// The run may still stop early on its own (the all-NaN velocity
	// reads as a zero front speed), but every iteration that did run
	// must carry a health event.
	count := 0
	for _, e := range sink.Events() {
		if e.Type == obs.EventHealth {
			count++
		}
	}
	if count != res.Iterations || count == 0 {
		t.Fatalf("health events = %d, want one per executed iteration (%d)", count, res.Iterations)
	}
}

// TestWatchdogHealthyRunUntouched: a clean optimization under the
// default policy must not trip, abort, or change the result shape.
func TestWatchdogHealthyRunUntouched(t *testing.T) {
	sim := newTestSim(t, 2)
	opts := DefaultOptions()
	opts.MaxIter = 8
	hp := obs.DefaultHealthPolicy()
	opts.Health = &hp

	res := runOpts(t, sim, crossTarget(64), opts)
	if res.Aborted || res.AbortReason != "" {
		t.Fatalf("healthy run flagged: %+v", res)
	}
	if res.Iterations == 0 || res.Mask == nil {
		t.Fatalf("degenerate result: %+v", res)
	}
}
