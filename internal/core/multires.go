// Coarse-to-fine evolution: the schedule behind Options.MultiResFactor.
//
// The level-set contour's large-scale motion — pulling edges onto the
// target, growing assist lobes — happens in the first iterations, where
// per-pixel detail contributes nothing but cost. Running those
// iterations on a 2×/4×-downsampled grid makes each of them ~factor²
// cheaper: the SOCS kernel banks truncate exactly to the coarse
// configuration (the spectral bin width 1/(GridSize·PixelNM) is
// invariant under the (N/k, pitch·k) exchange, see optics.Bank.Coarse),
// so the coarse forward model is the genuine physical model at coarser
// sampling, not an approximation of the fine one. Between levels ψ is
// interpolated spectrally (levelset.UpsampleSpectral) and redistanced
// with the fast-marching method, so the contour arrives at the next
// level with its sub-pixel position intact and a clean signed-distance
// profile around it.
//
// The schedule itself — budget split, coarse sessions, hand-offs,
// level_switch events, checkpoint/resume — is solve.RunLevels; this
// file only adapts the level-set method to its Program contract.
package core

import (
	"context"
	"fmt"

	"lsopc/internal/grid"
	"lsopc/internal/levelset"
	"lsopc/internal/litho"
	"lsopc/internal/solve"
)

// RunMultiResolution executes the coarse-to-fine schedule: Algorithm 1
// on a MultiResFactor-downsampled grid first, halving the factor each
// level, finishing at full resolution on sim itself. With
// MultiResFactor ≤ 1 it is exactly New + RunContext (single
// resolution).
//
// Budget: each coarse level runs MultiResIters iterations (default
// MaxIter/2 split evenly across the coarse levels); full resolution
// gets the remainder of MaxIter (see solve.Plan). Histories are
// concatenated with globally renumbered iterations, and each resolution
// hand-off emits a typed level_switch trace event carrying the grid
// transition and the interpolation + redistancing time.
//
// The simulator passed in stays caller-owned; coarse sessions are
// created on truncated kernel banks (sharing sim's resource pool) and
// released before the function returns. Cancellation yields a
// *solve.Cancelled error whose checkpoint Resume continues from.
func RunMultiResolution(ctx context.Context, sim *litho.Simulator, target *grid.Field, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.MultiResFactor <= 1 {
		o, err := New(sim, target, opts)
		if err != nil {
			return nil, err
		}
		defer o.Release()
		return o.RunContext(ctx)
	}
	if err := checkShape(sim, target); err != nil {
		return nil, err
	}
	return runSchedule(ctx, sim, target, opts, nil)
}

// Resume continues a run from a checkpoint captured at cancellation.
// opts must be the options of the original run; the result then matches
// the uninterrupted run bit-for-bit (snapshots excepted — they restart
// at the resume point).
func Resume(ctx context.Context, sim *litho.Simulator, target *grid.Field, opts Options, cp *solve.Checkpoint) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if cp == nil {
		return nil, fmt.Errorf("core: nil checkpoint")
	}
	if opts.MultiResFactor <= 1 {
		if cp.Factor != 1 {
			return nil, fmt.Errorf("core: checkpoint at resolution factor %d, but the run is single-resolution", cp.Factor)
		}
		o, err := New(sim, target, opts)
		if err != nil {
			return nil, err
		}
		defer o.Release()
		drv, err := o.driver()
		if err != nil {
			return nil, err
		}
		if err := drv.Restore(cp); err != nil {
			return nil, err
		}
		out, err := drv.Run(ctx)
		if err != nil {
			return nil, err
		}
		return o.finish(out), nil
	}
	if err := checkShape(sim, target); err != nil {
		return nil, err
	}
	return runSchedule(ctx, sim, target, opts, cp)
}

// checkShape validates the target against the simulator grid.
func checkShape(sim *litho.Simulator, target *grid.Field) error {
	if n := sim.GridSize(); target.W != n || target.H != n {
		return fmt.Errorf("%w: target %dx%d, grid %d", ErrShapeMismatch, target.W, target.H, n)
	}
	return nil
}

// runSchedule drives solve.RunLevels over the level-set program and
// assembles this package's Result from the merged outcome.
func runSchedule(ctx context.Context, sim *litho.Simulator, target *grid.Field, opts Options, resume *solve.Checkpoint) (*Result, error) {
	prog := &levelProgram{opts: opts}
	sched := solve.Plan(opts.MaxIter, opts.MultiResFactor, opts.MultiResIters)
	out, err := solve.RunLevels(ctx, sim, target, sched, prog, opts.Sink, opts.TraceID, opts.IterOffset, resume)
	if err != nil {
		return nil, err
	}
	total := &Result{
		Iterations:      out.Iterations,
		Converged:       out.Converged,
		Aborted:         out.Aborted,
		AbortReason:     out.AbortReason,
		AbortCheckpoint: out.AbortCheckpoint,
		History:         historyFromSolve(out.History),
		Snapshots:       snapshotsFromSolve(out.Snapshots),
	}
	if prog.res != nil {
		// The full-resolution level ran: its assembly (keep-best
		// selection, manufacturability cleanup) is the run's mask.
		total.Mask = prog.res.Mask
		total.Psi = prog.res.Psi
	} else {
		// A poisoned coarse run aborted the schedule: the state arrives
		// lifted to full resolution so the result shape matches the
		// caller's grid.
		total.Psi = out.State
		total.Mask = grid.NewField(total.Psi.W, total.Psi.H)
		levelset.MaskFromPsi(total.Mask, total.Psi)
	}
	return total, nil
}

// levelProgram adapts the level-set optimizer to solve.RunLevels.
type levelProgram struct {
	opts Options
	res  *Result // full-resolution level's assembled result
}

// Level builds the optimizer and driver for one resolution level.
func (p *levelProgram) Level(sim *litho.Simulator, target *grid.Field, cfg solve.LevelConfig) (*solve.Driver, func(*solve.Outcome), func(), error) {
	lopts := p.opts
	lopts.MaxIter = cfg.MaxIter
	lopts.IterOffset = cfg.Offset
	if cfg.Coarse || cfg.State != nil {
		lopts.InitialPsi = cfg.State
		lopts.InitialMask = nil
	}
	if cfg.Coarse {
		// Hand the *last* ψ to the next level, not the best iterate:
		// the schedule wants continuity of the evolving contour, and the
		// best-so-far bookkeeping restarts at full resolution anyway.
		lopts.KeepBest = false
		lopts.SnapshotEvery = 0 // snapshots mix grid sizes; full-res only
		lopts.CleanupTinyPx = 0 // manufacturability cleanup is final-mask-only
	}
	o, err := New(sim, target, lopts)
	if err != nil {
		return nil, nil, nil, err
	}
	drv, err := o.driver()
	if err != nil {
		o.Release()
		return nil, nil, nil, err
	}
	finish := func(out *solve.Outcome) {
		if !cfg.Coarse {
			p.res = o.finish(out)
		}
	}
	return drv, finish, o.Release, nil
}

// Upsample is the hand-off: spectral interpolation onto the 2× finer
// grid, then FMM redistancing so the next level starts from a signed
// distance function at its own pixel pitch.
func (p *levelProgram) Upsample(psi *grid.Field) *grid.Field {
	return levelset.ReinitializeFMM(levelset.UpsampleSpectral(psi, 2))
}

// TraceName is empty: level-set level_switch events carry no name.
func (p *levelProgram) TraceName() string { return "" }
