// Coarse-to-fine evolution: the schedule behind Options.MultiResFactor.
//
// The level-set contour's large-scale motion — pulling edges onto the
// target, growing assist lobes — happens in the first iterations, where
// per-pixel detail contributes nothing but cost. Running those
// iterations on a 2×/4×-downsampled grid makes each of them ~factor²
// cheaper: the SOCS kernel banks truncate exactly to the coarse
// configuration (the spectral bin width 1/(GridSize·PixelNM) is
// invariant under the (N/k, pitch·k) exchange, see optics.Bank.Coarse),
// so the coarse forward model is the genuine physical model at coarser
// sampling, not an approximation of the fine one. Between levels ψ is
// interpolated spectrally (levelset.UpsampleSpectral) and redistanced
// with the fast-marching method, so the contour arrives at the next
// level with its sub-pixel position intact and a clean signed-distance
// profile around it.
package core

import (
	"fmt"
	"time"

	"lsopc/internal/grid"
	"lsopc/internal/levelset"
	"lsopc/internal/litho"
	"lsopc/internal/obs"
)

// RunMultiResolution executes the coarse-to-fine schedule: Algorithm 1
// on a MultiResFactor-downsampled grid first, halving the factor each
// level, finishing at full resolution on sim itself. With
// MultiResFactor ≤ 1 it is exactly New + Run (single resolution).
//
// Budget: each coarse level runs MultiResIters iterations (default
// MaxIter/2 split evenly across the coarse levels); full resolution
// gets the remainder of MaxIter. Histories are concatenated with
// globally renumbered iterations, and each resolution hand-off emits a
// typed level_switch trace event carrying the grid transition and the
// interpolation + redistancing time.
//
// The simulator passed in stays caller-owned; coarse sessions are
// created on truncated kernel banks (sharing sim's resource pool) and
// released before the function returns.
func RunMultiResolution(sim *litho.Simulator, target *grid.Field, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.MultiResFactor <= 1 {
		return runLevel(sim, target, opts)
	}
	n := sim.GridSize()
	if target.W != n || target.H != n {
		return nil, fmt.Errorf("%w: target %dx%d, grid %d", ErrShapeMismatch, target.W, target.H, n)
	}

	// Iteration budget across the schedule.
	numCoarse := 0
	for f := opts.MultiResFactor; f > 1; f /= 2 {
		numCoarse++
	}
	perCoarse := opts.MultiResIters
	if perCoarse == 0 {
		perCoarse = opts.MaxIter / (2 * numCoarse)
	}
	if perCoarse < 1 {
		perCoarse = 1
	}
	fineIters := opts.MaxIter - numCoarse*perCoarse
	if fineIters < 1 {
		fineIters = 1
	}

	total := &Result{}
	var psi *grid.Field // hand-off ψ, already at the next level's resolution
	globalIter := 0

	for f := opts.MultiResFactor; f > 1; f /= 2 {
		cres, err := sim.Resources().Coarse(f)
		if err != nil {
			return nil, err
		}
		ccfg := sim.Config()
		ccfg.Optics = cres.Optics()
		csim, err := litho.NewSession(cres, ccfg, sim.Engine())
		if err != nil {
			return nil, err
		}

		// The coarse target is the box-averaged design re-binarised at
		// half coverage — the same pattern at the coarse pitch.
		ctarget := target.Downsample(f)
		ctarget.Binarize(ctarget)

		lopts := opts
		lopts.MaxIter = perCoarse
		lopts.IterOffset = globalIter
		lopts.InitialPsi = psi
		lopts.InitialMask = nil
		// Hand the *last* ψ to the next level, not the best iterate:
		// the schedule wants continuity of the evolving contour, and the
		// best-so-far bookkeeping restarts at full resolution anyway.
		lopts.KeepBest = false
		lopts.SnapshotEvery = 0 // snapshots mix grid sizes; full-res only
		lopts.CleanupTinyPx = 0 // manufacturability cleanup is final-mask-only

		lres, err := runLevel(csim, ctarget, lopts)
		csim.Release()
		if err != nil {
			return nil, err
		}
		appendHistory(total, lres, &globalIter)

		if lres.Aborted {
			// A poisoned coarse run must not feed the next level. Surface
			// the abort with the state lifted to full resolution so the
			// result shape matches the caller's grid.
			total.Aborted = true
			total.AbortReason = lres.AbortReason
			total.Psi = upsampleTo(lres.Psi, f)
			total.Mask = grid.NewField(n, n)
			levelset.MaskFromPsi(total.Mask, total.Psi)
			return total, nil
		}

		// Hand-off: spectral upsample to the next level's grid, then
		// redistance so the new level starts from a signed distance
		// function at its own pixel pitch.
		interpStart := time.Now()
		psi = levelset.ReinitializeFMM(levelset.UpsampleSpectral(lres.Psi, 2))
		if opts.Sink != nil {
			opts.Sink.Emit(obs.Event{
				Type:   obs.EventLevelSwitch,
				Trace:  opts.TraceID,
				Engine: sim.Engine().Name(),
				Iter:   globalIter,
				OldN:   lres.Psi.W,
				N:      psi.W,
				DurNS:  time.Since(interpStart).Nanoseconds(),
			})
		}
	}

	// Full-resolution refinement on the caller's simulator.
	fopts := opts
	fopts.MaxIter = fineIters
	fopts.IterOffset = globalIter
	fopts.InitialPsi = psi
	fopts.InitialMask = nil
	fres, err := runLevel(sim, target, fopts)
	if err != nil {
		return nil, err
	}
	appendHistory(total, fres, &globalIter)
	total.Mask = fres.Mask
	total.Psi = fres.Psi
	total.Converged = fres.Converged
	total.Aborted = fres.Aborted
	total.AbortReason = fres.AbortReason
	total.Snapshots = fres.Snapshots
	return total, nil
}

// runLevel runs one single-resolution optimization (New + Run + Release).
func runLevel(sim *litho.Simulator, target *grid.Field, opts Options) (*Result, error) {
	o, err := New(sim, target, opts)
	if err != nil {
		return nil, err
	}
	defer o.Release()
	return o.Run()
}

// appendHistory merges one level's history into the schedule-wide
// result (the level already reported global iteration numbers via
// Options.IterOffset) and advances the global iteration counter.
func appendHistory(total *Result, level *Result, globalIter *int) {
	total.History = append(total.History, level.History...)
	*globalIter += level.Iterations
	total.Iterations = *globalIter
}

// upsampleTo lifts ψ by the given total factor (repeated 2× spectral
// interpolation + redistancing).
func upsampleTo(psi *grid.Field, factor int) *grid.Field {
	for ; factor > 1; factor /= 2 {
		psi = levelset.ReinitializeFMM(levelset.UpsampleSpectral(psi, 2))
	}
	return psi
}
