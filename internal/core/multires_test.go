package core

import (
	"context"

	"math"
	"testing"

	"lsopc/internal/obs"
)

// TestMultiResFactor1MatchesRun: with no coarse levels the schedule is
// exactly New + Run — bit-identical masks and history.
func TestMultiResFactor1MatchesRun(t *testing.T) {
	target := crossTarget(64)
	opts := DefaultOptions()
	opts.MaxIter = 6

	plain := runOpts(t, newTestSim(t, 3), target, opts)

	for _, factor := range []int{0, 1} {
		opts.MultiResFactor = factor
		sched, err := RunMultiResolution(context.Background(), newTestSim(t, 3), target, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range plain.Mask.Data {
			if plain.Mask.Data[i] != sched.Mask.Data[i] {
				t.Fatalf("factor %d: mask differs at pixel %d", factor, i)
			}
		}
		if len(plain.History) != len(sched.History) {
			t.Fatalf("factor %d: history lengths %d vs %d", factor, len(plain.History), len(sched.History))
		}
		for i := range plain.History {
			if plain.History[i] != sched.History[i] {
				t.Fatalf("factor %d: iteration %d stats differ", factor, i)
			}
		}
	}
}

// TestMultiResSchedule drives a two-coarse-level schedule and checks the
// structural contract: one contiguous global iteration axis, the exact
// per-level budget split, full-resolution results, and level_switch
// events marking each grid hand-off.
func TestMultiResSchedule(t *testing.T) {
	sim := newTestSim(t, 3)
	target := crossTarget(64)
	sink := &obs.CollectorSink{}
	opts := DefaultOptions()
	opts.MaxIter = 12
	opts.MultiResFactor = 4
	opts.MultiResIters = 2
	opts.Tolerance = 0 // no early convergence exit: budgets must be exact
	opts.Sink = sink
	opts.TraceID = "sched"

	res, err := RunMultiResolution(context.Background(), sim, target, opts)
	if err != nil {
		t.Fatal(err)
	}

	// 2 coarse levels × 2 iters + 8 fine iters = 12 total.
	if res.Iterations != 12 || len(res.History) != 12 {
		t.Fatalf("iterations = %d (history %d), want 12", res.Iterations, len(res.History))
	}
	for i, st := range res.History {
		if st.Iter != i {
			t.Fatalf("history[%d].Iter = %d, want a contiguous global axis", i, st.Iter)
		}
	}

	if res.Mask.W != 64 || res.Psi.W != 64 {
		t.Fatalf("result grids %d/%d px, want full resolution 64", res.Mask.W, res.Psi.W)
	}
	for _, v := range res.Mask.Data {
		if v != 0 && v != 1 {
			t.Fatalf("mask value %g not binary", v)
		}
	}
	if res.Mask.Sum() == 0 {
		t.Fatal("schedule produced an empty mask")
	}

	var switches []obs.Event
	for _, e := range sink.Events() {
		if e.Type == obs.EventLevelSwitch {
			switches = append(switches, e)
		}
	}
	want := []struct{ oldN, newN, iter int }{
		{16, 32, 2},
		{32, 64, 4},
	}
	if len(switches) != len(want) {
		t.Fatalf("level_switch events = %d, want %d", len(switches), len(want))
	}
	for i, w := range want {
		e := switches[i]
		if e.OldN != w.oldN || e.N != w.newN || e.Iter != w.iter {
			t.Fatalf("switch %d = %d->%d @%d, want %d->%d @%d",
				i, e.OldN, e.N, e.Iter, w.oldN, w.newN, w.iter)
		}
		if e.Trace != "sched" {
			t.Fatalf("switch %d trace = %q", i, e.Trace)
		}
	}
}

// TestMultiResConvergesNearBaseline: the schedule must land in the same
// cost basin as the full-resolution run — the point of coarse levels is
// speed, not a different answer.
func TestMultiResConvergesNearBaseline(t *testing.T) {
	target := crossTarget(64)
	opts := DefaultOptions()
	opts.MaxIter = 15

	base := runOpts(t, newTestSim(t, 4), target, opts)

	opts.MultiResFactor = 2
	sched, err := RunMultiResolution(context.Background(), newTestSim(t, 4), target, opts)
	if err != nil {
		t.Fatal(err)
	}

	bb, sb := base.BestCost(), sched.BestCost()
	if math.IsNaN(sb) {
		t.Fatal("schedule produced no finite cost")
	}
	// Allow modest slack: the coarse phase spends part of the budget at
	// lower resolution, but the final basin must match.
	if sb > 1.25*bb {
		t.Fatalf("schedule best cost %g vs baseline %g (>25%% worse)", sb, bb)
	}
}

// TestMultiResWatchdogAbortsPoisonedCoarse: a NaN that poisons the cost
// during a COARSE level must trip the watchdog there, and the abort must
// surface at full resolution (the caller's grid), not the coarse one.
func TestMultiResWatchdogAbortsPoisonedCoarse(t *testing.T) {
	sim := newTestSim(t, 2)
	sink := &obs.CollectorSink{}
	opts := DefaultOptions()
	opts.MaxIter = 12
	opts.MultiResFactor = 2
	opts.MultiResIters = 4
	opts.PVBWeight = math.NaN() // poisons cost from the first (coarse) iteration
	hp := obs.DefaultHealthPolicy()
	opts.Health = &hp
	opts.Sink = sink
	opts.TraceID = "nan-coarse"

	res, err := RunMultiResolution(context.Background(), sim, crossTarget(64), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted || res.AbortReason != obs.HealthNonFiniteCost {
		t.Fatalf("aborted=%v reason=%q, want non_finite_cost abort", res.Aborted, res.AbortReason)
	}
	if res.Iterations != 1 {
		t.Fatalf("poisoned schedule ran %d iterations, want 1", res.Iterations)
	}
	if res.Mask == nil || res.Mask.W != 64 || res.Psi == nil || res.Psi.W != 64 {
		t.Fatal("aborted coarse run must surface full-resolution mask and ψ")
	}
	// No level_switch may fire: the schedule stopped inside level one.
	for _, e := range sink.Events() {
		if e.Type == obs.EventLevelSwitch {
			t.Fatal("aborted coarse level still emitted a level_switch")
		}
	}
}

// TestMultiResWatchdogAbortsPoisonedFineLevel: a NaN only visible at
// full resolution (the coarse target re-binarisation launders it) lets
// the coarse levels finish and trips the watchdog in the fine level;
// the combined history spans both.
func TestMultiResWatchdogAbortsPoisonedFineLevel(t *testing.T) {
	sim := newTestSim(t, 2)
	opts := DefaultOptions()
	opts.MaxIter = 12
	opts.MultiResFactor = 2
	opts.MultiResIters = 3
	opts.PVBWeight = 0 // nominal-only: the NaN comes from the target
	opts.Tolerance = 0
	hp := obs.DefaultHealthPolicy()
	opts.Health = &hp

	res, err := RunMultiResolution(context.Background(), sim, nanTarget(64), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted || res.AbortReason != obs.HealthNonFiniteCost {
		t.Fatalf("aborted=%v reason=%q, want non_finite_cost abort", res.Aborted, res.AbortReason)
	}
	// 3 clean coarse iterations + the first poisoned fine iteration.
	if res.Iterations != 4 {
		t.Fatalf("iterations = %d, want 4 (3 coarse + 1 poisoned fine)", res.Iterations)
	}
	if res.Mask.W != 64 {
		t.Fatalf("result grid %d px, want 64", res.Mask.W)
	}
}
