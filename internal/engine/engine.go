// Package engine provides the parallel execution substrate that stands
// in for the paper's CUDA/GPU layer.
//
// The paper's "GPU enablement" consists of three techniques: FFT-based
// convolution on the device, batched parallel FFTs, and kernel fusion
// (Eq. 17). All of them are parallel-scheduling techniques, so this
// package reproduces the architectural split with a worker-pool engine:
//
//   - CPU() — a single-worker engine; every stage runs serially. This is
//     the reference configuration corresponding to the paper's "CPU"
//     column in Table II.
//   - GPU() — an engine with one worker per logical core that fans
//     element ranges, FFT row/column passes, and per-kernel loops across
//     all cores, corresponding to the "GPU" column.
//
// Both engines compute bit-identical results; only scheduling differs.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"lsopc/internal/obs"
)

// Engine schedules data-parallel loops over a fixed number of workers.
// The zero value is not usable; construct with New, CPU, or GPU.
type Engine struct {
	workers int
	name    string

	// Optional per-worker busy-time accumulator. When nil (the default)
	// scheduling paths pay only a nil check; when set, every worker's
	// body time is added to its slot so callers can compute utilization.
	busy    *obs.WorkerBusy
	busyOff int // this engine's first slot in busy (for Split sub-engines)
}

// New returns an engine with the given worker count (at least 1) and a
// human-readable name used in reports.
func New(name string, workers int) *Engine {
	if workers < 1 {
		workers = 1
	}
	return &Engine{workers: workers, name: name}
}

// CPU returns the serial reference engine (1 worker), the analogue of
// the paper's CPU-only runs.
func CPU() *Engine { return New("cpu", 1) }

// GPU returns the parallel engine with one worker per logical core, the
// analogue of the paper's CUDA runs.
func GPU() *Engine { return New("gpu", runtime.NumCPU()) }

// Workers returns the engine's worker count.
func (e *Engine) Workers() int { return e.workers }

// Name returns the engine's report name ("cpu", "gpu", ...).
func (e *Engine) Name() string { return e.name }

// String implements fmt.Stringer.
func (e *Engine) String() string { return fmt.Sprintf("engine(%s, %d workers)", e.name, e.workers) }

// Serial reports whether the engine runs with a single worker.
func (e *Engine) Serial() bool { return e.workers == 1 }

// InstrumentBusy attaches a per-worker busy-time accumulator to the
// engine and returns the engine for chaining. Pass nil to detach. The
// accumulator should have at least Workers() slots; out-of-range slots
// clamp (see obs.WorkerBusy.Add). Sub-engines created by Split inherit
// the accumulator with disjoint slot ranges, so nested fan-outs
// attribute busy time to distinct physical workers. Only the leaf
// chunked loops (ForChunk, For, Map) record busy time — Parallel does
// not, because its tasks typically fan out through those same loops on
// the engine and timing both levels would double-count the interval.
func (e *Engine) InstrumentBusy(wb *obs.WorkerBusy) *Engine {
	e.busy = wb
	e.busyOff = 0
	return e
}

// Busy returns the attached busy-time accumulator, or nil.
func (e *Engine) Busy() *obs.WorkerBusy { return e.busy }

// Split partitions the engine's workers into n sub-engines for nested
// parallelism: an outer Parallel over n independent tasks (e.g. the
// three process corners) can hand each task a sub-engine so the inner
// ForChunk/Map fan-outs do not oversubscribe the machine. Workers are
// distributed as evenly as possible and every sub-engine keeps at least
// one worker, so splitting a serial engine yields n serial engines (the
// outer Parallel then degenerates to an in-order loop and the whole
// computation stays on one worker). Sub-engines are named
// "<name>/<index>" for reports.
func (e *Engine) Split(n int) []*Engine {
	if n < 1 {
		n = 1
	}
	subs := make([]*Engine, n)
	base, rem := e.workers/n, e.workers%n
	off := e.busyOff
	for i := range subs {
		w := base
		if i < rem {
			w++
		}
		subs[i] = New(fmt.Sprintf("%s/%d", e.name, i), w)
		subs[i].busy = e.busy
		subs[i].busyOff = off
		off += w
	}
	return subs
}

// For runs body(i) for every i in [0, n), splitting the index range into
// contiguous chunks across the engine's workers. It blocks until all
// iterations complete. With a single worker it degenerates to a plain
// loop with no goroutine overhead.
func (e *Engine) For(n int, body func(i int)) {
	e.ForChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunk runs body(lo, hi) over a partition of [0, n) into contiguous
// half-open chunks, one chunk per worker (fewer if n is small). Chunked
// form lets callers hoist per-worker scratch out of the inner loop.
func (e *Engine) ForChunk(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := e.workers
	if w > n {
		w = n
	}
	if w == 1 {
		if e.busy != nil {
			t0 := time.Now()
			body(0, n)
			e.busy.Add(e.busyOff, time.Since(t0))
			return
		}
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	chunk := (n + w - 1) / w
	for k := 0; k < w; k++ {
		lo := k * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			wg.Done()
			continue
		}
		go func(worker, lo, hi int) {
			defer wg.Done()
			if e.busy != nil {
				t0 := time.Now()
				body(lo, hi)
				e.busy.Add(e.busyOff+worker, time.Since(t0))
				return
			}
			body(lo, hi)
		}(k, lo, hi)
	}
	wg.Wait()
}

// Parallel runs the given tasks concurrently (bounded by the worker
// count) and blocks until all complete. Used to overlap independent
// kernel convolutions and process-corner simulations.
func (e *Engine) Parallel(tasks ...func()) {
	if len(tasks) == 0 {
		return
	}
	if e.workers == 1 || len(tasks) == 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	sem := make(chan struct{}, e.workers)
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		t := t
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t()
		}()
	}
	wg.Wait()
}

// Map applies body to each index of [0, n) like For, but gives the body
// its worker ordinal so it can use per-worker scratch buffers. Worker
// ordinals are dense in [0, Workers()).
func (e *Engine) Map(n int, body func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := e.workers
	if w > n {
		w = n
	}
	if w == 1 {
		if e.busy != nil {
			t0 := time.Now()
			for i := 0; i < n; i++ {
				body(0, i)
			}
			e.busy.Add(e.busyOff, time.Since(t0))
			return
		}
		for i := 0; i < n; i++ {
			body(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	chunk := (n + w - 1) / w
	for k := 0; k < w; k++ {
		lo := k * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			wg.Done()
			continue
		}
		go func(worker, lo, hi int) {
			defer wg.Done()
			if e.busy != nil {
				t0 := time.Now()
				for i := lo; i < hi; i++ {
					body(worker, i)
				}
				e.busy.Add(e.busyOff+worker, time.Since(t0))
				return
			}
			for i := lo; i < hi; i++ {
				body(worker, i)
			}
		}(k, lo, hi)
	}
	wg.Wait()
}
