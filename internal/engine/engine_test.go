package engine

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestNewClampsWorkers(t *testing.T) {
	if New("x", 0).Workers() != 1 {
		t.Fatal("worker count must be at least 1")
	}
	if New("x", -3).Workers() != 1 {
		t.Fatal("negative worker count must clamp to 1")
	}
	if New("x", 4).Workers() != 4 {
		t.Fatal("explicit worker count not honored")
	}
}

func TestCPUAndGPUConstructors(t *testing.T) {
	c := CPU()
	if !c.Serial() || c.Name() != "cpu" {
		t.Fatalf("CPU() = %v", c)
	}
	g := GPU()
	if g.Workers() != runtime.NumCPU() || g.Name() != "gpu" {
		t.Fatalf("GPU() = %v", g)
	}
	if runtime.NumCPU() > 1 && g.Serial() {
		t.Fatal("GPU engine should not be serial on multicore hosts")
	}
}

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		e := New("t", workers)
		const n = 1000
		counts := make([]int32, n)
		e.For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForChunkPartition(t *testing.T) {
	e := New("t", 4)
	const n = 37
	visited := make([]int32, n)
	e.ForChunk(n, func(lo, hi int) {
		if lo >= hi || lo < 0 || hi > n {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visited[i], 1)
		}
	})
	for i, c := range visited {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	e := New("t", 4)
	called := false
	e.For(0, func(int) { called = true })
	e.For(-5, func(int) { called = true })
	e.ForChunk(0, func(int, int) { called = true })
	if called {
		t.Fatal("body must not run for non-positive n")
	}
}

func TestForMoreWorkersThanWork(t *testing.T) {
	e := New("t", 64)
	var total int64
	e.For(3, func(i int) { atomic.AddInt64(&total, int64(i)) })
	if total != 3 {
		t.Fatalf("sum = %d, want 3", total)
	}
}

func TestParallelRunsAllTasks(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := New("t", workers)
		var n int32
		tasks := make([]func(), 10)
		for i := range tasks {
			tasks[i] = func() { atomic.AddInt32(&n, 1) }
		}
		e.Parallel(tasks...)
		if n != 10 {
			t.Fatalf("workers=%d: ran %d tasks, want 10", workers, n)
		}
	}
}

func TestParallelEmpty(t *testing.T) {
	CPU().Parallel() // must not hang or panic
}

func TestMapWorkerOrdinalsInRange(t *testing.T) {
	e := New("t", 4)
	const n = 128
	var bad int32
	seen := make([]int32, n)
	e.Map(n, func(worker, i int) {
		if worker < 0 || worker >= e.Workers() {
			atomic.AddInt32(&bad, 1)
		}
		atomic.AddInt32(&seen[i], 1)
	})
	if bad != 0 {
		t.Fatal("worker ordinal out of range")
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestMapSerialUsesWorkerZero(t *testing.T) {
	e := CPU()
	e.Map(10, func(worker, i int) {
		if worker != 0 {
			t.Fatalf("serial engine used worker %d", worker)
		}
	})
}

func TestEnginesComputeSameResult(t *testing.T) {
	// The CPU and GPU engines must produce identical results for a
	// deterministic per-element computation.
	const n = 4096
	a := make([]float64, n)
	b := make([]float64, n)
	CPU().For(n, func(i int) { a[i] = float64(i)*1.5 + 2 })
	GPU().For(n, func(i int) { b[i] = float64(i)*1.5 + 2 })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("engines disagree at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestSplitDistributesWorkers(t *testing.T) {
	cases := []struct {
		workers, n int
		want       []int
	}{
		{8, 3, []int{3, 3, 2}},
		{6, 3, []int{2, 2, 2}},
		{1, 3, []int{1, 1, 1}}, // serial engine: every sub-engine stays serial
		{2, 3, []int{1, 1, 1}}, // min one worker each, never zero
		{7, 2, []int{4, 3}},
		{5, 1, []int{5}},
	}
	for _, c := range cases {
		subs := New("e", c.workers).Split(c.n)
		if len(subs) != len(c.want) {
			t.Fatalf("Split(%d) of %d workers: got %d sub-engines", c.n, c.workers, len(subs))
		}
		for i, s := range subs {
			if s.Workers() != c.want[i] {
				t.Errorf("workers=%d n=%d: sub %d has %d workers, want %d",
					c.workers, c.n, i, s.Workers(), c.want[i])
			}
		}
	}
}

func TestSplitNames(t *testing.T) {
	subs := New("gpu", 4).Split(2)
	if subs[0].Name() != "gpu/0" || subs[1].Name() != "gpu/1" {
		t.Fatalf("sub-engine names = %q, %q", subs[0].Name(), subs[1].Name())
	}
}

func TestSplitClampsN(t *testing.T) {
	subs := New("e", 4).Split(0)
	if len(subs) != 1 || subs[0].Workers() != 4 {
		t.Fatalf("Split(0) = %v", subs)
	}
}

func TestNestedParallelForChunk(t *testing.T) {
	// The corner fan-out pattern: an outer Parallel over sub-engines,
	// each running its own inner ForChunk/Map sweeps. All indices of all
	// tasks must be covered exactly once with no data races.
	for _, workers := range []int{1, 3, 8} {
		outer := New("outer", workers)
		subs := outer.Split(3)
		const n = 2048
		results := make([][]int32, 3)
		tasks := make([]func(), 3)
		for ti := range tasks {
			ti := ti
			results[ti] = make([]int32, n)
			tasks[ti] = func() {
				sub := subs[ti]
				sub.ForChunk(n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&results[ti][i], 1)
					}
				})
				sub.Map(n, func(worker, i int) {
					if worker < 0 || worker >= sub.Workers() {
						t.Errorf("task %d: worker ordinal %d out of range", ti, worker)
					}
					atomic.AddInt32(&results[ti][i], 1)
				})
			}
		}
		outer.Parallel(tasks...)
		for ti := range results {
			for i, c := range results[ti] {
				if c != 2 {
					t.Fatalf("workers=%d task=%d index=%d visited %d times, want 2", workers, ti, i, c)
				}
			}
		}
	}
}

func TestSerialParallelRunsInOrder(t *testing.T) {
	// With one worker, Parallel degenerates to an in-order loop — the
	// property the optimizer's fixed-order corner combination relies on
	// for bit-identity with the serial reference.
	e := CPU()
	var order []int
	e.Parallel(
		func() { order = append(order, 0) },
		func() { order = append(order, 1) },
		func() { order = append(order, 2) },
	)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("serial Parallel order = %v", order)
	}
}

func TestString(t *testing.T) {
	if got := New("cpu", 1).String(); got != "engine(cpu, 1 workers)" {
		t.Fatalf("String = %q", got)
	}
}

func TestSplitMorePartsThanWorkersStillExecutes(t *testing.T) {
	// Oversubscribed partition: every sub-engine must still run its work
	// to completion, serially, and cover every index exactly once.
	subs := New("e", 2).Split(5)
	if len(subs) != 5 {
		t.Fatalf("Split(5) produced %d sub-engines", len(subs))
	}
	for i, sub := range subs {
		if !sub.Serial() {
			t.Fatalf("sub %d has %d workers, want serial", i, sub.Workers())
		}
		const n = 100
		seen := make([]int, n)
		sub.For(n, func(j int) { seen[j]++ })
		sub.ForChunk(n, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				seen[j]++
			}
		})
		sub.Map(n, func(worker, j int) {
			if worker != 0 {
				t.Errorf("sub %d: serial Map worker ordinal %d", i, worker)
			}
			seen[j]++
		})
		for j, c := range seen {
			if c != 3 {
				t.Fatalf("sub %d index %d visited %d times, want 3", i, j, c)
			}
		}
	}
}

func TestSplitOfSerialEngine(t *testing.T) {
	// Splitting one worker must not deadlock or lose work: every
	// sub-engine is the degenerate serial engine.
	subs := New("solo", 1).Split(3)
	total := 0
	for _, sub := range subs {
		if sub.Workers() != 1 {
			t.Fatalf("serial split produced %d workers", sub.Workers())
		}
		sub.ForChunk(10, func(lo, hi int) { total += hi - lo })
	}
	if total != 30 {
		t.Fatalf("covered %d indices, want 30", total)
	}
}

func TestZeroSizeWork(t *testing.T) {
	// Zero-size parts must be complete no-ops on every primitive and
	// every engine shape — the session layer hands sub-engines jobs whose
	// per-part ranges can be empty.
	for _, e := range []*Engine{New("e1", 1), New("e4", 4)} {
		e.For(0, func(i int) { t.Error("For(0) invoked body") })
		e.ForChunk(0, func(lo, hi int) {
			if lo != hi {
				t.Errorf("ForChunk(0) got range [%d,%d)", lo, hi)
			}
		})
		e.Map(0, func(worker, i int) { t.Error("Map(0) invoked body") })
		e.Parallel()
		for _, sub := range e.Split(8) {
			sub.For(0, func(i int) { t.Error("sub For(0) invoked body") })
		}
	}
}
