package engine

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestNewClampsWorkers(t *testing.T) {
	if New("x", 0).Workers() != 1 {
		t.Fatal("worker count must be at least 1")
	}
	if New("x", -3).Workers() != 1 {
		t.Fatal("negative worker count must clamp to 1")
	}
	if New("x", 4).Workers() != 4 {
		t.Fatal("explicit worker count not honored")
	}
}

func TestCPUAndGPUConstructors(t *testing.T) {
	c := CPU()
	if !c.Serial() || c.Name() != "cpu" {
		t.Fatalf("CPU() = %v", c)
	}
	g := GPU()
	if g.Workers() != runtime.NumCPU() || g.Name() != "gpu" {
		t.Fatalf("GPU() = %v", g)
	}
	if runtime.NumCPU() > 1 && g.Serial() {
		t.Fatal("GPU engine should not be serial on multicore hosts")
	}
}

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		e := New("t", workers)
		const n = 1000
		counts := make([]int32, n)
		e.For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForChunkPartition(t *testing.T) {
	e := New("t", 4)
	const n = 37
	visited := make([]int32, n)
	e.ForChunk(n, func(lo, hi int) {
		if lo >= hi || lo < 0 || hi > n {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visited[i], 1)
		}
	})
	for i, c := range visited {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	e := New("t", 4)
	called := false
	e.For(0, func(int) { called = true })
	e.For(-5, func(int) { called = true })
	e.ForChunk(0, func(int, int) { called = true })
	if called {
		t.Fatal("body must not run for non-positive n")
	}
}

func TestForMoreWorkersThanWork(t *testing.T) {
	e := New("t", 64)
	var total int64
	e.For(3, func(i int) { atomic.AddInt64(&total, int64(i)) })
	if total != 3 {
		t.Fatalf("sum = %d, want 3", total)
	}
}

func TestParallelRunsAllTasks(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := New("t", workers)
		var n int32
		tasks := make([]func(), 10)
		for i := range tasks {
			tasks[i] = func() { atomic.AddInt32(&n, 1) }
		}
		e.Parallel(tasks...)
		if n != 10 {
			t.Fatalf("workers=%d: ran %d tasks, want 10", workers, n)
		}
	}
}

func TestParallelEmpty(t *testing.T) {
	CPU().Parallel() // must not hang or panic
}

func TestMapWorkerOrdinalsInRange(t *testing.T) {
	e := New("t", 4)
	const n = 128
	var bad int32
	seen := make([]int32, n)
	e.Map(n, func(worker, i int) {
		if worker < 0 || worker >= e.Workers() {
			atomic.AddInt32(&bad, 1)
		}
		atomic.AddInt32(&seen[i], 1)
	})
	if bad != 0 {
		t.Fatal("worker ordinal out of range")
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestMapSerialUsesWorkerZero(t *testing.T) {
	e := CPU()
	e.Map(10, func(worker, i int) {
		if worker != 0 {
			t.Fatalf("serial engine used worker %d", worker)
		}
	})
}

func TestEnginesComputeSameResult(t *testing.T) {
	// The CPU and GPU engines must produce identical results for a
	// deterministic per-element computation.
	const n = 4096
	a := make([]float64, n)
	b := make([]float64, n)
	CPU().For(n, func(i int) { a[i] = float64(i)*1.5 + 2 })
	GPU().For(n, func(i int) { b[i] = float64(i)*1.5 + 2 })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("engines disagree at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestString(t *testing.T) {
	if got := New("cpu", 1).String(); got != "engine(cpu, 1 workers)" {
		t.Fatalf("String = %q", got)
	}
}
