package experiments

import (
	"time"

	"lsopc"
	"lsopc/internal/grid"
	"lsopc/internal/litho"
)

// ConvergenceTrace is one optimizer run's cost-per-iteration series.
type ConvergenceTrace struct {
	Label string
	Cost  []float64
}

// CGvsGD runs the level-set optimizer twice on one benchmark — with the
// PRP conjugate-gradient velocity and with plain steepest descent — and
// returns both cost traces. This is the convergence study behind the
// paper's contribution (ii).
func CGvsGD(preset lsopc.Preset, caseID string, maxIter int) ([]ConvergenceTrace, error) {
	layout, err := lsopc.BenchmarkByID(caseID)
	if err != nil {
		return nil, err
	}
	var out []ConvergenceTrace
	for _, cg := range []bool{true, false} {
		pipe, err := lsopc.NewPipeline(preset, lsopc.GPUEngine())
		if err != nil {
			return nil, err
		}
		opts := lsopc.DefaultLevelSetOptions()
		opts.MaxIter = maxIter
		opts.UseCG = cg
		run, err := pipe.OptimizeLevelSet(layout, opts)
		if err != nil {
			return nil, err
		}
		label := "PRP-CG"
		if !cg {
			label = "gradient-descent"
		}
		tr := ConvergenceTrace{Label: label}
		for _, h := range run.LevelSet.History {
			tr.Cost = append(tr.Cost, h.CostTotal)
		}
		out = append(out, tr)
	}
	return out, nil
}

// MinCost returns the lowest cost in the trace.
func (t ConvergenceTrace) MinCost() float64 {
	best := t.Cost[0]
	for _, c := range t.Cost[1:] {
		if c < best {
			best = c
		}
	}
	return best
}

// CombinedKernelResult quantifies the Eq. 17 fused-kernel forward path:
// its pointwise error against the exact SOCS sum and its speedup.
type CombinedKernelResult struct {
	RelativeError float64       // ‖I_fast − I_exact‖ / ‖I_exact‖
	ExactTime     time.Duration // K-kernel forward
	FastTime      time.Duration // fused single-kernel forward
	Speedup       float64
	Kernels       int
}

// CombinedKernelAblation measures the Eq. 17 approximation on one
// benchmark's design mask.
func CombinedKernelAblation(preset lsopc.Preset, caseID string, repeats int) (*CombinedKernelResult, error) {
	pipe, err := lsopc.NewPipeline(preset, lsopc.GPUEngine())
	if err != nil {
		return nil, err
	}
	layout, err := lsopc.BenchmarkByID(caseID)
	if err != nil {
		return nil, err
	}
	target, err := pipe.Target(layout)
	if err != nil {
		return nil, err
	}
	sim := pipe.Simulator()
	spec := sim.MaskSpectrum(target)
	n := sim.GridSize()
	exact := grid.NewField(n, n)
	fast := grid.NewField(n, n)
	if repeats < 1 {
		repeats = 1
	}

	start := time.Now()
	for i := 0; i < repeats; i++ {
		sim.Aerial(exact, spec, litho.Nominal)
	}
	exactTime := time.Since(start) / time.Duration(repeats)

	start = time.Now()
	for i := 0; i < repeats; i++ {
		sim.AerialFast(fast, spec, litho.Nominal)
	}
	fastTime := time.Since(start) / time.Duration(repeats)

	diff := grid.NewField(n, n)
	diff.Sub(exact, fast)
	res := &CombinedKernelResult{
		RelativeError: diff.Norm() / exact.Norm(),
		ExactTime:     exactTime,
		FastTime:      fastTime,
		Kernels:       sim.Config().Optics.Kernels,
	}
	if fastTime > 0 {
		res.Speedup = float64(exactTime) / float64(fastTime)
	}
	return res, nil
}

// PVBSweepRow is one point of the w_pvb trade-off study.
type PVBSweepRow struct {
	Weight    float64
	EPE       int
	PVBandNM2 float64
	Score     float64
}

// PVBWeightSweep optimizes one benchmark under several w_pvb values,
// exposing the EPE-versus-PVB trade-off the paper's §IV discusses.
func PVBWeightSweep(preset lsopc.Preset, caseID string, weights []float64, maxIter int) ([]PVBSweepRow, error) {
	layout, err := lsopc.BenchmarkByID(caseID)
	if err != nil {
		return nil, err
	}
	var out []PVBSweepRow
	for _, w := range weights {
		pipe, err := lsopc.NewPipeline(preset, lsopc.GPUEngine())
		if err != nil {
			return nil, err
		}
		opts := lsopc.DefaultLevelSetOptions()
		opts.MaxIter = maxIter
		opts.PVBWeight = w
		run, err := pipe.OptimizeLevelSet(layout, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, PVBSweepRow{
			Weight:    w,
			EPE:       run.Report.EPEViolations,
			PVBandNM2: run.Report.PVBandNM2,
			Score:     run.Report.Score(),
		})
	}
	return out, nil
}

// TimeStepStudy compares the three step-size policies of Algorithm 1's
// line 5 on one benchmark: fixed CFL step, the feedback-adaptive step,
// and the exact line search (reference [9]).
func TimeStepStudy(preset lsopc.Preset, caseID string, maxIter int) ([]ConvergenceTrace, error) {
	layout, err := lsopc.BenchmarkByID(caseID)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		label string
		mut   func(*lsopc.LevelSetOptions)
	}{
		{"fixed-step", func(o *lsopc.LevelSetOptions) { o.AdaptiveStep = false }},
		{"adaptive-step", func(o *lsopc.LevelSetOptions) { o.AdaptiveStep = true }},
		{"line-search", func(o *lsopc.LevelSetOptions) { o.AdaptiveStep = false; o.LineSearch = true }},
	}
	var out []ConvergenceTrace
	for _, v := range variants {
		pipe, err := lsopc.NewPipeline(preset, lsopc.GPUEngine())
		if err != nil {
			return nil, err
		}
		opts := lsopc.DefaultLevelSetOptions()
		opts.MaxIter = maxIter
		v.mut(&opts)
		run, err := pipe.OptimizeLevelSet(layout, opts)
		if err != nil {
			return nil, err
		}
		tr := ConvergenceTrace{Label: v.label}
		for _, h := range run.LevelSet.History {
			tr.Cost = append(tr.Cost, h.CostTotal)
		}
		out = append(out, tr)
	}
	return out, nil
}

// ResolutionRow is one preset's outcome in the resolution study.
type ResolutionRow struct {
	Preset    lsopc.Preset
	GridPx    int
	PixelNM   float64
	EPE       int
	PVBandNM2 float64
	Seconds   float64
}

// ResolutionStudy optimizes one benchmark with the level-set method at
// several presets, quantifying how simulation resolution affects the
// contest metrics (the checker's 15 nm tolerance is sub-pixel on coarse
// grids, which inflates EPE counts).
func ResolutionStudy(presets []lsopc.Preset, caseID string, maxIter int) ([]ResolutionRow, error) {
	layout, err := lsopc.BenchmarkByID(caseID)
	if err != nil {
		return nil, err
	}
	var out []ResolutionRow
	for _, p := range presets {
		pipe, err := lsopc.NewPipeline(p, lsopc.GPUEngine())
		if err != nil {
			return nil, err
		}
		opts := lsopc.DefaultLevelSetOptions()
		opts.MaxIter = maxIter
		run, err := pipe.OptimizeLevelSet(layout, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, ResolutionRow{
			Preset:    p,
			GridPx:    pipe.GridSize(),
			PixelNM:   pipe.PixelNM(),
			EPE:       run.Report.EPEViolations,
			PVBandNM2: run.Report.PVBandNM2,
			Seconds:   run.Elapsed.Seconds(),
		})
	}
	return out, nil
}
