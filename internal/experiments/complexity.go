package experiments

import (
	"fmt"
	"strings"

	"lsopc"
	"lsopc/internal/metrics"
)

// ComplexityRow compares one method's optimized-mask manufacturability.
type ComplexityRow struct {
	Method string
	metrics.MaskComplexity
	Score float64 // contest score, for the quality context
}

// MaskComplexityStudy quantifies the paper's §I motivation: level-set
// masks should carry fewer isolated stains/pinholes and less contour
// raggedness than pixel-based ILT masks of comparable quality. It
// optimizes one benchmark with the level-set method and each baseline
// and measures the resulting masks.
func MaskComplexityStudy(preset lsopc.Preset, caseID string, iterScale float64) ([]ComplexityRow, error) {
	layout, err := lsopc.BenchmarkByID(caseID)
	if err != nil {
		return nil, err
	}
	o := Options{IterScale: iterScale}
	var rows []ComplexityRow

	pipe, err := lsopc.NewPipeline(preset, lsopc.GPUEngine())
	if err != nil {
		return nil, err
	}
	for _, v := range []lsopc.BaselineVariant{lsopc.MosaicFast, lsopc.MosaicExact, lsopc.RobustOPC, lsopc.PVOPC} {
		opts := lsopc.DefaultBaselineOptions(v)
		opts.MaxIter = o.iters(opts.MaxIter)
		run, err := pipe.OptimizeBaseline(layout, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ComplexityRow{
			Method:         v.String(),
			MaskComplexity: metrics.Complexity(run.Mask),
			Score:          run.Report.Score(),
		})
	}

	lsOpts := o.levelSetOptions()
	run, err := pipe.OptimizeLevelSet(layout, lsOpts)
	if err != nil {
		return nil, err
	}
	rows = append(rows, ComplexityRow{
		Method:         OursName,
		MaskComplexity: metrics.Complexity(run.Mask),
		Score:          run.Report.Score(),
	})
	return rows, nil
}

// FormatComplexity renders the manufacturability comparison.
func FormatComplexity(caseID string, rows []ComplexityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mask manufacturability on %s (§I motivation: stains/glitches)\n", caseID)
	fmt.Fprintf(&b, "%-13s %8s %6s %6s %6s %10s %8s %10s\n",
		"method", "islands", "tiny", "holes", "pinhl", "perim(px)", "jogs", "score")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %8d %6d %6d %6d %10d %8d %10.0f\n",
			r.Method, r.Islands, r.TinyIslands, r.Holes, r.TinyHoles,
			r.PerimeterPx, r.JogCount, r.Score)
	}
	return b.String()
}
