// Package experiments regenerates every table and figure of the paper's
// evaluation section (§IV) on the synthetic benchmark suite:
//
//   - Table I  — #EPE / PVB / contest score for B1…B10 across
//     MOSAIC_fast, MOSAIC_exact, robust OPC, PVOPC and the level-set
//     method ("Ours").
//   - Table II — runtime per benchmark, including Ours on the serial
//     (CPU) and parallel (GPU-substitute) engines.
//   - Fig. 1   — EPE probe distances and the PV band of a printed mask.
//   - Fig. 2   — the level-set contour evolution over iterations.
//   - Ablations — CG vs plain gradient descent convergence, the Eq. 17
//     fused-kernel approximation, and the w_pvb sweep.
//
// Everything is driven through the public lsopc façade, so the harness
// doubles as an integration test of the documented API.
package experiments

import (
	"fmt"
	"io"
	"time"

	"lsopc"
	"lsopc/internal/grid"
	"lsopc/internal/metrics"
)

// MethodNames lists the Table I columns in paper order; OursName is the
// level-set method.
var MethodNames = []string{"MOSAIC_fast", "MOSAIC_exact", "robust OPC", "PVOPC", OursName}

// OursName labels the paper's method in result maps.
const OursName = "Ours"

// Options configures a table regeneration run.
type Options struct {
	// Preset selects the simulation scale (PresetFast reproduces the
	// table shape in minutes; PresetPaper is contest scale).
	Preset lsopc.Preset
	// Engine runs the optimizers (defaults to the parallel engine).
	Engine *lsopc.Engine
	// Cases restricts the benchmarks (nil = all ten).
	Cases []string
	// IterScale scales every method's iteration budget (0 = 1.0); use
	// small values for smoke tests.
	IterScale float64
	// Sink, when non-nil, receives one EventProgress per completed run
	// plus the structured iteration/corner/span events from every
	// optimization in the sweep.
	Sink lsopc.TraceSink
	// Progress, when non-nil, receives one line per completed run. It is
	// a thin adapter over Sink: when Sink is nil the writer is wrapped in
	// a line sink, so existing callers keep byte-identical output.
	Progress io.Writer
}

// sink resolves the effective progress sink once per run: the explicit
// Sink, the legacy Progress writer wrapped as a line sink, or both.
func (o Options) sink() lsopc.TraceSink {
	switch {
	case o.Sink != nil && o.Progress != nil:
		return lsopc.TeeTraceSink(o.Sink, lsopc.NewLineTraceSink(o.Progress))
	case o.Sink != nil:
		return o.Sink
	case o.Progress != nil:
		return lsopc.NewLineTraceSink(o.Progress)
	}
	return nil
}

func (o Options) iters(base int) int {
	s := o.IterScale
	if s == 0 {
		s = 1
	}
	n := int(float64(base)*s + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

func (o Options) cases() []string {
	if len(o.Cases) > 0 {
		return o.Cases
	}
	ids := make([]string, 0, 10)
	for _, s := range lsopc.Benchmarks() {
		ids = append(ids, s.ID)
	}
	return ids
}

func progressf(sink lsopc.TraceSink, format string, args ...any) {
	if sink != nil {
		sink.Emit(lsopc.TraceEvent{Type: lsopc.EventProgress, Msg: fmt.Sprintf(format, args...)})
	}
}

// CaseResult holds every method's outcome on one benchmark.
type CaseResult struct {
	ID          string
	PatternArea int
	// Reports maps method name → contest report (Ours runs on the
	// options engine).
	Reports map[string]lsopc.Report
	// OursCPUSeconds / OursGPUSeconds are the Table II runtimes of the
	// level-set method on the serial and parallel engines.
	OursCPUSeconds float64
	OursGPUSeconds float64
}

// levelSetOptions returns the paper-configured optimizer options at the
// harness's iteration scale.
func (o Options) levelSetOptions() lsopc.LevelSetOptions {
	opts := lsopc.DefaultLevelSetOptions()
	opts.MaxIter = o.iters(opts.MaxIter)
	return opts
}

// Run executes every method on every selected benchmark, producing the
// data behind Tables I and II in one pass.
func Run(o Options) ([]CaseResult, error) {
	eng := o.Engine
	if eng == nil {
		eng = lsopc.GPUEngine()
	}
	// The effective sink is resolved once: an explicit Sink carries the
	// full structured event stream and is attached to the pipelines; a
	// bare Progress writer only receives the per-run progress lines
	// (keeping legacy output byte-identical).
	sink := o.sink()
	var popts []lsopc.PipelineOption
	if o.Sink != nil {
		popts = append(popts, lsopc.WithTraceSink(o.Sink))
	}
	pipe, err := lsopc.NewPipeline(o.Preset, eng, popts...)
	if err != nil {
		return nil, err
	}
	cpuPipe, err := lsopc.NewPipeline(o.Preset, lsopc.CPUEngine(), popts...)
	if err != nil {
		return nil, err
	}

	var out []CaseResult
	for _, id := range o.cases() {
		layout, err := lsopc.BenchmarkByID(id)
		if err != nil {
			return nil, err
		}
		cr := CaseResult{ID: id, PatternArea: layout.Area(), Reports: make(map[string]lsopc.Report)}

		// Baselines.
		for _, v := range []lsopc.BaselineVariant{lsopc.MosaicFast, lsopc.MosaicExact, lsopc.RobustOPC, lsopc.PVOPC} {
			opts := lsopc.DefaultBaselineOptions(v)
			opts.MaxIter = o.iters(opts.MaxIter)
			run, err := pipe.OptimizeBaseline(layout, opts)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", id, v, err)
			}
			cr.Reports[v.String()] = run.Report
			progressf(sink, "%s %-12s %s\n", id, v, run.Report)
		}

		// Ours on the parallel engine (Table I entry + GPU runtime).
		lsOpts := o.levelSetOptions()
		run, err := pipe.OptimizeLevelSet(layout, lsOpts)
		if err != nil {
			return nil, fmt.Errorf("%s/level-set: %w", id, err)
		}
		cr.Reports[OursName] = run.Report
		cr.OursGPUSeconds = run.Elapsed.Seconds()
		progressf(sink, "%s %-12s %s\n", id, "Ours(GPU)", run.Report)

		// Ours again on the serial engine (Table II CPU runtime).
		cpuRun, err := cpuPipe.OptimizeLevelSet(layout, lsOpts)
		if err != nil {
			return nil, fmt.Errorf("%s/level-set-cpu: %w", id, err)
		}
		cr.OursCPUSeconds = cpuRun.Elapsed.Seconds()
		progressf(sink, "%s %-12s RT=%.1fs\n", id, "Ours(CPU)", cr.OursCPUSeconds)

		out = append(out, cr)
	}
	pipe.Release()
	cpuPipe.Release()
	return out, nil
}

// Fig2Evolution optimizes one benchmark while recording mask snapshots,
// reproducing the paper's Fig. 2 (initial mask vs mask after t
// iterations).
func Fig2Evolution(preset lsopc.Preset, caseID string, maxIter, snapshotEvery int) (*lsopc.RunResult, error) {
	pipe, err := lsopc.NewPipeline(preset, lsopc.GPUEngine())
	if err != nil {
		return nil, err
	}
	layout, err := lsopc.BenchmarkByID(caseID)
	if err != nil {
		return nil, err
	}
	opts := lsopc.DefaultLevelSetOptions()
	opts.MaxIter = maxIter
	opts.SnapshotEvery = snapshotEvery
	return pipe.OptimizeLevelSet(layout, opts)
}

// Fig1Data carries the measurement illustration of Fig. 1: the corner
// prints whose XOR is the PV band, and the per-probe EPE distances.
type Fig1Data struct {
	Target       *lsopc.Field
	Nominal      *lsopc.Field
	Outer        *lsopc.Field
	Inner        *lsopc.Field
	PVBand       *lsopc.Field // 1 where outer and inner disagree
	PVBandNM2    float64
	ProbeDists   []float64
	EPEThreshold float64
	Violations   int
}

// Fig1Measurement prints the (unoptimized) design of one benchmark and
// measures it, yielding the PV-band region of Fig. 1(b) and the EPE
// probe distances of Fig. 1(a).
func Fig1Measurement(preset lsopc.Preset, caseID string) (*Fig1Data, error) {
	pipe, err := lsopc.NewPipeline(preset, lsopc.GPUEngine())
	if err != nil {
		return nil, err
	}
	layout, err := lsopc.BenchmarkByID(caseID)
	if err != nil {
		return nil, err
	}
	target, err := pipe.Target(layout)
	if err != nil {
		return nil, err
	}
	nominal, outer, inner := pipe.PrintedImages(target)
	band := grid.NewFieldLike(outer)
	for i := range band.Data {
		if (outer.Data[i] > 0.5) != (inner.Data[i] > 0.5) {
			band.Data[i] = 1
		}
	}
	cfg := metrics.DefaultConfig(pipe.PixelNM())
	probes := metrics.Probes(layout, cfg.EPESpacingNM)
	viol, dists := metrics.EPE(nominal, probes, cfg)
	return &Fig1Data{
		Target:       target,
		Nominal:      nominal,
		Outer:        outer,
		Inner:        inner,
		PVBand:       band,
		PVBandNM2:    metrics.PVBand(outer, inner, pipe.PixelNM()),
		ProbeDists:   dists,
		EPEThreshold: cfg.EPEThresholdNM,
		Violations:   viol,
	}, nil
}

// EngineRuntime measures one level-set optimization wall time on the
// given engine (the Table II per-engine measurement in isolation).
func EngineRuntime(preset lsopc.Preset, caseID string, eng *lsopc.Engine, maxIter int) (time.Duration, error) {
	pipe, err := lsopc.NewPipeline(preset, eng)
	if err != nil {
		return 0, err
	}
	layout, err := lsopc.BenchmarkByID(caseID)
	if err != nil {
		return 0, err
	}
	opts := lsopc.DefaultLevelSetOptions()
	opts.MaxIter = maxIter
	run, err := pipe.OptimizeLevelSet(layout, opts)
	if err != nil {
		return 0, err
	}
	return run.Elapsed, nil
}
