package experiments

import (
	"bytes"
	"strings"
	"testing"

	"lsopc"
)

// smokeOptions runs the full harness at unit-test scale: the smallest
// preset, two benchmarks, tiny iteration budgets.
func smokeOptions() Options {
	return Options{
		Preset:    lsopc.PresetTest,
		Cases:     []string{"B4", "B10"},
		IterScale: 0.15,
	}
}

func TestRunProducesAllMethods(t *testing.T) {
	var progress bytes.Buffer
	o := smokeOptions()
	o.Progress = &progress
	rows, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("row count %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Reports) != len(MethodNames) {
			t.Fatalf("%s: %d method reports, want %d", r.ID, len(r.Reports), len(MethodNames))
		}
		for _, m := range MethodNames {
			if _, ok := r.Reports[m]; !ok {
				t.Fatalf("%s: missing method %s", r.ID, m)
			}
		}
		if r.OursCPUSeconds <= 0 || r.OursGPUSeconds <= 0 {
			t.Fatalf("%s: missing engine runtimes", r.ID)
		}
		if r.PatternArea <= 0 {
			t.Fatalf("%s: missing pattern area", r.ID)
		}
	}
	if progress.Len() == 0 {
		t.Fatal("no progress output")
	}
}

func TestRunUnknownCase(t *testing.T) {
	o := smokeOptions()
	o.Cases = []string{"B77"}
	if _, err := Run(o); err == nil {
		t.Fatal("unknown case accepted")
	}
}

func TestFormatTables(t *testing.T) {
	rows, err := Run(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	t1 := FormatTable1(rows)
	for _, want := range []string{"Table I", "B4", "B10", "Avg.", "MOSAIC_exact", "Ours"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I output missing %q:\n%s", want, t1)
		}
	}
	t2 := FormatTable2(rows)
	for _, want := range []string{"Table II", "Ours CPU", "Ours GPU", "Avg."} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II output missing %q:\n%s", want, t2)
		}
	}
}

func TestFig2Evolution(t *testing.T) {
	run, err := Fig2Evolution(lsopc.PresetTest, "B4", 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if run.LevelSet == nil || len(run.LevelSet.Snapshots) != 2 {
		t.Fatalf("expected 2 snapshots, got %+v", run.LevelSet)
	}
	// Evolution must actually move the contour between snapshots.
	a := run.LevelSet.Snapshots[0].Mask
	b := run.LevelSet.Snapshots[1].Mask
	if a.XORCount(b) == 0 {
		t.Fatal("mask did not evolve between snapshots")
	}
}

func TestFig1Measurement(t *testing.T) {
	d, err := Fig1Measurement(lsopc.PresetTest, "B1")
	if err != nil {
		t.Fatal(err)
	}
	if d.PVBandNM2 <= 0 {
		t.Fatal("PV band must be positive for an unoptimized design")
	}
	if int(d.PVBand.Sum())*16*16 != int(d.PVBandNM2) {
		t.Fatalf("PV band field (%g px) inconsistent with area %g nm²", d.PVBand.Sum(), d.PVBandNM2)
	}
	if len(d.ProbeDists) == 0 {
		t.Fatal("no probe distances")
	}
	if d.EPEThreshold != 15 {
		t.Fatalf("threshold %g, want contest 15", d.EPEThreshold)
	}
	// The violation count must match the distances against the
	// threshold.
	n := 0
	for _, dist := range d.ProbeDists {
		if dist >= d.EPEThreshold {
			n++
		}
	}
	if n != d.Violations {
		t.Fatalf("violations %d inconsistent with distances (%d)", d.Violations, n)
	}
}

func TestCGvsGDTraces(t *testing.T) {
	traces, err := CGvsGD(lsopc.PresetTest, "B4", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("trace count %d", len(traces))
	}
	if traces[0].Label != "PRP-CG" || traces[1].Label != "gradient-descent" {
		t.Fatalf("labels: %q, %q", traces[0].Label, traces[1].Label)
	}
	for _, tr := range traces {
		if len(tr.Cost) != 6 {
			t.Fatalf("%s: %d iterations", tr.Label, len(tr.Cost))
		}
		if tr.MinCost() >= tr.Cost[0] {
			t.Fatalf("%s: no improvement", tr.Label)
		}
	}
	out := FormatConvergence(traces)
	if !strings.Contains(out, "PRP-CG") || !strings.Contains(out, "min(") {
		t.Fatal("convergence formatting incomplete")
	}
}

func TestCombinedKernelAblation(t *testing.T) {
	res, err := CombinedKernelAblation(lsopc.PresetTest, "B4", 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernels != 4 {
		t.Fatalf("kernel count %d", res.Kernels)
	}
	// Eq. 17 is approximate for K>1: error strictly between 0 and 100%.
	if res.RelativeError <= 0 || res.RelativeError > 1 {
		t.Fatalf("relative error %g out of range", res.RelativeError)
	}
	if res.FastTime <= 0 || res.ExactTime <= 0 {
		t.Fatal("timings missing")
	}
	if res.String() == "" {
		t.Fatal("empty formatting")
	}
}

func TestPVBWeightSweep(t *testing.T) {
	rows, err := PVBWeightSweep(lsopc.PresetTest, "B4", []float64{0, 0.6}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("row count %d", len(rows))
	}
	if rows[0].Weight != 0 || rows[1].Weight != 0.6 {
		t.Fatal("weights wrong")
	}
	out := FormatPVBSweep(rows)
	if !strings.Contains(out, "w_pvb") {
		t.Fatal("sweep formatting incomplete")
	}
}

func TestEngineRuntime(t *testing.T) {
	d, err := EngineRuntime(lsopc.PresetTest, "B10", lsopc.CPUEngine(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("zero runtime")
	}
}

func TestItersScaling(t *testing.T) {
	o := Options{IterScale: 0.1}
	if got := o.iters(50); got != 5 {
		t.Fatalf("iters(50) at 0.1 = %d", got)
	}
	o.IterScale = 0
	if got := o.iters(50); got != 50 {
		t.Fatalf("iters(50) at default = %d", got)
	}
	o.IterScale = 0.001
	if got := o.iters(50); got != 1 {
		t.Fatalf("iters floor = %d", got)
	}
}

func TestMaskComplexityStudy(t *testing.T) {
	rows, err := MaskComplexityStudy(lsopc.PresetTest, "B4", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("row count %d, want 5", len(rows))
	}
	if rows[4].Method != OursName {
		t.Fatalf("last row %q, want %q", rows[4].Method, OursName)
	}
	for _, r := range rows {
		if r.AreaPx == 0 || r.PerimeterPx == 0 {
			t.Fatalf("%s: empty mask measured", r.Method)
		}
	}
	out := FormatComplexity("B4", rows)
	if !strings.Contains(out, "Ours") || !strings.Contains(out, "islands") {
		t.Fatal("complexity formatting incomplete")
	}
}

func TestTimeStepStudy(t *testing.T) {
	traces, err := TimeStepStudy(lsopc.PresetTest, "B4", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("trace count %d", len(traces))
	}
	labels := map[string]bool{}
	for _, tr := range traces {
		labels[tr.Label] = true
		if len(tr.Cost) != 5 {
			t.Fatalf("%s: %d iterations", tr.Label, len(tr.Cost))
		}
	}
	for _, want := range []string{"fixed-step", "adaptive-step", "line-search"} {
		if !labels[want] {
			t.Fatalf("missing variant %s", want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	rows := []CaseResult{{
		ID: "B4", PatternArea: 82560,
		Reports: map[string]lsopc.Report{
			"MOSAIC_fast": {EPEViolations: 1, PVBandNM2: 100, RuntimeSec: 2},
			OursName:      {EPEViolations: 0, PVBandNM2: 90, RuntimeSec: 3},
		},
		OursCPUSeconds: 5, OursGPUSeconds: 2,
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"case,pattern_area_nm2", "B4,82560,MOSAIC_fast,1,100", "B4,82560,Ours,0,90", "Ours(CPU)", "Ours(GPU)"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestHybridStudy(t *testing.T) {
	rows, err := HybridStudy(lsopc.PresetTest, "B4", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("row count %d", len(rows))
	}
	want := []string{"rule-based", "level-set", "hybrid"}
	for i, r := range rows {
		if r.Method != want[i] {
			t.Fatalf("row %d method %q", i, r.Method)
		}
		if r.Elapsed < 0 {
			t.Fatal("missing elapsed time")
		}
	}
	out := FormatHybrid("B4", rows)
	if !strings.Contains(out, "hybrid") || !strings.Contains(out, "MRC") {
		t.Fatal("hybrid formatting incomplete")
	}
}

func TestResolutionStudy(t *testing.T) {
	rows, err := ResolutionStudy([]lsopc.Preset{lsopc.PresetTest}, "B10", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].GridPx != 128 || rows[0].PixelNM != 16 {
		t.Fatalf("rows %+v", rows)
	}
	out := FormatResolution("B10", rows)
	if !strings.Contains(out, "Resolution study") || !strings.Contains(out, "test") {
		t.Fatal("resolution formatting incomplete")
	}
}
