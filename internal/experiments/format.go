package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// FormatTable1 renders the Table I comparison: per benchmark, each
// method's #EPE, PV band and contest score, with the column averages the
// paper reports.
func FormatTable1(rows []CaseResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — #EPE / PVB(nm²) / Score on ICCAD-2013-style benchmarks\n")
	fmt.Fprintf(&b, "%-5s %-12s", "ID", "PatternArea")
	for _, m := range MethodNames {
		fmt.Fprintf(&b, " | %-28s", m)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-5s %-12s", "", "")
	for range MethodNames {
		fmt.Fprintf(&b, " | %6s %10s %9s", "#EPE", "PVB", "Score")
	}
	b.WriteByte('\n')

	avg := make(map[string]float64)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %-12d", r.ID, r.PatternArea)
		for _, m := range MethodNames {
			rep, ok := r.Reports[m]
			if !ok {
				fmt.Fprintf(&b, " | %28s", "—")
				continue
			}
			fmt.Fprintf(&b, " | %6d %10.0f %9.0f", rep.EPEViolations, rep.PVBandNM2, rep.Score())
			avg[m] += rep.Score()
		}
		b.WriteByte('\n')
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "%-5s %-12s", "Avg.", "")
		for _, m := range MethodNames {
			fmt.Fprintf(&b, " | %6s %10s %9.0f", "", "", avg[m]/float64(len(rows)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTable2 renders the Table II runtime comparison, with the
// level-set method measured on both engines.
func FormatTable2(rows []CaseResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — runtime (seconds)\n")
	fmt.Fprintf(&b, "%-5s %12s %12s %12s %12s %10s %10s\n",
		"Case", "MOSAIC_fast", "MOSAIC_exact", "robust OPC", "PVOPC", "Ours CPU", "Ours GPU")
	var sums [6]float64
	for _, r := range rows {
		vals := []float64{
			r.Reports["MOSAIC_fast"].RuntimeSec,
			r.Reports["MOSAIC_exact"].RuntimeSec,
			r.Reports["robust OPC"].RuntimeSec,
			r.Reports["PVOPC"].RuntimeSec,
			r.OursCPUSeconds,
			r.OursGPUSeconds,
		}
		fmt.Fprintf(&b, "%-5s %12.1f %12.1f %12.1f %12.1f %10.1f %10.1f\n",
			r.ID, vals[0], vals[1], vals[2], vals[3], vals[4], vals[5])
		for i, v := range vals {
			sums[i] += v
		}
	}
	if n := float64(len(rows)); n > 0 {
		fmt.Fprintf(&b, "%-5s %12.1f %12.1f %12.1f %12.1f %10.1f %10.1f\n",
			"Avg.", sums[0]/n, sums[1]/n, sums[2]/n, sums[3]/n, sums[4]/n, sums[5]/n)
	}
	return b.String()
}

// FormatConvergence renders CG-vs-GD cost traces side by side.
func FormatConvergence(traces []ConvergenceTrace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Convergence (total cost per iteration)\n")
	fmt.Fprintf(&b, "%-6s", "iter")
	for _, t := range traces {
		fmt.Fprintf(&b, " %18s", t.Label)
	}
	b.WriteByte('\n')
	n := 0
	for _, t := range traces {
		if len(t.Cost) > n {
			n = len(t.Cost)
		}
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%-6d", i)
		for _, t := range traces {
			if i < len(t.Cost) {
				fmt.Fprintf(&b, " %18.4f", t.Cost[i])
			} else {
				fmt.Fprintf(&b, " %18s", "")
			}
		}
		b.WriteByte('\n')
	}
	for _, t := range traces {
		fmt.Fprintf(&b, "min(%s) = %.4f\n", t.Label, t.MinCost())
	}
	return b.String()
}

// FormatPVBSweep renders the w_pvb trade-off rows.
func FormatPVBSweep(rows []PVBSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "w_pvb sweep — EPE vs PV band trade-off\n")
	fmt.Fprintf(&b, "%8s %6s %12s %10s\n", "w_pvb", "#EPE", "PVB(nm²)", "Score")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.2f %6d %12.0f %10.0f\n", r.Weight, r.EPE, r.PVBandNM2, r.Score)
	}
	return b.String()
}

// FormatCombinedKernel renders the Eq. 17 ablation.
func (r *CombinedKernelResult) String() string {
	return fmt.Sprintf(
		"Eq.17 fused kernel: K=%d, rel.err=%.3f, exact=%v, fused=%v, speedup=%.1fx",
		r.Kernels, r.RelativeError, r.ExactTime, r.FastTime, r.Speedup)
}

// WriteCSV emits the raw per-case, per-method results as CSV for
// external analysis: one row per (case, method) with the metric columns
// plus the engine runtimes for the level-set method.
func WriteCSV(w io.Writer, rows []CaseResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"case", "pattern_area_nm2", "method", "epe", "pvband_nm2",
		"shape_violations", "runtime_sec", "score",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, m := range MethodNames {
			rep, ok := r.Reports[m]
			if !ok {
				continue
			}
			rec := []string{
				r.ID,
				strconv.Itoa(r.PatternArea),
				m,
				strconv.Itoa(rep.EPEViolations),
				strconv.FormatFloat(rep.PVBandNM2, 'f', 0, 64),
				strconv.Itoa(rep.ShapeViolations),
				strconv.FormatFloat(rep.RuntimeSec, 'f', 2, 64),
				strconv.FormatFloat(rep.Score(), 'f', 0, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		// Engine rows for Table II.
		for _, er := range []struct {
			name string
			sec  float64
		}{{"Ours(CPU)", r.OursCPUSeconds}, {"Ours(GPU)", r.OursGPUSeconds}} {
			rec := []string{
				r.ID, strconv.Itoa(r.PatternArea), er.name, "", "", "",
				strconv.FormatFloat(er.sec, 'f', 2, 64), "",
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatResolution renders the resolution study.
func FormatResolution(caseID string, rows []ResolutionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Resolution study on %s (level-set method)\n", caseID)
	fmt.Fprintf(&b, "%-8s %8s %10s %6s %12s %8s\n", "preset", "grid", "px(nm)", "#EPE", "PVB(nm²)", "time(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %8d %10.0f %6d %12.0f %8.1f\n",
			r.Preset, r.GridPx, r.PixelNM, r.EPE, r.PVBandNM2, r.Seconds)
	}
	return b.String()
}
