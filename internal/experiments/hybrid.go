package experiments

import (
	"fmt"
	"strings"
	"time"

	"lsopc"
	"lsopc/internal/mrc"
	"lsopc/internal/ruleopc"
)

// HybridRow is one method's outcome in the rule-based / ILT / hybrid
// comparison, including mask rule check results.
type HybridRow struct {
	Method        string
	Report        lsopc.Report
	MRCViolations int
	Elapsed       time.Duration
}

// HybridStudy compares three industrial flows on one benchmark:
//
//  1. rule-based OPC alone (edge bias + corner serifs),
//  2. level-set ILT from the plain target (the paper's flow),
//  3. level-set ILT warm-started from the rule-based mask (hybrid).
//
// Each mask is also run through the mask rule checker, quantifying the
// §I manufacturability argument from a mask-shop perspective.
func HybridStudy(preset lsopc.Preset, caseID string, maxIter int) ([]HybridRow, error) {
	pipe, err := lsopc.NewPipeline(preset, lsopc.GPUEngine())
	if err != nil {
		return nil, err
	}
	layout, err := lsopc.BenchmarkByID(caseID)
	if err != nil {
		return nil, err
	}
	target, err := pipe.Target(layout)
	if err != nil {
		return nil, err
	}
	rules := mrc.DefaultRules(pipe.PixelNM())
	var rows []HybridRow

	addMask := func(method string, mask *lsopc.Field, elapsed time.Duration) error {
		rep, err := pipe.Evaluate(layout, mask, elapsed)
		if err != nil {
			return err
		}
		viols, err := mrc.Check(mask, rules)
		if err != nil {
			return err
		}
		rows = append(rows, HybridRow{
			Method: method, Report: rep,
			MRCViolations: len(viols), Elapsed: elapsed,
		})
		return nil
	}

	// 1. Rule-based OPC.
	start := time.Now()
	ruleMask, err := ruleopc.Apply(target, ruleopc.DefaultOptions(pipe.PixelNM()))
	if err != nil {
		return nil, err
	}
	if err := addMask("rule-based", ruleMask, time.Since(start)); err != nil {
		return nil, err
	}

	// 2. Level-set ILT (paper flow).
	opts := lsopc.DefaultLevelSetOptions()
	opts.MaxIter = maxIter
	run, err := pipe.OptimizeLevelSet(layout, opts)
	if err != nil {
		return nil, err
	}
	if err := addMask("level-set", run.Mask, run.Elapsed); err != nil {
		return nil, err
	}

	// 3. Hybrid: ILT warm-started from the rule-based mask.
	opts.InitialMask = ruleMask
	hybrid, err := pipe.OptimizeLevelSet(layout, opts)
	if err != nil {
		return nil, err
	}
	if err := addMask("hybrid", hybrid.Mask, hybrid.Elapsed); err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatHybrid renders the hybrid-flow comparison.
func FormatHybrid(caseID string, rows []HybridRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hybrid flow study on %s (rule-based vs ILT vs warm-started ILT)\n", caseID)
	fmt.Fprintf(&b, "%-12s %6s %12s %10s %6s %10s\n", "method", "#EPE", "PVB(nm²)", "score", "MRC", "time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %6d %12.0f %10.0f %6d %10v\n",
			r.Method, r.Report.EPEViolations, r.Report.PVBandNM2,
			r.Report.Score(), r.MRCViolations, r.Elapsed.Round(time.Millisecond))
	}
	return b.String()
}
