package fft

import (
	"fmt"
	"time"

	"lsopc/internal/engine"
	"lsopc/internal/grid"
	"lsopc/internal/obs"
)

// Batch execution timing in the default registry: one histogram per
// public batched pass, observed in nanoseconds. An observation is two
// time.Now calls and two atomic adds against a pass that transforms an
// entire field batch, so the always-on cost is far below the noise
// floor (the alloc-regression tests confirm it stays heap-free).
var (
	mBatchForwardNS       = obs.Default.Histogram("fft.batch.forward_ns", obs.DurationBounds)
	mBatchInverseNS       = obs.Default.Histogram("fft.batch.inverse_ns", obs.DurationBounds)
	mBatchInverseBandedNS = obs.Default.Histogram("fft.batch.inverse_banded_ns", obs.DurationBounds)
	mBatchForwardColsNS   = obs.Default.Histogram("fft.batch.forward_banded_cols_ns", obs.DurationBounds)
)

// BatchPlan2D performs 2-D transforms on a stack of B same-shaped
// complex fields with kernel-level parallelism: every pass schedules the
// B×rows (or B×cols) independent 1-D transforms of the whole batch in a
// single engine sweep, so one optimizer stage pays one fork/join barrier
// per pass instead of one per field. This is the batched-FFT execution
// model the paper obtains from cuFFT's plan-many interface.
//
// Unlike Plan2D, the column pass does not transpose: each worker gathers
// a column into per-worker scratch, transforms it, and scatters it back,
// eliminating the two full-field transpose passes per transform.
//
// The banded variants exploit the band-limited kernel spectra of the
// lithography model (optics.Kernel stores a (2R+1)² box around DC):
// rows/columns known to be zero are skipped entirely. Skipping is
// bit-exact — a radix-2 FFT of an all-zero vector is exactly zero — so
// banded and full transforms agree bit-for-bit on every bin the caller
// is allowed to read.
//
// A BatchPlan2D owns per-worker scratch and is NOT safe for concurrent
// use; create one per goroutine (the immutable 1-D plans are shared
// through the package cache).
type BatchPlan2D struct {
	w, h    int
	rowPlan *Plan // length w
	colPlan *Plan // length h
	eng     *engine.Engine
	col     [][]complex128 // per-worker column gather scratch, colBlock·h

	// Per-pass operands staged for the pre-bound engine bodies below.
	// Binding the closures once at construction keeps every batched pass
	// free of per-call closure allocations (engine bodies escape).
	opFields    []*grid.CField
	opInverse   bool
	opBand      int // row/column band of the banded passes
	opBlocks    int // column blocks per field (col passes)
	opLowBlocks int // blocks in the low column run (colPassCols)

	rowBody       func(lo, hi int)
	rowBandedBody func(lo, hi int)
	colBody       func(worker, i int)
	colColsBody   func(worker, i int)
}

// NewBatchPlan2D creates a batched 2-D plan for w×h fields executed on
// eng. Both dimensions must be powers of two.
func NewBatchPlan2D(w, h int, eng *engine.Engine) *BatchPlan2D {
	return NewBatchPlan2DFromPlans(CachedPlan(w), CachedPlan(h), eng, nil)
}

// BatchScratchLen returns the scratch element count a batch plan for
// h-tall fields needs on an engine with the given worker count (one
// colBlock-wide column gather buffer per worker). Callers leasing
// scratch from a pool hand NewBatchPlan2DFromPlans a slice of at least
// this length.
func BatchScratchLen(h, workers int) int { return workers * colBlock * h }

// NewBatchPlan2DFromPlans builds a batched 2-D plan around existing
// (immutable, shared) 1-D plans, the session constructor mirroring
// NewPlan2DFromPlans. scratch must be nil (allocate internally) or at
// least BatchScratchLen(h, eng.Workers()) elements of caller-owned
// memory, e.g. leased from an rt.Pool.
func NewBatchPlan2DFromPlans(row, col *Plan, eng *engine.Engine, scratch []complex128) *BatchPlan2D {
	w, h := row.N(), col.N()
	if !grid.IsPow2(w) || !grid.IsPow2(h) {
		panic(fmt.Sprintf("fft: grid %dx%d is not power-of-two", w, h))
	}
	if eng == nil {
		eng = engine.CPU()
	}
	if scratch == nil {
		scratch = make([]complex128, BatchScratchLen(h, eng.Workers()))
	}
	if len(scratch) < BatchScratchLen(h, eng.Workers()) {
		panic(fmt.Sprintf("fft: batch scratch %d below required %d", len(scratch), BatchScratchLen(h, eng.Workers())))
	}
	p := &BatchPlan2D{
		w:       w,
		h:       h,
		rowPlan: row,
		colPlan: col,
		eng:     eng,
		col:     make([][]complex128, eng.Workers()),
	}
	for i := range p.col {
		p.col[i] = scratch[i*colBlock*h : (i+1)*colBlock*h]
	}
	p.bindBodies()
	return p
}

// bindBodies creates the engine bodies once; each pass stages its
// operands in the op* fields and reuses the bound closure.
func (p *BatchPlan2D) bindBodies() {
	p.rowBody = func(lo, hi int) {
		w, h := p.w, p.h
		fields, inverse := p.opFields, p.opInverse
		for i := lo; i < hi; i++ {
			data := fields[i/h].Data
			r := i % h
			row := data[r*w : (r+1)*w]
			if inverse {
				p.rowPlan.Inverse(row)
			} else {
				p.rowPlan.Forward(row)
			}
		}
	}
	p.rowBandedBody = func(lo, hi int) {
		w, h := p.w, p.h
		fields, band, inverse := p.opFields, p.opBand, p.opInverse
		rows := 2*band + 1
		for i := lo; i < hi; i++ {
			data := fields[i/rows].Data
			j := i % rows
			r := j
			if j > band {
				r = h - rows + j
			}
			row := data[r*w : (r+1)*w]
			if inverse {
				p.rowPlan.Inverse(row)
			} else {
				p.rowPlan.Forward(row)
			}
		}
	}
	p.colBody = func(worker, i int) {
		w, h := p.w, p.h
		inBand, blocks := p.opBand, p.opBlocks
		banded := inBand >= 0 && 2*inBand+1 < h
		data := p.opFields[i/blocks].Data
		x0 := (i % blocks) * colBlock
		x1 := x0 + colBlock
		if x1 > w {
			x1 = w
		}
		nb := x1 - x0
		s := p.col[worker]
		gather := func(y int) {
			base := y*w + x0
			for c := 0; c < nb; c++ {
				s[c*h+y] = data[base+c]
			}
		}
		if banded {
			for y := 0; y <= inBand; y++ {
				gather(y)
			}
			for c := 0; c < nb; c++ {
				seg := s[c*h : (c+1)*h]
				for y := inBand + 1; y < h-inBand; y++ {
					seg[y] = 0
				}
			}
			for y := h - inBand; y < h; y++ {
				gather(y)
			}
		} else {
			for y := 0; y < h; y++ {
				gather(y)
			}
		}
		for c := 0; c < nb; c++ {
			seg := s[c*h : (c+1)*h]
			if p.opInverse {
				p.colPlan.Inverse(seg)
			} else {
				p.colPlan.Forward(seg)
			}
		}
		for y := 0; y < h; y++ {
			base := y*w + x0
			for c := 0; c < nb; c++ {
				data[base+c] = s[c*h+y]
			}
		}
	}
	p.colColsBody = func(worker, i int) {
		w, h := p.w, p.h
		band, blocks, lowBlocks := p.opBand, p.opBlocks, p.opLowBlocks
		data := p.opFields[i/blocks].Data
		b := i % blocks
		var x0, x1 int
		if b < lowBlocks {
			x0 = b * colBlock
			x1 = x0 + colBlock
			if x1 > band+1 {
				x1 = band + 1
			}
		} else {
			x0 = w - band + (b-lowBlocks)*colBlock
			x1 = x0 + colBlock
			if x1 > w {
				x1 = w
			}
		}
		nb := x1 - x0
		s := p.col[worker]
		for y := 0; y < h; y++ {
			base := y*w + x0
			for c := 0; c < nb; c++ {
				s[c*h+y] = data[base+c]
			}
		}
		for c := 0; c < nb; c++ {
			seg := s[c*h : (c+1)*h]
			if p.opInverse {
				p.colPlan.Inverse(seg)
			} else {
				p.colPlan.Forward(seg)
			}
		}
		for y := 0; y < h; y++ {
			base := y*w + x0
			for c := 0; c < nb; c++ {
				data[base+c] = s[c*h+y]
			}
		}
	}
}

// W returns the plan width.
func (p *BatchPlan2D) W() int { return p.w }

// H returns the plan height.
func (p *BatchPlan2D) H() int { return p.h }

// Engine returns the execution engine the plan schedules on.
func (p *BatchPlan2D) Engine() *engine.Engine { return p.eng }

func (p *BatchPlan2D) check(fields []*grid.CField) {
	for _, f := range fields {
		if f.W != p.w || f.H != p.h {
			panic(fmt.Sprintf("fft: field %dx%d does not match batch plan %dx%d", f.W, f.H, p.w, p.h))
		}
	}
}

// BatchForward computes the in-place unnormalised 2-D DFT of every
// field in the batch.
func (p *BatchPlan2D) BatchForward(fields []*grid.CField) {
	p.check(fields)
	start := time.Now()
	p.rowPass(fields, false)
	p.colPass(fields, false, -1)
	mBatchForwardNS.Observe(float64(time.Since(start)))
}

// BatchInverse computes the in-place inverse 2-D DFT (including the
// 1/(w·h) normalisation) of every field in the batch.
func (p *BatchPlan2D) BatchInverse(fields []*grid.CField) {
	p.check(fields)
	start := time.Now()
	p.rowPass(fields, true)
	p.colPass(fields, true, -1)
	mBatchInverseNS.Observe(float64(time.Since(start)))
}

// BatchInverseBanded is BatchInverse for spectra whose support is
// confined to the wrapped row band |v| ≤ band (rows 0..band and
// h-band..h-1). Rows outside the band are never read — they may hold
// stale data — and are treated as exactly zero, which matches what a
// full inverse of a properly zeroed field would compute bit-for-bit.
// The output is dense (every element of every field is written).
// band < 0 or a band covering the whole grid falls back to the full
// transform.
func (p *BatchPlan2D) BatchInverseBanded(fields []*grid.CField, band int) {
	p.check(fields)
	start := time.Now()
	if band < 0 || 2*band+1 >= p.h {
		p.rowPass(fields, true)
		p.colPass(fields, true, -1)
	} else {
		p.rowPassBanded(fields, band, true)
		p.colPass(fields, true, band)
	}
	mBatchInverseBandedNS.Observe(float64(time.Since(start)))
}

// BatchForwardBandedCols computes the forward DFT but transforms only
// the wrapped column band |u| ≤ band in the second pass. On return the
// bins in columns 0..band and w-band..w-1 (all rows) hold their exact
// full-transform values; all other columns hold undefined intermediate
// data and must not be read. This is the output-pruned transform for
// spectra that are consumed only inside a band-limited kernel box.
// band < 0 or a band covering the whole grid falls back to the full
// transform.
func (p *BatchPlan2D) BatchForwardBandedCols(fields []*grid.CField, band int) {
	p.check(fields)
	start := time.Now()
	p.rowPass(fields, false)
	if band < 0 || 2*band+1 >= p.w {
		p.colPass(fields, false, -1)
	} else {
		p.colPassCols(fields, band, false)
	}
	mBatchForwardColsNS.Observe(float64(time.Since(start)))
}

// rowPass transforms every row of every field in one engine sweep.
func (p *BatchPlan2D) rowPass(fields []*grid.CField, inverse bool) {
	p.opFields, p.opInverse = fields, inverse
	p.eng.ForChunk(len(fields)*p.h, p.rowBody)
	p.opFields = nil
}

// rowPassBanded transforms only the wrapped band rows |v| ≤ band of
// every field (2·band+1 rows instead of h).
func (p *BatchPlan2D) rowPassBanded(fields []*grid.CField, band int, inverse bool) {
	p.opFields, p.opBand, p.opInverse = fields, band, inverse
	p.eng.ForChunk(len(fields)*(2*band+1), p.rowBandedBody)
	p.opFields = nil
}

// colBlock is the number of columns gathered per work item. Gathering a
// few adjacent columns together turns the strided column walk into
// full-cache-line reads, which dominates the pass cost on large grids.
const colBlock = 4

// colPass transforms every column of every field by blocked gather/
// transform/scatter with per-worker scratch. inBand ≥ 0 declares that
// only the wrapped rows |v| ≤ inBand hold live data: other rows are
// gathered as exact zeros instead of being read.
func (p *BatchPlan2D) colPass(fields []*grid.CField, inverse bool, inBand int) {
	blocks := (p.w + colBlock - 1) / colBlock
	p.opFields, p.opInverse, p.opBand, p.opBlocks = fields, inverse, inBand, blocks
	p.eng.Map(len(fields)*blocks, p.colBody)
	p.opFields = nil
}

// colPassCols transforms only the wrapped band columns |u| ≤ band of
// every field (2·band+1 columns instead of w). The band splits into two
// contiguous column runs ([0, band] and [w-band, w)), each processed in
// cache-friendly blocks.
func (p *BatchPlan2D) colPassCols(fields []*grid.CField, band int, inverse bool) {
	// Blocks of the low run [0, band] then the high run [w-band, w).
	lowBlocks := (band + 1 + colBlock - 1) / colBlock
	highBlocks := (band + colBlock - 1) / colBlock
	blocks := lowBlocks + highBlocks
	p.opFields, p.opInverse, p.opBand = fields, inverse, band
	p.opBlocks, p.opLowBlocks = blocks, lowBlocks
	p.eng.Map(len(fields)*blocks, p.colColsBody)
	p.opFields = nil
}
