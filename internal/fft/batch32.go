package fft

import (
	"fmt"
	"time"

	"lsopc/internal/engine"
	"lsopc/internal/grid"
)

// BatchPlan2D32 is the complex64 twin of BatchPlan2D: identical pass
// structure (single-sweep batched rows, blocked gather/transform/scatter
// columns, band-pruned variants), but over CField32 batches with float32
// butterflies. The per-kernel field batch is the largest resident data
// of a forward/adjoint pass, so halving its element size halves the
// memory traffic of the hottest loops. The banded passes keep the same
// exactness property as the float64 plan relative to their own
// precision: skipped rows/columns are exactly zero in float32 too.
//
// A BatchPlan2D32 owns per-worker scratch and is NOT safe for concurrent
// use; create one per goroutine.
type BatchPlan2D32 struct {
	w, h    int
	rowPlan *Plan32 // length w
	colPlan *Plan32 // length h
	eng     *engine.Engine
	col     [][]complex64 // per-worker column gather scratch, colBlock·h

	opFields    []*grid.CField32
	opInverse   bool
	opBand      int
	opBlocks    int
	opLowBlocks int

	rowBody       func(lo, hi int)
	rowBandedBody func(lo, hi int)
	colBody       func(worker, i int)
	colColsBody   func(worker, i int)
}

// BatchScratchLen32 returns the complex64 scratch element count a
// float32 batch plan for h-tall fields needs on an engine with the given
// worker count (same shape as BatchScratchLen).
func BatchScratchLen32(h, workers int) int { return workers * colBlock * h }

// NewBatchPlan2D32 creates a batched float32 2-D plan for w×h fields
// executed on eng. Both dimensions must be powers of two.
func NewBatchPlan2D32(w, h int, eng *engine.Engine) *BatchPlan2D32 {
	return NewBatchPlan2D32FromPlans(CachedPlan32(w), CachedPlan32(h), eng, nil)
}

// NewBatchPlan2D32FromPlans builds a batched float32 2-D plan around
// existing shared 1-D plans. scratch must be nil (allocate internally)
// or at least BatchScratchLen32(h, eng.Workers()) elements of
// caller-owned memory, e.g. leased from an rt.Pool.
func NewBatchPlan2D32FromPlans(row, col *Plan32, eng *engine.Engine, scratch []complex64) *BatchPlan2D32 {
	w, h := row.N(), col.N()
	if !grid.IsPow2(w) || !grid.IsPow2(h) {
		panic(fmt.Sprintf("fft: grid %dx%d is not power-of-two", w, h))
	}
	if eng == nil {
		eng = engine.CPU()
	}
	if scratch == nil {
		scratch = make([]complex64, BatchScratchLen32(h, eng.Workers()))
	}
	if len(scratch) < BatchScratchLen32(h, eng.Workers()) {
		panic(fmt.Sprintf("fft: batch scratch %d below required %d", len(scratch), BatchScratchLen32(h, eng.Workers())))
	}
	p := &BatchPlan2D32{
		w:       w,
		h:       h,
		rowPlan: row,
		colPlan: col,
		eng:     eng,
		col:     make([][]complex64, eng.Workers()),
	}
	for i := range p.col {
		p.col[i] = scratch[i*colBlock*h : (i+1)*colBlock*h]
	}
	p.bindBodies()
	return p
}

// bindBodies creates the engine bodies once; each pass stages its
// operands in the op* fields and reuses the bound closure (see
// BatchPlan2D.bindBodies).
func (p *BatchPlan2D32) bindBodies() {
	p.rowBody = func(lo, hi int) {
		w, h := p.w, p.h
		fields, inverse := p.opFields, p.opInverse
		for i := lo; i < hi; i++ {
			data := fields[i/h].Data
			r := i % h
			row := data[r*w : (r+1)*w]
			if inverse {
				p.rowPlan.Inverse(row)
			} else {
				p.rowPlan.Forward(row)
			}
		}
	}
	p.rowBandedBody = func(lo, hi int) {
		w, h := p.w, p.h
		fields, band, inverse := p.opFields, p.opBand, p.opInverse
		rows := 2*band + 1
		for i := lo; i < hi; i++ {
			data := fields[i/rows].Data
			j := i % rows
			r := j
			if j > band {
				r = h - rows + j
			}
			row := data[r*w : (r+1)*w]
			if inverse {
				p.rowPlan.Inverse(row)
			} else {
				p.rowPlan.Forward(row)
			}
		}
	}
	p.colBody = func(worker, i int) {
		w, h := p.w, p.h
		inBand, blocks := p.opBand, p.opBlocks
		banded := inBand >= 0 && 2*inBand+1 < h
		data := p.opFields[i/blocks].Data
		x0 := (i % blocks) * colBlock
		x1 := x0 + colBlock
		if x1 > w {
			x1 = w
		}
		nb := x1 - x0
		s := p.col[worker]
		gather := func(y int) {
			base := y*w + x0
			for c := 0; c < nb; c++ {
				s[c*h+y] = data[base+c]
			}
		}
		if banded {
			for y := 0; y <= inBand; y++ {
				gather(y)
			}
			for c := 0; c < nb; c++ {
				seg := s[c*h : (c+1)*h]
				for y := inBand + 1; y < h-inBand; y++ {
					seg[y] = 0
				}
			}
			for y := h - inBand; y < h; y++ {
				gather(y)
			}
		} else {
			for y := 0; y < h; y++ {
				gather(y)
			}
		}
		for c := 0; c < nb; c++ {
			seg := s[c*h : (c+1)*h]
			if p.opInverse {
				p.colPlan.Inverse(seg)
			} else {
				p.colPlan.Forward(seg)
			}
		}
		for y := 0; y < h; y++ {
			base := y*w + x0
			for c := 0; c < nb; c++ {
				data[base+c] = s[c*h+y]
			}
		}
	}
	p.colColsBody = func(worker, i int) {
		w, h := p.w, p.h
		band, blocks, lowBlocks := p.opBand, p.opBlocks, p.opLowBlocks
		data := p.opFields[i/blocks].Data
		b := i % blocks
		var x0, x1 int
		if b < lowBlocks {
			x0 = b * colBlock
			x1 = x0 + colBlock
			if x1 > band+1 {
				x1 = band + 1
			}
		} else {
			x0 = w - band + (b-lowBlocks)*colBlock
			x1 = x0 + colBlock
			if x1 > w {
				x1 = w
			}
		}
		nb := x1 - x0
		s := p.col[worker]
		for y := 0; y < h; y++ {
			base := y*w + x0
			for c := 0; c < nb; c++ {
				s[c*h+y] = data[base+c]
			}
		}
		for c := 0; c < nb; c++ {
			seg := s[c*h : (c+1)*h]
			if p.opInverse {
				p.colPlan.Inverse(seg)
			} else {
				p.colPlan.Forward(seg)
			}
		}
		for y := 0; y < h; y++ {
			base := y*w + x0
			for c := 0; c < nb; c++ {
				data[base+c] = s[c*h+y]
			}
		}
	}
}

// W returns the plan width.
func (p *BatchPlan2D32) W() int { return p.w }

// H returns the plan height.
func (p *BatchPlan2D32) H() int { return p.h }

// Engine returns the execution engine the plan schedules on.
func (p *BatchPlan2D32) Engine() *engine.Engine { return p.eng }

func (p *BatchPlan2D32) check(fields []*grid.CField32) {
	for _, f := range fields {
		if f.W != p.w || f.H != p.h {
			panic(fmt.Sprintf("fft: field %dx%d does not match batch plan %dx%d", f.W, f.H, p.w, p.h))
		}
	}
}

// BatchForward computes the in-place unnormalised 2-D DFT of every
// field in the batch.
func (p *BatchPlan2D32) BatchForward(fields []*grid.CField32) {
	p.check(fields)
	start := time.Now()
	p.rowPass(fields, false)
	p.colPass(fields, false, -1)
	mBatchForwardNS.Observe(float64(time.Since(start)))
}

// BatchInverse computes the in-place inverse 2-D DFT (including the
// 1/(w·h) normalisation) of every field in the batch.
func (p *BatchPlan2D32) BatchInverse(fields []*grid.CField32) {
	p.check(fields)
	start := time.Now()
	p.rowPass(fields, true)
	p.colPass(fields, true, -1)
	mBatchInverseNS.Observe(float64(time.Since(start)))
}

// BatchInverseBanded is BatchInverse for spectra confined to the wrapped
// row band |v| ≤ band (see BatchPlan2D.BatchInverseBanded; the same
// stale-rows-treated-as-zero contract applies).
func (p *BatchPlan2D32) BatchInverseBanded(fields []*grid.CField32, band int) {
	p.check(fields)
	start := time.Now()
	if band < 0 || 2*band+1 >= p.h {
		p.rowPass(fields, true)
		p.colPass(fields, true, -1)
	} else {
		p.rowPassBanded(fields, band, true)
		p.colPass(fields, true, band)
	}
	mBatchInverseBandedNS.Observe(float64(time.Since(start)))
}

// BatchForwardBandedCols computes the forward DFT but transforms only
// the wrapped column band |u| ≤ band in the second pass (see
// BatchPlan2D.BatchForwardBandedCols; bins outside the band are
// undefined on return).
func (p *BatchPlan2D32) BatchForwardBandedCols(fields []*grid.CField32, band int) {
	p.check(fields)
	start := time.Now()
	p.rowPass(fields, false)
	if band < 0 || 2*band+1 >= p.w {
		p.colPass(fields, false, -1)
	} else {
		p.colPassCols(fields, band, false)
	}
	mBatchForwardColsNS.Observe(float64(time.Since(start)))
}

func (p *BatchPlan2D32) rowPass(fields []*grid.CField32, inverse bool) {
	p.opFields, p.opInverse = fields, inverse
	p.eng.ForChunk(len(fields)*p.h, p.rowBody)
	p.opFields = nil
}

func (p *BatchPlan2D32) rowPassBanded(fields []*grid.CField32, band int, inverse bool) {
	p.opFields, p.opBand, p.opInverse = fields, band, inverse
	p.eng.ForChunk(len(fields)*(2*band+1), p.rowBandedBody)
	p.opFields = nil
}

func (p *BatchPlan2D32) colPass(fields []*grid.CField32, inverse bool, inBand int) {
	blocks := (p.w + colBlock - 1) / colBlock
	p.opFields, p.opInverse, p.opBand, p.opBlocks = fields, inverse, inBand, blocks
	p.eng.Map(len(fields)*blocks, p.colBody)
	p.opFields = nil
}

func (p *BatchPlan2D32) colPassCols(fields []*grid.CField32, band int, inverse bool) {
	lowBlocks := (band + 1 + colBlock - 1) / colBlock
	highBlocks := (band + colBlock - 1) / colBlock
	blocks := lowBlocks + highBlocks
	p.opFields, p.opInverse, p.opBand = fields, inverse, band
	p.opBlocks, p.opLowBlocks = blocks, lowBlocks
	p.eng.Map(len(fields)*blocks, p.colColsBody)
	p.opFields = nil
}
