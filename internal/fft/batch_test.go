package fft

import (
	"math"
	"testing"

	"lsopc/internal/engine"
	"lsopc/internal/grid"
)

// lcg is a tiny deterministic generator so tests never depend on
// math/rand ordering across Go versions.
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(*l>>11) / float64(1<<53)
}

func randomBatch(b, w, h int, seed uint64) []*grid.CField {
	r := lcg(seed)
	fields := make([]*grid.CField, b)
	for i := range fields {
		f := grid.NewCField(w, h)
		for j := range f.Data {
			f.Data[j] = complex(r.next()*2-1, r.next()*2-1)
		}
		fields[i] = f
	}
	return fields
}

func cloneBatch(fields []*grid.CField) []*grid.CField {
	out := make([]*grid.CField, len(fields))
	for i, f := range fields {
		c := grid.NewCField(f.W, f.H)
		copy(c.Data, f.Data)
		out[i] = c
	}
	return out
}

// batchEngines is the worker-count sweep used throughout: serial
// reference plus several parallel shapes (explicit counts, since the
// host may report a single CPU).
func batchEngines() []*engine.Engine {
	return []*engine.Engine{
		engine.CPU(),
		engine.New("gpu2", 2),
		engine.New("gpu3", 3),
		engine.New("gpu8", 8),
	}
}

func TestBatchForwardMatchesPlan2DBitwise(t *testing.T) {
	const w, h, b = 32, 16, 5
	ref := cloneBatch(randomBatch(b, w, h, 1))
	p2 := NewPlan2D(w, h, engine.CPU())
	for _, f := range ref {
		p2.Forward(f)
	}
	for _, eng := range batchEngines() {
		got := randomBatch(b, w, h, 1)
		NewBatchPlan2D(w, h, eng).BatchForward(got)
		for fi := range got {
			for j, v := range got[fi].Data {
				if v != ref[fi].Data[j] {
					t.Fatalf("%s: field %d bin %d = %v, want %v", eng.Name(), fi, j, v, ref[fi].Data[j])
				}
			}
		}
	}
}

func TestBatchInverseMatchesPlan2DBitwise(t *testing.T) {
	const w, h, b = 16, 32, 4
	ref := cloneBatch(randomBatch(b, w, h, 2))
	p2 := NewPlan2D(w, h, engine.CPU())
	for _, f := range ref {
		p2.Inverse(f)
	}
	for _, eng := range batchEngines() {
		got := randomBatch(b, w, h, 2)
		NewBatchPlan2D(w, h, eng).BatchInverse(got)
		for fi := range got {
			for j, v := range got[fi].Data {
				if v != ref[fi].Data[j] {
					t.Fatalf("%s: field %d bin %d = %v, want %v", eng.Name(), fi, j, v, ref[fi].Data[j])
				}
			}
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	const w, h, b = 64, 64, 3
	orig := randomBatch(b, w, h, 3)
	work := cloneBatch(orig)
	p := NewBatchPlan2D(w, h, engine.New("t", 4))
	p.BatchForward(work)
	p.BatchInverse(work)
	for fi := range work {
		for j := range work[fi].Data {
			if d := work[fi].Data[j] - orig[fi].Data[j]; math.Hypot(real(d), imag(d)) > 1e-12 {
				t.Fatalf("round trip drift at field %d bin %d: %v", fi, j, d)
			}
		}
	}
}

// bandFill writes random data into the wrapped row band |v| ≤ band and
// garbage into every other row, returning the batch plus a clean copy
// with exact zeros outside the band.
func bandFill(b, w, h, band int, seed uint64) (dirty, clean []*grid.CField) {
	r := lcg(seed)
	for i := 0; i < b; i++ {
		d := grid.NewCField(w, h)
		c := grid.NewCField(w, h)
		for y := 0; y < h; y++ {
			inBand := y <= band || y >= h-band
			for x := 0; x < w; x++ {
				v := complex(r.next()*2-1, r.next()*2-1)
				if inBand {
					d.Data[y*w+x] = v
					c.Data[y*w+x] = v
				} else {
					// Stale garbage the banded transform must never read.
					d.Data[y*w+x] = complex(1e300, -1e300)
				}
			}
		}
		dirty = append(dirty, d)
		clean = append(clean, c)
	}
	return dirty, clean
}

func TestBatchInverseBandedIgnoresStaleRows(t *testing.T) {
	const w, h, b, band = 32, 32, 3, 5
	for _, eng := range batchEngines() {
		dirty, clean := bandFill(b, w, h, band, 7)
		p := NewBatchPlan2D(w, h, eng)
		p.BatchInverseBanded(dirty, band)
		// Reference: full inverse of the zero-padded field.
		p2 := NewPlan2D(w, h, engine.CPU())
		for _, f := range clean {
			p2.Inverse(f)
		}
		for fi := range dirty {
			for j, v := range dirty[fi].Data {
				if v != clean[fi].Data[j] {
					t.Fatalf("%s: field %d bin %d = %v, want %v", eng.Name(), fi, j, v, clean[fi].Data[j])
				}
			}
		}
	}
}

func TestBatchInverseBandedFullBandFallback(t *testing.T) {
	const w, h = 16, 16
	// Bands covering the whole grid (or negative) must behave exactly
	// like the dense inverse.
	for _, band := range []int{-1, h / 2, h} {
		got := randomBatch(2, w, h, 11)
		ref := cloneBatch(got)
		p := NewBatchPlan2D(w, h, engine.New("t", 3))
		p.BatchInverseBanded(got, band)
		p.BatchInverse(ref)
		for fi := range got {
			for j, v := range got[fi].Data {
				if v != ref[fi].Data[j] {
					t.Fatalf("band=%d: field %d bin %d differs", band, fi, j)
				}
			}
		}
	}
}

func TestBatchForwardBandedColsMatchesInBand(t *testing.T) {
	const w, h, b, band = 32, 16, 4, 6
	for _, eng := range batchEngines() {
		got := randomBatch(b, w, h, 13)
		ref := cloneBatch(got)
		NewBatchPlan2D(w, h, eng).BatchForwardBandedCols(got, band)
		p2 := NewPlan2D(w, h, engine.CPU())
		for _, f := range ref {
			p2.Forward(f)
		}
		// Only the wrapped band columns |u| ≤ band are defined output.
		for fi := range got {
			for y := 0; y < h; y++ {
				for _, x := range bandCols(w, band) {
					if got[fi].Data[y*w+x] != ref[fi].Data[y*w+x] {
						t.Fatalf("%s: field %d bin (%d,%d) = %v, want %v",
							eng.Name(), fi, x, y, got[fi].Data[y*w+x], ref[fi].Data[y*w+x])
					}
				}
			}
		}
	}
}

func bandCols(w, band int) []int {
	cols := []int{}
	for x := 0; x <= band; x++ {
		cols = append(cols, x)
	}
	for x := w - band; x < w; x++ {
		cols = append(cols, x)
	}
	return cols
}

func TestBatchForwardBandedColsFullBandFallback(t *testing.T) {
	const w, h = 16, 16
	got := randomBatch(2, w, h, 17)
	ref := cloneBatch(got)
	p := NewBatchPlan2D(w, h, engine.New("t", 2))
	p.BatchForwardBandedCols(got, -1)
	p.BatchForward(ref)
	for fi := range got {
		for j, v := range got[fi].Data {
			if v != ref[fi].Data[j] {
				t.Fatalf("field %d bin %d differs", fi, j)
			}
		}
	}
}

func TestBatchPlanEmptyBatch(t *testing.T) {
	p := NewBatchPlan2D(8, 8, engine.CPU())
	p.BatchForward(nil) // must not panic
	p.BatchInverse([]*grid.CField{})
	p.BatchInverseBanded(nil, 2)
	p.BatchForwardBandedCols(nil, 2)
}

func TestBatchPlanShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched field shape must panic")
		}
	}()
	NewBatchPlan2D(8, 8, engine.CPU()).BatchForward([]*grid.CField{grid.NewCField(16, 8)})
}

func TestNewBatchPlanNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two size must panic")
		}
	}()
	NewBatchPlan2D(12, 8, nil)
}

func benchBatch(b *testing.B, size, batch int) []*grid.CField {
	b.Helper()
	fields := randomBatch(batch, size, size, 5)
	b.ReportAllocs()
	b.ResetTimer()
	return fields
}

func BenchmarkBatchForward128x8(b *testing.B) {
	p := NewBatchPlan2D(128, 128, engine.GPU())
	fields := benchBatch(b, 128, 8)
	for i := 0; i < b.N; i++ {
		p.BatchForward(fields)
	}
}

func BenchmarkBatchInverseBanded128x8(b *testing.B) {
	p := NewBatchPlan2D(128, 128, engine.GPU())
	fields := benchBatch(b, 128, 8)
	// Band 28 matches the kernel box radius at PresetTest scale.
	for i := 0; i < b.N; i++ {
		p.BatchInverseBanded(fields, 28)
	}
}

func BenchmarkPlan2DForward128x8(b *testing.B) {
	// The unbatched baseline: eight sequential Plan2D transforms.
	p := NewPlan2D(128, 128, engine.GPU())
	fields := benchBatch(b, 128, 8)
	for i := 0; i < b.N; i++ {
		for _, f := range fields {
			p.Forward(f)
		}
	}
}
