package fft

import (
	"math"

	"lsopc/internal/grid"
)

// Bluestein's algorithm computes the DFT of arbitrary length n as a
// circular convolution of length m ≥ 2n−1 (m a power of two), unlocking
// non-power-of-two grids (e.g. odd-sized clip windows) at ~4× the cost
// of a same-size radix-2 transform. The lithography pipeline itself
// stays on power-of-two grids; this exists for tooling that must match
// external data dimensions exactly.

// BluesteinPlan holds the precomputed chirp and its padded spectrum for
// one length. Immutable after creation; safe for concurrent use except
// for the scratch buffer, so Transform allocates per call.
type BluesteinPlan struct {
	n     int
	m     int
	chirp []complex128 // w[k] = exp(-iπk²/n), k ∈ [0, n)
	bHat  []complex128 // FFT of the padded conjugate-chirp kernel
	plan  *Plan        // radix-2 plan of length m
}

// NewBluesteinPlan builds a plan for any length n ≥ 1.
func NewBluesteinPlan(n int) *BluesteinPlan {
	if n < 1 {
		panic("fft: Bluestein length must be ≥ 1")
	}
	m := grid.NextPow2(2*n - 1)
	p := &BluesteinPlan{n: n, m: m, plan: CachedPlan(m)}

	p.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// k² mod 2n keeps the argument small for large k.
		phase := -math.Pi * float64((k*k)%(2*n)) / float64(n)
		s, c := math.Sincos(phase)
		p.chirp[k] = complex(c, s)
	}

	// Kernel b[k] = conj(chirp[|k|]) wrapped circularly into length m.
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		v := complex(real(p.chirp[k]), -imag(p.chirp[k]))
		b[k] = v
		if k > 0 {
			b[m-k] = v
		}
	}
	p.plan.Forward(b)
	p.bHat = b
	return p
}

// N returns the transform length.
func (p *BluesteinPlan) N() int { return p.n }

// Forward computes the unnormalised DFT of x (length n) in place.
func (p *BluesteinPlan) Forward(x []complex128) { p.transform(x, false) }

// Inverse computes the inverse DFT including the 1/n scale.
func (p *BluesteinPlan) Inverse(x []complex128) {
	// IDFT(x) = conj(DFT(conj(x)))/n.
	for i := range x {
		x[i] = complex(real(x[i]), -imag(x[i]))
	}
	p.transform(x, false)
	inv := 1 / float64(p.n)
	for i := range x {
		x[i] = complex(real(x[i])*inv, -imag(x[i])*inv)
	}
}

func (p *BluesteinPlan) transform(x []complex128, _ bool) {
	if len(x) != p.n {
		panic("fft: Bluestein input length mismatch")
	}
	a := make([]complex128, p.m)
	for k := 0; k < p.n; k++ {
		a[k] = x[k] * p.chirp[k]
	}
	p.plan.Forward(a)
	for i := range a {
		a[i] *= p.bHat[i]
	}
	p.plan.Inverse(a)
	for k := 0; k < p.n; k++ {
		x[k] = a[k] * p.chirp[k]
	}
}
