package fft

import (
	"math/cmplx"
	"testing"
)

func TestBluesteinMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7, 12, 17, 100, 129} {
		x := randComplex(n, int64(n)*7)
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		NewBluesteinPlan(n).Forward(got)
		if d := maxDiff(got, want); d > 1e-8*float64(n) {
			t.Errorf("n=%d: max diff %g", n, d)
		}
	}
}

func TestBluesteinRoundTrip(t *testing.T) {
	for _, n := range []int{3, 17, 50, 255} {
		p := NewBluesteinPlan(n)
		x := randComplex(n, 99)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		if d := maxDiff(x, y); d > 1e-9*float64(n) {
			t.Errorf("n=%d: round trip error %g", n, d)
		}
	}
}

func TestBluesteinMatchesRadix2OnPow2(t *testing.T) {
	const n = 64
	x := randComplex(n, 5)
	a := append([]complex128(nil), x...)
	b := append([]complex128(nil), x...)
	NewPlan(n).Forward(a)
	NewBluesteinPlan(n).Forward(b)
	if d := maxDiff(a, b); d > 1e-9*float64(n) {
		t.Fatalf("Bluestein disagrees with radix-2: %g", d)
	}
}

func TestBluesteinImpulse(t *testing.T) {
	const n = 9
	x := make([]complex128, n)
	x[0] = 1
	NewBluesteinPlan(n).Forward(x)
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-10 {
			t.Fatalf("impulse spectrum at %d = %v", k, v)
		}
	}
}

func TestBluesteinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero length accepted")
		}
	}()
	NewBluesteinPlan(0)
}

func TestBluesteinWrongLengthPanics(t *testing.T) {
	p := NewBluesteinPlan(5)
	if p.N() != 5 {
		t.Fatalf("N = %d", p.N())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong length accepted")
		}
	}()
	p.Forward(make([]complex128, 4))
}
