// Package fft implements the fast Fourier transforms that replace cuFFT
// in the paper's pipeline: an iterative radix-2 complex FFT with
// precomputed twiddle/bit-reversal plans, a 2-D transform parallelised
// over an engine's workers, and frequency-domain convolution helpers.
//
// Sizes must be powers of two. The lithography pipeline always runs on
// power-of-two grids (the ICCAD 2013 clips are 2048×2048 at 1 nm/px), so
// no Bluestein fallback is needed; NewPlan rejects other sizes loudly.
package fft

import (
	"fmt"
	"math"
	"sync"

	"lsopc/internal/grid"
	"lsopc/internal/obs"
)

// Plan-cache metrics in the default registry. Lookups happen at bank
// and session construction, never in the per-iteration hot path.
var (
	mPlanHits   = obs.Default.Counter("fft.plan_cache.hits")
	mPlanMisses = obs.Default.Counter("fft.plan_cache.misses")
)

// tracePlanCache reports one cache lookup to the runtime trace sink.
func tracePlanCache(n int, hit bool) {
	if s := obs.Runtime(); s != nil {
		s.Emit(obs.Event{Type: obs.EventPlanCache, Name: "plan1d", N: n, Hit: hit})
	}
}

// Plan holds the precomputed tables for 1-D transforms of a fixed
// power-of-two length. A Plan is immutable after creation and safe for
// concurrent use.
type Plan struct {
	n    int
	perm []int32      // bit-reversal permutation
	w    []complex128 // forward twiddles e^{-2πik/n}, k ∈ [0, n/2)
	winv []complex128 // inverse twiddles e^{+2πik/n}
}

// NewPlan creates a transform plan for length n. It panics unless n is a
// positive power of two.
func NewPlan(n int) *Plan {
	if !grid.IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	p := &Plan{n: n}
	p.perm = make([]int32, n)
	shift := 0
	for 1<<shift < n {
		shift++
	}
	for i := 0; i < n; i++ {
		p.perm[i] = int32(reverseBits(uint32(i), shift))
	}
	half := n / 2
	if half == 0 {
		half = 1
	}
	p.w = make([]complex128, half)
	p.winv = make([]complex128, half)
	for k := 0; k < half; k++ {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.w[k] = complex(c, s)
		p.winv[k] = complex(c, -s)
	}
	return p
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

func reverseBits(v uint32, bits int) uint32 {
	var r uint32
	for i := 0; i < bits; i++ {
		r = r<<1 | v&1
		v >>= 1
	}
	return r
}

// Forward computes the in-place unnormalised DFT of x.
// It panics if len(x) differs from the plan length.
func (p *Plan) Forward(x []complex128) { p.transform(x, p.w) }

// Inverse computes the in-place inverse DFT of x, including the 1/n
// normalisation, so Inverse∘Forward is the identity.
func (p *Plan) Inverse(x []complex128) {
	p.transform(x, p.winv)
	inv := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= inv
	}
}

// transform runs the iterative radix-2 Cooley–Tukey butterfly network
// using the supplied twiddle table (forward or inverse).
func (p *Plan) transform(x []complex128, tw []complex128) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("fft: input length %d does not match plan length %d", len(x), n))
	}
	for i, pi := range p.perm {
		if j := int(pi); i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for base := 0; base < n; base += size {
			k := 0
			for j := base; j < base+half; j++ {
				w := tw[k]
				t := w * x[j+half]
				u := x[j]
				x[j] = u + t
				x[j+half] = u - t
				k += step
			}
		}
	}
}

// planCache is the shared plan cache, keyed by length. Plans are tiny
// relative to field data, so the cache never evicts.
var planCache = struct {
	sync.RWMutex
	m map[int]*Plan
}{m: make(map[int]*Plan)}

// CachedPlan returns a shared plan for length n, creating it on first
// use. Safe for concurrent use: sessions and pipelines are constructed
// from many goroutines, so first-time creation takes a write lock while
// the steady state pays only a read lock.
func CachedPlan(n int) *Plan {
	planCache.RLock()
	p := planCache.m[n]
	planCache.RUnlock()
	if p != nil {
		mPlanHits.Inc()
		tracePlanCache(n, true)
		return p
	}
	planCache.Lock()
	defer planCache.Unlock()
	if p, ok := planCache.m[n]; ok {
		mPlanHits.Inc()
		tracePlanCache(n, true)
		return p
	}
	p = NewPlan(n)
	planCache.m[n] = p
	mPlanMisses.Inc()
	tracePlanCache(n, false)
	return p
}
