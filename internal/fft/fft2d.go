package fft

import (
	"fmt"

	"lsopc/internal/engine"
	"lsopc/internal/grid"
)

// Plan2D performs 2-D transforms on w×h complex fields by applying row
// transforms, transposing, applying row transforms again (i.e. the
// original columns), and transposing back. Row passes are distributed
// across the engine's workers — this is the batched-FFT parallelism the
// paper obtains from the GPU.
//
// A Plan2D owns scratch storage and is therefore NOT safe for concurrent
// use; create one per goroutine (they share the underlying immutable 1-D
// plans through the package cache).
type Plan2D struct {
	w, h    int
	rowPlan *Plan // length w
	colPlan *Plan // length h
	eng     *engine.Engine
	scratch []complex128 // h*w transpose buffer
	packed  []complex128 // w-long row-pair buffer for ForwardReal

	// Row-pass operands staged per call for the pre-bound engine body.
	// Binding the closure once at construction keeps the per-transform
	// hot path free of closure allocations (engine bodies escape).
	rpData    []complex128
	rpN       int
	rpPlan    *Plan
	rpInverse bool
	rowBody   func(lo, hi int)
}

// NewPlan2D creates a 2-D plan for w×h fields executed on eng.
// Both dimensions must be powers of two.
func NewPlan2D(w, h int, eng *engine.Engine) *Plan2D {
	return NewPlan2DFromPlans(CachedPlan(w), CachedPlan(h), eng, nil)
}

// Plan2DScratchLen returns the scratch element count a w×h Plan2D needs
// (the transpose buffer plus the real-input row-pair buffer). Callers
// leasing scratch from a pool hand NewPlan2DFromPlans a slice of at
// least this length.
func Plan2DScratchLen(w, h int) int { return w*h + w }

// NewPlan2DFromPlans builds a 2-D plan around existing (immutable,
// shared) 1-D plans — the session constructor: a resource bank owns the
// row/column plans once per grid size, and every session wraps them with
// its own scratch. scratch must be nil (allocate internally) or at least
// Plan2DScratchLen(w, h) elements of caller-owned memory, e.g. leased
// from an rt.Pool.
func NewPlan2DFromPlans(row, col *Plan, eng *engine.Engine, scratch []complex128) *Plan2D {
	w, h := row.N(), col.N()
	if !grid.IsPow2(w) || !grid.IsPow2(h) {
		panic(fmt.Sprintf("fft: grid %dx%d is not power-of-two", w, h))
	}
	if eng == nil {
		eng = engine.CPU()
	}
	if scratch == nil {
		scratch = make([]complex128, Plan2DScratchLen(w, h))
	}
	if len(scratch) < Plan2DScratchLen(w, h) {
		panic(fmt.Sprintf("fft: plan scratch %d below required %d", len(scratch), Plan2DScratchLen(w, h)))
	}
	p := &Plan2D{
		w:       w,
		h:       h,
		rowPlan: row,
		colPlan: col,
		eng:     eng,
		scratch: scratch[:w*h],
		packed:  scratch[w*h : w*h+w],
	}
	p.rowBody = func(lo, hi int) {
		data, n, plan := p.rpData, p.rpN, p.rpPlan
		if p.rpInverse {
			for r := lo; r < hi; r++ {
				plan.Inverse(data[r*n : (r+1)*n])
			}
		} else {
			for r := lo; r < hi; r++ {
				plan.Forward(data[r*n : (r+1)*n])
			}
		}
	}
	return p
}

// W returns the plan width.
func (p *Plan2D) W() int { return p.w }

// H returns the plan height.
func (p *Plan2D) H() int { return p.h }

// Engine returns the execution engine the plan schedules on.
func (p *Plan2D) Engine() *engine.Engine { return p.eng }

func (p *Plan2D) check(c *grid.CField) {
	if c.W != p.w || c.H != p.h {
		panic(fmt.Sprintf("fft: field %dx%d does not match plan %dx%d", c.W, c.H, p.w, p.h))
	}
}

// Forward computes the in-place unnormalised 2-D DFT of c.
func (p *Plan2D) Forward(c *grid.CField) { p.transform(c, false) }

// Inverse computes the in-place inverse 2-D DFT of c including the
// 1/(w·h) normalisation.
func (p *Plan2D) Inverse(c *grid.CField) { p.transform(c, true) }

func (p *Plan2D) transform(c *grid.CField, inverse bool) {
	p.check(c)
	// Pass 1: transform each row of the w×h field.
	p.rowPass(c.Data, p.h, p.w, p.rowPlan, inverse)
	// Transpose into scratch (now h×w with rows = original columns).
	transpose(p.scratch, c.Data, p.w, p.h)
	// Pass 2: transform each original column.
	p.rowPass(p.scratch, p.w, p.h, p.colPlan, inverse)
	// Transpose back.
	transpose(c.Data, p.scratch, p.h, p.w)
}

// rowPass transforms rows of a rows×n matrix stored row-major in data,
// fanning rows across the engine's workers through the pre-bound body.
func (p *Plan2D) rowPass(data []complex128, rows, n int, plan *Plan, inverse bool) {
	p.rpData, p.rpN, p.rpPlan, p.rpInverse = data, n, plan, inverse
	p.eng.ForChunk(rows, p.rowBody)
	p.rpData, p.rpPlan = nil, nil
}

// transpose writes the w×h row-major matrix src into dst as an h-wide,
// w-tall row-major matrix using cache blocking.
func transpose(dst, src []complex128, w, h int) {
	const block = 32
	for by := 0; by < h; by += block {
		yMax := by + block
		if yMax > h {
			yMax = h
		}
		for bx := 0; bx < w; bx += block {
			xMax := bx + block
			if xMax > w {
				xMax = w
			}
			for y := by; y < yMax; y++ {
				row := src[y*w : y*w+w]
				for x := bx; x < xMax; x++ {
					dst[x*h+y] = row[x]
				}
			}
		}
	}
}

// Spectrum computes the forward transform of a real field into a newly
// allocated complex field.
func (p *Plan2D) Spectrum(f *grid.Field) *grid.CField {
	c := grid.NewCField(f.W, f.H)
	c.SetReal(f)
	p.Forward(c)
	return c
}

// Convolve computes the circular convolution a ⊛ k where kSpec is the
// precomputed spectrum of the kernel, writing the complex result into
// dst. src must hold the *spectrum* of the signal (forward-transformed);
// dst receives the spatial-domain product. src is not modified.
func (p *Plan2D) Convolve(dst, srcSpec, kSpec *grid.CField) {
	p.check(dst)
	p.check(srcSpec)
	p.check(kSpec)
	dst.Mul(srcSpec, kSpec)
	p.Inverse(dst)
}
