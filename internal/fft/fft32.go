package fft

import (
	"fmt"
	"math"
	"sync"

	"lsopc/internal/grid"
	"lsopc/internal/obs"
)

// Plan32 is the complex64 twin of Plan: the same iterative radix-2
// network with twiddles rounded once to float32 at construction. It
// backs the opt-in reduced-precision forward-model path, where the field
// batches dominate memory bandwidth and 32-bit storage halves the bytes
// every butterfly moves. A Plan32 is immutable after creation and safe
// for concurrent use.
type Plan32 struct {
	n    int
	perm []int32
	w    []complex64 // forward twiddles e^{-2πik/n}, k ∈ [0, n/2)
	winv []complex64 // inverse twiddles e^{+2πik/n}
}

// NewPlan32 creates a float32 transform plan for length n. It panics
// unless n is a positive power of two.
func NewPlan32(n int) *Plan32 {
	if !grid.IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	p := &Plan32{n: n}
	p.perm = make([]int32, n)
	shift := 0
	for 1<<shift < n {
		shift++
	}
	for i := 0; i < n; i++ {
		p.perm[i] = int32(reverseBits(uint32(i), shift))
	}
	half := n / 2
	if half == 0 {
		half = 1
	}
	p.w = make([]complex64, half)
	p.winv = make([]complex64, half)
	for k := 0; k < half; k++ {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.w[k] = complex(float32(c), float32(s))
		p.winv[k] = complex(float32(c), float32(-s))
	}
	return p
}

// N returns the transform length.
func (p *Plan32) N() int { return p.n }

// Forward computes the in-place unnormalised DFT of x.
// It panics if len(x) differs from the plan length.
func (p *Plan32) Forward(x []complex64) { p.transform(x, p.w) }

// Inverse computes the in-place inverse DFT of x, including the 1/n
// normalisation, so Inverse∘Forward is the identity up to float32
// rounding.
func (p *Plan32) Inverse(x []complex64) {
	p.transform(x, p.winv)
	inv := complex(1/float32(p.n), 0)
	for i := range x {
		x[i] *= inv
	}
}

// transform runs the iterative radix-2 Cooley–Tukey butterfly network
// using the supplied twiddle table (forward or inverse).
func (p *Plan32) transform(x []complex64, tw []complex64) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("fft: input length %d does not match plan length %d", len(x), n))
	}
	for i, pi := range p.perm {
		if j := int(pi); i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for base := 0; base < n; base += size {
			k := 0
			for j := base; j < base+half; j++ {
				w := tw[k]
				t := w * x[j+half]
				u := x[j]
				x[j] = u + t
				x[j+half] = u - t
				k += step
			}
		}
	}
}

// tracePlanCache32 reports one float32 plan-cache lookup to the runtime
// trace sink.
func tracePlanCache32(n int, hit bool) {
	if s := obs.Runtime(); s != nil {
		s.Emit(obs.Event{Type: obs.EventPlanCache, Name: "plan1d_f32", N: n, Hit: hit})
	}
}

// planCache32 is the shared float32 plan cache, keyed by length.
var planCache32 = struct {
	sync.RWMutex
	m map[int]*Plan32
}{m: make(map[int]*Plan32)}

// CachedPlan32 returns a shared float32 plan for length n, creating it
// on first use. Safe for concurrent use (see CachedPlan).
func CachedPlan32(n int) *Plan32 {
	planCache32.RLock()
	p := planCache32.m[n]
	planCache32.RUnlock()
	if p != nil {
		mPlanHits.Inc()
		tracePlanCache32(n, true)
		return p
	}
	planCache32.Lock()
	defer planCache32.Unlock()
	if p, ok := planCache32.m[n]; ok {
		mPlanHits.Inc()
		tracePlanCache32(n, true)
		return p
	}
	p = NewPlan32(n)
	planCache32.m[n] = p
	mPlanMisses.Inc()
	tracePlanCache32(n, false)
	return p
}
