package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"lsopc/internal/engine"
	"lsopc/internal/grid"
)

// naiveDFT is the O(n²) reference transform.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func randComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randComplex(n, int64(n))
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		NewPlan(n).Forward(got)
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: max diff vs naive DFT = %g", n, d)
		}
	}
}

func TestRoundTripIdentity(t *testing.T) {
	for _, n := range []int{2, 16, 128, 1024} {
		p := NewPlan(n)
		x := randComplex(n, 42)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		if d := maxDiff(x, y); d > 1e-10*float64(n) {
			t.Errorf("n=%d: round trip error %g", n, d)
		}
	}
}

func TestImpulseGivesFlatSpectrum(t *testing.T) {
	const n = 64
	x := make([]complex128, n)
	x[0] = 1
	NewPlan(n).Forward(x)
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse spectrum at %d = %v, want 1", k, v)
		}
	}
}

func TestParseval(t *testing.T) {
	const n = 256
	x := randComplex(n, 7)
	var spatial float64
	for _, v := range x {
		spatial += real(v)*real(v) + imag(v)*imag(v)
	}
	NewPlan(n).Forward(x)
	var freq float64
	for _, v := range x {
		freq += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freq/float64(n)-spatial) > 1e-8*spatial {
		t.Fatalf("Parseval violated: spatial %g vs freq/n %g", spatial, freq/float64(n))
	}
}

func TestLinearityProperty(t *testing.T) {
	const n = 32
	p := NewPlan(n)
	prop := func(seedA, seedB int64, sRe, sIm float64) bool {
		if math.IsNaN(sRe) || math.IsInf(sRe, 0) {
			sRe = 1
		}
		if math.IsNaN(sIm) || math.IsInf(sIm, 0) {
			sIm = 1
		}
		s := complex(math.Mod(sRe, 100), math.Mod(sIm, 100))
		a := randComplex(n, seedA)
		b := randComplex(n, seedB)
		// FFT(a + s·b)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + s*b[i]
		}
		p.Forward(sum)
		// FFT(a) + s·FFT(b)
		fa := append([]complex128(nil), a...)
		fb := append([]complex128(nil), b...)
		p.Forward(fa)
		p.Forward(fb)
		for i := range fa {
			fa[i] += s * fb[i]
		}
		return maxDiff(sum, fa) < 1e-8*(1+cmplx.Abs(s))*float64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftTheorem(t *testing.T) {
	const n = 64
	p := NewPlan(n)
	x := randComplex(n, 3)
	// y[i] = x[(i-1) mod n]  =>  Y[k] = X[k]·e^{-2πik/n}
	y := make([]complex128, n)
	for i := range y {
		y[i] = x[(i-1+n)%n]
	}
	fx := append([]complex128(nil), x...)
	p.Forward(fx)
	p.Forward(y)
	for k := range y {
		ph := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
		if cmplx.Abs(y[k]-fx[k]*ph) > 1e-9 {
			t.Fatalf("shift theorem violated at k=%d", k)
		}
	}
}

func TestPlanRejectsBadLengths(t *testing.T) {
	for _, n := range []int{0, -4, 3, 12, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPlan(%d) did not panic", n)
				}
			}()
			NewPlan(n)
		}()
	}
}

func TestForwardRejectsWrongLength(t *testing.T) {
	p := NewPlan(8)
	defer func() {
		if recover() == nil {
			t.Fatal("Forward with wrong length did not panic")
		}
	}()
	p.Forward(make([]complex128, 4))
}

func TestCachedPlanReuse(t *testing.T) {
	a := CachedPlan(64)
	b := CachedPlan(64)
	if a != b {
		t.Fatal("CachedPlan must return the same plan for the same length")
	}
	if a.N() != 64 {
		t.Fatalf("plan length %d", a.N())
	}
}

// ---------- 2-D ----------

// naiveDFT2D is the O(n⁴) reference 2-D transform.
func naiveDFT2D(c *grid.CField) *grid.CField {
	out := grid.NewCField(c.W, c.H)
	for ky := 0; ky < c.H; ky++ {
		for kx := 0; kx < c.W; kx++ {
			var s complex128
			for y := 0; y < c.H; y++ {
				for x := 0; x < c.W; x++ {
					ang := -2 * math.Pi * (float64(kx*x)/float64(c.W) + float64(ky*y)/float64(c.H))
					s += c.At(x, y) * cmplx.Exp(complex(0, ang))
				}
			}
			out.Set(kx, ky, s)
		}
	}
	return out
}

func randCField(w, h int, seed int64) *grid.CField {
	rng := rand.New(rand.NewSource(seed))
	c := grid.NewCField(w, h)
	for i := range c.Data {
		c.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return c
}

func TestForward2DMatchesNaive(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {8, 4}, {4, 8}, {16, 16}} {
		w, h := dims[0], dims[1]
		c := randCField(w, h, int64(w*100+h))
		want := naiveDFT2D(c)
		p := NewPlan2D(w, h, engine.CPU())
		got := c.Clone()
		p.Forward(got)
		if !got.Equal(want, 1e-9*float64(w*h)) {
			t.Errorf("%dx%d: 2-D FFT disagrees with naive DFT", w, h)
		}
	}
}

func TestRoundTrip2D(t *testing.T) {
	for _, dims := range [][2]int{{8, 8}, {32, 16}, {64, 64}} {
		w, h := dims[0], dims[1]
		p := NewPlan2D(w, h, engine.GPU())
		c := randCField(w, h, 5)
		orig := c.Clone()
		p.Forward(c)
		p.Inverse(c)
		if !c.Equal(orig, 1e-10*float64(w*h)) {
			t.Errorf("%dx%d round trip failed", w, h)
		}
	}
}

func TestEnginesAgreeOn2D(t *testing.T) {
	const w, h = 64, 32
	c1 := randCField(w, h, 11)
	c2 := c1.Clone()
	NewPlan2D(w, h, engine.CPU()).Forward(c1)
	NewPlan2D(w, h, engine.GPU()).Forward(c2)
	if !c1.Equal(c2, 0) {
		t.Fatal("CPU and GPU engines must produce bit-identical transforms")
	}
}

// directCircularConv computes (a ⊛ k)(x,y) = Σ a(u,v)·k(x-u mod W, y-v mod H).
func directCircularConv(a, k *grid.CField) *grid.CField {
	out := grid.NewCField(a.W, a.H)
	for y := 0; y < a.H; y++ {
		for x := 0; x < a.W; x++ {
			var s complex128
			for v := 0; v < a.H; v++ {
				for u := 0; u < a.W; u++ {
					s += a.At(u, v) * k.At(((x-u)%a.W+a.W)%a.W, ((y-v)%a.H+a.H)%a.H)
				}
			}
			out.Set(x, y, s)
		}
	}
	return out
}

func TestConvolutionTheorem(t *testing.T) {
	const w, h = 8, 8
	a := randCField(w, h, 21)
	k := randCField(w, h, 22)
	want := directCircularConv(a, k)

	p := NewPlan2D(w, h, engine.CPU())
	aSpec := a.Clone()
	p.Forward(aSpec)
	kSpec := k.Clone()
	p.Forward(kSpec)
	got := grid.NewCField(w, h)
	p.Convolve(got, aSpec, kSpec)

	if !got.Equal(want, 1e-9*float64(w*h)) {
		t.Fatal("FFT convolution disagrees with direct circular convolution")
	}
}

func TestSpectrumOfRealField(t *testing.T) {
	const n = 16
	f := grid.NewField(n, n)
	f.Set(3, 5, 1)
	p := NewPlan2D(n, n, engine.CPU())
	spec := p.Spectrum(f)
	// A real field's spectrum is Hermitian: X(-k) = conj(X(k)).
	for ky := 0; ky < n; ky++ {
		for kx := 0; kx < n; kx++ {
			a := spec.At(kx, ky)
			b := spec.At((n-kx)%n, (n-ky)%n)
			if cmplx.Abs(a-cmplx.Conj(b)) > 1e-9 {
				t.Fatalf("Hermitian symmetry violated at (%d,%d)", kx, ky)
			}
		}
	}
}

func TestPlan2DRejectsMismatchedField(t *testing.T) {
	p := NewPlan2D(8, 8, engine.CPU())
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched field did not panic")
		}
	}()
	p.Forward(grid.NewCField(4, 8))
}

func TestPlan2DRejectsBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two dims did not panic")
		}
	}()
	NewPlan2D(6, 8, engine.CPU())
}

func TestTransposeRectangular(t *testing.T) {
	const w, h = 8, 4
	src := make([]complex128, w*h)
	for i := range src {
		src[i] = complex(float64(i), 0)
	}
	dst := make([]complex128, w*h)
	transpose(dst, src, w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if dst[x*h+y] != src[y*w+x] {
				t.Fatalf("transpose wrong at (%d,%d)", x, y)
			}
		}
	}
}

func BenchmarkFFT1D1024(b *testing.B) {
	p := NewPlan(1024)
	x := randComplex(1024, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkFFT2D512Serial(b *testing.B)   { benchFFT2D(b, 512, engine.CPU()) }
func BenchmarkFFT2D512Parallel(b *testing.B) { benchFFT2D(b, 512, engine.GPU()) }

func benchFFT2D(b *testing.B, n int, eng *engine.Engine) {
	p := NewPlan2D(n, n, eng)
	c := randCField(n, n, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(c)
	}
}
