package fft

import (
	"math"
	"math/cmplx"
	"sync"
	"testing"

	"lsopc/internal/engine"
	"lsopc/internal/grid"
)

// TestCachedPlanConcurrent hammers the shared plan cache from many
// goroutines over overlapping sizes, including first-time creation, and
// checks every caller sees one canonical plan per size. Run under
// `go test -race` (make race) this doubles as the regression test for
// the cache's locking.
func TestCachedPlanConcurrent(t *testing.T) {
	// Larger power-of-two sizes that the small-grid tests in this
	// process are unlikely to have cached, so first-time creation races
	// are actually exercised.
	sizes := []int{512, 1024, 2048, 4096}
	const workers = 16
	got := make([][]*Plan, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			plans := make([]*Plan, 0, len(sizes)*8)
			for rep := 0; rep < 8; rep++ {
				for _, n := range sizes {
					plans = append(plans, CachedPlan(n))
				}
			}
			got[w] = plans
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i, p := range got[w] {
			if p != got[0][i] {
				t.Fatalf("worker %d saw a different plan for call %d", w, i)
			}
		}
	}
}

// TestConcurrentPlan2DConstructionAndUse builds independent 2-D
// pipelines on the shared cached 1-D plans from many goroutines and
// round-trips data through each, verifying the shared plans are
// read-only during transforms.
func TestConcurrentPlan2DConstructionAndUse(t *testing.T) {
	const n = 32
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := NewPlan2DFromPlans(CachedPlan(n), CachedPlan(n), engine.CPU(), nil)
			f := grid.NewCField(n, n)
			for i := range f.Data {
				f.Data[i] = complex(float64((i*7+w)%13), float64(i%5))
			}
			want := append([]complex128(nil), f.Data...)
			p.Forward(f)
			p.Inverse(f)
			for i := range f.Data {
				if cmplx.Abs(f.Data[i]-want[i]) > 1e-9*math.Max(1, cmplx.Abs(want[i])) {
					errs[w] = &roundTripError{worker: w, index: i}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

type roundTripError struct{ worker, index int }

func (e *roundTripError) Error() string {
	return "fft: concurrent round trip diverged"
}
