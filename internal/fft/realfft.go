package fft

import (
	"math/cmplx"

	"lsopc/internal/grid"
)

// ForwardReal computes the 2-D DFT of a real field into dst using the
// two-for-one trick: adjacent row pairs are packed as re+i·im, one
// complex transform recovers both rows' spectra via Hermitian symmetry,
// and only the column pass runs at full complex cost. This cuts the row
// pass in half — the mask-spectrum computation of every optimizer
// iteration is a real-input transform.
//
// dst receives exactly what Spectrum/Forward(SetReal(src)) would
// produce, up to floating-point rounding.
func (p *Plan2D) ForwardReal(dst *grid.CField, src *grid.Field) {
	if src.W != p.w || src.H != p.h {
		panic("fft: ForwardReal source shape mismatch")
	}
	p.check(dst)

	// Row pass on packed pairs, through the plan-owned buffer so the
	// per-iteration mask transform stays allocation-free.
	packed := p.packed
	for y := 0; y < p.h; y += 2 {
		r0 := src.Row(y)
		r1 := src.Row(y + 1)
		for x := 0; x < p.w; x++ {
			packed[x] = complex(r0[x], r1[x])
		}
		p.rowPlan.Forward(packed)
		// Unpack: R0[k] = (Z[k]+conj(Z[-k]))/2, R1[k] = (Z[k]−conj(Z[-k]))/2i.
		d0 := dst.Row(y)
		d1 := dst.Row(y + 1)
		for k := 0; k < p.w; k++ {
			zk := packed[k]
			zmk := cmplx.Conj(packed[(p.w-k)%p.w])
			d0[k] = (zk + zmk) * 0.5
			d1[k] = (zk - zmk) * complex(0, -0.5)
		}
	}

	// Column pass (identical to the complex transform's second stage).
	transpose(p.scratch, dst.Data, p.w, p.h)
	p.rowPass(p.scratch, p.w, p.h, p.colPlan, false)
	transpose(dst.Data, p.scratch, p.h, p.w)
}
