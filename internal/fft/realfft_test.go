package fft

import (
	"math/rand"
	"testing"

	"lsopc/internal/engine"
	"lsopc/internal/grid"
)

func randField(w, h int, seed int64) *grid.Field {
	rng := rand.New(rand.NewSource(seed))
	f := grid.NewField(w, h)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	return f
}

func TestForwardRealMatchesComplexPath(t *testing.T) {
	for _, dims := range [][2]int{{8, 8}, {32, 16}, {16, 64}, {128, 128}} {
		w, h := dims[0], dims[1]
		p := NewPlan2D(w, h, engine.CPU())
		src := randField(w, h, int64(w+h))

		want := p.Spectrum(src)
		got := grid.NewCField(w, h)
		p.ForwardReal(got, src)

		if !got.Equal(want, 1e-10*float64(w*h)) {
			t.Errorf("%dx%d: ForwardReal differs from complex path", w, h)
		}
	}
}

func TestForwardRealBinaryMask(t *testing.T) {
	// Exactly the optimizer's use case: a 0/1 mask.
	const n = 64
	p := NewPlan2D(n, n, engine.GPU())
	src := grid.NewField(n, n)
	for y := 20; y < 44; y++ {
		for x := 12; x < 52; x++ {
			src.Set(x, y, 1)
		}
	}
	want := p.Spectrum(src)
	got := grid.NewCField(n, n)
	p.ForwardReal(got, src)
	if !got.Equal(want, 1e-9) {
		t.Fatal("mask spectrum mismatch")
	}
	// DC bin must equal the pixel count.
	if real(got.At(0, 0)) != src.Sum() {
		t.Fatalf("DC = %v, want %g", got.At(0, 0), src.Sum())
	}
}

func TestForwardRealShapeChecks(t *testing.T) {
	p := NewPlan2D(16, 16, engine.CPU())
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched source accepted")
		}
	}()
	p.ForwardReal(grid.NewCField(16, 16), grid.NewField(8, 16))
}

func BenchmarkSpectrumComplex512(b *testing.B) {
	p := NewPlan2D(512, 512, engine.CPU())
	src := randField(512, 512, 1)
	dst := grid.NewCField(512, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.SetReal(src)
		p.Forward(dst)
	}
}

func BenchmarkSpectrumReal512(b *testing.B) {
	p := NewPlan2D(512, 512, engine.CPU())
	src := randField(512, 512, 1)
	dst := grid.NewCField(512, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ForwardReal(dst, src)
	}
}
