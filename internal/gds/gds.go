// Package gds reads and writes GDSII stream format, the de-facto mask
// layout interchange format. The writer emits one structure whose
// BOUNDARY elements carry the layout's rectangles and polygons in
// nanometre database units; the reader accepts any stream of BOUNDARY
// elements and reconstructs a geom.Layout. Round-tripping a layout
// through GDSII preserves its geometry exactly.
//
// Only the subset needed for mask layouts is implemented: HEADER,
// BGNLIB/LIBNAME/UNITS/ENDLIB, BGNSTR/STRNAME/ENDSTR and
// BOUNDARY/LAYER/DATATYPE/XY/ENDEL records. Timestamps are written as
// fixed values so output is deterministic.
package gds

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"lsopc/internal/geom"
)

// GDSII record types (subset).
const (
	recHeader   = 0x00
	recBgnLib   = 0x01
	recLibName  = 0x02
	recUnits    = 0x03
	recEndLib   = 0x04
	recBgnStr   = 0x05
	recStrName  = 0x06
	recEndStr   = 0x07
	recBoundary = 0x08
	recLayer    = 0x0D
	recDatatype = 0x0E
	recXY       = 0x10
	recEndEl    = 0x11
)

// GDSII data types.
const (
	dtNone  = 0
	dtInt16 = 2
	dtInt32 = 3
	dtReal8 = 5
	dtASCII = 6
)

// Layer is the GDS layer number boundaries are written to.
const Layer = 1

// real8 encodes an IEEE float as a GDSII 8-byte excess-64 base-16 real.
func real8(f float64) uint64 {
	if f == 0 {
		return 0
	}
	var sign uint64
	if f < 0 {
		sign = 1 << 63
		f = -f
	}
	// Find exponent e (base 16) with mantissa in [1/16, 1).
	e := 0
	for f >= 1 {
		f /= 16
		e++
	}
	for f < 1.0/16 {
		f *= 16
		e--
	}
	mant := uint64(f * math.Pow(2, 56)) // 7 mantissa bytes
	return sign | uint64(e+64)<<56 | mant
}

// real8Value decodes a GDSII 8-byte real.
func real8Value(bits uint64) float64 {
	if bits == 0 {
		return 0
	}
	sign := 1.0
	if bits&(1<<63) != 0 {
		sign = -1
	}
	exp := int(bits>>56&0x7F) - 64
	mant := float64(bits&0x00FFFFFFFFFFFFFF) / math.Pow(2, 56)
	return sign * mant * math.Pow(16, float64(exp))
}

// writer emits GDSII records.
type writer struct {
	w   io.Writer
	err error
}

func (g *writer) record(recType, dataType byte, payload []byte) {
	if g.err != nil {
		return
	}
	total := 4 + len(payload)
	if total > math.MaxUint16 {
		g.err = fmt.Errorf("gds: record too long (%d bytes)", total)
		return
	}
	hdr := []byte{byte(total >> 8), byte(total), recType, dataType}
	if _, err := g.w.Write(hdr); err != nil {
		g.err = err
		return
	}
	if len(payload) > 0 {
		if _, err := g.w.Write(payload); err != nil {
			g.err = err
		}
	}
}

func (g *writer) int16Rec(recType byte, vals ...int16) {
	buf := make([]byte, 2*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint16(buf[2*i:], uint16(v))
	}
	g.record(recType, dtInt16, buf)
}

func (g *writer) asciiRec(recType byte, s string) {
	b := []byte(s)
	if len(b)%2 == 1 {
		b = append(b, 0) // GDSII pads strings to even length
	}
	g.record(recType, dtASCII, b)
}

// Write serialises the layout as a GDSII stream with one top structure
// named after the layout (or "TOP" if unnamed). Coordinates are written
// in nanometre database units.
func Write(w io.Writer, l *geom.Layout) error {
	g := &writer{w: w}
	g.int16Rec(recHeader, 600) // stream version 6
	// Fixed timestamp (deterministic output): 2013-01-01 00:00:00, the
	// contest year.
	ts := []int16{2013, 1, 1, 0, 0, 0}
	g.int16Rec(recBgnLib, append(ts, ts...)...)
	g.asciiRec(recLibName, "LSOPC")

	// UNITS: user unit = 1e-3 db units (µm display), db unit = 1e-9 m.
	units := make([]byte, 16)
	binary.BigEndian.PutUint64(units[0:], real8(1e-3))
	binary.BigEndian.PutUint64(units[8:], real8(1e-9))
	g.record(recUnits, dtReal8, units)

	g.int16Rec(recBgnStr, append(ts, ts...)...)
	name := l.Name
	if name == "" {
		name = "TOP"
	}
	g.asciiRec(recStrName, name)

	for _, r := range l.Rects {
		g.boundary(r.ToPolygon())
	}
	for _, p := range l.Polys {
		g.boundary(p)
	}

	g.record(recEndStr, dtNone, nil)
	g.record(recEndLib, dtNone, nil)
	return g.err
}

func (g *writer) boundary(p geom.Polygon) {
	g.record(recBoundary, dtNone, nil)
	g.int16Rec(recLayer, Layer)
	g.int16Rec(recDatatype, 0)
	// XY: closed ring — first point repeated at the end.
	n := len(p.Pts)
	buf := make([]byte, 8*(n+1))
	for i := 0; i <= n; i++ {
		q := p.Pts[i%n]
		binary.BigEndian.PutUint32(buf[8*i:], uint32(int32(q.X)))
		binary.BigEndian.PutUint32(buf[8*i+4:], uint32(int32(q.Y)))
	}
	g.record(recXY, dtInt32, buf)
	g.record(recEndEl, dtNone, nil)
}

// Read parses a GDSII stream and reconstructs a layout from its
// BOUNDARY elements. The canvas is sized to the geometry's bounding box
// rounded up to the containing power-of-two-friendly extent unless the
// geometry came from Write, in which case callers typically know the
// canvas; pass it through canvasW/canvasH ≤ 0 to auto-size.
func Read(r io.Reader, canvasW, canvasH int) (*geom.Layout, error) {
	l := &geom.Layout{}
	var inBoundary bool
	var pending []geom.Point

	for {
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("gds: missing ENDLIB")
			}
			return nil, fmt.Errorf("gds: truncated record header: %w", err)
		}
		length := int(binary.BigEndian.Uint16(hdr[:2]))
		if length < 4 {
			return nil, fmt.Errorf("gds: invalid record length %d", length)
		}
		recType := hdr[2]
		payload := make([]byte, length-4)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("gds: truncated record payload: %w", err)
		}

		switch recType {
		case recStrName:
			if l.Name == "" {
				l.Name = trimASCII(payload)
			}
		case recBoundary:
			inBoundary = true
			pending = nil
		case recXY:
			if !inBoundary {
				continue
			}
			if len(payload)%8 != 0 {
				return nil, fmt.Errorf("gds: XY payload length %d not a multiple of 8", len(payload))
			}
			n := len(payload) / 8
			pending = make([]geom.Point, 0, n)
			for i := 0; i < n; i++ {
				x := int32(binary.BigEndian.Uint32(payload[8*i:]))
				y := int32(binary.BigEndian.Uint32(payload[8*i+4:]))
				pending = append(pending, geom.Point{X: int(x), Y: int(y)})
			}
		case recEndEl:
			if inBoundary {
				if len(pending) < 4 {
					return nil, fmt.Errorf("gds: boundary with %d points", len(pending))
				}
				// Drop the closing repeat of the first point.
				pts := pending
				if pts[0] == pts[len(pts)-1] {
					pts = pts[:len(pts)-1]
				}
				l.Polys = append(l.Polys, geom.Polygon{Pts: pts})
			}
			inBoundary = false
		case recEndLib:
			if canvasW > 0 && canvasH > 0 {
				l.W, l.H = canvasW, canvasH
			} else {
				b := l.Bounds()
				l.W, l.H = b.X1, b.Y1
			}
			return l, nil
		}
	}
}

func trimASCII(b []byte) string {
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return string(b)
}
