package gds

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"lsopc/internal/geom"
	"lsopc/internal/layouts"
)

func TestReal8RoundTrip(t *testing.T) {
	for _, f := range []float64{0, 1, -1, 1e-9, 1e-3, 0.5, 1024, -3.75, 6.25e-10} {
		got := real8Value(real8(f))
		if math.Abs(got-f) > math.Abs(f)*1e-12 {
			t.Errorf("real8 round trip %g → %g", f, got)
		}
	}
}

func TestReal8Property(t *testing.T) {
	prop := func(f float64) bool {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
		// Keep within GDSII real range.
		f = math.Mod(f, 1e12)
		got := real8Value(real8(f))
		return math.Abs(got-f) <= math.Abs(f)*1e-10+1e-300
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReal8KnownEncoding(t *testing.T) {
	// 1e-9 in GDSII reals is the canonical db-unit value: 0x3944B82FA09B5A54
	// is the standard encoding (e.g. from KLayout output).
	if got := real8(1e-9); got != 0x3944B82FA09B5A54 && math.Abs(real8Value(got)-1e-9) > 1e-24 {
		t.Fatalf("real8(1e-9) = %#x (decodes to %g)", got, real8Value(got))
	}
}

func sampleLayout() *geom.Layout {
	return &geom.Layout{
		Name: "B1", W: 2048, H: 2048,
		Rects: []geom.Rect{
			geom.NewRect(100, 100, 200, 400),
			geom.NewRect(300, 100, 360, 400),
		},
		Polys: []geom.Polygon{geom.NewPolygon(
			geom.Point{X: 500, Y: 500}, geom.Point{X: 700, Y: 500},
			geom.Point{X: 700, Y: 560}, geom.Point{X: 560, Y: 560},
			geom.Point{X: 560, Y: 700}, geom.Point{X: 500, Y: 700},
		)},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	l := sampleLayout()
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, l.W, l.H)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "B1" {
		t.Fatalf("structure name %q", got.Name)
	}
	// Rects come back as 4-vertex polygons; total shape count and area
	// must match exactly.
	if len(got.Polys) != 3 {
		t.Fatalf("boundary count %d, want 3", len(got.Polys))
	}
	if got.Area() != l.Area() {
		t.Fatalf("area %d, want %d", got.Area(), l.Area())
	}
	if got.W != 2048 || got.H != 2048 {
		t.Fatalf("canvas %dx%d", got.W, got.H)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadAutoCanvas(t *testing.T) {
	l := sampleLayout()
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := l.Bounds()
	if got.W != b.X1 || got.H != b.Y1 {
		t.Fatalf("auto canvas %dx%d, want %dx%d", got.W, got.H, b.X1, b.Y1)
	}
}

func TestWriteDeterministic(t *testing.T) {
	l := sampleLayout()
	var a, b bytes.Buffer
	if err := Write(&a, l); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, l); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("GDS output must be byte-deterministic")
	}
}

func TestWriteUnnamedLayout(t *testing.T) {
	l := &geom.Layout{W: 100, H: 100, Rects: []geom.Rect{geom.NewRect(1, 1, 9, 9)}}
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "TOP" {
		t.Fatalf("default structure name %q", got.Name)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"truncated header": {0x00},
		"bad length":       {0x00, 0x02, 0x00, 0x00},
		"truncated body":   {0x00, 0x08, recHeader, dtInt16, 0x02},
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data), 0, 0); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A stream that ends without ENDLIB.
	var buf bytes.Buffer
	g := &writer{w: &buf}
	g.int16Rec(recHeader, 600)
	if _, err := Read(bytes.NewReader(buf.Bytes()), 0, 0); err == nil {
		t.Error("missing ENDLIB accepted")
	}
}

func TestNegativeCoordinates(t *testing.T) {
	// GDS uses signed 32-bit coordinates; negative values must survive.
	l := &geom.Layout{Name: "n", W: 100, H: 100,
		Polys: []geom.Polygon{geom.NewPolygon(
			geom.Point{X: -50, Y: -50}, geom.Point{X: 10, Y: -50},
			geom.Point{X: 10, Y: 10}, geom.Point{X: -50, Y: 10},
		)}}
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got.Polys[0].Pts[0] != (geom.Point{X: -50, Y: -50}) {
		t.Fatalf("negative coordinate lost: %+v", got.Polys[0].Pts[0])
	}
}

func TestBenchmarksThroughGDS(t *testing.T) {
	// The whole synthetic suite must survive GDS round trips.
	for _, id := range []string{"B1", "B7", "B10"} {
		l := mustBenchmark(t, id)
		var buf bytes.Buffer
		if err := Write(&buf, l); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		got, err := Read(&buf, l.W, l.H)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if got.Area() != l.Area() {
			t.Fatalf("%s: area %d, want %d", id, got.Area(), l.Area())
		}
	}
}

func mustBenchmark(t *testing.T, id string) *geom.Layout {
	t.Helper()
	s, err := layouts.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return s.MustBuild()
}
