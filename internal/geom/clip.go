package geom

import "fmt"

// Intersect returns the overlap of r and s, or an empty rectangle when
// they are disjoint.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		X0: max(r.X0, s.X0), Y0: max(r.Y0, s.Y0),
		X1: min(r.X1, s.X1), Y1: min(r.Y1, s.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Clip returns the part of the layout inside the half-open window,
// translated so the window origin becomes (0,0). The result's canvas is
// the window extent. Rectangles clip to their intersection with the
// window; polygons are decomposed into disjoint rectangles by slab
// (scanline) decomposition of the region polygon ∩ window, which is
// robust for rectilinear polygons that the window splits into several
// pieces and never produces the degenerate bridge edges of
// Sutherland–Hodgman clipping. Rasterising the clip therefore matches
// the corresponding window of the full layout's rasterisation exactly.
//
// Shapes entirely outside the window are dropped; the result may have
// zero shapes (Validate would report ErrEmptyLayout), which callers
// tiling empty chip regions must tolerate.
func (l *Layout) Clip(window Rect) *Layout {
	out := &Layout{
		Name: fmt.Sprintf("%s@%d,%d", l.Name, window.X0, window.Y0),
		W:    window.W(),
		H:    window.H(),
	}
	for _, r := range l.Rects {
		c := r.Intersect(window)
		if c.Empty() {
			continue
		}
		out.Rects = append(out.Rects, Rect{
			X0: c.X0 - window.X0, Y0: c.Y0 - window.Y0,
			X1: c.X1 - window.X0, Y1: c.Y1 - window.Y0,
		})
	}
	for _, p := range l.Polys {
		out.Rects = append(out.Rects, clipPolygon(p, window)...)
	}
	return out
}

// clipPolygon decomposes polygon ∩ window into disjoint rectangles,
// translated to window-local coordinates. Slabs are bounded by the
// polygon's vertex y-coordinates (clamped to the window); within each
// slab the interior is a fixed set of x-intervals found by the same
// even-odd vertical-edge crossing rule the rasteriser uses, evaluated at
// the slab's half-integer midpoint so no edge is ever hit exactly.
// Vertically adjacent rectangles with identical x-extent are merged.
func clipPolygon(p Polygon, window Rect) []Rect {
	b := p.Bounds().Intersect(window)
	if b.Empty() {
		return nil
	}
	n := len(p.Pts)
	type vedge struct {
		x        int
		yLo, yHi int
	}
	edges := make([]vedge, 0, n/2)
	for i := 0; i < n; i++ {
		a, c := p.Pts[i], p.Pts[(i+1)%n]
		if a.X != c.X {
			continue
		}
		lo, hi := a.Y, c.Y
		if lo > hi {
			lo, hi = hi, lo
		}
		edges = append(edges, vedge{a.X, lo, hi})
	}

	// Slab boundaries: every vertex y inside the clipped bound, plus the
	// bound's own top and bottom.
	ys := make([]int, 0, n+2)
	ys = append(ys, b.Y0, b.Y1)
	for _, q := range p.Pts {
		if q.Y > b.Y0 && q.Y < b.Y1 {
			ys = append(ys, q.Y)
		}
	}
	sortInts(ys)
	ys = dedupInts(ys)

	var out []Rect
	xs := make([]int, 0, len(edges))
	for si := 0; si+1 < len(ys); si++ {
		ya, yb := ys[si], ys[si+1]
		cy2 := ya + yb // 2 × slab midpoint; strictly inside (2·ya, 2·yb)
		xs = xs[:0]
		for _, e := range edges {
			if cy2 > 2*e.yLo && cy2 < 2*e.yHi {
				xs = append(xs, e.x)
			}
		}
		if len(xs) == 0 {
			continue
		}
		sortInts(xs)
		for i := 0; i+1 < len(xs); i += 2 {
			x0, x1 := max(xs[i], b.X0), min(xs[i+1], b.X1)
			if x0 >= x1 {
				continue
			}
			r := Rect{
				X0: x0 - window.X0, Y0: ya - window.Y0,
				X1: x1 - window.X0, Y1: yb - window.Y0,
			}
			// Merge with a rectangle from the previous slab that shares
			// this exact x-extent and abuts vertically.
			merged := false
			for j := len(out) - 1; j >= 0 && out[j].Y1 == r.Y0; j-- {
				if out[j].X0 == r.X0 && out[j].X1 == r.X1 {
					out[j].Y1 = r.Y1
					merged = true
					break
				}
			}
			if !merged {
				out = append(out, r)
			}
		}
	}
	return out
}

// dedupInts removes adjacent duplicates from a sorted slice in place.
func dedupInts(a []int) []int {
	out := a[:0]
	for i, v := range a {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
