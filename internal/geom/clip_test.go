package geom

import "testing"

// rasterEquals checks that rasterising the clipped layout at pitch 1
// reproduces exactly the corresponding window of the full layout's
// rasterisation — the invariant tiling depends on.
func rasterEquals(t *testing.T, l *Layout, window Rect) *Layout {
	t.Helper()
	clip := l.Clip(window)
	if clip.W != window.W() || clip.H != window.H() {
		t.Fatalf("clip canvas %dx%d, want %dx%d", clip.W, clip.H, window.W(), window.H())
	}
	full, err := Rasterize(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Rasterize(clip, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := full.SubRegion(window.X0, window.Y0, window.W(), window.H())
	if got.XORCount(want) != 0 {
		t.Fatalf("clip raster differs from full-layout window %+v", window)
	}
	return clip
}

func TestClipRects(t *testing.T) {
	l := &Layout{
		Name: "rects", W: 64, H: 64,
		Rects: []Rect{
			{4, 4, 20, 12},   // fully inside the window
			{28, 8, 40, 16},  // straddles the right window edge
			{50, 50, 60, 60}, // fully outside
			{0, 30, 64, 34},  // straddles both vertical edges
		},
	}
	window := Rect{0, 0, 32, 40}
	clip := rasterEquals(t, l, window)
	if n := clip.ShapeCount(); n != 3 {
		t.Fatalf("clip kept %d shapes, want 3", n)
	}
	if err := clip.Validate(); err != nil {
		t.Fatalf("clip invalid: %v", err)
	}
	// The straddling rect must be cut at the window edge.
	want := Rect{28, 8, 32, 16}
	found := false
	for _, r := range clip.Rects {
		if r == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("straddling rect not clipped to %+v: %+v", want, clip.Rects)
	}
}

func TestClipPolygonStraddlingSeam(t *testing.T) {
	// A U-shaped polygon whose legs straddle the window's bottom edge:
	// the clip must split it into two disjoint pieces with no bridge.
	u := NewPolygon(
		Point{10, 10}, Point{40, 10}, Point{40, 40}, Point{30, 40},
		Point{30, 20}, Point{20, 20}, Point{20, 40}, Point{10, 40},
	)
	l := &Layout{Name: "u", W: 64, H: 64, Polys: []Polygon{u}}
	window := Rect{0, 25, 64, 64}
	clip := rasterEquals(t, l, window)
	if err := clip.Validate(); err != nil {
		t.Fatalf("clip invalid: %v", err)
	}
	area := 0
	for _, r := range clip.Rects {
		area += r.Area()
	}
	if want := 2 * 10 * 15; area != want { // two 10×15 leg stubs
		t.Fatalf("clipped area %d, want %d (rects %+v)", area, want, clip.Rects)
	}
	// The two legs must be separate rects, not one bridged shape.
	if len(clip.Rects) != 2 {
		t.Fatalf("u-clip produced %d rects, want 2 disjoint legs: %+v", len(clip.Rects), clip.Rects)
	}
}

func TestClipPolygonInteriorMerge(t *testing.T) {
	// An L-polygon fully inside the window: slab decomposition plus the
	// vertical merge must reproduce its exact area with few rects.
	el := NewPolygon(
		Point{8, 8}, Point{24, 8}, Point{24, 16}, Point{16, 16},
		Point{16, 32}, Point{8, 32},
	)
	l := &Layout{Name: "L", W: 64, H: 64, Polys: []Polygon{el}}
	clip := rasterEquals(t, l, Rect{0, 0, 48, 48})
	if got, want := clip.Area(), el.Area(); got != want {
		t.Fatalf("clipped area %d, want %d", got, want)
	}
	if len(clip.Rects) > 2 {
		t.Fatalf("L decomposed into %d rects, want ≤ 2: %+v", len(clip.Rects), clip.Rects)
	}
}

func TestClipDegenerateSliversDropped(t *testing.T) {
	l := &Layout{
		Name: "sliver", W: 64, H: 64,
		Rects: []Rect{{0, 0, 10, 10}},
		Polys: []Polygon{Rect{20, 0, 30, 10}.ToPolygon()},
	}
	// Window edges exactly coincide with shape edges: the half-open
	// intersection is empty, so nothing survives — no zero-area rects.
	clip := l.Clip(Rect{10, 0, 20, 64})
	if clip.ShapeCount() != 0 {
		t.Fatalf("expected empty clip, got %+v / %+v", clip.Rects, clip.Polys)
	}
	// One-nm sliver overlaps survive with exact extent.
	clip = l.Clip(Rect{9, 0, 20, 64})
	if len(clip.Rects) != 1 || clip.Rects[0] != (Rect{0, 0, 1, 10}) {
		t.Fatalf("sliver clip = %+v, want [{0 0 1 10}]", clip.Rects)
	}
	rasterEquals(t, l, Rect{9, 0, 20, 64})
}

func TestClipEmptyWindow(t *testing.T) {
	l := &Layout{Name: "far", W: 128, H: 128, Rects: []Rect{{0, 0, 16, 16}}}
	clip := l.Clip(Rect{64, 64, 128, 128})
	if clip.ShapeCount() != 0 {
		t.Fatalf("expected empty clip, got %d shapes", clip.ShapeCount())
	}
	if err := clip.Validate(); err != ErrEmptyLayout {
		t.Fatalf("Validate = %v, want ErrEmptyLayout", err)
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if got := a.Intersect(Rect{5, 5, 20, 20}); got != (Rect{5, 5, 10, 10}) {
		t.Fatalf("intersect = %+v", got)
	}
	if got := a.Intersect(Rect{10, 0, 20, 10}); !got.Empty() {
		t.Fatalf("abutting rects intersect = %+v, want empty", got)
	}
}
