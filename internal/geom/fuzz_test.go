package geom

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseGLP checks the parser never panics and that every accepted
// layout round-trips through WriteGLP.
func FuzzParseGLP(f *testing.F) {
	f.Add("size 100 100\nrect 10 10 20 20\n")
	f.Add("name x\nsize 64 64\npoly 0 0 8 0 8 8 0 8\n")
	f.Add("# comment\nsize 8 8\n")
	f.Add("rect 1 2 3 4")
	f.Add("size -1 5")
	f.Fuzz(func(t *testing.T, src string) {
		l, err := ParseGLP(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteGLP(&buf, l); err != nil {
			t.Fatalf("accepted layout failed to serialise: %v", err)
		}
		back, err := ParseGLP(&buf)
		if err != nil {
			t.Fatalf("serialised layout failed to parse: %v", err)
		}
		if back.Area() != l.Area() || len(back.Rects) != len(l.Rects) || len(back.Polys) != len(l.Polys) {
			t.Fatal("round trip changed the layout")
		}
	})
}
