// Package geom models rectilinear mask layouts — rectangles and
// axis-aligned polygons in integer nanometre coordinates — together with
// rasterisation onto simulation grids and a plain-text interchange
// format (GLP) in the spirit of the ICCAD 2013 contest clips.
//
// Coordinates are integers in nanometres. Rectangles are half-open:
// [X0,X1) × [Y0,Y1), so area and rasterisation are exact and abutting
// shapes do not double-count boundary pixels.
package geom

import (
	"errors"
	"fmt"
)

// Point is an integer nm coordinate pair.
type Point struct {
	X, Y int
}

// Rect is a half-open axis-aligned rectangle [X0,X1) × [Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// NewRect returns the rectangle with the given corners, normalising the
// coordinate order.
func NewRect(x0, y0, x1, y1 int) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// W returns the rectangle width.
func (r Rect) W() int { return r.X1 - r.X0 }

// H returns the rectangle height.
func (r Rect) H() int { return r.Y1 - r.Y0 }

// Area returns the rectangle area in nm².
func (r Rect) Area() int { return r.W() * r.H() }

// Empty reports whether the rectangle has zero area.
func (r Rect) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// Contains reports whether p lies inside the half-open rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X < r.X1 && p.Y >= r.Y0 && p.Y < r.Y1
}

// Intersects reports whether r and s share any area.
func (r Rect) Intersects(s Rect) bool {
	return r.X0 < s.X1 && s.X0 < r.X1 && r.Y0 < s.Y1 && s.Y0 < r.Y1
}

// Union returns the bounding box of r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	out := r
	if s.X0 < out.X0 {
		out.X0 = s.X0
	}
	if s.Y0 < out.Y0 {
		out.Y0 = s.Y0
	}
	if s.X1 > out.X1 {
		out.X1 = s.X1
	}
	if s.Y1 > out.Y1 {
		out.Y1 = s.Y1
	}
	return out
}

// Polygon is a closed rectilinear polygon. Vertices are listed without
// repeating the first point; consecutive vertices must differ in exactly
// one coordinate (axis-aligned edges).
type Polygon struct {
	Pts []Point
}

// NewPolygon builds a polygon from a vertex list.
func NewPolygon(pts ...Point) Polygon { return Polygon{Pts: pts} }

// SignedArea2 returns twice the shoelace signed area (positive for
// counter-clockwise orientation in standard math axes).
func (p Polygon) SignedArea2() int {
	n := len(p.Pts)
	if n < 3 {
		return 0
	}
	s := 0
	for i := 0; i < n; i++ {
		a, b := p.Pts[i], p.Pts[(i+1)%n]
		s += a.X*b.Y - b.X*a.Y
	}
	return s
}

// Area returns the unsigned polygon area in nm².
func (p Polygon) Area() int {
	a := p.SignedArea2()
	if a < 0 {
		a = -a
	}
	return a / 2
}

// Rectilinear reports whether every edge is axis-aligned and non-degenerate.
func (p Polygon) Rectilinear() bool {
	n := len(p.Pts)
	if n < 4 {
		return false
	}
	for i := 0; i < n; i++ {
		a, b := p.Pts[i], p.Pts[(i+1)%n]
		dx, dy := b.X-a.X, b.Y-a.Y
		if (dx == 0) == (dy == 0) { // both zero or both nonzero
			return false
		}
	}
	return true
}

// Bounds returns the polygon bounding box.
func (p Polygon) Bounds() Rect {
	if len(p.Pts) == 0 {
		return Rect{}
	}
	b := Rect{p.Pts[0].X, p.Pts[0].Y, p.Pts[0].X, p.Pts[0].Y}
	for _, q := range p.Pts {
		if q.X < b.X0 {
			b.X0 = q.X
		}
		if q.Y < b.Y0 {
			b.Y0 = q.Y
		}
		if q.X > b.X1 {
			b.X1 = q.X
		}
		if q.Y > b.Y1 {
			b.Y1 = q.Y
		}
	}
	return b
}

// ToPolygon converts a rectangle to an equivalent 4-vertex polygon in
// counter-clockwise order.
func (r Rect) ToPolygon() Polygon {
	return NewPolygon(
		Point{r.X0, r.Y0},
		Point{r.X1, r.Y0},
		Point{r.X1, r.Y1},
		Point{r.X0, r.Y1},
	)
}

// Contains reports whether the point (x+0.5, y+0.5) — the centre of
// pixel (x,y) — lies inside the polygon, using the even-odd rule. Using
// pixel centres makes polygon rasterisation exact for integer-coordinate
// rectilinear polygons.
func (p Polygon) Contains(x, y int) bool {
	// Cast a ray in +X from the pixel centre and count crossings of
	// vertical edges. With half-integer ray coordinates no edge or
	// vertex is ever hit exactly, so the even-odd count is robust.
	cx, cy := float64(x)+0.5, float64(y)+0.5
	n := len(p.Pts)
	inside := false
	for i := 0; i < n; i++ {
		a, b := p.Pts[i], p.Pts[(i+1)%n]
		if a.X != b.X { // horizontal edge: never crossed by horizontal ray
			continue
		}
		yLo, yHi := float64(a.Y), float64(b.Y)
		if yLo > yHi {
			yLo, yHi = yHi, yLo
		}
		if cy > yLo && cy < yHi && float64(a.X) > cx {
			inside = !inside
		}
	}
	return inside
}

// Layout is a named collection of disjoint shapes on a W×H nm canvas.
type Layout struct {
	Name  string
	W, H  int // canvas extent in nm
	Rects []Rect
	Polys []Polygon
}

// Area returns the total pattern area in nm², assuming disjoint shapes
// (which Validate checks for rectangles).
func (l *Layout) Area() int {
	a := 0
	for _, r := range l.Rects {
		a += r.Area()
	}
	for _, p := range l.Polys {
		a += p.Area()
	}
	return a
}

// Bounds returns the bounding box of all shapes.
func (l *Layout) Bounds() Rect {
	var b Rect
	first := true
	add := func(r Rect) {
		if first {
			b = r
			first = false
		} else {
			b = b.Union(r)
		}
	}
	for _, r := range l.Rects {
		add(r)
	}
	for _, p := range l.Polys {
		add(p.Bounds())
	}
	return b
}

// ShapeCount returns the number of shapes in the layout.
func (l *Layout) ShapeCount() int { return len(l.Rects) + len(l.Polys) }

// Validation errors returned by Layout.Validate.
var (
	ErrEmptyLayout    = errors.New("geom: layout has no shapes")
	ErrBadCanvas      = errors.New("geom: canvas dimensions must be positive")
	ErrOutOfCanvas    = errors.New("geom: shape outside canvas")
	ErrDegenerate     = errors.New("geom: degenerate shape")
	ErrNotRectilinear = errors.New("geom: polygon is not rectilinear")
	ErrOverlap        = errors.New("geom: overlapping shapes")
)

// Validate checks structural invariants: positive canvas, at least one
// shape, all shapes in-bounds and non-degenerate, polygons rectilinear,
// and rectangles pairwise disjoint.
func (l *Layout) Validate() error {
	if l.W <= 0 || l.H <= 0 {
		return fmt.Errorf("%w: %dx%d", ErrBadCanvas, l.W, l.H)
	}
	if l.ShapeCount() == 0 {
		return ErrEmptyLayout
	}
	canvas := Rect{0, 0, l.W, l.H}
	for i, r := range l.Rects {
		if r.Empty() {
			return fmt.Errorf("%w: rect %d %+v", ErrDegenerate, i, r)
		}
		if r.X0 < 0 || r.Y0 < 0 || r.X1 > canvas.X1 || r.Y1 > canvas.Y1 {
			return fmt.Errorf("%w: rect %d %+v", ErrOutOfCanvas, i, r)
		}
	}
	for i, p := range l.Polys {
		if !p.Rectilinear() {
			return fmt.Errorf("%w: polygon %d", ErrNotRectilinear, i)
		}
		if p.Area() == 0 {
			return fmt.Errorf("%w: polygon %d", ErrDegenerate, i)
		}
		b := p.Bounds()
		if b.X0 < 0 || b.Y0 < 0 || b.X1 > canvas.X1 || b.Y1 > canvas.Y1 {
			return fmt.Errorf("%w: polygon %d", ErrOutOfCanvas, i)
		}
	}
	for i := 0; i < len(l.Rects); i++ {
		for j := i + 1; j < len(l.Rects); j++ {
			if l.Rects[i].Intersects(l.Rects[j]) {
				return fmt.Errorf("%w: rects %d and %d", ErrOverlap, i, j)
			}
		}
	}
	return nil
}

// Edge is one axis-aligned boundary segment of a target shape, with the
// outward normal direction (unit vector pointing away from the pattern
// interior). EPE probes are placed along edges and displacement is
// measured along ±normal.
type Edge struct {
	A, B   Point // endpoints, A→B along the boundary
	Nx, Ny int   // outward normal (one of (±1,0),(0,±1))
}

// Len returns the edge length in nm.
func (e Edge) Len() int {
	dx, dy := e.B.X-e.A.X, e.B.Y-e.A.Y
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Horizontal reports whether the edge runs along the X axis.
func (e Edge) Horizontal() bool { return e.A.Y == e.B.Y }

// Edges returns every boundary edge of every shape with outward normals.
// Normal orientation is determined per-edge by testing which side of the
// edge midpoint lies inside the shape.
func (l *Layout) Edges() []Edge {
	var out []Edge
	for _, r := range l.Rects {
		out = append(out, polygonEdges(r.ToPolygon())...)
	}
	for _, p := range l.Polys {
		out = append(out, polygonEdges(p)...)
	}
	return out
}

func polygonEdges(p Polygon) []Edge {
	n := len(p.Pts)
	out := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		a, b := p.Pts[i], p.Pts[(i+1)%n]
		e := Edge{A: a, B: b}
		// Midpoint of the edge in pixel units; probe one pixel to each
		// side to find the interior.
		mx, my := (a.X+b.X)/2, (a.Y+b.Y)/2
		if e.Horizontal() {
			// candidates: up (0,-1) or down (0,+1)
			if p.Contains(mx, my) { // pixel below the edge line is inside
				e.Nx, e.Ny = 0, -1
			} else {
				e.Nx, e.Ny = 0, 1
			}
		} else {
			if p.Contains(mx, my) { // pixel right of the edge line is inside
				e.Nx, e.Ny = -1, 0
			} else {
				e.Nx, e.Ny = 1, 0
			}
		}
		out = append(out, e)
	}
	return out
}
