package geom

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(10, 20, 30, 50)
	if r.W() != 20 || r.H() != 30 || r.Area() != 600 {
		t.Fatalf("rect dims wrong: %+v", r)
	}
	if r.Empty() {
		t.Fatal("non-empty rect reported empty")
	}
	if !NewRect(5, 5, 5, 9).Empty() {
		t.Fatal("zero-width rect must be empty")
	}
	// NewRect normalises corner order.
	if NewRect(30, 50, 10, 20) != r {
		t.Fatal("NewRect must normalise corners")
	}
}

func TestRectContainsHalfOpen(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{9, 9}) {
		t.Fatal("corner containment wrong")
	}
	if r.Contains(Point{10, 5}) || r.Contains(Point{5, 10}) {
		t.Fatal("half-open boundary must be excluded")
	}
}

func TestRectIntersectsAndUnion(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(5, 5, 15, 15)
	c := NewRect(10, 0, 20, 10) // abuts a, shares only an edge
	if !a.Intersects(b) {
		t.Fatal("overlapping rects must intersect")
	}
	if a.Intersects(c) {
		t.Fatal("edge-abutting half-open rects must not intersect")
	}
	u := a.Union(b)
	if u != NewRect(0, 0, 15, 15) {
		t.Fatalf("union = %+v", u)
	}
	if a.Union(Rect{}) != a || (Rect{}).Union(a) != a {
		t.Fatal("union with empty rect must be identity")
	}
}

func TestPolygonAreaMatchesRect(t *testing.T) {
	r := NewRect(3, 4, 10, 9)
	p := r.ToPolygon()
	if p.Area() != r.Area() {
		t.Fatalf("polygon area %d != rect area %d", p.Area(), r.Area())
	}
	if !p.Rectilinear() {
		t.Fatal("rect polygon must be rectilinear")
	}
}

func TestPolygonLShape(t *testing.T) {
	// L-shape: 20×10 with a 10×5 notch removed from the top-right.
	p := NewPolygon(
		Point{0, 0}, Point{20, 0}, Point{20, 5},
		Point{10, 5}, Point{10, 10}, Point{0, 10},
	)
	if !p.Rectilinear() {
		t.Fatal("L polygon must be rectilinear")
	}
	if got := p.Area(); got != 150 {
		t.Fatalf("L area = %d, want 150", got)
	}
	b := p.Bounds()
	if b != NewRect(0, 0, 20, 10) {
		t.Fatalf("bounds = %+v", b)
	}
	// Point containment inside both arms and outside the notch.
	if !p.Contains(5, 7) || !p.Contains(15, 2) {
		t.Fatal("interior points must be inside")
	}
	if p.Contains(15, 7) {
		t.Fatal("notch must be outside")
	}
}

func TestPolygonNotRectilinear(t *testing.T) {
	p := NewPolygon(Point{0, 0}, Point{10, 10}, Point{0, 10}, Point{0, 5})
	if p.Rectilinear() {
		t.Fatal("diagonal edge accepted as rectilinear")
	}
	if NewPolygon(Point{0, 0}, Point{1, 0}, Point{1, 1}).Rectilinear() {
		t.Fatal("triangle accepted")
	}
}

func TestLayoutValidate(t *testing.T) {
	ok := &Layout{Name: "t", W: 100, H: 100, Rects: []Rect{NewRect(10, 10, 30, 30)}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}

	cases := []struct {
		name string
		l    *Layout
		want error
	}{
		{"empty", &Layout{W: 10, H: 10}, ErrEmptyLayout},
		{"bad canvas", &Layout{W: 0, H: 10, Rects: []Rect{NewRect(0, 0, 1, 1)}}, ErrBadCanvas},
		{"out of canvas", &Layout{W: 10, H: 10, Rects: []Rect{NewRect(5, 5, 15, 8)}}, ErrOutOfCanvas},
		{"degenerate", &Layout{W: 10, H: 10, Rects: []Rect{{3, 3, 3, 8}}}, ErrDegenerate},
		{"overlap", &Layout{W: 100, H: 100, Rects: []Rect{NewRect(0, 0, 50, 50), NewRect(40, 40, 60, 60)}}, ErrOverlap},
		{"non-rectilinear poly", &Layout{W: 100, H: 100,
			Polys: []Polygon{NewPolygon(Point{0, 0}, Point{10, 10}, Point{0, 10}, Point{5, 5})}}, ErrNotRectilinear},
	}
	for _, tc := range cases {
		if err := tc.l.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestLayoutAreaAndBounds(t *testing.T) {
	l := &Layout{
		W: 200, H: 200,
		Rects: []Rect{NewRect(10, 10, 30, 30), NewRect(100, 100, 120, 140)},
		Polys: []Polygon{NewPolygon(Point{50, 50}, Point{70, 50}, Point{70, 60}, Point{50, 60})},
	}
	want := 20*20 + 20*40 + 20*10
	if got := l.Area(); got != want {
		t.Fatalf("area = %d, want %d", got, want)
	}
	if b := l.Bounds(); b != NewRect(10, 10, 120, 140) {
		t.Fatalf("bounds = %+v", b)
	}
	if l.ShapeCount() != 3 {
		t.Fatalf("shape count = %d", l.ShapeCount())
	}
}

func TestEdgesOutwardNormals(t *testing.T) {
	l := &Layout{W: 100, H: 100, Rects: []Rect{NewRect(20, 30, 60, 70)}}
	edges := l.Edges()
	if len(edges) != 4 {
		t.Fatalf("rect must have 4 edges, got %d", len(edges))
	}
	// Sum of edge lengths = perimeter.
	per := 0
	for _, e := range edges {
		per += e.Len()
	}
	if per != 2*(40+40) {
		t.Fatalf("perimeter = %d", per)
	}
	// Each edge's outward normal must point away from the rect centre.
	cx, cy := 40.0, 50.0
	for _, e := range edges {
		mx := float64(e.A.X+e.B.X) / 2
		my := float64(e.A.Y+e.B.Y) / 2
		if (mx-cx)*float64(e.Nx)+(my-cy)*float64(e.Ny) <= 0 {
			t.Errorf("edge %+v: normal points inward", e)
		}
		if e.Nx*e.Ny != 0 || e.Nx+e.Ny == 0 && e.Nx == 0 {
			t.Errorf("edge %+v: normal not axis-aligned unit", e)
		}
	}
}

func TestEdgesLShapeNormals(t *testing.T) {
	// Concave vertex case: the notch edges must point into the notch.
	p := NewPolygon(
		Point{0, 0}, Point{20, 0}, Point{20, 5},
		Point{10, 5}, Point{10, 10}, Point{0, 10},
	)
	l := &Layout{W: 30, H: 20, Polys: []Polygon{p}}
	edges := l.Edges()
	if len(edges) != 6 {
		t.Fatalf("L shape must have 6 edges, got %d", len(edges))
	}
	for _, e := range edges {
		// Step from edge midpoint along the outward normal: must leave
		// the polygon. Step inward: must be inside.
		mx, my := (e.A.X+e.B.X)/2, (e.A.Y+e.B.Y)/2
		// Pixel just outside: shift by normal; just inside: opposite.
		outX, outY := mx+e.Nx, my+e.Ny
		inX, inY := mx-e.Nx, my-e.Ny
		if e.Nx == 1 || e.Ny == 1 { // pixel grid offset for positive normals
			outX, outY = mx, my
			inX, inY = mx-e.Nx, my-e.Ny
		} else {
			outX, outY = mx+e.Nx, my+e.Ny
			inX, inY = mx, my
		}
		if p.Contains(outX, outY) {
			t.Errorf("edge %+v: outward pixel (%d,%d) is inside", e, outX, outY)
		}
		if !p.Contains(inX, inY) {
			t.Errorf("edge %+v: inward pixel (%d,%d) is outside", e, inX, inY)
		}
	}
}

func TestRasterizeRectExactArea(t *testing.T) {
	l := &Layout{W: 64, H: 64, Rects: []Rect{NewRect(10, 12, 34, 40)}}
	f, err := Rasterize(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := int(f.Sum()), l.Area(); got != want {
		t.Fatalf("raster area %d != layout area %d", got, want)
	}
	if f.At(10, 12) != 1 || f.At(33, 39) != 1 {
		t.Fatal("interior pixels not set")
	}
	if f.At(9, 12) != 0 || f.At(34, 39) != 0 || f.At(10, 40) != 0 {
		t.Fatal("pixels outside half-open rect must be clear")
	}
}

func TestRasterizePolygonExactArea(t *testing.T) {
	p := NewPolygon(
		Point{8, 8}, Point{40, 8}, Point{40, 20},
		Point{24, 20}, Point{24, 36}, Point{8, 36},
	)
	l := &Layout{W: 64, H: 64, Polys: []Polygon{p}}
	f, err := Rasterize(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := int(f.Sum()), p.Area(); got != want {
		t.Fatalf("raster area %d != polygon area %d", got, want)
	}
	// Notch must be empty.
	if f.At(30, 30) != 0 {
		t.Fatal("notch pixel set")
	}
	if f.At(10, 10) != 1 || f.At(30, 10) != 1 || f.At(10, 30) != 1 {
		t.Fatal("interior pixel clear")
	}
}

func TestRasterizeCoarsePitch(t *testing.T) {
	l := &Layout{W: 64, H: 64, Rects: []Rect{NewRect(0, 0, 32, 64)}}
	f, err := Rasterize(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.W != 16 || f.H != 16 {
		t.Fatalf("coarse raster shape %dx%d", f.W, f.H)
	}
	// Left half filled, right half empty.
	if int(f.Sum()) != 8*16 {
		t.Fatalf("coarse raster sum = %g", f.Sum())
	}
}

func TestRasterizeErrors(t *testing.T) {
	l := &Layout{W: 64, H: 64, Rects: []Rect{NewRect(0, 0, 8, 8)}}
	if _, err := Rasterize(l, 0); err == nil {
		t.Fatal("pitch 0 accepted")
	}
	if _, err := Rasterize(l, 5); err == nil {
		t.Fatal("non-dividing pitch accepted")
	}
}

// Property: rasterised area equals geometric area for random rects at pitch 1.
func TestRasterAreaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	prop := func() bool {
		x0, y0 := rng.Intn(50), rng.Intn(50)
		w, h := 1+rng.Intn(14), 1+rng.Intn(14)
		l := &Layout{W: 64, H: 64, Rects: []Rect{NewRect(x0, y0, x0+w, y0+h)}}
		f, err := Rasterize(l, 1)
		if err != nil {
			return false
		}
		return int(f.Sum()) == w*h
	}
	if err := quick.Check(func() bool { return prop() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{7, 2, 4}, {8, 2, 4}, {-7, 2, -3}, {0, 5, 0}, {1, 5, 1},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.want {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
