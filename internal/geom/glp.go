package geom

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// GLP is a plain-text layout interchange format modelled on the simple
// glyph files used by open mask-optimization research kits:
//
//	# comment
//	name B1
//	size 2048 2048
//	rect X0 Y0 X1 Y1
//	poly X1 Y1 X2 Y2 ... Xn Yn
//
// Coordinates are integer nanometres. "size" must precede shapes.

// WriteGLP serialises the layout in GLP text form.
func WriteGLP(w io.Writer, l *Layout) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# GLP layout, coordinates in nm\n")
	if l.Name != "" {
		fmt.Fprintf(bw, "name %s\n", l.Name)
	}
	fmt.Fprintf(bw, "size %d %d\n", l.W, l.H)
	for _, r := range l.Rects {
		fmt.Fprintf(bw, "rect %d %d %d %d\n", r.X0, r.Y0, r.X1, r.Y1)
	}
	for _, p := range l.Polys {
		fmt.Fprintf(bw, "poly")
		for _, q := range p.Pts {
			fmt.Fprintf(bw, " %d %d", q.X, q.Y)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ParseGLP reads a layout from GLP text. It returns descriptive errors
// with line numbers for malformed input.
func ParseGLP(r io.Reader) (*Layout, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	l := &Layout{}
	sized := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "name":
			if len(fields) != 2 {
				return nil, fmt.Errorf("geom: line %d: name takes one argument", lineNo)
			}
			l.Name = fields[1]
		case "size":
			vals, err := parseInts(fields[1:], 2)
			if err != nil {
				return nil, fmt.Errorf("geom: line %d: size: %v", lineNo, err)
			}
			l.W, l.H = vals[0], vals[1]
			if l.W <= 0 || l.H <= 0 {
				return nil, fmt.Errorf("geom: line %d: size must be positive", lineNo)
			}
			sized = true
		case "rect":
			if !sized {
				return nil, fmt.Errorf("geom: line %d: rect before size", lineNo)
			}
			vals, err := parseInts(fields[1:], 4)
			if err != nil {
				return nil, fmt.Errorf("geom: line %d: rect: %v", lineNo, err)
			}
			l.Rects = append(l.Rects, NewRect(vals[0], vals[1], vals[2], vals[3]))
		case "poly":
			if !sized {
				return nil, fmt.Errorf("geom: line %d: poly before size", lineNo)
			}
			vals, err := parseInts(fields[1:], -1)
			if err != nil {
				return nil, fmt.Errorf("geom: line %d: poly: %v", lineNo, err)
			}
			if len(vals) < 8 || len(vals)%2 != 0 {
				return nil, fmt.Errorf("geom: line %d: poly needs ≥4 vertices (x y pairs)", lineNo)
			}
			pts := make([]Point, len(vals)/2)
			for i := range pts {
				pts[i] = Point{vals[2*i], vals[2*i+1]}
			}
			l.Polys = append(l.Polys, Polygon{Pts: pts})
		default:
			return nil, fmt.Errorf("geom: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("geom: reading GLP: %w", err)
	}
	if !sized {
		return nil, fmt.Errorf("geom: missing size directive")
	}
	return l, nil
}

// parseInts converts the fields to ints. want < 0 accepts any count.
func parseInts(fields []string, want int) ([]int, error) {
	if want >= 0 && len(fields) != want {
		return nil, fmt.Errorf("expected %d integers, got %d", want, len(fields))
	}
	out := make([]int, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out[i] = v
	}
	return out, nil
}
