package geom

import (
	"bytes"
	"strings"
	"testing"
)

func sampleLayout() *Layout {
	return &Layout{
		Name: "B1",
		W:    2048, H: 2048,
		Rects: []Rect{NewRect(100, 100, 200, 400), NewRect(300, 100, 360, 400)},
		Polys: []Polygon{NewPolygon(
			Point{500, 500}, Point{700, 500}, Point{700, 560},
			Point{560, 560}, Point{560, 700}, Point{500, 700},
		)},
	}
}

func TestGLPRoundTrip(t *testing.T) {
	l := sampleLayout()
	var buf bytes.Buffer
	if err := WriteGLP(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := ParseGLP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != l.Name || got.W != l.W || got.H != l.H {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Rects) != len(l.Rects) || len(got.Polys) != len(l.Polys) {
		t.Fatalf("shape counts differ: %d/%d rects, %d/%d polys",
			len(got.Rects), len(l.Rects), len(got.Polys), len(l.Polys))
	}
	for i := range l.Rects {
		if got.Rects[i] != l.Rects[i] {
			t.Errorf("rect %d: %+v != %+v", i, got.Rects[i], l.Rects[i])
		}
	}
	for i := range l.Polys {
		if len(got.Polys[i].Pts) != len(l.Polys[i].Pts) {
			t.Fatalf("poly %d vertex count differs", i)
		}
		for j := range l.Polys[i].Pts {
			if got.Polys[i].Pts[j] != l.Polys[i].Pts[j] {
				t.Errorf("poly %d vertex %d differs", i, j)
			}
		}
	}
	if got.Area() != l.Area() {
		t.Fatalf("area changed in round trip: %d vs %d", got.Area(), l.Area())
	}
}

func TestParseGLPCommentsAndBlank(t *testing.T) {
	src := `
# header comment
name test

size 100 100
# a rect
rect 10 10 20 20
`
	l, err := ParseGLP(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if l.Name != "test" || len(l.Rects) != 1 {
		t.Fatalf("parsed %+v", l)
	}
}

func TestParseGLPErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown directive", "size 10 10\ncircle 1 2 3\n"},
		{"rect before size", "rect 1 1 5 5\n"},
		{"poly before size", "poly 0 0 1 0 1 1 0 1\n"},
		{"bad size argc", "size 10\n"},
		{"bad size value", "size 10 ten\n"},
		{"negative size", "size -5 10\n"},
		{"bad rect argc", "size 10 10\nrect 1 2 3\n"},
		{"bad rect value", "size 10 10\nrect 1 2 3 x\n"},
		{"poly odd coords", "size 10 10\npoly 0 0 1 0 1 1 0\n"},
		{"poly too few vertices", "size 10 10\npoly 0 0 1 0 1 1\n"},
		{"name argc", "name a b\n"},
		{"missing size", "name onlyname\n"},
		{"empty input", ""},
	}
	for _, tc := range cases {
		if _, err := ParseGLP(strings.NewReader(tc.src)); err == nil {
			t.Errorf("%s: no error for %q", tc.name, tc.src)
		}
	}
}

func TestParseGLPLineNumbersInErrors(t *testing.T) {
	_, err := ParseGLP(strings.NewReader("size 10 10\n\nrect 1 2 3\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error should cite line 3, got %v", err)
	}
}
