package geom

import (
	"fmt"

	"lsopc/internal/grid"
)

// Rasterize renders the layout onto a binary field at the given pixel
// pitch (nm per pixel). The canvas must divide evenly by the pitch.
// A pixel is set to 1 when its centre lies inside a shape; for integer-
// coordinate rectilinear shapes at pitch 1 this is exact, and the pixel
// count equals the pattern area in nm².
func Rasterize(l *Layout, pitchNM int) (*grid.Field, error) {
	if pitchNM <= 0 {
		return nil, fmt.Errorf("geom: pitch must be positive, got %d", pitchNM)
	}
	if l.W%pitchNM != 0 || l.H%pitchNM != 0 {
		return nil, fmt.Errorf("geom: pitch %d does not divide canvas %dx%d", pitchNM, l.W, l.H)
	}
	w, h := l.W/pitchNM, l.H/pitchNM
	f := grid.NewField(w, h)
	for _, r := range l.Rects {
		rasterRect(f, r, pitchNM)
	}
	for _, p := range l.Polys {
		rasterPolygon(f, p, pitchNM)
	}
	return f, nil
}

// rasterRect fills all pixels whose centres lie inside the half-open
// rectangle.
func rasterRect(f *grid.Field, r Rect, pitch int) {
	// Pixel (x,y) centre is at ((x+0.5)·pitch, (y+0.5)·pitch).
	// Centre inside [X0,X1) ⇔ X0 ≤ (x+0.5)p < X1 ⇔ ceil(X0/p - 0.5) ≤ x …
	x0 := ceilDiv(2*r.X0-pitch, 2*pitch)
	x1 := ceilDiv(2*r.X1-pitch, 2*pitch) // exclusive
	y0 := ceilDiv(2*r.Y0-pitch, 2*pitch)
	y1 := ceilDiv(2*r.Y1-pitch, 2*pitch)
	x0, y0 = max(x0, 0), max(y0, 0)
	x1, y1 = min(x1, f.W), min(y1, f.H)
	for y := y0; y < y1; y++ {
		row := f.Row(y)
		for x := x0; x < x1; x++ {
			row[x] = 1
		}
	}
}

// rasterPolygon scanline-fills a rectilinear polygon using the even-odd
// rule evaluated at pixel centres.
func rasterPolygon(f *grid.Field, p Polygon, pitch int) {
	b := p.Bounds()
	y0 := max(b.Y0/pitch, 0)
	y1 := min(ceilDiv(b.Y1, pitch), f.H)
	n := len(p.Pts)
	// Collect vertical edges once.
	type vedge struct {
		x        int
		yLo, yHi int
	}
	edges := make([]vedge, 0, n/2)
	for i := 0; i < n; i++ {
		a, c := p.Pts[i], p.Pts[(i+1)%n]
		if a.X != c.X {
			continue
		}
		lo, hi := a.Y, c.Y
		if lo > hi {
			lo, hi = hi, lo
		}
		edges = append(edges, vedge{a.X, lo, hi})
	}
	xs := make([]int, 0, len(edges))
	for y := y0; y < y1; y++ {
		cy2 := 2*y*pitch + pitch // 2 × pixel-centre y
		xs = xs[:0]
		for _, e := range edges {
			if cy2 > 2*e.yLo && cy2 < 2*e.yHi {
				xs = append(xs, e.x)
			}
		}
		if len(xs) == 0 {
			continue
		}
		sortInts(xs)
		row := f.Row(y)
		for i := 0; i+1 < len(xs); i += 2 {
			// Fill pixels whose centre x lies in [xs[i], xs[i+1]).
			px0 := ceilDiv(2*xs[i]-pitch, 2*pitch)
			px1 := ceilDiv(2*xs[i+1]-pitch, 2*pitch)
			px0, px1 = max(px0, 0), min(px1, f.W)
			for x := px0; x < px1; x++ {
				row[x] = 1
			}
		}
	}
}

// ceilDiv returns ⌈a/b⌉ for positive b.
func ceilDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

// sortInts is a small insertion sort; scanline crossing lists hold only
// a handful of entries.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
