package geom

import (
	"fmt"

	"lsopc/internal/grid"
)

// VectorizeMask converts a binary raster mask back into geometry: an
// exact partition of the set pixels (> 0.5) into rectangles, scaled by
// the pixel pitch to nm coordinates. Rasterising the result at the same
// pitch reproduces the mask bit-for-bit, so optimized masks round-trip
// through the GLP format losslessly.
//
// The partition merges each row's runs with vertically aligned runs in
// following rows, which keeps the rectangle count near the minimum for
// the rectilinear regions level-set masks produce.
func VectorizeMask(f *grid.Field, pitchNM int) []Rect {
	if pitchNM <= 0 {
		panic(fmt.Sprintf("geom: pitch must be positive, got %d", pitchNM))
	}
	type openRun struct {
		x0, x1 int // pixel span [x0, x1)
		y0     int // first row
	}
	var done []Rect
	var open []openRun

	emit := func(r openRun, y1 int) {
		done = append(done, Rect{
			X0: r.x0 * pitchNM, Y0: r.y0 * pitchNM,
			X1: r.x1 * pitchNM, Y1: y1 * pitchNM,
		})
	}

	rowRuns := make([][2]int, 0, 16)
	for y := 0; y <= f.H; y++ {
		rowRuns = rowRuns[:0]
		if y < f.H {
			row := f.Row(y)
			x := 0
			for x < f.W {
				for x < f.W && row[x] <= 0.5 {
					x++
				}
				if x >= f.W {
					break
				}
				x0 := x
				for x < f.W && row[x] > 0.5 {
					x++
				}
				rowRuns = append(rowRuns, [2]int{x0, x})
			}
		}
		// Match open runs against this row's runs: identical spans
		// continue, everything else closes/opens.
		var still []openRun
		matched := make([]bool, len(rowRuns))
		for _, o := range open {
			found := false
			for i, r := range rowRuns {
				if !matched[i] && r[0] == o.x0 && r[1] == o.x1 {
					matched[i] = true
					found = true
					break
				}
			}
			if found {
				still = append(still, o)
			} else {
				emit(o, y)
			}
		}
		for i, r := range rowRuns {
			if !matched[i] {
				still = append(still, openRun{x0: r[0], x1: r[1], y0: y})
			}
		}
		open = still
	}
	return done
}

// MaskToLayout wraps VectorizeMask into a named layout on the mask's
// canvas. The layout validates by construction (disjoint partition).
func MaskToLayout(name string, f *grid.Field, pitchNM int) *Layout {
	return &Layout{
		Name:  name,
		W:     f.W * pitchNM,
		H:     f.H * pitchNM,
		Rects: VectorizeMask(f, pitchNM),
	}
}
