package geom

import (
	"math/rand"
	"testing"

	"lsopc/internal/grid"
)

func TestVectorizeSingleRect(t *testing.T) {
	f := grid.NewField(16, 16)
	for y := 3; y < 9; y++ {
		for x := 2; x < 12; x++ {
			f.Set(x, y, 1)
		}
	}
	rects := VectorizeMask(f, 1)
	if len(rects) != 1 {
		t.Fatalf("rect count %d, want 1", len(rects))
	}
	if rects[0] != (Rect{2, 3, 12, 9}) {
		t.Fatalf("rect %+v", rects[0])
	}
}

func TestVectorizePitchScaling(t *testing.T) {
	f := grid.NewField(8, 8)
	f.Set(2, 3, 1)
	rects := VectorizeMask(f, 4)
	if len(rects) != 1 || rects[0] != (Rect{8, 12, 12, 16}) {
		t.Fatalf("scaled rect %+v", rects)
	}
}

func TestVectorizeLShapeTwoRects(t *testing.T) {
	f := grid.NewField(16, 16)
	// Vertical arm 4 wide, full height 12; horizontal foot extends right.
	for y := 2; y < 14; y++ {
		for x := 2; x < 6; x++ {
			f.Set(x, y, 1)
		}
	}
	for y := 10; y < 14; y++ {
		for x := 6; x < 14; x++ {
			f.Set(x, y, 1)
		}
	}
	rects := VectorizeMask(f, 1)
	if len(rects) != 2 {
		t.Fatalf("L decomposition used %d rects, want 2", len(rects))
	}
}

func TestVectorizeEmptyAndFull(t *testing.T) {
	if rects := VectorizeMask(grid.NewField(8, 8), 1); len(rects) != 0 {
		t.Fatalf("empty mask produced %d rects", len(rects))
	}
	full := grid.NewField(8, 8)
	full.Fill(1)
	rects := VectorizeMask(full, 1)
	if len(rects) != 1 || rects[0] != (Rect{0, 0, 8, 8}) {
		t.Fatalf("full mask decomposition %+v", rects)
	}
}

func TestVectorizeRejectsBadPitch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad pitch accepted")
		}
	}()
	VectorizeMask(grid.NewField(4, 4), 0)
}

// TestVectorizeRoundTrip is the central property: rasterising the
// vectorised mask reproduces the original raster exactly, for random
// blobby masks.
func TestVectorizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		const n = 32
		f := grid.NewField(n, n)
		// Random union of rectangles and pixel noise.
		for r := 0; r < 4; r++ {
			x0, y0 := rng.Intn(n-6), rng.Intn(n-6)
			w, h := 1+rng.Intn(10), 1+rng.Intn(10)
			for y := y0; y < min(y0+h, n); y++ {
				for x := x0; x < min(x0+w, n); x++ {
					f.Set(x, y, 1)
				}
			}
		}
		for p := 0; p < 20; p++ {
			f.Set(rng.Intn(n), rng.Intn(n), 1)
		}

		layout := MaskToLayout("t", f, 1)
		if err := layout.Validate(); err != nil {
			t.Fatalf("trial %d: vectorised layout invalid: %v", trial, err)
		}
		back, err := Rasterize(layout, 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !back.Equal(f, 0) {
			t.Fatalf("trial %d: round trip differs", trial)
		}
		// Partition property: total rect area equals pixel count.
		area := 0
		for _, r := range layout.Rects {
			area += r.Area()
		}
		if area != int(f.Sum()) {
			t.Fatalf("trial %d: partition area %d vs %d pixels", trial, area, int(f.Sum()))
		}
	}
}

func TestVectorizeDisjointRects(t *testing.T) {
	f := grid.NewField(24, 24)
	// Checkerboard-ish pattern stressing run matching.
	for y := 0; y < 24; y++ {
		for x := 0; x < 24; x++ {
			if (x/3+y/2)%2 == 0 {
				f.Set(x, y, 1)
			}
		}
	}
	rects := VectorizeMask(f, 1)
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			if rects[i].Intersects(rects[j]) {
				t.Fatalf("rects %d and %d overlap", i, j)
			}
		}
	}
}
