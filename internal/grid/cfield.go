package grid

import (
	"fmt"
	"math"
	"math/cmplx"
)

// CField is a dense 2-D array of complex128 in row-major order, used for
// frequency-domain data and coherent field amplitudes.
type CField struct {
	W, H int
	Data []complex128
}

// NewCField allocates a zero-initialised w×h complex field.
func NewCField(w, h int) *CField {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid cfield size %dx%d", w, h))
	}
	return &CField{W: w, H: h, Data: make([]complex128, w*h)}
}

// NewCFieldLike allocates a zero complex field shaped like c.
func NewCFieldLike(c *CField) *CField { return NewCField(c.W, c.H) }

// Reshape reinterprets the field's backing storage as w×h. The element
// count must match the current storage exactly (see Field.Reshape).
func (c *CField) Reshape(w, h int) {
	if w <= 0 || h <= 0 || w*h != len(c.Data) {
		panic(fmt.Sprintf("grid: Reshape %dx%d does not match storage %d", w, h, len(c.Data)))
	}
	c.W, c.H = w, h
}

// Clone returns a deep copy of c.
func (c *CField) Clone() *CField {
	g := NewCField(c.W, c.H)
	copy(g.Data, c.Data)
	return g
}

// At returns the value at column x, row y.
func (c *CField) At(x, y int) complex128 { return c.Data[y*c.W+x] }

// Set stores v at column x, row y.
func (c *CField) Set(x, y int, v complex128) { c.Data[y*c.W+x] = v }

// Row returns row y aliasing the field's storage.
func (c *CField) Row(y int) []complex128 { return c.Data[y*c.W : (y+1)*c.W] }

// SameShape reports whether c and g have identical dimensions.
func (c *CField) SameShape(g *CField) bool { return c.W == g.W && c.H == g.H }

func (c *CField) mustMatch(g *CField, op string) {
	if !c.SameShape(g) {
		panic(fmt.Sprintf("grid: %s: shape mismatch %dx%d vs %dx%d", op, c.W, c.H, g.W, g.H))
	}
}

// Zero sets every element to 0.
func (c *CField) Zero() {
	for i := range c.Data {
		c.Data[i] = 0
	}
}

// CopyFrom copies g into c. Shapes must match.
func (c *CField) CopyFrom(g *CField) {
	c.mustMatch(g, "CopyFrom")
	copy(c.Data, g.Data)
}

// SetReal sets c to f with zero imaginary parts. Shapes must match.
func (c *CField) SetReal(f *Field) {
	if c.W != f.W || c.H != f.H {
		panic(fmt.Sprintf("grid: SetReal: shape mismatch %dx%d vs %dx%d", c.W, c.H, f.W, f.H))
	}
	for i, v := range f.Data {
		c.Data[i] = complex(v, 0)
	}
}

// Real writes the real parts of c into f. Shapes must match.
func (c *CField) Real(f *Field) {
	if c.W != f.W || c.H != f.H {
		panic(fmt.Sprintf("grid: Real: shape mismatch %dx%d vs %dx%d", c.W, c.H, f.W, f.H))
	}
	for i, v := range c.Data {
		f.Data[i] = real(v)
	}
}

// Mul sets c = a ⊙ b element-wise.
func (c *CField) Mul(a, b *CField) {
	c.mustMatch(a, "Mul")
	c.mustMatch(b, "Mul")
	for i := range c.Data {
		c.Data[i] = a.Data[i] * b.Data[i]
	}
}

// MulConj sets c = a ⊙ conj(b) element-wise.
func (c *CField) MulConj(a, b *CField) {
	c.mustMatch(a, "MulConj")
	c.mustMatch(b, "MulConj")
	for i := range c.Data {
		c.Data[i] = a.Data[i] * cmplx.Conj(b.Data[i])
	}
}

// Add sets c = a + b element-wise.
func (c *CField) Add(a, b *CField) {
	c.mustMatch(a, "Add")
	c.mustMatch(b, "Add")
	for i := range c.Data {
		c.Data[i] = a.Data[i] + b.Data[i]
	}
}

// AddScaled sets c = c + s·a.
func (c *CField) AddScaled(a *CField, s complex128) {
	c.mustMatch(a, "AddScaled")
	for i := range c.Data {
		c.Data[i] += s * a.Data[i]
	}
}

// Scale sets c = s·a.
func (c *CField) Scale(a *CField, s complex128) {
	c.mustMatch(a, "Scale")
	for i := range c.Data {
		c.Data[i] = s * a.Data[i]
	}
}

// Conj sets c = conj(a).
func (c *CField) Conj(a *CField) {
	c.mustMatch(a, "Conj")
	for i := range c.Data {
		c.Data[i] = cmplx.Conj(a.Data[i])
	}
}

// AbsSqInto writes |c|² element-wise into f.
func (c *CField) AbsSqInto(f *Field) {
	if c.W != f.W || c.H != f.H {
		panic(fmt.Sprintf("grid: AbsSqInto: shape mismatch %dx%d vs %dx%d", c.W, c.H, f.W, f.H))
	}
	for i, v := range c.Data {
		re, im := real(v), imag(v)
		f.Data[i] = re*re + im*im
	}
}

// AccumAbsSq adds w·|c|² element-wise into f, fusing the per-kernel
// intensity accumulation of the SOCS sum (Eq. 1).
func (c *CField) AccumAbsSq(f *Field, w float64) {
	if c.W != f.W || c.H != f.H {
		panic(fmt.Sprintf("grid: AccumAbsSq: shape mismatch %dx%d vs %dx%d", c.W, c.H, f.W, f.H))
	}
	for i, v := range c.Data {
		re, im := real(v), imag(v)
		f.Data[i] += w * (re*re + im*im)
	}
}

// Norm2 returns Σ |c|².
func (c *CField) Norm2() float64 {
	var s float64
	for _, v := range c.Data {
		re, im := real(v), imag(v)
		s += re*re + im*im
	}
	return s
}

// MaxAbs returns max |c(x,y)|.
func (c *CField) MaxAbs() float64 {
	var m float64
	for _, v := range c.Data {
		if a := cmplx.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// FlipInto writes the index-reversed field a(-x mod W, -y mod H) into c.
// In the frequency domain this realises spectrum(flip(h)), the adjoint
// ("†") kernel used by the ILT gradient (Eq. 11).
func (c *CField) FlipInto(a *CField) {
	c.mustMatch(a, "FlipInto")
	if c == a {
		panic("grid: FlipInto: receiver must not alias the source")
	}
	for y := 0; y < c.H; y++ {
		fy := (c.H - y) % c.H
		src := a.Row(y)
		for x := 0; x < c.W; x++ {
			fx := (c.W - x) % c.W
			c.Data[fy*c.W+fx] = src[x]
		}
	}
}

// Equal reports whether c and g have the same shape and all elements
// are within tol of each other (in modulus of the difference).
func (c *CField) Equal(g *CField, tol float64) bool {
	if !c.SameShape(g) {
		return false
	}
	for i := range c.Data {
		if cmplx.Abs(c.Data[i]-g.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String summarises the complex field for debugging.
func (c *CField) String() string {
	return fmt.Sprintf("CField(%dx%d, maxAbs=%g, energy=%g)", c.W, c.H, c.MaxAbs(), c.Norm2())
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two ≥ n.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
		if p <= 0 {
			panic("grid: NextPow2 overflow")
		}
	}
	return p
}

// Lerp linearly interpolates between a and b by t∈[0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 { return math.Min(math.Max(v, lo), hi) }
