package grid

import "fmt"

// CField32 is the reduced-precision twin of CField: a dense 2-D array of
// complex64 in row-major order, used by the opt-in float32 spectral fast
// path. Only the per-kernel coherent-field batches — the
// bandwidth-bound bulk of the SOCS forward model — are held at 32-bit
// precision; kernel coefficients, reductions and gradients stay
// float64, so conversion happens exactly once on each side of the
// batched transforms.
type CField32 struct {
	W, H int
	Data []complex64
}

// NewCField32 allocates a zero-initialised w×h complex64 field.
func NewCField32(w, h int) *CField32 {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid cfield32 size %dx%d", w, h))
	}
	return &CField32{W: w, H: h, Data: make([]complex64, w*h)}
}

// Reshape reinterprets the field's backing storage as w×h. The element
// count must match the current storage exactly (see Field.Reshape).
func (c *CField32) Reshape(w, h int) {
	if w <= 0 || h <= 0 || w*h != len(c.Data) {
		panic(fmt.Sprintf("grid: Reshape %dx%d does not match storage %d", w, h, len(c.Data)))
	}
	c.W, c.H = w, h
}

// At returns the value at column x, row y.
func (c *CField32) At(x, y int) complex64 { return c.Data[y*c.W+x] }

// Set stores v at column x, row y.
func (c *CField32) Set(x, y int, v complex64) { c.Data[y*c.W+x] = v }

// Row returns row y aliasing the field's storage.
func (c *CField32) Row(y int) []complex64 { return c.Data[y*c.W : (y+1)*c.W] }

// SameShape reports whether c and g have identical dimensions.
func (c *CField32) SameShape(g *CField32) bool { return c.W == g.W && c.H == g.H }

// Zero sets every element to 0.
func (c *CField32) Zero() {
	for i := range c.Data {
		c.Data[i] = 0
	}
}

// SetFrom rounds the complex128 field g down into c. Shapes must match.
func (c *CField32) SetFrom(g *CField) {
	if c.W != g.W || c.H != g.H {
		panic(fmt.Sprintf("grid: SetFrom: shape mismatch %dx%d vs %dx%d", c.W, c.H, g.W, g.H))
	}
	for i, v := range g.Data {
		c.Data[i] = complex(float32(real(v)), float32(imag(v)))
	}
}

// Widen writes c into the complex128 field g exactly (float32 values
// embed losslessly in float64). Shapes must match.
func (c *CField32) Widen(g *CField) {
	if c.W != g.W || c.H != g.H {
		panic(fmt.Sprintf("grid: Widen: shape mismatch %dx%d vs %dx%d", c.W, c.H, g.W, g.H))
	}
	for i, v := range c.Data {
		g.Data[i] = complex(float64(real(v)), float64(imag(v)))
	}
}

// AccumAbsSq adds w·|c|² element-wise into f, accumulating in float64 so
// the SOCS intensity sum (Eq. 1) keeps double-precision reduction even
// on the float32 path.
func (c *CField32) AccumAbsSq(f *Field, w float64) {
	if c.W != f.W || c.H != f.H {
		panic(fmt.Sprintf("grid: AccumAbsSq: shape mismatch %dx%d vs %dx%d", c.W, c.H, f.W, f.H))
	}
	for i, v := range c.Data {
		re, im := float64(real(v)), float64(imag(v))
		f.Data[i] += w * (re*re + im*im)
	}
}
