package grid

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestCFieldBasics(t *testing.T) {
	c := NewCField(3, 2)
	c.Set(2, 1, 1+2i)
	if c.At(2, 1) != 1+2i {
		t.Fatalf("At = %v", c.At(2, 1))
	}
	if c.Data[5] != 1+2i {
		t.Fatal("row-major layout violated")
	}
	r := c.Row(1)
	r[0] = 3i
	if c.At(0, 1) != 3i {
		t.Fatal("Row must alias storage")
	}
}

func TestCFieldSetRealRealRoundTrip(t *testing.T) {
	f := FieldFromData(2, 2, []float64{1, -2, 3, 0.5})
	c := NewCField(2, 2)
	c.SetReal(f)
	g := NewField(2, 2)
	c.Real(g)
	if !f.Equal(g, 0) {
		t.Fatalf("SetReal/Real round trip failed: %v vs %v", f.Data, g.Data)
	}
	for _, v := range c.Data {
		if imag(v) != 0 {
			t.Fatal("SetReal must zero imaginary parts")
		}
	}
}

func TestCFieldMulAndConj(t *testing.T) {
	a := NewCField(2, 1)
	b := NewCField(2, 1)
	a.Data[0], a.Data[1] = 1+1i, 2
	b.Data[0], b.Data[1] = 3i, 1-1i

	c := NewCField(2, 1)
	c.Mul(a, b)
	if c.Data[0] != (1+1i)*3i || c.Data[1] != 2*(1-1i) {
		t.Fatalf("Mul = %v", c.Data)
	}
	c.MulConj(a, b)
	if c.Data[0] != (1+1i)*cmplx.Conj(3i) || c.Data[1] != 2*cmplx.Conj(1-1i) {
		t.Fatalf("MulConj = %v", c.Data)
	}
	c.Conj(a)
	if c.Data[0] != 1-1i {
		t.Fatalf("Conj = %v", c.Data)
	}
}

func TestCFieldAddScale(t *testing.T) {
	a := NewCField(2, 1)
	a.Data[0], a.Data[1] = 1, 2i
	b := NewCField(2, 1)
	b.Data[0], b.Data[1] = 1i, 1

	c := NewCField(2, 1)
	c.Add(a, b)
	if c.Data[0] != 1+1i || c.Data[1] != 1+2i {
		t.Fatalf("Add = %v", c.Data)
	}
	c.Scale(a, 2i)
	if c.Data[0] != 2i || c.Data[1] != -4 {
		t.Fatalf("Scale = %v", c.Data)
	}
	c.AddScaled(b, 1) // c += b
	if c.Data[0] != 3i || c.Data[1] != -3 {
		t.Fatalf("AddScaled = %v", c.Data)
	}
}

func TestAbsSqAndAccum(t *testing.T) {
	c := NewCField(2, 1)
	c.Data[0], c.Data[1] = 3+4i, 1i
	f := NewField(2, 1)
	c.AbsSqInto(f)
	if f.Data[0] != 25 || f.Data[1] != 1 {
		t.Fatalf("AbsSqInto = %v", f.Data)
	}
	c.AccumAbsSq(f, 2) // f += 2|c|²
	if f.Data[0] != 75 || f.Data[1] != 3 {
		t.Fatalf("AccumAbsSq = %v", f.Data)
	}
	if got := c.Norm2(); got != 26 {
		t.Fatalf("Norm2 = %g, want 26", got)
	}
	if got := c.MaxAbs(); got != 5 {
		t.Fatalf("MaxAbs = %g, want 5", got)
	}
}

func TestFlipInto(t *testing.T) {
	a := NewCField(4, 4)
	for i := range a.Data {
		a.Data[i] = complex(float64(i), 0)
	}
	b := NewCField(4, 4)
	b.FlipInto(a)
	// Flip fixes the origin and maps (x,y) -> (-x mod W, -y mod H).
	if b.At(0, 0) != a.At(0, 0) {
		t.Fatal("flip must fix origin")
	}
	if b.At(1, 0) != a.At(3, 0) || b.At(0, 1) != a.At(0, 3) || b.At(2, 3) != a.At(2, 1) {
		t.Fatal("flip mapping wrong")
	}
	// Double flip is the identity.
	c := NewCField(4, 4)
	c.FlipInto(b)
	if !c.Equal(a, 0) {
		t.Fatal("double flip must be identity")
	}
}

func TestFlipIntoRejectsAliasing(t *testing.T) {
	a := NewCField(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("FlipInto(self) did not panic")
		}
	}()
	a.FlipInto(a)
}

func TestCFieldEqual(t *testing.T) {
	a := NewCField(2, 1)
	b := NewCField(2, 1)
	a.Data[0] = 1
	b.Data[0] = 1 + 1e-9i
	if !a.Equal(b, 1e-6) {
		t.Fatal("Equal should accept tiny difference")
	}
	if a.Equal(b, 1e-12) {
		t.Fatal("Equal should reject difference above tol")
	}
}

func TestPow2Helpers(t *testing.T) {
	for _, tc := range []struct {
		n    int
		is   bool
		next int
	}{
		{1, true, 1}, {2, true, 2}, {3, false, 4}, {4, true, 4},
		{5, false, 8}, {1023, false, 1024}, {1024, true, 1024},
	} {
		if got := IsPow2(tc.n); got != tc.is {
			t.Errorf("IsPow2(%d) = %v", tc.n, got)
		}
		if got := NextPow2(tc.n); got != tc.next {
			t.Errorf("NextPow2(%d) = %d, want %d", tc.n, got, tc.next)
		}
	}
	if IsPow2(0) || IsPow2(-4) {
		t.Error("IsPow2 must reject non-positive values")
	}
}

func TestClampLerp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
	if Lerp(0, 10, 0.25) != 2.5 {
		t.Fatal("Lerp wrong")
	}
}

// Property: MulConj then Norm2 equals product of norms for aligned inputs
// (Cauchy-Schwarz equality case), and flip preserves energy.
func TestFlipPreservesEnergy(t *testing.T) {
	prop := func(vals [8]float64) bool {
		a := NewCField(2, 2)
		for i := 0; i < 4; i++ {
			re, im := vals[2*i], vals[2*i+1]
			if math.IsNaN(re) || math.IsInf(re, 0) {
				re = 0
			}
			if math.IsNaN(im) || math.IsInf(im, 0) {
				im = 0
			}
			a.Data[i] = complex(math.Mod(re, 1e3), math.Mod(im, 1e3))
		}
		b := NewCField(2, 2)
		b.FlipInto(a)
		return math.Abs(a.Norm2()-b.Norm2()) <= 1e-9*(1+a.Norm2())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
