// Package grid provides dense 2-D scalar fields (real and complex) and
// the fused element-wise operations the lithography pipeline is built
// on. Fields are stored row-major in a single backing slice so they can
// be processed linearly, sliced into rows without copying, and handed to
// the FFT engine as contiguous memory.
//
// All coordinates follow image convention: x is the column index,
// y the row index, and element (x, y) lives at Data[y*W+x].
package grid

import (
	"fmt"
	"math"
)

// Field is a dense 2-D array of float64 in row-major order.
//
// The zero value is an empty field; use NewField to allocate one.
// Methods with a destination receiver overwrite the receiver and are
// safe to call with the receiver aliasing one of the operands.
type Field struct {
	W, H int
	Data []float64
}

// NewField allocates a zero-initialised w×h field.
// It panics if either dimension is not positive.
func NewField(w, h int) *Field {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid field size %dx%d", w, h))
	}
	return &Field{W: w, H: h, Data: make([]float64, w*h)}
}

// NewFieldLike allocates a zero field with the same shape as f.
func NewFieldLike(f *Field) *Field { return NewField(f.W, f.H) }

// FieldFromData wraps an existing slice as a w×h field without copying.
// It panics if len(data) != w*h.
func FieldFromData(w, h int, data []float64) *Field {
	if len(data) != w*h {
		panic(fmt.Sprintf("grid: data length %d does not match %dx%d", len(data), w, h))
	}
	return &Field{W: w, H: h, Data: data}
}

// Reshape reinterprets the field's backing storage as w×h. The element
// count must match the current storage exactly — this is the pool hook
// that lets area-keyed free lists serve any same-area shape without
// reallocating.
func (f *Field) Reshape(w, h int) {
	if w <= 0 || h <= 0 || w*h != len(f.Data) {
		panic(fmt.Sprintf("grid: Reshape %dx%d does not match storage %d", w, h, len(f.Data)))
	}
	f.W, f.H = w, h
}

// Clone returns a deep copy of f.
func (f *Field) Clone() *Field {
	g := NewField(f.W, f.H)
	copy(g.Data, f.Data)
	return g
}

// At returns the value at column x, row y.
func (f *Field) At(x, y int) float64 { return f.Data[y*f.W+x] }

// Set stores v at column x, row y.
func (f *Field) Set(x, y int, v float64) { f.Data[y*f.W+x] = v }

// Idx returns the linear index of (x, y).
func (f *Field) Idx(x, y int) int { return y*f.W + x }

// Row returns row y as a slice aliasing the field's storage.
func (f *Field) Row(y int) []float64 { return f.Data[y*f.W : (y+1)*f.W] }

// SameShape reports whether f and g have identical dimensions.
func (f *Field) SameShape(g *Field) bool { return f.W == g.W && f.H == g.H }

func (f *Field) mustMatch(g *Field, op string) {
	if !f.SameShape(g) {
		panic(fmt.Sprintf("grid: %s: shape mismatch %dx%d vs %dx%d", op, f.W, f.H, g.W, g.H))
	}
}

// Fill sets every element to v.
func (f *Field) Fill(v float64) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// Zero sets every element to 0.
func (f *Field) Zero() { f.Fill(0) }

// CopyFrom copies g into f. Shapes must match.
func (f *Field) CopyFrom(g *Field) {
	f.mustMatch(g, "CopyFrom")
	copy(f.Data, g.Data)
}

// Add sets f = a + b element-wise.
func (f *Field) Add(a, b *Field) {
	f.mustMatch(a, "Add")
	f.mustMatch(b, "Add")
	for i := range f.Data {
		f.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub sets f = a - b element-wise.
func (f *Field) Sub(a, b *Field) {
	f.mustMatch(a, "Sub")
	f.mustMatch(b, "Sub")
	for i := range f.Data {
		f.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Mul sets f = a ⊙ b (Hadamard product).
func (f *Field) Mul(a, b *Field) {
	f.mustMatch(a, "Mul")
	f.mustMatch(b, "Mul")
	for i := range f.Data {
		f.Data[i] = a.Data[i] * b.Data[i]
	}
}

// Scale sets f = s·a.
func (f *Field) Scale(a *Field, s float64) {
	f.mustMatch(a, "Scale")
	for i := range f.Data {
		f.Data[i] = s * a.Data[i]
	}
}

// AddScaled sets f = f + s·a (axpy).
func (f *Field) AddScaled(a *Field, s float64) {
	f.mustMatch(a, "AddScaled")
	for i := range f.Data {
		f.Data[i] += s * a.Data[i]
	}
}

// Dot returns the inner product Σ f⊙g.
func (f *Field) Dot(g *Field) float64 {
	f.mustMatch(g, "Dot")
	var s float64
	for i := range f.Data {
		s += f.Data[i] * g.Data[i]
	}
	return s
}

// Sum returns Σ f.
func (f *Field) Sum() float64 {
	var s float64
	for _, v := range f.Data {
		s += v
	}
	return s
}

// Norm2 returns the squared Frobenius norm ‖f‖².
func (f *Field) Norm2() float64 { return f.Dot(f) }

// Norm returns the Frobenius norm ‖f‖.
func (f *Field) Norm() float64 { return math.Sqrt(f.Norm2()) }

// MaxAbs returns max |f(x,y)|.
func (f *Field) MaxAbs() float64 {
	var m float64
	for _, v := range f.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// MinMax returns the minimum and maximum element values.
func (f *Field) MinMax() (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range f.Data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// CountAbove returns the number of elements strictly greater than t.
func (f *Field) CountAbove(t float64) int {
	n := 0
	for _, v := range f.Data {
		if v > t {
			n++
		}
	}
	return n
}

// Threshold sets f(x,y) = 1 where a(x,y) ≥ t and 0 elsewhere
// (the constant-threshold resist model, Eq. 2 of the paper).
func (f *Field) Threshold(a *Field, t float64) {
	f.mustMatch(a, "Threshold")
	for i, v := range a.Data {
		if v >= t {
			f.Data[i] = 1
		} else {
			f.Data[i] = 0
		}
	}
}

// Sigmoid sets f = 1/(1+exp(-s·(a-t))), the differentiable resist model
// (Eq. 8 of the paper) with steepness s and threshold t.
func (f *Field) Sigmoid(a *Field, s, t float64) {
	f.mustMatch(a, "Sigmoid")
	for i, v := range a.Data {
		f.Data[i] = 1 / (1 + math.Exp(-s*(v-t)))
	}
}

// XORCount returns the number of positions where exactly one of f, g is
// nonzero, treating any value > 0.5 as set. This is the PV-band area
// when f and g are binary printed images.
func (f *Field) XORCount(g *Field) int {
	f.mustMatch(g, "XORCount")
	n := 0
	for i := range f.Data {
		a := f.Data[i] > 0.5
		b := g.Data[i] > 0.5
		if a != b {
			n++
		}
	}
	return n
}

// Binarize sets f(x,y) = 1 where a(x,y) > 0.5, else 0.
func (f *Field) Binarize(a *Field) { f.Threshold(a, 0.5) }

// SubRegion copies the w×h window of f whose top-left corner is (x0,y0)
// into a new field. It panics if the window exceeds the field bounds.
func (f *Field) SubRegion(x0, y0, w, h int) *Field {
	if x0 < 0 || y0 < 0 || x0+w > f.W || y0+h > f.H {
		panic(fmt.Sprintf("grid: SubRegion [%d,%d,%d,%d] out of %dx%d", x0, y0, w, h, f.W, f.H))
	}
	out := NewField(w, h)
	for y := 0; y < h; y++ {
		copy(out.Row(y), f.Row(y0 + y)[x0:x0+w])
	}
	return out
}

// InsertRegion copies g into f with g's top-left corner at (x0, y0).
// It panics if g does not fit.
func (f *Field) InsertRegion(g *Field, x0, y0 int) {
	if x0 < 0 || y0 < 0 || x0+g.W > f.W || y0+g.H > f.H {
		panic(fmt.Sprintf("grid: InsertRegion %dx%d at (%d,%d) out of %dx%d", g.W, g.H, x0, y0, f.W, f.H))
	}
	for y := 0; y < g.H; y++ {
		copy(f.Row(y0 + y)[x0:x0+g.W], g.Row(y))
	}
}

// Downsample returns the field reduced by integer factor k using k×k
// box averaging. Dimensions must be divisible by k.
func (f *Field) Downsample(k int) *Field {
	if k <= 0 || f.W%k != 0 || f.H%k != 0 {
		panic(fmt.Sprintf("grid: Downsample factor %d does not divide %dx%d", k, f.W, f.H))
	}
	out := NewField(f.W/k, f.H/k)
	inv := 1 / float64(k*k)
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			var s float64
			for dy := 0; dy < k; dy++ {
				row := f.Row(y*k + dy)
				for dx := 0; dx < k; dx++ {
					s += row[x*k+dx]
				}
			}
			out.Set(x, y, s*inv)
		}
	}
	return out
}

// Equal reports whether f and g have the same shape and every element
// differs by at most tol.
func (f *Field) Equal(g *Field, tol float64) bool {
	if !f.SameShape(g) {
		return false
	}
	for i := range f.Data {
		if math.Abs(f.Data[i]-g.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String summarises the field for debugging.
func (f *Field) String() string {
	min, max := f.MinMax()
	return fmt.Sprintf("Field(%dx%d, min=%g, max=%g)", f.W, f.H, min, max)
}
