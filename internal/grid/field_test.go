package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFieldZeroed(t *testing.T) {
	f := NewField(4, 3)
	if f.W != 4 || f.H != 3 || len(f.Data) != 12 {
		t.Fatalf("unexpected shape: %v", f)
	}
	for i, v := range f.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %g", i, v)
		}
	}
}

func TestNewFieldPanicsOnBadSize(t *testing.T) {
	for _, dims := range [][2]int{{0, 4}, {4, 0}, {-1, 2}, {2, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewField(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewField(dims[0], dims[1])
		}()
	}
}

func TestAtSetRowMajor(t *testing.T) {
	f := NewField(3, 2)
	f.Set(2, 1, 7)
	if f.At(2, 1) != 7 {
		t.Fatalf("At(2,1) = %g, want 7", f.At(2, 1))
	}
	if f.Data[1*3+2] != 7 {
		t.Fatalf("row-major layout violated: %v", f.Data)
	}
	if f.Idx(2, 1) != 5 {
		t.Fatalf("Idx(2,1) = %d, want 5", f.Idx(2, 1))
	}
}

func TestRowAliases(t *testing.T) {
	f := NewField(4, 4)
	r := f.Row(2)
	r[1] = 9
	if f.At(1, 2) != 9 {
		t.Fatal("Row must alias storage")
	}
}

func TestArithmetic(t *testing.T) {
	a := FieldFromData(2, 2, []float64{1, 2, 3, 4})
	b := FieldFromData(2, 2, []float64{10, 20, 30, 40})
	c := NewField(2, 2)

	c.Add(a, b)
	want := []float64{11, 22, 33, 44}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("Add[%d] = %g, want %g", i, c.Data[i], want[i])
		}
	}
	c.Sub(b, a)
	want = []float64{9, 18, 27, 36}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("Sub[%d] = %g, want %g", i, c.Data[i], want[i])
		}
	}
	c.Mul(a, b)
	want = []float64{10, 40, 90, 160}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("Mul[%d] = %g, want %g", i, c.Data[i], want[i])
		}
	}
	c.Scale(a, 3)
	want = []float64{3, 6, 9, 12}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("Scale[%d] = %g, want %g", i, c.Data[i], want[i])
		}
	}
	c.AddScaled(a, 2) // c = 3a + 2a = 5a
	want = []float64{5, 10, 15, 20}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("AddScaled[%d] = %g, want %g", i, c.Data[i], want[i])
		}
	}
}

func TestArithmeticAliasingSafe(t *testing.T) {
	a := FieldFromData(2, 2, []float64{1, 2, 3, 4})
	a.Add(a, a)
	want := []float64{2, 4, 6, 8}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("self Add[%d] = %g, want %g", i, a.Data[i], want[i])
		}
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a := NewField(2, 2)
	b := NewField(3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes did not panic")
		}
	}()
	a.Add(a, b)
}

func TestNorms(t *testing.T) {
	f := FieldFromData(2, 2, []float64{3, 4, 0, 0})
	if got := f.Norm2(); got != 25 {
		t.Fatalf("Norm2 = %g, want 25", got)
	}
	if got := f.Norm(); got != 5 {
		t.Fatalf("Norm = %g, want 5", got)
	}
	if got := f.Sum(); got != 7 {
		t.Fatalf("Sum = %g, want 7", got)
	}
	if got := f.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %g, want 4", got)
	}
	g := FieldFromData(2, 2, []float64{1, 1, 1, 1})
	if got := f.Dot(g); got != 7 {
		t.Fatalf("Dot = %g, want 7", got)
	}
}

func TestMinMax(t *testing.T) {
	f := FieldFromData(3, 1, []float64{-2, 5, 1})
	min, max := f.MinMax()
	if min != -2 || max != 5 {
		t.Fatalf("MinMax = (%g,%g), want (-2,5)", min, max)
	}
}

func TestThresholdAndSigmoid(t *testing.T) {
	a := FieldFromData(3, 1, []float64{0.1, 0.225, 0.9})
	r := NewField(3, 1)
	r.Threshold(a, 0.225)
	if r.Data[0] != 0 || r.Data[1] != 1 || r.Data[2] != 1 {
		t.Fatalf("Threshold = %v", r.Data)
	}

	// Sigmoid must be 0.5 exactly at the threshold and approach the
	// step function as steepness grows.
	r.Sigmoid(a, 50, 0.225)
	if math.Abs(r.Data[1]-0.5) > 1e-12 {
		t.Fatalf("sigmoid at threshold = %g, want 0.5", r.Data[1])
	}
	if r.Data[0] > 0.01 || r.Data[2] < 0.99 {
		t.Fatalf("steep sigmoid should saturate: %v", r.Data)
	}
}

func TestSigmoidMonotoneProperty(t *testing.T) {
	prop := func(a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		in := FieldFromData(2, 1, []float64{lo, hi})
		out := NewField(2, 1)
		out.Sigmoid(in, 25, 0.225)
		return out.Data[0] <= out.Data[1] &&
			out.Data[0] >= 0 && out.Data[1] <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestXORCount(t *testing.T) {
	a := FieldFromData(4, 1, []float64{1, 0, 1, 0})
	b := FieldFromData(4, 1, []float64{1, 1, 0, 0})
	if got := a.XORCount(b); got != 2 {
		t.Fatalf("XORCount = %d, want 2", got)
	}
	if got := a.XORCount(a); got != 0 {
		t.Fatalf("self XORCount = %d, want 0", got)
	}
}

func TestCountAbove(t *testing.T) {
	f := FieldFromData(4, 1, []float64{0, 0.5, 0.6, 1})
	if got := f.CountAbove(0.5); got != 2 {
		t.Fatalf("CountAbove = %d, want 2", got)
	}
}

func TestSubInsertRegionRoundTrip(t *testing.T) {
	f := NewField(8, 8)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	sub := f.SubRegion(2, 3, 4, 2)
	if sub.W != 4 || sub.H != 2 {
		t.Fatalf("SubRegion shape %dx%d", sub.W, sub.H)
	}
	if sub.At(0, 0) != f.At(2, 3) || sub.At(3, 1) != f.At(5, 4) {
		t.Fatal("SubRegion copied wrong data")
	}
	g := NewField(8, 8)
	g.InsertRegion(sub, 2, 3)
	if g.At(2, 3) != f.At(2, 3) || g.At(5, 4) != f.At(5, 4) {
		t.Fatal("InsertRegion did not restore data")
	}
	if g.At(0, 0) != 0 {
		t.Fatal("InsertRegion touched data outside region")
	}
}

func TestSubRegionOutOfBoundsPanics(t *testing.T) {
	f := NewField(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds SubRegion did not panic")
		}
	}()
	f.SubRegion(2, 2, 4, 4)
}

func TestDownsampleBoxAverage(t *testing.T) {
	f := FieldFromData(4, 2, []float64{
		1, 3, 5, 7,
		1, 3, 5, 7,
	})
	d := f.Downsample(2)
	if d.W != 2 || d.H != 1 {
		t.Fatalf("Downsample shape %dx%d", d.W, d.H)
	}
	if d.At(0, 0) != 2 || d.At(1, 0) != 6 {
		t.Fatalf("Downsample values %v", d.Data)
	}
}

func TestDownsamplePreservesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := NewField(16, 16)
	for i := range f.Data {
		f.Data[i] = rng.Float64()
	}
	d := f.Downsample(4)
	meanF := f.Sum() / float64(len(f.Data))
	meanD := d.Sum() / float64(len(d.Data))
	if math.Abs(meanF-meanD) > 1e-12 {
		t.Fatalf("box downsample changed mean: %g vs %g", meanF, meanD)
	}
}

func TestCloneIndependent(t *testing.T) {
	f := NewField(2, 2)
	g := f.Clone()
	g.Data[0] = 5
	if f.Data[0] != 0 {
		t.Fatal("Clone shares storage")
	}
}

func TestEqualTolerance(t *testing.T) {
	a := FieldFromData(2, 1, []float64{1, 2})
	b := FieldFromData(2, 1, []float64{1.0005, 2})
	if !a.Equal(b, 1e-3) {
		t.Fatal("Equal should accept within tolerance")
	}
	if a.Equal(b, 1e-6) {
		t.Fatal("Equal should reject beyond tolerance")
	}
	c := NewField(1, 2)
	if a.Equal(c, 1) {
		t.Fatal("Equal must reject shape mismatch")
	}
}

func TestFieldFromDataPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FieldFromData with wrong length did not panic")
		}
	}()
	FieldFromData(2, 2, []float64{1, 2, 3})
}

func TestFillZeroCopyFrom(t *testing.T) {
	f := NewField(2, 2)
	f.Fill(3)
	if f.Sum() != 12 {
		t.Fatalf("Fill: sum = %g", f.Sum())
	}
	g := NewField(2, 2)
	g.CopyFrom(f)
	if g.Sum() != 12 {
		t.Fatal("CopyFrom failed")
	}
	f.Zero()
	if f.Sum() != 0 {
		t.Fatal("Zero failed")
	}
	if g.Sum() != 12 {
		t.Fatal("CopyFrom must deep-copy")
	}
}

// Property: Dot is bilinear and Norm2 = Dot(self).
func TestDotProperties(t *testing.T) {
	prop := func(vals [6]float64, s float64) bool {
		if math.Abs(s) > 1e6 {
			s = math.Mod(s, 1e6)
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				vals[i] = math.Mod(v, 1e3)
				if math.IsNaN(vals[i]) {
					vals[i] = 1
				}
			}
		}
		a := FieldFromData(3, 1, vals[:3])
		b := FieldFromData(3, 1, vals[3:])
		c := NewField(3, 1)
		c.Scale(b, s)
		lhs := a.Dot(c)
		rhs := s * a.Dot(b)
		return math.Abs(lhs-rhs) <= 1e-6*(1+math.Abs(rhs))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringSummaries(t *testing.T) {
	f := FieldFromData(2, 1, []float64{-1, 2})
	if got := f.String(); got != "Field(2x1, min=-1, max=2)" {
		t.Fatalf("Field.String = %q", got)
	}
	c := NewCField(2, 1)
	if got := c.String(); got == "" {
		t.Fatal("CField.String empty")
	}
}

func TestNewFieldLike(t *testing.T) {
	f := NewField(3, 5)
	g := NewFieldLike(f)
	if g.W != 3 || g.H != 5 || g.Sum() != 0 {
		t.Fatalf("NewFieldLike shape %dx%d", g.W, g.H)
	}
	c := NewCField(4, 2)
	d := NewCFieldLike(c)
	if d.W != 4 || d.H != 2 {
		t.Fatal("NewCFieldLike shape wrong")
	}
}
