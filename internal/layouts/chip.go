package layouts

import (
	"fmt"

	"lsopc/internal/geom"
)

// EmptyCell is the Chip cell id marking an unoccupied slot. Real chips
// are sparse; empty slots let the composed benchmarks reflect that
// (tiles covering them are skipped by the tiled optimizer, while a
// monolithic window still pays for the whole canvas).
const EmptyCell = "-"

// Chip composes benchmark cells into an nx×ny cell array on a single
// chip-scale canvas of (nx·CanvasNM)×(ny·CanvasNM) nm — the synthetic
// "full-chip" layouts the tiled optimizer is benchmarked on, since the
// ICCAD clips themselves are all single-window. Cells are assigned
// deterministically in row-major order, cycling through cellIDs; the
// id "-" (EmptyCell) leaves its slot unoccupied, and an empty cellIDs
// uses every benchmark in contest order. Each cell's geometry is
// translated verbatim onto its slot, so the chip's pattern area is the
// exact sum of the placed cells' Table-I areas.
func Chip(nx, ny int, cellIDs []string) (*geom.Layout, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("layouts: chip array %dx%d must be at least 1x1", nx, ny)
	}
	if len(cellIDs) == 0 {
		cellIDs = IDs()
	}
	cells := make([]*geom.Layout, len(cellIDs))
	occupied := false
	for i, id := range cellIDs {
		if id == EmptyCell {
			continue
		}
		spec, err := ByID(id)
		if err != nil {
			return nil, err
		}
		l, err := spec.Build()
		if err != nil {
			return nil, err
		}
		cells[i] = l
		occupied = true
	}
	if !occupied {
		return nil, fmt.Errorf("layouts: chip %dx%d has no occupied cells", nx, ny)
	}

	chip := &geom.Layout{
		Name: fmt.Sprintf("chip_%dx%d", nx, ny),
		W:    nx * CanvasNM,
		H:    ny * CanvasNM,
	}
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			cell := cells[(iy*nx+ix)%len(cells)]
			if cell == nil {
				continue
			}
			dx, dy := ix*CanvasNM, iy*CanvasNM
			for _, r := range cell.Rects {
				chip.Rects = append(chip.Rects, geom.Rect{
					X0: r.X0 + dx, Y0: r.Y0 + dy, X1: r.X1 + dx, Y1: r.Y1 + dy,
				})
			}
			for _, p := range cell.Polys {
				pts := make([]geom.Point, len(p.Pts))
				for i, pt := range p.Pts {
					pts[i] = geom.Point{X: pt.X + dx, Y: pt.Y + dy}
				}
				chip.Polys = append(chip.Polys, geom.NewPolygon(pts...))
			}
		}
	}
	if err := chip.Validate(); err != nil {
		return nil, fmt.Errorf("layouts: chip %dx%d: %w", nx, ny, err)
	}
	return chip, nil
}
