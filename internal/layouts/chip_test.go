package layouts

import "testing"

func TestChipComposition(t *testing.T) {
	chip, err := Chip(2, 2, []string{"B1", "B4"})
	if err != nil {
		t.Fatal(err)
	}
	if chip.W != 2*CanvasNM || chip.H != 2*CanvasNM {
		t.Fatalf("chip canvas %dx%d, want %d square", chip.W, chip.H, 2*CanvasNM)
	}
	// Row-major cycling B1,B4,B1,B4: area is the exact sum.
	b1, _ := ByID("B1")
	b4, _ := ByID("B4")
	if got, want := chip.Area(), 2*b1.PatternArea+2*b4.PatternArea; got != want {
		t.Fatalf("chip area %d, want %d", got, want)
	}
	if err := chip.Validate(); err != nil {
		t.Fatal(err)
	}
	if chip.Name != "chip_2x2" {
		t.Fatalf("name %q", chip.Name)
	}
}

func TestChipDefaultsToAllBenchmarks(t *testing.T) {
	chip, err := Chip(5, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, s := range All() {
		want += s.PatternArea
	}
	if got := chip.Area(); got != want {
		t.Fatalf("5x2 chip area %d, want sum of all ten benchmarks %d", got, want)
	}
}

func TestChipDeterministic(t *testing.T) {
	a, err := Chip(3, 1, []string{"B2", "B7"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chip(3, 1, []string{"B2", "B7"})
	if err != nil {
		t.Fatal(err)
	}
	if a.ShapeCount() != b.ShapeCount() || a.Area() != b.Area() {
		t.Fatal("chip composition not deterministic")
	}
	for i := range a.Rects {
		if a.Rects[i] != b.Rects[i] {
			t.Fatalf("rect %d differs between builds", i)
		}
	}
}

func TestChipEmptySlots(t *testing.T) {
	chip, err := Chip(2, 2, []string{"B1", "-", "-", "B4"})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := ByID("B1")
	b4, _ := ByID("B4")
	if got, want := chip.Area(), b1.PatternArea+b4.PatternArea; got != want {
		t.Fatalf("sparse chip area %d, want %d (only slots 0 and 3 occupied)", got, want)
	}
	// Slot 3's cell must land at the (1,1) offset.
	found := false
	for _, r := range chip.Rects {
		if r.X0 >= CanvasNM && r.Y0 >= CanvasNM {
			found = true
		}
	}
	if !found {
		t.Fatal("no geometry in the bottom-right occupied slot")
	}
}

func TestChipErrors(t *testing.T) {
	if _, err := Chip(0, 2, nil); err == nil {
		t.Fatal("0-wide array accepted")
	}
	if _, err := Chip(2, 2, []string{"B99"}); err == nil {
		t.Fatal("unknown cell accepted")
	}
	if _, err := Chip(2, 2, []string{"-"}); err == nil {
		t.Fatal("fully empty chip accepted")
	}
}
