package layouts

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"lsopc/internal/geom"
)

// TestBenchmarkGeometryStable verifies the generated benchmarks are
// byte-stable across runs (the reproducibility contract EXPERIMENTS.md
// relies on). It hashes two independent generations and compares.
func TestBenchmarkGeometryStable(t *testing.T) {
	for _, s := range All() {
		h1 := hashGLP(t, s)
		h2 := hashGLP(t, s)
		if h1 != h2 {
			t.Fatalf("%s: generation not deterministic", s.ID)
		}
	}
}

func hashGLP(t *testing.T, s Spec) string {
	t.Helper()
	l, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := geom.WriteGLP(&buf, l); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}
