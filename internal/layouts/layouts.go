// Package layouts provides deterministic synthetic stand-ins for the ten
// ICCAD 2013 contest benchmarks (B1…B10). The real clips are IBM 32 nm
// Metal-1 OASIS data distributed with the contest kit; we do not have
// them, so each benchmark here is a hand-designed rectilinear layout on
// the same 2048×2048 nm canvas whose *pattern area matches Table I of
// the paper exactly* (e.g. B1 = 215344 nm²) and whose feature mix —
// line arrays, combs, L/U shapes, isolated contacts — mirrors the
// contest's description.
//
// Exact areas are achieved with a "trim bar": after the characteristic
// shapes are placed, the residual area is absorbed by one bar of fixed
// height whose first R%H columns are one nanometre taller (a single
// 1 nm jog), so every integer target area is representable without
// degenerate slivers.
package layouts

import (
	"fmt"

	"lsopc/internal/geom"
)

// CanvasNM is the benchmark canvas edge (the contest clips are
// 2048 nm × 2048 nm at 1 nm²/pixel).
const CanvasNM = 2048

// trimHeight is the trim bar's base height in nm.
const trimHeight = 64

// Spec describes one benchmark.
type Spec struct {
	ID          string
	PatternArea int // nm², matching Table I of the paper
	build       func(b *builder)
	trimX       int // trim bar anchor (top-left), nm
	trimY       int
}

// builder accumulates shapes and tracks area.
type builder struct {
	l    *geom.Layout
	area int
}

func (b *builder) rect(x0, y0, x1, y1 int) {
	r := geom.NewRect(x0, y0, x1, y1)
	b.l.Rects = append(b.l.Rects, r)
	b.area += r.Area()
}

func (b *builder) poly(pts ...geom.Point) {
	p := geom.NewPolygon(pts...)
	b.l.Polys = append(b.l.Polys, p)
	b.area += p.Area()
}

// uShape adds a U: two vertical arms of the given width joined by a
// bottom bar, spanning (x0,y0)-(x1,y1) with the opening at the top.
func (b *builder) uShape(x0, y0, x1, y1, arm int) {
	b.poly(
		geom.Point{X: x0, Y: y0},
		geom.Point{X: x0 + arm, Y: y0},
		geom.Point{X: x0 + arm, Y: y1 - arm},
		geom.Point{X: x1 - arm, Y: y1 - arm},
		geom.Point{X: x1 - arm, Y: y0},
		geom.Point{X: x1, Y: y0},
		geom.Point{X: x1, Y: y1},
		geom.Point{X: x0, Y: y1},
	)
}

// lShape adds an L with a horizontal arm (x0,y0)-(x0+hw,y0+t) and a
// vertical arm of thickness t descending to y1.
func (b *builder) lShape(x0, y0, hw, t, y1 int) {
	b.poly(
		geom.Point{X: x0, Y: y0},
		geom.Point{X: x0 + hw, Y: y0},
		geom.Point{X: x0 + hw, Y: y0 + t},
		geom.Point{X: x0 + t, Y: y0 + t},
		geom.Point{X: x0 + t, Y: y1},
		geom.Point{X: x0, Y: y1},
	)
}

// addTrim places the area-trimming shape: a bar of height trimHeight and
// width R/trimHeight whose first R%trimHeight columns are 1 nm taller,
// giving exactly the residual area R.
func (b *builder) addTrim(x0, y0, residual int) {
	if residual == 0 {
		return
	}
	h := trimHeight
	q := residual / h
	r := residual % h
	if q < h {
		panic(fmt.Sprintf("layouts: residual %d too small for a %d-tall trim bar", residual, h))
	}
	if r == 0 {
		b.rect(x0, y0, x0+q, y0+h)
		return
	}
	b.poly(
		geom.Point{X: x0, Y: y0},
		geom.Point{X: x0 + q, Y: y0},
		geom.Point{X: x0 + q, Y: y0 + h},
		geom.Point{X: x0 + r, Y: y0 + h},
		geom.Point{X: x0 + r, Y: y0 + h + 1},
		geom.Point{X: x0, Y: y0 + h + 1},
	)
}

// specs defines the ten benchmarks. Pattern areas are the Table I
// values; the characteristic shapes echo the contest's M1 feature mix.
var specs = []Spec{
	{
		ID: "B1", PatternArea: 215344, trimX: 500, trimY: 1200,
		build: func(b *builder) {
			// Vertical line array plus two contact pads.
			for k := 0; k < 4; k++ {
				x := 500 + k*150
				b.rect(x, 500, x+70, 1000)
			}
			b.rect(1200, 500, 1300, 600)
			b.rect(1200, 700, 1300, 800)
		},
	},
	{
		ID: "B2", PatternArea: 169280, trimX: 500, trimY: 1150,
		build: func(b *builder) {
			// Comb: horizontal spine with five downward teeth.
			b.rect(500, 500, 1300, 580)
			for k := 0; k < 5; k++ {
				x := 520 + k*160
				b.rect(x, 580, x+60, 880)
			}
		},
	},
	{
		ID: "B3", PatternArea: 213504, trimX: 500, trimY: 1300,
		build: func(b *builder) {
			// Dense horizontal line stack with side contacts — the
			// congested case that dominates the paper's EPE counts.
			for k := 0; k < 6; k++ {
				y := 400 + k*120
				b.rect(500, y, 900, y+60)
			}
			for k := 0; k < 3; k++ {
				y := 420 + k*200
				b.rect(1050, y, 1140, y+90)
			}
		},
	},
	{
		ID: "B4", PatternArea: 82560, trimX: 500, trimY: 1100,
		build: func(b *builder) {
			// Three isolated vertical bars.
			for k := 0; k < 3; k++ {
				x := 600 + k*200
				b.rect(x, 600, x+80, 800)
			}
		},
	},
	{
		ID: "B5", PatternArea: 281958, trimX: 500, trimY: 1200,
		build: func(b *builder) {
			// Long parallel horizontal lines.
			for k := 0; k < 3; k++ {
				y := 500 + k*160
				b.rect(500, y, 1400, y+80)
			}
		},
	},
	{
		ID: "B6", PatternArea: 286234, trimX: 500, trimY: 1250,
		build: func(b *builder) {
			// Four long lines at a slightly denser pitch.
			for k := 0; k < 4; k++ {
				y := 450 + k*150
				b.rect(500, y, 1400, y+70)
			}
		},
	},
	{
		ID: "B7", PatternArea: 229149, trimX: 300, trimY: 1300,
		build: func(b *builder) {
			// A U structure with two contacts inside the opening.
			b.uShape(600, 500, 1200, 900, 100)
			b.rect(760, 560, 870, 670)
			b.rect(950, 560, 1060, 670)
		},
	},
	{
		ID: "B8", PatternArea: 128544, trimX: 500, trimY: 1100,
		build: func(b *builder) {
			// Two L-shaped wires.
			b.lShape(600, 600, 300, 80, 900)
			b.lShape(1100, 600, 300, 80, 900)
		},
	},
	{
		ID: "B9", PatternArea: 317581, trimX: 500, trimY: 1300,
		build: func(b *builder) {
			// Five tall vertical lines — largest pattern of the suite.
			for k := 0; k < 5; k++ {
				x := 500 + k*170
				b.rect(x, 400, x+80, 1100)
			}
		},
	},
	{
		ID: "B10", PatternArea: 102400, trimX: 0, trimY: 0,
		build: func(b *builder) {
			// One large isolated square (320² = 102400 exactly): the
			// suite's easy case, scoring 0 EPE for every method in
			// Table I.
			b.rect(864, 864, 1184, 1184)
		},
	},
}

// All returns the benchmark specs in contest order (B1…B10).
func All() []Spec {
	out := make([]Spec, len(specs))
	copy(out, specs)
	return out
}

// IDs returns the benchmark identifiers in order.
func IDs() []string {
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}
	return ids
}

// ByID returns the spec for the given benchmark identifier.
func ByID(id string) (Spec, error) {
	for _, s := range specs {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("layouts: unknown benchmark %q (want B1…B10)", id)
}

// Build constructs the layout. The result is deterministic, validated,
// and has Area() == PatternArea exactly.
func (s Spec) Build() (*geom.Layout, error) {
	b := &builder{l: &geom.Layout{Name: s.ID, W: CanvasNM, H: CanvasNM}}
	s.build(b)
	residual := s.PatternArea - b.area
	if residual < 0 {
		return nil, fmt.Errorf("layouts: %s base shapes exceed target area by %d nm²", s.ID, -residual)
	}
	b.addTrim(s.trimX, s.trimY, residual)
	if got := b.l.Area(); got != s.PatternArea {
		return nil, fmt.Errorf("layouts: %s area %d ≠ target %d", s.ID, got, s.PatternArea)
	}
	if err := b.l.Validate(); err != nil {
		return nil, fmt.Errorf("layouts: %s: %w", s.ID, err)
	}
	return b.l, nil
}

// MustBuild is Build for static benchmark specs, panicking on the
// (programming) error case.
func (s Spec) MustBuild() *geom.Layout {
	l, err := s.Build()
	if err != nil {
		panic(err)
	}
	return l
}
