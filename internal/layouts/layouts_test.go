package layouts

import (
	"bytes"
	"testing"

	"lsopc/internal/geom"
)

// tableIAreas are the pattern areas reported in Table I of the paper.
var tableIAreas = map[string]int{
	"B1": 215344, "B2": 169280, "B3": 213504, "B4": 82560, "B5": 281958,
	"B6": 286234, "B7": 229149, "B8": 128544, "B9": 317581, "B10": 102400,
}

func TestAllTenBenchmarksPresent(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("benchmark count = %d, want 10", len(all))
	}
	ids := IDs()
	for i, s := range all {
		if ids[i] != s.ID {
			t.Fatalf("IDs()[%d] = %s, spec %s", i, ids[i], s.ID)
		}
		want, ok := tableIAreas[s.ID]
		if !ok {
			t.Fatalf("unexpected benchmark %s", s.ID)
		}
		if s.PatternArea != want {
			t.Fatalf("%s spec area %d, Table I says %d", s.ID, s.PatternArea, want)
		}
	}
}

func TestBuildExactAreasAndValidity(t *testing.T) {
	for _, s := range All() {
		l, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if got := l.Area(); got != s.PatternArea {
			t.Errorf("%s: built area %d ≠ Table I area %d", s.ID, got, s.PatternArea)
		}
		if err := l.Validate(); err != nil {
			t.Errorf("%s: invalid layout: %v", s.ID, err)
		}
		if l.W != CanvasNM || l.H != CanvasNM {
			t.Errorf("%s: canvas %dx%d, want %d", s.ID, l.W, l.H, CanvasNM)
		}
		if l.Name != s.ID {
			t.Errorf("%s: layout name %q", s.ID, l.Name)
		}
	}
}

func TestRasterAreaMatchesGeometry(t *testing.T) {
	// At 1 nm/px the rasterised pixel count must equal the pattern area
	// exactly — this is the property the PVB/EPE metrics rely on.
	for _, s := range All() {
		l := s.MustBuild()
		f, err := geom.Rasterize(l, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if got := int(f.Sum()); got != s.PatternArea {
			t.Errorf("%s: raster area %d ≠ %d", s.ID, got, s.PatternArea)
		}
	}
}

func TestShapesInsideCentralRegion(t *testing.T) {
	// All features must sit clear of the canvas border so the optical
	// halo and level-set band have room (contest clips keep features
	// centred as well).
	const margin = 200
	for _, s := range All() {
		l := s.MustBuild()
		b := l.Bounds()
		if b.X0 < margin || b.Y0 < margin || b.X1 > CanvasNM-margin || b.Y1 > CanvasNM-margin {
			t.Errorf("%s: bounds %+v too close to canvas border", s.ID, b)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	s, err := ByID("B3")
	if err != nil {
		t.Fatal(err)
	}
	a := s.MustBuild()
	b := s.MustBuild()
	if a.Area() != b.Area() || a.ShapeCount() != b.ShapeCount() {
		t.Fatal("Build must be deterministic")
	}
	for i := range a.Rects {
		if a.Rects[i] != b.Rects[i] {
			t.Fatal("rects differ across builds")
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("B99"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := ByID(""); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestMinimumFeatureSizes(t *testing.T) {
	// Apart from the 1 nm trim jog, every shape dimension should be a
	// printable ≥ 40 nm (the 32 nm-node M1 regime of the contest).
	for _, s := range All() {
		l := s.MustBuild()
		for _, r := range l.Rects {
			if r.W() < 40 || r.H() < 40 {
				t.Errorf("%s: rect %+v below 40 nm minimum", s.ID, r)
			}
		}
	}
}

func TestGLPRoundTripForAllBenchmarks(t *testing.T) {
	for _, s := range All() {
		l := s.MustBuild()
		var buf bytes.Buffer
		if err := geom.WriteGLP(&buf, l); err != nil {
			t.Fatalf("%s: write: %v", s.ID, err)
		}
		got, err := geom.ParseGLP(&buf)
		if err != nil {
			t.Fatalf("%s: parse: %v", s.ID, err)
		}
		if got.Area() != l.Area() {
			t.Errorf("%s: GLP round trip changed area", s.ID)
		}
	}
}
