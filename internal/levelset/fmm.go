package levelset

import (
	"container/heap"
	"math"

	"lsopc/internal/grid"
)

// ReinitializeFMM rebuilds ψ as a signed distance function using the
// fast marching method (Sethian), solving |∇T| = 1 outward from the
// current zero level set. Unlike Reinitialize (which binarises the mask
// and takes the exact pixel-grid EDT), FMM seeds the front from the
// *sub-pixel* zero crossings interpolated along grid edges, so a contour
// sitting between pixels stays between pixels across reinitialisations.
// Cost is O(N log N).
func ReinitializeFMM(psi *grid.Field) *grid.Field {
	w, h := psi.W, psi.H
	out := grid.NewField(w, h)

	dist := make([]float64, w*h) // unsigned distance to the interface
	state := make([]byte, w*h)   // 0 far, 1 trial, 2 accepted
	for i := range dist {
		dist[i] = math.Inf(1)
	}

	inside := func(i int) bool { return psi.Data[i] <= 0 }

	// Seed: pixels with a sign change to a 4-neighbour get their
	// distance from linear interpolation of ψ along each crossing axis:
	// the zero crossing sits at frac = ψ(p)/(ψ(p)−ψ(n)) of the edge.
	var pq pixelHeap
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			pv := psi.Data[i]
			best := math.Inf(1)
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				nv := psi.Data[ny*w+nx]
				if inside(i) == inside(ny*w+nx) {
					continue
				}
				den := pv - nv
				if den == 0 {
					continue
				}
				frac := math.Abs(pv / den)
				if frac < best {
					best = frac
				}
			}
			if !math.IsInf(best, 1) {
				dist[i] = best
				state[i] = 2
			}
		}
	}
	// Push the neighbours of accepted pixels as trial.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if state[i] != 2 {
				continue
			}
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				j := ny*w + nx
				if state[j] == 0 {
					if t := eikonalUpdate(dist, state, w, h, nx, ny); t < dist[j] {
						dist[j] = t
						state[j] = 1
						heap.Push(&pq, pixelItem{idx: j, t: t})
					}
				}
			}
		}
	}

	// March.
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(pixelItem)
		i := it.idx
		if state[i] == 2 {
			continue // stale heap entry
		}
		if it.t > dist[i] {
			continue
		}
		state[i] = 2
		x, y := i%w, i/w
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := x+d[0], y+d[1]
			if nx < 0 || nx >= w || ny < 0 || ny >= h {
				continue
			}
			j := ny*w + nx
			if state[j] == 2 {
				continue
			}
			if t := eikonalUpdate(dist, state, w, h, nx, ny); t < dist[j] {
				dist[j] = t
				state[j] = 1
				heap.Push(&pq, pixelItem{idx: j, t: t})
			}
		}
	}

	for i := range out.Data {
		d := dist[i]
		if math.IsInf(d, 1) {
			// No interface anywhere: fall back to a far constant.
			d = float64(w + h)
		}
		if inside(i) {
			out.Data[i] = -d
		} else {
			out.Data[i] = d
		}
	}
	return out
}

// eikonalUpdate solves the first-order upwind discretisation of
// |∇T| = 1 at pixel (x, y) from its accepted neighbours.
func eikonalUpdate(dist []float64, state []byte, w, h, x, y int) float64 {
	axisMin := func(a, b int) float64 {
		v := math.Inf(1)
		if a >= 0 {
			if state[a] == 2 && dist[a] < v {
				v = dist[a]
			}
		}
		if b >= 0 {
			if state[b] == 2 && dist[b] < v {
				v = dist[b]
			}
		}
		return v
	}
	left, right := -1, -1
	if x > 0 {
		left = y*w + x - 1
	}
	if x < w-1 {
		right = y*w + x + 1
	}
	up, down := -1, -1
	if y > 0 {
		up = (y-1)*w + x
	}
	if y < h-1 {
		down = (y+1)*w + x
	}
	a := axisMin(left, right)
	b := axisMin(up, down)
	if a > b {
		a, b = b, a
	}
	if math.IsInf(a, 1) {
		return math.Inf(1)
	}
	if math.IsInf(b, 1) || b-a >= 1 {
		return a + 1
	}
	// Solve (T−a)² + (T−b)² = 1.
	sum := a + b
	disc := sum*sum - 2*(a*a+b*b-1)
	return (sum + math.Sqrt(disc)) / 2
}

// pixelItem is one trial entry in the marching heap.
type pixelItem struct {
	idx int
	t   float64
}

// pixelHeap is a min-heap on tentative distance.
type pixelHeap []pixelItem

func (p pixelHeap) Len() int            { return len(p) }
func (p pixelHeap) Less(i, j int) bool  { return p[i].t < p[j].t }
func (p pixelHeap) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pixelHeap) Push(x interface{}) { *p = append(*p, x.(pixelItem)) }
func (p *pixelHeap) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}
