package levelset

import (
	"math"
	"testing"

	"lsopc/internal/grid"
)

func TestFMMDiscDistance(t *testing.T) {
	// ψ = exact disc SDF, cubed to destroy |∇ψ|=1; FMM must restore it.
	const n, r = 64, 14.0
	psi := grid.NewField(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			d := math.Hypot(float64(x-32), float64(y-32)) - r
			psi.Set(x, y, d*d*d)
		}
	}
	re := ReinitializeFMM(psi)
	// Compare against the analytic disc SDF away from the centre
	// (the inward march loses accuracy at the skeleton point).
	for y := 4; y < n-4; y++ {
		for x := 4; x < n-4; x++ {
			want := math.Hypot(float64(x-32), float64(y-32)) - r
			if math.Abs(want) < 2 || math.Abs(want) > 12 {
				continue
			}
			got := re.At(x, y)
			if math.Abs(got-want) > 1.0 {
				t.Fatalf("FMM distance at (%d,%d): %g, want %g", x, y, got, want)
			}
		}
	}
}

func TestFMMPreservesSignEverywhere(t *testing.T) {
	const n = 48
	m := rectMask(n, 10, 14, 30, 34)
	psi := SignedDistance(m)
	// Distort magnitudes, keep signs.
	for i, v := range psi.Data {
		psi.Data[i] = v * (1 + 0.3*math.Sin(float64(i)))
	}
	re := ReinitializeFMM(psi)
	for i := range re.Data {
		if (re.Data[i] <= 0) != (psi.Data[i] <= 0) {
			t.Fatalf("FMM moved the contour at %d: %g vs %g", i, re.Data[i], psi.Data[i])
		}
	}
}

func TestFMMSubpixelContourPreserved(t *testing.T) {
	// Shift the contour off the pixel lattice: ψ = SDF − 0.25. With the
	// EDT convention the boundary-adjacent pixels sit at ψ = −1 (inside,
	// now −1.25) and +1 (outside, now +0.75), so the zero crossing lies
	// 0.625 of the way from the inside pixel. EDT-based reinit would
	// snap that pixel back to −1; FMM must seed it at the interpolated
	// −0.625 and keep the sub-pixel offset.
	const n = 48
	m := rectMask(n, 12, 12, 36, 36)
	psi := SignedDistance(m)
	psi.AddScaled(onesLike(psi), -0.25) // shift contour outward

	re := ReinitializeFMM(psi)
	got := re.At(12, 24)
	if math.Abs(got-(-0.625)) > 0.1 {
		t.Fatalf("sub-pixel offset lost: ψ(edge) = %g, want ≈ -0.625", got)
	}
	// The EDT path indeed quantises (documented contrast).
	edt := Reinitialize(psi)
	if math.Abs(edt.At(12, 24)-(-1)) > 0.1 {
		t.Fatalf("EDT reinit gave %g, expected the snapped -1", edt.At(12, 24))
	}
}

func onesLike(f *grid.Field) *grid.Field {
	o := grid.NewFieldLike(f)
	o.Fill(1)
	return o
}

func TestFMMGradientNearOne(t *testing.T) {
	const n = 64
	m := rectMask(n, 16, 16, 48, 48)
	psi := SignedDistance(m)
	for i, v := range psi.Data {
		psi.Data[i] = 5 * v // wrong slope
	}
	re := ReinitializeFMM(psi)
	g := grid.NewField(n, n)
	GradMag(g, re)
	bad := 0
	probes := 0
	for y := 4; y < n-4; y++ {
		for x := 4; x < n-4; x++ {
			d := math.Abs(re.At(x, y))
			if d > 2 && d < 10 {
				probes++
				if math.Abs(g.At(x, y)-1) > 0.35 {
					bad++
				}
			}
		}
	}
	if probes == 0 {
		t.Fatal("no probes")
	}
	if float64(bad) > 0.1*float64(probes) {
		t.Fatalf("|∇ψ| far from 1 at %d/%d probes", bad, probes)
	}
}

func TestFMMUniformField(t *testing.T) {
	// No interface at all: everything inside.
	psi := grid.NewField(16, 16)
	psi.Fill(-3)
	re := ReinitializeFMM(psi)
	for _, v := range re.Data {
		if v >= 0 {
			t.Fatal("all-inside field must stay negative")
		}
	}
}

func TestFMMAgreesWithEDTOnRectangle(t *testing.T) {
	const n = 48
	m := rectMask(n, 10, 10, 34, 30)
	sdf := SignedDistance(m)
	// Start FMM from a distorted version; it should land close to the
	// exact EDT (within the half-pixel seeding convention difference).
	distorted := sdf.Clone()
	for i, v := range distorted.Data {
		distorted.Data[i] = v * 3
	}
	re := ReinitializeFMM(distorted)
	for y := 2; y < n-2; y++ {
		for x := 2; x < n-2; x++ {
			d := sdf.At(x, y)
			if math.Abs(d) > 10 {
				continue
			}
			if math.Abs(re.At(x, y)-d) > 1.2 {
				t.Fatalf("FMM vs EDT at (%d,%d): %g vs %g", x, y, re.At(x, y), d)
			}
		}
	}
}
