// Package levelset provides the level-set machinery of the paper's §III:
// the signed-distance representation of the mask contour (Eq. 5), the
// mask extraction rule (Eq. 6), gradient-magnitude stencils for the
// evolution velocity (Eq. 10), the CFL-limited time step of Algorithm 1,
// and periodic reinitialisation back to a signed distance function.
//
// Distances are measured in pixels (the simulation grid's natural unit);
// a proper SDF then has |∇ψ| ≈ 1, which keeps the velocity scaling of
// Eq. 10 well conditioned at any grid resolution.
package levelset

import (
	"math"

	"lsopc/internal/grid"
)

// inf is the padding value for the distance transform; any finite
// distance on a real grid is far smaller.
const inf = math.MaxFloat64 / 4

// edtSq1D computes the 1-D squared-distance transform of f in place
// using the Felzenszwalb–Huttenlocher lower-envelope-of-parabolas
// algorithm: d[x] = min_x' (f[x'] + (x−x')²). v, z and out are caller
// scratch of length ≥ n (z needs n+1).
func edtSq1D(f, out []float64, v []int, z []float64) {
	n := len(f)
	k := 0
	v[0] = 0
	z[0] = -inf
	z[1] = inf
	for q := 1; q < n; q++ {
		var s float64
		for {
			p := v[k]
			s = ((f[q] + float64(q*q)) - (f[p] + float64(p*p))) / float64(2*(q-p))
			if s > z[k] {
				break
			}
			k--
		}
		k++
		v[k] = q
		z[k] = s
		z[k+1] = inf
	}
	k = 0
	for q := 0; q < n; q++ {
		for z[k+1] < float64(q) {
			k++
		}
		d := float64(q - v[k])
		out[q] = d*d + f[v[k]]
	}
}

// edtSq computes the exact Euclidean squared-distance transform of the
// set {(x,y) : set(x,y) is true}: out(x,y) = min over set pixels p of
// |(x,y)−p|². Pixels in the set get 0. If the set is empty, every output
// is +inf.
func edtSq(w, h int, set func(x, y int) bool) *grid.Field {
	out := grid.NewField(w, h)
	// Column pass.
	colIn := make([]float64, h)
	colOut := make([]float64, h)
	v := make([]int, max(w, h))
	z := make([]float64, max(w, h)+1)
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if set(x, y) {
				colIn[y] = 0
			} else {
				colIn[y] = inf
			}
		}
		edtSq1D(colIn, colOut, v, z)
		for y := 0; y < h; y++ {
			out.Set(x, y, colOut[y])
		}
	}
	// Row pass.
	rowOut := make([]float64, w)
	for y := 0; y < h; y++ {
		edtSq1D(out.Row(y), rowOut, v, z)
		copy(out.Row(y), rowOut)
	}
	return out
}

// SignedDistance computes the signed distance function of the binary
// mask (values > 0.5 are inside) following the paper's Eq. 5 convention:
// negative inside the pattern, positive outside, ≈0 on the contour.
// Distances are in pixels. If the mask is uniformly inside or outside,
// the corresponding half is filled with ∓(W+H) as an "infinitely far"
// sentinel.
func SignedDistance(mask *grid.Field) *grid.Field {
	w, h := mask.W, mask.H
	inside := func(x, y int) bool { return mask.At(x, y) > 0.5 }
	outside := func(x, y int) bool { return mask.At(x, y) <= 0.5 }

	distToInside := edtSq(w, h, inside)   // 0 on inside pixels
	distToOutside := edtSq(w, h, outside) // 0 on outside pixels

	far := float64(w + h)
	psi := grid.NewField(w, h)
	for i := range psi.Data {
		dIn := distToInside.Data[i]   // squared distance to the pattern
		dOut := distToOutside.Data[i] // squared distance to the background
		switch {
		case dIn >= inf && dOut >= inf:
			// Unreachable: every pixel is in exactly one set.
			psi.Data[i] = 0
		case dIn >= inf:
			// No pattern anywhere: everything is far outside.
			psi.Data[i] = far
		case dOut >= inf:
			// No background anywhere: everything is far inside.
			psi.Data[i] = -far
		default:
			psi.Data[i] = math.Sqrt(dIn) - math.Sqrt(dOut)
		}
	}
	return psi
}

// MaskFromPsi extracts the binary mask from the level-set function per
// Eq. 6: 1 (m_in) where ψ ≤ 0, 0 (m_out) where ψ > 0.
func MaskFromPsi(dst, psi *grid.Field) {
	for i, v := range psi.Data {
		if v <= 0 {
			dst.Data[i] = 1
		} else {
			dst.Data[i] = 0
		}
	}
}

// GradMag computes |∇ψ| with central differences in the interior and
// one-sided differences at the borders, writing into dst.
func GradMag(dst, psi *grid.Field) {
	w, h := psi.W, psi.H
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var gx, gy float64
			switch {
			case x == 0:
				gx = psi.At(1, y) - psi.At(0, y)
			case x == w-1:
				gx = psi.At(w-1, y) - psi.At(w-2, y)
			default:
				gx = 0.5 * (psi.At(x+1, y) - psi.At(x-1, y))
			}
			switch {
			case y == 0:
				gy = psi.At(x, 1) - psi.At(x, 0)
			case y == h-1:
				gy = psi.At(x, h-1) - psi.At(x, h-2)
			default:
				gy = 0.5 * (psi.At(x, y+1) - psi.At(x, y-1))
			}
			dst.Set(x, y, math.Hypot(gx, gy))
		}
	}
}

// GradMagUpwind computes the Godunov upwind gradient magnitude for the
// Hamilton–Jacobi advection ψ_t + v|∇ψ| = 0, selecting one-sided
// differences by the sign of the speed field v at each pixel. This is
// the numerically stable stencil for strong velocities; the paper's
// Eq. 10 uses the plain magnitude, which GradMag provides.
func GradMagUpwind(dst, psi, v *grid.Field) {
	w, h := psi.W, psi.H
	at := func(x, y int) float64 {
		if x < 0 {
			x = 0
		}
		if x >= w {
			x = w - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= h {
			y = h - 1
		}
		return psi.At(x, y)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := psi.At(x, y)
			dxm := c - at(x-1, y) // backward
			dxp := at(x+1, y) - c // forward
			dym := c - at(x, y-1)
			dyp := at(x, y+1) - c
			var gx2, gy2 float64
			if v.At(x, y) > 0 {
				// Front moves outward: use max(dxm,0), min(dxp,0).
				a := math.Max(dxm, 0)
				b := math.Min(dxp, 0)
				gx2 = math.Max(a*a, b*b)
				a = math.Max(dym, 0)
				b = math.Min(dyp, 0)
				gy2 = math.Max(a*a, b*b)
			} else {
				a := math.Min(dxm, 0)
				b := math.Max(dxp, 0)
				gx2 = math.Max(a*a, b*b)
				a = math.Min(dym, 0)
				b = math.Max(dyp, 0)
				gy2 = math.Max(a*a, b*b)
			}
			dst.Set(x, y, math.Sqrt(gx2+gy2))
		}
	}
}

// TimeStep returns the CFL-limited step Δt = λ_t / max|v| (Algorithm 1,
// line 5). It returns 0 when the velocity is identically zero, which
// callers treat as convergence.
func TimeStep(lambda float64, v *grid.Field) float64 {
	m := v.MaxAbs()
	if m == 0 {
		return 0
	}
	return lambda / m
}

// Evolve advances the level-set function in place: ψ ← ψ + v·Δt
// (Algorithm 1, line 6).
func Evolve(psi, v *grid.Field, dt float64) {
	psi.AddScaled(v, dt)
}

// Reinitialize rebuilds ψ as the exact signed distance function of its
// own zero sub-level set, preserving the contour while restoring the
// |∇ψ| ≈ 1 property that long evolutions erode. Returns the new ψ.
func Reinitialize(psi *grid.Field) *grid.Field {
	mask := grid.NewFieldLike(psi)
	MaskFromPsi(mask, psi)
	return SignedDistance(mask)
}

// Curvature computes the mean curvature κ = div(∇ψ/|∇ψ|) with central
// differences, used by the optional contour-smoothing regulariser.
// Border pixels get 0.
func Curvature(dst, psi *grid.Field) {
	w, h := psi.W, psi.H
	dst.Zero()
	const eps = 1e-12
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			px := 0.5 * (psi.At(x+1, y) - psi.At(x-1, y))
			py := 0.5 * (psi.At(x, y+1) - psi.At(x, y-1))
			pxx := psi.At(x+1, y) - 2*psi.At(x, y) + psi.At(x-1, y)
			pyy := psi.At(x, y+1) - 2*psi.At(x, y) + psi.At(x, y-1)
			pxy := 0.25 * (psi.At(x+1, y+1) - psi.At(x+1, y-1) - psi.At(x-1, y+1) + psi.At(x-1, y-1))
			den := math.Pow(px*px+py*py+eps, 1.5)
			dst.Set(x, y, (pxx*py*py-2*px*py*pxy+pyy*px*px)/den)
		}
	}
}
