package levelset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lsopc/internal/grid"
)

// bruteEDTSq is the O(n⁴) reference squared-distance transform.
func bruteEDTSq(w, h int, set func(x, y int) bool) *grid.Field {
	out := grid.NewField(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			best := inf
			for v := 0; v < h; v++ {
				for u := 0; u < w; u++ {
					if set(u, v) {
						d := float64((x-u)*(x-u) + (y-v)*(y-v))
						if d < best {
							best = d
						}
					}
				}
			}
			out.Set(x, y, best)
		}
	}
	return out
}

func rectMask(n, x0, y0, x1, y1 int) *grid.Field {
	m := grid.NewField(n, n)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			m.Set(x, y, 1)
		}
	}
	return m
}

func TestEDTMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		const n = 16
		m := grid.NewField(n, n)
		for i := range m.Data {
			if rng.Float64() < 0.3 {
				m.Data[i] = 1
			}
		}
		set := func(x, y int) bool { return m.At(x, y) > 0.5 }
		got := edtSq(n, n, set)
		want := bruteEDTSq(n, n, set)
		if !got.Equal(want, 1e-9) {
			t.Fatalf("trial %d: EDT disagrees with brute force", trial)
		}
	}
}

func TestEDTSinglePoint(t *testing.T) {
	const n = 8
	set := func(x, y int) bool { return x == 3 && y == 5 }
	d := edtSq(n, n, set)
	if d.At(3, 5) != 0 {
		t.Fatal("distance at the set pixel must be 0")
	}
	if d.At(0, 0) != float64(3*3+5*5) {
		t.Fatalf("corner distance = %g", d.At(0, 0))
	}
}

func TestEDTEmptySet(t *testing.T) {
	d := edtSq(4, 4, func(int, int) bool { return false })
	for _, v := range d.Data {
		if v < inf {
			t.Fatal("empty set must give infinite distances")
		}
	}
}

func TestSignedDistanceSigns(t *testing.T) {
	const n = 32
	m := rectMask(n, 8, 8, 24, 24)
	psi := SignedDistance(m)
	// Deep inside: strongly negative. Deep outside: strongly positive.
	if psi.At(16, 16) >= 0 {
		t.Fatalf("centre ψ = %g, want < 0", psi.At(16, 16))
	}
	if psi.At(0, 0) <= 0 {
		t.Fatalf("corner ψ = %g, want > 0", psi.At(0, 0))
	}
	// Pixel adjacent to the boundary (inside) must be around -1..0.
	if v := psi.At(8, 16); v > 0 || v < -2 {
		t.Fatalf("boundary-adjacent ψ = %g", v)
	}
	// Centre of a 16-wide square is 8 px from the edge.
	if math.Abs(psi.At(16, 16)+8) > 1.5 {
		t.Fatalf("centre depth = %g, want ≈ -8", psi.At(16, 16))
	}
}

func TestSignedDistanceUniformMasks(t *testing.T) {
	const n = 8
	all := grid.NewField(n, n)
	all.Fill(1)
	psi := SignedDistance(all)
	for _, v := range psi.Data {
		if v >= 0 {
			t.Fatal("all-inside mask must give negative ψ everywhere")
		}
	}
	none := grid.NewField(n, n)
	psi = SignedDistance(none)
	for _, v := range psi.Data {
		if v <= 0 {
			t.Fatal("all-outside mask must give positive ψ everywhere")
		}
	}
}

func TestSignedDistanceRoundTrip(t *testing.T) {
	const n = 32
	m := rectMask(n, 5, 9, 20, 27)
	psi := SignedDistance(m)
	back := grid.NewField(n, n)
	MaskFromPsi(back, psi)
	if !back.Equal(m, 0) {
		t.Fatal("MaskFromPsi(SignedDistance(m)) must reproduce m")
	}
}

// Property: the SDF is 1-Lipschitz between 4-neighbours (|ψ(p)−ψ(q)| ≤ 1
// for adjacent pixels, up to the in/out double-transform tolerance).
func TestSignedDistanceLipschitz(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	prop := func() bool {
		const n = 24
		m := grid.NewField(n, n)
		// A couple of random rectangles.
		for r := 0; r < 2; r++ {
			x0, y0 := rng.Intn(n-4), rng.Intn(n-4)
			w, h := 2+rng.Intn(8), 2+rng.Intn(8)
			for y := y0; y < min(y0+h, n); y++ {
				for x := x0; x < min(x0+w, n); x++ {
					m.Set(x, y, 1)
				}
			}
		}
		psi := SignedDistance(m)
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if x+1 < n && math.Abs(psi.At(x+1, y)-psi.At(x, y)) > 2+1e-9 {
					return false
				}
				if y+1 < n && math.Abs(psi.At(x, y+1)-psi.At(x, y)) > 2+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return prop() }, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGradMagOfSDFNearOne(t *testing.T) {
	const n = 64
	m := rectMask(n, 16, 16, 48, 48)
	psi := SignedDistance(m)
	g := grid.NewField(n, n)
	GradMag(g, psi)
	// Away from the contour, skeleton and borders, |∇ψ| ≈ 1.
	count, ok := 0, 0
	for y := 4; y < n-4; y++ {
		for x := 4; x < n-4; x++ {
			d := math.Abs(psi.At(x, y))
			if d > 3 && d < 10 { // clear of contour and skeleton
				count++
				if math.Abs(g.At(x, y)-1) < 0.3 {
					ok++
				}
			}
		}
	}
	if count == 0 {
		t.Fatal("no probe pixels")
	}
	if float64(ok) < 0.9*float64(count) {
		t.Fatalf("|∇ψ| ≈ 1 at only %d/%d probes", ok, count)
	}
}

func TestGradMagLinearRamp(t *testing.T) {
	const n = 16
	psi := grid.NewField(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			psi.Set(x, y, 3*float64(x))
		}
	}
	g := grid.NewField(n, n)
	GradMag(g, psi)
	for _, v := range g.Data {
		if math.Abs(v-3) > 1e-12 {
			t.Fatalf("ramp gradient = %g, want 3", v)
		}
	}
}

func TestGradMagUpwindRamp(t *testing.T) {
	const n = 16
	psi := grid.NewField(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			psi.Set(x, y, float64(x))
		}
	}
	v := grid.NewField(n, n)
	g := grid.NewField(n, n)
	// For a smooth ramp both upwind directions see slope 1 in the
	// interior regardless of velocity sign.
	v.Fill(1)
	GradMagUpwind(g, psi, v)
	if math.Abs(g.At(8, 8)-1) > 1e-12 {
		t.Fatalf("upwind(+) interior = %g", g.At(8, 8))
	}
	v.Fill(-1)
	GradMagUpwind(g, psi, v)
	if math.Abs(g.At(8, 8)-1) > 1e-12 {
		t.Fatalf("upwind(-) interior = %g", g.At(8, 8))
	}
}

func TestGradMagUpwindSelectsStableSide(t *testing.T) {
	// At a kink (|x - 8| shape), the Godunov scheme with positive
	// velocity (expanding front) picks the larger one-sided slope at the
	// ridge; with negative velocity it sees the rarefaction (zero).
	const n = 17
	psi := grid.NewField(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			psi.Set(x, y, math.Abs(float64(x-8)))
		}
	}
	v := grid.NewField(n, n)
	g := grid.NewField(n, n)
	v.Fill(1)
	GradMagUpwind(g, psi, v)
	if g.At(8, 8) > 1e-12 {
		t.Fatalf("expanding front at valley = %g, want 0 (rarefaction)", g.At(8, 8))
	}
	v.Fill(-1)
	GradMagUpwind(g, psi, v)
	if math.Abs(g.At(8, 8)-1) > 1e-12 {
		t.Fatalf("contracting front at valley = %g, want 1", g.At(8, 8))
	}
}

func TestTimeStepCFL(t *testing.T) {
	v := grid.NewField(4, 4)
	v.Set(1, 1, -5)
	v.Set(2, 2, 3)
	if got := TimeStep(2, v); got != 0.4 {
		t.Fatalf("dt = %g, want 0.4", got)
	}
	v.Zero()
	if TimeStep(2, v) != 0 {
		t.Fatal("zero velocity must give dt = 0")
	}
}

func TestEvolveMovesContour(t *testing.T) {
	const n = 32
	m := rectMask(n, 10, 10, 22, 22)
	psi := SignedDistance(m)
	// Uniform negative velocity lowers ψ, expanding the ψ≤0 region.
	v := grid.NewField(n, n)
	v.Fill(-1)
	Evolve(psi, v, 1.5)
	out := grid.NewField(n, n)
	MaskFromPsi(out, psi)
	if int(out.Sum()) <= 12*12 {
		t.Fatal("negative velocity must grow the mask")
	}
	// The original interior stays inside.
	if out.At(16, 16) != 1 {
		t.Fatal("interior lost during expansion")
	}
}

func TestReinitializePreservesContour(t *testing.T) {
	const n = 32
	m := rectMask(n, 8, 12, 25, 20)
	psi := SignedDistance(m)
	// Distort ψ away from SDF without moving the zero crossing between
	// pixels: cubing preserves sign.
	for i, v := range psi.Data {
		psi.Data[i] = v * v * v
	}
	re := Reinitialize(psi)
	back := grid.NewField(n, n)
	MaskFromPsi(back, re)
	if !back.Equal(m, 0) {
		t.Fatal("reinitialisation moved the contour")
	}
	// And |∇ψ| must be restored to ≈1 near the boundary.
	g := grid.NewField(n, n)
	GradMag(g, re)
	if math.Abs(g.At(8, 16)-1) > 0.5 {
		t.Fatalf("|∇ψ| after reinit = %g at boundary", g.At(8, 16))
	}
}

func TestCurvatureSigns(t *testing.T) {
	const n = 64
	// SDF of a disc: curvature of level sets is positive (1/r) for the
	// convention ψ<0 inside.
	psi := grid.NewField(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			r := math.Hypot(float64(x-32), float64(y-32))
			psi.Set(x, y, r-12)
		}
	}
	k := grid.NewField(n, n)
	Curvature(k, psi)
	// On the contour (r = 12), κ ≈ 1/12.
	if got := k.At(32+12, 32); math.Abs(got-1.0/12) > 0.02 {
		t.Fatalf("disc curvature = %g, want ≈ %g", got, 1.0/12)
	}
	// A straight edge has zero curvature.
	flat := grid.NewField(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			flat.Set(x, y, float64(x-20))
		}
	}
	Curvature(k, flat)
	if math.Abs(k.At(20, 32)) > 1e-9 {
		t.Fatalf("straight-edge curvature = %g", k.At(20, 32))
	}
}
