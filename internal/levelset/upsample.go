package levelset

import (
	"fmt"

	"lsopc/internal/fft"
	"lsopc/internal/grid"
)

// UpsampleSpectral interpolates ψ onto a factor×-finer grid by spectral
// zero-padding: the coarse spectrum is embedded in the centre (wrapped
// layout: the four corner quadrants) of the fine spectrum, Nyquist
// rows/columns are split half-and-half between their two aliases to
// keep the fine spectrum Hermitian, and the inverse transform yields
// the band-limited (sinc) interpolant — the smoothest function through
// the coarse samples, which is exactly what a smooth level-set function
// wants at a resolution hand-off. The caller redistances afterwards
// (ReinitializeFMM); the interpolation preserves the zero contour's
// sub-pixel position, the redistancing restores the unit-gradient
// property at the new pixel pitch.
//
// factor must be a power of two ≥ 1; dimensions must be powers of two.
// factor 1 returns a clone.
func UpsampleSpectral(psi *grid.Field, factor int) *grid.Field {
	if factor == 1 {
		return psi.Clone()
	}
	if factor < 1 || !grid.IsPow2(factor) {
		panic(fmt.Sprintf("levelset: upsample factor %d is not a power of two", factor))
	}
	w, h := psi.W, psi.H
	fw, fh := w*factor, h*factor

	coarse := grid.NewCField(w, h)
	coarse.SetReal(psi)
	fft.NewPlan2D(w, h, nil).Forward(coarse)

	// Per-axis bin spreading: ordinary bins map to one fine bin, the
	// Nyquist bin (signed ±n/2 is ambiguous) splits evenly between both
	// aliases so the padded spectrum stays Hermitian and the inverse
	// transform stays real.
	uIdx, uWgt := spreadAxis(w, fw)
	vIdx, vWgt := spreadAxis(h, fh)

	fine := grid.NewCField(fw, fh)
	// Forward sums over w·h samples, the fine inverse divides by fw·fh:
	// scaling by factor² preserves function values.
	scale := complex(float64(factor*factor), 0)
	for v := 0; v < h; v++ {
		for u := 0; u < w; u++ {
			val := coarse.Data[v*w+u] * scale
			for vi, tv := range vIdx[v] {
				if vWgt[v][vi] == 0 {
					continue
				}
				rowBase := tv * fw
				for ui, tu := range uIdx[u] {
					if uWgt[u][ui] == 0 {
						continue
					}
					fine.Data[rowBase+tu] += val * complex(vWgt[v][vi]*uWgt[u][ui], 0)
				}
			}
		}
	}
	fft.NewPlan2D(fw, fh, nil).Inverse(fine)

	out := grid.NewField(fw, fh)
	fine.Real(out)
	return out
}

// spreadAxis returns, for every coarse bin on an n-point axis, the fine
// bin indices (on the fn-point axis) and weights it contributes to.
// Unused second slots carry weight 0.
func spreadAxis(n, fn int) ([][2]int, [][2]float64) {
	idx := make([][2]int, n)
	wgt := make([][2]float64, n)
	half := n / 2
	for i := 0; i < n; i++ {
		switch {
		case i < half:
			idx[i] = [2]int{i, 0}
			wgt[i] = [2]float64{1, 0}
		case i > half:
			idx[i] = [2]int{fn + i - n, 0}
			wgt[i] = [2]float64{1, 0}
		default: // Nyquist: split between +n/2 and −n/2.
			idx[i] = [2]int{half, fn - half}
			wgt[i] = [2]float64{0.5, 0.5}
		}
	}
	return idx, wgt
}
