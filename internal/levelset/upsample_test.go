package levelset

import (
	"math"
	"testing"

	"lsopc/internal/grid"
)

func TestUpsampleSpectralFactor1IsClone(t *testing.T) {
	f := grid.NewField(8, 8)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	g := UpsampleSpectral(f, 1)
	if g == f {
		t.Fatal("factor 1 must return a copy, not the input")
	}
	for i := range f.Data {
		if g.Data[i] != f.Data[i] {
			t.Fatalf("clone differs at %d", i)
		}
	}
}

func TestUpsampleSpectralConstant(t *testing.T) {
	const c = 3.25
	f := grid.NewField(16, 16)
	f.Fill(c)
	g := UpsampleSpectral(f, 4)
	if g.W != 64 || g.H != 64 {
		t.Fatalf("upsampled shape %dx%d, want 64x64", g.W, g.H)
	}
	for i, v := range g.Data {
		if math.Abs(v-c) > 1e-12 {
			t.Fatalf("pixel %d = %g, want %g (constant must survive)", i, v, c)
		}
	}
}

// TestUpsampleSpectralBandlimitedExact: for a signal band-limited below
// the coarse Nyquist frequency, zero-padded spectral interpolation is
// the exact sampling of the same continuous signal on the fine grid.
func TestUpsampleSpectralBandlimitedExact(t *testing.T) {
	const n = 32
	wave := func(u, v float64) float64 {
		return math.Sin(2*math.Pi*3*u) * math.Cos(2*math.Pi*5*v)
	}
	coarse := grid.NewField(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			coarse.Set(x, y, wave(float64(x)/n, float64(y)/n))
		}
	}
	fine := UpsampleSpectral(coarse, 2)
	for y := 0; y < 2*n; y++ {
		for x := 0; x < 2*n; x++ {
			want := wave(float64(x)/(2*n), float64(y)/(2*n))
			if got := fine.At(x, y); math.Abs(got-want) > 1e-10 {
				t.Fatalf("(%d,%d) = %g, want %g", x, y, got, want)
			}
		}
	}
}

func TestUpsampleSpectralRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("factor 3 did not panic")
		}
	}()
	UpsampleSpectral(grid.NewField(8, 8), 3)
}
