package litho

import (
	"testing"

	"lsopc/internal/engine"
	"lsopc/internal/grid"
)

// Allocation regression gate for the session runtime: once a session is
// warm, the forward simulation and the fused forward+adjoint must not
// touch the heap. All scratch is leased at session construction and
// every engine body is pre-bound, so the steady state is pure compute.
// The guarantee holds on a serial engine; multi-worker engines pay
// goroutine bookkeeping, which is scheduling overhead, not simulator
// state.

// warmSim returns a simulator that has run each measured path once, so
// lazily-leased scratch (the retained kernel batch) is in place.
func warmSim(t testing.TB, kernels int) (*Simulator, *grid.CField, *CornerImages, *grid.Field) {
	cfg := DefaultConfig(64, 32)
	cfg.Optics.Kernels = kernels
	s, err := NewSimulator(cfg, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	n := s.GridSize()
	mask := centeredRectMask(n, 24, 12)
	spec := s.MaskSpectrum(mask)
	imgs := NewCornerImages(n)
	grad := grid.NewField(n, n)
	target := centeredRectMask(n, 24, 12)
	for _, cond := range []Condition{Nominal, Outer, Inner} {
		s.Forward(imgs, spec, cond)
		s.ForwardAndGradient(grad, spec, cond, target, imgs, 1)
	}
	s.PrintedBinary(imgs.Aerial, spec, Nominal)
	return s, spec, imgs, target
}

func TestSimulateZeroAllocWarm(t *testing.T) {
	s, spec, imgs, _ := warmSim(t, 4)
	if avg := testing.AllocsPerRun(20, func() {
		s.Forward(imgs, spec, Nominal)
		s.Forward(imgs, spec, Outer)
		s.Forward(imgs, spec, Inner)
	}); avg != 0 {
		t.Fatalf("warm Forward allocates %.1f objects/op, want 0", avg)
	}
}

func TestForwardAndGradientZeroAllocWarm(t *testing.T) {
	s, spec, imgs, target := warmSim(t, 4)
	n := s.GridSize()
	grad := grid.NewField(n, n)
	if avg := testing.AllocsPerRun(20, func() {
		grad.Zero()
		s.ForwardAndGradient(grad, spec, Nominal, target, imgs, 1)
	}); avg != 0 {
		t.Fatalf("warm ForwardAndGradient allocates %.1f objects/op, want 0", avg)
	}
}

func TestMaskSpectrumIntoZeroAllocWarm(t *testing.T) {
	s, spec, _, target := warmSim(t, 4)
	if avg := testing.AllocsPerRun(20, func() {
		s.MaskSpectrumInto(spec, target)
	}); avg != 0 {
		t.Fatalf("warm MaskSpectrumInto allocates %.1f objects/op, want 0", avg)
	}
}

func BenchmarkSimulateWarm(b *testing.B) {
	s, spec, imgs, _ := warmSim(b, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Forward(imgs, spec, Nominal)
	}
}

func BenchmarkForwardAndGradientWarm(b *testing.B) {
	s, spec, imgs, target := warmSim(b, 8)
	grad := grid.NewField(s.GridSize(), s.GridSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grad.Zero()
		s.ForwardAndGradient(grad, spec, Nominal, target, imgs, 1)
	}
}
