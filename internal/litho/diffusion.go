package litho

import (
	"math"

	"lsopc/internal/grid"
)

// Resist diffusion extends the constant-threshold model with the acid
// diffusion blur real photoresists exhibit: the latent image is the
// aerial intensity convolved with a Gaussian of the configured diffusion
// length before thresholding. Setting Config.DiffusionNM = 0 (the
// default and the paper's model) disables it.
//
// The blur is linear and symmetric, so its adjoint is the same blur:
// the gradient path simply blurs the resist sensitivity field W before
// the per-kernel accumulation.

// diffusionKey identifies one memoized diffusion spectrum in the
// resource bank's target cache (the grid size is fixed by the bank).
type diffusionKey struct {
	pixelNM, sigmaNM float64
}

// diffusionSpectrum returns the FFT-layout spectrum of the normalised
// Gaussian blur kernel for the given diffusion length, or nil when
// disabled. The spectrum of a Gaussian with standard deviation σ (nm)
// is exp(−2π²σ²|f|²) — real and positive, so the blur is self-adjoint.
func diffusionSpectrum(n int, pixelNM, sigmaNM float64) *grid.Field {
	if sigmaNM <= 0 {
		return nil
	}
	spec := grid.NewField(n, n)
	c := -2 * math.Pi * math.Pi * sigmaNM * sigmaNM
	for y := 0; y < n; y++ {
		fy := freqBin(y, n) / (float64(n) * pixelNM)
		for x := 0; x < n; x++ {
			fx := freqBin(x, n) / (float64(n) * pixelNM)
			spec.Set(x, y, math.Exp(c*(fx*fx+fy*fy)))
		}
	}
	return spec
}

// freqBin maps FFT index i to its signed bin number.
func freqBin(i, n int) float64 {
	if i > n/2 {
		i -= n
	}
	return float64(i)
}

// blurInPlace convolves f with the diffusion Gaussian via the
// simulator's FFT plan. No-op when diffusion is disabled.
func (s *Simulator) blurInPlace(f *grid.Field) {
	if s.diffusion == nil {
		return
	}
	s.blurScratch.SetReal(f)
	s.plan.Forward(s.blurScratch)
	for i := range s.blurScratch.Data {
		s.blurScratch.Data[i] *= complex(s.diffusion.Data[i], 0)
	}
	s.plan.Inverse(s.blurScratch)
	s.blurScratch.Real(f)
}
