package litho

import (
	"math"
	"testing"

	"lsopc/internal/engine"
	"lsopc/internal/grid"
)

func diffusionSim(t *testing.T, sigmaNM float64) *Simulator {
	t.Helper()
	cfg := DefaultConfig(64, 32)
	cfg.Optics.Kernels = 3
	cfg.DiffusionNM = sigmaNM
	s, err := NewSimulator(cfg, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDiffusionSpectrumProperties(t *testing.T) {
	spec := diffusionSpectrum(64, 4, 20)
	// DC gain 1 (blur preserves total intensity).
	if math.Abs(spec.At(0, 0)-1) > 1e-12 {
		t.Fatalf("DC gain %g", spec.At(0, 0))
	}
	// Monotone decay with frequency along the axis.
	if !(spec.At(1, 0) > spec.At(2, 0) && spec.At(2, 0) > spec.At(3, 0)) {
		t.Fatal("spectrum not decaying")
	}
	// Symmetric in ±f.
	if spec.At(1, 0) != spec.At(63, 0) || spec.At(0, 2) != spec.At(0, 62) {
		t.Fatal("spectrum not symmetric")
	}
	// Disabled diffusion returns nil.
	if diffusionSpectrum(64, 4, 0) != nil {
		t.Fatal("zero diffusion must return nil spectrum")
	}
}

func TestDiffusionConfigValidation(t *testing.T) {
	cfg := DefaultConfig(64, 32)
	cfg.DiffusionNM = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative diffusion accepted")
	}
}

func TestBlurPreservesEnergyAndSmooths(t *testing.T) {
	s := diffusionSim(t, 40)
	n := s.GridSize()
	f := grid.NewField(n, n)
	f.Set(n/2, n/2, 1)
	before := f.Sum()
	s.blurInPlace(f)
	if math.Abs(f.Sum()-before) > 1e-9 {
		t.Fatalf("blur changed total energy: %g → %g", before, f.Sum())
	}
	if f.At(n/2, n/2) >= 1 {
		t.Fatal("blur did not spread the impulse")
	}
	if f.At(n/2+1, n/2) <= 0 {
		t.Fatal("blur did not reach the neighbour")
	}
}

func TestDiffusionSoftensAerialImage(t *testing.T) {
	sharp := diffusionSim(t, 0)
	soft := diffusionSim(t, 40)
	n := sharp.GridSize()
	mask := centeredRectMask(n, 10, 10)

	a1 := grid.NewField(n, n)
	a2 := grid.NewField(n, n)
	sharp.Aerial(a1, sharp.MaskSpectrum(mask), Nominal)
	soft.Aerial(a2, soft.MaskSpectrum(mask), Nominal)

	_, peakSharp := a1.MinMax()
	_, peakSoft := a2.MinMax()
	if peakSoft >= peakSharp {
		t.Fatalf("diffusion did not reduce peak: %g vs %g", peakSoft, peakSharp)
	}
	// Total intensity is preserved by the unit-DC blur.
	if math.Abs(a1.Sum()-a2.Sum()) > 1e-6*a1.Sum() {
		t.Fatalf("diffusion changed dose-to-clear: %g vs %g", a1.Sum(), a2.Sum())
	}
}

// TestDiffusionGradientMatchesFiniteDifference verifies the blur's
// adjoint wiring: the analytic gradient with diffusion enabled must
// match central finite differences.
func TestDiffusionGradientMatchesFiniteDifference(t *testing.T) {
	s := diffusionSim(t, 30)
	n := s.GridSize()
	mask := centeredRectMask(n, 14, 10)
	for i := range mask.Data {
		mask.Data[i] = 0.2 + 0.6*mask.Data[i]
	}
	target := centeredRectMask(n, 14, 10)

	spec := s.MaskSpectrum(mask)
	imgs := NewCornerImages(n)
	grad := grid.NewField(n, n)
	s.ForwardAndGradient(grad, spec, Inner, target, imgs, 1)

	cost := func(m *grid.Field) float64 {
		sp := s.MaskSpectrum(m)
		out := NewCornerImages(n)
		s.Forward(out, sp, Inner)
		return CostAt(out.R, target)
	}
	const h = 1e-5
	for _, p := range [][2]int{{n / 2, n / 2}, {n/2 - 6, n / 2}, {n/2 + 2, n/2 + 3}} {
		x, y := p[0], p[1]
		m := mask.Clone()
		m.Set(x, y, mask.At(x, y)+h)
		up := cost(m)
		m.Set(x, y, mask.At(x, y)-h)
		down := cost(m)
		fd := (up - down) / (2 * h)
		an := grad.At(x, y)
		if math.Abs(fd-an) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("gradient with diffusion at (%d,%d): analytic %g vs FD %g", x, y, an, fd)
		}
	}
}

func TestDiffusionFusedMatchesSeparate(t *testing.T) {
	s := diffusionSim(t, 25)
	n := s.GridSize()
	mask := centeredRectMask(n, 12, 12)
	target := centeredRectMask(n, 10, 10)
	spec := s.MaskSpectrum(mask)

	refImgs := NewCornerImages(n)
	s.Forward(refImgs, spec, Outer)
	refGrad := grid.NewField(n, n)
	s.GradientInto(refGrad, spec, Outer, target, refImgs.R, 1)

	imgs := NewCornerImages(n)
	grad := grid.NewField(n, n)
	s.ForwardAndGradient(grad, spec, Outer, target, imgs, 1)

	if !imgs.Aerial.Equal(refImgs.Aerial, 1e-12) {
		t.Fatal("fused aerial differs under diffusion")
	}
	if !grad.Equal(refGrad, 1e-9) {
		t.Fatal("fused gradient differs under diffusion")
	}
}
