package litho

import (
	"testing"

	"lsopc/internal/engine"
	"lsopc/internal/grid"
)

// eqRand is a deterministic LCG so the random mask is identical across
// runs and Go versions.
type eqRand uint64

func (r *eqRand) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(*r>>11) / float64(1<<53)
}

// randomMask returns a smooth pseudo-random mask in [0,1]: random pixels
// would exercise nothing but noise; a blocky random pattern resembles a
// real layout.
func randomMask(n int, seed uint64) *grid.Field {
	r := eqRand(seed)
	m := grid.NewField(n, n)
	const block = 8
	for by := 0; by < n; by += block {
		for bx := 0; bx < n; bx += block {
			v := 0.0
			if r.next() > 0.5 {
				v = 1
			}
			for y := by; y < by+block && y < n; y++ {
				for x := bx; x < bx+block && x < n; x++ {
					m.Set(x, y, v)
				}
			}
		}
	}
	return m
}

// eqSim builds the test simulator on the given engine.
func eqSim(t *testing.T, eng *engine.Engine, kernels int) *Simulator {
	t.Helper()
	cfg := DefaultConfig(64, 32)
	cfg.Optics.Kernels = kernels
	s, err := NewSimulator(cfg, eng)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fieldsEqual(t *testing.T, what string, a, b *grid.Field) {
	t.Helper()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("%s: pixel %d = %v vs %v (must be bit-identical)", what, i, a.Data[i], b.Data[i])
		}
	}
}

func cfieldsEqual(t *testing.T, what string, a, b *grid.CField) {
	t.Helper()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("%s: bin %d = %v vs %v (must be bit-identical)", what, i, a.Data[i], b.Data[i])
		}
	}
}

// TestEngineEquivalence is the package's determinism contract: the
// serial CPU engine and parallel engines of several worker counts
// (GPU() collapses to one worker on single-core hosts, so explicit
// counts are used) must produce bit-identical spectra, aerial images,
// resist images, printed masks, gradients, and costs on a random mask.
func TestEngineEquivalence(t *testing.T) {
	const n, kernels = 64, 4
	mask := randomMask(n, 42)
	target := randomMask(n, 99)

	type result struct {
		spec     *grid.CField
		aerial   *grid.Field
		fast     *grid.Field
		resist   *grid.Field
		printed  *grid.Field
		grad     *grid.Field
		cost     float64
		gradCost *grid.Field // gradient from Forward+GradientInto (unfused)
	}

	run := func(eng *engine.Engine) result {
		s := eqSim(t, eng, kernels)
		var res result
		res.spec = grid.NewCField(n, n)
		s.MaskSpectrumInto(res.spec, mask)

		res.aerial = grid.NewField(n, n)
		s.Aerial(res.aerial, res.spec, Outer)

		res.fast = grid.NewField(n, n)
		s.AerialFast(res.fast, res.spec, Inner)

		res.resist = grid.NewField(n, n)
		s.Resist(res.resist, res.aerial)

		res.printed = grid.NewField(n, n)
		s.PrintedBinary(res.printed, res.spec, Nominal)

		out := NewCornerImages(n)
		res.grad = grid.NewField(n, n)
		res.cost = s.ForwardAndGradient(res.grad, res.spec, Inner, target, out, 0.7)

		// Unfused path on a fresh simulator for the same corner.
		s2 := eqSim(t, eng, kernels)
		out2 := NewCornerImages(n)
		s2.Forward(out2, res.spec, Inner)
		res.gradCost = grid.NewField(n, n)
		s2.GradientInto(res.gradCost, res.spec, Inner, target, out2.R, 0.7)
		return res
	}

	ref := run(engine.CPU())
	for _, workers := range []int{2, 3, 8} {
		eng := engine.New("gpu-test", workers)
		got := run(eng)
		label := eng.String()
		cfieldsEqual(t, label+" mask spectrum", got.spec, ref.spec)
		fieldsEqual(t, label+" aerial", got.aerial, ref.aerial)
		fieldsEqual(t, label+" fast aerial", got.fast, ref.fast)
		fieldsEqual(t, label+" resist", got.resist, ref.resist)
		fieldsEqual(t, label+" printed", got.printed, ref.printed)
		fieldsEqual(t, label+" gradient", got.grad, ref.grad)
		if got.cost != ref.cost {
			t.Fatalf("%s cost = %v vs %v", label, got.cost, ref.cost)
		}
		fieldsEqual(t, label+" unfused gradient", got.gradCost, ref.gradCost)
	}

	// The fused and unfused pipelines must agree bitwise as well: both
	// accumulate the same per-kernel terms in the same order.
	fieldsEqual(t, "fused vs unfused gradient", ref.grad, ref.gradCost)
}

// TestRetainedMatchesStreamingBitwise checks the two adjoint/aerial
// execution strategies — batched per-kernel fields vs the streaming
// single-field fallback used above the memory cap — are bit-identical:
// both run the same banded transforms and accumulate kernels in the
// same order.
func TestRetainedMatchesStreamingBitwise(t *testing.T) {
	const n, kernels = 64, 4
	eng := engine.New("gpu-test", 3)
	mask := randomMask(n, 7)
	target := randomMask(n, 8)

	s := eqSim(t, eng, kernels)
	if !s.canRetain() {
		t.Fatalf("test grid unexpectedly exceeds the retain budget")
	}
	spec := grid.NewCField(n, n)
	s.MaskSpectrumInto(spec, mask)
	bank := s.Bank(Nominal)

	// Batched aerial + adjoint.
	aerialB := grid.NewField(n, n)
	s.aerialInto(aerialB, bank, spec)
	gradB := grid.NewField(n, n)
	s.sensitivity(s.sens, aerialB, target, 1)
	s.adjointFromFields(s.retained(len(bank.Kernels)), bank, s.sens)
	s.applyGradient(gradB, 1)

	// Streaming aerial + adjoint on a sibling simulator.
	s2, err := s.Sibling(eng)
	if err != nil {
		t.Fatal(err)
	}
	aerialS := grid.NewField(n, n)
	s2.aerialStreaming(aerialS, bank, spec)
	gradS := grid.NewField(n, n)
	s2.sensitivity(s2.sens, aerialS, target, 1)
	s2.adjointStreaming(bank, spec, s2.sens)
	s2.applyGradient(gradS, 1)

	fieldsEqual(t, "retained vs streaming aerial", aerialB, aerialS)
	fieldsEqual(t, "retained vs streaming gradient", gradB, gradS)
}
