package litho

import (
	"time"

	"lsopc/internal/grid"
)

// retainLimitBytes caps the memory spent on the batched per-kernel
// coherent-field stack. Below the cap each kernel's E_k is materialised
// into the batch and transformed by one batched FFT sweep per pass (the
// batching the paper's GPU implementation gets from device memory);
// above it E_k streams through a single scratch field, trading barriers
// for memory.
const retainLimitBytes = 256 << 20

// canRetain reports whether the per-kernel field batch fits the budget
// at the session's precision (complex64 batches cost half the bytes).
func (s *Simulator) canRetain() bool {
	n := s.GridSize()
	k := s.cfg.Optics.Kernels
	elem := 16
	if s.f32() {
		elem = 8
	}
	return k*n*n*elem <= retainLimitBytes
}

// retained returns the per-kernel field batch, leasing fields from the
// session's pool on first use (Release returns them).
func (s *Simulator) retained(k int) []*grid.CField {
	n := s.GridSize()
	for len(s.fields) < k {
		s.fields = append(s.fields, s.pool.CField(n, n))
	}
	return s.fields[:k]
}

// retained32 is retained for the float32 batch.
func (s *Simulator) retained32(k int) []*grid.CField32 {
	n := s.GridSize()
	for len(s.fields32) < k {
		s.fields32 = append(s.fields32, s.pool.CField32(n, n))
	}
	return s.fields32[:k]
}

// ForwardAndGradient runs the exact forward model at one corner and
// accumulates weight·∂‖R−target‖²/∂M into grad (Eq. 11), filling out
// with the aerial and sigmoid resist images. It returns the corner cost
// ‖R−target‖². Compared with Forward followed by GradientInto it
// computes each kernel's coherent field only once when the batch fits in
// memory: the forward pass leaves all K fields E_k in the batch, and the
// adjoint pass reuses them in place.
func (s *Simulator) ForwardAndGradient(grad *grid.Field, maskSpec *grid.CField, cond Condition, target *grid.Field, out *CornerImages, weight float64) float64 {
	start := time.Now()
	bank := s.Bank(cond)
	dose := s.Dose(cond)
	retain := s.canRetain()

	// Pass 1: coherent fields and aerial intensity (Eq. 1). One batched
	// banded inverse FFT over all K kernels, then a pixel-partitioned
	// SOCS reduction.
	s.aerialInto(out.Aerial, bank, maskSpec)
	s.blurInPlace(out.Aerial)
	if dose != 1 {
		out.Aerial.Scale(out.Aerial, dose)
	}
	s.Resist(out.R, out.Aerial)
	cost := CostAt(out.R, target)

	// Pass 2: adjoint accumulation in the frequency domain, reusing the
	// batched E_k when retained.
	s.sensitivity(s.sens, out.R, target, dose)
	switch {
	case retain && s.f32():
		s.adjointFromFields32(s.retained32(len(bank.Kernels)), bank, s.sens)
	case retain:
		s.adjointFromFields(s.retained(len(bank.Kernels)), bank, s.sens)
	case s.f32():
		s.adjointStreaming32(bank, maskSpec, s.sens)
	default:
		s.adjointStreaming(bank, maskSpec, s.sens)
	}
	s.applyGradient(grad, weight)
	d := time.Since(start)
	mFusedNS.Observe(float64(d))
	s.traceCorner("forward_gradient", cond, d)
	return cost
}
