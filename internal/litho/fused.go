package litho

import (
	"lsopc/internal/grid"
)

// retainLimitBytes caps the memory spent caching per-kernel coherent
// fields between the forward and adjoint passes. Below the cap each
// kernel's E_k is computed once per iteration (the batching the paper's
// GPU implementation gets from device memory); above it E_k is
// recomputed in the adjoint pass, trading FLOPs for memory.
const retainLimitBytes = 256 << 20

// canRetain reports whether the per-kernel field cache fits the budget.
func (s *Simulator) canRetain() bool {
	n := s.GridSize()
	k := s.cfg.Optics.Kernels
	return k*n*n*16 <= retainLimitBytes
}

// retained returns the per-kernel field cache, allocating on first use.
func (s *Simulator) retained(k int) []*grid.CField {
	n := s.GridSize()
	for len(s.fields) < k {
		s.fields = append(s.fields, grid.NewCField(n, n))
	}
	return s.fields[:k]
}

// ForwardAndGradient runs the exact forward model at one corner and
// accumulates weight·∂‖R−target‖²/∂M into grad (Eq. 11), filling out
// with the aerial and sigmoid resist images. It returns the corner cost
// ‖R−target‖². Compared with Forward followed by GradientInto it
// computes each kernel's coherent field only once when the retention
// cache fits in memory.
func (s *Simulator) ForwardAndGradient(grad *grid.Field, maskSpec *grid.CField, cond Condition, target *grid.Field, out *CornerImages, weight float64) float64 {
	bank := s.Bank(cond)
	n := s.GridSize()
	dose := s.Dose(cond)
	retain := s.canRetain()
	var cache []*grid.CField
	if retain {
		cache = s.retained(len(bank.Kernels))
	}

	// Pass 1: coherent fields and aerial intensity (Eq. 1).
	out.Aerial.Zero()
	for ki, k := range bank.Kernels {
		dst := s.field
		if retain {
			dst = cache[ki]
		}
		k.MulInto(dst, maskSpec)
		s.plan.Inverse(dst)
		dst.AccumAbsSq(out.Aerial, k.Weight)
	}
	s.blurInPlace(out.Aerial)
	if dose != 1 {
		out.Aerial.Scale(out.Aerial, dose)
	}
	s.Resist(out.R, out.Aerial)
	cost := CostAt(out.R, target)

	// W = 2·s·dose·(R−R*)⊙R⊙(1−R), pulled back through the diffusion
	// blur (self-adjoint) when enabled.
	w := grid.NewField(n, n)
	c := 2 * s.cfg.Steepness * dose
	for i := range w.Data {
		rv := out.R.Data[i]
		w.Data[i] = c * (rv - target.Data[i]) * rv * (1 - rv)
	}
	s.blurInPlace(w)

	// Pass 2: adjoint accumulation in the frequency domain.
	s.accum.Zero()
	for ki, k := range bank.Kernels {
		var ek *grid.CField
		if retain {
			ek = cache[ki]
		} else {
			ek = s.field
			k.MulInto(ek, maskSpec)
			s.plan.Inverse(ek)
		}
		for i := range s.ampSpec.Data {
			e := ek.Data[i]
			s.ampSpec.Data[i] = complex(w.Data[i], 0) * complex(real(e), -imag(e))
		}
		s.plan.Forward(s.ampSpec)
		k.AccumFlipMul(s.accum, s.ampSpec, complex(k.Weight, 0))
	}
	s.plan.Inverse(s.accum)
	for i := range grad.Data {
		grad.Data[i] += weight * 2 * real(s.accum.Data[i])
	}
	return cost
}
