package litho

import (
	"math"
	"testing"

	"lsopc/internal/grid"
)

func TestForwardAndGradientMatchesSeparatePath(t *testing.T) {
	for _, cond := range AllConditions {
		s := testSim(t, 3)
		n := s.GridSize()
		mask := centeredRectMask(n, 14, 10)
		target := centeredRectMask(n, 12, 8)
		spec := s.MaskSpectrum(mask)

		// Reference: Forward then GradientInto.
		refImgs := NewCornerImages(n)
		s.Forward(refImgs, spec, cond)
		refGrad := grid.NewField(n, n)
		s.GradientInto(refGrad, spec, cond, target, refImgs.R, 0.7)
		refCost := CostAt(refImgs.R, target)

		// Fused path.
		imgs := NewCornerImages(n)
		grad := grid.NewField(n, n)
		cost := s.ForwardAndGradient(grad, spec, cond, target, imgs, 0.7)

		if math.Abs(cost-refCost) > 1e-9*(1+refCost) {
			t.Fatalf("%v: fused cost %g vs %g", cond, cost, refCost)
		}
		if !imgs.R.Equal(refImgs.R, 1e-12) || !imgs.Aerial.Equal(refImgs.Aerial, 1e-12) {
			t.Fatalf("%v: fused images differ", cond)
		}
		if !grad.Equal(refGrad, 1e-9) {
			t.Fatalf("%v: fused gradient differs", cond)
		}
	}
}

func TestForwardAndGradientAccumulates(t *testing.T) {
	s := testSim(t, 2)
	n := s.GridSize()
	mask := centeredRectMask(n, 10, 10)
	target := centeredRectMask(n, 8, 8)
	spec := s.MaskSpectrum(mask)
	imgs := NewCornerImages(n)

	g1 := grid.NewField(n, n)
	s.ForwardAndGradient(g1, spec, Nominal, target, imgs, 1)
	s.ForwardAndGradient(g1, spec, Inner, target, imgs, 0.5)

	g2 := grid.NewField(n, n)
	s.ForwardAndGradient(g2, spec, Inner, target, imgs, 0.5)
	s.ForwardAndGradient(g2, spec, Nominal, target, imgs, 1)

	if !g1.Equal(g2, 1e-9) {
		t.Fatal("gradient accumulation must be order-independent")
	}
}

func TestCanRetainRespectsBudget(t *testing.T) {
	s := testSim(t, 3)
	if !s.canRetain() {
		t.Fatal("64-px grid with 3 kernels must fit the retention budget")
	}
	// 24 kernels at 2048² would be 1.6 GB — must not retain.
	big := Simulator{cfg: Config{Optics: s.cfg.Optics}}
	big.cfg.Optics.GridSize = 2048
	big.cfg.Optics.Kernels = 24
	if big.canRetain() {
		t.Fatal("2048²×24 must exceed the retention budget")
	}
}
