// Package litho implements the forward lithography model of the paper's
// §II: the Hopkins/SOCS aerial image (Eq. 1), the constant-threshold
// resist (Eq. 2) and its differentiable sigmoid relaxation (Eq. 8), and
// the three process-window corners used by the PV-band cost (nominal;
// outer = nominal focus at +2 % dose; inner = defocus at −2 % dose).
//
// It also implements the adjoint (gradient) of the image-fidelity cost
// ‖R − R*‖² with respect to the mask (Eq. 11), accumulated in the
// frequency domain so each kernel costs one extra FFT.
package litho

import (
	"fmt"
	"time"

	"lsopc/internal/engine"
	"lsopc/internal/fft"
	"lsopc/internal/grid"
	"lsopc/internal/obs"
	"lsopc/internal/optics"
	"lsopc/internal/rt"
)

// Per-corner simulate timings in the default registry, one histogram per
// direction of the model.
var (
	mForwardNS  = obs.Default.Histogram("litho.forward_ns", obs.DurationBounds)
	mGradientNS = obs.Default.Histogram("litho.gradient_ns", obs.DurationBounds)
	mFusedNS    = obs.Default.Histogram("litho.forward_gradient_ns", obs.DurationBounds)
)

// Condition identifies one process corner.
type Condition int

const (
	// Nominal is the reference condition: best focus, 100 % dose.
	Nominal Condition = iota
	// Outer produces the outermost printed contour: best focus, +dose.
	Outer
	// Inner produces the innermost printed contour: defocus, −dose.
	Inner
	numConditions
)

// String implements fmt.Stringer.
func (c Condition) String() string {
	switch c {
	case Nominal:
		return "nominal"
	case Outer:
		return "outer"
	case Inner:
		return "inner"
	default:
		return fmt.Sprintf("Condition(%d)", int(c))
	}
}

// AllConditions lists the three process corners in a stable order.
var AllConditions = []Condition{Nominal, Outer, Inner}

// Config parameterises the simulator.
type Config struct {
	Optics    optics.Config
	Threshold float64 // resist intensity threshold I_th (contest: 0.225)
	Steepness float64 // sigmoid steepness s (Eq. 8)
	DefocusNM float64 // focus excursion for the inner corner (contest: 25)
	DoseVar   float64 // fractional dose excursion (contest: 0.02)
	// DiffusionNM is the resist acid-diffusion length (Gaussian blur σ
	// applied to the aerial image before the resist threshold). 0
	// disables it and reproduces the paper's pure constant-threshold
	// model.
	DiffusionNM float64
	// Precision selects the arithmetic of the per-kernel coherent-field
	// batches (see the Precision type). Float64 — the zero value — is
	// the bit-exact default.
	Precision Precision
}

// DefaultConfig returns the ICCAD 2013 contest parameters at the given
// simulation grid resolution.
func DefaultConfig(gridSize int, pixelNM float64) Config {
	return Config{
		Optics:    optics.Default(gridSize, pixelNM),
		Threshold: 0.225,
		Steepness: 50,
		DefocusNM: 25,
		DoseVar:   0.02,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Optics.Validate(); err != nil {
		return err
	}
	switch {
	case c.Threshold <= 0 || c.Threshold >= 1:
		return fmt.Errorf("litho: threshold must be in (0,1), got %g", c.Threshold)
	case c.Steepness <= 0:
		return fmt.Errorf("litho: steepness must be positive, got %g", c.Steepness)
	case c.DefocusNM < 0:
		return fmt.Errorf("litho: defocus must be non-negative, got %g", c.DefocusNM)
	case c.DoseVar < 0 || c.DoseVar >= 1:
		return fmt.Errorf("litho: dose variation must be in [0,1), got %g", c.DoseVar)
	case c.DiffusionNM < 0:
		return fmt.Errorf("litho: diffusion length must be ≥ 0, got %g", c.DiffusionNM)
	case c.Precision != Float64 && c.Precision != Float32:
		return fmt.Errorf("litho: unknown precision %d", int(c.Precision))
	}
	return nil
}

// Simulator evaluates the forward imaging model and its adjoint. A
// Simulator is a *session* over an immutable rt.Bank: the kernel banks,
// 1-D FFT plans and derived read-only fields are shared with every other
// session on the same bank, while the mutable scratch (coherent-field
// batches, accumulators, plan workspaces) is leased from the bank's pool
// and returned by Release. One session owns its scratch exclusively and
// is NOT safe for concurrent use; create one per goroutine via
// NewSession or Sibling.
type Simulator struct {
	cfg  Config
	eng  *engine.Engine
	res  *rt.Bank // shared immutable resources
	pool *rt.Pool // == res.Pool(); where all scratch below is leased from

	plan    *fft.Plan2D
	batch   *fft.BatchPlan2D
	batch32 *fft.BatchPlan2D32 // nil unless cfg.Precision == Float32

	nominalBank *optics.Bank // focus = 0 (aliases res.Nominal())
	defocusBank *optics.Bank // focus = DefocusNM (aliases res.Defocus())

	// Leased scratch, reused across calls and returned by Release.
	field   *grid.CField    // per-kernel coherent field E_k (non-batched fallback)
	accum   *grid.CField    // frequency-domain gradient accumulator
	ampSpec *grid.CField    // spectrum of W ⊙ conj(E_k) (non-batched fallback)
	fields  []*grid.CField  // batched per-kernel fields (see fused.go)
	single  [1]*grid.CField // reusable singleton for banded one-field transforms
	sens    *grid.Field     // resist sensitivity W (hoisted out of the hot path)
	aerial  *grid.Field     // aerial temp for PrintedBinary

	// Float32 twins of the batch scratch, leased only when the session
	// runs at Float32 precision (see precision.go).
	field32   *grid.CField32
	ampSpec32 *grid.CField32
	fields32  []*grid.CField32
	single32  [1]*grid.CField32

	planScratch    *grid.CField // backs plan's transpose + real-pack workspace
	batchScratch   *grid.CField // backs batch's per-worker column buffers
	batchScratch32 *grid.CField32

	// Resist diffusion (see diffusion.go); nil when disabled. The
	// spectrum is shared read-only through the bank's target cache.
	diffusion   *grid.Field
	blurScratch *grid.CField

	// Per-call operands staged for the pre-bound engine bodies below.
	// Binding the closures once per session keeps the simulate/gradient
	// hot paths free of closure allocations (engine bodies escape).
	opFields   []*grid.CField
	opFields32 []*grid.CField32
	opBank     *optics.Bank
	opSpec     *grid.CField
	opDst      *grid.Field
	opW        *grid.Field
	opR        *grid.Field
	opTarget   *grid.Field
	opScale    float64
	opGrad     *grid.Field

	materializeBody   func(lo, hi int)
	reduceBody        func(lo, hi int)
	sensBody          func(lo, hi int)
	adjointBody       func(lo, hi int)
	ampBody           func(lo, hi int)
	applyBody         func(lo, hi int)
	materializeBody32 func(lo, hi int)
	reduceBody32      func(lo, hi int)
	adjointBody32     func(lo, hi int)
	ampBody32         func(lo, hi int)

	// Optional trace sink for per-corner timing events. nil keeps the
	// hot paths at a single nil check; set via SetSink.
	sink    obs.Sink
	traceID string

	released bool
}

// NewSimulator builds a simulator session on the process-wide shared
// resource bank for cfg, synthesising the kernel banks on first use.
// Repeated construction at one preset reuses the same bank and recycled
// scratch, so a simulator per job is cheap.
func NewSimulator(cfg Config, eng *engine.Engine) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if eng == nil {
		eng = engine.CPU()
	}
	res, err := rt.BankFor(cfg.Optics, cfg.DefocusNM, eng)
	if err != nil {
		return nil, err
	}
	return NewSession(res, cfg, eng)
}

// NewWithBanks builds a simulator around existing kernel banks, letting
// several simulators (e.g. one per worker) share the immutable banks.
func NewWithBanks(cfg Config, eng *engine.Engine, nominal, defocus *optics.Bank) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Optics.GridSize
	if nominal.Cfg.GridSize != n || defocus.Cfg.GridSize != n {
		return nil, fmt.Errorf("litho: bank grid does not match config grid %d", n)
	}
	res, err := rt.WrapBanks(nominal, defocus, nil)
	if err != nil {
		return nil, err
	}
	return NewSession(res, cfg, eng)
}

// NewSession builds a simulator session over an existing resource bank:
// the immutable kernel banks and FFT plans come from res, every piece of
// mutable scratch is leased from res.Pool(). Call Release when the
// session's work is done to return the scratch for reuse.
func NewSession(res *rt.Bank, cfg Config, eng *engine.Engine) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("litho: session requires a resource bank")
	}
	if eng == nil {
		eng = engine.CPU()
	}
	n := cfg.Optics.GridSize
	if res.GridSize() != n {
		return nil, fmt.Errorf("litho: bank grid does not match config grid %d", n)
	}
	pool := res.Pool()
	s := &Simulator{
		cfg:         cfg,
		eng:         eng,
		res:         res,
		pool:        pool,
		nominalBank: res.Nominal(),
		defocusBank: res.Defocus(),
		field:       pool.CField(n, n),
		accum:       pool.CField(n, n),
		ampSpec:     pool.CField(n, n),
		sens:        pool.Field(n, n),
		aerial:      pool.Field(n, n),
	}
	// Plan workspaces are leased as complex fields of exactly the
	// required element count so they recycle like any other buffer.
	s.planScratch = pool.CField(n, fft.Plan2DScratchLen(n, n)/n)
	s.plan = fft.NewPlan2DFromPlans(res.RowPlan(), res.ColPlan(), eng, s.planScratch.Data)
	s.batchScratch = pool.CField(n, fft.BatchScratchLen(n, eng.Workers())/n)
	s.batch = fft.NewBatchPlan2DFromPlans(res.RowPlan(), res.ColPlan(), eng, s.batchScratch.Data)
	if cfg.Precision == Float32 {
		s.batchScratch32 = pool.CField32(n, fft.BatchScratchLen32(n, eng.Workers())/n)
		s.batch32 = fft.NewBatchPlan2D32FromPlans(fft.CachedPlan32(n), fft.CachedPlan32(n), eng, s.batchScratch32.Data)
		s.field32 = pool.CField32(n, n)
		s.ampSpec32 = pool.CField32(n, n)
	}
	if cfg.DiffusionNM > 0 {
		d, err := res.Target(diffusionKey{pixelNM: cfg.Optics.PixelNM, sigmaNM: cfg.DiffusionNM},
			func() (*grid.Field, error) {
				return diffusionSpectrum(n, cfg.Optics.PixelNM, cfg.DiffusionNM), nil
			})
		if err != nil {
			return nil, err
		}
		s.diffusion = d
		s.blurScratch = pool.CField(n, n)
	}
	s.bindBodies()
	return s, nil
}

// bindBodies creates the engine bodies once per session; the hot-path
// methods stage their operands in the op* fields and reuse these.
func (s *Simulator) bindBodies() {
	s.materializeBody = func(lo, hi int) {
		fields, kernels, spec := s.opFields, s.opBank.Kernels, s.opSpec
		for k := lo; k < hi; k++ {
			kernels[k].MulIntoBand(fields[k], spec)
		}
	}
	s.reduceBody = func(lo, hi int) {
		fields, kernels := s.opFields, s.opBank.Kernels
		d := s.opDst.Data[lo:hi]
		for i := range d {
			d[i] = 0
		}
		for ki := range fields {
			w := kernels[ki].Weight
			f := fields[ki].Data[lo:hi]
			for i, v := range f {
				re, im := real(v), imag(v)
				d[i] += w * (re*re + im*im)
			}
		}
	}
	s.sensBody = func(lo, hi int) {
		w, r, target, c := s.opW, s.opR, s.opTarget, s.opScale
		for i := lo; i < hi; i++ {
			rv := r.Data[i]
			w.Data[i] = c * (rv - target.Data[i]) * rv * (1 - rv)
		}
	}
	s.adjointBody = func(lo, hi int) {
		fields, w := s.opFields, s.opW
		nn := len(w.Data)
		for i := lo; i < hi; {
			ki, j := i/nn, i%nn
			end := (ki + 1) * nn
			if end > hi {
				end = hi
			}
			data := fields[ki].Data
			for ; i < end; i, j = i+1, j+1 {
				e := data[j]
				data[j] = complex(w.Data[j], 0) * complex(real(e), -imag(e))
			}
		}
	}
	s.ampBody = func(lo, hi int) {
		w := s.opW
		for i := lo; i < hi; i++ {
			e := s.field.Data[i]
			s.ampSpec.Data[i] = complex(w.Data[i], 0) * complex(real(e), -imag(e))
		}
	}
	s.applyBody = func(lo, hi int) {
		grad, weight := s.opGrad, s.opScale
		for i := lo; i < hi; i++ {
			grad.Data[i] += weight * 2 * real(s.accum.Data[i])
		}
	}
	s.bindBodies32()
}

// SetSink attaches a trace sink to the session: Forward, GradientInto
// and ForwardAndGradient then emit one per-corner timing event per call,
// tagged with traceID so traces from concurrent sessions stay
// distinguishable. Pass nil to detach (the default); the disabled path
// costs one nil check per call and never allocates.
func (s *Simulator) SetSink(sink obs.Sink, traceID string) {
	s.sink = sink
	s.traceID = traceID
}

// traceCorner reports one simulate span to the attached sink.
func (s *Simulator) traceCorner(name string, cond Condition, d time.Duration) {
	if s.sink != nil {
		s.sink.Emit(obs.Event{
			Type:   obs.EventCorner,
			Trace:  s.traceID,
			Name:   name,
			Engine: s.eng.Name(),
			Corner: cond.String(),
			N:      s.cfg.Optics.GridSize,
			DurNS:  d.Nanoseconds(),
		})
	}
}

// Sibling builds a simulator session sharing this simulator's resource
// bank but owning fresh leased scratch, scheduled on eng — the way to
// fan process corners across Split sub-engines without data races. The
// sibling inherits this session's trace sink and trace id.
func (s *Simulator) Sibling(eng *engine.Engine) (*Simulator, error) {
	sib, err := NewSession(s.res, s.cfg, eng)
	if err != nil {
		return nil, err
	}
	sib.SetSink(s.sink, s.traceID)
	return sib, nil
}

// Release returns every leased scratch buffer to the bank's pool. The
// simulator must not be used afterwards. Release is idempotent and
// nil-safe; shared bank resources are untouched.
func (s *Simulator) Release() {
	if s == nil || s.released {
		return
	}
	s.released = true
	p := s.pool
	p.PutCField(s.field)
	p.PutCField(s.accum)
	p.PutCField(s.ampSpec)
	for _, f := range s.fields {
		p.PutCField(f)
	}
	p.PutField(s.sens)
	p.PutField(s.aerial)
	p.PutCField(s.planScratch)
	p.PutCField(s.batchScratch)
	p.PutCField(s.blurScratch)
	p.PutCField32(s.field32)
	p.PutCField32(s.ampSpec32)
	for _, f := range s.fields32 {
		p.PutCField32(f)
	}
	p.PutCField32(s.batchScratch32)
	s.field, s.accum, s.ampSpec, s.blurScratch = nil, nil, nil, nil
	s.fields = nil
	s.single[0] = nil
	s.field32, s.ampSpec32, s.batchScratch32 = nil, nil, nil
	s.fields32 = nil
	s.single32[0] = nil
	s.sens, s.aerial, s.diffusion = nil, nil, nil
	s.planScratch, s.batchScratch = nil, nil
	s.plan, s.batch, s.batch32 = nil, nil, nil
	s.opBank = nil
}

// Resources returns the immutable resource bank backing this session.
func (s *Simulator) Resources() *rt.Bank { return s.res }

// Pool returns the pool this session leases scratch from.
func (s *Simulator) Pool() *rt.Pool { return s.pool }

// Config returns the simulator configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Engine returns the simulator's execution engine.
func (s *Simulator) Engine() *engine.Engine { return s.eng }

// GridSize returns the simulation grid edge in pixels.
func (s *Simulator) GridSize() int { return s.cfg.Optics.GridSize }

// PixelNM returns the pixel pitch in nm.
func (s *Simulator) PixelNM() float64 { return s.cfg.Optics.PixelNM }

// Bank returns the kernel bank for the given condition's focus setting.
func (s *Simulator) Bank(c Condition) *optics.Bank {
	if c == Inner {
		return s.defocusBank
	}
	return s.nominalBank
}

// Dose returns the multiplicative dose factor for the condition.
func (s *Simulator) Dose(c Condition) float64 {
	switch c {
	case Outer:
		return 1 + s.cfg.DoseVar
	case Inner:
		return 1 - s.cfg.DoseVar
	default:
		return 1
	}
}

// MaskSpectrum computes FFT(mask) into a new complex field. Call once
// per mask update and share the spectrum across corners and gradient
// passes.
func (s *Simulator) MaskSpectrum(mask *grid.Field) *grid.CField {
	return s.plan.Spectrum(mask)
}

// MaskSpectrumInto computes FFT(mask) into dst using the real-input
// fast path (the mask is always real).
func (s *Simulator) MaskSpectrumInto(dst *grid.CField, mask *grid.Field) {
	s.plan.ForwardReal(dst, mask)
}

// inverseBanded runs the band-limited batched inverse on a single field.
func (s *Simulator) inverseBanded(c *grid.CField, band int) {
	s.single[0] = c
	s.batch.BatchInverseBanded(s.single[:], band)
}

// materialize fills fields[k] with the per-kernel spectral products
// spec_k ∘ M̂, fanning the kernels across the engine's workers. Each
// field is written by exactly one worker, so the result is independent
// of scheduling.
func (s *Simulator) materialize(fields []*grid.CField, bank *optics.Bank, maskSpec *grid.CField) {
	s.opFields, s.opBank, s.opSpec = fields, bank, maskSpec
	s.eng.ForChunk(len(bank.Kernels), s.materializeBody)
	s.opFields, s.opSpec = nil, nil
}

// reduceAbsSq reduces the SOCS sum dst = Σ_k μ_k |E_k|² over the batch
// of coherent fields. The reduction is partitioned over pixels; within
// each pixel the kernels are summed in ascending k order, so the result
// is bit-identical for any worker count (and to the serial per-kernel
// AccumAbsSq loop).
func (s *Simulator) reduceAbsSq(dst *grid.Field, fields []*grid.CField, bank *optics.Bank) {
	s.opDst, s.opFields, s.opBank = dst, fields, bank
	s.eng.ForChunk(len(dst.Data), s.reduceBody)
	s.opDst, s.opFields = nil, nil
}

// aerialInto computes the undosed SOCS intensity Σ_k μ_k |h_k ⊗ M|²
// into dst. When the per-kernel field batch fits the retention budget
// all K coherent fields are materialised at once and inverse-transformed
// by one batched banded FFT sweep; otherwise the kernels stream through
// a single scratch field.
func (s *Simulator) aerialInto(dst *grid.Field, bank *optics.Bank, maskSpec *grid.CField) {
	if s.f32() {
		if s.canRetain() {
			fields := s.retained32(len(bank.Kernels))
			s.materialize32(fields, bank, maskSpec)
			s.batch32.BatchInverseBanded(fields, bank.Radius())
			s.reduceAbsSq32(dst, fields, bank)
			return
		}
		s.aerialStreaming32(dst, bank, maskSpec)
		return
	}
	if s.canRetain() {
		fields := s.retained(len(bank.Kernels))
		s.materialize(fields, bank, maskSpec)
		s.batch.BatchInverseBanded(fields, bank.Radius())
		s.reduceAbsSq(dst, fields, bank)
		return
	}
	s.aerialStreaming(dst, bank, maskSpec)
}

// aerialStreaming is the low-memory SOCS fallback: each kernel streams
// through the single scratch field and accumulates serially, in the same
// ascending-k order as the batched reduction (bit-identical to it).
func (s *Simulator) aerialStreaming(dst *grid.Field, bank *optics.Bank, maskSpec *grid.CField) {
	dst.Zero()
	for _, k := range bank.Kernels {
		k.MulIntoBand(s.field, maskSpec)
		s.inverseBanded(s.field, k.R)
		s.field.AccumAbsSq(dst, k.Weight)
	}
}

// Aerial computes the dose-scaled aerial image (Eq. 1) for the given
// corner into dst: dst = dose · Σ_k μ_k |h_k ⊗ M|².
func (s *Simulator) Aerial(dst *grid.Field, maskSpec *grid.CField, cond Condition) {
	s.aerialInto(dst, s.Bank(cond), maskSpec)
	s.blurInPlace(dst)
	if dose := s.Dose(cond); dose != 1 {
		dst.Scale(dst, dose)
	}
}

// AerialFast computes the Eq. 17 fused-kernel approximation of the
// aerial image: dst = dose · |(Σ_k μ_k h_k) ⊗ M|². One convolution
// instead of K; exact only for a coherent (K = 1) system. This is the
// fast path the paper's GPU scheme precomputes.
func (s *Simulator) AerialFast(dst *grid.Field, maskSpec *grid.CField, cond Condition) {
	bank := s.Bank(cond)
	bank.Combined.MulIntoBand(s.field, maskSpec)
	s.inverseBanded(s.field, bank.Combined.R)
	s.field.AbsSqInto(dst)
	s.blurInPlace(dst)
	if dose := s.Dose(cond); dose != 1 {
		dst.Scale(dst, dose)
	}
}

// Resist applies the sigmoid resist model (Eq. 8) to an aerial image.
func (s *Simulator) Resist(dst, aerial *grid.Field) {
	dst.Sigmoid(aerial, s.cfg.Steepness, s.cfg.Threshold)
}

// ResistBinary applies the hard-threshold resist model (Eq. 2).
func (s *Simulator) ResistBinary(dst, aerial *grid.Field) {
	dst.Threshold(aerial, s.cfg.Threshold)
}

// PrintedBinary runs the full forward model (exact aerial + threshold
// resist) for the corner, the configuration used by the metric checkers.
func (s *Simulator) PrintedBinary(dst *grid.Field, maskSpec *grid.CField, cond Condition) {
	s.Aerial(s.aerial, maskSpec, cond)
	s.ResistBinary(dst, s.aerial)
}

// CornerImages bundles the forward results the optimizer needs at one
// process corner.
type CornerImages struct {
	Aerial *grid.Field // dose-scaled intensity
	R      *grid.Field // sigmoid resist image
}

// NewCornerImages allocates result storage for an n×n simulator grid.
func NewCornerImages(n int) *CornerImages {
	return &CornerImages{Aerial: grid.NewField(n, n), R: grid.NewField(n, n)}
}

// LeaseCornerImages leases result storage for an n×n grid from a pool;
// return it with ReleaseTo.
func LeaseCornerImages(p *rt.Pool, n int) *CornerImages {
	return &CornerImages{Aerial: p.Field(n, n), R: p.Field(n, n)}
}

// ReleaseTo returns the images' storage to the pool they were leased
// from. The CornerImages must not be used afterwards. nil-safe.
func (c *CornerImages) ReleaseTo(p *rt.Pool) {
	if c == nil {
		return
	}
	p.PutField(c.Aerial)
	p.PutField(c.R)
	c.Aerial, c.R = nil, nil
}

// Forward fills out with the exact aerial image and sigmoid resist image
// at the given corner.
func (s *Simulator) Forward(out *CornerImages, maskSpec *grid.CField, cond Condition) {
	start := time.Now()
	s.Aerial(out.Aerial, maskSpec, cond)
	s.Resist(out.R, out.Aerial)
	d := time.Since(start)
	mForwardNS.Observe(float64(d))
	s.traceCorner("forward", cond, d)
}

// GradientInto accumulates the Jacobian of L = ‖R − R*‖² with respect to
// the mask at one corner (Eq. 11) into grad, scaled by weight:
//
//	grad += weight · ∂‖R(cond) − target‖²/∂M.
//
// R must be the sigmoid resist image previously computed by Forward for
// the same maskSpec and corner. With W = 2·s·dose·(R−R*)⊙R⊙(1−R) and
// E_k = h_k ⊗ M, the Jacobian is Σ_k μ_k·2 Re{flip(h_k) ⊗ (W⊙conj(E_k))};
// the per-kernel terms are accumulated as spectra so the final inverse
// transform happens once.
func (s *Simulator) GradientInto(grad *grid.Field, maskSpec *grid.CField, cond Condition, target *grid.Field, r *grid.Field, weight float64) {
	start := time.Now()
	bank := s.Bank(cond)
	s.sensitivity(s.sens, r, target, s.Dose(cond))
	switch {
	case s.f32() && s.canRetain():
		fields := s.retained32(len(bank.Kernels))
		s.materialize32(fields, bank, maskSpec)
		s.batch32.BatchInverseBanded(fields, bank.Radius())
		s.adjointFromFields32(fields, bank, s.sens)
	case s.f32():
		s.adjointStreaming32(bank, maskSpec, s.sens)
	case s.canRetain():
		fields := s.retained(len(bank.Kernels))
		s.materialize(fields, bank, maskSpec)
		s.batch.BatchInverseBanded(fields, bank.Radius())
		s.adjointFromFields(fields, bank, s.sens)
	default:
		s.adjointStreaming(bank, maskSpec, s.sens)
	}
	s.applyGradient(grad, weight)
	d := time.Since(start)
	mGradientNS.Observe(float64(d))
	s.traceCorner("gradient", cond, d)
}

// sensitivity computes the resist sensitivity field
// W = 2·s·dose·(R−R*)⊙R⊙(1−R) into w. With resist diffusion enabled
// the blur's adjoint (itself) maps the sensitivity back through the
// latent-image convolution.
func (s *Simulator) sensitivity(w *grid.Field, r, target *grid.Field, dose float64) {
	s.opW, s.opR, s.opTarget, s.opScale = w, r, target, 2*s.cfg.Steepness*dose
	s.eng.ForChunk(len(w.Data), s.sensBody)
	s.opW, s.opR, s.opTarget = nil, nil, nil
	s.blurInPlace(w)
}

// zeroAccumBand clears the rows of the gradient accumulator the adjoint
// multiply will write (|v| ≤ band); the banded inverse never reads the
// rest.
func (s *Simulator) zeroAccumBand(band int) {
	n := s.GridSize()
	if 2*band+1 >= n {
		s.accum.Zero()
		return
	}
	clear := func(lo, hi int) {
		d := s.accum.Data[lo*n : hi*n]
		for i := range d {
			d[i] = 0
		}
	}
	clear(0, band+1)
	clear(n-band, n)
}

// adjointFromFields runs the adjoint half of Eq. 11 given the coherent
// fields E_k in fields (which it overwrites): every field becomes
// W ⊙ conj(E_k), one batched output-pruned forward FFT produces the
// amplitude spectra, and the per-kernel flip-multiplies accumulate into
// s.accum, which is inverse-transformed back to the spatial domain.
func (s *Simulator) adjointFromFields(fields []*grid.CField, bank *optics.Bank, w *grid.Field) {
	s.opFields, s.opW = fields, w
	s.eng.ForChunk(len(fields)*len(w.Data), s.adjointBody)
	s.opFields, s.opW = nil, nil
	s.batch.BatchForwardBandedCols(fields, bank.Radius())
	s.zeroAccumBand(bank.Radius())
	for ki, k := range bank.Kernels {
		k.AccumFlipMul(s.accum, fields[ki], complex(k.Weight, 0))
	}
	s.inverseBanded(s.accum, bank.Radius())
}

// adjointStreaming is the low-memory adjoint: per-kernel fields stream
// through a single scratch buffer instead of the retained batch.
func (s *Simulator) adjointStreaming(bank *optics.Bank, maskSpec *grid.CField, w *grid.Field) {
	s.zeroAccumBand(bank.Radius())
	for _, k := range bank.Kernels {
		// E_k = IFFT(spec_k ∘ Mhat)
		k.MulIntoBand(s.field, maskSpec)
		s.inverseBanded(s.field, k.R)
		// amp = W ⊙ conj(E_k)
		s.opW = w
		s.eng.ForChunk(len(s.ampSpec.Data), s.ampBody)
		s.opW = nil
		s.single[0] = s.ampSpec
		s.batch.BatchForwardBandedCols(s.single[:], k.R)
		// accum += μ_k · amp_spec ∘ spec(flip(h_k))
		k.AccumFlipMul(s.accum, s.ampSpec, complex(k.Weight, 0))
	}
	s.inverseBanded(s.accum, bank.Radius())
}

// applyGradient adds weight·2·Re{accum} into grad.
func (s *Simulator) applyGradient(grad *grid.Field, weight float64) {
	s.opGrad, s.opScale = grad, weight
	s.eng.ForChunk(len(grad.Data), s.applyBody)
	s.opGrad = nil
}

// CostAt returns ‖R − target‖² for the sigmoid resist image r.
func CostAt(r, target *grid.Field) float64 {
	var sum float64
	for i := range r.Data {
		d := r.Data[i] - target.Data[i]
		sum += d * d
	}
	return sum
}
