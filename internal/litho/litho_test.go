package litho

import (
	"math"
	"testing"

	"lsopc/internal/engine"
	"lsopc/internal/grid"
)

// testSim builds a small simulator: 64 px grid at 32 nm/px (2048 nm
// field) with few kernels, fast enough for finite-difference checks.
func testSim(t *testing.T, kernels int) *Simulator {
	t.Helper()
	cfg := DefaultConfig(64, 32)
	cfg.Optics.Kernels = kernels
	s, err := NewSimulator(cfg, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// centeredRectMask returns a mask with a centred rectangle of the given
// pixel dimensions.
func centeredRectMask(n, w, h int) *grid.Field {
	m := grid.NewField(n, n)
	x0, y0 := (n-w)/2, (n-h)/2
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			m.Set(x, y, 1)
		}
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(512, 4).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Threshold = 0 },
		func(c *Config) { c.Threshold = 1.5 },
		func(c *Config) { c.Steepness = -1 },
		func(c *Config) { c.DefocusNM = -5 },
		func(c *Config) { c.DoseVar = 1.5 },
		func(c *Config) { c.Optics.GridSize = 100 },
	}
	for i, mut := range bad {
		c := DefaultConfig(512, 4)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestConditionString(t *testing.T) {
	if Nominal.String() != "nominal" || Outer.String() != "outer" || Inner.String() != "inner" {
		t.Fatal("condition names wrong")
	}
	if Condition(99).String() != "Condition(99)" {
		t.Fatal("unknown condition formatting wrong")
	}
}

func TestOpenMaskImagesToUnitIntensity(t *testing.T) {
	s := testSim(t, 4)
	n := s.GridSize()
	mask := grid.NewField(n, n)
	mask.Fill(1)
	spec := s.MaskSpectrum(mask)
	aerial := grid.NewField(n, n)
	s.Aerial(aerial, spec, Nominal)
	min, max := aerial.MinMax()
	if math.Abs(min-1) > 1e-9 || math.Abs(max-1) > 1e-9 {
		t.Fatalf("open-field intensity in [%g,%g], want 1", min, max)
	}
}

func TestBlockedMaskImagesDark(t *testing.T) {
	s := testSim(t, 4)
	n := s.GridSize()
	mask := grid.NewField(n, n)
	spec := s.MaskSpectrum(mask)
	aerial := grid.NewField(n, n)
	s.Aerial(aerial, spec, Nominal)
	if aerial.MaxAbs() > 1e-12 {
		t.Fatalf("dark-field intensity max %g, want 0", aerial.MaxAbs())
	}
}

func TestDoseScalesIntensity(t *testing.T) {
	s := testSim(t, 4)
	n := s.GridSize()
	mask := centeredRectMask(n, 16, 16)
	spec := s.MaskSpectrum(mask)
	nominal := grid.NewField(n, n)
	outer := grid.NewField(n, n)
	s.Aerial(nominal, spec, Outer) // reuse buffers: compute outer first
	outer.CopyFrom(nominal)
	s.Aerial(nominal, spec, Nominal)
	scaled := grid.NewField(n, n)
	scaled.Scale(nominal, 1.02)
	if !outer.Equal(scaled, 1e-12) {
		t.Fatal("outer corner must be +2% dose-scaled nominal intensity at equal focus")
	}
}

func TestInnerCornerUsesDefocusBank(t *testing.T) {
	s := testSim(t, 4)
	if s.Bank(Inner) != s.defocusBank || s.Bank(Nominal) != s.nominalBank || s.Bank(Outer) != s.nominalBank {
		t.Fatal("bank selection wrong")
	}
	if s.Dose(Nominal) != 1 || s.Dose(Outer) != 1.02 || s.Dose(Inner) != 0.98 {
		t.Fatalf("dose factors wrong: %g %g %g", s.Dose(Nominal), s.Dose(Outer), s.Dose(Inner))
	}
}

func TestDefocusReducesPeakIntensity(t *testing.T) {
	s := testSim(t, 6)
	n := s.GridSize()
	// A small feature loses peak intensity under defocus.
	mask := centeredRectMask(n, 4, 4)
	spec := s.MaskSpectrum(mask)
	nom := grid.NewField(n, n)
	inner := grid.NewField(n, n)
	s.Aerial(nom, spec, Nominal)
	s.Aerial(inner, spec, Inner)
	// Remove the dose component to isolate the focus effect.
	inner.Scale(inner, 1/0.98)
	_, nomPeak := nom.MinMax()
	_, innerPeak := inner.MinMax()
	if innerPeak >= nomPeak {
		t.Fatalf("defocus did not reduce peak: %g vs %g", innerPeak, nomPeak)
	}
}

func TestLargeFeaturePrints(t *testing.T) {
	s := testSim(t, 6)
	n := s.GridSize()
	// A 24×24 px feature at 32 nm/px is 768 nm — far above resolution,
	// so its centre must print and the far field must not.
	mask := centeredRectMask(n, 24, 24)
	spec := s.MaskSpectrum(mask)
	printed := grid.NewField(n, n)
	s.PrintedBinary(printed, spec, Nominal)
	if printed.At(n/2, n/2) != 1 {
		t.Fatal("feature centre did not print")
	}
	if printed.At(2, 2) != 0 {
		t.Fatal("far background printed")
	}
}

func TestAerialFastMatchesExactForSingleKernel(t *testing.T) {
	s := testSim(t, 1)
	n := s.GridSize()
	mask := centeredRectMask(n, 10, 20)
	spec := s.MaskSpectrum(mask)
	exact := grid.NewField(n, n)
	fast := grid.NewField(n, n)
	s.Aerial(exact, spec, Nominal)
	s.AerialFast(fast, spec, Nominal)
	if !exact.Equal(fast, 1e-12) {
		t.Fatal("K=1 fused kernel must equal exact SOCS")
	}
}

func TestAerialFastApproximatesExact(t *testing.T) {
	s := testSim(t, 8)
	n := s.GridSize()
	mask := centeredRectMask(n, 20, 20)
	spec := s.MaskSpectrum(mask)
	exact := grid.NewField(n, n)
	fast := grid.NewField(n, n)
	s.Aerial(exact, spec, Nominal)
	s.AerialFast(fast, spec, Nominal)
	// Eq. 17 is an approximation for K>1 — it should be close in the
	// bright areas but not identical.
	diff := grid.NewField(n, n)
	diff.Sub(exact, fast)
	rel := diff.Norm() / exact.Norm()
	if rel > 0.6 {
		t.Fatalf("fused kernel too far from exact: rel err %g", rel)
	}
	if rel == 0 {
		t.Fatal("fused kernel should differ from exact for K>1")
	}
}

func TestResistModelsConsistent(t *testing.T) {
	s := testSim(t, 4)
	n := s.GridSize()
	aerial := grid.NewField(n, n)
	for i := range aerial.Data {
		aerial.Data[i] = float64(i) / float64(n*n)
	}
	sig := grid.NewField(n, n)
	bin := grid.NewField(n, n)
	s.Resist(sig, aerial)
	s.ResistBinary(bin, aerial)
	for i := range sig.Data {
		// The sigmoid and the step must agree on which side of ½ each
		// pixel falls (they share the same threshold).
		if (sig.Data[i] > 0.5) != (bin.Data[i] == 1) {
			// Allow the exact-threshold pixel where sigmoid = 0.5.
			if math.Abs(sig.Data[i]-0.5) > 1e-9 {
				t.Fatalf("pixel %d: sigmoid %g vs binary %g", i, sig.Data[i], bin.Data[i])
			}
		}
	}
}

func TestForwardFillsCornerImages(t *testing.T) {
	s := testSim(t, 4)
	n := s.GridSize()
	mask := centeredRectMask(n, 16, 16)
	spec := s.MaskSpectrum(mask)
	out := NewCornerImages(n)
	s.Forward(out, spec, Nominal)
	if out.Aerial.MaxAbs() == 0 || out.R.MaxAbs() == 0 {
		t.Fatal("Forward produced empty images")
	}
	// R must be the sigmoid of the aerial image.
	want := grid.NewField(n, n)
	s.Resist(want, out.Aerial)
	if !out.R.Equal(want, 0) {
		t.Fatal("Forward R inconsistent with Resist")
	}
}

// TestGradientMatchesFiniteDifference is the central correctness check
// for Eq. 11: the analytic adjoint must match central finite
// differences of the cost at randomly probed mask pixels.
func TestGradientMatchesFiniteDifference(t *testing.T) {
	for _, cond := range AllConditions {
		s := testSim(t, 3)
		n := s.GridSize()
		mask := centeredRectMask(n, 14, 10)
		// Soften the mask so probes sit in the sigmoid's active range.
		for i := range mask.Data {
			mask.Data[i] = 0.2 + 0.6*mask.Data[i]
		}
		target := centeredRectMask(n, 14, 10)

		// Analytic gradient.
		spec := s.MaskSpectrum(mask)
		imgs := NewCornerImages(n)
		s.Forward(imgs, spec, cond)
		grad := grid.NewField(n, n)
		s.GradientInto(grad, spec, cond, target, imgs.R, 1)

		cost := func(m *grid.Field) float64 {
			sp := s.MaskSpectrum(m)
			out := NewCornerImages(n)
			s.Forward(out, sp, cond)
			return CostAt(out.R, target)
		}

		const h = 1e-5
		probes := [][2]int{{n / 2, n / 2}, {n/2 - 7, n / 2}, {n / 2, n/2 - 5}, {n/2 + 3, n/2 + 2}, {4, 4}}
		for _, p := range probes {
			x, y := p[0], p[1]
			m := mask.Clone()
			m.Set(x, y, mask.At(x, y)+h)
			up := cost(m)
			m.Set(x, y, mask.At(x, y)-h)
			down := cost(m)
			fd := (up - down) / (2 * h)
			an := grad.At(x, y)
			if math.Abs(fd-an) > 1e-4*(1+math.Abs(fd)) {
				t.Errorf("%v: gradient at (%d,%d): analytic %g vs FD %g", cond, x, y, an, fd)
			}
		}
	}
}

func TestGradientWeightAndAccumulation(t *testing.T) {
	s := testSim(t, 3)
	n := s.GridSize()
	mask := centeredRectMask(n, 14, 10)
	target := centeredRectMask(n, 12, 8)
	spec := s.MaskSpectrum(mask)
	imgs := NewCornerImages(n)
	s.Forward(imgs, spec, Nominal)

	g1 := grid.NewField(n, n)
	s.GradientInto(g1, spec, Nominal, target, imgs.R, 1)
	g2 := grid.NewField(n, n)
	s.GradientInto(g2, spec, Nominal, target, imgs.R, 0.5)
	s.GradientInto(g2, spec, Nominal, target, imgs.R, 0.5)
	if !g1.Equal(g2, 1e-12) {
		t.Fatal("GradientInto must accumulate linearly in weight")
	}
}

func TestCostAtZeroForPerfectMatch(t *testing.T) {
	a := grid.NewField(4, 4)
	a.Fill(0.7)
	if CostAt(a, a) != 0 {
		t.Fatal("cost of identical images must be 0")
	}
	b := grid.NewField(4, 4)
	if got := CostAt(a, b); math.Abs(got-16*0.49) > 1e-12 {
		t.Fatalf("cost = %g, want %g", got, 16*0.49)
	}
}

func TestNewWithBanksRejectsMismatchedGrid(t *testing.T) {
	s := testSim(t, 2)
	cfg := DefaultConfig(128, 16)
	cfg.Optics.Kernels = 2
	if _, err := NewWithBanks(cfg, engine.CPU(), s.nominalBank, s.defocusBank); err == nil {
		t.Fatal("mismatched bank grid accepted")
	}
}

func TestMaskSpectrumInto(t *testing.T) {
	s := testSim(t, 2)
	n := s.GridSize()
	mask := centeredRectMask(n, 8, 8)
	a := s.MaskSpectrum(mask)
	b := grid.NewCField(n, n)
	s.MaskSpectrumInto(b, mask)
	// MaskSpectrumInto uses the real-input fast path; the complex path
	// is the reference, so this doubles as a cross-check of the two.
	if !a.Equal(b, 1e-9) {
		t.Fatal("MaskSpectrumInto differs from MaskSpectrum")
	}
}

func TestSiblingSharesBanksNotScratch(t *testing.T) {
	s := testSim(t, 3)
	s2, err := s.Sibling(engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Release()

	// Immutable resources are aliased: one bank backs both sessions.
	if s2.res != s.res {
		t.Fatal("sibling must share the resource bank")
	}
	if s2.nominalBank != s.nominalBank || s2.defocusBank != s.defocusBank {
		t.Fatal("sibling must alias the kernel banks")
	}
	if s2.pool != s.pool {
		t.Fatal("sibling must lease from the same pool")
	}

	// Mutable scratch is private: no buffer may be shared, or concurrent
	// sessions would corrupt each other.
	if s2.field == s.field || s2.accum == s.accum || s2.ampSpec == s.ampSpec {
		t.Fatal("sibling aliases complex scratch")
	}
	if s2.sens == s.sens || s2.aerial == s.aerial {
		t.Fatal("sibling aliases real scratch")
	}
	if s2.planScratch == s.planScratch || s2.batchScratch == s.batchScratch {
		t.Fatal("sibling aliases plan workspaces")
	}
	if s2.plan == s.plan || s2.batch == s.batch {
		t.Fatal("sibling aliases 2-D plans (they wrap private scratch)")
	}

	// Both sessions must produce identical images for one mask.
	n := s.GridSize()
	mask := centeredRectMask(n, 24, 12)
	a1 := grid.NewField(n, n)
	a2 := grid.NewField(n, n)
	s.Aerial(a1, s.MaskSpectrum(mask), Nominal)
	s2.Aerial(a2, s2.MaskSpectrum(mask), Nominal)
	for i := range a1.Data {
		if a1.Data[i] != a2.Data[i] {
			t.Fatalf("sibling aerial diverges at %d", i)
		}
	}
}
