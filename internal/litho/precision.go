package litho

import (
	"fmt"

	"lsopc/internal/grid"
	"lsopc/internal/optics"
)

// Precision selects the arithmetic of the per-kernel coherent-field
// batches — the K full-grid fields that dominate the forward model's
// memory traffic.
//
// Float64 (the default) is the bit-exact reference path: nothing in it
// changes when Float32 exists, so it doubles as the verification mode.
// Float32 halves the bytes moved by the batched FFTs and spectral
// multiplies. Precision is dropped only on the batch itself: the mask
// spectrum, kernel coefficients, SOCS intensity reduction, resist
// sensitivity and gradient accumulation all stay float64, so each value
// is rounded exactly once on entry to the batch and once on exit. The
// resulting aerial-image error is at the level of the float32 transform
// rounding (~1e-6 relative on contest-scale grids), far below the
// resist threshold's sensitivity; the precision-equivalence tests pin
// the tolerance.
//
// The fused-kernel approximation (AerialFast) always runs float64 — it
// is a single-field path with no bandwidth problem to solve.
type Precision int

const (
	// Float64 runs the forward model entirely in complex128.
	Float64 Precision = iota
	// Float32 runs the per-kernel field batches in complex64.
	Float32
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// ParsePrecision maps a flag value ("float64"/"f64"/"float32"/"f32") to
// a Precision.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "float64", "f64", "64":
		return Float64, nil
	case "float32", "f32", "32":
		return Float32, nil
	default:
		return Float64, fmt.Errorf("litho: unknown precision %q (want float64 or float32)", s)
	}
}

// f32 reports whether this session runs the reduced-precision batch
// path.
func (s *Simulator) f32() bool { return s.cfg.Precision == Float32 }

// Precision returns the session's batch arithmetic.
func (s *Simulator) Precision() Precision { return s.cfg.Precision }

// bindBodies32 creates the float32-path engine bodies (see bindBodies).
func (s *Simulator) bindBodies32() {
	s.materializeBody32 = func(lo, hi int) {
		fields, kernels, spec := s.opFields32, s.opBank.Kernels, s.opSpec
		for k := lo; k < hi; k++ {
			kernels[k].MulIntoBand32(fields[k], spec)
		}
	}
	s.reduceBody32 = func(lo, hi int) {
		fields, kernels := s.opFields32, s.opBank.Kernels
		d := s.opDst.Data[lo:hi]
		for i := range d {
			d[i] = 0
		}
		for ki := range fields {
			w := kernels[ki].Weight
			f := fields[ki].Data[lo:hi]
			for i, v := range f {
				re, im := float64(real(v)), float64(imag(v))
				d[i] += w * (re*re + im*im)
			}
		}
	}
	s.adjointBody32 = func(lo, hi int) {
		fields, w := s.opFields32, s.opW
		nn := len(w.Data)
		for i := lo; i < hi; {
			ki, j := i/nn, i%nn
			end := (ki + 1) * nn
			if end > hi {
				end = hi
			}
			data := fields[ki].Data
			for ; i < end; i, j = i+1, j+1 {
				e := data[j]
				wf := float32(w.Data[j])
				data[j] = complex(wf*real(e), -wf*imag(e))
			}
		}
	}
	s.ampBody32 = func(lo, hi int) {
		w := s.opW
		for i := lo; i < hi; i++ {
			e := s.field32.Data[i]
			wf := float32(w.Data[i])
			s.ampSpec32.Data[i] = complex(wf*real(e), -wf*imag(e))
		}
	}
}

// inverseBanded32 runs the band-limited batched inverse on a single
// complex64 field.
func (s *Simulator) inverseBanded32(c *grid.CField32, band int) {
	s.single32[0] = c
	s.batch32.BatchInverseBanded(s.single32[:], band)
}

// materialize32 fills fields[k] with round32(spec_k ∘ M̂) per kernel.
func (s *Simulator) materialize32(fields []*grid.CField32, bank *optics.Bank, maskSpec *grid.CField) {
	s.opFields32, s.opBank, s.opSpec = fields, bank, maskSpec
	s.eng.ForChunk(len(bank.Kernels), s.materializeBody32)
	s.opFields32, s.opSpec = nil, nil
}

// reduceAbsSq32 reduces dst = Σ_k μ_k |E_k|² over the complex64 batch,
// accumulating in float64 (same pixel partition and kernel order as
// reduceAbsSq).
func (s *Simulator) reduceAbsSq32(dst *grid.Field, fields []*grid.CField32, bank *optics.Bank) {
	s.opDst, s.opFields32, s.opBank = dst, fields, bank
	s.eng.ForChunk(len(dst.Data), s.reduceBody32)
	s.opDst, s.opFields32 = nil, nil
}

// aerialStreaming32 is the low-memory float32 SOCS fallback.
func (s *Simulator) aerialStreaming32(dst *grid.Field, bank *optics.Bank, maskSpec *grid.CField) {
	dst.Zero()
	for _, k := range bank.Kernels {
		k.MulIntoBand32(s.field32, maskSpec)
		s.inverseBanded32(s.field32, k.R)
		s.field32.AccumAbsSq(dst, k.Weight)
	}
}

// adjointFromFields32 is the float32 twin of adjointFromFields: the
// retained complex64 fields become W ⊙ conj(E_k) in place, one batched
// output-pruned float32 forward FFT produces the amplitude spectra, and
// the flip-multiplies widen back into the float64 accumulator, whose
// final inverse transform runs on the float64 plan.
func (s *Simulator) adjointFromFields32(fields []*grid.CField32, bank *optics.Bank, w *grid.Field) {
	s.opFields32, s.opW = fields, w
	s.eng.ForChunk(len(fields)*len(w.Data), s.adjointBody32)
	s.opFields32, s.opW = nil, nil
	s.batch32.BatchForwardBandedCols(fields, bank.Radius())
	s.zeroAccumBand(bank.Radius())
	for ki, k := range bank.Kernels {
		k.AccumFlipMul32(s.accum, fields[ki], complex(k.Weight, 0))
	}
	s.inverseBanded(s.accum, bank.Radius())
}

// adjointStreaming32 is the low-memory float32 adjoint.
func (s *Simulator) adjointStreaming32(bank *optics.Bank, maskSpec *grid.CField, w *grid.Field) {
	s.zeroAccumBand(bank.Radius())
	for _, k := range bank.Kernels {
		k.MulIntoBand32(s.field32, maskSpec)
		s.inverseBanded32(s.field32, k.R)
		s.opW = w
		s.eng.ForChunk(len(s.ampSpec32.Data), s.ampBody32)
		s.opW = nil
		s.single32[0] = s.ampSpec32
		s.batch32.BatchForwardBandedCols(s.single32[:], k.R)
		k.AccumFlipMul32(s.accum, s.ampSpec32, complex(k.Weight, 0))
	}
	s.inverseBanded(s.accum, bank.Radius())
}
