package litho

import (
	"math"
	"testing"

	"lsopc/internal/engine"
	"lsopc/internal/geom"
	"lsopc/internal/grid"
	"lsopc/internal/layouts"
)

func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
		ok   bool
	}{
		{"float64", Float64, true},
		{"f64", Float64, true},
		{"64", Float64, true},
		{"float32", Float32, true},
		{"f32", Float32, true},
		{"32", Float32, true},
		{"half", 0, false},
		{"", 0, false},
	} {
		got, err := ParsePrecision(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParsePrecision(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParsePrecision(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if Float64.String() != "float64" || Float32.String() != "float32" {
		t.Errorf("Precision strings: %q, %q", Float64, Float32)
	}
	bad := DefaultConfig(64, 32)
	bad.Precision = Precision(9)
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted an unknown precision")
	}
}

// precisionSims builds a float64 and a float32 session over one
// configuration.
func precisionSims(t *testing.T, eng *engine.Engine, gridSize int, pixelNM float64, kernels int) (f64, f32 *Simulator) {
	t.Helper()
	cfg := DefaultConfig(gridSize, pixelNM)
	cfg.Optics.Kernels = kernels
	s64, err := NewSimulator(cfg, eng)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Precision = Float32
	s32, err := NewSimulator(cfg, eng)
	if err != nil {
		t.Fatal(err)
	}
	return s64, s32
}

// relErr returns ‖a−b‖ / ‖a‖ (0 when both are zero).
func relErr(a, b *grid.Field) float64 {
	var num, den float64
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		num += d * d
		den += a.Data[i] * a.Data[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// TestFloat32MatchesFloat64OnClips is the precision-equivalence
// contract on real ICCAD clips: the float32 batch path must reproduce
// the float64 aerial image, cost and gradient within float32 rounding
// (~1e-6 relative; the tolerances below leave headroom for transform
// error growth), at every process corner, on both the retained and the
// streaming execution strategy.
func TestFloat32MatchesFloat64OnClips(t *testing.T) {
	const n, pitch, kernels = 128, 16, 4
	eng := engine.New("gpu-test", 3)
	s64, s32 := precisionSims(t, eng, n, pitch, kernels)
	if s64.Precision() != Float64 || s32.Precision() != Float32 {
		t.Fatalf("session precisions = %v, %v", s64.Precision(), s32.Precision())
	}

	for _, id := range []string{"B1", "B4", "B10"} {
		spec, err := layouts.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		target, err := geom.Rasterize(spec.MustBuild(), pitch)
		if err != nil {
			t.Fatal(err)
		}

		maskSpec := grid.NewCField(n, n)
		s64.MaskSpectrumInto(maskSpec, target)

		for _, cond := range AllConditions {
			a64 := grid.NewField(n, n)
			a32 := grid.NewField(n, n)
			s64.Aerial(a64, maskSpec, cond)
			s32.Aerial(a32, maskSpec, cond)
			if e := relErr(a64, a32); e > 1e-5 {
				t.Errorf("%s %v aerial: relative error %.3g > 1e-5", id, cond, e)
			}

			g64 := grid.NewField(n, n)
			g32 := grid.NewField(n, n)
			out64, out32 := NewCornerImages(n), NewCornerImages(n)
			c64 := s64.ForwardAndGradient(g64, maskSpec, cond, target, out64, 1)
			c32 := s32.ForwardAndGradient(g32, maskSpec, cond, target, out32, 1)
			if rel := math.Abs(c64-c32) / math.Max(c64, 1e-12); rel > 1e-5 {
				t.Errorf("%s %v cost: %.9g vs %.9g (rel %.3g)", id, cond, c64, c32, rel)
			}
			if e := relErr(g64, g32); e > 1e-4 {
				t.Errorf("%s %v gradient: relative error %.3g > 1e-4", id, cond, e)
			}
		}
	}
}

// TestFloat32RetainedMatchesStreamingBitwise pins the float32 twin of
// the retained-vs-streaming contract: both f32 strategies run the same
// rounding at the same points, so they must agree bit-for-bit.
func TestFloat32RetainedMatchesStreamingBitwise(t *testing.T) {
	const n, kernels = 64, 4
	eng := engine.New("gpu-test", 3)
	mask := randomMask(n, 7)
	target := randomMask(n, 8)

	cfg := DefaultConfig(64, 32)
	cfg.Optics.Kernels = kernels
	cfg.Precision = Float32
	s, err := NewSimulator(cfg, eng)
	if err != nil {
		t.Fatal(err)
	}
	if !s.canRetain() {
		t.Fatalf("test grid unexpectedly exceeds the retain budget")
	}
	spec := grid.NewCField(n, n)
	s.MaskSpectrumInto(spec, mask)
	bank := s.Bank(Nominal)

	// Batched f32 aerial + adjoint.
	aerialB := grid.NewField(n, n)
	s.aerialInto(aerialB, bank, spec)
	gradB := grid.NewField(n, n)
	s.sensitivity(s.sens, aerialB, target, 1)
	s.adjointFromFields32(s.retained32(len(bank.Kernels)), bank, s.sens)
	s.applyGradient(gradB, 1)

	// Streaming f32 aerial + adjoint on a sibling session.
	s2, err := s.Sibling(eng)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Precision() != Float32 {
		t.Fatalf("sibling lost the precision: %v", s2.Precision())
	}
	aerialS := grid.NewField(n, n)
	s2.aerialStreaming32(aerialS, bank, spec)
	gradS := grid.NewField(n, n)
	s2.sensitivity(s2.sens, aerialS, target, 1)
	s2.adjointStreaming32(bank, spec, s2.sens)
	s2.applyGradient(gradS, 1)

	fieldsEqual(t, "f32 retained vs streaming aerial", aerialB, aerialS)
	fieldsEqual(t, "f32 retained vs streaming gradient", gradB, gradS)
}

// TestFloat32EngineEquivalence extends the determinism contract to the
// float32 path: worker count must not change a single bit.
func TestFloat32EngineEquivalence(t *testing.T) {
	const n, kernels = 64, 4
	mask := randomMask(n, 42)
	target := randomMask(n, 99)

	run := func(eng *engine.Engine) (*grid.Field, *grid.Field, float64) {
		cfg := DefaultConfig(64, 32)
		cfg.Optics.Kernels = kernels
		cfg.Precision = Float32
		s, err := NewSimulator(cfg, eng)
		if err != nil {
			t.Fatal(err)
		}
		spec := grid.NewCField(n, n)
		s.MaskSpectrumInto(spec, mask)
		aerial := grid.NewField(n, n)
		s.Aerial(aerial, spec, Nominal)
		grad := grid.NewField(n, n)
		out := NewCornerImages(n)
		cost := s.ForwardAndGradient(grad, spec, Inner, target, out, 0.7)
		return aerial, grad, cost
	}

	refAerial, refGrad, refCost := run(engine.CPU())
	for _, workers := range []int{2, 3, 8} {
		eng := engine.New("gpu-test", workers)
		aerial, grad, cost := run(eng)
		fieldsEqual(t, eng.String()+" f32 aerial", aerial, refAerial)
		fieldsEqual(t, eng.String()+" f32 gradient", grad, refGrad)
		if cost != refCost {
			t.Fatalf("%s f32 cost = %v vs %v", eng.String(), cost, refCost)
		}
	}
}
