package metrics

import (
	"lsopc/internal/grid"
)

// RemoveTinyFeatures deletes mask islands smaller than minIslandPx
// pixels and fills enclosed holes smaller than minHolePx pixels, in
// place. It returns the number of removed islands and filled holes.
// This is the manufacturability cleanup pass applied to optimized masks
// — level-set masks rarely need it (the paper's §I point), pixel-ILT
// masks often do.
func RemoveTinyFeatures(mask *grid.Field, minIslandPx, minHolePx int) (removedIslands, filledHoles int) {
	if minIslandPx > 0 {
		labels, n := labelComponents(mask)
		sizes := make([]int, n+1)
		for _, l := range labels {
			if l != 0 {
				sizes[l]++
			}
		}
		for i, l := range labels {
			if l != 0 && sizes[l] < minIslandPx {
				mask.Data[i] = 0
			}
		}
		for l := 1; l <= n; l++ {
			if sizes[l] < minIslandPx {
				removedIslands++
			}
		}
	}

	if minHolePx > 0 {
		inv := grid.NewFieldLike(mask)
		for i, v := range mask.Data {
			if v <= 0.5 {
				inv.Data[i] = 1
			}
		}
		labels, n := labelComponents(inv)
		w, h := mask.W, mask.H
		touchesBorder := make([]bool, n+1)
		for x := 0; x < w; x++ {
			touchesBorder[labels[x]] = true
			touchesBorder[labels[(h-1)*w+x]] = true
		}
		for y := 0; y < h; y++ {
			touchesBorder[labels[y*w]] = true
			touchesBorder[labels[y*w+w-1]] = true
		}
		sizes := make([]int, n+1)
		for _, l := range labels {
			if l != 0 {
				sizes[l]++
			}
		}
		fill := make([]bool, n+1)
		for l := 1; l <= n; l++ {
			if !touchesBorder[l] && sizes[l] < minHolePx {
				fill[l] = true
				filledHoles++
			}
		}
		for i, l := range labels {
			if l != 0 && fill[l] {
				mask.Data[i] = 1
			}
		}
	}
	return removedIslands, filledHoles
}
