package metrics

import (
	"lsopc/internal/grid"
)

// MaskComplexity quantifies the manufacturability of a mask — the
// paper's §I motivation for level-set ILT is precisely that pixel-based
// masks contain "unwanted tiny isolated stains and edge glitches" that
// obstruct mass production. These counters make that claim measurable.
type MaskComplexity struct {
	// Islands is the number of connected mask components.
	Islands int
	// TinyIslands counts components smaller than the tiny-feature area
	// threshold (isolated stains).
	TinyIslands int
	// Holes is the number of enclosed background components (pinholes in
	// mask glass); the outer background is not counted.
	Holes int
	// TinyHoles counts holes below the tiny-feature threshold.
	TinyHoles int
	// PerimeterPx is the total contour length in pixel edges; for a
	// fixed pattern area, higher perimeter means a more ragged mask.
	PerimeterPx int
	// JogCount is the number of convex/concave corners along all
	// contours; each jog is a shot-count/write-time liability.
	JogCount int
	// AreaPx is the mask area in pixels.
	AreaPx int
}

// TinyFeaturePx is the "tiny feature" area threshold (in pixels) used by
// Complexity for stain/pinhole counting.
const TinyFeaturePx = 8

// Complexity measures the manufacturability counters of a binary mask.
func Complexity(mask *grid.Field) MaskComplexity {
	var c MaskComplexity
	c.AreaPx = mask.CountAbove(0.5)

	// Islands via connected-component labelling, with per-label sizes.
	labels, n := labelComponents(mask)
	c.Islands = n
	sizes := make([]int, n+1)
	for _, l := range labels {
		if l != 0 {
			sizes[l]++
		}
	}
	for _, s := range sizes[1:] {
		if s < TinyFeaturePx {
			c.TinyIslands++
		}
	}

	// Holes: connected components of the inverted mask that do not touch
	// the grid border.
	inv := grid.NewFieldLike(mask)
	for i, v := range mask.Data {
		if v <= 0.5 {
			inv.Data[i] = 1
		}
	}
	hLabels, hn := labelComponents(inv)
	touchesBorder := make([]bool, hn+1)
	w, h := mask.W, mask.H
	for x := 0; x < w; x++ {
		touchesBorder[hLabels[x]] = true
		touchesBorder[hLabels[(h-1)*w+x]] = true
	}
	for y := 0; y < h; y++ {
		touchesBorder[hLabels[y*w]] = true
		touchesBorder[hLabels[y*w+w-1]] = true
	}
	holeSizes := make([]int, hn+1)
	for _, l := range hLabels {
		if l != 0 {
			holeSizes[l]++
		}
	}
	for l := 1; l <= hn; l++ {
		if touchesBorder[l] {
			continue
		}
		c.Holes++
		if holeSizes[l] < TinyFeaturePx {
			c.TinyHoles++
		}
	}

	// Perimeter: mask/background transitions along rows and columns
	// (grid border counts as background).
	at := func(x, y int) bool {
		if x < 0 || x >= w || y < 0 || y >= h {
			return false
		}
		return mask.At(x, y) > 0.5
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if !at(x, y) {
				continue
			}
			if !at(x-1, y) {
				c.PerimeterPx++
			}
			if !at(x+1, y) {
				c.PerimeterPx++
			}
			if !at(x, y-1) {
				c.PerimeterPx++
			}
			if !at(x, y+1) {
				c.PerimeterPx++
			}
		}
	}

	// Jogs: corners of the contour. A corner exists at each 2×2
	// neighbourhood whose four pixels contain an odd number of mask
	// pixels (1 or 3); checkerboard 2×2s (two diagonal pixels) are two
	// touching corners.
	for y := -1; y < h; y++ {
		for x := -1; x < w; x++ {
			cnt := 0
			if at(x, y) {
				cnt++
			}
			if at(x+1, y) {
				cnt++
			}
			if at(x, y+1) {
				cnt++
			}
			if at(x+1, y+1) {
				cnt++
			}
			switch cnt {
			case 1, 3:
				c.JogCount++
			case 2:
				if at(x, y) == at(x+1, y+1) { // diagonal pair
					c.JogCount += 2
				}
			}
		}
	}
	return c
}
