package metrics

import (
	"testing"

	"lsopc/internal/grid"
)

func maskFromRect(n, x0, y0, x1, y1 int) *grid.Field {
	f := grid.NewField(n, n)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			f.Set(x, y, 1)
		}
	}
	return f
}

func TestComplexityOfRectangle(t *testing.T) {
	m := maskFromRect(32, 8, 8, 24, 20) // 16×12 rect
	c := Complexity(m)
	if c.Islands != 1 || c.TinyIslands != 0 {
		t.Fatalf("islands: %+v", c)
	}
	if c.Holes != 0 || c.TinyHoles != 0 {
		t.Fatalf("holes: %+v", c)
	}
	if c.AreaPx != 16*12 {
		t.Fatalf("area %d", c.AreaPx)
	}
	if c.PerimeterPx != 2*(16+12) {
		t.Fatalf("perimeter %d, want %d", c.PerimeterPx, 2*(16+12))
	}
	if c.JogCount != 4 {
		t.Fatalf("jogs %d, want 4", c.JogCount)
	}
}

func TestComplexityCountsStains(t *testing.T) {
	m := maskFromRect(32, 8, 8, 24, 20)
	// Two 1-px stains and one 2-px stain.
	m.Set(2, 2, 1)
	m.Set(28, 28, 1)
	m.Set(2, 28, 1)
	m.Set(3, 28, 1)
	c := Complexity(m)
	if c.Islands != 4 {
		t.Fatalf("islands %d, want 4", c.Islands)
	}
	if c.TinyIslands != 3 {
		t.Fatalf("tiny islands %d, want 3", c.TinyIslands)
	}
}

func TestComplexityCountsHoles(t *testing.T) {
	m := maskFromRect(32, 4, 4, 28, 28)
	// A 2×2 pinhole inside the pattern.
	m.Set(14, 14, 0)
	m.Set(15, 14, 0)
	m.Set(14, 15, 0)
	m.Set(15, 15, 0)
	// A large 8×8 hole.
	for y := 20; y < 26; y++ {
		for x := 8; x < 16; x++ {
			m.Set(x, y, 0)
		}
	}
	c := Complexity(m)
	if c.Holes != 2 {
		t.Fatalf("holes %d, want 2", c.Holes)
	}
	if c.TinyHoles != 1 {
		t.Fatalf("tiny holes %d, want 1", c.TinyHoles)
	}
	if c.Islands != 1 {
		t.Fatalf("islands %d", c.Islands)
	}
}

func TestComplexityOuterBackgroundNotAHole(t *testing.T) {
	c := Complexity(maskFromRect(16, 4, 4, 12, 12))
	if c.Holes != 0 {
		t.Fatalf("outer background counted as hole: %+v", c)
	}
	// Empty mask: nothing at all.
	c = Complexity(grid.NewField(16, 16))
	if c.Islands != 0 || c.Holes != 0 || c.PerimeterPx != 0 || c.JogCount != 0 {
		t.Fatalf("empty mask complexity: %+v", c)
	}
}

func TestComplexityJogsOnLShape(t *testing.T) {
	m := grid.NewField(32, 32)
	// L-shape: 6 corners.
	for y := 8; y < 24; y++ {
		for x := 8; x < 12; x++ {
			m.Set(x, y, 1)
		}
	}
	for y := 20; y < 24; y++ {
		for x := 12; x < 24; x++ {
			m.Set(x, y, 1)
		}
	}
	c := Complexity(m)
	if c.JogCount != 6 {
		t.Fatalf("L jogs %d, want 6", c.JogCount)
	}
}

func TestComplexityRaggedEdgeCostsPerimeter(t *testing.T) {
	smooth := maskFromRect(64, 16, 16, 48, 48)
	ragged := smooth.Clone()
	// Notch every other pixel along the top edge.
	for x := 16; x < 48; x += 2 {
		ragged.Set(x, 16, 0)
	}
	cs := Complexity(smooth)
	cr := Complexity(ragged)
	if cr.PerimeterPx <= cs.PerimeterPx {
		t.Fatal("ragged edge must increase perimeter")
	}
	if cr.JogCount <= cs.JogCount {
		t.Fatal("ragged edge must increase jog count")
	}
}

func TestRemoveTinyFeatures(t *testing.T) {
	m := maskFromRect(32, 8, 8, 24, 20)
	// Two stains and one pinhole.
	m.Set(2, 2, 1)
	m.Set(28, 28, 1)
	m.Set(14, 14, 0)

	removed, filled := RemoveTinyFeatures(m, TinyFeaturePx, TinyFeaturePx)
	if removed != 2 || filled != 1 {
		t.Fatalf("removed %d, filled %d; want 2, 1", removed, filled)
	}
	c := Complexity(m)
	if c.Islands != 1 || c.Holes != 0 || c.TinyIslands != 0 {
		t.Fatalf("post-cleanup complexity %+v", c)
	}
	// The main pattern must be intact (area restored by the fill).
	if c.AreaPx != 16*12 {
		t.Fatalf("post-cleanup area %d", c.AreaPx)
	}
}

func TestRemoveTinyFeaturesKeepsLargeOnes(t *testing.T) {
	m := maskFromRect(32, 4, 4, 10, 10) // 36 px island: keep
	removed, _ := RemoveTinyFeatures(m, 8, 8)
	if removed != 0 {
		t.Fatalf("large island removed")
	}
	if int(m.Sum()) != 36 {
		t.Fatal("mask mutated")
	}
	// Zero thresholds: no-op.
	removed, filled := RemoveTinyFeatures(m, 0, 0)
	if removed != 0 || filled != 0 {
		t.Fatal("disabled cleanup acted")
	}
}
