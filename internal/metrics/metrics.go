// Package metrics re-implements the ICCAD 2013 contest's quality
// checkers used in the paper's §IV: the edge-placement-error (EPE)
// probe checker (Fig. 1a; Eq. 4), the process-variation band area
// (Fig. 1b), a shape-violation detector, and the contest score function
// (Eq. 18):
//
//	Score = RT + 4·PVBand + 5000·#EPE + 10000·ShapeViol
//
// with runtime in seconds and PV band in nm².
package metrics

import (
	"fmt"
	"math"

	"lsopc/internal/geom"
	"lsopc/internal/grid"
)

// Config holds the checker parameters; the contest values are the
// defaults (probes every 40 nm, 15 nm EPE tolerance).
type Config struct {
	EPESpacingNM   float64 // probe spacing along edges
	EPEThresholdNM float64 // violation threshold th_EPE
	MaxSearchNM    float64 // how far to search for the printed contour
	PixelNM        float64 // simulation pixel pitch
}

// DefaultConfig returns the contest checker parameters at the given
// simulation pixel pitch.
func DefaultConfig(pixelNM float64) Config {
	return Config{
		EPESpacingNM:   40,
		EPEThresholdNM: 15,
		MaxSearchNM:    80,
		PixelNM:        pixelNM,
	}
}

// Validate checks the checker configuration.
func (c Config) Validate() error {
	switch {
	case c.EPESpacingNM <= 0:
		return fmt.Errorf("metrics: EPE spacing must be positive, got %g", c.EPESpacingNM)
	case c.EPEThresholdNM <= 0:
		return fmt.Errorf("metrics: EPE threshold must be positive, got %g", c.EPEThresholdNM)
	case c.MaxSearchNM < c.EPEThresholdNM:
		return fmt.Errorf("metrics: search range %g below threshold %g", c.MaxSearchNM, c.EPEThresholdNM)
	case c.PixelNM <= 0:
		return fmt.Errorf("metrics: pixel pitch must be positive, got %g", c.PixelNM)
	}
	return nil
}

// Probe is one EPE measurement site: a point on a target edge with the
// outward normal direction.
type Probe struct {
	X, Y   float64 // nm position on the edge
	Nx, Ny float64 // outward unit normal
}

// Probes places measurement sites on every edge of the layout: one at
// the midpoint of short edges, otherwise every EPESpacingNM starting
// half a spacing from the corner (matching the contest's 40 nm grid).
func Probes(l *geom.Layout, spacingNM float64) []Probe {
	var out []Probe
	for _, e := range l.Edges() {
		length := float64(e.Len())
		dirX := float64(e.B.X-e.A.X) / length
		dirY := float64(e.B.Y-e.A.Y) / length
		n := int(length / spacingNM)
		if n == 0 {
			// Short edge: single probe at the midpoint.
			out = append(out, Probe{
				X:  float64(e.A.X) + dirX*length/2,
				Y:  float64(e.A.Y) + dirY*length/2,
				Nx: float64(e.Nx), Ny: float64(e.Ny),
			})
			continue
		}
		for i := 0; i < n; i++ {
			s := (float64(i) + 0.5) * spacingNM
			out = append(out, Probe{
				X:  float64(e.A.X) + dirX*s,
				Y:  float64(e.A.Y) + dirY*s,
				Nx: float64(e.Nx), Ny: float64(e.Ny),
			})
		}
	}
	return out
}

// sampleAt reports whether the printed image is "inside" (printed) at
// the nm coordinate (x, y), clamping to the grid.
func sampleAt(printed *grid.Field, x, y, pitch float64) bool {
	px := int(math.Floor(x / pitch))
	py := int(math.Floor(y / pitch))
	if px < 0 {
		px = 0
	}
	if px >= printed.W {
		px = printed.W - 1
	}
	if py < 0 {
		py = 0
	}
	if py >= printed.H {
		py = printed.H - 1
	}
	return printed.At(px, py) > 0.5
}

// ContourDistance measures the unsigned distance (nm) from the probe's
// target edge to the printed contour along the probe normal, the D of
// Eq. 4 / Fig. 1(a). If no contour is found within maxSearch, maxSearch
// is returned (always a violation).
func ContourDistance(printed *grid.Field, p Probe, cfg Config) float64 {
	step := cfg.PixelNM
	at := func(t float64) bool {
		return sampleAt(printed, p.X+t*p.Nx, p.Y+t*p.Ny, cfg.PixelNM)
	}
	// Half a pixel to each side of the edge.
	innerOK := at(-step / 2) // should print
	outerOK := !at(step / 2) // should not print
	switch {
	case innerOK && outerOK:
		// Contour lies within ±step/2 of the target edge.
		return 0
	case innerOK && !outerOK:
		// Overprint: printed contour is outside the edge; march outward
		// until the image turns off.
		for t := step / 2; t <= cfg.MaxSearchNM; t += step {
			if !at(t + step) {
				return t + step/2
			}
		}
	default:
		// Underprint: contour is inside; march inward until printed.
		for t := step / 2; t <= cfg.MaxSearchNM; t += step {
			if at(-t - step) {
				return t + step/2
			}
		}
	}
	return cfg.MaxSearchNM
}

// EPE evaluates all probes against the printed image and returns the
// violation count (distance ≥ threshold, Eq. 4) and the individual
// distances (parallel to the probes slice).
func EPE(printed *grid.Field, probes []Probe, cfg Config) (violations int, distances []float64) {
	distances = make([]float64, len(probes))
	for i, p := range probes {
		d := ContourDistance(printed, p, cfg)
		distances[i] = d
		if d >= cfg.EPEThresholdNM {
			violations++
		}
	}
	return violations, distances
}

// PVBand returns the process-variation band area in nm²: the XOR region
// between the outermost and innermost printed contours (Fig. 1b).
func PVBand(outer, inner *grid.Field, pixelNM float64) float64 {
	return float64(outer.XORCount(inner)) * pixelNM * pixelNM
}

// labelComponents labels 4-connected components of pixels > 0.5,
// returning the label field (0 = background, labels start at 1) and the
// component count.
func labelComponents(img *grid.Field) ([]int32, int) {
	w, h := img.W, img.H
	labels := make([]int32, w*h)
	next := int32(0)
	var stack []int32
	for start := range img.Data {
		if img.Data[start] <= 0.5 || labels[start] != 0 {
			continue
		}
		next++
		stack = append(stack[:0], int32(start))
		labels[start] = next
		for len(stack) > 0 {
			i := int(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			x, y := i%w, i/w
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				j := ny*w + nx
				if img.Data[j] > 0.5 && labels[j] == 0 {
					labels[j] = next
					stack = append(stack, int32(j))
				}
			}
		}
	}
	return labels, int(next)
}

// ShapeViolations approximates the contest's visual shape check by
// comparing the connected components of the printed image against the
// target: each missing target shape, stray printed blob, bridge between
// two target shapes, and break of one target shape into several printed
// pieces counts as one violation.
func ShapeViolations(printed, target *grid.Field) int {
	tLabels, tN := labelComponents(target)
	pLabels, pN := labelComponents(printed)
	if tN == 0 {
		return pN // everything printed is stray
	}

	// For every printed component: the set of target components it
	// touches. For every target component: the set of printed
	// components covering it.
	pTouches := make([]map[int32]bool, pN+1)
	tCovered := make([]map[int32]bool, tN+1)
	for i := range tLabels {
		tl, pl := tLabels[i], pLabels[i]
		if pl != 0 && tl != 0 {
			if pTouches[pl] == nil {
				pTouches[pl] = make(map[int32]bool)
			}
			pTouches[pl][tl] = true
			if tCovered[tl] == nil {
				tCovered[tl] = make(map[int32]bool)
			}
			tCovered[tl][pl] = true
		}
	}

	viol := 0
	for pl := int32(1); pl <= int32(pN); pl++ {
		switch n := len(pTouches[pl]); {
		case n == 0:
			viol++ // stray printing
		case n > 1:
			viol += n - 1 // bridging n target shapes
		}
	}
	for tl := int32(1); tl <= int32(tN); tl++ {
		switch n := len(tCovered[tl]); {
		case n == 0:
			viol++ // target shape entirely missing
		case n > 1:
			viol += n - 1 // shape broken into n pieces
		}
	}
	return viol
}

// Report aggregates one evaluation of a mask.
type Report struct {
	EPEViolations   int
	PVBandNM2       float64
	ShapeViolations int
	RuntimeSec      float64
}

// Score computes the contest objective (Eq. 18).
func (r Report) Score() float64 {
	return r.RuntimeSec + 4*r.PVBandNM2 + 5000*float64(r.EPEViolations) + 10000*float64(r.ShapeViolations)
}

// String summarises the report.
func (r Report) String() string {
	return fmt.Sprintf("#EPE=%d PVB=%.0fnm² ShapeViol=%d RT=%.1fs Score=%.0f",
		r.EPEViolations, r.PVBandNM2, r.ShapeViolations, r.RuntimeSec, r.Score())
}
