package metrics

import (
	"math"
	"testing"

	"lsopc/internal/geom"
	"lsopc/internal/grid"
)

// rasterLayout renders the layout at the given pitch, failing the test
// on error.
func rasterLayout(t *testing.T, l *geom.Layout, pitch int) *grid.Field {
	t.Helper()
	f, err := geom.Rasterize(l, pitch)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func squareLayout(canvas, x0, y0, x1, y1 int) *geom.Layout {
	return &geom.Layout{
		Name: "t", W: canvas, H: canvas,
		Rects: []geom.Rect{geom.NewRect(x0, y0, x1, y1)},
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{EPESpacingNM: 0, EPEThresholdNM: 15, MaxSearchNM: 80, PixelNM: 1},
		{EPESpacingNM: 40, EPEThresholdNM: 0, MaxSearchNM: 80, PixelNM: 1},
		{EPESpacingNM: 40, EPEThresholdNM: 15, MaxSearchNM: 5, PixelNM: 1},
		{EPESpacingNM: 40, EPEThresholdNM: 15, MaxSearchNM: 80, PixelNM: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestProbesSpacingAndCount(t *testing.T) {
	// 160-wide, 80-tall rectangle: horizontal edges get 4 probes each
	// (160/40), vertical edges 2 each → 12 total.
	l := squareLayout(512, 100, 100, 260, 180)
	probes := Probes(l, 40)
	if len(probes) != 12 {
		t.Fatalf("probe count = %d, want 12", len(probes))
	}
	for _, p := range probes {
		// Probes must lie on the rectangle boundary.
		onV := (p.X == 100 || p.X == 260) && p.Y >= 100 && p.Y <= 180
		onH := (p.Y == 100 || p.Y == 180) && p.X >= 100 && p.X <= 260
		if !onV && !onH {
			t.Errorf("probe (%g,%g) off boundary", p.X, p.Y)
		}
		if math.Hypot(p.Nx, p.Ny) != 1 {
			t.Errorf("probe normal not unit: (%g,%g)", p.Nx, p.Ny)
		}
	}
}

func TestProbesShortEdgeGetsMidpoint(t *testing.T) {
	// A 30 nm edge is shorter than the 40 nm spacing: one probe at its
	// midpoint.
	l := squareLayout(256, 100, 100, 130, 200)
	probes := Probes(l, 40)
	foundTop := false
	for _, p := range probes {
		if p.Y == 100 && p.X == 115 {
			foundTop = true
		}
	}
	if !foundTop {
		t.Fatal("short edge midpoint probe missing")
	}
}

func TestContourDistancePerfectPrint(t *testing.T) {
	l := squareLayout(256, 64, 64, 192, 192)
	printed := rasterLayout(t, l, 1)
	cfg := DefaultConfig(1)
	for _, p := range Probes(l, 40) {
		if d := ContourDistance(printed, p, cfg); d != 0 {
			t.Fatalf("perfect print: probe (%g,%g) distance %g", p.X, p.Y, d)
		}
	}
	v, dists := EPE(printed, Probes(l, 40), cfg)
	if v != 0 {
		t.Fatalf("perfect print: %d violations", v)
	}
	for _, d := range dists {
		if d != 0 {
			t.Fatal("nonzero distance on perfect print")
		}
	}
}

func TestContourDistanceUniformShrink(t *testing.T) {
	target := squareLayout(256, 64, 64, 192, 192)
	// Printed image is shrunk by 10 nm on every side.
	shrunk := squareLayout(256, 74, 74, 182, 182)
	printed := rasterLayout(t, shrunk, 1)
	cfg := DefaultConfig(1)
	probes := Probes(target, 40)
	for _, p := range probes {
		d := ContourDistance(printed, p, cfg)
		if math.Abs(d-10) > 1.5 {
			t.Fatalf("probe (%g,%g): distance %g, want ≈10", p.X, p.Y, d)
		}
	}
	// 10 nm < 15 nm threshold: no violations.
	if v, _ := EPE(printed, probes, cfg); v != 0 {
		t.Fatalf("10 nm shrink flagged %d violations", v)
	}
}

func TestContourDistanceLargeShiftViolates(t *testing.T) {
	target := squareLayout(256, 64, 64, 192, 192)
	// 20 nm overgrowth on every side: all probes violate (20 ≥ 15).
	grown := squareLayout(256, 44, 44, 212, 212)
	printed := rasterLayout(t, grown, 1)
	cfg := DefaultConfig(1)
	probes := Probes(target, 40)
	v, dists := EPE(printed, probes, cfg)
	if v != len(probes) {
		t.Fatalf("%d/%d probes violated, want all", v, len(probes))
	}
	for _, d := range dists {
		if math.Abs(d-20) > 1.5 {
			t.Fatalf("distance %g, want ≈20", d)
		}
	}
}

func TestContourDistanceMissingPattern(t *testing.T) {
	target := squareLayout(256, 64, 64, 192, 192)
	printed := grid.NewField(256, 256) // nothing printed
	cfg := DefaultConfig(1)
	probes := Probes(target, 40)
	v, dists := EPE(printed, probes, cfg)
	if v != len(probes) {
		t.Fatal("missing pattern must violate every probe")
	}
	for _, d := range dists {
		if d != cfg.MaxSearchNM {
			t.Fatalf("distance %g, want max search %g", d, cfg.MaxSearchNM)
		}
	}
}

func TestContourDistanceCoarsePixels(t *testing.T) {
	// Same geometry at 4 nm/px must still measure ≈12 nm displacement.
	target := squareLayout(512, 128, 128, 384, 384)
	shifted := squareLayout(512, 116, 116, 396, 396) // +12 nm growth
	printed := rasterLayout(t, shifted, 4)
	cfg := DefaultConfig(4)
	for _, p := range Probes(target, 40) {
		d := ContourDistance(printed, p, cfg)
		if math.Abs(d-12) > 4 {
			t.Fatalf("coarse-grid distance %g, want ≈12±4", d)
		}
	}
}

func TestPVBand(t *testing.T) {
	outer := rasterLayout(t, squareLayout(128, 30, 30, 90, 90), 1)
	inner := rasterLayout(t, squareLayout(128, 34, 34, 86, 86), 1)
	want := float64(60*60 - 52*52)
	if got := PVBand(outer, inner, 1); got != want {
		t.Fatalf("PVB = %g, want %g", got, want)
	}
	// Pixel pitch scales the area quadratically.
	if got := PVBand(outer, inner, 2); got != want*4 {
		t.Fatalf("PVB at 2nm/px = %g, want %g", got, want*4)
	}
	if PVBand(outer, outer, 1) != 0 {
		t.Fatal("identical contours must give zero PVB")
	}
}

func TestLabelComponents(t *testing.T) {
	img := grid.NewField(8, 8)
	// Two separate blobs.
	img.Set(1, 1, 1)
	img.Set(2, 1, 1)
	img.Set(6, 6, 1)
	_, n := labelComponents(img)
	if n != 2 {
		t.Fatalf("component count = %d, want 2", n)
	}
	// Diagonal pixels are NOT connected (4-connectivity).
	img2 := grid.NewField(4, 4)
	img2.Set(0, 0, 1)
	img2.Set(1, 1, 1)
	_, n = labelComponents(img2)
	if n != 2 {
		t.Fatalf("diagonal pixels merged: %d components", n)
	}
	// Empty image.
	_, n = labelComponents(grid.NewField(4, 4))
	if n != 0 {
		t.Fatal("empty image has components")
	}
}

func TestShapeViolationsClean(t *testing.T) {
	l := &geom.Layout{W: 128, H: 128, Rects: []geom.Rect{
		geom.NewRect(10, 10, 40, 40), geom.NewRect(60, 60, 100, 100),
	}}
	target := rasterLayout(t, l, 1)
	if got := ShapeViolations(target, target); got != 0 {
		t.Fatalf("perfect print has %d violations", got)
	}
}

func TestShapeViolationsMissing(t *testing.T) {
	l := &geom.Layout{W: 128, H: 128, Rects: []geom.Rect{
		geom.NewRect(10, 10, 40, 40), geom.NewRect(60, 60, 100, 100),
	}}
	target := rasterLayout(t, l, 1)
	// Only the first shape prints.
	printed := rasterLayout(t, &geom.Layout{W: 128, H: 128,
		Rects: []geom.Rect{geom.NewRect(10, 10, 40, 40)}}, 1)
	if got := ShapeViolations(printed, target); got != 1 {
		t.Fatalf("missing shape: %d violations, want 1", got)
	}
}

func TestShapeViolationsStray(t *testing.T) {
	target := rasterLayout(t, squareLayout(128, 10, 10, 40, 40), 1)
	printed := rasterLayout(t, &geom.Layout{W: 128, H: 128, Rects: []geom.Rect{
		geom.NewRect(10, 10, 40, 40), geom.NewRect(80, 80, 90, 90), // stray blob
	}}, 1)
	if got := ShapeViolations(printed, target); got != 1 {
		t.Fatalf("stray blob: %d violations, want 1", got)
	}
}

func TestShapeViolationsBridge(t *testing.T) {
	// Two target shapes printed as one connected blob.
	target := rasterLayout(t, &geom.Layout{W: 128, H: 128, Rects: []geom.Rect{
		geom.NewRect(10, 10, 40, 40), geom.NewRect(50, 10, 80, 40),
	}}, 1)
	printed := rasterLayout(t, squareLayout(128, 10, 10, 80, 40), 1)
	if got := ShapeViolations(printed, target); got != 1 {
		t.Fatalf("bridge: %d violations, want 1", got)
	}
}

func TestShapeViolationsBreak(t *testing.T) {
	// One target shape printed as two pieces.
	target := rasterLayout(t, squareLayout(128, 10, 10, 80, 40), 1)
	printed := rasterLayout(t, &geom.Layout{W: 128, H: 128, Rects: []geom.Rect{
		geom.NewRect(10, 10, 40, 40), geom.NewRect(50, 10, 80, 40),
	}}, 1)
	if got := ShapeViolations(printed, target); got != 1 {
		t.Fatalf("break: %d violations, want 1", got)
	}
}

func TestShapeViolationsEmptyTarget(t *testing.T) {
	printed := rasterLayout(t, squareLayout(64, 10, 10, 20, 20), 1)
	empty := grid.NewField(64, 64)
	if got := ShapeViolations(printed, empty); got != 1 {
		t.Fatalf("stray on empty target: %d, want 1", got)
	}
	if got := ShapeViolations(empty, empty); got != 0 {
		t.Fatal("empty/empty must be clean")
	}
}

func TestScoreFunction(t *testing.T) {
	r := Report{EPEViolations: 2, PVBandNM2: 50000, ShapeViolations: 1, RuntimeSec: 100}
	want := 100 + 4*50000.0 + 5000*2.0 + 10000*1.0
	if got := r.Score(); got != want {
		t.Fatalf("score = %g, want %g", got, want)
	}
	// Score is monotone in each component.
	base := Report{PVBandNM2: 1000}
	if !(Report{EPEViolations: 1, PVBandNM2: 1000}).ScoreGreater(base) {
		t.Fatal("EPE must increase score")
	}
}

// ScoreGreater is a test helper comparing scores.
func (r Report) ScoreGreater(o Report) bool { return r.Score() > o.Score() }

func TestReportString(t *testing.T) {
	r := Report{EPEViolations: 1, PVBandNM2: 2, ShapeViolations: 3, RuntimeSec: 4}
	s := r.String()
	if s == "" {
		t.Fatal("empty report string")
	}
}
