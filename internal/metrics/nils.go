package metrics

import (
	"math"

	"lsopc/internal/grid"
)

// Image log slope metrics: ILS = |∂(ln I)/∂n| measured on the target
// contour along the edge normal, and NILS = ILS·CD, the dimensionless
// contrast figure lithographers use to rank weak points. A feature with
// NILS ≲ 2 prints with poor dose latitude even if its nominal EPE is
// fine, so the NILS report complements the EPE checker: it finds the
// probes that are *about to fail* under process variation.

// ILSAt measures the image log slope (1/nm) at one probe: the aerial
// intensity is sampled half a pixel inside and outside the edge along
// the normal, giving a centred difference of ln I across the contour.
// Returns 0 when either sample is non-positive (no light: undefined
// slope).
func ILSAt(aerial *grid.Field, p Probe, pixelNM float64) float64 {
	step := pixelNM
	sample := func(t float64) float64 {
		x := int(math.Floor((p.X + t*p.Nx) / pixelNM))
		y := int(math.Floor((p.Y + t*p.Ny) / pixelNM))
		if x < 0 {
			x = 0
		}
		if x >= aerial.W {
			x = aerial.W - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= aerial.H {
			y = aerial.H - 1
		}
		return aerial.At(x, y)
	}
	in := sample(-step / 2)
	out := sample(step / 2)
	if in <= 0 || out <= 0 {
		return 0
	}
	return math.Abs(math.Log(in)-math.Log(out)) / step
}

// NILSReport carries the contrast survey of one aerial image.
type NILSReport struct {
	// Values holds NILS per probe (parallel to the probes slice).
	Values []float64
	// Min and Mean summarise the distribution (0 probes → zeros).
	Min  float64
	Mean float64
	// WeakPoints indexes probes with NILS below the threshold.
	WeakPoints []int
	// Threshold used for the weak-point classification.
	Threshold float64
}

// NILS surveys the aerial image at every probe: NILS = ILS·featureCD,
// with weak points flagged below the threshold (2.0 is the conventional
// printability floor).
func NILS(aerial *grid.Field, probes []Probe, pixelNM, featureCDNM, threshold float64) NILSReport {
	rep := NILSReport{
		Values:    make([]float64, len(probes)),
		Threshold: threshold,
	}
	if len(probes) == 0 {
		return rep
	}
	rep.Min = math.Inf(1)
	sum := 0.0
	for i, p := range probes {
		v := ILSAt(aerial, p, pixelNM) * featureCDNM
		rep.Values[i] = v
		sum += v
		if v < rep.Min {
			rep.Min = v
		}
		if v < threshold {
			rep.WeakPoints = append(rep.WeakPoints, i)
		}
	}
	rep.Mean = sum / float64(len(probes))
	return rep
}
