package metrics

import (
	"math"
	"testing"

	"lsopc/internal/grid"
)

// rampAerial builds an intensity field I(x) = exp(k·x) so the log slope
// is exactly k everywhere.
func rampAerial(n int, k float64) *grid.Field {
	f := grid.NewField(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			f.Set(x, y, math.Exp(k*float64(x)))
		}
	}
	return f
}

func TestILSExponentialRamp(t *testing.T) {
	const k = 0.05
	aerial := rampAerial(64, k)
	p := Probe{X: 32, Y: 32, Nx: 1, Ny: 0}
	got := ILSAt(aerial, p, 1)
	if math.Abs(got-k) > 1e-9 {
		t.Fatalf("ILS = %g, want %g", got, k)
	}
	// Normal direction flips don't change the magnitude.
	p.Nx = -1
	if math.Abs(ILSAt(aerial, p, 1)-k) > 1e-9 {
		t.Fatal("ILS must be direction-symmetric in magnitude")
	}
	// Perpendicular normal sees a flat profile.
	p = Probe{X: 32, Y: 32, Nx: 0, Ny: 1}
	if got := ILSAt(aerial, p, 1); got != 0 {
		t.Fatalf("perpendicular ILS = %g, want 0", got)
	}
}

func TestILSPixelPitchScaling(t *testing.T) {
	// Same physical field at 2 nm pixels: I(x_px) = exp(k·2·x_px), the
	// physical slope is still k per nm.
	const k = 0.03
	n := 64
	f := grid.NewField(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			f.Set(x, y, math.Exp(k*2*float64(x)))
		}
	}
	p := Probe{X: 64, Y: 64, Nx: 1, Ny: 0} // nm coordinates
	if got := ILSAt(f, p, 2); math.Abs(got-k) > 1e-9 {
		t.Fatalf("ILS at 2 nm/px = %g, want %g", got, k)
	}
}

func TestILSZeroIntensity(t *testing.T) {
	dark := grid.NewField(16, 16)
	if got := ILSAt(dark, Probe{X: 8, Y: 8, Nx: 1}, 1); got != 0 {
		t.Fatalf("dark-field ILS = %g", got)
	}
}

func TestNILSReport(t *testing.T) {
	aerial := rampAerial(64, 0.05)
	probes := []Probe{
		{X: 32, Y: 20, Nx: 1, Ny: 0}, // ILS 0.05 → NILS 5 at CD 100
		{X: 32, Y: 40, Nx: 0, Ny: 1}, // flat → NILS 0 (weak)
	}
	rep := NILS(aerial, probes, 1, 100, 2.0)
	if len(rep.Values) != 2 {
		t.Fatalf("values %v", rep.Values)
	}
	if math.Abs(rep.Values[0]-5) > 1e-6 || rep.Values[1] != 0 {
		t.Fatalf("NILS values %v", rep.Values)
	}
	if rep.Min != 0 || math.Abs(rep.Mean-2.5) > 1e-6 {
		t.Fatalf("summary min=%g mean=%g", rep.Min, rep.Mean)
	}
	if len(rep.WeakPoints) != 1 || rep.WeakPoints[0] != 1 {
		t.Fatalf("weak points %v", rep.WeakPoints)
	}
}

func TestNILSEmptyProbes(t *testing.T) {
	rep := NILS(grid.NewField(8, 8), nil, 1, 100, 2)
	if len(rep.Values) != 0 || rep.Min != 0 || rep.Mean != 0 || rep.WeakPoints != nil {
		t.Fatalf("empty report %+v", rep)
	}
}
