// Package mrc implements mask rule checking — the manufacturability
// constraints a mask shop imposes before accepting a mask for writing.
// ILT-generated masks are the classic MRC offenders (the paper's §I
// motivation), so the checker operates directly on binary mask rasters:
//
//   - minimum feature width (narrowest run of mask pixels),
//   - minimum space (narrowest run of background between features),
//   - minimum area (smallest island),
//   - minimum enclosed-hole area.
//
// Violations are reported with locations so they can be fed back into a
// cleanup pass or inspected visually.
package mrc

import (
	"fmt"

	"lsopc/internal/grid"
)

// Rules is a mask rule set in nm. Zero values disable the check.
type Rules struct {
	MinWidthNM float64 // minimum printed-feature width
	MinSpaceNM float64 // minimum gap between features
	MinAreaNM2 float64 // minimum island area
	MinHoleNM2 float64 // minimum enclosed hole area
	PixelNM    float64 // raster pitch
}

// DefaultRules returns a rule set representative of contest-era mask
// shops (40 nm min width/space, 60×60 nm² min area) at the given pixel
// pitch.
func DefaultRules(pixelNM float64) Rules {
	return Rules{
		MinWidthNM: 40,
		MinSpaceNM: 40,
		MinAreaNM2: 3600,
		MinHoleNM2: 3600,
		PixelNM:    pixelNM,
	}
}

// Validate checks the rule set.
func (r Rules) Validate() error {
	if r.PixelNM <= 0 {
		return fmt.Errorf("mrc: pixel pitch must be positive, got %g", r.PixelNM)
	}
	if r.MinWidthNM < 0 || r.MinSpaceNM < 0 || r.MinAreaNM2 < 0 || r.MinHoleNM2 < 0 {
		return fmt.Errorf("mrc: rule values must be ≥ 0")
	}
	return nil
}

// ViolationKind classifies a mask rule violation.
type ViolationKind int

const (
	// WidthViolation: a feature is narrower than MinWidthNM.
	WidthViolation ViolationKind = iota
	// SpaceViolation: two features are closer than MinSpaceNM.
	SpaceViolation
	// AreaViolation: an island is smaller than MinAreaNM2.
	AreaViolation
	// HoleViolation: an enclosed hole is smaller than MinHoleNM2.
	HoleViolation
)

// String implements fmt.Stringer.
func (k ViolationKind) String() string {
	switch k {
	case WidthViolation:
		return "width"
	case SpaceViolation:
		return "space"
	case AreaViolation:
		return "area"
	case HoleViolation:
		return "hole"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Violation is one rule failure with its location (pixel coordinates)
// and measured value (nm or nm²).
type Violation struct {
	Kind     ViolationKind
	X, Y     int
	Measured float64
	Limit    float64
}

// String formats the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("%s violation at (%d,%d): %.0f < %.0f", v.Kind, v.X, v.Y, v.Measured, v.Limit)
}

// Check runs all enabled rules against the binary mask and returns the
// violations found. Runs in O(pixels) per rule.
func Check(mask *grid.Field, rules Rules) ([]Violation, error) {
	if err := rules.Validate(); err != nil {
		return nil, err
	}
	var out []Violation
	if rules.MinWidthNM > 0 {
		out = append(out, runRule(mask, rules, true)...)
	}
	if rules.MinSpaceNM > 0 {
		out = append(out, runRule(mask, rules, false)...)
	}
	if rules.MinAreaNM2 > 0 || rules.MinHoleNM2 > 0 {
		out = append(out, componentRules(mask, rules)...)
	}
	return out, nil
}

// runRule scans rows and columns for runs shorter than the limit.
// checkMask=true measures mask runs (width rule); false measures
// interior background runs bounded by mask on both sides (space rule).
func runRule(mask *grid.Field, rules Rules, checkMask bool) []Violation {
	limit := rules.MinWidthNM
	kind := WidthViolation
	if !checkMask {
		limit = rules.MinSpaceNM
		kind = SpaceViolation
	}
	minPx := int(limit / rules.PixelNM)
	if float64(minPx)*rules.PixelNM < limit {
		minPx++
	}
	var out []Violation
	seen := make(map[[2]int]bool) // dedupe by run start

	is := func(x, y int) bool { return (mask.At(x, y) > 0.5) == checkMask }

	// Horizontal runs.
	for y := 0; y < mask.H; y++ {
		x := 0
		for x < mask.W {
			if !is(x, y) {
				x++
				continue
			}
			x0 := x
			for x < mask.W && is(x, y) {
				x++
			}
			runLen := x - x0
			interior := checkMask || (x0 > 0 && x < mask.W)
			if interior && runLen < minPx {
				key := [2]int{x0, y}
				if !seen[key] {
					seen[key] = true
					out = append(out, Violation{
						Kind: kind, X: x0, Y: y,
						Measured: float64(runLen) * rules.PixelNM,
						Limit:    limit,
					})
				}
			}
		}
	}
	// Vertical runs.
	for x := 0; x < mask.W; x++ {
		y := 0
		for y < mask.H {
			if !is(x, y) {
				y++
				continue
			}
			y0 := y
			for y < mask.H && is(x, y) {
				y++
			}
			runLen := y - y0
			interior := checkMask || (y0 > 0 && y < mask.H)
			if interior && runLen < minPx {
				key := [2]int{x, -y0 - 1}
				if !seen[key] {
					seen[key] = true
					out = append(out, Violation{
						Kind: kind, X: x, Y: y0,
						Measured: float64(runLen) * rules.PixelNM,
						Limit:    limit,
					})
				}
			}
		}
	}
	return out
}

// componentRules checks island and hole areas.
func componentRules(mask *grid.Field, rules Rules) []Violation {
	var out []Violation
	px2 := rules.PixelNM * rules.PixelNM

	if rules.MinAreaNM2 > 0 {
		labels, n := label4(mask, true)
		sizes, firsts := componentStats(labels, n, mask.W)
		for l := 1; l <= n; l++ {
			if a := float64(sizes[l]) * px2; a < rules.MinAreaNM2 {
				out = append(out, Violation{
					Kind: AreaViolation, X: firsts[l][0], Y: firsts[l][1],
					Measured: a, Limit: rules.MinAreaNM2,
				})
			}
		}
	}
	if rules.MinHoleNM2 > 0 {
		labels, n := label4(mask, false)
		sizes, firsts := componentStats(labels, n, mask.W)
		border := borderLabels(labels, mask.W, mask.H)
		for l := 1; l <= n; l++ {
			if border[l] {
				continue // outer background, not a hole
			}
			if a := float64(sizes[l]) * px2; a < rules.MinHoleNM2 {
				out = append(out, Violation{
					Kind: HoleViolation, X: firsts[l][0], Y: firsts[l][1],
					Measured: a, Limit: rules.MinHoleNM2,
				})
			}
		}
	}
	return out
}

// label4 labels 4-connected components of mask pixels (set=true) or
// background pixels (set=false).
func label4(mask *grid.Field, set bool) ([]int32, int) {
	w, h := mask.W, mask.H
	labels := make([]int32, w*h)
	next := int32(0)
	var stack []int32
	in := func(i int) bool { return (mask.Data[i] > 0.5) == set }
	for start := range mask.Data {
		if !in(start) || labels[start] != 0 {
			continue
		}
		next++
		stack = append(stack[:0], int32(start))
		labels[start] = next
		for len(stack) > 0 {
			i := int(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			x, y := i%w, i/w
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				j := ny*w + nx
				if in(j) && labels[j] == 0 {
					labels[j] = next
					stack = append(stack, int32(j))
				}
			}
		}
	}
	return labels, int(next)
}

// componentStats returns per-label pixel counts and first-pixel
// coordinates.
func componentStats(labels []int32, n, w int) ([]int, [][2]int) {
	sizes := make([]int, n+1)
	firsts := make([][2]int, n+1)
	seen := make([]bool, n+1)
	for i, l := range labels {
		if l == 0 {
			continue
		}
		sizes[l]++
		if !seen[l] {
			seen[l] = true
			firsts[l] = [2]int{i % w, i / w}
		}
	}
	return sizes, firsts
}

// borderLabels marks labels touching the grid border.
func borderLabels(labels []int32, w, h int) []bool {
	max := int32(0)
	for _, l := range labels {
		if l > max {
			max = l
		}
	}
	out := make([]bool, max+1)
	for x := 0; x < w; x++ {
		out[labels[x]] = true
		out[labels[(h-1)*w+x]] = true
	}
	for y := 0; y < h; y++ {
		out[labels[y*w]] = true
		out[labels[y*w+w-1]] = true
	}
	return out
}

// Summary aggregates violations by kind.
func Summary(violations []Violation) map[ViolationKind]int {
	out := make(map[ViolationKind]int)
	for _, v := range violations {
		out[v.Kind]++
	}
	return out
}
