package mrc

import (
	"testing"

	"lsopc/internal/grid"
)

func rectMask(n, x0, y0, x1, y1 int) *grid.Field {
	f := grid.NewField(n, n)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			f.Set(x, y, 1)
		}
	}
	return f
}

// rules4 is a 40 nm/40 nm/3600 nm² rule set at 4 nm pixels:
// 10 px width/space, 225 px area.
func rules4() Rules { return DefaultRules(4) }

func TestRulesValidate(t *testing.T) {
	if err := rules4().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Rules{PixelNM: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero pitch accepted")
	}
	neg := rules4()
	neg.MinWidthNM = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative rule accepted")
	}
}

func TestCleanMaskPasses(t *testing.T) {
	// 80 nm wide feature (20 px) with wide surroundings: no violations.
	m := rectMask(64, 20, 20, 40, 44)
	v, err := Check(m, rules4())
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("clean mask flagged: %v", v)
	}
}

func TestWidthViolation(t *testing.T) {
	// 5-px (20 nm) wide vertical sliver: below the 40 nm width rule.
	m := rectMask(64, 30, 10, 35, 54)
	v, err := Check(m, rules4())
	if err != nil {
		t.Fatal(err)
	}
	s := Summary(v)
	if s[WidthViolation] == 0 {
		t.Fatalf("thin feature not flagged: %v", v)
	}
	// The violation records the measured width.
	for _, viol := range v {
		if viol.Kind == WidthViolation && viol.Measured != 20 {
			t.Fatalf("measured width %g, want 20", viol.Measured)
		}
	}
}

func TestSpaceViolation(t *testing.T) {
	// Two wide features separated by a 4-px (16 nm) gap.
	m := rectMask(64, 10, 10, 30, 50)
	for y := 10; y < 50; y++ {
		for x := 34; x < 54; x++ {
			m.Set(x, y, 1)
		}
	}
	v, err := Check(m, rules4())
	if err != nil {
		t.Fatal(err)
	}
	if Summary(v)[SpaceViolation] == 0 {
		t.Fatalf("narrow gap not flagged: %v", v)
	}
}

func TestSpaceRuleIgnoresBorderGaps(t *testing.T) {
	// A single feature near the grid edge: the gap to the border is not
	// a space violation (no neighbour on the other side).
	m := rectMask(64, 2, 20, 22, 44)
	v, err := Check(m, rules4())
	if err != nil {
		t.Fatal(err)
	}
	if Summary(v)[SpaceViolation] != 0 {
		t.Fatalf("border gap flagged: %v", v)
	}
}

func TestAreaViolation(t *testing.T) {
	// 36×36 nm (9×9 px = 1296 nm²) island: below 3600 nm²... but also
	// below the width rule; isolate by widening rules.
	m := rectMask(64, 30, 30, 39, 39)
	r := rules4()
	r.MinWidthNM = 0
	r.MinSpaceNM = 0
	v, err := Check(m, r)
	if err != nil {
		t.Fatal(err)
	}
	s := Summary(v)
	if s[AreaViolation] != 1 {
		t.Fatalf("small island not flagged: %v", v)
	}
}

func TestHoleViolation(t *testing.T) {
	m := rectMask(64, 10, 10, 54, 54)
	// A 3×3 px (144 nm²) pinhole.
	for y := 30; y < 33; y++ {
		for x := 30; x < 33; x++ {
			m.Set(x, y, 0)
		}
	}
	r := rules4()
	r.MinWidthNM = 0
	r.MinSpaceNM = 0
	v, err := Check(m, r)
	if err != nil {
		t.Fatal(err)
	}
	if Summary(v)[HoleViolation] != 1 {
		t.Fatalf("pinhole not flagged: %v", v)
	}
	// The outer background must not be a hole violation.
	empty := rectMask(64, 28, 28, 36, 36)
	v, err = Check(empty, r)
	if err != nil {
		t.Fatal(err)
	}
	if Summary(v)[HoleViolation] != 0 {
		t.Fatalf("outer background flagged as hole: %v", v)
	}
}

func TestDisabledRules(t *testing.T) {
	m := rectMask(32, 14, 14, 16, 16) // tiny sliver island
	v, err := Check(m, Rules{PixelNM: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("disabled rules still flagged: %v", v)
	}
}

func TestCheckRejectsInvalidRules(t *testing.T) {
	if _, err := Check(grid.NewField(8, 8), Rules{}); err == nil {
		t.Fatal("invalid rules accepted")
	}
}

func TestViolationFormatting(t *testing.T) {
	v := Violation{Kind: WidthViolation, X: 3, Y: 4, Measured: 20, Limit: 40}
	if v.String() != "width violation at (3,4): 20 < 40" {
		t.Fatalf("formatting %q", v.String())
	}
	kinds := []ViolationKind{WidthViolation, SpaceViolation, AreaViolation, HoleViolation}
	names := []string{"width", "space", "area", "hole"}
	for i, k := range kinds {
		if k.String() != names[i] {
			t.Errorf("kind %d name %q", i, k.String())
		}
	}
	if ViolationKind(9).String() != "ViolationKind(9)" {
		t.Error("unknown kind formatting")
	}
}

func TestExactLimitPasses(t *testing.T) {
	// Exactly 40 nm (10 px) wide: meets the rule, no violation.
	m := rectMask(64, 20, 10, 30, 54)
	v, err := Check(m, rules4())
	if err != nil {
		t.Fatal(err)
	}
	if Summary(v)[WidthViolation] != 0 {
		t.Fatalf("exact-limit width flagged: %v", v)
	}
}
