// Package analyze is the consumption half of the observability layer:
// it parses the JSONL event traces that obs.JSONLSink writes (the
// -tracefile output of cmd/lsopc and cmd/benchjson) back into typed
// runs and computes the summaries a human (or CI) actually wants —
// per-session convergence curves with slope/stall/divergence analysis,
// per-phase latency aggregation with interpolated-free exact
// p50/p95/p99 over the raw span durations, plan-cache and pool hit
// rates, and run-vs-run diffs.
//
// The package depends only on internal/obs (for the Event schema) and
// the standard library, so commands and tests can consume traces
// without touching the simulation stack.
package analyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"lsopc/internal/obs"
)

// Thresholds tune the convergence analysis. The zero value is replaced
// by DefaultThresholds.
type Thresholds struct {
	// StallWindow is the trailing iteration count over which relative
	// improvement below StallEpsilon flags a stalled run.
	StallWindow int
	// StallEpsilon is the relative cost-improvement floor for the stall
	// window.
	StallEpsilon float64
	// DivergenceFactor flags a diverged run when the final cost exceeds
	// this multiple of the best cost.
	DivergenceFactor float64
}

// DefaultThresholds returns the standard analysis configuration.
func DefaultThresholds() Thresholds {
	return Thresholds{StallWindow: 5, StallEpsilon: 1e-6, DivergenceFactor: 2}
}

// IterPoint is one optimizer iteration of one session's series.
type IterPoint struct {
	Iter        int     `json:"iter"`
	Cost        float64 `json:"cost"`
	CostNominal float64 `json:"cost_nominal,omitempty"`
	CostPVB     float64 `json:"cost_pvb,omitempty"`
	GradNorm    float64 `json:"grad_norm,omitempty"`
	MaxVelocity float64 `json:"max_velocity,omitempty"`
	TimeStep    float64 `json:"time_step,omitempty"`
	DurNS       int64   `json:"dur_ns,omitempty"`
}

// Convergence summarises one session's cost curve.
type Convergence struct {
	Iterations int     `json:"iterations"`
	FirstCost  float64 `json:"first_cost"`
	FinalCost  float64 `json:"final_cost"`
	BestCost   float64 `json:"best_cost"`
	BestIter   int     `json:"best_iter"`
	// ReductionFrac is (first−final)/first; negative when the run ended
	// worse than it started.
	ReductionFrac float64 `json:"reduction_frac"`
	// SlopeLogPerIter is the least-squares slope of ln(cost) over the
	// iteration index — the average relative cost change per iteration
	// (negative = converging). Zero when fewer than two positive costs.
	SlopeLogPerIter float64 `json:"slope_log_per_iter"`
	// Stalled: the trailing StallWindow iterations improved the cost by
	// less than StallEpsilon (relative). StallIter is where the stalled
	// window starts (-1 when not stalled).
	Stalled   bool `json:"stalled"`
	StallIter int  `json:"stall_iter"`
	// NonFinite: a NaN/Inf cost appeared at NonFiniteIter (-1 when the
	// whole curve is finite).
	NonFinite     bool `json:"non_finite"`
	NonFiniteIter int  `json:"non_finite_iter"`
	// Diverged: the final cost exceeds DivergenceFactor × the best cost.
	Diverged bool `json:"diverged"`
}

// HealthEvent is one watchdog verdict recorded in the trace.
type HealthEvent struct {
	Iter   int     `json:"iter"`
	Reason string  `json:"reason"`
	Cost   float64 `json:"cost"`
}

// LevelSegment is one resolution level of a coarse-to-fine run: the
// contiguous slice of the session's iterations executed at one grid
// size, with its own convergence summary and iteration-latency
// percentiles. InterpNS is the ψ/θ interpolation + redistancing time
// spent leaving this level (0 for the final, full-resolution level).
type LevelSegment struct {
	GridN       int         `json:"grid_n"`
	StartIter   int         `json:"start_iter"`
	Iterations  int         `json:"iterations"`
	InterpNS    int64       `json:"interp_ns,omitempty"`
	Convergence Convergence `json:"convergence"`
	MeanIterNS  float64     `json:"mean_iter_ns,omitempty"`
	P50IterNS   float64     `json:"p50_iter_ns,omitempty"`
	P95IterNS   float64     `json:"p95_iter_ns,omitempty"`
	P99IterNS   float64     `json:"p99_iter_ns,omitempty"`
}

// Session is the reconstructed view of one traced session (one trace
// id): its iteration series, convergence summary and health verdicts.
// Levels is populated when the session contains level_switch events
// (coarse-to-fine runs), one segment per resolution in schedule order.
type Session struct {
	ID          string         `json:"id"`
	Engine      string         `json:"engine,omitempty"`
	Iterations  []IterPoint    `json:"iterations,omitempty"`
	Convergence Convergence    `json:"convergence"`
	Levels      []LevelSegment `json:"levels,omitempty"`
	Health      []HealthEvent  `json:"health,omitempty"`
	// Cancelled: the session observed a context cancellation at
	// CancelledIter (a cancelled event); Checkpoints counts the
	// resumable checkpoints it captured.
	Cancelled     bool `json:"cancelled,omitempty"`
	CancelledIter int  `json:"cancelled_iter,omitempty"`
	Checkpoints   int  `json:"checkpoints,omitempty"`

	switches []obs.Event // level_switch events, in emission order
}

// PhaseStats aggregates the durations of one phase: a span name
// ("span:optimize.levelset"), a per-corner simulate op
// ("corner:forward_gradient/nominal") or the optimizer iteration
// ("iteration"). Quantiles are exact (computed from the sorted raw
// durations, not histogram buckets).
type PhaseStats struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	TotalNS int64   `json:"total_ns"`
	MeanNS  float64 `json:"mean_ns"`
	P50NS   float64 `json:"p50_ns"`
	P95NS   float64 `json:"p95_ns"`
	P99NS   float64 `json:"p99_ns"`
	MaxNS   int64   `json:"max_ns"`

	durs []int64
}

// HitRate is a hit/miss tally (plan-cache lookups, pool leases).
type HitRate struct {
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
}

// Rate returns hits/(hits+misses), 0 when nothing was counted.
func (h HitRate) Rate() float64 {
	if n := h.Hits + h.Misses; n > 0 {
		return float64(h.Hits) / float64(n)
	}
	return 0
}

// Total returns the lookup count.
func (h HitRate) Total() int { return h.Hits + h.Misses }

// StitchPassStat is one halo-stitching consistency pass of a tiled run.
type StitchPassStat struct {
	Pass      int     `json:"pass"`
	Tiles     int     `json:"tiles"` // tiles re-optimized in this pass
	Seam      float64 `json:"seam"`  // worst seam disagreement after the pass
	Converged bool    `json:"converged"`
	DurNS     int64   `json:"dur_ns"`
}

// TiledStats summarises a tiled run: how many distinct tiles ran, the
// per-tile latency percentiles over every tile optimization (initial
// sweep plus stitch re-runs), and the stitch-pass convergence series.
type TiledStats struct {
	Tiles      int              `json:"tiles"`
	Runs       int              `json:"runs"`
	Converged  int              `json:"converged"` // tile runs that hit tolerance
	MeanTileNS float64          `json:"mean_tile_ns"`
	P50TileNS  float64          `json:"p50_tile_ns"`
	P95TileNS  float64          `json:"p95_tile_ns"`
	P99TileNS  float64          `json:"p99_tile_ns"`
	MaxTileNS  int64            `json:"max_tile_ns"`
	Stitch     []StitchPassStat `json:"stitch,omitempty"`
}

// Run is one fully parsed trace file.
type Run struct {
	Label  string `json:"label,omitempty"` // file name or caller-set tag
	Events int    `json:"events"`
	// WallNS spans the first to the last sink timestamp.
	WallNS    int64               `json:"wall_ns"`
	ByType    map[string]int      `json:"by_type"`
	Sessions  map[string]*Session `json:"sessions"`
	Phases    []PhaseStats        `json:"phases"`
	PlanCache HitRate             `json:"plan_cache"`
	Pool      HitRate             `json:"pool"`
	// PoolReleases counts pool release events (not part of the hit rate).
	PoolReleases int `json:"pool_releases"`
	// Health is every watchdog event in the trace, in order.
	Health []obs.Event `json:"health,omitempty"`
	// Tiled is populated when the trace carries tile/stitch events.
	Tiled *TiledStats `json:"tiled,omitempty"`

	tileDurs []int64
	tileSet  map[int]bool

	phaseIdx map[string]int
	// levelDurs buffers per-grid-size corner samples ("corner:…@128");
	// they become phases in finalize only when the trace contains
	// level_switch events, so single-resolution traces keep their
	// existing phase table.
	levelDurs map[string][]int64
}

// SessionIDs returns the session keys in sorted order (the runtime
// pseudo-session "" sorts first when present).
func (r *Run) SessionIDs() []string {
	ids := make([]string, 0, len(r.Sessions))
	for id := range r.Sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Phase returns the named phase's stats, or nil.
func (r *Run) Phase(name string) *PhaseStats {
	if i, ok := r.phaseIdx[name]; ok {
		return &r.Phases[i]
	}
	return nil
}

// Wall returns the trace's wall-clock extent.
func (r *Run) Wall() time.Duration { return time.Duration(r.WallNS) }

// ParseFile parses one JSONL trace file with the default thresholds.
func ParseFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	run, err := Parse(f, DefaultThresholds())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	run.Label = path
	return run, nil
}

// Parse reads a JSONL event stream and builds the typed run. Lines must
// be valid JSON events with a type (the invariants cmd/tracecheck
// enforces); an empty stream is an error — a trace with zero events
// means the instrumentation never ran.
func Parse(in io.Reader, th Thresholds) (*Run, error) {
	if th.StallWindow == 0 && th.StallEpsilon == 0 && th.DivergenceFactor == 0 {
		th = DefaultThresholds()
	}
	run := &Run{
		ByType:    map[string]int{},
		Sessions:  map[string]*Session{},
		phaseIdx:  map[string]int{},
		levelDurs: map[string][]int64{},
	}
	var firstNS, lastNS int64
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("line %d: invalid JSON: %v", line, err)
		}
		if e.Type == "" {
			return nil, fmt.Errorf("line %d: event has no type", line)
		}
		run.Events++
		run.ByType[e.Type]++
		if e.TimeNS != 0 {
			if firstNS == 0 || e.TimeNS < firstNS {
				firstNS = e.TimeNS
			}
			if e.TimeNS > lastNS {
				lastNS = e.TimeNS
			}
		}
		switch e.Type {
		case obs.EventIteration:
			s := run.session(e.Trace, e.Engine)
			s.Iterations = append(s.Iterations, IterPoint{
				Iter:        e.Iter,
				Cost:        e.Cost,
				CostNominal: e.CostNominal,
				CostPVB:     e.CostPVB,
				GradNorm:    e.GradNorm,
				MaxVelocity: e.MaxVelocity,
				TimeStep:    e.TimeStep,
				DurNS:       e.DurNS,
			})
			run.observePhase("iteration", e.DurNS)
		case obs.EventCorner:
			run.observePhase("corner:"+e.Name+"/"+e.Corner, e.DurNS)
			if e.N > 0 {
				key := fmt.Sprintf("corner:%s/%s@%d", e.Name, e.Corner, e.N)
				run.levelDurs[key] = append(run.levelDurs[key], e.DurNS)
			}
		case obs.EventLevelSwitch:
			s := run.session(e.Trace, e.Engine)
			s.switches = append(s.switches, e)
			run.observePhase("level_switch", e.DurNS)
		case obs.EventSpan:
			run.session(e.Trace, e.Engine)
			run.observePhase("span:"+e.Name, e.DurNS)
		case obs.EventPlanCache:
			if e.Hit {
				run.PlanCache.Hits++
			} else {
				run.PlanCache.Misses++
			}
		case obs.EventPool:
			if strings.HasSuffix(e.Name, ".release") {
				run.PoolReleases++
			} else if e.Hit {
				run.Pool.Hits++
			} else {
				run.Pool.Misses++
			}
		case obs.EventHealth:
			run.Health = append(run.Health, e)
			s := run.session(e.Trace, "")
			s.Health = append(s.Health, HealthEvent{Iter: e.Iter, Reason: e.Msg, Cost: e.Cost})
		case obs.EventCancelled:
			s := run.session(e.Trace, e.Engine)
			s.Cancelled = true
			s.CancelledIter = e.Iter
		case obs.EventCheckpoint:
			s := run.session(e.Trace, e.Engine)
			s.Checkpoints++
		case obs.EventTileDone:
			if run.Tiled == nil {
				run.Tiled = &TiledStats{}
				run.tileSet = map[int]bool{}
			}
			run.Tiled.Runs++
			if e.Hit {
				run.Tiled.Converged++
			}
			run.tileSet[e.Tile] = true
			run.tileDurs = append(run.tileDurs, e.DurNS)
			if e.DurNS > run.Tiled.MaxTileNS {
				run.Tiled.MaxTileNS = e.DurNS
			}
			run.observePhase("tile", e.DurNS)
		case obs.EventStitchPass:
			if run.Tiled == nil {
				run.Tiled = &TiledStats{}
				run.tileSet = map[int]bool{}
			}
			run.Tiled.Stitch = append(run.Tiled.Stitch, StitchPassStat{
				Pass: e.Pass, Tiles: e.N, Seam: e.Seam, Converged: e.Hit, DurNS: e.DurNS,
			})
			run.observePhase("stitch_pass", e.DurNS)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if run.Events == 0 {
		return nil, fmt.Errorf("trace is empty")
	}
	if lastNS > firstNS {
		run.WallNS = lastNS - firstNS
	}
	run.finalize(th)
	return run, nil
}

// session returns (creating if needed) the session for a trace id.
func (r *Run) session(id, engine string) *Session {
	s, ok := r.Sessions[id]
	if !ok {
		s = &Session{ID: id}
		r.Sessions[id] = s
	}
	if s.Engine == "" {
		s.Engine = engine
	}
	return s
}

// observePhase appends one duration sample to the named phase.
func (r *Run) observePhase(name string, durNS int64) {
	i, ok := r.phaseIdx[name]
	if !ok {
		i = len(r.Phases)
		r.phaseIdx[name] = i
		r.Phases = append(r.Phases, PhaseStats{Name: name})
	}
	p := &r.Phases[i]
	p.Count++
	p.TotalNS += durNS
	if durNS > p.MaxNS {
		p.MaxNS = durNS
	}
	p.durs = append(p.durs, durNS)
}

// finalize computes quantiles and convergence summaries and sorts the
// phase table by total time (descending).
func (r *Run) finalize(th Thresholds) {
	// Multi-resolution runs get per-grid-size corner phases
	// ("corner:forward_gradient/nominal@64") next to the aggregate ones,
	// so latency percentiles can be compared across levels.
	if r.ByType[obs.EventLevelSwitch] > 0 {
		names := make([]string, 0, len(r.levelDurs))
		for name := range r.levelDurs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			for _, d := range r.levelDurs[name] {
				r.observePhase(name, d)
			}
		}
	}
	r.levelDurs = nil
	for i := range r.Phases {
		p := &r.Phases[i]
		sort.Slice(p.durs, func(a, b int) bool { return p.durs[a] < p.durs[b] })
		p.MeanNS = float64(p.TotalNS) / float64(p.Count)
		p.P50NS = percentile(p.durs, 0.50)
		p.P95NS = percentile(p.durs, 0.95)
		p.P99NS = percentile(p.durs, 0.99)
		p.durs = nil
	}
	sort.Slice(r.Phases, func(a, b int) bool { return r.Phases[a].TotalNS > r.Phases[b].TotalNS })
	r.phaseIdx = map[string]int{}
	for i, p := range r.Phases {
		r.phaseIdx[p.Name] = i
	}
	for _, s := range r.Sessions {
		s.Convergence = summarize(s.Iterations, th)
		s.Levels = buildLevels(s, th)
		s.switches = nil
	}
	if r.Tiled != nil {
		r.Tiled.Tiles = len(r.tileSet)
		if n := len(r.tileDurs); n > 0 {
			sort.Slice(r.tileDurs, func(a, b int) bool { return r.tileDurs[a] < r.tileDurs[b] })
			var total int64
			for _, d := range r.tileDurs {
				total += d
			}
			r.Tiled.MeanTileNS = float64(total) / float64(n)
			r.Tiled.P50TileNS = percentile(r.tileDurs, 0.50)
			r.Tiled.P95TileNS = percentile(r.tileDurs, 0.95)
			r.Tiled.P99TileNS = percentile(r.tileDurs, 0.99)
		}
		sort.Slice(r.Tiled.Stitch, func(a, b int) bool { return r.Tiled.Stitch[a].Pass < r.Tiled.Stitch[b].Pass })
	}
	r.tileDurs, r.tileSet = nil, nil
}

// buildLevels slices a coarse-to-fine session's iteration series into
// per-resolution segments at its level_switch boundaries (a switch at
// global iteration i ends the level that ran iterations < i). Sessions
// without switches return nil.
func buildLevels(s *Session, th Thresholds) []LevelSegment {
	if len(s.switches) == 0 {
		return nil
	}
	sw := s.switches
	segs := make([]LevelSegment, 0, len(sw)+1)
	start := 0
	for k := 0; k <= len(sw); k++ {
		gridN, endIter, interpNS := 0, math.MaxInt, int64(0)
		if k < len(sw) {
			gridN, endIter, interpNS = sw[k].OldN, sw[k].Iter, sw[k].DurNS
		} else {
			gridN = sw[len(sw)-1].N
		}
		end := start
		for end < len(s.Iterations) && s.Iterations[end].Iter < endIter {
			end++
		}
		pts := s.Iterations[start:end]
		seg := LevelSegment{
			GridN:       gridN,
			Iterations:  len(pts),
			InterpNS:    interpNS,
			Convergence: summarize(pts, th),
		}
		if len(pts) > 0 {
			seg.StartIter = pts[0].Iter
			durs := make([]int64, 0, len(pts))
			var totalNS int64
			for _, p := range pts {
				if p.DurNS > 0 {
					durs = append(durs, p.DurNS)
					totalNS += p.DurNS
				}
			}
			if len(durs) > 0 {
				sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
				seg.MeanIterNS = float64(totalNS) / float64(len(durs))
				seg.P50IterNS = percentile(durs, 0.50)
				seg.P95IterNS = percentile(durs, 0.95)
				seg.P99IterNS = percentile(durs, 0.99)
			}
		}
		segs = append(segs, seg)
		start = end
	}
	return segs
}

// percentile interpolates the q-quantile of ascending-sorted samples.
func percentile(sorted []int64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return float64(sorted[0])
	}
	pos := q * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return float64(sorted[n-1])
	}
	frac := pos - float64(i)
	return float64(sorted[i]) + frac*float64(sorted[i+1]-sorted[i])
}

// summarize computes the convergence summary of one iteration series.
func summarize(iters []IterPoint, th Thresholds) Convergence {
	c := Convergence{Iterations: len(iters), StallIter: -1, NonFiniteIter: -1}
	if len(iters) == 0 {
		return c
	}
	c.FirstCost = iters[0].Cost
	c.FinalCost = iters[len(iters)-1].Cost
	c.BestCost = math.Inf(1)
	for i, p := range iters {
		if !c.NonFinite && (math.IsNaN(p.Cost) || math.IsInf(p.Cost, 0)) {
			c.NonFinite, c.NonFiniteIter = true, p.Iter
		}
		if p.Cost < c.BestCost {
			c.BestCost, c.BestIter = p.Cost, i
		}
	}
	if math.IsInf(c.BestCost, 1) { // every cost non-finite
		c.BestCost = math.NaN()
	}
	if c.FirstCost != 0 && !c.NonFinite {
		c.ReductionFrac = (c.FirstCost - c.FinalCost) / c.FirstCost
	}
	c.SlopeLogPerIter = logSlope(iters)
	// Stall: the trailing window's total relative improvement is below
	// the epsilon.
	if w := th.StallWindow; !c.NonFinite && w > 0 && len(iters) > w {
		start := iters[len(iters)-1-w].Cost
		end := c.FinalCost
		denom := math.Abs(start)
		if denom < 1 {
			denom = 1
		}
		if (start-end)/denom < th.StallEpsilon {
			c.Stalled = true
			c.StallIter = iters[len(iters)-1-w].Iter
		}
	}
	if !c.NonFinite && th.DivergenceFactor > 0 && c.BestCost > 0 &&
		c.FinalCost > th.DivergenceFactor*c.BestCost {
		c.Diverged = true
	}
	return c
}

// logSlope is the least-squares slope of ln(cost) against the sample
// index, using only finite positive costs. It approximates the average
// relative cost change per iteration. The math lives in obs.SlopeAccum
// so the live RunRegistry computes the identical statistic
// incrementally while a run is still in flight.
func logSlope(iters []IterPoint) float64 {
	var a obs.SlopeAccum
	for _, p := range iters {
		a.Observe(p.Cost)
	}
	return a.Slope()
}
