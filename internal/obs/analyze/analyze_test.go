package analyze

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"lsopc/internal/obs"
)

// traceBuf renders events through a real JSONLSink so the tests parse
// exactly what production traces contain (seq + timestamps included).
func traceBuf(t *testing.T, events []obs.Event) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func iterEvent(trace string, i int, cost float64) obs.Event {
	return obs.Event{
		Type: obs.EventIteration, Trace: trace, Engine: "gpu",
		Iter: i, Cost: cost, CostNominal: cost * 0.7, CostPVB: cost * 0.5,
		GradNorm: cost / 10, MaxVelocity: 0.5, TimeStep: 1.5, DurNS: int64(1e6 + i*1e5),
	}
}

func TestParseTypedRun(t *testing.T) {
	var events []obs.Event
	// Session s1: geometric convergence over 12 iterations.
	cost := 1000.0
	for i := 0; i < 12; i++ {
		events = append(events, iterEvent("s1", i, cost))
		events = append(events,
			obs.Event{Type: obs.EventCorner, Trace: "s1", Name: "forward_gradient", Corner: "nominal", DurNS: 2e6},
			obs.Event{Type: obs.EventCorner, Trace: "s1", Name: "forward_gradient", Corner: "outer", DurNS: 3e6},
		)
		cost *= 0.8
	}
	events = append(events, obs.Event{Type: obs.EventSpan, Trace: "s1", Name: "optimize.levelset", Engine: "gpu", DurNS: 5e7})
	// Runtime events (no session).
	for i := 0; i < 8; i++ {
		events = append(events, obs.Event{Type: obs.EventPlanCache, Name: "plan1d", N: 128, Hit: i > 1})
		events = append(events, obs.Event{Type: obs.EventPool, Name: "field", N: 64, Hit: i > 3})
		events = append(events, obs.Event{Type: obs.EventPool, Name: "field.release", N: 64})
	}

	run, err := Parse(traceBuf(t, events), DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if run.Events != len(events) {
		t.Fatalf("events = %d, want %d", run.Events, len(events))
	}
	if run.ByType[obs.EventIteration] != 12 || run.ByType[obs.EventCorner] != 24 {
		t.Fatalf("by-type counts wrong: %v", run.ByType)
	}
	if got := run.PlanCache; got.Hits != 6 || got.Misses != 2 {
		t.Fatalf("plan cache = %+v", got)
	}
	if got := run.Pool; got.Hits != 4 || got.Misses != 4 || run.PoolReleases != 8 {
		t.Fatalf("pool = %+v releases=%d", got, run.PoolReleases)
	}
	if r := run.Pool.Rate(); r != 0.5 {
		t.Fatalf("pool rate = %g, want 0.5", r)
	}

	s := run.Sessions["s1"]
	if s == nil || len(s.Iterations) != 12 || s.Engine != "gpu" {
		t.Fatalf("session s1 = %+v", s)
	}
	c := s.Convergence
	if c.Iterations != 12 || c.FirstCost != 1000 {
		t.Fatalf("convergence = %+v", c)
	}
	if c.BestIter != 11 || c.Stalled || c.NonFinite || c.Diverged {
		t.Fatalf("convergence flags = %+v", c)
	}
	// ln(0.8) per iteration ≈ -0.223.
	if math.Abs(c.SlopeLogPerIter-math.Log(0.8)) > 1e-9 {
		t.Fatalf("slope = %g, want %g", c.SlopeLogPerIter, math.Log(0.8))
	}
	if c.ReductionFrac < 0.9 {
		t.Fatalf("reduction = %g, want > 0.9", c.ReductionFrac)
	}

	// Phase aggregation: per-corner split and exact quantiles.
	nom := run.Phase("corner:forward_gradient/nominal")
	if nom == nil || nom.Count != 12 || nom.P50NS != 2e6 || nom.MaxNS != 2e6 {
		t.Fatalf("nominal corner phase = %+v", nom)
	}
	if sp := run.Phase("span:optimize.levelset"); sp == nil || sp.Count != 1 || sp.TotalNS != 5e7 {
		t.Fatalf("span phase = %+v", sp)
	}
	// Phases sort by total time descending.
	if run.Phases[0].TotalNS < run.Phases[len(run.Phases)-1].TotalNS {
		t.Fatal("phases not sorted by total time")
	}
	if run.WallNS <= 0 {
		t.Fatalf("wall = %d, want > 0", run.WallNS)
	}
}

func TestParseDetectsStallAndNaNAndHealth(t *testing.T) {
	var events []obs.Event
	// s1 stalls: constant cost after iteration 2.
	for i := 0; i < 10; i++ {
		c := 100.0
		if i < 2 {
			c = 200 - float64(i)*50
		}
		events = append(events, iterEvent("s1", i, c))
	}
	// s2 goes NaN at iteration 3 and carries a watchdog event.
	for i := 0; i < 5; i++ {
		c := 50.0
		if i >= 3 {
			c = math.NaN()
		}
		events = append(events, iterEvent("s2", i, c))
	}
	events = append(events, obs.Event{Type: obs.EventHealth, Trace: "s2", Iter: 3, Msg: obs.HealthNonFiniteCost, Cost: math.NaN()})

	run, err := Parse(traceBuf(t, events), DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	c1 := run.Sessions["s1"].Convergence
	if !c1.Stalled || c1.StallIter < 2 {
		t.Fatalf("s1 convergence = %+v, want stalled", c1)
	}
	c2 := run.Sessions["s2"].Convergence
	if !c2.NonFinite || c2.NonFiniteIter != 3 {
		t.Fatalf("s2 convergence = %+v, want non-finite at 3", c2)
	}
	if len(run.Health) != 1 || run.Health[0].Msg != obs.HealthNonFiniteCost {
		t.Fatalf("run health = %+v", run.Health)
	}
	if h := run.Sessions["s2"].Health; len(h) != 1 || h[0].Reason != obs.HealthNonFiniteCost {
		t.Fatalf("s2 health = %+v", h)
	}
}

func TestParseDetectsDivergence(t *testing.T) {
	var events []obs.Event
	costs := []float64{100, 50, 20, 10, 400}
	for i, c := range costs {
		events = append(events, iterEvent("s1", i, c))
	}
	run, err := Parse(traceBuf(t, events), DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	c := run.Sessions["s1"].Convergence
	if !c.Diverged || c.BestCost != 10 || c.BestIter != 3 {
		t.Fatalf("convergence = %+v, want diverged with best 10 @ 3", c)
	}
	if c.ReductionFrac >= 0 {
		t.Fatalf("reduction = %g, want negative", c.ReductionFrac)
	}
}

func TestParseTiledRun(t *testing.T) {
	var events []obs.Event
	// Initial sweep: 4 tiles, tile 4 non-converged.
	for ti := 1; ti <= 4; ti++ {
		events = append(events,
			obs.Event{Type: obs.EventTileStart, Trace: "job", Tile: ti, Pass: 0, Name: "{0 0 512 512}"},
			obs.Event{Type: obs.EventTileDone, Trace: "job", Tile: ti, Pass: 0, Iter: 20, Hit: ti != 4, DurNS: int64(ti) * 1e7},
		)
	}
	// Two stitch passes re-running tiles 2 and 4; second pass converges.
	for p := 1; p <= 2; p++ {
		for _, ti := range []int{2, 4} {
			events = append(events,
				obs.Event{Type: obs.EventTileStart, Trace: "job", Tile: ti, Pass: p},
				obs.Event{Type: obs.EventTileDone, Trace: "job", Tile: ti, Pass: p, Iter: 5, Hit: true, DurNS: 1e7},
			)
		}
		events = append(events, obs.Event{
			Type: obs.EventStitchPass, Trace: "job", Pass: p, N: 2,
			Seam: 0.04 / float64(p), Hit: p == 2, DurNS: 3e7,
		})
	}

	run, err := Parse(traceBuf(t, events), DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	td := run.Tiled
	if td == nil {
		t.Fatal("tiled stats missing")
	}
	if td.Tiles != 4 || td.Runs != 8 || td.Converged != 7 {
		t.Fatalf("tiled = %+v, want 4 tiles / 8 runs / 7 converged", td)
	}
	if td.MaxTileNS != 4e7 {
		t.Fatalf("max tile = %d, want 4e7", td.MaxTileNS)
	}
	if td.P50TileNS <= 0 || td.P99TileNS < td.P50TileNS {
		t.Fatalf("tile percentiles p50=%g p99=%g", td.P50TileNS, td.P99TileNS)
	}
	if len(td.Stitch) != 2 {
		t.Fatalf("stitch passes = %d, want 2", len(td.Stitch))
	}
	if s := td.Stitch[1]; s.Pass != 2 || s.Tiles != 2 || !s.Converged || s.Seam != 0.02 {
		t.Fatalf("stitch[1] = %+v", s)
	}
	if ph := run.Phase("tile"); ph == nil || ph.Count != 8 {
		t.Fatalf("tile phase = %+v, want count 8", ph)
	}
	if ph := run.Phase("stitch_pass"); ph == nil || ph.Count != 2 {
		t.Fatalf("stitch_pass phase = %+v, want count 2", ph)
	}
}

func TestParseRejectsEmptyAndMalformed(t *testing.T) {
	if _, err := Parse(strings.NewReader(""), DefaultThresholds()); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := Parse(strings.NewReader("{not json\n"), DefaultThresholds()); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := Parse(strings.NewReader(`{"seq":1}`+"\n"), DefaultThresholds()); err == nil {
		t.Fatal("type-less event accepted")
	}
}

func TestPercentile(t *testing.T) {
	durs := []int64{10, 20, 30, 40}
	if got := percentile(durs, 0.5); got != 25 {
		t.Fatalf("p50 = %g, want 25", got)
	}
	if got := percentile(durs, 0); got != 10 {
		t.Fatalf("p0 = %g, want 10", got)
	}
	if got := percentile(durs, 1); got != 40 {
		t.Fatalf("p100 = %g, want 40", got)
	}
	if got := percentile([]int64{7}, 0.99); got != 7 {
		t.Fatalf("single-sample p99 = %g, want 7", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %g, want 0", got)
	}
}

func TestDiff(t *testing.T) {
	mk := func(cornerNS int64, finalCost float64) *Run {
		var events []obs.Event
		cost := 100.0
		for i := 0; i < 6; i++ {
			events = append(events, iterEvent("s1", i, cost))
			events = append(events, obs.Event{Type: obs.EventCorner, Trace: "s1", Name: "forward", Corner: "nominal", DurNS: cornerNS})
			cost = finalCost + (cost-finalCost)*0.5
		}
		events = append(events, obs.Event{Type: obs.EventPlanCache, Name: "plan1d", N: 64, Hit: true})
		run, err := Parse(traceBuf(t, events), DefaultThresholds())
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	a := mk(1e6, 10)
	a.Label = "a.jsonl"
	b := mk(2e6, 10)
	b.Label = "b.jsonl"
	d := Diff(a, b)
	if d.A != "a.jsonl" || d.B != "b.jsonl" {
		t.Fatalf("labels = %q, %q", d.A, d.B)
	}
	var corner *PhaseDelta
	for i := range d.Phases {
		if d.Phases[i].Name == "corner:forward/nominal" {
			corner = &d.Phases[i]
		}
	}
	if corner == nil || corner.P50Ratio != 2 {
		t.Fatalf("corner delta = %+v, want p50 ratio 2", corner)
	}
	if d.Convergence.ASessions != 1 || d.Convergence.BSessions != 1 {
		t.Fatalf("convergence delta = %+v", d.Convergence)
	}
	if d.APlanHitRate != 1 || d.BPlanHitRate != 1 {
		t.Fatalf("plan hit rates = %g, %g", d.APlanHitRate, d.BPlanHitRate)
	}
}
