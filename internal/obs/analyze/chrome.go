package analyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"lsopc/internal/obs"
)

// Chrome Trace Event export: converts a JSONL trace into the Catapult
// trace-event JSON format, loadable by Perfetto (ui.perfetto.dev) and
// chrome://tracing, giving runs a zoomable wall-clock timeline — one
// track per session / tile sub-run, spans nested by duration.
//
// Mapping:
//
//   - span, iteration, corner, level_switch, tile_done and stitch_pass
//     events (the kinds carrying DurNS) become "X" complete slices on
//     their run's track; the sink stamps TimeNS at emission, i.e. at
//     the end of the operation, so a slice starts at TimeNS−DurNS.
//   - tile_done slices land on the tile sub-run's "<job>.t<n>" track —
//     one timeline row per tile worker lane — while stitch_pass stays
//     on the parent job's track.
//   - health, cancelled and checkpoint events become "i" instant marks.
//   - plan_cache, pool and progress events are omitted (tens of
//     thousands of sub-microsecond records that swamp the timeline);
//     WriteChromeTrace reports how many were skipped.
//
// Timestamps are rebased to the trace's first event: Chrome trace ts is
// float64 microseconds, and raw unix nanos would lose precision there.

// chromeEvent is one Catapult trace record (fields in spec order).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope ("t" = thread)
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromePID is the single synthetic process every track lives under.
const chromePID = 1

// safeArg keeps non-finite floats JSON-encodable, mirroring the trace
// schema's string convention.
func safeArg(v float64) any {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Sprint(v)
	}
	return v
}

// WriteChromeTrace reads a JSONL event stream and writes the Chrome
// trace JSON to w, returning the number of events skipped as
// timeline-irrelevant (plan_cache/pool/progress and unknown kinds).
func WriteChromeTrace(w io.Writer, in io.Reader) (skipped int, err error) {
	var events []obs.Event
	var baseNS int64
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return 0, fmt.Errorf("line %d: invalid JSON: %v", line, err)
		}
		if e.Type == "" {
			return 0, fmt.Errorf("line %d: event has no type", line)
		}
		if e.TimeNS != 0 && (baseNS == 0 || e.TimeNS < baseNS) {
			baseNS = e.TimeNS
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if len(events) == 0 {
		return 0, fmt.Errorf("empty trace: no events to export")
	}

	// Track (= Chrome thread) ids in first-appearance order, which is
	// deterministic for a given input file.
	tids := map[string]int{}
	var trackNames []string
	tid := func(track string) int {
		if id, ok := tids[track]; ok {
			return id
		}
		id := len(tids) + 1
		tids[track] = id
		trackNames = append(trackNames, track)
		return id
	}

	var out []chromeEvent
	ts := func(ns int64) float64 { return float64(ns-baseNS) / 1e3 }
	slice := func(track string, e obs.Event, name string, args map[string]any) {
		start := e.TimeNS - e.DurNS
		if start < baseNS {
			start = baseNS
		}
		out = append(out, chromeEvent{
			Name: name, Ph: "X", TS: ts(start), Dur: float64(e.DurNS) / 1e3,
			PID: chromePID, TID: tid(track), Cat: e.Type, Args: args,
		})
	}
	instant := func(track string, e obs.Event, name string, args map[string]any) {
		out = append(out, chromeEvent{
			Name: name, Ph: "i", TS: ts(e.TimeNS),
			PID: chromePID, TID: tid(track), Cat: e.Type, S: "t", Args: args,
		})
	}
	track := func(e obs.Event) string {
		if e.Trace == "" {
			return "runtime"
		}
		return e.Trace
	}

	for _, e := range events {
		switch e.Type {
		case obs.EventSpan:
			slice(track(e), e, e.Name, map[string]any{"engine": e.Engine})
		case obs.EventIteration:
			slice(track(e), e, fmt.Sprintf("iter %d", e.Iter), map[string]any{
				"iter": e.Iter, "cost": safeArg(e.Cost), "grad_norm": safeArg(e.GradNorm),
			})
		case obs.EventCorner:
			slice(track(e), e, e.Name+"/"+e.Corner, map[string]any{"cost": safeArg(e.Cost)})
		case obs.EventLevelSwitch:
			slice(track(e), e, fmt.Sprintf("level_switch %d→%d", e.OldN, e.N), map[string]any{
				"iter": e.Iter, "old_n": e.OldN, "n": e.N,
			})
		case obs.EventTileDone:
			// One lane per tile: the slice lands on the tile sub-run's
			// track next to that tile's own iteration slices.
			slice(childTrack(e), e, fmt.Sprintf("tile %d pass %d", e.Tile, e.Pass), map[string]any{
				"tile": e.Tile, "pass": e.Pass, "iters": e.Iter, "converged": e.Hit,
			})
		case obs.EventStitchPass:
			slice(track(e), e, fmt.Sprintf("stitch pass %d", e.Pass), map[string]any{
				"pass": e.Pass, "tiles": e.N, "seam": safeArg(e.Seam), "converged": e.Hit,
			})
		case obs.EventTileStart:
			instant(childTrack(e), e, fmt.Sprintf("tile %d start (pass %d)", e.Tile, e.Pass), nil)
		case obs.EventHealth:
			instant(track(e), e, "health: "+e.Msg, map[string]any{
				"iter": e.Iter, "cost": safeArg(e.Cost),
			})
		case obs.EventCancelled:
			instant(track(e), e, "cancelled", map[string]any{"iter": e.Iter, "cause": e.Msg})
		case obs.EventCheckpoint:
			instant(track(e), e, "checkpoint", map[string]any{"iter": e.Iter})
		default:
			skipped++
		}
	}

	// Metadata names the process and one thread per track so Perfetto
	// labels the lanes; emitted first, in tid order.
	meta := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: chromePID,
		Args: map[string]any{"name": "lsopc trace"},
	}}
	for i, name := range trackNames {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: i + 1,
			Args: map[string]any{"name": name},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return skipped, enc.Encode(chromeTrace{
		TraceEvents:     append(meta, out...),
		DisplayTimeUnit: "ms",
	})
}

// childTrack places a parent-emitted tile event on the tile sub-run's
// "<job>.t<n>" track (the tiling layer's trace-id convention).
func childTrack(e obs.Event) string {
	if e.Trace == "" {
		return "runtime"
	}
	return fmt.Sprintf("%s.t%d", e.Trace, e.Tile)
}
