package analyze

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteChromeTraceGolden pins the exporter output byte-for-byte
// against a checked-in fixture: a two-session trace (one monolithic run
// with a NaN-cost iteration, health, checkpoint and cancellation; one
// tiled job with a tile sub-run) plus a runtime-scoped plan_cache line
// that must be skipped. Regenerate with
//
//	go run ./cmd/tracestats -chrome internal/obs/analyze/testdata/chrome_fixture.golden.json \
//	    internal/obs/analyze/testdata/chrome_fixture.jsonl
//
// after an intentional format change.
func TestWriteChromeTraceGolden(t *testing.T) {
	in, err := os.Open(filepath.Join("testdata", "chrome_fixture.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	var out bytes.Buffer
	skipped, err := WriteChromeTrace(&out, in)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1 (the plan_cache line)", skipped)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "chrome_fixture.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), golden) {
		t.Fatalf("output differs from golden (regenerate if intentional)\n--- got ---\n%s\n--- want ---\n%s",
			out.Bytes(), golden)
	}
}

// TestWriteChromeTraceStructure checks the invariants Perfetto cares
// about without pinning bytes: valid JSON, microsecond timestamps
// rebased so the earliest timeline event sits at ts 0, metadata naming
// every thread, and only finite numbers in args.
func TestWriteChromeTraceStructure(t *testing.T) {
	in, err := os.Open(filepath.Join("testdata", "chrome_fixture.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	var out bytes.Buffer
	if _, err := WriteChromeTrace(&out, in); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(out.Bytes(), &trace); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}
	minTS := math.Inf(1)
	threads := map[int]string{}
	for _, e := range trace.TraceEvents {
		if e.Ph == "M" {
			if e.Name == "thread_name" {
				threads[e.TID] = e.Args["name"].(string)
			}
			continue
		}
		if e.TS < minTS {
			minTS = e.TS
		}
		if e.TS < 0 || e.Dur < 0 {
			t.Fatalf("negative ts/dur on %q: ts=%v dur=%v", e.Name, e.TS, e.Dur)
		}
		if _, ok := threads[e.TID]; !ok {
			t.Fatalf("event %q on unnamed tid %d", e.Name, e.TID)
		}
		for k, v := range e.Args {
			if f, ok := v.(float64); ok && (math.IsNaN(f) || math.IsInf(f, 0)) {
				t.Fatalf("non-finite arg %s=%v on %q survived encoding", k, v, e.Name)
			}
		}
	}
	// Timestamps are rebased to the trace's first event (here the
	// skipped plan_cache line), so the earliest timeline slice sits a
	// few µs after 0 — not at absolute wall-clock nanoseconds.
	if minTS > 1000 {
		t.Fatalf("earliest timeline event at ts %v µs — rebase to trace start missing", minTS)
	}
	for tid, name := range threads {
		if name == "" {
			t.Fatalf("tid %d has empty thread name", tid)
		}
	}
	if want := "s2.t1"; !strings.Contains(out.String(), want) {
		t.Fatalf("tile sub-run track %q missing from output", want)
	}
}

// TestWriteChromeTraceErrors rejects malformed input rather than
// emitting a broken timeline.
func TestWriteChromeTraceErrors(t *testing.T) {
	cases := map[string]string{
		"invalid JSON": "{not json}\n",
		"missing type": `{"seq":1,"iter":0}` + "\n",
	}
	for name, in := range cases {
		var out bytes.Buffer
		if _, err := WriteChromeTrace(&out, strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
