package analyze

import "sort"

// PhaseDelta compares one phase across two runs. Ratio fields are B/A
// (>1 = slower in B); zero-count sides leave the ratio at 0.
type PhaseDelta struct {
	Name     string  `json:"name"`
	ACount   int     `json:"a_count"`
	BCount   int     `json:"b_count"`
	AP50NS   float64 `json:"a_p50_ns"`
	BP50NS   float64 `json:"b_p50_ns"`
	P50Ratio float64 `json:"p50_ratio"`
	ATotalNS int64   `json:"a_total_ns"`
	BTotalNS int64   `json:"b_total_ns"`
	// OnlyA/OnlyB mark phases present in a single run.
	OnlyA bool `json:"only_a,omitempty"`
	OnlyB bool `json:"only_b,omitempty"`
}

// ConvergenceDelta compares the aggregate convergence of two runs:
// sessions are matched by sorted id order where possible, but the
// summary aggregates across all sessions so differently-labelled runs
// still compare.
type ConvergenceDelta struct {
	ASessions      int     `json:"a_sessions"`
	BSessions      int     `json:"b_sessions"`
	AIterations    int     `json:"a_iterations"`
	BIterations    int     `json:"b_iterations"`
	AMeanFinalCost float64 `json:"a_mean_final_cost"`
	BMeanFinalCost float64 `json:"b_mean_final_cost"`
	FinalCostRatio float64 `json:"final_cost_ratio"` // B/A
	AUnhealthy     int     `json:"a_unhealthy"`
	BUnhealthy     int     `json:"b_unhealthy"`
	AStalledRuns   int     `json:"a_stalled_runs"`
	BStalledRuns   int     `json:"b_stalled_runs"`
	ANonFiniteRuns int     `json:"a_non_finite_runs"`
	BNonFiniteRuns int     `json:"b_non_finite_runs"`
}

// RunDiff is the structured comparison of two parsed traces.
type RunDiff struct {
	A            string           `json:"a,omitempty"` // labels
	B            string           `json:"b,omitempty"`
	WallRatio    float64          `json:"wall_ratio"` // B/A
	Phases       []PhaseDelta     `json:"phases"`
	Convergence  ConvergenceDelta `json:"convergence"`
	APlanHitRate float64          `json:"a_plan_cache_hit_rate"`
	BPlanHitRate float64          `json:"b_plan_cache_hit_rate"`
	APoolHitRate float64          `json:"a_pool_hit_rate"`
	BPoolHitRate float64          `json:"b_pool_hit_rate"`
}

// Diff compares two parsed runs phase-by-phase and on aggregate
// convergence.
func Diff(a, b *Run) *RunDiff {
	d := &RunDiff{
		A:            a.Label,
		B:            b.Label,
		APlanHitRate: a.PlanCache.Rate(),
		BPlanHitRate: b.PlanCache.Rate(),
		APoolHitRate: a.Pool.Rate(),
		BPoolHitRate: b.Pool.Rate(),
	}
	if a.WallNS > 0 {
		d.WallRatio = float64(b.WallNS) / float64(a.WallNS)
	}

	names := map[string]bool{}
	for _, p := range a.Phases {
		names[p.Name] = true
	}
	for _, p := range b.Phases {
		names[p.Name] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	for _, n := range ordered {
		pa, pb := a.Phase(n), b.Phase(n)
		pd := PhaseDelta{Name: n}
		if pa != nil {
			pd.ACount, pd.AP50NS, pd.ATotalNS = pa.Count, pa.P50NS, pa.TotalNS
		}
		if pb != nil {
			pd.BCount, pd.BP50NS, pd.BTotalNS = pb.Count, pb.P50NS, pb.TotalNS
		}
		pd.OnlyA = pb == nil
		pd.OnlyB = pa == nil
		if pa != nil && pb != nil && pa.P50NS > 0 {
			pd.P50Ratio = pb.P50NS / pa.P50NS
		}
		d.Phases = append(d.Phases, pd)
	}

	d.Convergence = convergenceDelta(a, b)
	return d
}

func convergenceDelta(a, b *Run) ConvergenceDelta {
	cd := ConvergenceDelta{AUnhealthy: len(a.Health), BUnhealthy: len(b.Health)}
	aggregate := func(r *Run, sessions, iters, stalled, nonFinite *int, meanFinal *float64) {
		var sum float64
		var withIters int
		for _, s := range r.Sessions {
			if len(s.Iterations) == 0 {
				continue
			}
			*sessions++
			withIters++
			*iters += s.Convergence.Iterations
			sum += s.Convergence.FinalCost
			if s.Convergence.Stalled {
				*stalled++
			}
			if s.Convergence.NonFinite {
				*nonFinite++
			}
		}
		if withIters > 0 {
			*meanFinal = sum / float64(withIters)
		}
	}
	aggregate(a, &cd.ASessions, &cd.AIterations, &cd.AStalledRuns, &cd.ANonFiniteRuns, &cd.AMeanFinalCost)
	aggregate(b, &cd.BSessions, &cd.BIterations, &cd.BStalledRuns, &cd.BNonFiniteRuns, &cd.BMeanFinalCost)
	if cd.AMeanFinalCost != 0 {
		cd.FinalCostRatio = cd.BMeanFinalCost / cd.AMeanFinalCost
	}
	return cd
}
