package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Bus is a fan-out Sink that tees an event stream to dynamically
// attached subscribers. It is the live half of the trace pipeline:
// compose it with the persistent JSONL sink via TeeSink and any number
// of consumers (SSE streams, the run registry, tests) can watch the run
// without touching the producers.
//
// Cost contract, in line with the rest of the package:
//
//   - With zero subscribers, Emit is one atomic pointer load and a nil
//     check — no allocation, no time.Now, no locked section. The
//     no-subscriber path is benchmark-gated (BenchmarkBusEmitNoSubscribers)
//     and alloc-tested like the disabled-sink path.
//   - With subscribers, Emit never blocks the producer. Each subscriber
//     owns a bounded ring buffer; when a slow consumer falls more than a
//     ring behind, the oldest events are overwritten and counted — per
//     subscriber (Subscription.Drops, surfaced in the metrics registry
//     as obs.bus.sub<id>.dropped) and in aggregate (obs.bus.dropped).
//
// A Bus is safe for concurrent use by any number of emitters and
// subscribers.
type Bus struct {
	reg *Registry

	// subs is a copy-on-write snapshot of the subscriber set. Emit loads
	// it once; Subscribe/Close swap new slices in under mu. nil (not an
	// empty slice) means "no subscribers", keeping the fast path to one
	// atomic load.
	subs   atomic.Pointer[[]*Subscription]
	mu     sync.Mutex
	nextID atomic.Int64
	seq    atomic.Int64

	events    *Counter // obs.bus.events: events fanned out (≥ 1 subscriber)
	dropped   *Counter // obs.bus.dropped: ring overwrites across all subscribers
	subsGauge *Gauge   // obs.bus.subscribers: currently attached
}

// NewBus returns a bus recording its gauges and drop counters into reg
// (nil means the Default registry).
func NewBus(reg *Registry) *Bus {
	if reg == nil {
		reg = Default
	}
	return &Bus{
		reg:       reg,
		events:    reg.Counter("obs.bus.events"),
		dropped:   reg.Counter("obs.bus.dropped"),
		subsGauge: reg.Gauge("obs.bus.subscribers"),
	}
}

// Emit implements Sink. With no subscribers it returns immediately
// (zero allocations); otherwise it stamps wall time and a bus sequence
// number (when the upstream sink has not already) and offers the event
// to every subscriber's ring without ever blocking.
func (b *Bus) Emit(e Event) {
	subs := b.subs.Load()
	if subs == nil {
		return
	}
	if e.TimeNS == 0 {
		e.TimeNS = time.Now().UnixNano()
	}
	if e.Seq == 0 {
		e.Seq = b.seq.Add(1)
	}
	b.events.Inc()
	for _, s := range *subs {
		s.push(e)
	}
}

// Unregister removes the bus's aggregate metrics (obs.bus.events,
// obs.bus.dropped, obs.bus.subscribers) from its registry. Call it when
// retiring a bus in a long-lived process — a live-server shutdown —
// so repeated serve cycles don't accumulate stale entries. Attached
// subscribers keep working; only the registry export stops.
func (b *Bus) Unregister() {
	b.reg.Remove("obs.bus.events")
	b.reg.Remove("obs.bus.dropped")
	b.reg.Remove("obs.bus.subscribers")
}

// Subscribers returns the number of currently attached subscriptions.
func (b *Bus) Subscribers() int {
	if subs := b.subs.Load(); subs != nil {
		return len(*subs)
	}
	return 0
}

// Dropped returns the total events dropped across all subscribers since
// the bus was built (cumulative; closed subscribers keep counting).
func (b *Bus) Dropped() int64 { return b.dropped.Value() }

// Subscription is one consumer's bounded view of the bus. A single
// goroutine should drain it (Next/TryNext); push is concurrency-safe
// against that consumer. Close detaches it from the bus.
type Subscription struct {
	bus   *Bus
	id    int64
	types map[string]struct{} // nil = all event types

	mu      sync.Mutex
	ring    []Event
	head, n int
	closed  bool
	notify  chan struct{}

	drops    atomic.Int64
	dropCntr *Counter
}

// dropCounterName is the per-subscriber registry key; removed again on
// Close so long-lived processes with churning SSE clients keep a
// bounded registry.
func dropCounterName(id int64) string { return fmt.Sprintf("obs.bus.sub%d.dropped", id) }

// Subscribe attaches a new subscriber with a ring of the given capacity
// (≤ 0 selects 256). With types given, only those event kinds enter the
// ring — the filter runs producer-side, so uninteresting events cannot
// crowd out interesting ones.
func (b *Bus) Subscribe(buf int, types ...string) *Subscription {
	if buf <= 0 {
		buf = 256
	}
	s := &Subscription{
		bus:    b,
		id:     b.nextID.Add(1),
		ring:   make([]Event, buf),
		notify: make(chan struct{}, 1),
	}
	if len(types) > 0 {
		s.types = make(map[string]struct{}, len(types))
		for _, t := range types {
			if t != "" {
				s.types[t] = struct{}{}
			}
		}
	}
	s.dropCntr = b.reg.Counter(dropCounterName(s.id))
	b.mu.Lock()
	var next []*Subscription
	if old := b.subs.Load(); old != nil {
		next = append(next, *old...)
	}
	next = append(next, s)
	b.subs.Store(&next)
	b.mu.Unlock()
	b.subsGauge.Add(1)
	return s
}

// ID returns the subscription's bus-unique id.
func (s *Subscription) ID() int64 { return s.id }

// Drops returns how many events this subscription has lost to ring
// overwrites so far.
func (s *Subscription) Drops() int64 { return s.drops.Load() }

// push offers one event to the ring, overwriting the oldest entry (and
// counting the drop) when the consumer has fallen a full ring behind.
// It never blocks: the notify channel send is non-blocking and the
// locked section is a few index updates.
func (s *Subscription) push(e Event) {
	if s.types != nil {
		if _, ok := s.types[e.Type]; !ok {
			return
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.ring) {
		s.head = (s.head + 1) % len(s.ring)
		s.n--
		s.drops.Add(1)
		s.dropCntr.Inc()
		s.bus.dropped.Inc()
	}
	s.ring[(s.head+s.n)%len(s.ring)] = e
	s.n++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next pops the oldest buffered event, blocking until one arrives, the
// context is done, or the subscription is closed. The second return is
// false exactly when no event is delivered (closed or ctx done).
func (s *Subscription) Next(ctx context.Context) (Event, bool) {
	for {
		if e, ok := s.TryNext(); ok {
			return e, true
		}
		s.mu.Lock()
		closed := s.closed && s.n == 0
		s.mu.Unlock()
		if closed {
			return Event{}, false
		}
		select {
		case <-s.notify:
		case <-ctx.Done():
			return Event{}, false
		}
	}
}

// TryNext pops the oldest buffered event without blocking.
func (s *Subscription) TryNext() (Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Event{}, false
	}
	e := s.ring[s.head]
	s.ring[s.head] = Event{}
	s.head = (s.head + 1) % len(s.ring)
	s.n--
	return e, true
}

// Len returns the number of buffered events awaiting the consumer.
func (s *Subscription) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Close detaches the subscription from the bus. Buffered events remain
// drainable via Next/TryNext; after the buffer empties, Next returns
// false. Idempotent, and safe concurrently with emitters.
func (s *Subscription) Close() {
	b := s.bus
	b.mu.Lock()
	if old := b.subs.Load(); old != nil {
		next := make([]*Subscription, 0, len(*old))
		for _, o := range *old {
			if o != s {
				next = append(next, o)
			}
		}
		if len(next) == 0 {
			b.subs.Store(nil)
		} else {
			b.subs.Store(&next)
		}
	}
	b.mu.Unlock()

	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if already {
		return
	}
	b.subsGauge.Add(-1)
	b.reg.Remove(dropCounterName(s.id))
	// Wake a blocked Next so it can observe the close.
	select {
	case s.notify <- struct{}{}:
	default:
	}
}
