package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBusDeliversInOrder(t *testing.T) {
	b := NewBus(NewRegistry())
	sub := b.Subscribe(16)
	defer sub.Close()
	for i := 1; i <= 5; i++ {
		b.Emit(Event{Type: EventIteration, Trace: "s1", Iter: i})
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for i := 1; i <= 5; i++ {
		e, ok := sub.Next(ctx)
		if !ok {
			t.Fatalf("event %d: stream ended early", i)
		}
		if e.Iter != i {
			t.Fatalf("event %d: got iter %d", i, e.Iter)
		}
		if e.TimeNS == 0 || e.Seq == 0 {
			t.Fatalf("event %d not stamped: time_ns=%d seq=%d", i, e.TimeNS, e.Seq)
		}
	}
	if d := sub.Drops(); d != 0 {
		t.Fatalf("drops = %d, want 0", d)
	}
}

func TestBusTypeFilter(t *testing.T) {
	b := NewBus(NewRegistry())
	sub := b.Subscribe(16, EventHealth, EventCancelled)
	defer sub.Close()
	b.Emit(Event{Type: EventIteration, Trace: "s1", Iter: 1})
	b.Emit(Event{Type: EventHealth, Trace: "s1", Msg: "cost_nan"})
	b.Emit(Event{Type: EventPool, Name: "field.lease"})
	b.Emit(Event{Type: EventCancelled, Trace: "s1", Msg: "deadline"})

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if e, ok := sub.Next(ctx); !ok || e.Type != EventHealth {
		t.Fatalf("first = %v %v, want health", e.Type, ok)
	}
	if e, ok := sub.Next(ctx); !ok || e.Type != EventCancelled {
		t.Fatalf("second = %v %v, want cancelled", e.Type, ok)
	}
	if n := sub.Len(); n != 0 {
		t.Fatalf("len = %d after draining", n)
	}
}

// TestBusSlowSubscriberDrops pins the backpressure contract: a consumer
// that never drains loses exactly the oldest events, the counters (the
// subscription's, the bus aggregate, and the registry metric) agree,
// and the retained window is the most recent buf events.
func TestBusSlowSubscriberDrops(t *testing.T) {
	reg := NewRegistry()
	b := NewBus(reg)
	const buf, emitted = 8, 50
	sub := b.Subscribe(buf)
	defer sub.Close()
	for i := 0; i < emitted; i++ {
		b.Emit(Event{Type: EventIteration, Trace: "s1", Iter: i})
	}
	wantDrops := int64(emitted - buf)
	if d := sub.Drops(); d != wantDrops {
		t.Fatalf("sub drops = %d, want %d", d, wantDrops)
	}
	if d := b.Dropped(); d != wantDrops {
		t.Fatalf("bus dropped = %d, want %d", d, wantDrops)
	}
	name := fmt.Sprintf("obs.bus.sub%d.dropped", sub.ID())
	if got := reg.Snapshot()[name]; got != float64(wantDrops) {
		t.Fatalf("registry %s = %v, want %d", name, got, wantDrops)
	}
	// Oldest dropped: the surviving window is the last buf events.
	for i := emitted - buf; i < emitted; i++ {
		e, ok := sub.TryNext()
		if !ok || e.Iter != i {
			t.Fatalf("surviving window: got (%d,%v), want iter %d", e.Iter, ok, i)
		}
	}
	if _, ok := sub.TryNext(); ok {
		t.Fatal("ring should be empty")
	}

	// Closing unregisters the per-subscriber counter.
	sub.Close()
	if _, ok := reg.Snapshot()[name]; ok {
		t.Fatalf("%s still in registry after Close", name)
	}
}

func TestBusSubscribeUnsubscribe(t *testing.T) {
	reg := NewRegistry()
	b := NewBus(reg)
	s1 := b.Subscribe(4)
	s2 := b.Subscribe(4)
	if n := b.Subscribers(); n != 2 {
		t.Fatalf("subscribers = %d, want 2", n)
	}
	if g := reg.Snapshot()["obs.bus.subscribers"]; g != 2 {
		t.Fatalf("gauge = %v, want 2", g)
	}
	b.Emit(Event{Type: EventSpan, Trace: "s1", Name: "evaluate"})
	s1.Close()
	s1.Close() // idempotent
	b.Emit(Event{Type: EventSpan, Trace: "s1", Name: "evaluate"})
	if n := s1.Len(); n != 1 {
		t.Fatalf("closed sub buffered %d, want the 1 pre-close event", n)
	}
	if n := s2.Len(); n != 2 {
		t.Fatalf("live sub buffered %d, want 2", n)
	}
	s2.Close()
	if n := b.Subscribers(); n != 0 {
		t.Fatalf("subscribers = %d after closing all", n)
	}
	if g := reg.Snapshot()["obs.bus.subscribers"]; g != 0 {
		t.Fatalf("gauge = %v after closing all", g)
	}
}

func TestBusNextUnblocksOnClose(t *testing.T) {
	b := NewBus(NewRegistry())
	sub := b.Subscribe(4)
	done := make(chan bool, 1)
	go func() {
		_, ok := sub.Next(context.Background())
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	sub.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned an event after Close on an empty ring")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not unblock on Close")
	}
}

func TestBusNextUnblocksOnContextCancel(t *testing.T) {
	b := NewBus(NewRegistry())
	sub := b.Subscribe(4)
	defer sub.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := sub.Next(ctx)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned an event after ctx cancel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not unblock on ctx cancel")
	}
}

// TestBusConcurrentEmittersAndSubscribers is the -race stress: several
// emitters fan events at the bus while subscribers churn — one drains
// live, one stalls (drop pressure), others subscribe/unsubscribe
// mid-stream. Correctness: no event is lost without being counted.
func TestBusConcurrentEmittersAndSubscribers(t *testing.T) {
	b := NewBus(NewRegistry())
	const emitters, perEmitter = 4, 500

	drainer := b.Subscribe(64)
	stalled := b.Subscribe(8) // never drained until the end

	var drained int64
	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, ok := drainer.Next(ctx); !ok {
				return
			}
			drained++
		}
	}()

	// Churning subscribers: attach, read a few, detach.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s := b.Subscribe(16)
			for j := 0; j < 5; j++ {
				s.TryNext()
			}
			s.Close()
		}
	}()

	var ewg sync.WaitGroup
	for w := 0; w < emitters; w++ {
		ewg.Add(1)
		go func(w int) {
			defer ewg.Done()
			for i := 0; i < perEmitter; i++ {
				b.Emit(Event{Type: EventIteration, Trace: "s1", Iter: w*perEmitter + i})
			}
		}(w)
	}
	ewg.Wait()
	drainer.Close()
	wg.Wait()

	total := int64(emitters * perEmitter)
	// The drainer's conservation law: delivered + dropped + still
	// buffered = total emitted while subscribed.
	left := int64(0)
	for {
		if _, ok := drainer.TryNext(); !ok {
			break
		}
		left++
	}
	if got := drained + left + drainer.Drops(); got != total {
		t.Fatalf("drainer conservation: drained %d + left %d + dropped %d = %d, want %d",
			drained, left, drainer.Drops(), got, total)
	}
	// The stalled subscriber kept exactly its ring capacity and counted
	// the rest as drops.
	if got := int64(stalled.Len()) + stalled.Drops(); got != total {
		t.Fatalf("stalled conservation: len %d + drops %d = %d, want %d",
			stalled.Len(), stalled.Drops(), got, total)
	}
	if stalled.Len() != 8 {
		t.Fatalf("stalled ring holds %d, want its capacity 8", stalled.Len())
	}
	stalled.Close()
}

// TestBusEmitNoSubscribersDoesNotAllocate pins the inert fast path the
// same way the disabled-sink alloc tests do: with no subscribers an
// Emit must not touch the heap.
func TestBusEmitNoSubscribersDoesNotAllocate(t *testing.T) {
	b := NewBus(NewRegistry())
	e := Event{Type: EventIteration, Trace: "s1", Iter: 1, Cost: 0.5}
	if allocs := testing.AllocsPerRun(1000, func() { b.Emit(e) }); allocs != 0 {
		t.Fatalf("Emit with no subscribers allocated %.1f times per call, want 0", allocs)
	}
	// And after the last subscriber detaches, the fast path is restored.
	sub := b.Subscribe(4)
	b.Emit(e)
	sub.Close()
	if allocs := testing.AllocsPerRun(1000, func() { b.Emit(e) }); allocs != 0 {
		t.Fatalf("Emit after last unsubscribe allocated %.1f times per call, want 0", allocs)
	}
}

// BenchmarkBusEmitNoSubscribers gates the zero-subscriber emit path:
// run with -benchmem, allocs/op must stay 0 (the acceptance criterion
// of the live-telemetry issue).
func BenchmarkBusEmitNoSubscribers(b *testing.B) {
	bus := NewBus(NewRegistry())
	e := Event{Type: EventIteration, Trace: "s1", Iter: 1, Cost: 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Emit(e)
	}
}

// BenchmarkBusEmitOneSubscriber measures the attached-subscriber cost
// (ring push + notify; the subscriber never drains, so this includes
// the drop-oldest path — the worst case the hot loop can see).
func BenchmarkBusEmitOneSubscriber(b *testing.B) {
	bus := NewBus(NewRegistry())
	sub := bus.Subscribe(256)
	defer sub.Close()
	e := Event{Type: EventIteration, Trace: "s1", Iter: 1, Cost: 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Emit(e)
	}
}
