package obs

import (
	"sync/atomic"
	"time"
)

// paddedInt64 keeps each worker's busy accumulator on its own cache
// line so concurrent workers don't false-share.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// WorkerBusy accumulates per-worker busy time for an engine (and, via
// slot offsets, for the sub-engines of an Engine.Split partition).
// Worker k of a (sub-)engine adds the wall time of each leaf loop it
// executes to its slot; utilization over a measured interval is then
// total busy time divided by wall time × workers.
type WorkerBusy struct {
	slots []paddedInt64
}

// NewWorkerBusy sizes the accumulator for n workers (the root engine's
// worker count; Split sub-engines map onto disjoint slot ranges).
func NewWorkerBusy(n int) *WorkerBusy {
	if n < 1 {
		n = 1
	}
	return &WorkerBusy{slots: make([]paddedInt64, n)}
}

// Workers returns the slot count.
func (w *WorkerBusy) Workers() int { return len(w.slots) }

// Add records d of busy time for the given worker slot. Out-of-range
// slots clamp to the last slot, so oversized Split partitions degrade
// to coarse attribution instead of panicking.
func (w *WorkerBusy) Add(slot int, d time.Duration) {
	if slot < 0 {
		slot = 0
	}
	if slot >= len(w.slots) {
		slot = len(w.slots) - 1
	}
	w.slots[slot].v.Add(int64(d))
}

// PerWorker returns each slot's accumulated busy time.
func (w *WorkerBusy) PerWorker() []time.Duration {
	out := make([]time.Duration, len(w.slots))
	for i := range w.slots {
		out[i] = time.Duration(w.slots[i].v.Load())
	}
	return out
}

// Total returns the summed busy time across all slots.
func (w *WorkerBusy) Total() time.Duration {
	var t int64
	for i := range w.slots {
		t += w.slots[i].v.Load()
	}
	return time.Duration(t)
}

// Reset zeroes every slot (between benchmark modes).
func (w *WorkerBusy) Reset() {
	for i := range w.slots {
		w.slots[i].v.Store(0)
	}
}

// Utilization returns Total / (wall × workers): the fraction of the
// measured interval the workers spent in leaf compute loops.
func (w *WorkerBusy) Utilization(wall time.Duration) float64 {
	return w.UtilizationOver(wall, len(w.slots))
}

// UtilizationOver is Utilization normalized to an explicit logical
// worker count — use when the accumulator is sized for the widest
// fan-out but a particular measured interval only ran a subset (or an
// oversubscribed Split) of the slots.
func (w *WorkerBusy) UtilizationOver(wall time.Duration, workers int) float64 {
	if wall <= 0 || workers <= 0 {
		return 0
	}
	return float64(w.Total()) / (float64(wall) * float64(workers))
}
