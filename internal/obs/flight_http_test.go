package obs

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// TestHTTPRunsFilters pins the /runs query surface: ?phase= keeps only
// matching runs, ?limit= caps the (stable running-first) ordering, and
// malformed values are rejected rather than ignored.
func TestHTTPRunsFilters(t *testing.T) {
	h, rr, _ := liveHandler(t)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// s1 finished, s2 still running, s3 cancelled.
	rr.Emit(Event{Type: EventIteration, Trace: "s1", Iter: 0, Cost: 2})
	rr.Emit(Event{Type: EventSpan, Trace: "s1", Name: "optimize.levelset", DurNS: 10})
	rr.Emit(Event{Type: EventIteration, Trace: "s2", Iter: 0, Cost: 3})
	rr.Emit(Event{Type: EventIteration, Trace: "s3", Iter: 0, Cost: 4})
	rr.Emit(Event{Type: EventCancelled, Trace: "s3", Iter: 0, Msg: "context canceled"})

	get := func(query string) []RunState {
		t.Helper()
		var list struct{ Runs []RunState }
		getJSON(t, srv.URL+"/runs"+query, &list)
		return list.Runs
	}

	if runs := get(""); len(runs) != 3 || runs[0].ID != "s2" {
		t.Fatalf("/runs = %+v, want 3 runs with the running one first", runs)
	}
	if runs := get("?phase=running"); len(runs) != 1 || runs[0].ID != "s2" {
		t.Fatalf("?phase=running = %+v", runs)
	}
	if runs := get("?phase=done"); len(runs) != 1 || runs[0].ID != "s1" {
		t.Fatalf("?phase=done = %+v", runs)
	}
	if runs := get("?phase=cancelled"); len(runs) != 1 || runs[0].ID != "s3" {
		t.Fatalf("?phase=cancelled = %+v", runs)
	}
	if runs := get("?limit=2"); len(runs) != 2 || runs[0].ID != "s2" {
		t.Fatalf("?limit=2 = %+v", runs)
	}
	if runs := get("?phase=done&limit=0"); len(runs) != 0 {
		t.Fatalf("?limit=0 = %+v, want empty", runs)
	}

	for _, bad := range []string{"?phase=exploded", "?limit=-1", "?limit=abc"} {
		resp, err := http.Get(srv.URL + "/runs" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /runs%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// stubDumper records Capture calls for the dump-endpoint test.
type stubDumper struct {
	runID, reason string
	err           error
}

func (d *stubDumper) Capture(runID, reason string) (string, error) {
	d.runID, d.reason = runID, reason
	if d.err != nil {
		return "", d.err
	}
	return "/tmp/bundles/" + runID, nil
}

// TestHTTPDumpEndpoint pins POST /runs/{id}/dump: 503 without a
// recorder, 404 for unknown runs, reason pass-through, and error
// propagation from the capture engine.
func TestHTTPDumpEndpoint(t *testing.T) {
	reg := NewRegistry()
	rr := NewRunRegistry(reg)
	dumper := &stubDumper{}
	srv := httptest.NewServer(Handler(reg, rr, nil, dumper))
	defer srv.Close()
	rr.Emit(Event{Type: EventIteration, Trace: "s1", Iter: 0, Cost: 2})

	post := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, body := post("/runs/s1/dump?reason=" + url.QueryEscape("operator poke"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dump: status %d body %s", resp.StatusCode, body)
	}
	if dumper.runID != "s1" || dumper.reason != "operator poke" {
		t.Fatalf("capture called with %q/%q", dumper.runID, dumper.reason)
	}
	if !strings.Contains(body, "/tmp/bundles/s1") {
		t.Fatalf("dump response %q missing bundle path", body)
	}

	if resp, _ := post("/runs/s1/dump"); resp.StatusCode != http.StatusOK || dumper.reason != "dump" {
		t.Fatalf("default reason: status %d reason %q", resp.StatusCode, dumper.reason)
	}
	if resp, _ := post("/runs/ghost/dump"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: status %d, want 404", resp.StatusCode)
	}
	dumper.err = errors.New("disk full")
	if resp, body := post("/runs/s1/dump"); resp.StatusCode != http.StatusInternalServerError || !strings.Contains(body, "disk full") {
		t.Fatalf("capture error: status %d body %q", resp.StatusCode, body)
	}

	// GET must not trigger a capture.
	resp2, err := http.Get(srv.URL + "/runs/s1/dump")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Fatal("GET on the dump endpoint succeeded")
	}

	// Without a dumper the endpoint is disabled, not missing.
	srv2 := httptest.NewServer(Handler(reg, rr, nil, nil))
	defer srv2.Close()
	resp3, err := http.Post(srv2.URL+"/runs/s1/dump", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("nil dumper: status %d, want 503", resp3.StatusCode)
	}
}

// TestServeLifecycleCleansRegistry pins the shutdown contract: Serve
// owns a runtime sampler whose gauges (and the bus's counters) must
// vanish from the registry on Shutdown, so repeated Serve/Shutdown
// cycles do not accumulate stale series.
func TestServeLifecycleCleansRegistry(t *testing.T) {
	reg := NewRegistry()
	has := func(name string) bool {
		_, ok := reg.Snapshot()[name]
		return ok
	}
	for cycle := 0; cycle < 2; cycle++ {
		bus := NewBus(reg)
		srv, err := Serve("127.0.0.1:0", reg, nil, bus, nil)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if !has("runtime.goroutines") {
			t.Fatalf("cycle %d: runtime sampler gauges missing while serving", cycle)
		}
		if !has("obs.bus.events") {
			t.Fatalf("cycle %d: bus counters missing while serving", cycle)
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("cycle %d close: %v", cycle, err)
		}
		for _, name := range []string{"runtime.goroutines", "runtime.heap_alloc", "obs.bus.events", "obs.bus.dropped", "obs.bus.subscribers"} {
			if has(name) {
				t.Fatalf("cycle %d: %s still registered after shutdown", cycle, name)
			}
		}
	}
}
