package obs

import "math"

// Health reason codes carried in the Msg field of EventHealth events and
// in Verdict.Reason.
const (
	// HealthNonFiniteCost: the iteration cost is NaN or ±Inf.
	HealthNonFiniteCost = "non_finite_cost"
	// HealthNonFiniteGrad: the gradient norm is NaN or ±Inf.
	HealthNonFiniteGrad = "non_finite_gradient"
	// HealthStall: StallWindow consecutive iterations moved the cost by
	// less than StallEpsilon (relative) or took a zero time step.
	HealthStall = "stall"
	// HealthDivergence: the cost exceeds DivergenceFactor × the minimum
	// cost seen over the sliding DivergenceWindow.
	HealthDivergence = "divergence"
)

// HealthPolicy configures the numerical-health watchdog that optimizer
// loops (core, pixelilt) run their per-iteration statistics through. A
// diverging or NaN-poisoned run otherwise burns its whole iteration
// budget silently; the watchdog turns that into a typed `health` trace
// event and, under AbortOnUnhealthy, an early stop.
type HealthPolicy struct {
	// CheckNonFinite flags NaN/Inf cost or gradient norm.
	CheckNonFinite bool
	// StallWindow is the number of consecutive low-progress iterations
	// (relative improvement below StallEpsilon, or a zero time step)
	// before a stall is flagged. 0 disables stall detection.
	StallWindow int
	// StallEpsilon is the relative per-iteration cost improvement below
	// which an iteration counts as stalled.
	StallEpsilon float64
	// DivergenceWindow is the sliding window (in iterations) whose
	// minimum cost the current cost is compared against. 0 disables
	// divergence detection.
	DivergenceWindow int
	// DivergenceFactor flags divergence when
	// cost > DivergenceFactor × min(cost over window).
	DivergenceFactor float64
	// AbortOnUnhealthy makes the watchdog request an early stop on the
	// first unhealthy verdict; disabled, it only emits health events.
	AbortOnUnhealthy bool
}

// DefaultHealthPolicy returns the standard watchdog configuration: all
// checks on, abort on the first unhealthy iteration.
func DefaultHealthPolicy() HealthPolicy {
	return HealthPolicy{
		CheckNonFinite:   true,
		StallWindow:      8,
		StallEpsilon:     1e-9,
		DivergenceWindow: 10,
		DivergenceFactor: 10,
		AbortOnUnhealthy: true,
	}
}

// Verdict is the watchdog's judgement of one iteration.
type Verdict struct {
	// Healthy is false when any enabled check tripped this iteration.
	Healthy bool
	// Reason is the health reason code ("" when healthy).
	Reason string
	// Abort requests that the optimizer stop now (only set when
	// unhealthy and the policy has AbortOnUnhealthy).
	Abort bool
}

// Watchdog evaluates a HealthPolicy over a run's iteration statistics.
// It is stateful (sliding windows) and owned by a single optimizer run,
// so it is not safe for concurrent use — like the optimizers that embed
// it. All window state is preallocated; Observe performs no allocations,
// keeping the instrumented iteration path allocation-free.
type Watchdog struct {
	policy HealthPolicy
	sink   Sink
	trace  string

	prevCost float64
	hasPrev  bool
	stallRun int
	window   []float64 // ring buffer of recent costs (DivergenceWindow)
	winLen   int
	winNext  int
	trips    int
}

// mHealthEvents counts unhealthy verdicts process-wide.
var mHealthEvents = Default.Counter("obs.health.events")

// NewWatchdog builds a watchdog for one run. sink may be nil (verdicts
// are still returned, just not traced); trace tags emitted events.
func NewWatchdog(p HealthPolicy, sink Sink, trace string) *Watchdog {
	w := &Watchdog{policy: p, sink: sink, trace: trace}
	if p.DivergenceWindow > 0 {
		w.window = make([]float64, p.DivergenceWindow)
	}
	return w
}

// Trips returns how many unhealthy verdicts the watchdog has issued.
func (w *Watchdog) Trips() int { return w.trips }

// Observe judges one iteration from its cost, gradient norm and time
// step. Checks run in severity order (non-finite, divergence, stall);
// the first that trips wins. An unhealthy verdict emits one EventHealth
// to the sink and bumps the obs.health.events counter.
func (w *Watchdog) Observe(iter int, cost, gradNorm, timeStep float64) Verdict {
	reason := ""
	switch {
	case w.policy.CheckNonFinite && (math.IsNaN(cost) || math.IsInf(cost, 0)):
		reason = HealthNonFiniteCost
	case w.policy.CheckNonFinite && (math.IsNaN(gradNorm) || math.IsInf(gradNorm, 0)):
		reason = HealthNonFiniteGrad
	default:
		reason = w.observeFinite(cost, timeStep)
	}
	if reason == "" {
		return Verdict{Healthy: true}
	}
	w.trips++
	mHealthEvents.Inc()
	if w.sink != nil {
		w.sink.Emit(Event{
			Type:     EventHealth,
			Trace:    w.trace,
			Iter:     iter,
			Cost:     cost,
			GradNorm: gradNorm,
			TimeStep: timeStep,
			Msg:      reason,
		})
	}
	return Verdict{Reason: reason, Abort: w.policy.AbortOnUnhealthy}
}

// WatchdogState is the serialisable snapshot of a watchdog's sliding
// windows and counters, captured into solver checkpoints so a resumed
// run issues the same verdicts an uninterrupted one would.
type WatchdogState struct {
	PrevCost float64
	HasPrev  bool
	StallRun int
	Window   []float64
	WinLen   int
	WinNext  int
	Trips    int
}

// State captures the watchdog's mutable state. The window is cloned;
// the policy is not part of the state (a resume re-supplies it).
func (w *Watchdog) State() WatchdogState {
	return WatchdogState{
		PrevCost: w.prevCost,
		HasPrev:  w.hasPrev,
		StallRun: w.stallRun,
		Window:   append([]float64(nil), w.window...),
		WinLen:   w.winLen,
		WinNext:  w.winNext,
		Trips:    w.trips,
	}
}

// Restore loads a captured state into the watchdog. The window length
// is dictated by the watchdog's own policy; a state captured under a
// different DivergenceWindow is truncated or zero-padded to fit.
func (w *Watchdog) Restore(st WatchdogState) {
	w.prevCost = st.PrevCost
	w.hasPrev = st.HasPrev
	w.stallRun = st.StallRun
	w.trips = st.Trips
	if len(w.window) == len(st.Window) {
		copy(w.window, st.Window)
		w.winLen, w.winNext = st.WinLen, st.WinNext
	} else if len(w.window) > 0 {
		n := copy(w.window, st.Window)
		w.winLen, w.winNext = n, n%len(w.window)
	}
}

// observeFinite runs the divergence and stall checks on a finite cost
// and updates the window state.
func (w *Watchdog) observeFinite(cost, timeStep float64) string {
	reason := ""
	// Divergence: compare against the minimum over the previous
	// DivergenceWindow costs (before admitting the current one, so a
	// single explosive jump is caught immediately).
	if w.policy.DivergenceWindow > 0 {
		if w.winLen > 0 {
			min := w.window[0]
			for _, c := range w.window[1:w.winLen] {
				if c < min {
					min = c
				}
			}
			if min > 0 && cost > w.policy.DivergenceFactor*min {
				reason = HealthDivergence
			}
		}
		w.window[w.winNext] = cost
		w.winNext = (w.winNext + 1) % len(w.window)
		if w.winLen < len(w.window) {
			w.winLen++
		}
	}
	// Stall: consecutive iterations with negligible relative improvement
	// (or a zero step, which means the front cannot move at all).
	if reason == "" && w.policy.StallWindow > 0 {
		stalled := timeStep == 0
		if w.hasPrev && !stalled {
			denom := math.Abs(w.prevCost)
			if denom < 1 {
				denom = 1
			}
			stalled = (w.prevCost-cost)/denom < w.policy.StallEpsilon
		}
		if stalled {
			w.stallRun++
		} else {
			w.stallRun = 0
		}
		if w.stallRun >= w.policy.StallWindow {
			reason = HealthStall
			// Re-arm so a non-aborting watchdog flags the next full
			// window instead of every subsequent iteration.
			w.stallRun = 0
		}
	}
	w.prevCost, w.hasPrev = cost, true
	return reason
}
