package obs

import (
	"math"
	"testing"
)

func TestWatchdogNonFinite(t *testing.T) {
	var c CollectorSink
	w := NewWatchdog(DefaultHealthPolicy(), &c, "s1")
	if v := w.Observe(0, 10, 1, 0.5); !v.Healthy {
		t.Fatalf("healthy iteration flagged: %+v", v)
	}
	v := w.Observe(1, math.NaN(), 1, 0.5)
	if v.Healthy || v.Reason != HealthNonFiniteCost || !v.Abort {
		t.Fatalf("NaN cost verdict = %+v", v)
	}
	v = w.Observe(2, 10, math.Inf(1), 0.5)
	if v.Healthy || v.Reason != HealthNonFiniteGrad {
		t.Fatalf("Inf gradient verdict = %+v", v)
	}
	events := c.Events()
	if len(events) != 2 {
		t.Fatalf("health events = %d, want 2", len(events))
	}
	for _, e := range events {
		if e.Type != EventHealth || e.Trace != "s1" {
			t.Fatalf("bad health event: %+v", e)
		}
	}
	if events[0].Msg != HealthNonFiniteCost || events[1].Msg != HealthNonFiniteGrad {
		t.Fatalf("reasons = %q, %q", events[0].Msg, events[1].Msg)
	}
	if w.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", w.Trips())
	}
}

func TestWatchdogDivergence(t *testing.T) {
	p := HealthPolicy{DivergenceWindow: 5, DivergenceFactor: 10, AbortOnUnhealthy: true}
	w := NewWatchdog(p, nil, "")
	for i, c := range []float64{4, 3, 2} {
		if v := w.Observe(i, c, 1, 0.5); !v.Healthy {
			t.Fatalf("iter %d flagged: %+v", i, v)
		}
	}
	// 2 is the window minimum; 25 > 10×2 diverges.
	v := w.Observe(3, 25, 1, 0.5)
	if v.Healthy || v.Reason != HealthDivergence || !v.Abort {
		t.Fatalf("divergence verdict = %+v", v)
	}
	// Moderate growth below the factor stays healthy.
	w2 := NewWatchdog(p, nil, "")
	for i, c := range []float64{4, 3, 2, 15, 19} {
		if v := w2.Observe(i, c, 1, 0.5); !v.Healthy {
			t.Fatalf("iter %d (cost %g) flagged: %+v", i, c, v)
		}
	}
}

func TestWatchdogStall(t *testing.T) {
	p := HealthPolicy{StallWindow: 3, StallEpsilon: 1e-9}
	w := NewWatchdog(p, nil, "")
	if v := w.Observe(0, 100, 1, 0.5); !v.Healthy {
		t.Fatalf("first iteration flagged: %+v", v)
	}
	// Three identical costs in a row = three stalled iterations.
	var v Verdict
	for i := 1; i <= 3; i++ {
		v = w.Observe(i, 100, 1, 0.5)
	}
	if v.Healthy || v.Reason != HealthStall {
		t.Fatalf("stall verdict = %+v", v)
	}
	if v.Abort {
		t.Fatal("abort requested without AbortOnUnhealthy")
	}
	// Progress re-arms the counter.
	if v := w.Observe(4, 50, 1, 0.5); !v.Healthy {
		t.Fatalf("progress after stall flagged: %+v", v)
	}
	// A zero time step counts as stalled regardless of cost movement.
	w2 := NewWatchdog(p, nil, "")
	for i := 0; i < 2; i++ {
		w2.Observe(i, float64(100-i), 1, 0)
	}
	if v := w2.Observe(2, 97, 1, 0); v.Healthy || v.Reason != HealthStall {
		t.Fatalf("zero-step stall verdict = %+v", v)
	}
}

func TestWatchdogObserveDoesNotAllocate(t *testing.T) {
	var c CollectorSink
	w := NewWatchdog(HealthPolicy{CheckNonFinite: true, StallWindow: 4, DivergenceWindow: 6, DivergenceFactor: 10}, &c, "s1")
	cost := 100.0
	if avg := testing.AllocsPerRun(200, func() {
		cost *= 0.99
		w.Observe(1, cost, 1, 0.5)
	}); avg != 0 {
		t.Fatalf("healthy Observe allocates %.1f objects/op, want 0", avg)
	}
}
