package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the observability endpoint for long-running commands:
//
//	/metrics        plain-text metrics dump (sorted `name value` lines)
//	/debug/vars     expvar JSON (the registry publishes itself here)
//	/debug/pprof/*  the standard pprof profiles
//
// The handler uses its own mux, so mounting it does not disturb the
// process default mux (importing net/http/pprof also registers on
// http.DefaultServeMux; commands using Handler never serve that mux).
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability endpoint on addr (e.g. ":6060" or
// "127.0.0.1:0") in a background goroutine, publishing the registry to
// expvar under "lsopc". It returns the server (Close to stop) and the
// bound address, which matters when addr requested port 0.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	r.PublishExpvar("lsopc")
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
