package obs

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strings"
	"time"
)

// Handler returns the observability endpoint for long-running commands:
//
//	/metrics             plain-text metrics dump (sorted `name value` lines)
//	/debug/vars          expvar JSON (the registry publishes itself here)
//	/debug/pprof/*       the standard pprof profiles
//	/healthz             liveness JSON (status, uptime, goroutines)
//	/runs                JSON snapshot of in-flight + recent runs
//	/runs/{id}           one run's detail incl. its iteration series tail
//	/runs/{id}/events    SSE live event stream (?types=a,b filters kinds)
//
// runs and bus are optional: with a nil RunRegistry the /runs endpoints
// answer 404, with a nil Bus the SSE endpoint answers 503. The handler
// uses its own mux, so mounting it does not disturb the process default
// mux (importing net/http/pprof also registers on http.DefaultServeMux;
// commands using Handler never serve that mux).
func Handler(r *Registry, runs *RunRegistry, bus *Bus) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, map[string]any{
			"status":     "ok",
			"uptime_s":   time.Since(start).Seconds(),
			"goroutines": runtime.NumGoroutine(),
		})
	})

	mux.HandleFunc("GET /runs", func(w http.ResponseWriter, req *http.Request) {
		if runs == nil {
			http.NotFound(w, req)
			return
		}
		writeJSON(w, map[string]any{"runs": runs.Runs()})
	})
	mux.HandleFunc("GET /runs/{id}", func(w http.ResponseWriter, req *http.Request) {
		if runs == nil {
			http.NotFound(w, req)
			return
		}
		st, tail, ok := runs.Run(req.PathValue("id"))
		if !ok {
			http.NotFound(w, req)
			return
		}
		writeJSON(w, map[string]any{"run": st, "iterations": tail})
	})
	mux.HandleFunc("GET /runs/{id}/events", func(w http.ResponseWriter, req *http.Request) {
		if bus == nil {
			http.Error(w, "event streaming not enabled", http.StatusServiceUnavailable)
			return
		}
		serveSSE(w, req, bus)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// serveSSE streams the bus to one client as Server-Sent Events,
// restricted to the run id in the path (tile sub-runs of that id
// included) and, with ?types=a,b, to those event kinds. Each event goes
// out as `event: <type>` + `data: <event JSON>`; whenever this client's
// ring dropped events since the last write, a `drops` event reports the
// cumulative count. The stream ends when the client disconnects or the
// subscription closes (server shutdown).
func serveSSE(w http.ResponseWriter, req *http.Request, bus *Bus) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	id := req.PathValue("id")
	var types []string
	if q := req.URL.Query().Get("types"); q != "" {
		types = strings.Split(q, ",")
	}
	sub := bus.Subscribe(1024, types...)
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	// The hello event carries the subscription id so a reconnecting
	// client can tell a fresh subscription (drops reset) from a resumed
	// one, and the drop count at attach time (always 0 for a new ring).
	fmt.Fprintf(w, "event: hello\ndata: {\"run\":%q,\"subscription\":%d,\"drops\":%d}\n\n",
		id, sub.ID(), sub.Drops())
	flusher.Flush()

	var reported int64
	for {
		e, ok := sub.Next(req.Context())
		if !ok {
			return
		}
		if !runMatches(id, e.Trace) {
			continue
		}
		data, err := json.Marshal(e)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
		if d := sub.Drops(); d != reported {
			reported = d
			fmt.Fprintf(w, "event: drops\ndata: {\"drops\":%d}\n\n", d)
		}
		flusher.Flush()
	}
}

// runMatches reports whether an event's trace id belongs to run id —
// the run itself or one of its "<id>.t<n>" tile sub-runs.
func runMatches(id, trace string) bool {
	if trace == id {
		return true
	}
	return strings.HasPrefix(trace, id) && len(trace) > len(id) && trace[len(id)] == '.'
}

// Server is a handle on a running observability endpoint. It owns the
// listener and the serve goroutine; Shutdown drains in-flight requests
// (closing active SSE streams) and surfaces any serve error that was
// not the orderly ErrServerClosed.
type Server struct {
	srv  *http.Server
	addr string
	done chan struct{}
	err  error // serve error other than ErrServerClosed; set before done closes
	// stopConns cancels the base context every request context derives
	// from. SSE handlers block on that context, so plain
	// http.Server.Shutdown would wait on them forever; cancelling first
	// lets the streams end and Shutdown complete promptly.
	stopConns context.CancelFunc
}

// Serve starts the observability endpoint on addr (e.g. ":6060" or
// "127.0.0.1:0") in a background goroutine, publishing the registry to
// expvar under "lsopc". runs and bus are optional (see Handler). A
// serve failure after startup is logged to stderr and retrievable via
// Err/Shutdown.
func Serve(addr string, r *Registry, runs *RunRegistry, bus *Bus) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r.PublishExpvar("lsopc")
	connCtx, stopConns := context.WithCancel(context.Background())
	s := &Server{
		srv: &http.Server{
			Handler:     Handler(r, runs, bus),
			BaseContext: func(net.Listener) context.Context { return connCtx },
		},
		addr:      ln.Addr().String(),
		done:      make(chan struct{}),
		stopConns: stopConns,
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.err = err
			fmt.Fprintf(os.Stderr, "obs: serve %s: %v\n", s.addr, err)
		}
	}()
	return s, nil
}

// Addr returns the bound address, which matters when Serve was asked
// for port 0.
func (s *Server) Addr() string { return s.addr }

// Err returns the serve error, if any, once the serve loop has exited
// (nil while still serving or after an orderly shutdown).
func (s *Server) Err() error {
	select {
	case <-s.done:
		return s.err
	default:
		return nil
	}
}

// Shutdown gracefully stops the server: no new connections, in-flight
// requests get until ctx expires, active SSE streams are closed. It
// waits for the serve goroutine to exit and returns the first of the
// shutdown error or a non-orderly serve error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopConns()
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	if err != nil {
		return err
	}
	return s.err
}

// Close stops the server immediately, dropping in-flight requests.
func (s *Server) Close() error {
	s.stopConns()
	err := s.srv.Close()
	<-s.done
	if err != nil {
		return err
	}
	return s.err
}
