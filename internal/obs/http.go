package obs

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Dumper captures a postmortem bundle for a run on demand, returning
// the bundle directory. The flight recorder (internal/obs/recorder)
// implements it; the HTTP layer depends only on this interface so obs
// does not import the recorder package.
type Dumper interface {
	Capture(runID, reason string) (string, error)
}

// Handler returns the observability endpoint for long-running commands:
//
//	/metrics             plain-text metrics dump (sorted `name value` lines)
//	/debug/vars          expvar JSON (the registry publishes itself here)
//	/debug/pprof/*       the standard pprof profiles
//	/healthz             liveness JSON (status, uptime, goroutines)
//	/runs                JSON snapshot of in-flight + recent runs
//	                     (?phase=running|done|cancelled filters, ?limit=N caps)
//	/runs/{id}           one run's detail incl. its iteration series tail
//	/runs/{id}/events    SSE live event stream (?types=a,b filters kinds)
//	/runs/{id}/dump      POST: capture a postmortem bundle (?reason=... tags it)
//
// runs, bus and dumper are optional: with a nil RunRegistry the /runs
// endpoints answer 404, with a nil Bus the SSE endpoint answers 503,
// and with a nil Dumper the dump endpoint answers 503. The handler uses
// its own mux, so mounting it does not disturb the process default mux
// (importing net/http/pprof also registers on http.DefaultServeMux;
// commands using Handler never serve that mux).
func Handler(r *Registry, runs *RunRegistry, bus *Bus, dumper Dumper) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, map[string]any{
			"status":     "ok",
			"uptime_s":   time.Since(start).Seconds(),
			"goroutines": runtime.NumGoroutine(),
		})
	})

	mux.HandleFunc("GET /runs", func(w http.ResponseWriter, req *http.Request) {
		if runs == nil {
			http.NotFound(w, req)
			return
		}
		list := runs.Runs()
		q := req.URL.Query()
		if phase := q.Get("phase"); phase != "" {
			if phase != PhaseRunning && phase != PhaseDone && phase != PhaseCancelled {
				http.Error(w, fmt.Sprintf("unknown phase %q", phase), http.StatusBadRequest)
				return
			}
			kept := list[:0]
			for _, st := range list {
				if st.Phase == phase {
					kept = append(kept, st)
				}
			}
			list = kept
		}
		if ls := q.Get("limit"); ls != "" {
			n, err := strconv.Atoi(ls)
			if err != nil || n < 0 {
				http.Error(w, fmt.Sprintf("bad limit %q", ls), http.StatusBadRequest)
				return
			}
			if n < len(list) {
				list = list[:n]
			}
		}
		writeJSON(w, map[string]any{"runs": list})
	})
	mux.HandleFunc("GET /runs/{id}", func(w http.ResponseWriter, req *http.Request) {
		if runs == nil {
			http.NotFound(w, req)
			return
		}
		st, tail, ok := runs.Run(req.PathValue("id"))
		if !ok {
			http.NotFound(w, req)
			return
		}
		writeJSON(w, map[string]any{"run": st, "iterations": tail})
	})
	mux.HandleFunc("GET /runs/{id}/events", func(w http.ResponseWriter, req *http.Request) {
		if bus == nil {
			http.Error(w, "event streaming not enabled", http.StatusServiceUnavailable)
			return
		}
		serveSSE(w, req, bus)
	})
	mux.HandleFunc("POST /runs/{id}/dump", func(w http.ResponseWriter, req *http.Request) {
		if dumper == nil {
			http.Error(w, "flight recorder not enabled", http.StatusServiceUnavailable)
			return
		}
		id := req.PathValue("id")
		if runs != nil {
			if _, _, ok := runs.Run(id); !ok {
				http.NotFound(w, req)
				return
			}
		}
		reason := req.URL.Query().Get("reason")
		if reason == "" {
			reason = "dump"
		}
		dir, err := dumper.Capture(id, reason)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]any{"run": id, "bundle": dir})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// serveSSE streams the bus to one client as Server-Sent Events,
// restricted to the run id in the path (tile sub-runs of that id
// included) and, with ?types=a,b, to those event kinds. Each event goes
// out as `event: <type>` + `data: <event JSON>`; whenever this client's
// ring dropped events since the last write, a `drops` event reports the
// cumulative count. The stream ends when the client disconnects or the
// subscription closes (server shutdown).
func serveSSE(w http.ResponseWriter, req *http.Request, bus *Bus) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	id := req.PathValue("id")
	var types []string
	if q := req.URL.Query().Get("types"); q != "" {
		types = strings.Split(q, ",")
	}
	sub := bus.Subscribe(1024, types...)
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	// The hello event carries the subscription id so a reconnecting
	// client can tell a fresh subscription (drops reset) from a resumed
	// one, and the drop count at attach time (always 0 for a new ring).
	fmt.Fprintf(w, "event: hello\ndata: {\"run\":%q,\"subscription\":%d,\"drops\":%d}\n\n",
		id, sub.ID(), sub.Drops())
	flusher.Flush()

	var reported int64
	for {
		e, ok := sub.Next(req.Context())
		if !ok {
			return
		}
		if !runMatches(id, e.Trace) {
			continue
		}
		data, err := json.Marshal(e)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
		if d := sub.Drops(); d != reported {
			reported = d
			fmt.Fprintf(w, "event: drops\ndata: {\"drops\":%d}\n\n", d)
		}
		flusher.Flush()
	}
}

// runMatches reports whether an event's trace id belongs to run id —
// the run itself or one of its "<id>.t<n>" tile sub-runs.
func runMatches(id, trace string) bool {
	if trace == id {
		return true
	}
	return strings.HasPrefix(trace, id) && len(trace) > len(id) && trace[len(id)] == '.'
}

// Server is a handle on a running observability endpoint. It owns the
// listener and the serve goroutine; Shutdown drains in-flight requests
// (closing active SSE streams) and surfaces any serve error that was
// not the orderly ErrServerClosed.
type Server struct {
	srv  *http.Server
	addr string
	done chan struct{}
	err  error // serve error other than ErrServerClosed; set before done closes
	// stopConns cancels the base context every request context derives
	// from. SSE handlers block on that context, so plain
	// http.Server.Shutdown would wait on them forever; cancelling first
	// lets the streams end and Shutdown complete promptly.
	stopConns context.CancelFunc
	// stopSampler stops the runtime sampler Serve started and removes
	// its gauges from the registry; bus is unregistered alongside it so
	// a Serve/Shutdown cycle leaves the registry as it found it.
	stopSampler func()
	bus         *Bus
}

// release undoes the registry side effects of Serve: the runtime
// sampler's gauges and the bus counters come back out, so repeated
// Serve/Shutdown cycles don't accumulate or double-publish metrics.
// Idempotent (the sampler stop is once-guarded, metric removal is
// deletion by name).
func (s *Server) release() {
	if s.stopSampler != nil {
		s.stopSampler()
	}
	if s.bus != nil {
		s.bus.Unregister()
	}
}

// Serve starts the observability endpoint on addr (e.g. ":6060" or
// "127.0.0.1:0") in a background goroutine, publishing the registry to
// expvar under "lsopc" and starting a runtime sampler that feeds the
// registry's runtime.* gauges for as long as the server runs. runs, bus
// and dumper are optional (see Handler). Shutdown/Close stop the
// sampler and unregister its gauges (and the bus counters, when a bus
// was passed), so Serve/Shutdown cycles leave the registry clean. A
// serve failure after startup is logged to stderr and retrievable via
// Err/Shutdown.
func Serve(addr string, r *Registry, runs *RunRegistry, bus *Bus, dumper Dumper) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r.PublishExpvar("lsopc")
	connCtx, stopConns := context.WithCancel(context.Background())
	s := &Server{
		srv: &http.Server{
			Handler:     Handler(r, runs, bus, dumper),
			BaseContext: func(net.Listener) context.Context { return connCtx },
		},
		addr:        ln.Addr().String(),
		done:        make(chan struct{}),
		stopConns:   stopConns,
		stopSampler: StartRuntimeSampler(r, 5*time.Second),
		bus:         bus,
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.err = err
			fmt.Fprintf(os.Stderr, "obs: serve %s: %v\n", s.addr, err)
		}
	}()
	return s, nil
}

// Addr returns the bound address, which matters when Serve was asked
// for port 0.
func (s *Server) Addr() string { return s.addr }

// Err returns the serve error, if any, once the serve loop has exited
// (nil while still serving or after an orderly shutdown).
func (s *Server) Err() error {
	select {
	case <-s.done:
		return s.err
	default:
		return nil
	}
}

// Shutdown gracefully stops the server: no new connections, in-flight
// requests get until ctx expires, active SSE streams are closed. It
// waits for the serve goroutine to exit and returns the first of the
// shutdown error or a non-orderly serve error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopConns()
	s.release()
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	if err != nil {
		return err
	}
	return s.err
}

// Close stops the server immediately, dropping in-flight requests.
func (s *Server) Close() error {
	s.stopConns()
	s.release()
	err := s.srv.Close()
	<-s.done
	if err != nil {
		return err
	}
	return s.err
}
