package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// usable; updates are a single atomic add.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value (or up/down) integer metric.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed upper-bound buckets plus a
// +Inf overflow, tracking count and sum. Observe is lock-free: one
// linear bucket scan and two atomic adds (the float sum uses a CAS
// loop), with zero allocations.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; implicit +Inf last
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. The bounds slice is not retained by reference holders beyond
// construction; it must not be mutated afterwards.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// DurationBounds are the default nanosecond buckets for timing
// histograms: 1 µs … 10 s in decade/half-decade steps.
var DurationBounds = []float64{
	1e3, 1e4, 1e5, 5e5, 1e6, 5e6, 1e7, 5e7, 1e8, 5e8, 1e9, 1e10,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket containing the target rank, assuming observations
// are non-negative (true for the duration histograms this registry
// holds). Samples in the +Inf overflow bucket clamp to the largest
// finite bound. Returns 0 on an empty histogram or out-of-range q.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return 0
	}
	rank := q * float64(total)
	cum, lower := 0.0, 0.0
	for i := range h.bounds {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			return lower + (rank-cum)/c*(h.bounds[i]-lower)
		}
		cum += c
		lower = h.bounds[i]
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry is a concurrency-safe name → metric table. Get-or-create
// accessors take a mutex; hot paths cache the returned pointer in a
// package variable so steady-state updates never touch the registry.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	published bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the instrumented layers publish
// to.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Remove deletes the named metric (counter, gauge or histogram) from
// the registry so future snapshots omit it. Holders of the metric
// pointer may keep updating it; the updates simply stop being exported.
// Used for transient per-subscriber metrics that would otherwise grow
// the registry without bound.
func (r *Registry) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.counters, name)
	delete(r.gauges, name)
	delete(r.hists, name)
}

// Snapshot flattens every metric to name → value. Histograms expand to
// `<name>.count`, `<name>.sum` and one `<name>.le<bound>` cumulative
// count per bucket (plus `<name>.leInf`). The result is a stable,
// JSON-friendly view used by the /metrics endpoint, the expvar export
// and benchjson's recorded metrics.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+8*len(r.hists))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
	}
	for name, h := range r.hists {
		out[name+".count"] = float64(h.Count())
		out[name+".sum"] = h.Sum()
		out[name+".p50"] = h.Quantile(0.50)
		out[name+".p95"] = h.Quantile(0.95)
		out[name+".p99"] = h.Quantile(0.99)
		cum := int64(0)
		for i := range h.bounds {
			cum += h.counts[i].Load()
			out[name+".le"+strconv.FormatFloat(h.bounds[i], 'g', -1, 64)] = float64(cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		out[name+".leInf"] = float64(cum)
	}
	return out
}

// WriteText dumps the snapshot as sorted `name value` lines — the
// plain-text format served at /metrics.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %v\n", name, snap[name]); err != nil {
			return err
		}
	}
	return nil
}

// PublishExpvar exposes the registry's live snapshot under the given
// expvar name (visible at /debug/vars). Idempotent per registry, and a
// no-op when the name is already taken (expvar names are process-global
// and cannot be re-published — the first registry keeps it; this
// matters for test binaries that build several servers).
func (r *Registry) PublishExpvar(name string) {
	r.mu.Lock()
	already := r.published
	r.published = true
	r.mu.Unlock()
	if already {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// expvarMu serializes the process-global check-then-publish above.
var expvarMu sync.Mutex
