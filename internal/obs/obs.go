// Package obs is the runtime observability layer of the repository: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms) exported via expvar and a plain-text dump, a structured
// trace-sink interface emitting typed events as JSONL, and opt-in
// net/http/pprof + metrics HTTP endpoints for long-running commands.
//
// The package is stdlib-only and imports nothing else from the module,
// so every substrate (engine, fft, rt, litho, core, pixelilt) can
// depend on it without cycles. Instrumentation ships always-compiled-in
// under two cost regimes:
//
//   - Metrics (counters/histograms) are always on. An update is one or
//     two atomic adds with zero heap allocations, cheap enough for the
//     session-construction and per-FFT-batch call sites that use them.
//   - Tracing is nil-gated. Hot paths guard every event with a plain
//     `if sink != nil` (or an atomic load of the process Runtime sink),
//     so the disabled path performs no allocation and no time.Now call —
//     the alloc-regression tests enforce 0 allocs/op on the warm
//     simulate and iteration paths with no sink attached.
//
// Event emission passes the Event struct by value, so enabling a sink
// costs the sink's own work (JSON marshalling for JSONLSink) but the
// producers stay allocation-free up to the Emit call.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Event types emitted by the instrumented layers. The Type field of
// every Event holds one of these.
const (
	// EventIteration is one optimizer iteration: cost terms, gradient
	// norm, step size (core and pixelilt emit these).
	EventIteration = "iteration"
	// EventCorner is one per-corner forward or forward+gradient
	// simulation with its wall time (litho emits these).
	EventCorner = "corner"
	// EventPlanCache is an FFT plan-cache lookup (hit or miss).
	EventPlanCache = "plan_cache"
	// EventPool is an rt pool lease (hit = served from the free list,
	// miss = fresh allocation) or release.
	EventPool = "pool"
	// EventSpan is a coarse job span: a whole optimize or evaluate call
	// with its engine and wall time.
	EventSpan = "span"
	// EventProgress is a human-readable progress line (the experiments
	// harness emits these; LineSink renders them verbatim).
	EventProgress = "progress"
	// EventHealth is a numerical-health verdict from the watchdog: a
	// NaN/Inf cost or gradient, a stalled front, or cost divergence
	// (see HealthPolicy). Msg carries the reason code.
	EventHealth = "health"
	// EventLevelSwitch is a multi-resolution level hand-off: OldN/N carry
	// the old and new grid edges, Iter the global iteration at which the
	// switch happened, and DurNS the φ interpolation + redistancing time.
	EventLevelSwitch = "level_switch"
	// EventTileStart marks a tile optimization being picked up by a
	// worker: Tile carries the 1-based tile ordinal, Pass the stitch pass
	// (0 = initial independent sweep), Name the tile's core rect.
	EventTileStart = "tile_start"
	// EventTileDone is the matching completion record: same Tile/Pass
	// plus DurNS wall time, Iter the iterations the tile ran, and Hit
	// reporting whether the tile's optimizer converged.
	EventTileDone = "tile_done"
	// EventStitchPass summarizes one halo-stitching consistency pass:
	// Pass is the 1-based pass number, N the number of tiles
	// re-optimized, Seam the worst seam-strip mask disagreement fraction
	// after blending, Hit whether the seams converged below tolerance,
	// and DurNS the pass wall time.
	EventStitchPass = "stitch_pass"
	// EventCancelled marks a run stopped cooperatively at an iteration
	// boundary: Iter is the global iteration the run yielded at, Name
	// the optimizer method, and Msg the cancellation cause.
	EventCancelled = "cancelled"
	// EventCheckpoint records a resumable checkpoint being captured at
	// the same boundary: N carries the number of serialized state
	// fields.
	EventCheckpoint = "checkpoint"
	// EventCapture records the flight recorder writing a postmortem
	// bundle for a run: Msg carries the trigger reason, Name the bundle
	// directory, and N the number of files it contains.
	EventCapture = "capture"
)

// Event is one structured trace record. It is a flat union of the
// fields used by the event types above; unused fields marshal away
// under omitempty, so each JSONL line carries only its type's payload.
// Events are passed by value to keep producers allocation-free.
type Event struct {
	Type   string `json:"type"`
	Seq    int64  `json:"seq,omitempty"`     // sink-assigned total order
	TimeNS int64  `json:"time_ns,omitempty"` // unix nanos, sink-stamped
	Trace  string `json:"trace,omitempty"`   // owning session/job id
	Name   string `json:"name,omitempty"`    // span/op name or pool kind
	Engine string `json:"engine,omitempty"`
	Corner string `json:"corner,omitempty"`
	Iter   int    `json:"iter,omitempty"`
	N      int    `json:"n,omitempty"`     // plan length, pool elements or new grid edge
	OldN   int    `json:"old_n,omitempty"` // previous grid edge (level_switch)
	Tile   int    `json:"tile,omitempty"`  // 1-based tile ordinal (tile_start/tile_done)
	Pass   int    `json:"pass,omitempty"`  // stitch pass number (0 = initial sweep)
	Hit    bool   `json:"hit,omitempty"`   // cache/pool hit, tile converged, seams converged
	DurNS  int64  `json:"dur_ns,omitempty"`

	Seam float64 `json:"seam,omitempty"` // seam-strip mask disagreement fraction

	Cost        float64 `json:"cost,omitempty"`
	CostNominal float64 `json:"cost_nominal,omitempty"`
	CostPVB     float64 `json:"cost_pvb,omitempty"`
	GradNorm    float64 `json:"grad_norm,omitempty"`
	MaxVelocity float64 `json:"max_velocity,omitempty"`
	TimeStep    float64 `json:"time_step,omitempty"`
	LambdaPRP   float64 `json:"lambda_prp,omitempty"`

	Msg string `json:"msg,omitempty"`
}

// traceFloat marshals non-finite values as the strings "NaN", "+Inf"
// and "-Inf" instead of failing the whole line — encoding/json rejects
// NaN/Inf, and the events most worth keeping (a NaN-poisoned cost, the
// watchdog's health verdict about it) are exactly the non-finite ones.
type traceFloat float64

// MarshalJSON implements json.Marshaler.
func (f traceFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *traceFloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*f = traceFloat(math.NaN())
		case "+Inf", "Inf":
			*f = traceFloat(math.Inf(1))
		case "-Inf":
			*f = traceFloat(math.Inf(-1))
		default:
			return fmt.Errorf("obs: invalid float string %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = traceFloat(v)
	return nil
}

// eventJSON mirrors Event with non-finite-safe float fields; Event's
// JSON round-trip goes through it.
type eventJSON struct {
	Type   string `json:"type"`
	Seq    int64  `json:"seq,omitempty"`
	TimeNS int64  `json:"time_ns,omitempty"`
	Trace  string `json:"trace,omitempty"`
	Name   string `json:"name,omitempty"`
	Engine string `json:"engine,omitempty"`
	Corner string `json:"corner,omitempty"`
	Iter   int    `json:"iter,omitempty"`
	N      int    `json:"n,omitempty"`
	OldN   int    `json:"old_n,omitempty"`
	Tile   int    `json:"tile,omitempty"`
	Pass   int    `json:"pass,omitempty"`
	Hit    bool   `json:"hit,omitempty"`
	DurNS  int64  `json:"dur_ns,omitempty"`

	Seam traceFloat `json:"seam,omitempty"`

	Cost        traceFloat `json:"cost,omitempty"`
	CostNominal traceFloat `json:"cost_nominal,omitempty"`
	CostPVB     traceFloat `json:"cost_pvb,omitempty"`
	GradNorm    traceFloat `json:"grad_norm,omitempty"`
	MaxVelocity traceFloat `json:"max_velocity,omitempty"`
	TimeStep    traceFloat `json:"time_step,omitempty"`
	LambdaPRP   traceFloat `json:"lambda_prp,omitempty"`

	Msg string `json:"msg,omitempty"`
}

// MarshalJSON implements json.Marshaler: one flat object per event,
// with NaN/±Inf floats rendered as strings instead of erroring.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{
		Type: e.Type, Seq: e.Seq, TimeNS: e.TimeNS, Trace: e.Trace,
		Name: e.Name, Engine: e.Engine, Corner: e.Corner,
		Iter: e.Iter, N: e.N, OldN: e.OldN, Tile: e.Tile, Pass: e.Pass,
		Hit: e.Hit, DurNS: e.DurNS,
		Seam:        traceFloat(e.Seam),
		Cost:        traceFloat(e.Cost),
		CostNominal: traceFloat(e.CostNominal),
		CostPVB:     traceFloat(e.CostPVB),
		GradNorm:    traceFloat(e.GradNorm),
		MaxVelocity: traceFloat(e.MaxVelocity),
		TimeStep:    traceFloat(e.TimeStep),
		LambdaPRP:   traceFloat(e.LambdaPRP),
		Msg:         e.Msg,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *Event) UnmarshalJSON(b []byte) error {
	var j eventJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*e = Event{
		Type: j.Type, Seq: j.Seq, TimeNS: j.TimeNS, Trace: j.Trace,
		Name: j.Name, Engine: j.Engine, Corner: j.Corner,
		Iter: j.Iter, N: j.N, OldN: j.OldN, Tile: j.Tile, Pass: j.Pass,
		Hit: j.Hit, DurNS: j.DurNS,
		Seam:        float64(j.Seam),
		Cost:        float64(j.Cost),
		CostNominal: float64(j.CostNominal),
		CostPVB:     float64(j.CostPVB),
		GradNorm:    float64(j.GradNorm),
		MaxVelocity: float64(j.MaxVelocity),
		TimeStep:    float64(j.TimeStep),
		LambdaPRP:   float64(j.LambdaPRP),
		Msg:         j.Msg,
	}
	return nil
}

// String renders the event as one human-readable line (no trailing
// newline, except progress messages which carry their own).
func (e Event) String() string {
	switch e.Type {
	case EventProgress:
		return e.Msg
	case EventIteration:
		return fmt.Sprintf("%s %s iter=%d cost=%.6g nominal=%.6g pvb=%.6g |g|=%.4g max|v|=%.4g dt=%.4g lambda=%.3f",
			e.Type, e.Trace, e.Iter, e.Cost, e.CostNominal, e.CostPVB, e.GradNorm, e.MaxVelocity, e.TimeStep, e.LambdaPRP)
	case EventCorner:
		return fmt.Sprintf("%s %s %s/%s %.3fms cost=%.6g",
			e.Type, e.Trace, e.Name, e.Corner, float64(e.DurNS)/1e6, e.Cost)
	case EventPlanCache, EventPool:
		return fmt.Sprintf("%s %s n=%d hit=%v", e.Type, e.Name, e.N, e.Hit)
	case EventSpan:
		return fmt.Sprintf("%s %s %s engine=%s %.3fms", e.Type, e.Trace, e.Name, e.Engine, float64(e.DurNS)/1e6)
	case EventHealth:
		return fmt.Sprintf("%s %s iter=%d %s cost=%.6g |g|=%.4g",
			e.Type, e.Trace, e.Iter, e.Msg, e.Cost, e.GradNorm)
	case EventLevelSwitch:
		return fmt.Sprintf("%s %s iter=%d %d->%d interp=%.3fms",
			e.Type, e.Trace, e.Iter, e.OldN, e.N, float64(e.DurNS)/1e6)
	case EventTileStart:
		return fmt.Sprintf("%s %s tile=%d pass=%d %s", e.Type, e.Trace, e.Tile, e.Pass, e.Name)
	case EventTileDone:
		return fmt.Sprintf("%s %s tile=%d pass=%d iters=%d converged=%v %.3fms",
			e.Type, e.Trace, e.Tile, e.Pass, e.Iter, e.Hit, float64(e.DurNS)/1e6)
	case EventStitchPass:
		return fmt.Sprintf("%s %s pass=%d tiles=%d seam=%.6g converged=%v %.3fms",
			e.Type, e.Trace, e.Pass, e.N, e.Seam, e.Hit, float64(e.DurNS)/1e6)
	case EventCancelled:
		return fmt.Sprintf("%s %s %s iter=%d %s", e.Type, e.Trace, e.Name, e.Iter, e.Msg)
	case EventCheckpoint:
		return fmt.Sprintf("%s %s %s iter=%d fields=%d", e.Type, e.Trace, e.Name, e.Iter, e.N)
	case EventCapture:
		return fmt.Sprintf("%s %s reason=%s bundle=%s files=%d", e.Type, e.Trace, e.Msg, e.Name, e.N)
	default:
		return fmt.Sprintf("%s %s %s", e.Type, e.Trace, e.Msg)
	}
}

// Sink receives trace events. Implementations must be safe for
// concurrent use: sessions running on separate goroutines share one
// sink, and the sink is the serialization point. Emit must not retain
// references into the event beyond the call (Event is self-contained
// value data, so copying it is enough).
//
// Sinks that buffer should also implement Flusher; Flush is invoked by
// Pipeline.Release and the command-line drivers before exit.
type Sink interface {
	Emit(e Event)
}

// Flusher is the optional flush half of the sink contract.
type Flusher interface {
	Flush() error
}

// Flush flushes s if it implements Flusher; nil and non-buffering sinks
// are no-ops.
func Flush(s Sink) error {
	if f, ok := s.(Flusher); ok && f != nil {
		return f.Flush()
	}
	return nil
}

// runtimeSink is the process-level sink for events that originate below
// any session handle: FFT plan-cache lookups and pool leases happen
// inside shared caches with no session in scope, so they report here.
// Stored behind an atomic pointer: the disabled path is one atomic load
// and a nil check.
type sinkHolder struct{ s Sink }

var runtimeSink atomic.Pointer[sinkHolder]

// SetRuntime installs (or, with nil, removes) the process-level trace
// sink that receives plan-cache and pool events. Commands set it to the
// same sink as their pipeline so one JSONL stream carries the full
// picture.
func SetRuntime(s Sink) {
	if s == nil {
		runtimeSink.Store(nil)
		return
	}
	runtimeSink.Store(&sinkHolder{s: s})
}

// Runtime returns the process-level sink, or nil when tracing is off.
func Runtime() Sink {
	if h := runtimeSink.Load(); h != nil {
		return h.s
	}
	return nil
}

// JSONLSink writes each event as one JSON object per line. A mutex
// serializes emissions, assigns a strictly increasing sequence number,
// and stamps wall time, so concurrent producers cannot interleave
// partial lines and the file is a total order of what happened. Writes
// are buffered; call Flush (Pipeline.Release does) before reading the
// underlying writer.
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	seq int64
	err error
}

// NewJSONLSink returns a sink writing JSONL to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{bw: bufio.NewWriter(w)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	e.Seq = s.seq
	if e.TimeNS == 0 {
		e.TimeNS = time.Now().UnixNano()
	}
	b, err := json.Marshal(&e)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.bw.Write(append(b, '\n')); err != nil && s.err == nil {
		s.err = err
	}
}

// Flush writes buffered lines through and reports the first error seen.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// CollectorSink retains every event in memory, for tests.
type CollectorSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (s *CollectorSink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of everything emitted so far.
func (s *CollectorSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Len returns the number of events emitted so far.
func (s *CollectorSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// TeeSink fans every event out to several sinks in order. nil entries
// are skipped; Flush flushes every buffering member and reports the
// first error.
type TeeSink []Sink

// Emit implements Sink.
func (t TeeSink) Emit(e Event) {
	for _, s := range t {
		if s != nil {
			s.Emit(e)
		}
	}
}

// Flush implements Flusher.
func (t TeeSink) Flush() error {
	var first error
	for _, s := range t {
		if err := Flush(s); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// LineSink adapts a legacy io.Writer progress stream to the Sink
// interface: each event renders as one human-readable line. Progress
// events pass their message through verbatim, which keeps the output of
// the pre-sink `Progress io.Writer` plumbing byte-identical.
type LineSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLineSink wraps w.
func NewLineSink(w io.Writer) *LineSink { return &LineSink{w: w} }

// Emit implements Sink.
func (s *LineSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.Type == EventProgress {
		io.WriteString(s.w, e.Msg)
		return
	}
	fmt.Fprintln(s.w, e.String())
}
