package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("counter not memoized by name")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 555.5 {
		t.Fatalf("hist sum = %g, want 555.5", h.Sum())
	}
	snap := r.Snapshot()
	for key, want := range map[string]float64{
		"c": 5, "g": 5,
		"h.count": 4, "h.sum": 555.5,
		"h.le1": 1, "h.le10": 2, "h.le100": 3, "h.leInf": 4,
	} {
		if snap[key] != want {
			t.Fatalf("snapshot[%q] = %g, want %g (snap %v)", key, snap[key], want, snap)
		}
	}
}

func TestRegistryConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n")
			h := r.Histogram("d", DurationBounds)
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(1e6)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	h := r.Histogram("d", DurationBounds)
	if h.Count() != workers*per {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*per)
	}
	if want := float64(workers*per) * 1e6; h.Sum() != want {
		t.Fatalf("hist sum = %g, want %g", h.Sum(), want)
	}
}

func TestMetricUpdatesDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DurationBounds)
	if avg := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Add(1)
		h.Observe(3e6)
	}); avg != 0 {
		t.Fatalf("metric updates allocate %.1f objects/op, want 0", avg)
	}
}

func TestWriteTextSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a.count 1\nb.count 2\n"
	if buf.String() != want {
		t.Fatalf("text dump = %q, want %q", buf.String(), want)
	}
}

func TestJSONLSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			trace := fmt.Sprintf("s%d", w)
			for i := 0; i < per; i++ {
				sink.Emit(Event{Type: EventIteration, Trace: trace, Iter: i, Cost: float64(i)})
			}
		}(w)
	}
	wg.Wait()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	// Every line is valid JSON, seq is a strictly increasing total
	// order, and each trace's iteration events arrive in order.
	sc := bufio.NewScanner(&buf)
	lastSeq := int64(0)
	nextIter := map[string]int{}
	lines := 0
	for sc.Scan() {
		lines++
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: invalid JSON %q: %v", lines, sc.Text(), err)
		}
		if e.Seq <= lastSeq {
			t.Fatalf("line %d: seq %d not increasing after %d", lines, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.Iter != nextIter[e.Trace] {
			t.Fatalf("trace %s: iter %d, want %d", e.Trace, e.Iter, nextIter[e.Trace])
		}
		nextIter[e.Trace]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != workers*per {
		t.Fatalf("lines = %d, want %d (lost events)", lines, workers*per)
	}
	for trace, n := range nextIter {
		if n != per {
			t.Fatalf("trace %s: %d events, want %d", trace, n, per)
		}
	}
}

func TestJSONLSinkStampsTime(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	before := time.Now().UnixNano()
	sink.Emit(Event{Type: EventSpan, Name: "job"})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	var e Event
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.TimeNS < before || e.TimeNS > time.Now().UnixNano() {
		t.Fatalf("time_ns %d outside call window", e.TimeNS)
	}
	if e.Seq != 1 {
		t.Fatalf("seq = %d, want 1", e.Seq)
	}
}

func TestLineSinkProgressPassthrough(t *testing.T) {
	var buf bytes.Buffer
	sink := NewLineSink(&buf)
	sink.Emit(Event{Type: EventProgress, Msg: "B4 Ours RT=1.0s\n"})
	if got := buf.String(); got != "B4 Ours RT=1.0s\n" {
		t.Fatalf("progress line = %q", got)
	}
	buf.Reset()
	sink.Emit(Event{Type: EventSpan, Name: "optimize", Engine: "cpu", DurNS: 2e6})
	if !strings.Contains(buf.String(), "optimize") || !strings.HasSuffix(buf.String(), "\n") {
		t.Fatalf("span line = %q", buf.String())
	}
}

func TestRuntimeSinkSetAndClear(t *testing.T) {
	if Runtime() != nil {
		t.Fatal("runtime sink should start nil")
	}
	var c CollectorSink
	SetRuntime(&c)
	defer SetRuntime(nil)
	if s := Runtime(); s == nil {
		t.Fatal("runtime sink not installed")
	}
	Runtime().Emit(Event{Type: EventPool, Name: "field"})
	if c.Len() != 1 {
		t.Fatalf("events = %d, want 1", c.Len())
	}
	SetRuntime(nil)
	if Runtime() != nil {
		t.Fatal("runtime sink not cleared")
	}
}

func TestWorkerBusy(t *testing.T) {
	wb := NewWorkerBusy(4)
	wb.Add(0, 10*time.Millisecond)
	wb.Add(3, 30*time.Millisecond)
	wb.Add(99, 5*time.Millisecond) // clamps to last slot
	if got := wb.Total(); got != 45*time.Millisecond {
		t.Fatalf("total = %v, want 45ms", got)
	}
	per := wb.PerWorker()
	if per[0] != 10*time.Millisecond || per[3] != 35*time.Millisecond {
		t.Fatalf("per-worker = %v", per)
	}
	if u := wb.Utilization(100 * time.Millisecond); u != 45.0/400.0 {
		t.Fatalf("utilization = %g", u)
	}
	wb.Reset()
	if wb.Total() != 0 {
		t.Fatal("reset did not zero")
	}
}

func TestFlushHelper(t *testing.T) {
	if err := Flush(nil); err != nil {
		t.Fatal(err)
	}
	var c CollectorSink
	if err := Flush(&c); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(Event{Type: EventSpan})
	if err := Flush(s); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("flush did not drain buffered line")
	}
}

func TestHTTPHandlerServesMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Add(3)
	srv, err := Serve("127.0.0.1:0", r, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if body := get("/metrics"); !strings.Contains(body, "requests 3") {
		t.Fatalf("/metrics missing counter: %q", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
	if body := get("/debug/vars"); !strings.Contains(body, "lsopc") {
		t.Fatalf("/debug/vars missing registry: %q", body)
	}
}
