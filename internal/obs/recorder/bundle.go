package recorder

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"lsopc/internal/obs"
	"lsopc/internal/solve"
)

// Bundle file names. Every bundle contains ManifestFile; the rest are
// present when their source was available at capture time and are
// listed in Manifest.Files.
const (
	ManifestFile   = "manifest.json"
	EventsFile     = "events.jsonl"
	RuntimeFile    = "runtime.jsonl"
	GoroutinesFile = "goroutines.txt"
	HeapFile       = "heap.pb.gz"
	CPUFile        = "cpu.pb.gz"
	RunFile        = "run.json"
	CheckpointFile = "checkpoint.ckpt"
	MetricsFile    = "metrics.txt"
)

// ManifestSchema is the current bundle manifest schema version.
const ManifestSchema = 1

// Manifest indexes a postmortem bundle: what triggered it, when, and
// which files it contains.
type Manifest struct {
	Schema  int    `json:"schema"`
	RunID   string `json:"run_id"`
	Trigger string `json:"trigger"`
	TimeNS  int64  `json:"time_ns"`
	// Tile / Window identify the aborted tile for tiled runs.
	Tile   int    `json:"tile,omitempty"`
	Window string `json:"window,omitempty"`
	// Events is the number of event-tail lines in events.jsonl.
	Events int `json:"events"`
	// CheckpointIter is the resumable checkpoint's global iteration
	// count (0 when no checkpoint was captured).
	CheckpointIter int `json:"checkpoint_iter,omitempty"`
	// Files lists the bundle's contents (manifest included).
	Files []string `json:"files"`
	// Notes records non-fatal capture degradations (e.g. the CPU
	// profiler was already running).
	Notes []string `json:"notes,omitempty"`
}

// runDump is the run.json payload: the registry's view of the captured
// run and its tile children at capture time.
type runDump struct {
	Run      obs.RunState       `json:"run"`
	Tail     []obs.RunIterPoint `json:"tail,omitempty"`
	Children []obs.RunState     `json:"children,omitempty"`
}

// writeBundle assembles the bundle under dir. Called with capMu held.
func (r *Recorder) writeBundle(dir, root string, a Anomaly, now time.Time) (*Manifest, error) {
	man := &Manifest{
		Schema:  ManifestSchema,
		RunID:   a.RunID,
		Trigger: a.Reason,
		TimeNS:  now.UnixNano(),
		Tile:    a.Tile,
		Window:  a.Window,
		Files:   []string{ManifestFile},
	}

	// Event tail.
	tail := r.Tail(root)
	man.Events = len(tail)
	if err := writeJSONL(filepath.Join(dir, EventsFile), len(tail), func(enc *json.Encoder, i int) error {
		return enc.Encode(&tail[i])
	}); err != nil {
		return nil, err
	}
	man.Files = append(man.Files, EventsFile)

	// Runtime snapshot ring (a fresh sample was pushed just before).
	snaps := r.snapshots()
	if err := writeJSONL(filepath.Join(dir, RuntimeFile), len(snaps), func(enc *json.Encoder, i int) error {
		return enc.Encode(&snaps[i])
	}); err != nil {
		return nil, err
	}
	man.Files = append(man.Files, RuntimeFile)

	// Goroutine dump (debug=2: full stacks with states).
	if err := writeProfile(filepath.Join(dir, GoroutinesFile), "goroutine", 2); err != nil {
		return nil, err
	}
	man.Files = append(man.Files, GoroutinesFile)

	// Heap profile (debug=0 writes the gzipped protobuf form).
	if err := writeProfile(filepath.Join(dir, HeapFile), "heap", 0); err != nil {
		return nil, err
	}
	man.Files = append(man.Files, HeapFile)

	// CPU profile slice. Only one CPU profile can run per process; if
	// one is already active (a live /debug/pprof/profile request, or a
	// test harness) degrade to a note rather than failing the capture.
	if r.cfg.CPUProfile > 0 {
		if err := captureCPU(filepath.Join(dir, CPUFile), r.cfg.CPUProfile); err != nil {
			man.Notes = append(man.Notes, fmt.Sprintf("cpu profile unavailable: %v", err))
		} else {
			man.Files = append(man.Files, CPUFile)
		}
	}

	// Run registry snapshot.
	if r.cfg.Runs != nil {
		if st, tail, ok := r.cfg.Runs.Run(root); ok {
			dump := runDump{Run: st, Tail: tail}
			for _, cid := range st.Children {
				if cst, _, ok := r.cfg.Runs.Run(cid); ok {
					dump.Children = append(dump.Children, cst)
				}
			}
			if err := writeJSONFile(filepath.Join(dir, RunFile), &dump); err != nil {
				return nil, err
			}
			man.Files = append(man.Files, RunFile)
		} else {
			man.Notes = append(man.Notes, fmt.Sprintf("run %q not in registry", root))
		}
	}

	// Resumable checkpoint of the aborted solver state.
	if a.Checkpoint != nil {
		if err := solve.SaveCheckpoint(filepath.Join(dir, CheckpointFile), a.Checkpoint); err != nil {
			return nil, err
		}
		man.Files = append(man.Files, CheckpointFile)
		man.CheckpointIter = a.Checkpoint.DoneIters + a.Checkpoint.Iter
	}

	// Metrics registry text dump.
	mf, err := os.Create(filepath.Join(dir, MetricsFile))
	if err != nil {
		return nil, err
	}
	if err := r.reg.WriteText(mf); err != nil {
		mf.Close()
		return nil, err
	}
	if err := mf.Close(); err != nil {
		return nil, err
	}
	man.Files = append(man.Files, MetricsFile)

	if err := writeJSONFile(filepath.Join(dir, ManifestFile), man); err != nil {
		return nil, err
	}
	return man, nil
}

// Open reads and validates a bundle directory's manifest: schema,
// required identity fields, and that every listed file exists.
func Open(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("recorder: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("recorder: %s: %w", ManifestFile, err)
	}
	if man.Schema != ManifestSchema {
		return nil, fmt.Errorf("recorder: %s: schema %d, want %d", ManifestFile, man.Schema, ManifestSchema)
	}
	if man.RunID == "" || man.Trigger == "" {
		return nil, fmt.Errorf("recorder: %s: missing run_id or trigger", ManifestFile)
	}
	for _, f := range man.Files {
		if filepath.Base(f) != f {
			return nil, fmt.Errorf("recorder: %s: invalid file entry %q", ManifestFile, f)
		}
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			return nil, fmt.Errorf("recorder: bundle missing %s: %w", f, err)
		}
	}
	return &man, nil
}

func writeJSONL(path string, n int, encode func(*json.Encoder, int) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for i := 0; i < n; i++ {
		if err := encode(enc, i); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeProfile(path, name string, debug int) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("recorder: no %s profile", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteTo(f, debug); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func captureCPU(path string, d time.Duration) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	time.Sleep(d)
	pprof.StopCPUProfile()
	return f.Close()
}
