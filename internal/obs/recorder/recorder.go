// Package recorder is the flight-recorder half of the observability
// layer: a black box that rides along every instrumented run and, when
// something goes wrong, turns the one-line abort reason the watchdog
// leaves behind into a self-contained postmortem bundle.
//
// A Recorder is an obs.Sink. Composed into the trace chain (TeeSink
// alongside the JSONL file, the run registry and the live bus) it keeps
// a bounded ring of each run's most recent typed events — tile sub-runs
// ("<job>.t<n>") fold into their parent job's ring, so a tiled run's
// tail reads as one story — plus a small global ring of periodic Go
// runtime snapshots (the same figures the runtime sampler publishes as
// gauges). The hot path stays within the package's cost contract: after
// a run's ring exists, Emit is a mutex, a map lookup and a copy into
// preallocated storage — no allocations, enforced by a benchmark-gated
// test.
//
// Capture is the anomaly half: on a watchdog abort, a context
// cancellation, or an explicit /runs/{id}/dump request it writes a
// bundle directory containing the event tail (JSONL), a goroutine dump,
// heap and CPU profile slices, the run registry's snapshot, the metrics
// registry, the gob checkpoint of the aborted solver state (so the
// poisoned run is resumable for bisection) and a manifest naming the
// trigger. Capture is once-per-run: concurrent or repeated triggers for
// the same run return the first bundle's path and count as skips.
package recorder

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"lsopc/internal/obs"
	"lsopc/internal/solve"
)

// Config parameterises a Recorder.
type Config struct {
	// Dir is the directory bundles are written under (created on first
	// capture). Required for Capture; a recorder with Dir == "" still
	// records rings but refuses to capture.
	Dir string
	// RingSize is the per-run event ring capacity (≤ 0 selects 512).
	RingSize int
	// MaxRuns bounds how many run rings are retained, evicting the
	// oldest-started first (≤ 0 selects 64).
	MaxRuns int
	// SnapshotEvery is the runtime-snapshot sampling period (0 selects
	// 5s, negative disables sampling).
	SnapshotEvery time.Duration
	// SnapshotRing is the runtime-snapshot ring capacity (≤ 0 selects 64).
	SnapshotRing int
	// CPUProfile is the duration of the CPU profile slice captured into
	// a bundle (0 selects 250ms, negative disables it). Capture blocks
	// for this long while the profiler runs.
	CPUProfile time.Duration
	// Registry receives the obs.recorder.* metrics and is dumped into
	// bundles (nil means the Default registry).
	Registry *obs.Registry
	// Runs, when non-nil, contributes the run registry's snapshot of the
	// captured run (and its tile children) to bundles.
	Runs *obs.RunRegistry
	// Sink, when non-nil, receives one typed capture event per bundle —
	// tee it into the same chain as the recorder so the trace records
	// its own postmortems.
	Sink obs.Sink
}

// ring is a bounded event buffer (oldest overwritten first).
type ring struct {
	ev      []obs.Event
	head, n int
}

func (r *ring) push(e obs.Event) {
	if r.n == len(r.ev) {
		r.ev[r.head] = e
		r.head = (r.head + 1) % len(r.ev)
		return
	}
	r.ev[(r.head+r.n)%len(r.ev)] = e
	r.n++
}

// tail returns the buffered events, oldest first.
func (r *ring) tail() []obs.Event {
	out := make([]obs.Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.ev[(r.head+i)%len(r.ev)])
	}
	return out
}

// Recorder is the flight recorder. Safe for concurrent use by any
// number of emitters and capture triggers.
type Recorder struct {
	cfg Config
	reg *obs.Registry

	mu    sync.Mutex
	rings map[string]*ring
	order []string // ring insertion order, for MaxRuns eviction

	snapMu   sync.Mutex
	snaps    []obs.RuntimeStats
	snapHead int
	snapN    int
	stopSnap chan struct{}
	snapOnce sync.Once

	// capMu serializes captures; captured maps root run id → bundle dir.
	capMu    sync.Mutex
	captured map[string]string

	mEvents   *obs.Counter // obs.recorder.events
	mCaptures *obs.Counter // obs.recorder.captures
	mSkipped  *obs.Counter // obs.recorder.capture_skipped
	gRuns     *obs.Gauge   // obs.recorder.runs
	gLast     *obs.Gauge   // obs.recorder.last_capture_ns
}

// New builds a recorder and starts its runtime-snapshot sampler (unless
// disabled). Call Close when done with it.
func New(cfg Config) *Recorder {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 512
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = 64
	}
	if cfg.SnapshotRing <= 0 {
		cfg.SnapshotRing = 64
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 5 * time.Second
	}
	if cfg.CPUProfile == 0 {
		cfg.CPUProfile = 250 * time.Millisecond
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default
	}
	r := &Recorder{
		cfg:       cfg,
		reg:       reg,
		rings:     make(map[string]*ring),
		snaps:     make([]obs.RuntimeStats, cfg.SnapshotRing),
		captured:  make(map[string]string),
		stopSnap:  make(chan struct{}),
		mEvents:   reg.Counter("obs.recorder.events"),
		mCaptures: reg.Counter("obs.recorder.captures"),
		mSkipped:  reg.Counter("obs.recorder.capture_skipped"),
		gRuns:     reg.Gauge("obs.recorder.runs"),
		gLast:     reg.Gauge("obs.recorder.last_capture_ns"),
	}
	r.pushSnapshot(obs.SampleRuntime())
	if cfg.SnapshotEvery > 0 {
		go r.sampleLoop(cfg.SnapshotEvery)
	}
	return r
}

// Close stops the runtime-snapshot sampler. Rings and captured bundles
// stay readable; Emit and Capture keep working. Idempotent.
func (r *Recorder) Close() {
	r.snapOnce.Do(func() { close(r.stopSnap) })
}

func (r *Recorder) sampleLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.pushSnapshot(obs.SampleRuntime())
		case <-r.stopSnap:
			return
		}
	}
}

func (r *Recorder) pushSnapshot(st obs.RuntimeStats) {
	r.snapMu.Lock()
	if r.snapN == len(r.snaps) {
		r.snaps[r.snapHead] = st
		r.snapHead = (r.snapHead + 1) % len(r.snaps)
	} else {
		r.snaps[(r.snapHead+r.snapN)%len(r.snaps)] = st
		r.snapN++
	}
	r.snapMu.Unlock()
}

// snapshots returns the buffered runtime samples, oldest first.
func (r *Recorder) snapshots() []obs.RuntimeStats {
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	out := make([]obs.RuntimeStats, 0, r.snapN)
	for i := 0; i < r.snapN; i++ {
		out = append(out, r.snaps[(r.snapHead+i)%len(r.snaps)])
	}
	return out
}

// rootOf collapses a tile sub-run id ("<job>.t<n>") to its parent job,
// mirroring the run registry's convention. Allocation-free.
func rootOf(id string) string {
	i := strings.LastIndex(id, ".t")
	if i <= 0 {
		return id
	}
	digits := id[i+2:]
	if digits == "" {
		return id
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return id
		}
	}
	return id[:i]
}

// Emit implements obs.Sink: the event joins its root run's bounded
// ring. Events with no run id (plan-cache, pool, progress) are
// dropped — the postmortem story is per-run. The steady-state path
// (ring already exists) performs no allocations.
func (r *Recorder) Emit(e obs.Event) {
	if e.Trace == "" {
		return
	}
	root := rootOf(e.Trace)
	r.mu.Lock()
	rg := r.rings[root]
	if rg == nil {
		rg = &ring{ev: make([]obs.Event, r.cfg.RingSize)}
		r.rings[root] = rg
		r.order = append(r.order, root)
		r.gRuns.Set(int64(len(r.rings)))
		for len(r.rings) > r.cfg.MaxRuns {
			old := r.order[0]
			r.order = r.order[1:]
			delete(r.rings, old)
			r.gRuns.Set(int64(len(r.rings)))
		}
	}
	rg.push(e)
	r.mu.Unlock()
	r.mEvents.Inc()
}

// Tail returns a copy of the run's buffered event tail, oldest first
// (nil for an untracked run). id may be a tile sub-run id; the tail is
// the parent job's.
func (r *Recorder) Tail(id string) []obs.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg := r.rings[rootOf(id)]
	if rg == nil {
		return nil
	}
	return rg.tail()
}

// Anomaly describes one capture trigger.
type Anomaly struct {
	// RunID is the run to capture (a tile sub-run id collapses to its
	// parent job for ring lookup and once-per-run accounting, but is
	// recorded verbatim in the manifest).
	RunID string
	// Reason is the trigger: an obs.Health* code, "cancelled", "dump", …
	Reason string
	// Tile is the 1-based aborted tile ordinal for tiled runs (0 none).
	Tile int
	// Window describes the aborted tile's chip window ("" when not
	// tiled).
	Window string
	// Checkpoint, when non-nil, is persisted into the bundle as a
	// resumable gob checkpoint.
	Checkpoint *solve.Checkpoint
}

// Capture implements the obs.Dumper contract: capture the run with a
// bare trigger reason (the /runs/{id}/dump path). See CaptureAnomaly.
func (r *Recorder) Capture(runID, reason string) (string, error) {
	return r.CaptureAnomaly(Anomaly{RunID: runID, Reason: reason})
}

// CaptureAnomaly writes the run's postmortem bundle and returns its
// directory. Captures are once-per-run: a second trigger (concurrent or
// later) returns the first bundle's path and counts as a skip. The
// bundle is written synchronously — expect it to take roughly the
// configured CPU-profile duration.
func (r *Recorder) CaptureAnomaly(a Anomaly) (string, error) {
	if a.RunID == "" {
		return "", fmt.Errorf("recorder: capture without a run id")
	}
	if a.Reason == "" {
		a.Reason = "dump"
	}
	if r.cfg.Dir == "" {
		return "", fmt.Errorf("recorder: no bundle directory configured")
	}
	root := rootOf(a.RunID)
	r.capMu.Lock()
	defer r.capMu.Unlock()
	if dir, ok := r.captured[root]; ok {
		r.mSkipped.Inc()
		return dir, nil
	}
	now := time.Now()
	dir := filepath.Join(r.cfg.Dir, fmt.Sprintf("%s-%s-%d", sanitize(root), sanitize(a.Reason), now.UnixNano()))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	// One fresh runtime sample so the bundle records the state at
	// capture, not just the last periodic tick.
	r.pushSnapshot(obs.SampleRuntime())
	man, err := r.writeBundle(dir, root, a, now)
	if err != nil {
		return "", fmt.Errorf("recorder: writing bundle %s: %w", dir, err)
	}
	r.captured[root] = dir
	r.mCaptures.Inc()
	r.gLast.Set(now.UnixNano())
	if r.cfg.Sink != nil {
		r.cfg.Sink.Emit(obs.Event{
			Type:  obs.EventCapture,
			Trace: root,
			Name:  dir,
			N:     len(man.Files),
			Tile:  a.Tile,
			Msg:   a.Reason,
		})
	}
	return dir, nil
}

// Captured returns the bundle directory captured for the run, if any.
func (r *Recorder) Captured(id string) (string, bool) {
	r.capMu.Lock()
	defer r.capMu.Unlock()
	dir, ok := r.captured[rootOf(id)]
	return dir, ok
}

// sanitize keeps bundle directory names to a portable charset.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "run"
	}
	return string(out)
}
