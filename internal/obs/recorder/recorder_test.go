package recorder

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"lsopc/internal/grid"
	"lsopc/internal/obs"
	"lsopc/internal/solve"
)

// quiet returns a recorder with the background sampler and the CPU
// profile slice disabled, so tests stay fast and deterministic.
func quiet(t *testing.T, cfg Config) *Recorder {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	cfg.SnapshotEvery = -1
	cfg.CPUProfile = -1
	r := New(cfg)
	t.Cleanup(r.Close)
	return r
}

func TestRootOf(t *testing.T) {
	cases := map[string]string{
		"s1":       "s1",
		"s1.t3":    "s1",
		"s1.t":     "s1.t",
		"s1.tile":  "s1.tile",
		"s1.t12x":  "s1.t12x",
		"job.t100": "job",
		".t1":      ".t1",
	}
	for in, want := range cases {
		if got := rootOf(in); got != want {
			t.Errorf("rootOf(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRingConservation drives concurrent emitters over several runs
// (run under -race in `make race`): every event must be counted, tile
// sub-runs must fold into their parent ring, and each ring must retain
// exactly its capacity's worth of the newest events.
func TestRingConservation(t *testing.T) {
	reg := obs.NewRegistry()
	r := quiet(t, Config{RingSize: 64, Registry: reg})
	const (
		emitters = 4
		perEmit  = 100
	)
	runs := []string{"a", "b", "b.t1", "b.t2", "c"}
	var wg sync.WaitGroup
	for w := 0; w < emitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perEmit; i++ {
				for _, id := range runs {
					r.Emit(obs.Event{Type: obs.EventIteration, Trace: id, Iter: w*perEmit + i})
				}
				// Events with no run id are dropped, not counted.
				r.Emit(obs.Event{Type: obs.EventPlanCache})
			}
		}(w)
	}
	wg.Wait()

	total := emitters * perEmit * len(runs)
	if got := reg.Snapshot()["obs.recorder.events"]; got != float64(total) {
		t.Fatalf("events counter %v, want %d (conservation)", got, total)
	}
	if got := reg.Snapshot()["obs.recorder.runs"]; got != 3 {
		t.Fatalf("runs gauge %v, want 3 (b.t* fold into b)", got)
	}
	// Ring "a" saw emitters*perEmit events through a 64-slot ring: the
	// tail is full and every retained event belongs to the run.
	tail := r.Tail("a")
	if len(tail) != 64 {
		t.Fatalf("tail of a holds %d events, want ring capacity 64", len(tail))
	}
	for _, e := range tail {
		if e.Trace != "a" {
			t.Fatalf("ring a retained an event for %q", e.Trace)
		}
	}
	// The b ring is shared with its tile sub-runs.
	for _, e := range r.Tail("b") {
		if root := rootOf(e.Trace); root != "b" {
			t.Fatalf("ring b retained an event for %q", e.Trace)
		}
	}
	if got := r.Tail("b.t1"); len(got) != 64 {
		t.Fatalf("tile id lookup returned %d events, want the parent ring's 64", len(got))
	}
}

// TestRingOrder pins FIFO eviction: a single emitter's ring tail must
// be the newest events, oldest first.
func TestRingOrder(t *testing.T) {
	r := quiet(t, Config{RingSize: 8})
	for i := 0; i < 20; i++ {
		r.Emit(obs.Event{Type: obs.EventIteration, Trace: "s1", Iter: i})
	}
	tail := r.Tail("s1")
	if len(tail) != 8 {
		t.Fatalf("tail holds %d, want 8", len(tail))
	}
	for i, e := range tail {
		if want := 12 + i; e.Iter != want {
			t.Fatalf("tail[%d].Iter = %d, want %d", i, e.Iter, want)
		}
	}
}

// TestMaxRunsEviction pins the retention bound: beyond MaxRuns rings,
// the oldest-started run is forgotten.
func TestMaxRunsEviction(t *testing.T) {
	reg := obs.NewRegistry()
	r := quiet(t, Config{RingSize: 4, MaxRuns: 2, Registry: reg})
	for _, id := range []string{"r1", "r2", "r3"} {
		r.Emit(obs.Event{Type: obs.EventIteration, Trace: id})
	}
	if got := r.Tail("r1"); got != nil {
		t.Fatalf("oldest run still has %d ring events, want eviction", len(got))
	}
	if r.Tail("r2") == nil || r.Tail("r3") == nil {
		t.Fatal("newest runs were evicted")
	}
	if got := reg.Snapshot()["obs.recorder.runs"]; got != 2 {
		t.Fatalf("runs gauge %v, want 2", got)
	}
}

// TestCaptureOnce hammers CaptureAnomaly from concurrent triggers (run
// under -race): exactly one bundle is written, every caller gets its
// path, and the extras count as skips.
func TestCaptureOnce(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	var sink obs.CollectorSink
	r := quiet(t, Config{Dir: dir, Registry: reg, Sink: &sink})
	for i := 0; i < 10; i++ {
		r.Emit(obs.Event{Type: obs.EventIteration, Trace: "s1", Iter: i})
	}

	const callers = 8
	dirs := make([]string, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mixed triggers, including via a tile sub-run id: still one
			// bundle for the root run.
			if i%2 == 0 {
				dirs[i], errs[i] = r.Capture("s1", "dump")
			} else {
				dirs[i], errs[i] = r.CaptureAnomaly(Anomaly{RunID: "s1.t2", Reason: "non_finite_cost"})
			}
		}(i)
	}
	wg.Wait()
	for i := range dirs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if dirs[i] != dirs[0] {
			t.Fatalf("caller %d got bundle %q, caller 0 got %q", i, dirs[i], dirs[0])
		}
	}
	snap := reg.Snapshot()
	if got := snap["obs.recorder.captures"]; got != 1 {
		t.Fatalf("captures counter %v, want 1", got)
	}
	if got := snap["obs.recorder.capture_skipped"]; got != callers-1 {
		t.Fatalf("skip counter %v, want %d", got, callers-1)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d bundle directories written, want 1", len(entries))
	}
	// Exactly one typed capture event was emitted.
	evs := sink.Events()
	if len(evs) != 1 || evs[0].Type != obs.EventCapture {
		t.Fatalf("capture events = %+v, want exactly one", evs)
	}
	if evs[0].Trace != "s1" || evs[0].Msg == "" || evs[0].Name != dirs[0] || evs[0].N < 1 {
		t.Fatalf("capture event fields = %+v", evs[0])
	}
	if got, ok := r.Captured("s1.t7"); !ok || got != dirs[0] {
		t.Fatalf("Captured = %q,%v want %q,true", got, ok, dirs[0])
	}
}

// TestBundleContents opens a written bundle and checks the manifest
// agrees with the files on disk, including the resumable checkpoint
// round-tripping through the solve codec.
func TestBundleContents(t *testing.T) {
	dir := t.TempDir()
	r := quiet(t, Config{Dir: dir, RingSize: 16})
	for i := 0; i < 30; i++ {
		r.Emit(obs.Event{Type: obs.EventIteration, Trace: "s9", Iter: i, Cost: 1.0 / float64(i+1)})
	}
	psi := grid.NewField(4, 4)
	psi.Data[5] = 2.5
	cp := &solve.Checkpoint{
		Method: "levelset", Factor: 1, Iter: 7, DoneIters: 3,
		State: map[string]*grid.Field{"psi": psi},
	}
	bdir, err := r.CaptureAnomaly(Anomaly{
		RunID: "s9", Reason: "stall", Tile: 2, Window: "0,0-1024,1024", Checkpoint: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	man, err := Open(bdir)
	if err != nil {
		t.Fatal(err)
	}
	if man.RunID != "s9" || man.Trigger != "stall" || man.Tile != 2 {
		t.Fatalf("manifest identity = %+v", man)
	}
	if man.Events != 16 {
		t.Fatalf("manifest events %d, want the ring's 16", man.Events)
	}
	if man.CheckpointIter != 10 {
		t.Fatalf("manifest checkpoint iter %d, want 10", man.CheckpointIter)
	}
	for _, f := range []string{ManifestFile, EventsFile, RuntimeFile, GoroutinesFile, HeapFile, RunFile, CheckpointFile, MetricsFile} {
		if f == RunFile {
			continue // no run registry configured in this test
		}
		found := false
		for _, got := range man.Files {
			if got == f {
				found = true
			}
		}
		if !found {
			t.Fatalf("manifest lists %v, missing %s", man.Files, f)
		}
	}
	got, err := solve.LoadCheckpoint(filepath.Join(bdir, CheckpointFile))
	if err != nil {
		t.Fatal(err)
	}
	if got.Iter != 7 || got.State["psi"].Data[5] != 2.5 {
		t.Fatalf("checkpoint round-trip = iter %d psi %v", got.Iter, got.State["psi"].Data[5])
	}

	// Corrupting the bundle must fail validation.
	if err := os.Remove(filepath.Join(bdir, GoroutinesFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bdir); err == nil {
		t.Fatal("Open validated a bundle with a missing listed file")
	}
}

// TestCaptureRequiresDir pins the configuration error path.
func TestCaptureRequiresDir(t *testing.T) {
	r := quiet(t, Config{})
	if _, err := r.Capture("s1", "dump"); err == nil {
		t.Fatal("capture without a bundle directory succeeded")
	}
	if _, err := quiet(t, Config{Dir: t.TempDir()}).Capture("", "dump"); err == nil {
		t.Fatal("capture without a run id succeeded")
	}
}

// TestEmitSteadyStateDoesNotAllocate pins the hot-path cost contract:
// once a run's ring exists, recording an event must not touch the heap
// (the same budget as the disabled-sink and zero-subscriber bus paths).
func TestEmitSteadyStateDoesNotAllocate(t *testing.T) {
	r := quiet(t, Config{RingSize: 128})
	e := obs.Event{Type: obs.EventIteration, Trace: "s1", Iter: 1, Cost: 0.5}
	r.Emit(e) // first event allocates the ring
	if allocs := testing.AllocsPerRun(1000, func() { r.Emit(e) }); allocs != 0 {
		t.Fatalf("steady-state Emit allocated %.1f times per call, want 0", allocs)
	}
	// Tile sub-run ids stay allocation-free too (rootOf sub-slices).
	te := obs.Event{Type: obs.EventIteration, Trace: "s1.t3", Iter: 1}
	r.Emit(te)
	if allocs := testing.AllocsPerRun(1000, func() { r.Emit(te) }); allocs != 0 {
		t.Fatalf("tile-id Emit allocated %.1f times per call, want 0", allocs)
	}
}

// BenchmarkRecorderEmit gates the idle-recorder hot path: run with
// -benchmem, allocs/op must stay 0.
func BenchmarkRecorderEmit(b *testing.B) {
	r := New(Config{RingSize: 512, SnapshotEvery: -1, Registry: obs.NewRegistry()})
	defer r.Close()
	e := obs.Event{Type: obs.EventIteration, Trace: "s1", Iter: 1, Cost: 0.5}
	r.Emit(e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit(e)
	}
}
