package obs

import (
	"encoding/json"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Run phases reported by the RunRegistry.
const (
	PhaseRunning   = "running"
	PhaseDone      = "done"
	PhaseCancelled = "cancelled"
)

// RunHealth is the live watchdog status of one run.
type RunHealth struct {
	Events     int    `json:"events,omitempty"`      // health verdicts seen
	LastReason string `json:"last_reason,omitempty"` // most recent reason code
	LastIter   int    `json:"last_iter,omitempty"`
}

// TileProgress is the live tile/stitch rollup of a tiled parent job.
type TileProgress struct {
	Started       int     `json:"started"`
	Done          int     `json:"done"`
	Converged     int     `json:"converged"`
	Pass          int     `json:"pass,omitempty"` // latest completed stitch pass
	Seam          float64 `json:"seam,omitempty"` // worst seam disagreement after it
	SeamConverged bool    `json:"seam_converged,omitempty"`
}

// MarshalJSON keeps a NaN seam (a poisoned tile) from failing the whole
// /runs response.
func (t TileProgress) MarshalJSON() ([]byte, error) {
	type alias TileProgress
	return json.Marshal(struct {
		alias
		Seam traceFloat `json:"seam,omitempty"`
	}{alias(t), traceFloat(t.Seam)})
}

// RunIterPoint is one point of a run's recent iteration series.
type RunIterPoint struct {
	Iter   int     `json:"iter"`
	Cost   float64 `json:"cost"`
	TimeNS int64   `json:"time_ns,omitempty"`
}

// MarshalJSON round-trips non-finite costs like the trace events do.
func (p RunIterPoint) MarshalJSON() ([]byte, error) {
	type alias RunIterPoint
	return json.Marshal(struct {
		alias
		Cost traceFloat `json:"cost"`
	}{alias(p), traceFloat(p.Cost)})
}

// RunState is a point-in-time snapshot of one run (a session or a tile
// sub-run) as folded from its trace events.
type RunState struct {
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"` // tiled job id for <job>.t<n> sub-runs
	Engine string `json:"engine,omitempty"`
	Phase  string `json:"phase"`
	Level  int    `json:"level,omitempty"` // current grid edge under multires

	Iter      int     `json:"iter"`
	Cost      float64 `json:"cost,omitempty"`
	FirstCost float64 `json:"first_cost,omitempty"`
	BestCost  float64 `json:"best_cost,omitempty"`
	BestIter  int     `json:"best_iter,omitempty"`
	// Slope is the incremental ln-cost least-squares slope — the same
	// statistic obs/analyze reports post-mortem (see SlopeAccum).
	Slope float64 `json:"slope_log_per_iter,omitempty"`

	Events    int64 `json:"events"`
	StartNS   int64 `json:"start_ns,omitempty"`
	UpdatedNS int64 `json:"updated_ns,omitempty"`
	DurNS     int64 `json:"dur_ns,omitempty"` // optimize span wall time once finished

	Health        RunHealth `json:"health"`
	Cancelled     bool      `json:"cancelled,omitempty"`
	CancelledIter int       `json:"cancelled_iter,omitempty"`
	Checkpoints   int       `json:"checkpoints,omitempty"`
	// Captures counts the postmortem bundles the flight recorder wrote
	// for this run (capture events).
	Captures int           `json:"captures,omitempty"`
	Tiles    *TileProgress `json:"tiles,omitempty"`
	Children []string      `json:"children,omitempty"`
}

// MarshalJSON makes the cost/slope fields non-finite-safe; everything
// else marshals as usual.
func (s RunState) MarshalJSON() ([]byte, error) {
	type alias RunState
	return json.Marshal(struct {
		alias
		Cost      traceFloat `json:"cost,omitempty"`
		FirstCost traceFloat `json:"first_cost,omitempty"`
		BestCost  traceFloat `json:"best_cost,omitempty"`
		Slope     traceFloat `json:"slope_log_per_iter,omitempty"`
	}{alias(s), traceFloat(s.Cost), traceFloat(s.FirstCost), traceFloat(s.BestCost), traceFloat(s.Slope)})
}

// runEntry is the registry's mutable record behind one RunState.
type runEntry struct {
	st    RunState
	slope SlopeAccum
	// tail is a bounded ring of the most recent iteration points, so
	// /runs/{id} can serve a live convergence series without unbounded
	// growth. It grows by append until it reaches the registry's tail
	// cap, then overwrites oldest-first at head.
	tail    []RunIterPoint
	head    int
	hasBest bool
}

func (e *runEntry) pushPoint(p RunIterPoint, limit int) {
	if limit <= 0 {
		return
	}
	if len(e.tail) < limit {
		e.tail = append(e.tail, p)
		return
	}
	e.tail[e.head] = p
	e.head = (e.head + 1) % len(e.tail)
}

func (e *runEntry) points() []RunIterPoint {
	out := make([]RunIterPoint, 0, len(e.tail))
	out = append(out, e.tail[e.head:]...)
	return append(out, e.tail[:e.head]...)
}

// RunRegistry folds the trace-event stream into live per-run state:
// phase, multires level, iteration/cost/best-cost, incremental
// convergence slope, watchdog health, checkpoint and tile/stitch
// progress. It implements Sink, so it composes into any trace chain
// (TeeSink alongside the JSONL file and the Bus); the /runs endpoints
// serve its snapshots.
//
// Runs are keyed by trace id. Tile sub-runs ("<job>.t<n>") are linked
// to their parent job both ways (RunState.Parent / .Children). Runs
// finish when their optimize span arrives (or a cancelled event);
// finished runs are retained up to MaxFinished and then evicted oldest
// first — in-flight runs are never evicted.
type RunRegistry struct {
	mu       sync.Mutex
	runs     map[string]*runEntry
	finished []string // finish order, oldest first

	maxFinished int
	tailCap     int

	runsGauge *Gauge   // obs.runs.active
	folded    *Counter // obs.runs.events
}

// NewRunRegistry returns a registry publishing its gauges to reg (nil
// means the Default registry), retaining up to 64 finished runs and a
// 512-point iteration tail per run.
func NewRunRegistry(reg *Registry) *RunRegistry {
	if reg == nil {
		reg = Default
	}
	return &RunRegistry{
		runs:        make(map[string]*runEntry),
		maxFinished: 64,
		tailCap:     512,
		runsGauge:   reg.Gauge("obs.runs.active"),
		folded:      reg.Counter("obs.runs.events"),
	}
}

// SetRetention overrides how many finished runs and how many tail
// points per run are kept (values ≤ 0 keep the current setting).
// Call before serving traffic; it does not shrink existing tails.
func (rr *RunRegistry) SetRetention(maxFinished, tailPoints int) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if maxFinished > 0 {
		rr.maxFinished = maxFinished
	}
	if tailPoints > 0 {
		rr.tailCap = tailPoints
	}
}

// parentOf returns the tiled parent job id for "<job>.t<n>" ids, or "".
func parentOf(id string) string {
	i := strings.LastIndex(id, ".t")
	if i <= 0 {
		return ""
	}
	digits := id[i+2:]
	if digits == "" {
		return ""
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return ""
		}
	}
	return id[:i]
}

// entry returns (creating if needed) the record for a run id.
// Caller holds rr.mu.
func (rr *RunRegistry) entry(id string, timeNS int64) *runEntry {
	e, ok := rr.runs[id]
	if !ok {
		e = &runEntry{st: RunState{
			ID:      id,
			Parent:  parentOf(id),
			Phase:   PhaseRunning,
			StartNS: timeNS,
		}}
		rr.runs[id] = e
		rr.runsGauge.Add(1)
		if e.st.Parent != "" {
			if p, ok := rr.runs[e.st.Parent]; ok {
				p.st.Children = addChild(p.st.Children, id)
			}
		}
	}
	if e.st.StartNS == 0 || (timeNS != 0 && timeNS < e.st.StartNS) {
		e.st.StartNS = timeNS
	}
	if timeNS > e.st.UpdatedNS {
		e.st.UpdatedNS = timeNS
	}
	return e
}

func addChild(children []string, id string) []string {
	for _, c := range children {
		if c == id {
			return children
		}
	}
	return append(children, id)
}

// Emit implements Sink. Runtime-scoped events (plan_cache, pool,
// progress) and events with no run id are ignored; everything else
// folds into the owning run's state.
func (rr *RunRegistry) Emit(e Event) {
	switch e.Type {
	case EventPlanCache, EventPool, EventProgress:
		return
	}
	if e.Trace == "" {
		return
	}
	rr.mu.Lock()
	defer rr.mu.Unlock()
	rr.folded.Inc()
	r := rr.entry(e.Trace, e.TimeNS)
	r.st.Events++

	switch e.Type {
	case EventIteration:
		if r.st.Events == 1 || r.st.Iter < e.Iter {
			r.st.Iter = e.Iter
		}
		r.st.Cost = e.Cost
		if r.slope.i == 0 {
			r.st.FirstCost = e.Cost
		}
		r.slope.Observe(e.Cost)
		r.st.Slope = r.slope.Slope()
		if finite(e.Cost) && (!r.hasBest || e.Cost < r.st.BestCost) {
			r.st.BestCost, r.st.BestIter, r.hasBest = e.Cost, e.Iter, true
		}
		r.pushPoint(RunIterPoint{Iter: e.Iter, Cost: e.Cost, TimeNS: e.TimeNS}, rr.tailCap)
	case EventLevelSwitch:
		r.st.Level = e.N
		if e.Iter > r.st.Iter {
			r.st.Iter = e.Iter
		}
	case EventHealth:
		r.st.Health.Events++
		r.st.Health.LastReason = e.Msg
		r.st.Health.LastIter = e.Iter
	case EventCancelled:
		r.st.Cancelled = true
		r.st.CancelledIter = e.Iter
		rr.finish(r, PhaseCancelled)
	case EventCheckpoint:
		r.st.Checkpoints++
	case EventCapture:
		r.st.Captures++
	case EventTileStart:
		t := r.tiles()
		t.Started++
		child := rr.entry(childID(e.Trace, e.Tile), e.TimeNS)
		child.st.Parent = e.Trace
		r.st.Children = addChild(r.st.Children, child.st.ID)
	case EventTileDone:
		t := r.tiles()
		t.Done++
		if e.Hit {
			t.Converged++
		}
	case EventStitchPass:
		t := r.tiles()
		if e.Pass > t.Pass {
			t.Pass = e.Pass
		}
		t.Seam = e.Seam
		t.SeamConverged = e.Hit
	case EventSpan:
		if e.Engine != "" && r.st.Engine == "" {
			r.st.Engine = e.Engine
		}
		if strings.HasPrefix(e.Name, "optimize") {
			r.st.DurNS = e.DurNS
			if r.st.Phase == PhaseRunning {
				rr.finish(r, PhaseDone)
			}
		}
	}
}

// childID mirrors the tiling layer's "<job>.t<n>" trace-id convention.
func childID(job string, tile int) string { return job + ".t" + strconv.Itoa(tile) }

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// tiles returns the entry's tile rollup, creating it on first use.
func (e *runEntry) tiles() *TileProgress {
	if e.st.Tiles == nil {
		e.st.Tiles = &TileProgress{}
	}
	return e.st.Tiles
}

// finish flips a run to a terminal phase and applies the finished-run
// retention cap. Caller holds rr.mu.
func (rr *RunRegistry) finish(e *runEntry, phase string) {
	if e.st.Phase != PhaseRunning {
		return
	}
	e.st.Phase = phase
	rr.runsGauge.Add(-1)
	rr.finished = append(rr.finished, e.st.ID)
	// A tiled job's terminal event covers its tile sub-runs too: tiles
	// emit no optimize span of their own, so without the cascade they
	// would stay "running" (and pin the active-runs gauge) forever.
	for _, id := range e.st.Children {
		if ce, ok := rr.runs[id]; ok {
			rr.finish(ce, phase)
		}
	}
	for len(rr.finished) > rr.maxFinished {
		old := rr.finished[0]
		rr.finished = rr.finished[1:]
		delete(rr.runs, old)
	}
}

// snapshot deep-copies the parts of a RunState that later folding
// mutates in place. Caller holds rr.mu.
func (e *runEntry) snapshot() RunState {
	st := e.st
	if st.Tiles != nil {
		t := *st.Tiles
		st.Tiles = &t
	}
	if st.Children != nil {
		st.Children = append([]string(nil), st.Children...)
	}
	return st
}

// Runs returns a snapshot of every tracked run, in-flight first, then
// by start time, then id.
func (rr *RunRegistry) Runs() []RunState {
	rr.mu.Lock()
	out := make([]RunState, 0, len(rr.runs))
	for _, e := range rr.runs {
		out = append(out, e.snapshot())
	}
	rr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].Phase == PhaseRunning, out[j].Phase == PhaseRunning
		if ri != rj {
			return ri
		}
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Run returns the snapshot and recent iteration series of one run.
func (rr *RunRegistry) Run(id string) (RunState, []RunIterPoint, bool) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	e, ok := rr.runs[id]
	if !ok {
		return RunState{}, nil, false
	}
	return e.snapshot(), e.points(), true
}
