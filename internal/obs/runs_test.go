package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRunRegistryFoldsLifecycle(t *testing.T) {
	rr := NewRunRegistry(NewRegistry())
	costs := []float64{10, 5, 2.5, 1.25}
	for i, c := range costs {
		rr.Emit(Event{Type: EventIteration, Trace: "s1", Iter: i, Cost: c, TimeNS: int64(i + 1)})
	}
	rr.Emit(Event{Type: EventHealth, Trace: "s1", Iter: 3, Msg: "stall"})
	rr.Emit(Event{Type: EventCheckpoint, Trace: "s1", Iter: 3, N: 7})

	st, tail, ok := rr.Run("s1")
	if !ok {
		t.Fatal("run s1 missing")
	}
	if st.Phase != PhaseRunning || st.Iter != 3 {
		t.Fatalf("phase=%s iter=%d, want running/3", st.Phase, st.Iter)
	}
	if st.FirstCost != 10 || st.Cost != 1.25 || st.BestCost != 1.25 || st.BestIter != 3 {
		t.Fatalf("costs: first=%g cur=%g best=%g@%d", st.FirstCost, st.Cost, st.BestCost, st.BestIter)
	}
	// The incremental slope must equal the batch least-squares of
	// ln(cost): exact halving each step → slope = -ln 2.
	if want := -math.Log(2); math.Abs(st.Slope-want) > 1e-12 {
		t.Fatalf("slope = %g, want %g", st.Slope, want)
	}
	if st.Health.Events != 1 || st.Health.LastReason != "stall" || st.Health.LastIter != 3 {
		t.Fatalf("health = %+v", st.Health)
	}
	if st.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d", st.Checkpoints)
	}
	if len(tail) != 4 || tail[0].Cost != 10 || tail[3].Cost != 1.25 {
		t.Fatalf("tail = %+v", tail)
	}

	// The optimize span finishes the run; evaluate spans don't.
	rr.Emit(Event{Type: EventSpan, Trace: "s1", Name: "evaluate", Engine: "gpu", DurNS: 5})
	if st, _, _ := rr.Run("s1"); st.Phase != PhaseRunning {
		t.Fatalf("evaluate span finished the run: %s", st.Phase)
	}
	rr.Emit(Event{Type: EventSpan, Trace: "s1", Name: "optimize.levelset", Engine: "gpu", DurNS: 1000})
	st, _, _ = rr.Run("s1")
	if st.Phase != PhaseDone || st.DurNS != 1000 || st.Engine != "gpu" {
		t.Fatalf("after optimize span: phase=%s dur=%d engine=%s", st.Phase, st.DurNS, st.Engine)
	}
}

func TestRunRegistrySlopeMatchesBatch(t *testing.T) {
	// Mixed series with non-finite and non-positive costs: the
	// incremental accumulator must skip them but advance the index,
	// exactly like analyze's batch computation.
	costs := []float64{9, 4, math.NaN(), 3, -1, math.Inf(1), 2, 1.5}
	var a SlopeAccum
	for _, c := range costs {
		a.Observe(c)
	}
	var n, sumX, sumY, sumXX, sumXY float64
	for i, c := range costs {
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			continue
		}
		x, y := float64(i), math.Log(c)
		n++
		sumX += x
		sumY += y
		sumXX += x * x
		sumXY += x * y
	}
	want := (n*sumXY - sumX*sumY) / (n*sumXX - sumX*sumX)
	if got := a.Slope(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("incremental slope %g != batch %g", got, want)
	}
}

func TestRunRegistryCancelledAndLevels(t *testing.T) {
	rr := NewRunRegistry(NewRegistry())
	rr.Emit(Event{Type: EventIteration, Trace: "s1", Iter: 0, Cost: 3})
	rr.Emit(Event{Type: EventLevelSwitch, Trace: "s1", Iter: 1, OldN: 64, N: 128})
	rr.Emit(Event{Type: EventCancelled, Trace: "s1", Iter: 1, Msg: "context canceled"})
	st, _, _ := rr.Run("s1")
	if st.Level != 128 {
		t.Fatalf("level = %d, want 128", st.Level)
	}
	if st.Phase != PhaseCancelled || !st.Cancelled || st.CancelledIter != 1 {
		t.Fatalf("cancel fold: %+v", st)
	}
	// A late span must not flip a cancelled run back to done.
	rr.Emit(Event{Type: EventSpan, Trace: "s1", Name: "optimize.levelset", DurNS: 10})
	if st, _, _ := rr.Run("s1"); st.Phase != PhaseCancelled {
		t.Fatalf("span overrode cancelled: %s", st.Phase)
	}
}

func TestRunRegistryTiledFolding(t *testing.T) {
	rr := NewRunRegistry(NewRegistry())
	job := "s1"
	rr.Emit(Event{Type: EventTileStart, Trace: job, Tile: 1, Pass: 0})
	rr.Emit(Event{Type: EventTileStart, Trace: job, Tile: 2, Pass: 0})
	rr.Emit(Event{Type: EventIteration, Trace: "s1.t1", Iter: 0, Cost: 2})
	rr.Emit(Event{Type: EventIteration, Trace: "s1.t2", Iter: 0, Cost: 4})
	rr.Emit(Event{Type: EventTileDone, Trace: job, Tile: 1, Pass: 0, Iter: 3, Hit: true, DurNS: 100})
	rr.Emit(Event{Type: EventTileDone, Trace: job, Tile: 2, Pass: 0, Iter: 3, Hit: false, DurNS: 120})
	rr.Emit(Event{Type: EventStitchPass, Trace: job, Pass: 1, N: 2, Seam: 0.25, Hit: false})

	st, _, ok := rr.Run(job)
	if !ok || st.Tiles == nil {
		t.Fatalf("job state missing tiles: %+v", st)
	}
	tp := st.Tiles
	if tp.Started != 2 || tp.Done != 2 || tp.Converged != 1 {
		t.Fatalf("tiles = %+v", tp)
	}
	if tp.Pass != 1 || tp.Seam != 0.25 || tp.SeamConverged {
		t.Fatalf("stitch = %+v", tp)
	}
	if len(st.Children) != 2 || st.Children[0] != "s1.t1" || st.Children[1] != "s1.t2" {
		t.Fatalf("children = %v", st.Children)
	}
	child, _, ok := rr.Run("s1.t1")
	if !ok || child.Parent != job {
		t.Fatalf("child parent = %q (ok=%v), want %q", child.Parent, ok, job)
	}

	// The job's terminal span cascades to its tile sub-runs (tiles have
	// no optimize span of their own).
	rr.Emit(Event{Type: EventSpan, Trace: job, Name: "optimize.tiled", Engine: "gpu", DurNS: 500})
	if st, _, _ := rr.Run(job); st.Phase != PhaseDone {
		t.Fatalf("job phase = %s after span, want done", st.Phase)
	}
	for _, id := range []string{"s1.t1", "s1.t2"} {
		if st, _, _ := rr.Run(id); st.Phase != PhaseDone {
			t.Fatalf("child %s phase = %s, want done (cascade)", id, st.Phase)
		}
	}
}

func TestRunRegistryFinishedRetention(t *testing.T) {
	rr := NewRunRegistry(NewRegistry())
	rr.SetRetention(2, 4)
	for _, id := range []string{"s1", "s2", "s3"} {
		rr.Emit(Event{Type: EventIteration, Trace: id, Iter: 0, Cost: 1})
		rr.Emit(Event{Type: EventSpan, Trace: id, Name: "optimize.levelset", DurNS: 1})
	}
	if _, _, ok := rr.Run("s1"); ok {
		t.Fatal("oldest finished run s1 not evicted")
	}
	for _, id := range []string{"s2", "s3"} {
		if _, _, ok := rr.Run(id); !ok {
			t.Fatalf("recent finished run %s evicted", id)
		}
	}
	// Tail ring bounded at 4 points: iterations 6..9 survive.
	for i := 0; i < 10; i++ {
		rr.Emit(Event{Type: EventIteration, Trace: "s4", Iter: i, Cost: 1})
	}
	_, tail, _ := rr.Run("s4")
	if len(tail) != 4 || tail[0].Iter != 6 || tail[3].Iter != 9 {
		t.Fatalf("tail = %+v, want iters 6..9", tail)
	}
}

func TestRunRegistryIgnoresRuntimeEvents(t *testing.T) {
	rr := NewRunRegistry(NewRegistry())
	rr.Emit(Event{Type: EventPlanCache, Name: "plan1d", Hit: true})
	rr.Emit(Event{Type: EventPool, Name: "field.lease", Hit: false})
	rr.Emit(Event{Type: EventProgress, Msg: "warmup"})
	rr.Emit(Event{Type: EventIteration, Iter: 0, Cost: 1}) // no trace id
	if runs := rr.Runs(); len(runs) != 0 {
		t.Fatalf("runtime events created runs: %+v", runs)
	}
}

func TestRunStateJSONNonFiniteSafe(t *testing.T) {
	rr := NewRunRegistry(NewRegistry())
	rr.Emit(Event{Type: EventIteration, Trace: "s1", Iter: 0, Cost: math.NaN()})
	rr.Emit(Event{Type: EventStitchPass, Trace: "s1", Pass: 1, N: 1, Seam: math.Inf(1)})
	st, tail, _ := rr.Run("s1")
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("RunState with NaN cost failed to marshal: %v", err)
	}
	if !strings.Contains(string(b), `"cost":"NaN"`) || !strings.Contains(string(b), `"seam":"+Inf"`) {
		t.Fatalf("non-finite fields not stringified: %s", b)
	}
	if _, err := json.Marshal(tail); err != nil {
		t.Fatalf("tail with NaN cost failed to marshal: %v", err)
	}
}

// --- HTTP endpoints ---

func liveHandler(t *testing.T) (http.Handler, *RunRegistry, *Bus) {
	t.Helper()
	reg := NewRegistry()
	rr := NewRunRegistry(reg)
	bus := NewBus(reg)
	return Handler(reg, rr, bus, nil), rr, bus
}

func TestHTTPRunsEndpoints(t *testing.T) {
	h, rr, _ := liveHandler(t)
	srv := httptest.NewServer(h)
	defer srv.Close()

	rr.Emit(Event{Type: EventIteration, Trace: "s1", Iter: 0, Cost: 2, TimeNS: 10})
	rr.Emit(Event{Type: EventIteration, Trace: "s1", Iter: 1, Cost: 1, TimeNS: 20})

	var list struct{ Runs []RunState }
	getJSON(t, srv.URL+"/runs", &list)
	if len(list.Runs) != 1 || list.Runs[0].ID != "s1" || list.Runs[0].Iter != 1 {
		t.Fatalf("/runs = %+v", list.Runs)
	}

	var detail struct {
		Run        RunState
		Iterations []RunIterPoint
	}
	getJSON(t, srv.URL+"/runs/s1", &detail)
	if detail.Run.Cost != 1 || len(detail.Iterations) != 2 {
		t.Fatalf("/runs/s1 = %+v", detail)
	}

	if resp, err := http.Get(srv.URL + "/runs/nope"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/runs/nope: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	var hz struct {
		Status     string  `json:"status"`
		Goroutines int     `json:"goroutines"`
		Uptime     float64 `json:"uptime_s"`
	}
	getJSON(t, srv.URL+"/healthz", &hz)
	if hz.Status != "ok" || hz.Goroutines <= 0 {
		t.Fatalf("/healthz = %+v", hz)
	}
}

func TestHTTPRunsDisabled(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(Handler(reg, nil, nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/runs with nil registry: %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/runs/s1/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("SSE with nil bus: %d", resp.StatusCode)
	}
}

// TestHTTPSSEStream drives the live stream end to end: subscribe over
// HTTP, emit events on the bus, assert the matching-run events (and
// only those, honoring the ?types= filter) arrive as SSE frames.
func TestHTTPSSEStream(t *testing.T) {
	h, _, bus := liveHandler(t)
	srv := httptest.NewServer(h)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/runs/s1/events?types=iteration,health", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	frames := make(chan sseFrame, 16)
	go readSSE(resp.Body, frames)

	if f := <-frames; f.event != "hello" || !strings.Contains(f.data, `"run":"s1"`) {
		t.Fatalf("first frame = %+v, want hello", f)
	}

	// Wait for the subscriber to attach before emitting.
	deadline := time.Now().Add(2 * time.Second)
	for bus.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE subscriber never attached")
		}
		time.Sleep(time.Millisecond)
	}

	bus.Emit(Event{Type: EventIteration, Trace: "s2", Iter: 7, Cost: 3})  // other run: filtered
	bus.Emit(Event{Type: EventSpan, Trace: "s1", Name: "evaluate"})       // type-filtered
	bus.Emit(Event{Type: EventIteration, Trace: "s1", Iter: 4, Cost: 2})  // delivered
	bus.Emit(Event{Type: EventHealth, Trace: "s1.t2", Iter: 5, Msg: "x"}) // tile sub-run: delivered

	f := <-frames
	if f.event != "iteration" || !strings.Contains(f.data, `"iter":4`) {
		t.Fatalf("frame = %+v, want s1 iteration 4", f)
	}
	f = <-frames
	if f.event != "health" || !strings.Contains(f.data, `"trace":"s1.t2"`) {
		t.Fatalf("frame = %+v, want s1.t2 health", f)
	}
	select {
	case f := <-frames:
		t.Fatalf("unexpected extra frame: %+v", f)
	case <-time.After(50 * time.Millisecond):
	}
}

type sseFrame struct{ event, data string }

// readSSE parses "event:"/"data:" frame pairs from an SSE body.
func readSSE(r io.Reader, out chan<- sseFrame) {
	sc := bufio.NewScanner(r)
	var f sseFrame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			f.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			f.data = strings.TrimPrefix(line, "data: ")
		case line == "" && f.event != "":
			out <- f
			f = sseFrame{}
		}
	}
	close(out)
}

// TestServerShutdownClosesSSE pins the satellite contract: Shutdown
// must end active SSE streams and return without hanging.
func TestServerShutdownClosesSSE(t *testing.T) {
	reg := NewRegistry()
	rr := NewRunRegistry(reg)
	bus := NewBus(reg)
	srv, err := Serve("127.0.0.1:0", reg, rr, bus, nil)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + srv.Addr() + "/runs/s1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := make(chan sseFrame, 4)
	go readSSE(resp.Body, frames)
	if f := <-frames; f.event != "hello" {
		t.Fatalf("first frame = %+v", f)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The stream must have ended (readSSE closes the channel on EOF).
	select {
	case _, open := <-frames:
		if open {
			// Drain any frame that raced the shutdown; the channel must
			// close promptly afterwards.
			for range frames {
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SSE stream still open after Shutdown")
	}
	if err := srv.Err(); err != nil {
		t.Fatalf("serve error after orderly shutdown: %v", err)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
