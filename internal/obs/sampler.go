package obs

import (
	"runtime"
	"sync"
	"time"
)

// StartRuntimeSampler periodically samples Go runtime health into reg
// (nil means the Default registry) under the runtime.* gauges:
//
//	runtime.goroutines       live goroutine count
//	runtime.heap_alloc       bytes of live heap objects
//	runtime.heap_sys         bytes of heap obtained from the OS
//	runtime.heap_objects     live object count
//	runtime.gc_num           completed GC cycles
//	runtime.gc_pause_total_ns cumulative stop-the-world pause
//
// Together with the always-on pool/plan-cache gauges this gives the
// /metrics and /runs consumers a process-health feed during long runs.
// It samples once immediately, then every interval (≤ 0 selects 5s).
// The returned stop function halts the sampler and is idempotent.
func StartRuntimeSampler(reg *Registry, every time.Duration) (stop func()) {
	if reg == nil {
		reg = Default
	}
	if every <= 0 {
		every = 5 * time.Second
	}
	goroutines := reg.Gauge("runtime.goroutines")
	heapAlloc := reg.Gauge("runtime.heap_alloc")
	heapSys := reg.Gauge("runtime.heap_sys")
	heapObjects := reg.Gauge("runtime.heap_objects")
	gcNum := reg.Gauge("runtime.gc_num")
	gcPause := reg.Gauge("runtime.gc_pause_total_ns")

	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heapAlloc.Set(int64(ms.HeapAlloc))
		heapSys.Set(int64(ms.HeapSys))
		heapObjects.Set(int64(ms.HeapObjects))
		gcNum.Set(int64(ms.NumGC))
		gcPause.Set(int64(ms.PauseTotalNs))
	}
	sample()

	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
