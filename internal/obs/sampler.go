package obs

import (
	"runtime"
	"sync"
	"time"
)

// runtimeGaugeNames are the gauges StartRuntimeSampler publishes; stop
// removes exactly this set so repeated sampler lifecycles in one
// process do not leak registry entries.
var runtimeGaugeNames = []string{
	"runtime.goroutines",
	"runtime.heap_alloc",
	"runtime.heap_sys",
	"runtime.heap_objects",
	"runtime.gc_num",
	"runtime.gc_pause_total_ns",
}

// RuntimeStats is one point-in-time sample of Go runtime health — the
// same figures the sampler publishes as gauges, in struct form for
// consumers (the flight recorder) that keep their own history.
type RuntimeStats struct {
	TimeNS         int64  `json:"time_ns"`
	Goroutines     int    `json:"goroutines"`
	HeapAlloc      uint64 `json:"heap_alloc"`
	HeapSys        uint64 `json:"heap_sys"`
	HeapObjects    uint64 `json:"heap_objects"`
	GCNum          uint32 `json:"gc_num"`
	GCPauseTotalNS uint64 `json:"gc_pause_total_ns"`
}

// SampleRuntime reads the current runtime statistics. It calls
// runtime.ReadMemStats, which briefly stops the world — suitable for
// periodic sampling, not per-iteration paths.
func SampleRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		TimeNS:         time.Now().UnixNano(),
		Goroutines:     runtime.NumGoroutine(),
		HeapAlloc:      ms.HeapAlloc,
		HeapSys:        ms.HeapSys,
		HeapObjects:    ms.HeapObjects,
		GCNum:          ms.NumGC,
		GCPauseTotalNS: ms.PauseTotalNs,
	}
}

// StartRuntimeSampler periodically samples Go runtime health into reg
// (nil means the Default registry) under the runtime.* gauges:
//
//	runtime.goroutines       live goroutine count
//	runtime.heap_alloc       bytes of live heap objects
//	runtime.heap_sys         bytes of heap obtained from the OS
//	runtime.heap_objects     live object count
//	runtime.gc_num           completed GC cycles
//	runtime.gc_pause_total_ns cumulative stop-the-world pause
//
// Together with the always-on pool/plan-cache gauges this gives the
// /metrics and /runs consumers a process-health feed during long runs.
// It samples once immediately, then every interval (≤ 0 selects 5s).
// The returned stop function halts the sampler, unregisters the
// runtime.* gauges from reg (so Serve/Shutdown cycles don't leak or
// keep exporting stale values), and is idempotent.
func StartRuntimeSampler(reg *Registry, every time.Duration) (stop func()) {
	if reg == nil {
		reg = Default
	}
	if every <= 0 {
		every = 5 * time.Second
	}
	goroutines := reg.Gauge("runtime.goroutines")
	heapAlloc := reg.Gauge("runtime.heap_alloc")
	heapSys := reg.Gauge("runtime.heap_sys")
	heapObjects := reg.Gauge("runtime.heap_objects")
	gcNum := reg.Gauge("runtime.gc_num")
	gcPause := reg.Gauge("runtime.gc_pause_total_ns")

	sample := func() {
		st := SampleRuntime()
		goroutines.Set(int64(st.Goroutines))
		heapAlloc.Set(int64(st.HeapAlloc))
		heapSys.Set(int64(st.HeapSys))
		heapObjects.Set(int64(st.HeapObjects))
		gcNum.Set(int64(st.GCNum))
		gcPause.Set(int64(st.GCPauseTotalNS))
	}
	sample()

	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-done:
				return
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(done)
			for _, name := range runtimeGaugeNames {
				reg.Remove(name)
			}
		})
	}
}
