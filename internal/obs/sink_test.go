package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"sync"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
	// 10 samples uniform in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("p50 = %g, want 10 (bucket boundary)", got)
	}
	// p25 lands mid-first-bucket: rank 5 of 10 in (0,10] → 5.
	if got := h.Quantile(0.25); got != 5 {
		t.Fatalf("p25 = %g, want 5", got)
	}
	if got := h.Quantile(1); got != 20 {
		t.Fatalf("p100 = %g, want 20", got)
	}
	// Overflow samples clamp to the largest finite bound.
	h.Observe(1e9)
	if got := h.Quantile(1); got != 40 {
		t.Fatalf("p100 with overflow = %g, want 40", got)
	}
	if got := h.Quantile(-0.1); got != 0 {
		t.Fatalf("out-of-range q = %g, want 0", got)
	}
}

func TestSnapshotIncludesQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{100, 200})
	for i := 0; i < 4; i++ {
		h.Observe(50)
	}
	snap := r.Snapshot()
	for _, k := range []string{"lat.p50", "lat.p95", "lat.p99"} {
		v, ok := snap[k]
		if !ok {
			t.Fatalf("snapshot missing %q: %v", k, snap)
		}
		if v <= 0 || v > 100 {
			t.Fatalf("snapshot[%q] = %g, want in (0,100]", k, v)
		}
	}
}

func TestEventNonFiniteRoundTrip(t *testing.T) {
	e := Event{
		Type: EventHealth, Trace: "s1", Iter: 3, Msg: HealthNonFiniteCost,
		Cost: math.NaN(), GradNorm: math.Inf(1), TimeStep: math.Inf(-1), CostPVB: 2.5,
	}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatalf("marshal with NaN/Inf failed: %v", err)
	}
	var got Event
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.Cost) || !math.IsInf(got.GradNorm, 1) || !math.IsInf(got.TimeStep, -1) {
		t.Fatalf("round trip lost non-finite values: %+v", got)
	}
	if got.CostPVB != 2.5 || got.Msg != HealthNonFiniteCost || got.Iter != 3 {
		t.Fatalf("round trip lost finite fields: %+v", got)
	}
	// A NaN-carrying event must survive the JSONL sink, not be dropped.
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(e)
	if err := s.Flush(); err != nil {
		t.Fatalf("sink flush after NaN event: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"cost":"NaN"`)) {
		t.Fatalf("NaN not encoded: %s", buf.String())
	}
}

func TestEventTiledFieldsRoundTrip(t *testing.T) {
	events := []Event{
		{Type: EventTileStart, Trace: "job", Tile: 3, Pass: 2, Name: "{0 0 512 512}"},
		{Type: EventTileDone, Trace: "job", Tile: 3, Pass: 2, Iter: 7, Hit: true, DurNS: 42},
		{Type: EventStitchPass, Trace: "job", Pass: 1, N: 4, Seam: 0.0375, Hit: false, DurNS: 99},
	}
	for _, e := range events {
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		var got Event
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got.Tile != e.Tile || got.Pass != e.Pass || got.Seam != e.Seam ||
			got.N != e.N || got.Hit != e.Hit || got.DurNS != e.DurNS || got.Iter != e.Iter {
			t.Fatalf("round trip %s: got %+v, want %+v", e.Type, got, e)
		}
		if got.String() == "" {
			t.Fatalf("%s has no String rendering", e.Type)
		}
	}
	// Pass 0 (initial sweep) must be omitted from the wire form, while
	// tile ordinals (1-based) always survive.
	b, _ := json.Marshal(Event{Type: EventTileStart, Tile: 1, Pass: 0})
	if bytes.Contains(b, []byte(`"pass"`)) {
		t.Fatalf("pass 0 not omitted: %s", b)
	}
	if !bytes.Contains(b, []byte(`"tile":1`)) {
		t.Fatalf("tile ordinal missing: %s", b)
	}
}

// errorSink is a Flusher whose Flush always fails.
type errorSink struct{ err error }

func (s errorSink) Emit(Event)   {}
func (s errorSink) Flush() error { return s.err }

func TestTeeSinkFlushErrorAggregation(t *testing.T) {
	err1 := errors.New("first failure")
	err2 := errors.New("second failure")
	var c CollectorSink
	tee := TeeSink{nil, &c, errorSink{err1}, errorSink{err2}}
	tee.Emit(Event{Type: EventSpan, Name: "job"})
	if c.Len() != 1 {
		t.Fatalf("collector events = %d, want 1 (nil member must be skipped)", c.Len())
	}
	// Flush visits every member and reports the first error.
	if err := tee.Flush(); err != err1 {
		t.Fatalf("tee flush error = %v, want %v", err, err1)
	}
	// All-healthy tee flushes clean.
	if err := (TeeSink{&c, nil}).Flush(); err != nil {
		t.Fatalf("clean tee flush = %v", err)
	}
}

func TestCollectorSinkConcurrent(t *testing.T) {
	var c CollectorSink
	const workers, per = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers racing the writers: Events must always return
	// a consistent copy.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range c.Events() {
					if e.Type != EventIteration {
						t.Errorf("torn event: %+v", e)
						return
					}
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < per; i++ {
				c.Emit(Event{Type: EventIteration, Iter: i, N: w})
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if c.Len() != workers*per {
		t.Fatalf("events = %d, want %d", c.Len(), workers*per)
	}
	// The copy is detached: mutating it must not corrupt the sink.
	snap := c.Events()
	snap[0].Type = "mutated"
	if c.Events()[0].Type != EventIteration {
		t.Fatal("Events returned an aliased slice")
	}
}
