package obs

import "math"

// SlopeAccum incrementally computes the least-squares slope of ln(cost)
// against the sample index — the convergence-rate statistic
// obs/analyze reports post-mortem — one Observe per iteration, O(1)
// memory. Non-positive or non-finite costs are skipped but still
// advance the index, matching the batch computation exactly: feeding a
// series point-by-point yields the same slope analyze computes over the
// whole series.
//
// The zero value is ready to use. Not concurrency-safe; callers
// (RunRegistry) serialize access.
type SlopeAccum struct {
	i                        int // next sample index, advances on skips too
	n                        float64
	sumX, sumY, sumXX, sumXY float64
}

// Observe appends one cost sample.
func (a *SlopeAccum) Observe(cost float64) {
	i := a.i
	a.i++
	if cost <= 0 || math.IsNaN(cost) || math.IsInf(cost, 0) {
		return
	}
	x, y := float64(i), math.Log(cost)
	a.n++
	a.sumX += x
	a.sumY += y
	a.sumXX += x * x
	a.sumXY += x * y
}

// Slope returns the current least-squares slope (ln-cost per
// iteration), or 0 with fewer than two usable samples.
func (a *SlopeAccum) Slope() float64 {
	if a.n < 2 {
		return 0
	}
	den := a.n*a.sumXX - a.sumX*a.sumX
	if den == 0 {
		return 0
	}
	return (a.n*a.sumXY - a.sumX*a.sumY) / den
}

// Reset clears the accumulator to its zero state.
func (a *SlopeAccum) Reset() { *a = SlopeAccum{} }
