package optics

import (
	"fmt"

	"lsopc/internal/grid"
)

// Coarse-grid kernel banks for the multi-resolution schedule.
//
// Downsampling the simulation grid by an integer factor k (N/k pixels at
// k·pitch nm) leaves the frequency-bin width 1/(N·pitch) unchanged — the
// physical field of view is the same, only the Nyquist frequency drops.
// The coarse grid's spectrum is therefore exactly the central band of
// the fine grid's spectrum, and the coarse SOCS kernel bank is exactly
// the central truncation of the fine bank's sparse boxes: no
// re-synthesis, no resampling, just a window copy. Because the pupil
// support (1+σ_out)·NA/λ is far inside Nyquist at practical resolutions,
// moderate factors lose only the apodisation tail bins that the clamp
// N_c/2−1 cuts off.

// Coarse returns the optics configuration of the factor×-downsampled
// grid: GridSize/factor pixels at PixelNM·factor pitch. factor must be a
// power of two dividing the grid, and the coarse configuration must
// itself validate (the pupil must still be resolvable).
func (c Config) Coarse(factor int) (Config, error) {
	if factor < 1 {
		return Config{}, fmt.Errorf("optics: coarsening factor must be ≥ 1, got %d", factor)
	}
	if !grid.IsPow2(factor) {
		return Config{}, fmt.Errorf("optics: coarsening factor %d is not a power of two", factor)
	}
	if c.GridSize%factor != 0 {
		return Config{}, fmt.Errorf("optics: factor %d does not divide grid %d", factor, c.GridSize)
	}
	cc := c
	cc.GridSize = c.GridSize / factor
	cc.PixelNM = c.PixelNM * float64(factor)
	if err := cc.Validate(); err != nil {
		return Config{}, fmt.Errorf("optics: coarse level invalid: %w", err)
	}
	return cc, nil
}

// Truncate returns the kernel band-limited to box half-width r: the
// central (2r+1)² window of the spectrum box. r ≥ R returns the kernel
// unchanged (its support already fits).
func (k Kernel) Truncate(r int) Kernel {
	if r >= k.R {
		return k
	}
	if r < 0 {
		panic(fmt.Sprintf("optics: negative truncation radius %d", r))
	}
	side := 2*r + 1
	box := grid.NewCField(side, side)
	off := k.R - r
	fineSide := k.boxSide()
	for bv := 0; bv < side; bv++ {
		srcRow := k.Box.Data[(bv+off)*fineSide+off:]
		copy(box.Data[bv*side:(bv+1)*side], srcRow[:side])
	}
	return Kernel{Weight: k.Weight, R: r, Box: box}
}

// Coarse derives the kernel bank of the factor×-downsampled grid by
// spectral truncation. Because the bin width is invariant under
// coarsening, the result is identical to synthesising a fresh bank at
// the coarse configuration — NewBank(coarseCfg) computes the same pupil
// values on the same bins — but costs only window copies.
func (b *Bank) Coarse(factor int) (*Bank, error) {
	if factor == 1 {
		return b, nil
	}
	cc, err := b.Cfg.Coarse(factor)
	if err != nil {
		return nil, err
	}
	r := cc.boxRadius()
	cb := &Bank{
		Cfg:       cc,
		DefocusNM: b.DefocusNM,
		Kernels:   make([]Kernel, len(b.Kernels)),
	}
	for i, k := range b.Kernels {
		cb.Kernels[i] = k.Truncate(r)
	}
	// Truncation is linear, so the fused Eq. 17 kernel truncates directly.
	cb.Combined = b.Combined.Truncate(r)
	return cb, nil
}
