package optics

import (
	"fmt"

	"lsopc/internal/grid"
)

// Kernel is one SOCS term: a weight μ_k and the kernel's spectrum. The
// spectrum is band-limited to a small disk around DC (the shifted pupil
// never exceeds (1+σ_out)·NA/λ), so it is stored sparsely as a
// (2R+1)×(2R+1) box of frequency bins centred on DC: box bin (u, v) with
// u, v ∈ [−R, R] corresponds to wrapped grid bin ((u+N) mod N,
// (v+N) mod N). At contest scale this cuts kernel storage from ~67 MB to
// ~45 KB per kernel and shrinks the spectral multiplies accordingly.
type Kernel struct {
	Weight float64
	R      int          // box half-width in frequency bins
	Box    *grid.CField // (2R+1)×(2R+1) spectrum values
}

// boxSide returns the box edge length.
func (k Kernel) boxSide() int { return 2*k.R + 1 }

// gridIndex maps signed frequency bin (u, v) to the wrapped index on an
// n×n grid.
func gridIndex(u, v, n int) int {
	if u < 0 {
		u += n
	}
	if v < 0 {
		v += n
	}
	return v*n + u
}

// checkGrid panics unless the kernel box fits the n×n target grid.
func (k Kernel) checkGrid(n int) {
	if k.boxSide() > n {
		panic(fmt.Sprintf("optics: kernel box %d exceeds grid %d", k.boxSide(), n))
	}
}

// MulInto sets dst = src ⊙ spectrum(h_k) on the full grid: the product
// is written inside the kernel's support and dst is zeroed elsewhere.
// This realises the frequency-domain half of h_k ⊗ M.
func (k Kernel) MulInto(dst, src *grid.CField) {
	if !dst.SameShape(src) {
		panic("optics: MulInto shape mismatch")
	}
	n := dst.W
	k.checkGrid(n)
	dst.Zero()
	side := k.boxSide()
	for bv := 0; bv < side; bv++ {
		v := bv - k.R
		for bu := 0; bu < side; bu++ {
			c := k.Box.Data[bv*side+bu]
			if c == 0 {
				continue
			}
			gi := gridIndex(bu-k.R, v, n)
			dst.Data[gi] = src.Data[gi] * c
		}
	}
}

// MulIntoBand sets dst = src ⊙ spectrum(h_k) like MulInto, but touches
// only the wrapped row band |v| ≤ R: band rows are zeroed and the box
// product written into them, while rows outside the band are left with
// whatever stale data they held. It pairs with the band-limited inverse
// transform (fft.BatchPlan2D.BatchInverseBanded), which never reads
// outside the band and treats it as exactly zero — together they are
// bit-identical to MulInto followed by a full inverse, at a fraction of
// the memory traffic.
func (k Kernel) MulIntoBand(dst, src *grid.CField) {
	if !dst.SameShape(src) {
		panic("optics: MulIntoBand shape mismatch")
	}
	n := dst.W
	k.checkGrid(n)
	side := k.boxSide()
	for bv := 0; bv < side; bv++ {
		v := bv - k.R
		row := dst.Data[gridIndex(0, v, n) : gridIndex(0, v, n)+n]
		for i := range row {
			row[i] = 0
		}
		for bu := 0; bu < side; bu++ {
			c := k.Box.Data[bv*side+bu]
			if c == 0 {
				continue
			}
			gi := gridIndex(bu-k.R, v, n)
			dst.Data[gi] = src.Data[gi] * c
		}
	}
}

// AccumFlipMul accumulates dst += w · src ⊙ spectrum(flip(h_k)), the
// adjoint ("h†") multiply of the ILT gradient (Eq. 11). The flipped
// spectrum's support is the mirrored box, handled by index reflection.
func (k Kernel) AccumFlipMul(dst, src *grid.CField, w complex128) {
	if !dst.SameShape(src) {
		panic("optics: AccumFlipMul shape mismatch")
	}
	n := dst.W
	k.checkGrid(n)
	side := k.boxSide()
	for bv := 0; bv < side; bv++ {
		v := bv - k.R
		for bu := 0; bu < side; bu++ {
			c := k.Box.Data[bv*side+bu]
			if c == 0 {
				continue
			}
			// spectrum(flip(h))(−u,−v) = spectrum(h)(u,v).
			gi := gridIndex(-(bu - k.R), -v, n)
			dst.Data[gi] += w * src.Data[gi] * c
		}
	}
}

// Dense expands the kernel spectrum onto a full n×n grid (wrapped FFT
// layout, DC at index 0) — for tests and spatial-domain inspection.
func (k Kernel) Dense(n int) *grid.CField {
	k.checkGrid(n)
	out := grid.NewCField(n, n)
	side := k.boxSide()
	for bv := 0; bv < side; bv++ {
		v := bv - k.R
		for bu := 0; bu < side; bu++ {
			out.Data[gridIndex(bu-k.R, v, n)] = k.Box.Data[bv*side+bu]
		}
	}
	return out
}

// DenseFlip expands the adjoint kernel spectrum spectrum(flip(h_k)).
func (k Kernel) DenseFlip(n int) *grid.CField {
	dense := k.Dense(n)
	flip := grid.NewCField(n, n)
	flip.FlipInto(dense)
	return flip
}
