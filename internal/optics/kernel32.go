package optics

import "lsopc/internal/grid"

// Float32 twins of the band-limited spectral multiplies. The kernel
// coefficients and the mask spectrum stay complex128 — precision is
// dropped only on the per-kernel field batches, at the single point
// where each value enters (MulIntoBand32) or leaves (AccumFlipMul32) the
// 32-bit domain. Each product is therefore computed in float64 and
// rounded once, which keeps the float32 path's error at the rounding of
// the transform itself rather than compounding through the multiplies.

// MulIntoBand32 is MulIntoBand with a complex64 destination: dst =
// round32(src ⊙ spectrum(h_k)) on the wrapped row band |v| ≤ R, rows
// outside the band left untouched. It pairs with
// fft.BatchPlan2D32.BatchInverseBanded.
func (k Kernel) MulIntoBand32(dst *grid.CField32, src *grid.CField) {
	if dst.W != src.W || dst.H != src.H {
		panic("optics: MulIntoBand32 shape mismatch")
	}
	n := dst.W
	k.checkGrid(n)
	side := k.boxSide()
	for bv := 0; bv < side; bv++ {
		v := bv - k.R
		row := dst.Data[gridIndex(0, v, n) : gridIndex(0, v, n)+n]
		for i := range row {
			row[i] = 0
		}
		for bu := 0; bu < side; bu++ {
			c := k.Box.Data[bv*side+bu]
			if c == 0 {
				continue
			}
			gi := gridIndex(bu-k.R, v, n)
			p := src.Data[gi] * c
			dst.Data[gi] = complex(float32(real(p)), float32(imag(p)))
		}
	}
}

// AccumFlipMul32 is AccumFlipMul with a complex64 source: dst +=
// w · widen(src) ⊙ spectrum(flip(h_k)), accumulating the gradient in
// float64.
func (k Kernel) AccumFlipMul32(dst *grid.CField, src *grid.CField32, w complex128) {
	if dst.W != src.W || dst.H != src.H {
		panic("optics: AccumFlipMul32 shape mismatch")
	}
	n := dst.W
	k.checkGrid(n)
	side := k.boxSide()
	for bv := 0; bv < side; bv++ {
		v := bv - k.R
		for bu := 0; bu < side; bu++ {
			c := k.Box.Data[bv*side+bu]
			if c == 0 {
				continue
			}
			gi := gridIndex(-(bu - k.R), -v, n)
			s := src.Data[gi]
			dst.Data[gi] += w * complex(float64(real(s)), float64(imag(s))) * c
		}
	}
}
