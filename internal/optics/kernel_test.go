package optics

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"lsopc/internal/engine"
	"lsopc/internal/grid"
)

func randSpec(n int, seed int64) *grid.CField {
	rng := rand.New(rand.NewSource(seed))
	c := grid.NewCField(n, n)
	for i := range c.Data {
		c.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return c
}

// TestSparseMulMatchesDense pins the sparse kernel representation to the
// dense reference: MulInto must equal the full-grid Hadamard product
// with the dense expansion.
func TestSparseMulMatchesDense(t *testing.T) {
	const n = 64
	cfg := testConfig(n, 5)
	bank, err := NewBank(cfg, 25, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	src := randSpec(n, 9)
	for ki, k := range bank.Kernels {
		sparse := grid.NewCField(n, n)
		k.MulInto(sparse, src)
		dense := grid.NewCField(n, n)
		dense.Mul(src, k.Dense(n))
		if !sparse.Equal(dense, 1e-12) {
			t.Fatalf("kernel %d: sparse multiply differs from dense", ki)
		}
	}
}

// TestSparseAccumFlipMatchesDense pins the adjoint multiply to the dense
// flipped-spectrum reference.
func TestSparseAccumFlipMatchesDense(t *testing.T) {
	const n = 64
	cfg := testConfig(n, 4)
	bank, err := NewBank(cfg, 25, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	src := randSpec(n, 10)
	for ki, k := range bank.Kernels {
		sparse := randSpec(n, 11) // pre-filled accumulator
		dense := sparse.Clone()

		k.AccumFlipMul(sparse, src, 0.37i)

		prod := grid.NewCField(n, n)
		prod.Mul(src, k.DenseFlip(n))
		dense.AddScaled(prod, 0.37i)

		if !sparse.Equal(dense, 1e-12) {
			t.Fatalf("kernel %d: sparse adjoint multiply differs from dense", ki)
		}
	}
}

func TestDenseDoubleFlipIdentity(t *testing.T) {
	cfg := testConfig(64, 3)
	bank, err := NewBank(cfg, 0, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	k := bank.Kernels[0]
	a := k.Dense(64)
	flip := k.DenseFlip(64)
	back := grid.NewCField(64, 64)
	back.FlipInto(flip)
	if !back.Equal(a, 0) {
		t.Fatal("double flip must restore the spectrum")
	}
}

func TestKernelBoxFitsRadius(t *testing.T) {
	cfg := testConfig(128, 4)
	bank, err := NewBank(cfg, 0, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	for ki, k := range bank.Kernels {
		if k.Box.W != 2*k.R+1 || k.Box.H != 2*k.R+1 {
			t.Fatalf("kernel %d: box %dx%d does not match R=%d", ki, k.Box.W, k.Box.H, k.R)
		}
		// Energy must be concentrated strictly inside the box rim (the
		// rolloff margin rows should be zero).
		side := 2*k.R + 1
		for i := 0; i < side; i++ {
			if cmplx.Abs(k.Box.At(i, 0)) != 0 || cmplx.Abs(k.Box.At(0, i)) != 0 {
				t.Fatalf("kernel %d: energy on box rim", ki)
			}
		}
	}
}

func TestBoxRadiusClampedToGrid(t *testing.T) {
	cfg := testConfig(16, 1)
	// The 16-px grid cannot hold the full pupil box: it must clamp.
	if r := cfg.boxRadius(); r > 16/2-1 {
		t.Fatalf("box radius %d exceeds clamp", r)
	}
}

func TestKernelRejectsOversizedGrid(t *testing.T) {
	cfg := testConfig(128, 1)
	bank, err := NewBank(cfg, 0, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	k := bank.Kernels[0]
	small := grid.NewCField(8, 8) // smaller than the kernel box
	defer func() {
		if recover() == nil {
			t.Fatal("undersized grid accepted")
		}
	}()
	k.MulInto(small, small.Clone())
}
