// Package optics synthesises the partially coherent imaging kernels that
// stand in for the ICCAD 2013 contest's proprietary SOCS kernel data.
//
// The contest distributes 24 SOCS kernels obtained by eigendecomposing
// the Hopkins transmission-cross-coefficient of a 193 nm scanner. We do
// not have that data, so we build a physically equivalent K-kernel model
// by Abbe source-point sampling: the partially coherent source (an
// annulus in σ coordinates) is sampled at K points; each point yields a
// coherent kernel whose spectrum is the shifted pupil function, and the
// point's source intensity becomes the kernel weight μ_k. The aerial
// image is then exactly the paper's Eq. (1):
//
//	I(x,y) = Σ_k μ_k |h_k ⊗ M|².
//
// Like the contest model this gives a band-limited quadratic imaging
// operator with a dominant kernel and decaying higher-order terms; the
// optimizer never sees anything but {μ_k, spectrum(h_k)} either way.
//
// Defocus is modelled as the standard propagation phase
// exp(i·2πδ(√((n/λ)² − |f|²) − n/λ)) across the pupil, with n the
// immersion-medium index, producing the second kernel bank used for the
// inner process-window corner (paper §IV: defocus range ±25 nm).
package optics

import (
	"fmt"
	"math"
	"math/cmplx"

	"lsopc/internal/engine"
	"lsopc/internal/fft"
	"lsopc/internal/grid"
)

// Config describes the optical system and simulation grid.
type Config struct {
	WavelengthNM float64 // source wavelength λ (193 for ArF)
	NA           float64 // numerical aperture (1.35 immersion)
	MediumIndex  float64 // refractive index of the immersion medium (1.44)
	SigmaIn      float64 // annular source inner radius (σ units)
	SigmaOut     float64 // annular source outer radius (σ units)
	GridSize     int     // simulation grid edge in pixels (power of two)
	PixelNM      float64 // pixel pitch in nm
	Kernels      int     // number of SOCS kernels K (contest uses 24)
}

// Default returns the configuration used throughout the paper's
// experiments: the ICCAD 2013 193 nm immersion system with 24 kernels.
// gridSize and pixelNM select the simulation resolution (2048 px at
// 1 nm/px reproduces the contest scale; smaller grids trade accuracy
// for speed).
func Default(gridSize int, pixelNM float64) Config {
	return Config{
		WavelengthNM: 193,
		NA:           1.35,
		MediumIndex:  1.44,
		SigmaIn:      0.5,
		SigmaOut:     0.8,
		GridSize:     gridSize,
		PixelNM:      pixelNM,
		Kernels:      24,
	}
}

// Validate checks the configuration for physical and numerical sanity.
func (c Config) Validate() error {
	switch {
	case c.WavelengthNM <= 0:
		return fmt.Errorf("optics: wavelength must be positive, got %g", c.WavelengthNM)
	case c.NA <= 0:
		return fmt.Errorf("optics: NA must be positive, got %g", c.NA)
	case c.MediumIndex < 1:
		return fmt.Errorf("optics: medium index must be ≥ 1, got %g", c.MediumIndex)
	case c.NA >= c.MediumIndex:
		return fmt.Errorf("optics: NA %g must be below medium index %g", c.NA, c.MediumIndex)
	case c.SigmaIn < 0 || c.SigmaOut <= c.SigmaIn || c.SigmaOut > 1:
		return fmt.Errorf("optics: need 0 ≤ σin < σout ≤ 1, got [%g,%g]", c.SigmaIn, c.SigmaOut)
	case !grid.IsPow2(c.GridSize):
		return fmt.Errorf("optics: grid size %d is not a power of two", c.GridSize)
	case c.PixelNM <= 0:
		return fmt.Errorf("optics: pixel pitch must be positive, got %g", c.PixelNM)
	case c.Kernels < 1:
		return fmt.Errorf("optics: kernel count must be ≥ 1, got %d", c.Kernels)
	}
	// The pupil must be resolvable on the frequency grid.
	cutoffBins := c.NA / c.WavelengthNM * float64(c.GridSize) * c.PixelNM
	if cutoffBins < 2 {
		return fmt.Errorf("optics: pupil cutoff spans %.2f frequency bins; grid too small or pixels too coarse", cutoffBins)
	}
	return nil
}

// CutoffFreq returns the coherent pupil cutoff NA/λ in cycles/nm.
func (c Config) CutoffFreq() float64 { return c.NA / c.WavelengthNM }

// Bank is a complete kernel set for one process condition (focus value).
type Bank struct {
	Cfg       Config
	DefocusNM float64
	Kernels   []Kernel
	// Combined is the Eq. 17 fused kernel Σ μ_k·spectrum(h_k) (weight 1),
	// used by the fast approximate forward path.
	Combined Kernel
}

// sourcePoint is one Abbe sample of the illumination source.
type sourcePoint struct {
	sx, sy float64 // source direction in σ units
	weight float64
}

// sampleSource places exactly k points over the annulus [σin, σout]
// using a Vogel (golden-angle) spiral, which is uniform in source area
// and deterministic. Weights are uniform and normalised so Σ μ_k = 1,
// making a fully open mask image to unit intensity.
func sampleSource(sigmaIn, sigmaOut float64, k int) []sourcePoint {
	const goldenAngle = 2.399963229728653 // π(3−√5)
	pts := make([]sourcePoint, k)
	w := 1 / float64(k)
	for i := 0; i < k; i++ {
		t := (float64(i) + 0.5) / float64(k)
		r := math.Sqrt(sigmaIn*sigmaIn + t*(sigmaOut*sigmaOut-sigmaIn*sigmaIn))
		ang := float64(i) * goldenAngle
		pts[i] = sourcePoint{
			sx:     r * math.Cos(ang),
			sy:     r * math.Sin(ang),
			weight: w,
		}
	}
	return pts
}

// NewBank builds the kernel bank for the given defocus (0 for the
// nominal bank, e.g. 25 for the defocused inner-corner bank). The
// provided engine parallelises kernel construction.
func NewBank(cfg Config, defocusNM float64, eng *engine.Engine) (*Bank, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if eng == nil {
		eng = engine.CPU()
	}
	pts := sampleSource(cfg.SigmaIn, cfg.SigmaOut, cfg.Kernels)
	b := &Bank{
		Cfg:       cfg,
		DefocusNM: defocusNM,
		Kernels:   make([]Kernel, len(pts)),
	}
	r := cfg.boxRadius()
	eng.For(len(pts), func(k int) {
		box := pupilBox(cfg, pts[k].sx, pts[k].sy, defocusNM, r)
		b.Kernels[k] = Kernel{Weight: pts[k].weight, R: r, Box: box}
	})
	side := 2*r + 1
	combined := grid.NewCField(side, side)
	for _, k := range b.Kernels {
		combined.AddScaled(k.Box, complex(k.Weight, 0))
	}
	b.Combined = Kernel{Weight: 1, R: r, Box: combined}
	return b, nil
}

// boxRadius returns the sparse-spectrum half-width: enough bins to cover
// the pupil shifted to the outermost source point plus the apodisation
// rolloff, clamped so the box fits the grid.
func (c Config) boxRadius() int {
	binWidth := 1 / (float64(c.GridSize) * c.PixelNM)
	r := int(math.Ceil((1+c.SigmaOut)*c.CutoffFreq()/binWidth)) + 2
	if max := c.GridSize/2 - 1; r > max {
		r = max
	}
	return r
}

// freqAt returns the frequency (cycles/nm) of FFT bin i on an n-point
// grid with the given pitch, using the standard wrapped layout.
func freqAt(i, n int, pitch float64) float64 {
	if i > n/2 {
		i -= n
	}
	return float64(i) / (float64(n) * pitch)
}

// pupilBox builds the coherent kernel spectrum for one source point —
// a circular pupil of radius NA/λ shifted by the source direction,
// carrying the defocus propagation phase — restricted to the sparse
// (2r+1)² box around DC. A raised-cosine edge (one frequency bin wide)
// apodises the hard cutoff to keep the spatial kernel well localised.
func pupilBox(cfg Config, sx, sy float64, defocusNM float64, r int) *grid.CField {
	side := 2*r + 1
	box := grid.NewCField(side, side)
	cut := cfg.CutoffFreq()
	nOverLambda := cfg.MediumIndex / cfg.WavelengthNM
	binWidth := 1 / (float64(cfg.GridSize) * cfg.PixelNM)
	// Source shift in cycles/nm: σ coordinates scale the pupil radius.
	shiftX := sx * cut
	shiftY := sy * cut
	for bv := 0; bv < side; bv++ {
		fy := float64(bv-r)*binWidth + shiftY
		for bu := 0; bu < side; bu++ {
			fx := float64(bu-r)*binWidth + shiftX
			fr := math.Hypot(fx, fy)
			if fr >= cut+binWidth {
				continue
			}
			amp := 1.0
			if fr > cut-binWidth {
				// Raised-cosine rolloff across two bins.
				t := (fr - (cut - binWidth)) / (2 * binWidth)
				amp = 0.5 * (1 + math.Cos(math.Pi*t))
			}
			var v complex128
			if defocusNM != 0 {
				arg := nOverLambda*nOverLambda - fr*fr
				if arg < 0 {
					arg = 0
				}
				phase := 2 * math.Pi * defocusNM * (math.Sqrt(arg) - nOverLambda)
				v = complex(amp, 0) * cmplx.Exp(complex(0, phase))
			} else {
				v = complex(amp, 0)
			}
			box.Set(bu, bv, v)
		}
	}
	return box
}

// SpatialKernel materialises kernel k of the bank in the spatial domain
// (centred at the origin with wraparound), mainly for inspection and
// tests.
func (b *Bank) SpatialKernel(k int, eng *engine.Engine) *grid.CField {
	h := b.Kernels[k].Dense(b.Cfg.GridSize)
	fft.NewPlan2D(h.W, h.H, eng).Inverse(h)
	return h
}

// K returns the number of kernels in the bank.
func (b *Bank) K() int { return len(b.Kernels) }

// Radius returns the spectral band half-width (in frequency bins)
// covering every kernel in the bank, the band the pruned FFT passes may
// restrict themselves to. All kernels of a bank share the same box
// radius by construction; the max is taken defensively.
func (b *Bank) Radius() int {
	r := b.Combined.R
	for _, k := range b.Kernels {
		if k.R > r {
			r = k.R
		}
	}
	return r
}

// WeightSum returns Σ μ_k (1 after normalisation).
func (b *Bank) WeightSum() float64 {
	s := 0.0
	for _, k := range b.Kernels {
		s += k.Weight
	}
	return s
}
