package optics

import (
	"math"
	"math/cmplx"
	"testing"

	"lsopc/internal/engine"
	"lsopc/internal/grid"
)

// testConfig keeps the physical field fixed at 2048 nm so the pupil
// spans the same number of frequency bins at every grid size.
func testConfig(n int, k int) Config {
	c := Default(n, 2048.0/float64(n))
	c.Kernels = k
	return c
}

func TestDefaultConfigValid(t *testing.T) {
	if err := Default(2048, 1).Validate(); err != nil {
		t.Fatalf("paper-scale config invalid: %v", err)
	}
	if err := testConfig(128, 8).Validate(); err != nil {
		t.Fatalf("test config invalid: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	base := testConfig(128, 8)
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero wavelength", func(c *Config) { c.WavelengthNM = 0 }},
		{"negative NA", func(c *Config) { c.NA = -1 }},
		{"NA above medium", func(c *Config) { c.NA = 1.5 }},
		{"medium below 1", func(c *Config) { c.MediumIndex = 0.9 }},
		{"sigma order", func(c *Config) { c.SigmaIn = 0.9; c.SigmaOut = 0.5 }},
		{"sigma above 1", func(c *Config) { c.SigmaOut = 1.2 }},
		{"non-pow2 grid", func(c *Config) { c.GridSize = 100 }},
		{"zero pixel", func(c *Config) { c.PixelNM = 0 }},
		{"zero kernels", func(c *Config) { c.Kernels = 0 }},
		{"unresolvable pupil", func(c *Config) { c.GridSize = 4; c.PixelNM = 1 }},
	}
	for _, m := range mutations {
		c := base
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: config accepted", m.name)
		}
	}
}

func TestSampleSourceCountAndAnnulus(t *testing.T) {
	for _, k := range []int{1, 2, 8, 24, 100} {
		pts := sampleSource(0.5, 0.8, k)
		if len(pts) != k {
			t.Fatalf("k=%d: got %d points", k, len(pts))
		}
		var wsum float64
		for _, p := range pts {
			r := math.Hypot(p.sx, p.sy)
			if r < 0.5-1e-9 || r > 0.8+1e-9 {
				t.Errorf("k=%d: point radius %g outside annulus", k, r)
			}
			wsum += p.weight
		}
		if math.Abs(wsum-1) > 1e-12 {
			t.Errorf("k=%d: weights sum to %g, want 1", k, wsum)
		}
	}
}

func TestNewBankBasics(t *testing.T) {
	cfg := testConfig(128, 8)
	b, err := NewBank(cfg, 0, engine.GPU())
	if err != nil {
		t.Fatal(err)
	}
	if b.K() != 8 {
		t.Fatalf("K = %d", b.K())
	}
	if math.Abs(b.WeightSum()-1) > 1e-12 {
		t.Fatalf("weight sum %g", b.WeightSum())
	}
	if b.Combined.Box == nil || b.Combined.R <= 0 {
		t.Fatal("combined kernel missing")
	}
	for i, k := range b.Kernels {
		if k.Box == nil || k.R <= 0 {
			t.Fatalf("kernel %d has no spectrum box", i)
		}
		// The dense flip expansion must be the index reversal of the
		// dense spectrum.
		want := grid.NewCField(128, 128)
		want.FlipInto(k.Dense(128))
		if !k.DenseFlip(128).Equal(want, 0) {
			t.Fatalf("kernel %d flip spectrum wrong", i)
		}
	}
}

func TestNewBankRejectsInvalidConfig(t *testing.T) {
	cfg := testConfig(128, 8)
	cfg.NA = -1
	if _, err := NewBank(cfg, 0, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestNominalKernelsAreBandLimited(t *testing.T) {
	cfg := testConfig(128, 6)
	b, err := NewBank(cfg, 0, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	// Every kernel spectrum must vanish beyond (1+σout)·cutoff and be
	// nonzero at DC (the shifted pupil always covers DC for σout < 1).
	maxF := (1 + cfg.SigmaOut) * cfg.CutoffFreq()
	for ki, k := range b.Kernels {
		spec := k.Dense(128)
		if cmplx.Abs(spec.At(0, 0)) < 0.5 {
			t.Errorf("kernel %d: DC = %v, want ≈1", ki, spec.At(0, 0))
		}
		nonzero := 0
		for y := 0; y < 128; y++ {
			fy := freqAt(y, 128, cfg.PixelNM)
			for x := 0; x < 128; x++ {
				fx := freqAt(x, 128, cfg.PixelNM)
				v := cmplx.Abs(spec.At(x, y))
				if v > 0 {
					nonzero++
					if math.Hypot(fx, fy) > maxF+2/(128*cfg.PixelNM) {
						t.Fatalf("kernel %d: energy at |f| beyond combined cutoff", ki)
					}
				}
			}
		}
		if nonzero == 0 {
			t.Fatalf("kernel %d is identically zero", ki)
		}
	}
}

func TestNominalKernelIsPurePupil(t *testing.T) {
	// At zero defocus the kernel spectrum must be real (amplitude-only
	// pupil, no phase).
	cfg := testConfig(64, 4)
	b, err := NewBank(cfg, 0, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	for ki, k := range b.Kernels {
		for _, v := range k.Box.Data {
			if imag(v) != 0 {
				t.Fatalf("kernel %d: nominal spectrum has phase %v", ki, v)
			}
		}
	}
}

func TestDefocusAddsPhaseOnly(t *testing.T) {
	cfg := testConfig(64, 4)
	nom, err := NewBank(cfg, 0, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	def, err := NewBank(cfg, 25, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	phased := 0
	for ki := range nom.Kernels {
		a := nom.Kernels[ki].Box
		b := def.Kernels[ki].Box
		for i := range a.Data {
			// Same modulus everywhere: defocus is a pure phase aberration.
			if math.Abs(cmplx.Abs(a.Data[i])-cmplx.Abs(b.Data[i])) > 1e-12 {
				t.Fatalf("kernel %d: defocus changed modulus", ki)
			}
			if cmplx.Abs(a.Data[i]-b.Data[i]) > 1e-9 && cmplx.Abs(a.Data[i]) > 0 {
				phased++
			}
		}
	}
	if phased == 0 {
		t.Fatal("25 nm defocus produced no phase change")
	}
}

func TestSpatialKernelConcentratedAtOrigin(t *testing.T) {
	cfg := testConfig(128, 4)
	b, err := NewBank(cfg, 0, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	h := b.SpatialKernel(0, engine.CPU())
	// The kernel is a (shifted-pupil) Airy-like pattern: its peak
	// modulus must be at/near the origin and the energy within a
	// quarter-grid radius must dominate.
	peak := cmplx.Abs(h.At(0, 0))
	var totalE, nearE float64
	n := h.W
	for y := 0; y < n; y++ {
		dy := y
		if dy > n/2 {
			dy -= n
		}
		for x := 0; x < n; x++ {
			dx := x
			if dx > n/2 {
				dx -= n
			}
			e := cmplx.Abs(h.At(x, y))
			totalE += e * e
			if math.Hypot(float64(dx), float64(dy)) < float64(n)/4 {
				nearE += e * e
			}
			if cmplx.Abs(h.At(x, y)) > peak+1e-12 {
				t.Fatalf("kernel peak not at origin: |h(%d,%d)| > |h(0,0)|", x, y)
			}
		}
	}
	if nearE < 0.8*totalE {
		t.Fatalf("kernel not localised: %.1f%% of energy near origin", 100*nearE/totalE)
	}
}

func TestFreqAtWrapping(t *testing.T) {
	// Standard FFT layout: bins 0..n/2 positive, then negative.
	if freqAt(0, 8, 1) != 0 {
		t.Fatal("DC bin must be zero frequency")
	}
	if freqAt(1, 8, 1) != 0.125 {
		t.Fatal("positive frequency wrong")
	}
	if freqAt(7, 8, 1) != -0.125 {
		t.Fatal("negative frequency wrong")
	}
	if freqAt(4, 8, 1) != 0.5 {
		t.Fatal("Nyquist bin wrong")
	}
	// Pitch scales frequencies down.
	if freqAt(1, 8, 2) != 0.0625 {
		t.Fatal("pitch scaling wrong")
	}
}

func TestCombinedKernelIsWeightedSum(t *testing.T) {
	cfg := testConfig(64, 5)
	b, err := NewBank(cfg, 0, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	want := grid.NewCField(64, 64)
	for _, k := range b.Kernels {
		want.AddScaled(k.Dense(64), complex(k.Weight, 0))
	}
	if !b.Combined.Dense(64).Equal(want, 1e-15) {
		t.Fatal("combined kernel is not the weighted sum (Eq. 17)")
	}
}

func TestBanksDeterministic(t *testing.T) {
	cfg := testConfig(64, 6)
	a, _ := NewBank(cfg, 25, engine.CPU())
	b, _ := NewBank(cfg, 25, engine.GPU())
	for i := range a.Kernels {
		if !a.Kernels[i].Box.Equal(b.Kernels[i].Box, 0) {
			t.Fatal("bank construction must be deterministic across engines")
		}
	}
}
