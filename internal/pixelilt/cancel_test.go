package pixelilt

import (
	"context"
	"errors"
	"testing"

	"lsopc/internal/grid"
	"lsopc/internal/litho"
	"lsopc/internal/obs"
	"lsopc/internal/solve"
)

// cancelAtSink cancels a context when the iteration event numbered
// `at` is emitted; the step completes and the driver observes the
// cancellation at the next boundary.
type cancelAtSink struct {
	at     int
	cancel context.CancelFunc
}

func (s *cancelAtSink) Emit(e obs.Event) {
	if e.Type == obs.EventIteration && e.Iter == s.at {
		s.cancel()
	}
}

func cancelBaselineRun(t *testing.T, sim *litho.Simulator, target *grid.Field, opts Options, at int) *solve.Checkpoint {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts.Sink = &cancelAtSink{at: at, cancel: cancel}
	_, err := Optimize(ctx, sim, target, opts)
	var cerr *solve.Cancelled
	if !errors.As(err, &cerr) {
		t.Fatalf("cancelled run returned %v, want *solve.Cancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
	return cerr.Checkpoint
}

func expectBaselineIdentical(t *testing.T, res, ref *Result) {
	t.Helper()
	if res.Iterations != ref.Iterations || res.CornerSims != ref.CornerSims {
		t.Fatalf("resumed run: %d iters / %d corner sims, reference %d/%d",
			res.Iterations, res.CornerSims, ref.Iterations, ref.CornerSims)
	}
	if len(res.History) != len(ref.History) {
		t.Fatalf("resumed history %d rows, reference %d", len(res.History), len(ref.History))
	}
	for i := range ref.History {
		if res.History[i] != ref.History[i] {
			t.Fatalf("history[%d] diverged after resume:\n  resumed   %+v\n  reference %+v",
				i, res.History[i], ref.History[i])
		}
	}
	if !res.Gray.Equal(ref.Gray, 0) {
		t.Fatal("resumed gray mask differs from the uninterrupted run")
	}
	if !res.Mask.Equal(ref.Mask, 0) {
		t.Fatal("resumed binary mask differs from the uninterrupted run")
	}
}

func TestBaselineCancelResumeBitIdentical(t *testing.T) {
	sim := newTestSim(t, 3)
	target := rectTarget(64, 28, 12)
	opts := DefaultOptions(MosaicExact)
	opts.MaxIter = 10

	ref, err := Optimize(context.Background(), sim, target, opts)
	if err != nil {
		t.Fatal(err)
	}

	cp := cancelBaselineRun(t, sim, target, opts, 3)
	if cp.Factor != 1 || cp.Iter != 4 {
		t.Fatalf("checkpoint at factor %d iter %d, want 1/4", cp.Factor, cp.Iter)
	}
	if cp.Method != MosaicExact.String() {
		t.Fatalf("checkpoint method %q, want %q", cp.Method, MosaicExact.String())
	}

	opts.Sink = nil
	res, err := Resume(context.Background(), sim, target, opts, cp)
	if err != nil {
		t.Fatal(err)
	}
	expectBaselineIdentical(t, res, ref)
}

func TestBaselineCancelResumeMultiRes(t *testing.T) {
	sim := newTestSim(t, 3)
	target := rectTarget(64, 28, 12)
	opts := DefaultOptions(PVOPC)
	opts.MaxIter = 12
	opts.MultiResFactor = 4
	opts.MultiResIters = 2 // levels: 16px ×2, 32px ×2, 64px ×8

	ref, err := Optimize(context.Background(), sim, target, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Global iteration 5 is the second full-resolution step (offset 4).
	cp := cancelBaselineRun(t, sim, target, opts, 5)
	if cp.Factor != 1 || cp.Iter != 2 || cp.Offset != 4 {
		t.Fatalf("checkpoint at factor %d iter %d offset %d, want 1/2/4", cp.Factor, cp.Iter, cp.Offset)
	}
	if cp.DoneIters != 4 {
		t.Fatalf("checkpoint carries %d done iterations, want 4", cp.DoneIters)
	}

	opts.Sink = nil
	res, err := Resume(context.Background(), sim, target, opts, cp)
	if err != nil {
		t.Fatal(err)
	}
	expectBaselineIdentical(t, res, ref)
}

func TestBaselineResumeRejectsForeignCheckpoint(t *testing.T) {
	sim := newTestSim(t, 3)
	target := rectTarget(64, 28, 12)
	opts := DefaultOptions(MosaicExact)
	opts.MaxIter = 8

	cp := cancelBaselineRun(t, sim, target, opts, 2)

	opts.Sink = nil
	if _, err := Resume(context.Background(), sim, target, opts, nil); err == nil {
		t.Fatal("nil checkpoint accepted")
	}
	other := opts
	other.Variant = PVOPC
	if _, err := Resume(context.Background(), sim, target, other, cp); err == nil {
		t.Fatal("checkpoint of a different variant accepted")
	}
	bad := *cp
	bad.State = map[string]*grid.Field{}
	if _, err := Resume(context.Background(), sim, target, opts, &bad); err == nil {
		t.Fatal("checkpoint without θ accepted")
	}
}
