package pixelilt

import (
	"context"

	"math"
	"testing"

	"lsopc/internal/obs"
)

// TestWatchdogAbortsNaNBaseline poisons the target with a NaN so the
// first iteration's cost is non-finite, and checks the watchdog emits a
// health event and stops the run within that iteration.
func TestWatchdogAbortsNaNBaseline(t *testing.T) {
	sim := newTestSim(t, 2)
	target := rectTarget(64, 24, 12)
	target.Set(32, 32, math.NaN())

	sink := &obs.CollectorSink{}
	opts := DefaultOptions(MosaicExact)
	opts.MaxIter = 20
	hp := obs.DefaultHealthPolicy()
	opts.Health = &hp
	opts.Sink = sink
	opts.TraceID = "nan-baseline"

	res, err := Optimize(context.Background(), sim, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted || res.AbortReason != obs.HealthNonFiniteCost {
		t.Fatalf("aborted=%v reason=%q, want abort on %s", res.Aborted, res.AbortReason, obs.HealthNonFiniteCost)
	}
	if res.Iterations != 1 {
		t.Fatalf("run terminated after %d iterations, want 1", res.Iterations)
	}
	count := 0
	for _, e := range sink.Events() {
		if e.Type == obs.EventHealth {
			count++
			if e.Msg != obs.HealthNonFiniteCost || e.Trace != "nan-baseline" {
				t.Fatalf("health event = %+v", e)
			}
		}
	}
	if count != 1 {
		t.Fatalf("health events = %d, want 1", count)
	}
}

// TestWatchdogCleanBaseline: a healthy baseline run under the default
// policy completes without tripping.
func TestWatchdogCleanBaseline(t *testing.T) {
	sim := newTestSim(t, 2)
	opts := DefaultOptions(MosaicFast)
	opts.MaxIter = 6
	hp := obs.DefaultHealthPolicy()
	opts.Health = &hp

	res, err := Optimize(context.Background(), sim, rectTarget(64, 24, 12), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted || res.AbortReason != "" {
		t.Fatalf("healthy baseline flagged: %+v", res)
	}
}
