package pixelilt

import (
	"fmt"
	"math"
	"time"

	"lsopc/internal/grid"
	"lsopc/internal/levelset"
	"lsopc/internal/litho"
	"lsopc/internal/obs"
)

// optimizeMultiRes runs the baseline's coarse-to-fine schedule: θ
// evolves on a MultiResFactor-downsampled grid first (the SOCS banks
// truncate exactly to the coarse configuration, see optics.Bank.Coarse),
// is interpolated spectrally onto each finer grid, and finishes at full
// resolution on sim itself. Histories concatenate with globally
// renumbered iterations; each hand-off emits a level_switch trace event.
func optimizeMultiRes(sim *litho.Simulator, target *grid.Field, opts Options) (*Result, error) {
	n := sim.GridSize()
	if target.W != n || target.H != n {
		return nil, fmt.Errorf("pixelilt: target %dx%d does not match grid %d", target.W, target.H, n)
	}
	numCoarse := 0
	for f := opts.MultiResFactor; f > 1; f /= 2 {
		numCoarse++
	}
	perCoarse := opts.MultiResIters
	if perCoarse == 0 {
		perCoarse = opts.MaxIter / (2 * numCoarse)
	}
	if perCoarse < 1 {
		perCoarse = 1
	}
	fineIters := opts.MaxIter - numCoarse*perCoarse
	if fineIters < 1 {
		fineIters = 1
	}

	total := &Result{}
	var theta *grid.Field // hand-off θ, already at the next level's resolution
	globalIter := 0

	for f := opts.MultiResFactor; f > 1; f /= 2 {
		cres, err := sim.Resources().Coarse(f)
		if err != nil {
			return nil, err
		}
		ccfg := sim.Config()
		ccfg.Optics = cres.Optics()
		csim, err := litho.NewSession(cres, ccfg, sim.Engine())
		if err != nil {
			return nil, err
		}
		ctarget := target.Downsample(f)
		ctarget.Binarize(ctarget)

		lopts := opts
		lopts.MaxIter = perCoarse
		lopts.IterOffset = globalIter
		lopts.CleanupTinyPx = 0 // final-mask-only cleanup

		lres, ltheta, err := optimizeLevel(csim, ctarget, lopts, theta)
		csim.Release()
		if err != nil {
			return nil, err
		}
		mergeLevel(total, lres, &globalIter)

		if lres.Aborted {
			// Surface the abort with θ lifted to full resolution so the
			// result masks match the caller's grid.
			total.Aborted = true
			total.AbortReason = lres.AbortReason
			total.Gray, total.Mask = masksFromTheta(upsampleThetaTo(ltheta, f), opts.MaskSteepness)
			return total, nil
		}

		interpStart := time.Now()
		theta = levelset.UpsampleSpectral(ltheta, 2)
		if opts.Sink != nil {
			opts.Sink.Emit(obs.Event{
				Type:   obs.EventLevelSwitch,
				Trace:  opts.TraceID,
				Name:   opts.Variant.String(),
				Engine: sim.Engine().Name(),
				Iter:   globalIter,
				OldN:   ltheta.W,
				N:      theta.W,
				DurNS:  time.Since(interpStart).Nanoseconds(),
			})
		}
	}

	lopts := opts
	lopts.MaxIter = fineIters
	lopts.IterOffset = globalIter
	fres, _, err := optimizeLevel(sim, target, lopts, theta)
	if err != nil {
		return nil, err
	}
	mergeLevel(total, fres, &globalIter)
	total.Mask = fres.Mask
	total.Gray = fres.Gray
	total.Aborted = fres.Aborted
	total.AbortReason = fres.AbortReason
	return total, nil
}

// mergeLevel appends one level's history (already globally numbered via
// Options.IterOffset) and accumulates the corner-simulation count.
func mergeLevel(total, level *Result, globalIter *int) {
	total.History = append(total.History, level.History...)
	*globalIter += level.Iterations
	total.Iterations = *globalIter
	total.CornerSims += level.CornerSims
}

// upsampleThetaTo lifts θ by the given total factor via repeated 2×
// spectral interpolation.
func upsampleThetaTo(theta *grid.Field, factor int) *grid.Field {
	for ; factor > 1; factor /= 2 {
		theta = levelset.UpsampleSpectral(theta, 2)
	}
	return theta
}

// masksFromTheta builds the continuous and binarised masks of θ.
func masksFromTheta(theta *grid.Field, a float64) (gray, bin *grid.Field) {
	gray = grid.NewField(theta.W, theta.H)
	for j, v := range theta.Data {
		gray.Data[j] = 1 / (1 + math.Exp(-a*v))
	}
	bin = grid.NewField(theta.W, theta.H)
	bin.Binarize(gray)
	return gray, bin
}
