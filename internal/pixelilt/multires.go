package pixelilt

import (
	"context"
	"fmt"
	"math"

	"lsopc/internal/grid"
	"lsopc/internal/levelset"
	"lsopc/internal/litho"
	"lsopc/internal/solve"
)

// The baselines share the level-set method's coarse-to-fine machinery
// (solve.RunLevels): θ evolves on a MultiResFactor-downsampled grid
// first (the SOCS banks truncate exactly to the coarse configuration,
// see optics.Bank.Coarse), is interpolated spectrally onto each finer
// grid — without redistancing, θ is a sigmoid input, not a distance
// function — and finishes at full resolution on sim itself. Histories
// concatenate with globally renumbered iterations; each hand-off emits
// a level_switch trace event named after the variant.

// runSchedule drives solve.RunLevels over the baseline program and
// assembles this package's Result from the merged outcome.
func runSchedule(ctx context.Context, sim *litho.Simulator, target *grid.Field, opts Options, resume *solve.Checkpoint) (*Result, error) {
	if n := sim.GridSize(); target.W != n || target.H != n {
		return nil, fmt.Errorf("pixelilt: target %dx%d does not match grid %d", target.W, target.H, n)
	}
	prog := &levelProgram{opts: opts}
	sched := solve.Plan(opts.MaxIter, opts.MultiResFactor, opts.MultiResIters)
	out, err := solve.RunLevels(ctx, sim, target, sched, prog, opts.Sink, opts.TraceID, opts.IterOffset, resume)
	if err != nil {
		return nil, err
	}
	total := &Result{
		Iterations:      out.Iterations,
		Aborted:         out.Aborted,
		AbortReason:     out.AbortReason,
		AbortCheckpoint: out.AbortCheckpoint,
		History:         historyFromSolve(out.History),
		CornerSims:      out.Evals,
	}
	if prog.res != nil {
		// The full-resolution level ran: its assembly (binarisation,
		// manufacturability cleanup) is the run's mask pair.
		total.Mask = prog.res.Mask
		total.Gray = prog.res.Gray
	} else {
		// A poisoned coarse run aborted the schedule: θ arrives lifted to
		// full resolution so the result masks match the caller's grid.
		total.Gray, total.Mask = masksFromTheta(out.State, opts.MaskSteepness)
	}
	return total, nil
}

// levelProgram adapts the pixel baselines to solve.RunLevels.
type levelProgram struct {
	opts Options
	res  *Result // full-resolution level's assembled result
}

// Level builds the stepper and driver for one resolution level.
func (p *levelProgram) Level(sim *litho.Simulator, target *grid.Field, cfg solve.LevelConfig) (*solve.Driver, func(*solve.Outcome), func(), error) {
	lopts := p.opts
	lopts.MaxIter = cfg.MaxIter
	lopts.IterOffset = cfg.Offset
	if cfg.Coarse {
		lopts.CleanupTinyPx = 0 // manufacturability cleanup is final-mask-only
	}
	s, err := newStepper(sim, target, lopts, cfg.State)
	if err != nil {
		return nil, nil, nil, err
	}
	finish := func(out *solve.Outcome) {
		if !cfg.Coarse {
			p.res = s.finish(out)
		}
	}
	return s.driver(), finish, s.release, nil
}

// Upsample lifts θ onto the 2× finer grid by spectral interpolation —
// no redistancing: θ is a sigmoid input, not a signed distance.
func (p *levelProgram) Upsample(theta *grid.Field) *grid.Field {
	return levelset.UpsampleSpectral(theta, 2)
}

// TraceName tags level_switch events with the variant name.
func (p *levelProgram) TraceName() string { return p.opts.Variant.String() }

// masksFromTheta builds the continuous and binarised masks of θ.
func masksFromTheta(theta *grid.Field, a float64) (gray, bin *grid.Field) {
	gray = grid.NewField(theta.W, theta.H)
	for j, v := range theta.Data {
		gray.Data[j] = 1 / (1 + math.Exp(-a*v))
	}
	bin = grid.NewField(theta.W, theta.H)
	bin.Binarize(gray)
	return gray, bin
}
