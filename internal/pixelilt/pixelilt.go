// Package pixelilt re-implements the pixel-based OPC baselines the paper
// compares against in Tables I and II: MOSAIC (fast and exact variants)
// [Gao et al., DAC'14], robust OPC [Kuang et al., DATE'15] and PVOPC
// [Su et al., TCAD'16]. The original binaries are not available, so each
// method is rebuilt from its published formulation on top of our litho
// simulator, which isolates the optimizer difference exactly as the
// contest did.
//
// All four share one machinery: the mask is parametrised through a
// pixelwise sigmoid M = σ(a·θ) and θ follows normalised gradient descent
// on the process-window cost. They differ in *which corners are
// simulated when* — the axis the original papers differ on:
//
//   - MOSAIC_fast: alternates one corner per iteration (the "alternate
//     gradient" trick that makes it cheap).
//   - MOSAIC_exact: every corner every iteration, longer schedule.
//   - Robust OPC: simulates only the outer and inner corners and
//     estimates the nominal response from them (the paper's §IV notes
//     exactly this about [15]).
//   - PVOPC: two phases — nominal-only convergence first, then a short
//     process-variation refinement.
package pixelilt

import (
	"context"
	"fmt"
	"math"

	"lsopc/internal/grid"
	"lsopc/internal/litho"
	"lsopc/internal/metrics"
	"lsopc/internal/obs"
	"lsopc/internal/rt"
	"lsopc/internal/solve"
)

// Variant selects the baseline algorithm.
type Variant int

const (
	// MosaicFast is MOSAIC's fast alternate-gradient schedule.
	MosaicFast Variant = iota
	// MosaicExact is MOSAIC's exact full-corner schedule.
	MosaicExact
	// RobustOPC simulates two corners and estimates the third.
	RobustOPC
	// PVOPC runs a nominal phase then a process-variation phase.
	PVOPC
)

// String implements fmt.Stringer with the names used in the paper's
// tables.
func (v Variant) String() string {
	switch v {
	case MosaicFast:
		return "MOSAIC_fast"
	case MosaicExact:
		return "MOSAIC_exact"
	case RobustOPC:
		return "robust OPC"
	case PVOPC:
		return "PVOPC"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Variants lists all baselines in Table I column order.
var Variants = []Variant{MosaicFast, MosaicExact, RobustOPC, PVOPC}

// Options configures a baseline run. DefaultOptions(v) reproduces each
// paper's schedule shape.
type Options struct {
	Variant       Variant
	MaxIter       int
	StepSize      float64 // θ move per iteration (pixels of sigmoid input)
	MaskSteepness float64 // a in M = σ(a·θ)
	PVBWeight     float64 // weight of the outer/inner corner terms
	// NominalPhase is the fraction of iterations PVOPC spends in its
	// nominal-only first phase.
	NominalPhase float64
	// CleanupTinyPx removes stains/pinholes smaller than this many
	// pixels from the final binary mask (0 disables). Pixel-based ILT
	// is the method family that needs it (paper §I).
	CleanupTinyPx int
	// MultiResFactor > 1 runs the coarse-to-fine schedule: the first
	// iterations evolve θ on a grid downsampled by this power-of-two
	// factor, halving the factor each level, with θ interpolated
	// spectrally onto each finer grid. 0 or 1 is single-resolution.
	MultiResFactor int
	// MultiResIters is the iteration budget per coarse level (0 defaults
	// to MaxIter/2 split evenly across the coarse levels); full
	// resolution gets the remainder of MaxIter.
	MultiResIters int
	// IterOffset shifts the iteration numbers reported in History, trace
	// events and watchdog verdicts — the coarse-to-fine driver uses it to
	// keep one globally contiguous iteration axis across levels.
	IterOffset int
	// Sink receives one structured iteration event per baseline step.
	// nil disables tracing.
	Sink obs.Sink
	// TraceID tags this run's events in a shared sink.
	TraceID string
	// Health enables the numerical-health watchdog over the iteration
	// cost; unhealthy iterations emit a health event and, with
	// AbortOnUnhealthy, stop the run (Result.Aborted/AbortReason).
	Health *obs.HealthPolicy
}

// DefaultOptions returns the published schedule shape for the variant.
// Iteration budgets are set so the *relative* runtimes mirror Table II
// (exact ≫ fast ≈ ours > robust > PVOPC).
func DefaultOptions(v Variant) Options {
	o := Options{
		Variant:       v,
		StepSize:      0.4,
		MaskSteepness: 4,
		PVBWeight:     0.6,
		NominalPhase:  0.6,
	}
	switch v {
	case MosaicFast:
		o.MaxIter = 30
	case MosaicExact:
		o.MaxIter = 90
	case RobustOPC:
		o.MaxIter = 30
	case PVOPC:
		o.MaxIter = 30
	}
	return o
}

// Validate checks the options.
func (o Options) Validate() error {
	switch {
	case o.MaxIter < 1:
		return fmt.Errorf("pixelilt: MaxIter must be ≥ 1, got %d", o.MaxIter)
	case o.StepSize <= 0:
		return fmt.Errorf("pixelilt: StepSize must be positive, got %g", o.StepSize)
	case o.MaskSteepness <= 0:
		return fmt.Errorf("pixelilt: MaskSteepness must be positive, got %g", o.MaskSteepness)
	case o.PVBWeight < 0:
		return fmt.Errorf("pixelilt: PVBWeight must be ≥ 0, got %g", o.PVBWeight)
	case o.NominalPhase < 0 || o.NominalPhase > 1:
		return fmt.Errorf("pixelilt: NominalPhase must be in [0,1], got %g", o.NominalPhase)
	case o.CleanupTinyPx < 0:
		return fmt.Errorf("pixelilt: CleanupTinyPx must be ≥ 0, got %d", o.CleanupTinyPx)
	case o.MultiResFactor < 0:
		return fmt.Errorf("pixelilt: MultiResFactor must be ≥ 0, got %d", o.MultiResFactor)
	case o.MultiResFactor > 1 && !grid.IsPow2(o.MultiResFactor):
		return fmt.Errorf("pixelilt: MultiResFactor must be a power of two, got %d", o.MultiResFactor)
	case o.MultiResIters < 0:
		return fmt.Errorf("pixelilt: MultiResIters must be ≥ 0, got %d", o.MultiResIters)
	case o.IterOffset < 0:
		return fmt.Errorf("pixelilt: IterOffset must be ≥ 0, got %d", o.IterOffset)
	}
	return nil
}

// IterStats traces one iteration.
type IterStats struct {
	Iter      int
	Cost      float64 // sum of the corner costs simulated this iteration
	CornerSim int     // number of corner simulations this iteration
}

// Result is the outcome of a baseline run.
type Result struct {
	Mask       *grid.Field // binarised optimized mask
	Gray       *grid.Field // continuous sigmoid mask σ(a·θ)
	Iterations int
	// Aborted is set when the health watchdog stopped the run early;
	// AbortReason carries the obs.Health* reason code.
	Aborted     bool
	AbortReason string
	// AbortCheckpoint is the solver state at the aborted iteration
	// boundary (nil unless Aborted), resumable via Resume.
	AbortCheckpoint *solve.Checkpoint
	History         []IterStats
	CornerSims      int // total forward+adjoint corner evaluations (runtime proxy)
}

// cornerPlan returns the corners to simulate at iteration i and their
// gradient weights, encoding the variant's schedule.
func (o Options) cornerPlan(i int) ([]litho.Condition, []float64) {
	switch o.Variant {
	case MosaicFast:
		// Alternate gradient: one corner per iteration, cycling.
		switch i % 3 {
		case 0:
			return []litho.Condition{litho.Nominal}, []float64{1}
		case 1:
			return []litho.Condition{litho.Outer}, []float64{o.PVBWeight}
		default:
			return []litho.Condition{litho.Inner}, []float64{o.PVBWeight}
		}
	case MosaicExact:
		return []litho.Condition{litho.Nominal, litho.Outer, litho.Inner},
			[]float64{1, o.PVBWeight, o.PVBWeight}
	case RobustOPC:
		// Two simulated corners; the nominal response is estimated as
		// their mid-point, which in gradient terms folds the nominal
		// weight into the two extremes.
		w := (1 + o.PVBWeight) / 2
		return []litho.Condition{litho.Outer, litho.Inner}, []float64{w, w}
	case PVOPC:
		if float64(i) < o.NominalPhase*float64(o.MaxIter) {
			return []litho.Condition{litho.Nominal}, []float64{1}
		}
		return []litho.Condition{litho.Nominal, litho.Outer, litho.Inner},
			[]float64{1, o.PVBWeight, o.PVBWeight}
	default:
		return []litho.Condition{litho.Nominal}, []float64{1}
	}
}

// constantCornerPlan reports whether the variant simulates the same
// corner set every iteration (making its cost series comparable across
// iterations).
func (o Options) constantCornerPlan() bool {
	return o.Variant == MosaicExact || o.Variant == RobustOPC
}

// Optimize runs the pixel-based baseline on the simulator for the given
// target image. With MultiResFactor > 1 the schedule runs coarse-to-fine
// (see multires.go). Cancellation through ctx yields a *solve.Cancelled
// error whose checkpoint Resume continues from.
func Optimize(ctx context.Context, sim *litho.Simulator, target *grid.Field, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.MultiResFactor > 1 {
		return runSchedule(ctx, sim, target, opts, nil)
	}
	return runSingle(ctx, sim, target, opts, nil)
}

// Resume continues a run from a checkpoint captured at cancellation.
// opts must be the options of the original run; the result then matches
// the uninterrupted run bit-for-bit.
func Resume(ctx context.Context, sim *litho.Simulator, target *grid.Field, opts Options, cp *solve.Checkpoint) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if cp == nil {
		return nil, fmt.Errorf("pixelilt: nil checkpoint")
	}
	if opts.MultiResFactor > 1 {
		return runSchedule(ctx, sim, target, opts, cp)
	}
	if cp.Factor != 1 {
		return nil, fmt.Errorf("pixelilt: checkpoint at resolution factor %d, but the run is single-resolution", cp.Factor)
	}
	return runSingle(ctx, sim, target, opts, cp)
}

// runSingle runs one resolution level end to end, optionally restoring
// a checkpoint first.
func runSingle(ctx context.Context, sim *litho.Simulator, target *grid.Field, opts Options, cp *solve.Checkpoint) (*Result, error) {
	s, err := newStepper(sim, target, opts, nil)
	if err != nil {
		return nil, err
	}
	defer s.release()
	drv := s.driver()
	if cp != nil {
		if err := drv.Restore(cp); err != nil {
			return nil, err
		}
	}
	out, err := drv.Run(ctx)
	if err != nil {
		return nil, err
	}
	return s.finish(out), nil
}

// stepper adapts one baseline level to the solve.Stepper contract: Eval
// simulates the variant's corner plan and leaves dL/dθ in gradM, Advance
// applies the normalised gradient-descent update to θ. The driver owns
// the loop bookkeeping (budget, history, watchdog, tracing).
type stepper struct {
	sim    *litho.Simulator
	opts   Options
	pool   *rt.Pool
	target *grid.Field
	a      float64 // MaskSteepness
	theta  *grid.Field
	mask   *grid.Field
	spec   *grid.CField
	gradM  *grid.Field
	imgs   *litho.CornerImages
	maxG   float64 // ∞-norm of dL/dθ from the latest Eval
}

// newStepper leases scratch from the simulator's pool and seeds θ from
// the design (+1 inside, −1 outside; M≈σ(±a)) unless a coarser level
// handed one over via thetaInit (caller keeps ownership).
func newStepper(sim *litho.Simulator, target *grid.Field, opts Options, thetaInit *grid.Field) (*stepper, error) {
	n := sim.GridSize()
	if target.W != n || target.H != n {
		return nil, fmt.Errorf("pixelilt: target %dx%d does not match grid %d", target.W, target.H, n)
	}
	pool := sim.Pool()
	s := &stepper{
		sim:    sim,
		opts:   opts,
		pool:   pool,
		target: target,
		a:      opts.MaskSteepness,
		theta:  pool.Field(n, n),
		mask:   pool.Field(n, n),
		spec:   pool.CField(n, n),
		gradM:  pool.Field(n, n),
		imgs:   litho.LeaseCornerImages(pool, n),
	}
	if thetaInit != nil {
		s.theta.CopyFrom(thetaInit)
	} else {
		for i, v := range target.Data {
			s.theta.Data[i] = 2*v - 1
		}
	}
	if opts.Sink != nil {
		sim.SetSink(opts.Sink, opts.TraceID)
	}
	return s, nil
}

// release returns the leased scratch to the pool.
func (s *stepper) release() {
	s.pool.PutField(s.theta)
	s.pool.PutField(s.mask)
	s.pool.PutCField(s.spec)
	s.pool.PutField(s.gradM)
	s.imgs.ReleaseTo(s.pool)
}

// driver builds the solve driver for this level. The baselines use a
// fixed step (no adaptive scale, no keep-best) and stop only on budget
// or a vanished gradient (Tolerance 0: maxV ≤ 0 iff the ∞-norm is 0).
func (s *stepper) driver() *solve.Driver {
	health := s.opts.Health
	if health != nil && !s.opts.constantCornerPlan() {
		// MOSAIC_fast cycles corners and PVOPC switches phases, so
		// successive iteration costs sum different corner subsets;
		// windowed stall/divergence checks would compare incommensurable
		// values. Keep only the non-finite check.
		hp := *health
		hp.StallWindow = 0
		hp.DivergenceWindow = 0
		health = &hp
	}
	return solve.NewDriver(s, solve.Config{
		Method:    s.opts.Variant.String(),
		MaxIter:   s.opts.MaxIter,
		Offset:    s.opts.IterOffset,
		BaseScale: s.opts.StepSize,
		Sink:      s.opts.Sink,
		Trace:     s.opts.TraceID,
		Engine:    s.sim.Engine().Name(),
		Health:    health,
	})
}

// Eval simulates local iteration i's corner plan and computes dL/dθ.
func (s *stepper) Eval(i int) solve.Stats {
	a := s.a
	// M = σ(a·θ).
	for j, v := range s.theta.Data {
		s.mask.Data[j] = 1 / (1 + math.Exp(-a*v))
	}
	s.sim.MaskSpectrumInto(s.spec, s.mask)

	corners, weights := s.opts.cornerPlan(i)
	s.gradM.Zero()
	cost := 0.0
	for c, cond := range corners {
		cost += s.sim.ForwardAndGradient(s.gradM, s.spec, cond, s.target, s.imgs, weights[c])
	}

	// dL/dθ = dL/dM ⊙ a·M(1−M); the ∞-norm normalises the step, keeping
	// the update scale-free across benchmarks.
	maxG := 0.0
	for j := range s.gradM.Data {
		m := s.mask.Data[j]
		s.gradM.Data[j] *= a * m * (1 - m)
		if g := math.Abs(s.gradM.Data[j]); g > maxG {
			maxG = g
		}
	}
	s.maxG = maxG
	return solve.Stats{
		Cost:  cost,
		Evals: len(corners),
		Name:  s.opts.Variant.String(),
	}
}

// SaveBest is never called: the baselines report the final iterate.
func (s *stepper) SaveBest() {}

// StepSize: the move is the fixed step size; the convergence statistic
// is the gradient ∞-norm (zero gradient stops the run).
func (s *stepper) StepSize(scale float64) (dt, maxV float64) { return scale, s.maxG }

// GradNorm feeds the watchdog the same statistic the pre-driver loop
// judged: the ∞-norm of dL/dθ.
func (s *stepper) GradNorm() float64 { return s.maxG }

// Advance applies the normalised gradient-descent update.
func (s *stepper) Advance(i int, dt float64) float64 {
	s.theta.AddScaled(s.gradM, -dt/s.maxG)
	return dt
}

// Snapshot clones the current continuous mask σ(a·θ).
func (s *stepper) Snapshot() *grid.Field { return s.mask.Clone() }

// State clones θ — the multi-resolution hand-off.
func (s *stepper) State() *grid.Field { return s.theta.Clone() }

// SaveState captures θ, the only state a bit-exact resume needs (the
// corner plan is a pure function of the iteration number).
func (s *stepper) SaveState() map[string]*grid.Field {
	return map[string]*grid.Field{"theta": s.theta.Clone()}
}

// RestoreState loads a SaveState map back into the stepper.
func (s *stepper) RestoreState(st map[string]*grid.Field) error {
	theta, ok := st["theta"]
	if !ok {
		return fmt.Errorf("pixelilt: checkpoint state has no theta field")
	}
	if theta.W != s.theta.W || theta.H != s.theta.H {
		return fmt.Errorf("pixelilt: checkpoint theta %dx%d does not match grid %d", theta.W, theta.H, s.theta.W)
	}
	s.theta.CopyFrom(theta)
	return nil
}

// finish assembles this package's Result from a level outcome while the
// stepper's θ is still live: σ(a·θ) binarised at ½ (θ = 0), with the
// manufacturability cleanup on the binary mask.
func (s *stepper) finish(out *solve.Outcome) *Result {
	gray, bin := masksFromTheta(s.theta, s.a)
	if s.opts.CleanupTinyPx > 0 {
		metrics.RemoveTinyFeatures(bin, s.opts.CleanupTinyPx, s.opts.CleanupTinyPx)
	}
	return &Result{
		Mask:            bin,
		Gray:            gray,
		Iterations:      out.Iterations,
		Aborted:         out.Aborted,
		AbortReason:     out.AbortReason,
		AbortCheckpoint: out.AbortCheckpoint,
		History:         historyFromSolve(out.History),
		CornerSims:      out.Evals,
	}
}

// historyFromSolve converts driver history rows to this package's
// schema.
func historyFromSolve(hist []solve.IterStats) []IterStats {
	out := make([]IterStats, len(hist))
	for i, h := range hist {
		out[i] = IterStats{Iter: h.Iter, Cost: h.Cost, CornerSim: h.Evals}
	}
	return out
}
