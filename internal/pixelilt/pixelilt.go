// Package pixelilt re-implements the pixel-based OPC baselines the paper
// compares against in Tables I and II: MOSAIC (fast and exact variants)
// [Gao et al., DAC'14], robust OPC [Kuang et al., DATE'15] and PVOPC
// [Su et al., TCAD'16]. The original binaries are not available, so each
// method is rebuilt from its published formulation on top of our litho
// simulator, which isolates the optimizer difference exactly as the
// contest did.
//
// All four share one machinery: the mask is parametrised through a
// pixelwise sigmoid M = σ(a·θ) and θ follows normalised gradient descent
// on the process-window cost. They differ in *which corners are
// simulated when* — the axis the original papers differ on:
//
//   - MOSAIC_fast: alternates one corner per iteration (the "alternate
//     gradient" trick that makes it cheap).
//   - MOSAIC_exact: every corner every iteration, longer schedule.
//   - Robust OPC: simulates only the outer and inner corners and
//     estimates the nominal response from them (the paper's §IV notes
//     exactly this about [15]).
//   - PVOPC: two phases — nominal-only convergence first, then a short
//     process-variation refinement.
package pixelilt

import (
	"fmt"
	"math"
	"time"

	"lsopc/internal/grid"
	"lsopc/internal/litho"
	"lsopc/internal/metrics"
	"lsopc/internal/obs"
)

// Variant selects the baseline algorithm.
type Variant int

const (
	// MosaicFast is MOSAIC's fast alternate-gradient schedule.
	MosaicFast Variant = iota
	// MosaicExact is MOSAIC's exact full-corner schedule.
	MosaicExact
	// RobustOPC simulates two corners and estimates the third.
	RobustOPC
	// PVOPC runs a nominal phase then a process-variation phase.
	PVOPC
)

// String implements fmt.Stringer with the names used in the paper's
// tables.
func (v Variant) String() string {
	switch v {
	case MosaicFast:
		return "MOSAIC_fast"
	case MosaicExact:
		return "MOSAIC_exact"
	case RobustOPC:
		return "robust OPC"
	case PVOPC:
		return "PVOPC"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Variants lists all baselines in Table I column order.
var Variants = []Variant{MosaicFast, MosaicExact, RobustOPC, PVOPC}

// Options configures a baseline run. DefaultOptions(v) reproduces each
// paper's schedule shape.
type Options struct {
	Variant       Variant
	MaxIter       int
	StepSize      float64 // θ move per iteration (pixels of sigmoid input)
	MaskSteepness float64 // a in M = σ(a·θ)
	PVBWeight     float64 // weight of the outer/inner corner terms
	// NominalPhase is the fraction of iterations PVOPC spends in its
	// nominal-only first phase.
	NominalPhase float64
	// CleanupTinyPx removes stains/pinholes smaller than this many
	// pixels from the final binary mask (0 disables). Pixel-based ILT
	// is the method family that needs it (paper §I).
	CleanupTinyPx int
	// MultiResFactor > 1 runs the coarse-to-fine schedule: the first
	// iterations evolve θ on a grid downsampled by this power-of-two
	// factor, halving the factor each level, with θ interpolated
	// spectrally onto each finer grid. 0 or 1 is single-resolution.
	MultiResFactor int
	// MultiResIters is the iteration budget per coarse level (0 defaults
	// to MaxIter/2 split evenly across the coarse levels); full
	// resolution gets the remainder of MaxIter.
	MultiResIters int
	// IterOffset shifts the iteration numbers reported in History, trace
	// events and watchdog verdicts — the coarse-to-fine driver uses it to
	// keep one globally contiguous iteration axis across levels.
	IterOffset int
	// Sink receives one structured iteration event per baseline step.
	// nil disables tracing.
	Sink obs.Sink
	// TraceID tags this run's events in a shared sink.
	TraceID string
	// Health enables the numerical-health watchdog over the iteration
	// cost; unhealthy iterations emit a health event and, with
	// AbortOnUnhealthy, stop the run (Result.Aborted/AbortReason).
	Health *obs.HealthPolicy
}

// DefaultOptions returns the published schedule shape for the variant.
// Iteration budgets are set so the *relative* runtimes mirror Table II
// (exact ≫ fast ≈ ours > robust > PVOPC).
func DefaultOptions(v Variant) Options {
	o := Options{
		Variant:       v,
		StepSize:      0.4,
		MaskSteepness: 4,
		PVBWeight:     0.6,
		NominalPhase:  0.6,
	}
	switch v {
	case MosaicFast:
		o.MaxIter = 30
	case MosaicExact:
		o.MaxIter = 90
	case RobustOPC:
		o.MaxIter = 30
	case PVOPC:
		o.MaxIter = 30
	}
	return o
}

// Validate checks the options.
func (o Options) Validate() error {
	switch {
	case o.MaxIter < 1:
		return fmt.Errorf("pixelilt: MaxIter must be ≥ 1, got %d", o.MaxIter)
	case o.StepSize <= 0:
		return fmt.Errorf("pixelilt: StepSize must be positive, got %g", o.StepSize)
	case o.MaskSteepness <= 0:
		return fmt.Errorf("pixelilt: MaskSteepness must be positive, got %g", o.MaskSteepness)
	case o.PVBWeight < 0:
		return fmt.Errorf("pixelilt: PVBWeight must be ≥ 0, got %g", o.PVBWeight)
	case o.NominalPhase < 0 || o.NominalPhase > 1:
		return fmt.Errorf("pixelilt: NominalPhase must be in [0,1], got %g", o.NominalPhase)
	case o.CleanupTinyPx < 0:
		return fmt.Errorf("pixelilt: CleanupTinyPx must be ≥ 0, got %d", o.CleanupTinyPx)
	case o.MultiResFactor < 0:
		return fmt.Errorf("pixelilt: MultiResFactor must be ≥ 0, got %d", o.MultiResFactor)
	case o.MultiResFactor > 1 && !grid.IsPow2(o.MultiResFactor):
		return fmt.Errorf("pixelilt: MultiResFactor must be a power of two, got %d", o.MultiResFactor)
	case o.MultiResIters < 0:
		return fmt.Errorf("pixelilt: MultiResIters must be ≥ 0, got %d", o.MultiResIters)
	case o.IterOffset < 0:
		return fmt.Errorf("pixelilt: IterOffset must be ≥ 0, got %d", o.IterOffset)
	}
	return nil
}

// IterStats traces one iteration.
type IterStats struct {
	Iter      int
	Cost      float64 // sum of the corner costs simulated this iteration
	CornerSim int     // number of corner simulations this iteration
}

// Result is the outcome of a baseline run.
type Result struct {
	Mask       *grid.Field // binarised optimized mask
	Gray       *grid.Field // continuous sigmoid mask σ(a·θ)
	Iterations int
	// Aborted is set when the health watchdog stopped the run early;
	// AbortReason carries the obs.Health* reason code.
	Aborted     bool
	AbortReason string
	History     []IterStats
	CornerSims  int // total forward+adjoint corner evaluations (runtime proxy)
}

// cornerPlan returns the corners to simulate at iteration i and their
// gradient weights, encoding the variant's schedule.
func (o Options) cornerPlan(i int) ([]litho.Condition, []float64) {
	switch o.Variant {
	case MosaicFast:
		// Alternate gradient: one corner per iteration, cycling.
		switch i % 3 {
		case 0:
			return []litho.Condition{litho.Nominal}, []float64{1}
		case 1:
			return []litho.Condition{litho.Outer}, []float64{o.PVBWeight}
		default:
			return []litho.Condition{litho.Inner}, []float64{o.PVBWeight}
		}
	case MosaicExact:
		return []litho.Condition{litho.Nominal, litho.Outer, litho.Inner},
			[]float64{1, o.PVBWeight, o.PVBWeight}
	case RobustOPC:
		// Two simulated corners; the nominal response is estimated as
		// their mid-point, which in gradient terms folds the nominal
		// weight into the two extremes.
		w := (1 + o.PVBWeight) / 2
		return []litho.Condition{litho.Outer, litho.Inner}, []float64{w, w}
	case PVOPC:
		if float64(i) < o.NominalPhase*float64(o.MaxIter) {
			return []litho.Condition{litho.Nominal}, []float64{1}
		}
		return []litho.Condition{litho.Nominal, litho.Outer, litho.Inner},
			[]float64{1, o.PVBWeight, o.PVBWeight}
	default:
		return []litho.Condition{litho.Nominal}, []float64{1}
	}
}

// constantCornerPlan reports whether the variant simulates the same
// corner set every iteration (making its cost series comparable across
// iterations).
func (o Options) constantCornerPlan() bool {
	return o.Variant == MosaicExact || o.Variant == RobustOPC
}

// Optimize runs the pixel-based baseline on the simulator for the given
// target image. With MultiResFactor > 1 the schedule runs coarse-to-fine
// (see optimizeMultiRes).
func Optimize(sim *litho.Simulator, target *grid.Field, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.MultiResFactor > 1 {
		return optimizeMultiRes(sim, target, opts)
	}
	res, _, err := optimizeLevel(sim, target, opts, nil)
	return res, err
}

// optimizeLevel runs the schedule at one resolution. thetaInit seeds θ
// when non-nil (the coarse-to-fine hand-off; the caller keeps
// ownership), and the final θ is returned alongside the result so the
// next level can continue from it.
func optimizeLevel(sim *litho.Simulator, target *grid.Field, opts Options, thetaInit *grid.Field) (*Result, *grid.Field, error) {
	n := sim.GridSize()
	if target.W != n || target.H != n {
		return nil, nil, fmt.Errorf("pixelilt: target %dx%d does not match grid %d", target.W, target.H, n)
	}

	// Scratch is leased from the simulator's pool and returned on exit;
	// only the result masks are freshly allocated.
	pool := sim.Pool()
	theta := pool.Field(n, n)
	mask := pool.Field(n, n)
	maskSpec := pool.CField(n, n)
	gradM := pool.Field(n, n)
	imgs := litho.LeaseCornerImages(pool, n)
	defer func() {
		pool.PutField(theta)
		pool.PutField(mask)
		pool.PutCField(maskSpec)
		pool.PutField(gradM)
		imgs.ReleaseTo(pool)
	}()

	// θ initialised from the design (+1 inside, −1 outside; M≈σ(±a))
	// unless a coarser level handed one over.
	if thetaInit != nil {
		theta.CopyFrom(thetaInit)
	} else {
		for i, v := range target.Data {
			theta.Data[i] = 2*v - 1
		}
	}
	a := opts.MaskSteepness

	if opts.Sink != nil {
		sim.SetSink(opts.Sink, opts.TraceID)
	}
	var wd *obs.Watchdog
	if opts.Health != nil {
		hp := *opts.Health
		if !opts.constantCornerPlan() {
			// MOSAIC_fast cycles corners and PVOPC switches phases, so
			// successive iteration costs sum different corner subsets;
			// windowed stall/divergence checks would compare
			// incommensurable values. Keep only the non-finite check.
			hp.StallWindow = 0
			hp.DivergenceWindow = 0
		}
		wd = obs.NewWatchdog(hp, opts.Sink, opts.TraceID)
	}
	res := &Result{}
	for i := 0; i < opts.MaxIter; i++ {
		iterStart := time.Now()
		gi := i + opts.IterOffset // globally reported iteration number
		// M = σ(a·θ).
		for j, v := range theta.Data {
			mask.Data[j] = 1 / (1 + math.Exp(-a*v))
		}
		sim.MaskSpectrumInto(maskSpec, mask)

		corners, weights := opts.cornerPlan(i)
		gradM.Zero()
		cost := 0.0
		for c, cond := range corners {
			cost += sim.ForwardAndGradient(gradM, maskSpec, cond, target, imgs, weights[c])
		}
		res.History = append(res.History, IterStats{Iter: gi, Cost: cost, CornerSim: len(corners)})
		res.CornerSims += len(corners)
		if opts.Sink != nil {
			opts.Sink.Emit(obs.Event{
				Type:   obs.EventIteration,
				Trace:  opts.TraceID,
				Name:   opts.Variant.String(),
				Engine: sim.Engine().Name(),
				Iter:   gi,
				N:      len(corners),
				Cost:   cost,
				DurNS:  time.Since(iterStart).Nanoseconds(),
			})
		}

		// dL/dθ = dL/dM ⊙ a·M(1−M); normalised step keeps the update
		// scale-free across benchmarks.
		maxG := 0.0
		for j := range gradM.Data {
			m := mask.Data[j]
			gradM.Data[j] *= a * m * (1 - m)
			if g := math.Abs(gradM.Data[j]); g > maxG {
				maxG = g
			}
		}
		res.Iterations = i + 1
		// Health watchdog: abort in the same iteration on NaN/Inf cost
		// or gradient, divergence, or a stalled schedule.
		if wd != nil {
			if v := wd.Observe(gi, cost, maxG, opts.StepSize); v.Abort {
				res.Aborted = true
				res.AbortReason = v.Reason
				break
			}
		}
		if maxG == 0 {
			break
		}
		theta.AddScaled(gradM, -opts.StepSize/maxG)
	}

	// Final mask: σ(a·θ) binarised at ½ (θ = 0).
	gray := grid.NewField(n, n)
	for j, v := range theta.Data {
		gray.Data[j] = 1 / (1 + math.Exp(-a*v))
	}
	bin := grid.NewField(n, n)
	bin.Binarize(gray)
	if opts.CleanupTinyPx > 0 {
		metrics.RemoveTinyFeatures(bin, opts.CleanupTinyPx, opts.CleanupTinyPx)
	}
	res.Mask = bin
	res.Gray = gray
	return res, theta.Clone(), nil
}
