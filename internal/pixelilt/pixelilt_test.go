package pixelilt

import (
	"context"

	"testing"

	"lsopc/internal/engine"
	"lsopc/internal/grid"
	"lsopc/internal/litho"
)

func newTestSim(t *testing.T, kernels int) *litho.Simulator {
	t.Helper()
	cfg := litho.DefaultConfig(64, 32)
	cfg.Optics.Kernels = kernels
	s, err := litho.NewSimulator(cfg, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func rectTarget(n, w, h int) *grid.Field {
	f := grid.NewField(n, n)
	x0, y0 := (n-w)/2, (n-h)/2
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			f.Set(x, y, 1)
		}
	}
	return f
}

func TestVariantNames(t *testing.T) {
	names := map[Variant]string{
		MosaicFast:  "MOSAIC_fast",
		MosaicExact: "MOSAIC_exact",
		RobustOPC:   "robust OPC",
		PVOPC:       "PVOPC",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d: name %q, want %q", v, v.String(), want)
		}
	}
	if Variant(42).String() != "Variant(42)" {
		t.Error("unknown variant formatting")
	}
	if len(Variants) != 4 {
		t.Error("Variants list incomplete")
	}
}

func TestDefaultOptionsValid(t *testing.T) {
	for _, v := range Variants {
		if err := DefaultOptions(v).Validate(); err != nil {
			t.Errorf("%v: invalid defaults: %v", v, err)
		}
	}
}

func TestOptionsValidateRejects(t *testing.T) {
	bad := []func(*Options){
		func(o *Options) { o.MaxIter = 0 },
		func(o *Options) { o.StepSize = 0 },
		func(o *Options) { o.MaskSteepness = -1 },
		func(o *Options) { o.PVBWeight = -1 },
		func(o *Options) { o.NominalPhase = 1.5 },
	}
	for i, mut := range bad {
		o := DefaultOptions(MosaicExact)
		mut(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCornerPlanSchedules(t *testing.T) {
	// MOSAIC_fast cycles one corner per iteration.
	fast := DefaultOptions(MosaicFast)
	for i := 0; i < 6; i++ {
		corners, _ := fast.cornerPlan(i)
		if len(corners) != 1 {
			t.Fatalf("fast iter %d simulates %d corners", i, len(corners))
		}
	}
	c0, _ := fast.cornerPlan(0)
	c1, _ := fast.cornerPlan(1)
	c2, _ := fast.cornerPlan(2)
	if c0[0] != litho.Nominal || c1[0] != litho.Outer || c2[0] != litho.Inner {
		t.Fatal("fast cycle order wrong")
	}

	// MOSAIC_exact simulates all three corners always.
	exact := DefaultOptions(MosaicExact)
	corners, weights := exact.cornerPlan(7)
	if len(corners) != 3 || weights[0] != 1 {
		t.Fatal("exact plan wrong")
	}

	// Robust OPC never simulates the nominal corner.
	robust := DefaultOptions(RobustOPC)
	for i := 0; i < 4; i++ {
		corners, _ := robust.cornerPlan(i)
		for _, c := range corners {
			if c == litho.Nominal {
				t.Fatal("robust OPC must not simulate the nominal corner")
			}
		}
		if len(corners) != 2 {
			t.Fatal("robust OPC must simulate exactly 2 corners")
		}
	}

	// PVOPC: nominal-only early, full late.
	pv := DefaultOptions(PVOPC)
	early, _ := pv.cornerPlan(0)
	late, _ := pv.cornerPlan(pv.MaxIter - 1)
	if len(early) != 1 || early[0] != litho.Nominal {
		t.Fatal("PVOPC phase 1 must be nominal-only")
	}
	if len(late) != 3 {
		t.Fatal("PVOPC phase 2 must simulate all corners")
	}
}

func TestOptimizeReducesCostAllVariants(t *testing.T) {
	target := rectTarget(64, 24, 16)
	for _, v := range Variants {
		sim := newTestSim(t, 3)
		opts := DefaultOptions(v)
		opts.MaxIter = 12
		res, err := Optimize(context.Background(), sim, target, opts)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.Iterations != 12 {
			t.Fatalf("%v: iterations %d", v, res.Iterations)
		}
		// Compare like-for-like iterations (same corner plan) at the
		// start and near the end of the schedule.
		var first, last float64 = -1, -1
		for _, h := range res.History {
			c, _ := opts.cornerPlan(h.Iter)
			c0, _ := opts.cornerPlan(0)
			if len(c) == len(c0) && c[0] == c0[0] {
				if first < 0 {
					first = h.Cost
				}
				last = h.Cost
			}
		}
		if !(last < first) {
			t.Errorf("%v: cost did not decrease (%g → %g)", v, first, last)
		}
		// Mask sanity.
		for _, m := range res.Mask.Data {
			if m != 0 && m != 1 {
				t.Fatalf("%v: non-binary mask value %g", v, m)
			}
		}
		if res.Mask.Sum() == 0 {
			t.Fatalf("%v: empty mask", v)
		}
	}
}

func TestCornerSimAccounting(t *testing.T) {
	target := rectTarget(64, 20, 20)
	sim := newTestSim(t, 2)

	fast := DefaultOptions(MosaicFast)
	fast.MaxIter = 9
	rf, err := Optimize(context.Background(), sim, target, fast)
	if err != nil {
		t.Fatal(err)
	}
	if rf.CornerSims != 9 {
		t.Fatalf("fast corner sims = %d, want 9", rf.CornerSims)
	}

	exact := DefaultOptions(MosaicExact)
	exact.MaxIter = 9
	re, err := Optimize(context.Background(), sim, target, exact)
	if err != nil {
		t.Fatal(err)
	}
	if re.CornerSims != 27 {
		t.Fatalf("exact corner sims = %d, want 27", re.CornerSims)
	}
}

func TestOptimizeRejectsBadInput(t *testing.T) {
	sim := newTestSim(t, 2)
	if _, err := Optimize(context.Background(), sim, grid.NewField(32, 32), DefaultOptions(MosaicFast)); err == nil {
		t.Fatal("mismatched target accepted")
	}
	o := DefaultOptions(MosaicFast)
	o.MaxIter = 0
	if _, err := Optimize(context.Background(), sim, rectTarget(64, 8, 8), o); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	target := rectTarget(64, 24, 12)
	opts := DefaultOptions(PVOPC)
	opts.MaxIter = 8
	a, err := Optimize(context.Background(), newTestSim(t, 2), target, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(context.Background(), newTestSim(t, 2), target, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mask.Equal(b.Mask, 0) || !a.Gray.Equal(b.Gray, 0) {
		t.Fatal("baseline optimization must be deterministic")
	}
}

func TestGrayMaskConsistentWithBinary(t *testing.T) {
	target := rectTarget(64, 20, 14)
	res, err := Optimize(context.Background(), newTestSim(t, 2), target, DefaultOptions(MosaicFast))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Gray.Data {
		if (res.Gray.Data[i] > 0.5) != (res.Mask.Data[i] == 1) {
			t.Fatal("binary mask must be the gray mask thresholded at 1/2")
		}
	}
}
