// Package procwin provides full process-window analysis on top of the
// forward lithography model: Bossung curves (printed critical dimension
// versus focus, one curve per dose), CD-through-window matrices, and the
// process-window yield metric (the fraction of focus×dose conditions
// keeping CD within tolerance).
//
// The paper evaluates robustness only through the PV band at the two
// extreme corners; this package generalises that to the dense
// focus/dose matrix a lithographer would actually inspect, and is used
// by the processwindow example and the pw CLI. Sparse kernel boxes make
// the per-focus kernel banks cheap to construct.
package procwin

import (
	"fmt"

	"lsopc/internal/engine"
	"lsopc/internal/fft"
	"lsopc/internal/grid"
	"lsopc/internal/litho"
	"lsopc/internal/optics"
	"lsopc/internal/rt"
)

// Config parameterises the sweep matrix.
type Config struct {
	Litho litho.Config
	// FocusMaxNM sweeps defocus over [0, +FocusMaxNM] in FocusSteps
	// steps (defocus is symmetric in this scalar model, so negative
	// focus repeats the positive branch).
	FocusMaxNM float64
	FocusSteps int
	// DoseDelta sweeps dose over [1−DoseDelta, 1+DoseDelta] in
	// DoseSteps steps.
	DoseDelta float64
	DoseSteps int
}

// DefaultConfig covers the contest's process window (±25 nm focus,
// ±2 % dose) with a 6×5 matrix.
func DefaultConfig(l litho.Config) Config {
	return Config{
		Litho:      l,
		FocusMaxNM: 25,
		FocusSteps: 6,
		DoseDelta:  0.02,
		DoseSteps:  5,
	}
}

// Validate checks the sweep configuration.
func (c Config) Validate() error {
	if err := c.Litho.Validate(); err != nil {
		return err
	}
	switch {
	case c.FocusMaxNM < 0:
		return fmt.Errorf("procwin: focus range must be ≥ 0, got %g", c.FocusMaxNM)
	case c.FocusSteps < 1 || c.DoseSteps < 1:
		return fmt.Errorf("procwin: need at least one focus and dose step")
	case c.DoseDelta < 0 || c.DoseDelta >= 1:
		return fmt.Errorf("procwin: dose delta must be in [0,1), got %g", c.DoseDelta)
	}
	return nil
}

// CutLine selects where CD is measured: the printed run length through
// pixel (X, Y) along the given axis.
type CutLine struct {
	X, Y       int
	Horizontal bool // true: measure width along X; false: along Y
}

// Point is one matrix sample.
type Point struct {
	DefocusNM float64
	Dose      float64
	CDNM      float64 // printed critical dimension at the cut (0 = feature lost)
}

// Result is a full sweep outcome.
type Result struct {
	Points   []Point
	TargetCD float64 // CD at nominal conditions
}

// Analyzer holds the per-focus kernel banks (shared through the
// process-wide memoized bank cache) and leased scratch. Not safe for
// concurrent use; create one per goroutine and Release when done.
type Analyzer struct {
	cfg         Config
	eng         *engine.Engine
	pool        *rt.Pool
	plan        *fft.Plan2D
	planScratch *grid.CField
	banks       []*optics.Bank // one per focus step
	focus       []float64
	field       *grid.CField
	aerial      *grid.Field
	released    bool
}

// New builds an analyzer. Kernel banks come from the process-wide
// memoized cache (one synthesis per focus value across all analyzers);
// scratch is leased from the shared pool.
func New(cfg Config, eng *engine.Engine) (*Analyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if eng == nil {
		eng = engine.CPU()
	}
	n := cfg.Litho.Optics.GridSize
	pool := rt.Shared
	a := &Analyzer{
		cfg:    cfg,
		eng:    eng,
		pool:   pool,
		field:  pool.CField(n, n),
		aerial: pool.Field(n, n),
	}
	a.planScratch = pool.CField(n, fft.Plan2DScratchLen(n, n)/n)
	a.plan = fft.NewPlan2DFromPlans(fft.CachedPlan(n), fft.CachedPlan(n), eng, a.planScratch.Data)
	for i := 0; i < cfg.FocusSteps; i++ {
		var f float64
		if cfg.FocusSteps > 1 {
			f = cfg.FocusMaxNM * float64(i) / float64(cfg.FocusSteps-1)
		}
		bank, err := rt.OpticsBankFor(cfg.Litho.Optics, f, eng)
		if err != nil {
			a.Release()
			return nil, err
		}
		a.banks = append(a.banks, bank)
		a.focus = append(a.focus, f)
	}
	return a, nil
}

// Release returns the analyzer's leased scratch to the pool. The shared
// kernel banks are untouched. Idempotent and nil-safe.
func (a *Analyzer) Release() {
	if a == nil || a.released {
		return
	}
	a.released = true
	a.pool.PutCField(a.field)
	a.pool.PutField(a.aerial)
	a.pool.PutCField(a.planScratch)
	a.field, a.aerial, a.planScratch, a.plan = nil, nil, nil, nil
}

// FocusValues returns the swept defocus values in nm.
func (a *Analyzer) FocusValues() []float64 {
	out := make([]float64, len(a.focus))
	copy(out, a.focus)
	return out
}

// DoseValues returns the swept dose factors.
func (a *Analyzer) DoseValues() []float64 {
	out := make([]float64, a.cfg.DoseSteps)
	for i := range out {
		if a.cfg.DoseSteps == 1 {
			out[i] = 1
			continue
		}
		t := float64(i) / float64(a.cfg.DoseSteps-1)
		out[i] = 1 - a.cfg.DoseDelta + 2*a.cfg.DoseDelta*t
	}
	return out
}

// aerialAt computes the unit-dose aerial image for focus index fi.
func (a *Analyzer) aerialAt(maskSpec *grid.CField, fi int) {
	bank := a.banks[fi]
	a.aerial.Zero()
	for _, k := range bank.Kernels {
		k.MulInto(a.field, maskSpec)
		a.plan.Inverse(a.field)
		a.field.AccumAbsSq(a.aerial, k.Weight)
	}
}

// measureCD returns the printed run length (nm) through the cut on the
// thresholded image I·dose ≥ I_th.
func (a *Analyzer) measureCD(dose float64, cut CutLine) float64 {
	th := a.cfg.Litho.Threshold / dose
	n := a.aerial.W
	if cut.X < 0 || cut.X >= n || cut.Y < 0 || cut.Y >= a.aerial.H {
		return 0
	}
	on := func(x, y int) bool { return a.aerial.At(x, y) >= th }
	if !on(cut.X, cut.Y) {
		return 0
	}
	count := 1
	if cut.Horizontal {
		for x := cut.X - 1; x >= 0 && on(x, cut.Y); x-- {
			count++
		}
		for x := cut.X + 1; x < n && on(x, cut.Y); x++ {
			count++
		}
	} else {
		for y := cut.Y - 1; y >= 0 && on(cut.X, y); y-- {
			count++
		}
		for y := cut.Y + 1; y < a.aerial.H && on(cut.X, y); y++ {
			count++
		}
	}
	return float64(count) * a.cfg.Litho.Optics.PixelNM
}

// Sweep measures the CD at the cut across the full focus×dose matrix.
func (a *Analyzer) Sweep(mask *grid.Field, cut CutLine) (*Result, error) {
	n := a.cfg.Litho.Optics.GridSize
	if mask.W != n || mask.H != n {
		return nil, fmt.Errorf("procwin: mask %dx%d does not match grid %d", mask.W, mask.H, n)
	}
	spec := a.pool.CField(n, n)
	defer a.pool.PutCField(spec)
	spec.SetReal(mask)
	a.plan.Forward(spec)

	res := &Result{}
	doses := a.DoseValues()
	for fi := range a.banks {
		a.aerialAt(spec, fi)
		for _, d := range doses {
			res.Points = append(res.Points, Point{
				DefocusNM: a.focus[fi],
				Dose:      d,
				CDNM:      a.measureCD(d, cut),
			})
		}
		if fi == 0 {
			res.TargetCD = a.measureCD(1, cut)
		}
	}
	return res, nil
}

// WindowYield returns the fraction of matrix points whose CD stays
// within ±tolFrac of targetCD (0 targetCD yields 0).
func (r *Result) WindowYield(targetCD, tolFrac float64) float64 {
	if targetCD <= 0 || len(r.Points) == 0 {
		return 0
	}
	ok := 0
	for _, p := range r.Points {
		dev := p.CDNM/targetCD - 1
		if dev >= -tolFrac && dev <= tolFrac {
			ok++
		}
	}
	return float64(ok) / float64(len(r.Points))
}

// Bossung groups the sweep into per-dose focus curves for plotting.
func (r *Result) Bossung() map[float64][]Point {
	out := make(map[float64][]Point)
	for _, p := range r.Points {
		out[p.Dose] = append(out[p.Dose], p)
	}
	return out
}
