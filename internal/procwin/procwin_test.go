package procwin

import (
	"math"
	"testing"

	"lsopc/internal/engine"
	"lsopc/internal/grid"
	"lsopc/internal/litho"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	l := litho.DefaultConfig(64, 32)
	l.Optics.Kernels = 4
	c := DefaultConfig(l)
	c.FocusSteps = 3
	c.DoseSteps = 3
	return c
}

// lineMask builds a wide vertical line through the grid centre.
func lineMask(n, halfWidth int) *grid.Field {
	m := grid.NewField(n, n)
	c := n / 2
	for y := 8; y < n-8; y++ {
		for x := c - halfWidth; x < c+halfWidth; x++ {
			m.Set(x, y, 1)
		}
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(t).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.FocusMaxNM = -1 },
		func(c *Config) { c.FocusSteps = 0 },
		func(c *Config) { c.DoseSteps = 0 },
		func(c *Config) { c.DoseDelta = 1.5 },
		func(c *Config) { c.Litho.Threshold = 0 },
	}
	for i, mut := range bad {
		c := testConfig(t)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSweepMatrixShape(t *testing.T) {
	a, err := New(testConfig(t), engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	mask := lineMask(64, 4) // 8 px = 256 nm line
	res, err := a.Sweep(mask, CutLine{X: 32, Y: 32, Horizontal: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3*3 {
		t.Fatalf("matrix points %d, want 9", len(res.Points))
	}
	if res.TargetCD <= 0 {
		t.Fatal("nominal CD missing")
	}
	// Focus and dose axes as configured.
	fv := a.FocusValues()
	if len(fv) != 3 || fv[0] != 0 || fv[2] != 25 {
		t.Fatalf("focus values %v", fv)
	}
	dv := a.DoseValues()
	if len(dv) != 3 || math.Abs(dv[0]-0.98) > 1e-12 || dv[1] != 1 || math.Abs(dv[2]-1.02) > 1e-12 {
		t.Fatalf("dose values %v", dv)
	}
}

func TestBossungPhysics(t *testing.T) {
	a, err := New(testConfig(t), engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	mask := lineMask(64, 4)
	res, err := a.Sweep(mask, CutLine{X: 32, Y: 32, Horizontal: true})
	if err != nil {
		t.Fatal(err)
	}
	byDose := res.Bossung()
	if len(byDose) != 3 {
		t.Fatalf("Bossung dose groups %d", len(byDose))
	}
	// Higher dose ⇒ wider printed line at every focus (bright-field
	// clear mask: more dose prints more).
	for fi := 0; fi < 3; fi++ {
		low := byDose[0.98][fi].CDNM
		high := byDose[1.02][fi].CDNM
		if high < low {
			t.Fatalf("focus step %d: CD(dose 1.02)=%g < CD(dose 0.98)=%g", fi, high, low)
		}
	}
	// Defocus must not grow the line for a clear-field feature.
	nominal := byDose[1.0][0].CDNM
	defocused := byDose[1.0][2].CDNM
	if defocused > nominal+2*a.cfg.Litho.Optics.PixelNM {
		t.Fatalf("defocus grew CD: %g → %g", nominal, defocused)
	}
}

func TestMeasureCDExactWidth(t *testing.T) {
	a, err := New(testConfig(t), engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	mask := lineMask(64, 6) // 12 px = 384 nm — well resolved
	res, err := a.Sweep(mask, CutLine{X: 32, Y: 32, Horizontal: true})
	if err != nil {
		t.Fatal(err)
	}
	// Nominal CD should be within 2 px of the drawn width.
	if math.Abs(res.TargetCD-384) > 2*32 {
		t.Fatalf("nominal CD %g, drawn 384", res.TargetCD)
	}
}

func TestCDZeroWhenFeatureLost(t *testing.T) {
	a, err := New(testConfig(t), engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	// Empty mask prints nothing.
	res, err := a.Sweep(grid.NewField(64, 64), CutLine{X: 32, Y: 32, Horizontal: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.CDNM != 0 {
			t.Fatalf("empty mask CD %g at %+v", p.CDNM, p)
		}
	}
	// Out-of-grid cut is 0, not a panic.
	if _, err := a.Sweep(grid.NewField(64, 64), CutLine{X: -5, Y: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowYield(t *testing.T) {
	r := &Result{Points: []Point{
		{CDNM: 100}, {CDNM: 108}, {CDNM: 92}, {CDNM: 150}, {CDNM: 0},
	}}
	if got := r.WindowYield(100, 0.10); got != 3.0/5 {
		t.Fatalf("yield %g, want 0.6", got)
	}
	if r.WindowYield(0, 0.1) != 0 {
		t.Fatal("zero target must yield 0")
	}
	empty := &Result{}
	if empty.WindowYield(100, 0.1) != 0 {
		t.Fatal("empty result must yield 0")
	}
}

func TestSweepRejectsWrongMask(t *testing.T) {
	a, err := New(testConfig(t), engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Sweep(grid.NewField(32, 32), CutLine{X: 16, Y: 16}); err == nil {
		t.Fatal("mismatched mask accepted")
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	c := testConfig(t)
	c.FocusSteps = 0
	if _, err := New(c, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestVerticalCut(t *testing.T) {
	a, err := New(testConfig(t), engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	// Horizontal line measured with a vertical cut.
	n := 64
	m := grid.NewField(n, n)
	for y := 28; y < 36; y++ {
		for x := 8; x < 56; x++ {
			m.Set(x, y, 1)
		}
	}
	res, err := a.Sweep(m, CutLine{X: 32, Y: 32, Horizontal: false})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TargetCD-8*32) > 2*32 {
		t.Fatalf("vertical-cut CD %g, drawn %d", res.TargetCD, 8*32)
	}
}
