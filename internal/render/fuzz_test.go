package render

import (
	"bytes"
	"testing"
)

// FuzzReadPGM checks the PGM reader never panics on arbitrary input and
// that accepted images round-trip through WritePGM.
func FuzzReadPGM(f *testing.F) {
	f.Add([]byte("P5\n2 2\n255\n\x00\x01\x02\x03"))
	f.Add([]byte("P5\n# c\n1 1\n255\n\xff"))
	f.Add([]byte("P2\n1 1\n255\n0"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := ReadPGM(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WritePGM(&buf, img, 0, 1); err != nil {
			t.Fatalf("accepted image failed to serialise: %v", err)
		}
		back, err := ReadPGM(&buf)
		if err != nil {
			t.Fatalf("serialised image failed to parse: %v", err)
		}
		if back.W != img.W || back.H != img.H {
			t.Fatal("round trip changed dimensions")
		}
	})
}
