package render

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"lsopc/internal/grid"
)

// ReadPGM reads an 8-bit binary PGM (P5) into a field with values
// scaled to [0, 1]. It accepts the files WritePGM produces and any
// standard P5 with maxval ≤ 255.
func ReadPGM(r io.Reader) (*grid.Field, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, err
	}
	if magic != "P5" {
		return nil, fmt.Errorf("render: unsupported PGM magic %q (want P5)", magic)
	}
	var w, h, maxval int
	for _, dst := range []*int{&w, &h, &maxval} {
		tok, err := pgmToken(br)
		if err != nil {
			return nil, err
		}
		if _, err := fmt.Sscanf(tok, "%d", dst); err != nil {
			return nil, fmt.Errorf("render: bad PGM header token %q", tok)
		}
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("render: bad PGM dimensions %dx%d", w, h)
	}
	if maxval <= 0 || maxval > 255 {
		return nil, fmt.Errorf("render: unsupported PGM maxval %d", maxval)
	}
	pixels := make([]byte, w*h)
	if _, err := io.ReadFull(br, pixels); err != nil {
		return nil, fmt.Errorf("render: short PGM payload: %w", err)
	}
	f := grid.NewField(w, h)
	scale := 1 / float64(maxval)
	for i, p := range pixels {
		f.Data[i] = float64(p) * scale
	}
	return f, nil
}

// LoadPGM reads a PGM file from disk.
func LoadPGM(path string) (*grid.Field, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("render: %w", err)
	}
	defer file.Close()
	return ReadPGM(file)
}

// pgmToken reads the next whitespace-delimited header token, skipping
// '#' comments. After the maxval token exactly one whitespace byte
// separates the header from the payload, which this tokenizer consumes.
func pgmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	inComment := false
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", fmt.Errorf("render: truncated PGM header: %w", err)
		}
		switch {
		case inComment:
			if b == '\n' {
				inComment = false
			}
		case b == '#' && len(tok) == 0:
			inComment = true
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}
