package render

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"lsopc/internal/grid"
)

func TestPGMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := grid.NewField(16, 9)
	for i := range f.Data {
		f.Data[i] = float64(rng.Intn(256)) / 255
	}
	var buf bytes.Buffer
	if err := WritePGM(&buf, f, 0, 1); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 16 || got.H != 9 {
		t.Fatalf("shape %dx%d", got.W, got.H)
	}
	if !got.Equal(f, 1.0/255/2+1e-9) {
		t.Fatal("round trip lost more than quantisation error")
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.pgm")
	f := grid.NewField(8, 8)
	f.Set(3, 3, 1)
	if err := SavePGM(path, f, 0, 1); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPGM(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(3, 3) != 1 || got.At(0, 0) != 0 {
		t.Fatal("pixel values wrong after load")
	}
}

func TestReadPGMWithComments(t *testing.T) {
	src := "P5\n# a comment line\n2 1\n# another\n255\n\xff\x00"
	f, err := ReadPGM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.Data[0] != 1 || f.Data[1] != 0 {
		t.Fatalf("values %v", f.Data)
	}
}

func TestReadPGMErrors(t *testing.T) {
	cases := map[string]string{
		"bad magic":   "P2\n2 2\n255\n....",
		"no header":   "P5",
		"zero dims":   "P5\n0 2\n255\n",
		"big maxval":  "P5\n1 1\n65535\n\x00\x00",
		"short data":  "P5\n4 4\n255\n\x00\x01",
		"empty input": "",
	}
	for name, src := range cases {
		if _, err := ReadPGM(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadPGMMissingFile(t *testing.T) {
	if _, err := LoadPGM(filepath.Join(t.TempDir(), "nope.pgm")); err == nil {
		t.Fatal("missing file accepted")
	}
}
