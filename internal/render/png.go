package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"os"

	"lsopc/internal/grid"
)

// WritePNG writes f as an 8-bit grayscale PNG, mapping [lo, hi] to
// 0…255 with clamping.
func WritePNG(w io.Writer, f *grid.Field, lo, hi float64) error {
	if hi <= lo {
		return fmt.Errorf("render: invalid range [%g,%g]", lo, hi)
	}
	img := image.NewGray(image.Rect(0, 0, f.W, f.H))
	scale := 255 / (hi - lo)
	for y := 0; y < f.H; y++ {
		row := f.Row(y)
		for x := 0; x < f.W; x++ {
			p := (row[x] - lo) * scale
			if p < 0 {
				p = 0
			}
			if p > 255 {
				p = 255
			}
			img.SetGray(x, y, color.Gray{Y: uint8(p + 0.5)})
		}
	}
	return png.Encode(w, img)
}

// SavePNG writes f to the named file as PNG.
func SavePNG(path string, f *grid.Field, lo, hi float64) error {
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("render: %w", err)
	}
	defer file.Close()
	if err := WritePNG(file, f, lo, hi); err != nil {
		return err
	}
	return file.Close()
}

// WriteComparisonPNG renders target-vs-printed as a colour image:
// grey background, white match, red missing (target only), blue extra
// (printed only).
func WriteComparisonPNG(w io.Writer, target, printed *grid.Field) error {
	if !target.SameShape(printed) {
		return fmt.Errorf("render: comparison shapes differ")
	}
	img := image.NewRGBA(image.Rect(0, 0, target.W, target.H))
	for y := 0; y < target.H; y++ {
		for x := 0; x < target.W; x++ {
			t := target.At(x, y) > 0.5
			p := printed.At(x, y) > 0.5
			var c color.RGBA
			switch {
			case t && p:
				c = color.RGBA{255, 255, 255, 255}
			case t && !p:
				c = color.RGBA{220, 50, 47, 255} // missing: red
			case !t && p:
				c = color.RGBA{38, 139, 210, 255} // extra: blue
			default:
				c = color.RGBA{30, 30, 30, 255}
			}
			img.SetRGBA(x, y, c)
		}
	}
	return png.Encode(w, img)
}

// SaveComparisonPNG writes the target-vs-printed comparison to a file.
func SaveComparisonPNG(path string, target, printed *grid.Field) error {
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("render: %w", err)
	}
	defer file.Close()
	if err := WriteComparisonPNG(file, target, printed); err != nil {
		return err
	}
	return file.Close()
}
