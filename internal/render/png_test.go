package render

import (
	"bytes"
	"image/png"
	"path/filepath"
	"testing"

	"lsopc/internal/grid"
)

func TestWritePNGDecodes(t *testing.T) {
	f := grid.NewField(8, 6)
	f.Set(3, 2, 1)
	var buf bytes.Buffer
	if err := WritePNG(&buf, f, 0, 1); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 8 || b.Dy() != 6 {
		t.Fatalf("decoded size %dx%d", b.Dx(), b.Dy())
	}
	r, _, _, _ := img.At(3, 2).RGBA()
	if r != 0xffff {
		t.Fatalf("set pixel luma %d", r)
	}
	r, _, _, _ = img.At(0, 0).RGBA()
	if r != 0 {
		t.Fatalf("clear pixel luma %d", r)
	}
}

func TestWritePNGBadRange(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePNG(&buf, grid.NewField(2, 2), 1, 1); err == nil {
		t.Fatal("degenerate range accepted")
	}
}

func TestSavePNG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.png")
	if err := SavePNG(path, grid.NewField(4, 4), 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPGM(path); err == nil {
		t.Fatal("PNG should not parse as PGM (sanity)")
	}
}

func TestComparisonPNGColours(t *testing.T) {
	target := grid.FieldFromData(2, 2, []float64{1, 1, 0, 0})
	printed := grid.FieldFromData(2, 2, []float64{1, 0, 1, 0})
	var buf bytes.Buffer
	if err := WriteComparisonPNG(&buf, target, printed); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// (0,0) match → white; (1,0) missing → red-ish; (0,1) extra → blue-ish.
	r, g, b, _ := img.At(0, 0).RGBA()
	if r != 0xffff || g != 0xffff || b != 0xffff {
		t.Fatal("match pixel not white")
	}
	r, g, _, _ = img.At(1, 0).RGBA()
	if r < 0x8000 || g > 0x8000 {
		t.Fatal("missing pixel not red")
	}
	_, _, b, _ = img.At(0, 1).RGBA()
	if b < 0x8000 {
		t.Fatal("extra pixel not blue")
	}
	// Shape mismatch rejected.
	if err := WriteComparisonPNG(&buf, target, grid.NewField(3, 3)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestSaveComparisonPNG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cmp.png")
	f := grid.NewField(4, 4)
	if err := SaveComparisonPNG(path, f, f); err != nil {
		t.Fatal(err)
	}
}
