// Package render writes fields as images and terminal art: binary PGM
// (portable graymap) files for masks, aerial images and PV bands, plus
// compact ASCII previews for logs and examples. This replaces the
// contest kit's image dumps used for the paper's Figs. 1 and 2.
package render

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"lsopc/internal/grid"
)

// WritePGM writes f as an 8-bit binary PGM, mapping [lo, hi] to 0…255
// with clamping. Use lo=0, hi=1 for masks and resist images.
func WritePGM(w io.Writer, f *grid.Field, lo, hi float64) error {
	if hi <= lo {
		return fmt.Errorf("render: invalid range [%g,%g]", lo, hi)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", f.W, f.H)
	scale := 255 / (hi - lo)
	for _, v := range f.Data {
		p := (v - lo) * scale
		if p < 0 {
			p = 0
		}
		if p > 255 {
			p = 255
		}
		bw.WriteByte(byte(p + 0.5))
	}
	return bw.Flush()
}

// SavePGM writes f to the named file as PGM.
func SavePGM(path string, f *grid.Field, lo, hi float64) error {
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("render: %w", err)
	}
	defer file.Close()
	if err := WritePGM(file, f, lo, hi); err != nil {
		return err
	}
	return file.Close()
}

// Overlay encodes a comparison image: target contour, printed pattern
// and their disagreement, returned as a field with the conventional
// values 0 (background), 0.35 (missing: target only), 0.7 (extra:
// printed only), 1 (match). Render it with WritePGM(…, 0, 1).
func Overlay(target, printed *grid.Field) *grid.Field {
	out := grid.NewFieldLike(target)
	for i := range out.Data {
		t := target.Data[i] > 0.5
		p := printed.Data[i] > 0.5
		switch {
		case t && p:
			out.Data[i] = 1
		case t && !p:
			out.Data[i] = 0.35
		case !t && p:
			out.Data[i] = 0.7
		}
	}
	return out
}

// ASCII renders f as terminal art, downsampling to at most maxCols
// columns. Values map to the ramp " .:-=+*#%@" over [lo, hi].
func ASCII(f *grid.Field, maxCols int, lo, hi float64) string {
	const ramp = " .:-=+*#%@"
	if maxCols < 1 {
		maxCols = 1
	}
	step := 1
	for f.W/step > maxCols {
		step++
	}
	var b strings.Builder
	scale := float64(len(ramp)-1) / (hi - lo)
	// Terminal cells are ~2× taller than wide; sample rows at 2× step.
	for y := 0; y < f.H; y += 2 * step {
		for x := 0; x < f.W; x += step {
			// Box-average the cell for stable previews.
			var s float64
			n := 0
			for dy := 0; dy < 2*step && y+dy < f.H; dy++ {
				for dx := 0; dx < step && x+dx < f.W; dx++ {
					s += f.At(x+dx, y+dy)
					n++
				}
			}
			v := (s/float64(n) - lo) * scale
			if v < 0 {
				v = 0
			}
			if v > float64(len(ramp)-1) {
				v = float64(len(ramp) - 1)
			}
			b.WriteByte(ramp[int(v+0.5)])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ContourOverlayASCII draws the printed image with the target contour
// marked: '#' printed, '+' target contour over printed, 'x' target
// contour over background, '.' background.
func ContourOverlayASCII(target, printed *grid.Field, maxCols int) string {
	if maxCols < 1 {
		maxCols = 1
	}
	step := 1
	for target.W/step > maxCols {
		step++
	}
	// The contour is the inner boundary of the target: inside pixels
	// with at least one outside 4-neighbour.
	isContour := func(x, y int) bool {
		if target.At(x, y) <= 0.5 {
			return false
		}
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := x+d[0], y+d[1]
			if nx < 0 || nx >= target.W || ny < 0 || ny >= target.H {
				continue
			}
			if target.At(nx, ny) <= 0.5 {
				return true
			}
		}
		return false
	}
	var b strings.Builder
	for y := 0; y < target.H; y += 2 * step {
		for x := 0; x < target.W; x += step {
			contour, printedHere := false, false
			for dy := 0; dy < 2*step && y+dy < target.H && !contour; dy++ {
				for dx := 0; dx < step && x+dx < target.W; dx++ {
					if isContour(x+dx, y+dy) {
						contour = true
						break
					}
				}
			}
			for dy := 0; dy < 2*step && y+dy < target.H && !printedHere; dy++ {
				for dx := 0; dx < step && x+dx < target.W; dx++ {
					if printed.At(x+dx, y+dy) > 0.5 {
						printedHere = true
						break
					}
				}
			}
			switch {
			case contour && printedHere:
				b.WriteByte('+')
			case contour:
				b.WriteByte('x')
			case printedHere:
				b.WriteByte('#')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
