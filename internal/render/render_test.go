package render

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lsopc/internal/grid"
)

func TestWritePGMHeaderAndSize(t *testing.T) {
	f := grid.NewField(4, 3)
	f.Set(0, 0, 1)
	var buf bytes.Buffer
	if err := WritePGM(&buf, f, 0, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n4 3\n255\n")) {
		t.Fatalf("bad header: %q", out[:12])
	}
	pixels := out[len("P5\n4 3\n255\n"):]
	if len(pixels) != 12 {
		t.Fatalf("pixel payload %d bytes, want 12", len(pixels))
	}
	if pixels[0] != 255 {
		t.Fatalf("first pixel = %d, want 255", pixels[0])
	}
	if pixels[1] != 0 {
		t.Fatalf("second pixel = %d, want 0", pixels[1])
	}
}

func TestWritePGMClampsRange(t *testing.T) {
	f := grid.FieldFromData(3, 1, []float64{-5, 0.5, 7})
	var buf bytes.Buffer
	if err := WritePGM(&buf, f, 0, 1); err != nil {
		t.Fatal(err)
	}
	px := buf.Bytes()[len("P5\n3 1\n255\n"):]
	if px[0] != 0 || px[2] != 255 {
		t.Fatalf("clamping failed: %v", px)
	}
	if px[1] != 128 {
		t.Fatalf("midpoint = %d, want 128", px[1])
	}
}

func TestWritePGMRejectsBadRange(t *testing.T) {
	f := grid.NewField(2, 2)
	var buf bytes.Buffer
	if err := WritePGM(&buf, f, 1, 1); err == nil {
		t.Fatal("degenerate range accepted")
	}
}

func TestSavePGM(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mask.pgm")
	f := grid.NewField(8, 8)
	f.Fill(1)
	if err := SavePGM(path, f, 0, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("P5\n8 8\n255\n")) {
		t.Fatal("saved file malformed")
	}
}

func TestOverlayClasses(t *testing.T) {
	target := grid.FieldFromData(2, 2, []float64{1, 1, 0, 0})
	printed := grid.FieldFromData(2, 2, []float64{1, 0, 1, 0})
	o := Overlay(target, printed)
	want := []float64{1, 0.35, 0.7, 0}
	for i := range want {
		if o.Data[i] != want[i] {
			t.Fatalf("overlay[%d] = %g, want %g", i, o.Data[i], want[i])
		}
	}
}

func TestASCIIShapeAndRamp(t *testing.T) {
	f := grid.NewField(32, 32)
	for y := 0; y < 32; y++ {
		for x := 16; x < 32; x++ {
			f.Set(x, y, 1)
		}
	}
	art := ASCII(f, 16, 0, 1)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 8 { // 32 rows / (2*2 step)
		t.Fatalf("line count = %d", len(lines))
	}
	for _, l := range lines {
		if len(l) != 16 {
			t.Fatalf("line width = %d, want 16", len(l))
		}
		if l[0] != ' ' || l[15] != '@' {
			t.Fatalf("ramp endpoints wrong in %q", l)
		}
	}
}

func TestASCIISmallFieldNoDownsample(t *testing.T) {
	f := grid.NewField(4, 4)
	art := ASCII(f, 80, 0, 1)
	if len(strings.Split(strings.TrimRight(art, "\n"), "\n")) != 2 {
		t.Fatal("4-row field should render 2 terminal rows")
	}
}

func TestContourOverlayASCIISymbols(t *testing.T) {
	const n = 16
	target := grid.NewField(n, n)
	for y := 4; y < 12; y++ {
		for x := 4; x < 12; x++ {
			target.Set(x, y, 1)
		}
	}
	// Printed image matches the target exactly.
	art := ContourOverlayASCII(target, target, n)
	if !strings.Contains(art, "+") {
		t.Fatal("matching print must show '+' contour")
	}
	if strings.Contains(art, "x") {
		t.Fatal("matching print must not show missing contour 'x'")
	}
	// Nothing printed: contour renders as 'x', no '#'.
	empty := grid.NewField(n, n)
	art = ContourOverlayASCII(target, empty, n)
	if !strings.Contains(art, "x") || strings.Contains(art, "#") || strings.Contains(art, "+") {
		t.Fatalf("missing print rendering wrong:\n%s", art)
	}
}
