package rt

import (
	"fmt"
	"sync"

	"lsopc/internal/engine"
	"lsopc/internal/fft"
	"lsopc/internal/grid"
	"lsopc/internal/optics"
)

// Bank is the immutable resource bank of one optical preset: the
// nominal and defocused SOCS kernel banks, the shared 1-D FFT plans for
// the preset's grid, a rasterised-target cache, and the pool sessions
// lease their scratch from. Everything reachable from a Bank is
// immutable after construction (the pool and target cache are
// internally synchronised), so one Bank safely backs any number of
// concurrent sessions.
type Bank struct {
	cfg       optics.Config
	defocusNM float64
	nominal   *optics.Bank
	defocus   *optics.Bank
	row, col  *fft.Plan
	pool      *Pool
	targets   sync.Map // any -> *targetEntry
	coarse    sync.Map // int (factor) -> *coarseEntry
}

// coarseEntry memoizes one coarse-level bank derivation.
type coarseEntry struct {
	once sync.Once
	bank *Bank
	err  error
}

// targetEntry memoizes one rasterised target, including a failed build.
type targetEntry struct {
	once  sync.Once
	field *grid.Field
	err   error
}

// NewBank derives the full resource bank for the given optics
// configuration and defocus excursion. Kernel-bank synthesis is
// parallelised on eng (nil = serial); the result is independent of the
// engine. pool nil defaults to Shared.
func NewBank(cfg optics.Config, defocusNM float64, eng *engine.Engine, pool *Pool) (*Bank, error) {
	nom, err := OpticsBankFor(cfg, 0, eng)
	if err != nil {
		return nil, err
	}
	def, err := OpticsBankFor(cfg, defocusNM, eng)
	if err != nil {
		return nil, err
	}
	return WrapBanks(nom, def, pool)
}

// WrapBanks builds a resource bank around existing kernel banks (the
// compatibility path for callers that synthesised their own). Both
// banks must share one grid size.
func WrapBanks(nominal, defocus *optics.Bank, pool *Pool) (*Bank, error) {
	if nominal == nil || defocus == nil {
		return nil, fmt.Errorf("rt: bank requires nominal and defocus kernel banks")
	}
	n := nominal.Cfg.GridSize
	if defocus.Cfg.GridSize != n {
		return nil, fmt.Errorf("rt: bank grids differ: %d vs %d", n, defocus.Cfg.GridSize)
	}
	if pool == nil {
		pool = Shared
	}
	return &Bank{
		cfg:       nominal.Cfg,
		defocusNM: defocus.DefocusNM,
		nominal:   nominal,
		defocus:   defocus,
		row:       fft.CachedPlan(n),
		col:       fft.CachedPlan(n),
		pool:      pool,
	}, nil
}

// Optics returns the optics configuration the bank was derived for.
func (b *Bank) Optics() optics.Config { return b.cfg }

// DefocusNM returns the defocus excursion of the inner-corner bank.
func (b *Bank) DefocusNM() float64 { return b.defocusNM }

// GridSize returns the preset's grid edge in pixels.
func (b *Bank) GridSize() int { return b.cfg.GridSize }

// Nominal returns the best-focus kernel bank.
func (b *Bank) Nominal() *optics.Bank { return b.nominal }

// Defocus returns the defocused kernel bank.
func (b *Bank) Defocus() *optics.Bank { return b.defocus }

// RowPlan returns the shared 1-D FFT plan for the grid's rows.
func (b *Bank) RowPlan() *fft.Plan { return b.row }

// ColPlan returns the shared 1-D FFT plan for the grid's columns.
func (b *Bank) ColPlan() *fft.Plan { return b.col }

// Pool returns the field pool sessions on this bank lease from.
func (b *Bank) Pool() *Pool { return b.pool }

// Radius returns the spectral band half-width covering both kernel
// banks — the band the session's pruned FFT passes restrict to.
func (b *Bank) Radius() int {
	r := b.nominal.Radius()
	if dr := b.defocus.Radius(); dr > r {
		r = dr
	}
	return r
}

// Coarse returns the resource bank of the factor×-downsampled grid,
// derived once per factor by spectral truncation of this bank's kernel
// banks (see optics.Bank.Coarse) and memoized on the parent. The coarse
// bank shares the parent's pool, so multi-resolution sessions recycle
// coarse-grid scratch through the same dimension-keyed free lists.
// factor 1 returns the bank itself.
func (b *Bank) Coarse(factor int) (*Bank, error) {
	if factor == 1 {
		return b, nil
	}
	v, ok := b.coarse.Load(factor)
	if !ok {
		v, _ = b.coarse.LoadOrStore(factor, &coarseEntry{})
	}
	e := v.(*coarseEntry)
	e.once.Do(func() {
		nom, err := b.nominal.Coarse(factor)
		if err != nil {
			e.err = err
			return
		}
		def, err := b.defocus.Coarse(factor)
		if err != nil {
			e.err = err
			return
		}
		e.bank, e.err = WrapBanks(nom, def, b.pool)
	})
	return e.bank, e.err
}

// Target memoizes a derived read-only field (typically a rasterised
// layout) under the given key. The first caller's build result — value
// or error — is cached; every later call returns it without invoking
// build again, with concurrent first calls collapsed to one build. The
// returned field is shared and must not be modified.
func (b *Bank) Target(key any, build func() (*grid.Field, error)) (*grid.Field, error) {
	v, ok := b.targets.Load(key)
	if !ok {
		v, _ = b.targets.LoadOrStore(key, &targetEntry{})
	}
	e := v.(*targetEntry)
	e.once.Do(func() { e.field, e.err = build() })
	return e.field, e.err
}

// opticsKey identifies one memoized kernel bank. optics.Config is a
// struct of scalars, so the key is comparable.
type opticsKey struct {
	cfg       optics.Config
	defocusNM float64
}

// opticsEntry memoizes one kernel-bank synthesis.
type opticsEntry struct {
	once sync.Once
	bank *optics.Bank
	err  error
}

var opticsCache sync.Map // opticsKey -> *opticsEntry

// OpticsBankFor returns the process-wide shared kernel bank for the
// given configuration and defocus, synthesising it on first use.
// Kernel construction is deterministic and independent of the engine,
// so memoizing across callers changes nothing but the sharing: N
// pipelines at one preset derive the bank once instead of N times.
func OpticsBankFor(cfg optics.Config, defocusNM float64, eng *engine.Engine) (*optics.Bank, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	key := opticsKey{cfg: cfg, defocusNM: defocusNM}
	v, ok := opticsCache.Load(key)
	if !ok {
		v, _ = opticsCache.LoadOrStore(key, &opticsEntry{})
	}
	e := v.(*opticsEntry)
	e.once.Do(func() { e.bank, e.err = optics.NewBank(cfg, defocusNM, eng) })
	return e.bank, e.err
}

// bankEntry memoizes one resource-bank construction.
type bankEntry struct {
	once sync.Once
	bank *Bank
	err  error
}

var bankCache sync.Map // opticsKey -> *bankEntry

// BankFor returns the process-wide shared resource bank (on the Shared
// pool) for the given optics configuration and defocus excursion,
// deriving it on first use. This is what makes pipeline construction
// cheap: every pipeline at one preset is a handle on the same bank.
func BankFor(cfg optics.Config, defocusNM float64, eng *engine.Engine) (*Bank, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	key := opticsKey{cfg: cfg, defocusNM: defocusNM}
	v, ok := bankCache.Load(key)
	if !ok {
		v, _ = bankCache.LoadOrStore(key, &bankEntry{})
	}
	e := v.(*bankEntry)
	e.once.Do(func() { e.bank, e.err = NewBank(cfg, defocusNM, eng, Shared) })
	return e.bank, e.err
}
