// Package rt is the session-based runtime substrate underneath the
// optimizer pipelines: dimension-keyed free lists of field memory (Pool)
// and immutable, concurrency-safe per-preset resource banks (Bank).
//
// The split mirrors how the paper's GPU implementation manages device
// memory. Everything derivable once per optical preset — SOCS kernel
// banks, FFT plans, rasterised targets — lives in a Bank shared by every
// concurrent job, while the mutable per-job state (coherent-field
// batches, gradient accumulators, level-set scratch) is leased from a
// Pool and returned when the job's session ends. N concurrent
// optimizations therefore cost one bank plus N sessions of scratch, with
// the scratch itself recycled across jobs, instead of N fully duplicated
// pipelines.
package rt

import (
	"sync"
	"sync/atomic"

	"lsopc/internal/grid"
	"lsopc/internal/obs"
)

// Process-wide pool metrics, aggregated across all pools in the default
// registry (per-pool numbers stay available through Pool.Stats). The
// pointers are resolved once so a lease costs two extra atomic adds.
var (
	mLeases   = obs.Default.Counter("rt.pool.leases")
	mReuses   = obs.Default.Counter("rt.pool.reuses")
	mMisses   = obs.Default.Counter("rt.pool.misses")
	mReleases = obs.Default.Counter("rt.pool.releases")
)

// traceLease reports one lease to the runtime trace sink when tracing
// is enabled (an atomic load and nil check otherwise).
func traceLease(kind string, elems int, hit bool) {
	if s := obs.Runtime(); s != nil {
		s.Emit(obs.Event{Type: obs.EventPool, Name: kind, N: elems, Hit: hit})
	}
}

// traceRelease reports one release to the runtime trace sink.
func traceRelease(kind string, elems int) {
	if s := obs.Runtime(); s != nil {
		s.Emit(obs.Event{Type: obs.EventPool, Name: kind + ".release", N: elems})
	}
}

// dims keys one free list by exact grid shape.
type dims struct{ w, h int }

// Pool is a dimension-keyed free list of Field/CField/CField32 storage.
// Lease with Field/CField/CField32, return with the matching Put method.
// Leased fields are always zeroed, so a pooled lease is a drop-in
// replacement for grid.NewField — results stay bit-identical whether
// memory is fresh or recycled.
//
// Free lists are keyed by grid dimensions (w, h), not element count:
// multi-resolution sessions interleave leases at several grid sizes, and
// a shape-exact key guarantees a released coarse-grid buffer serves the
// next coarse-grid lease directly instead of being found (or missed)
// through an area collision. Backing storage is held through sync.Pool,
// so memory pressure can reclaim idle buffers between jobs.
//
// A Pool is safe for concurrent use. The zero value is ready to use.
type Pool struct {
	fields    sync.Map // dims -> *sync.Pool of *grid.Field
	cfields   sync.Map // dims -> *sync.Pool of *grid.CField
	cfields32 sync.Map // dims -> *sync.Pool of *grid.CField32

	leases int64 // total leases served
	reuses int64 // leases served from the free list
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Shared is the process-wide default pool. Pipelines and sessions lease
// from it unless given a private pool, so independent pipelines at the
// same preset recycle each other's scratch.
var Shared = NewPool()

func list(m *sync.Map, d dims) *sync.Pool {
	if sp, ok := m.Load(d); ok {
		return sp.(*sync.Pool)
	}
	sp, _ := m.LoadOrStore(d, &sync.Pool{})
	return sp.(*sync.Pool)
}

// Field leases a zeroed w×h field.
func (p *Pool) Field(w, h int) *grid.Field {
	atomic.AddInt64(&p.leases, 1)
	mLeases.Inc()
	if v := list(&p.fields, dims{w, h}).Get(); v != nil {
		atomic.AddInt64(&p.reuses, 1)
		mReuses.Inc()
		traceLease("field", w*h, true)
		f := v.(*grid.Field)
		f.Reshape(w, h)
		f.Zero()
		return f
	}
	mMisses.Inc()
	traceLease("field", w*h, false)
	return grid.NewField(w, h)
}

// PutField returns a field to the free list. nil is ignored. The caller
// must not use f afterwards.
func (p *Pool) PutField(f *grid.Field) {
	if f == nil {
		return
	}
	mReleases.Inc()
	traceRelease("field", len(f.Data))
	list(&p.fields, dims{f.W, f.H}).Put(f)
}

// CField leases a zeroed w×h complex field.
func (p *Pool) CField(w, h int) *grid.CField {
	atomic.AddInt64(&p.leases, 1)
	mLeases.Inc()
	if v := list(&p.cfields, dims{w, h}).Get(); v != nil {
		atomic.AddInt64(&p.reuses, 1)
		mReuses.Inc()
		traceLease("cfield", w*h, true)
		c := v.(*grid.CField)
		c.Reshape(w, h)
		c.Zero()
		return c
	}
	mMisses.Inc()
	traceLease("cfield", w*h, false)
	return grid.NewCField(w, h)
}

// PutCField returns a complex field to the free list. nil is ignored.
// The caller must not use c afterwards.
func (p *Pool) PutCField(c *grid.CField) {
	if c == nil {
		return
	}
	mReleases.Inc()
	traceRelease("cfield", len(c.Data))
	list(&p.cfields, dims{c.W, c.H}).Put(c)
}

// CField32 leases a zeroed w×h complex64 field for the float32 spectral
// fast path.
func (p *Pool) CField32(w, h int) *grid.CField32 {
	atomic.AddInt64(&p.leases, 1)
	mLeases.Inc()
	if v := list(&p.cfields32, dims{w, h}).Get(); v != nil {
		atomic.AddInt64(&p.reuses, 1)
		mReuses.Inc()
		traceLease("cfield32", w*h, true)
		c := v.(*grid.CField32)
		c.Reshape(w, h)
		c.Zero()
		return c
	}
	mMisses.Inc()
	traceLease("cfield32", w*h, false)
	return grid.NewCField32(w, h)
}

// PutCField32 returns a complex64 field to the free list. nil is
// ignored. The caller must not use c afterwards.
func (p *Pool) PutCField32(c *grid.CField32) {
	if c == nil {
		return
	}
	mReleases.Inc()
	traceRelease("cfield32", len(c.Data))
	list(&p.cfields32, dims{c.W, c.H}).Put(c)
}

// Stats reports total leases and how many were served from the free
// list (for tests and capacity diagnostics).
func (p *Pool) Stats() (leases, reuses int64) {
	return atomic.LoadInt64(&p.leases), atomic.LoadInt64(&p.reuses)
}
