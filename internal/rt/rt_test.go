package rt

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"lsopc/internal/grid"
	"lsopc/internal/optics"
)

func TestPoolFieldReuseAndZeroing(t *testing.T) {
	// sync.Pool may drop any individual Put (it deliberately does so
	// under the race detector), so reuse is asserted over many rounds
	// rather than on one lease.
	p := NewPool()
	recycled := false
	for round := 0; round < 100 && !recycled; round++ {
		f := p.Field(8, 4)
		if f.W != 8 || f.H != 4 {
			t.Fatalf("leased shape %dx%d", f.W, f.H)
		}
		f.Fill(3.5)
		p.PutField(f)

		// Same dimensions: a recycled buffer must come back zeroed.
		g := p.Field(8, 4)
		if g.W != 8 || g.H != 4 {
			t.Fatalf("lease %dx%d", g.W, g.H)
		}
		if &g.Data[0] == &f.Data[0] {
			recycled = true
			for i, v := range g.Data {
				if v != 0 {
					t.Fatalf("recycled field not zeroed at %d: %g", i, v)
				}
			}
		}
		p.PutField(g)
	}
	if !recycled {
		t.Fatal("free list never recycled a buffer")
	}
	leases, reuses := p.Stats()
	if reuses < 1 || reuses >= leases {
		t.Fatalf("stats = %d leases / %d reuses", leases, reuses)
	}
}

func TestPoolCFieldReuseAndZeroing(t *testing.T) {
	p := NewPool()
	recycled := false
	for round := 0; round < 100 && !recycled; round++ {
		c := p.CField(4, 4)
		c.Data[5] = complex(1, 2)
		p.PutCField(c)

		d := p.CField(4, 4)
		if d.W != 4 || d.H != 4 {
			t.Fatalf("lease %dx%d", d.W, d.H)
		}
		if &d.Data[0] == &c.Data[0] {
			recycled = true
			for i, v := range d.Data {
				if v != 0 {
					t.Fatalf("recycled cfield not zeroed at %d: %v", i, v)
				}
			}
		}
		p.PutCField(d)
	}
	if !recycled {
		t.Fatal("free list never recycled a buffer")
	}
}

func TestPoolCField32ReuseAndZeroing(t *testing.T) {
	p := NewPool()
	recycled := false
	for round := 0; round < 100 && !recycled; round++ {
		c := p.CField32(4, 4)
		c.Data[5] = complex(1, 2)
		p.PutCField32(c)

		d := p.CField32(4, 4)
		if d.W != 4 || d.H != 4 {
			t.Fatalf("lease %dx%d", d.W, d.H)
		}
		if &d.Data[0] == &c.Data[0] {
			recycled = true
			for i, v := range d.Data {
				if v != 0 {
					t.Fatalf("recycled cfield32 not zeroed at %d: %v", i, v)
				}
			}
		}
		p.PutCField32(d)
	}
	if !recycled {
		t.Fatal("free list never recycled a buffer")
	}
}

func TestPoolDistinctSizesDoNotMix(t *testing.T) {
	p := NewPool()
	small := p.Field(4, 4)
	p.PutField(small)
	big := p.Field(8, 8)
	if len(big.Data) != 64 {
		t.Fatalf("big lease has %d elements", len(big.Data))
	}
	_, reuses := p.Stats()
	if reuses != 0 {
		t.Fatal("a 16-element buffer must not serve a 64-element lease")
	}
}

func TestPoolDistinctShapesDoNotMix(t *testing.T) {
	// Dimension keying: equal element counts with different shapes keep
	// separate free lists, so multi-resolution sessions never trade
	// buffers across transposed or re-factored shapes.
	p := NewPool()
	f := p.Field(8, 4)
	p.PutField(f)
	g := p.Field(4, 8)
	if g.W != 4 || g.H != 8 {
		t.Fatalf("lease %dx%d", g.W, g.H)
	}
	_, reuses := p.Stats()
	if reuses != 0 {
		t.Fatal("an 8x4 buffer must not serve a 4x8 lease")
	}
}

func TestPoolNilPutsAreSafe(t *testing.T) {
	p := NewPool()
	p.PutField(nil)
	p.PutCField(nil)
	p.PutCField32(nil)
}

// BenchmarkPoolMixedSizeLeases exercises the multi-resolution lease
// pattern: a session alternating between fine-grid and coarse-grid
// scratch on every round. With dimension-keyed free lists the steady
// state serves every lease from the pool — the reported allocs/op is the
// regression gate for fallback allocations.
func BenchmarkPoolMixedSizeLeases(b *testing.B) {
	p := NewPool()
	const fine, coarse = 64, 16
	// Warm one buffer per (type, size) so the steady state only recycles.
	warm := func() {
		f := p.Field(fine, fine)
		fc := p.Field(coarse, coarse)
		c := p.CField(fine, fine)
		cc := p.CField(coarse, coarse)
		c32 := p.CField32(fine, fine)
		cc32 := p.CField32(coarse, coarse)
		p.PutField(f)
		p.PutField(fc)
		p.PutCField(c)
		p.PutCField(cc)
		p.PutCField32(c32)
		p.PutCField32(cc32)
	}
	warm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm()
	}
}

func TestPoolConcurrentLeases(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f := p.Field(16, 16)
				c := p.CField(16, 16)
				f.Fill(1)
				c.Data[0] = 1
				p.PutField(f)
				p.PutCField(c)
			}
		}()
	}
	wg.Wait()
	leases, _ := p.Stats()
	if leases != 800 {
		t.Fatalf("leases = %d, want 800", leases)
	}
}

// testOptics returns a small distinct optics configuration per tag so
// memoization tests do not collide across test runs in one process.
func testOptics(kernels int) optics.Config {
	cfg := optics.Default(64, 32)
	cfg.Kernels = kernels
	return cfg
}

func TestBankTargetMemoization(t *testing.T) {
	b, err := BankFor(testOptics(2), 25, nil)
	if err != nil {
		t.Fatal(err)
	}
	var builds int32
	build := func() (*grid.Field, error) {
		atomic.AddInt32(&builds, 1)
		return grid.NewField(b.GridSize(), b.GridSize()), nil
	}

	const workers = 8
	got := make([]*grid.Field, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := b.Target("layout-A", build)
			if err != nil {
				t.Error(err)
			}
			got[i] = f
		}(i)
	}
	wg.Wait()
	if n := atomic.LoadInt32(&builds); n != 1 {
		t.Fatalf("build ran %d times, want 1", n)
	}
	for _, f := range got[1:] {
		if f != got[0] {
			t.Fatal("concurrent callers saw different targets")
		}
	}

	// Errors are memoized too: the failed build is not retried.
	wantErr := errors.New("bad layout")
	for i := 0; i < 2; i++ {
		_, err := b.Target("layout-bad", func() (*grid.Field, error) { return nil, wantErr })
		if !errors.Is(err, wantErr) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
}

func TestOpticsBankMemoization(t *testing.T) {
	cfg := testOptics(3)
	a, err := OpticsBankFor(cfg, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpticsBankFor(cfg, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same configuration must share one kernel bank")
	}
	c, err := OpticsBankFor(cfg, 25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different defocus must not share a bank")
	}
	bad := cfg
	bad.GridSize = 100 // not a power of two
	if _, err := OpticsBankFor(bad, 0, nil); err == nil {
		t.Fatal("invalid configuration accepted")
	}
}

func TestBankForMemoizationAndAccessors(t *testing.T) {
	cfg := testOptics(4)
	a, err := BankFor(cfg, 25, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BankFor(cfg, 25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same preset must share one resource bank")
	}
	if a.GridSize() != cfg.GridSize || a.Optics() != cfg || a.DefocusNM() != 25 {
		t.Fatal("bank accessors wrong")
	}
	if a.Pool() != Shared {
		t.Fatal("BankFor must use the shared pool")
	}
	if a.Nominal() == nil || a.Defocus() == nil || a.RowPlan() == nil || a.ColPlan() == nil {
		t.Fatal("bank resources missing")
	}
	if r := a.Radius(); r < a.Nominal().Radius() || r < a.Defocus().Radius() {
		t.Fatal("bank radius must cover both kernel banks")
	}
}

func TestWrapBanksValidation(t *testing.T) {
	if _, err := WrapBanks(nil, nil, nil); err == nil {
		t.Fatal("nil banks accepted")
	}
	nom, err := OpticsBankFor(testOptics(2), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	other, err := OpticsBankFor(optics.Default(32, 64), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WrapBanks(nom, other, nil); err == nil {
		t.Fatal("mismatched grids accepted")
	}
	bk, err := WrapBanks(nom, nom, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bk.Pool() != Shared {
		t.Fatal("nil pool must default to Shared")
	}
}
