// Package ruleopc implements classic rule-based optical proximity
// correction — the industrial pre-ILT approach the inverse methods in
// the paper's §I are measured against: a uniform edge bias plus square
// serifs stamped on convex corners (which also realises line-end
// hammerheads, a line end being two adjacent convex corners).
//
// It operates on raster masks using the exact Euclidean signed-distance
// field, so the bias is a true morphological dilation/erosion rather
// than a per-axis approximation. Besides serving as a comparison
// method, its output is a good warm start for the level-set optimizer
// (core.Options.InitialMask), mirroring the hybrid flows used in
// production.
package ruleopc

import (
	"fmt"

	"lsopc/internal/grid"
	"lsopc/internal/levelset"
)

// Options configures the correction recipe, in pixels of the target
// raster.
type Options struct {
	// BiasPx grows (positive) or shrinks (negative) every feature edge
	// by this Euclidean distance.
	BiasPx float64
	// SerifPx stamps a SerifPx×SerifPx square centred on every convex
	// corner of the target (0 disables).
	SerifPx int
}

// DefaultOptions returns a contest-scale recipe at the given pixel
// pitch: 10 nm bias, 30 nm serifs.
func DefaultOptions(pixelNM float64) Options {
	return Options{
		BiasPx:  10 / pixelNM,
		SerifPx: int(30/pixelNM + 0.5),
	}
}

// Validate checks the recipe.
func (o Options) Validate() error {
	if o.SerifPx < 0 {
		return fmt.Errorf("ruleopc: serif size must be ≥ 0, got %d", o.SerifPx)
	}
	return nil
}

// Apply produces the rule-corrected mask for the target image.
func Apply(target *grid.Field, opts Options) (*grid.Field, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	out := grid.NewFieldLike(target)

	// Euclidean bias: the dilated/eroded mask is the sub-level set
	// ψ ≤ BiasPx of the target's signed distance function.
	psi := levelset.SignedDistance(target)
	for i, v := range psi.Data {
		if v <= opts.BiasPx {
			out.Data[i] = 1
		}
	}

	// Serifs on the *target's* convex corners (placed before bias was
	// applied, as rule decks do).
	if opts.SerifPx > 0 {
		for _, c := range convexCorners(target) {
			stampSquare(out, c[0], c[1], opts.SerifPx)
		}
	}
	return out, nil
}

// convexCorners finds the lattice corners of the mask boundary where a
// 2×2 neighbourhood contains exactly one mask pixel (a 90° convex
// corner). Returned coordinates are the corner lattice points (between
// pixels), in pixel units.
func convexCorners(mask *grid.Field) [][2]int {
	at := func(x, y int) bool {
		if x < 0 || x >= mask.W || y < 0 || y >= mask.H {
			return false
		}
		return mask.At(x, y) > 0.5
	}
	var out [][2]int
	for y := -1; y < mask.H; y++ {
		for x := -1; x < mask.W; x++ {
			cnt := 0
			if at(x, y) {
				cnt++
			}
			if at(x+1, y) {
				cnt++
			}
			if at(x, y+1) {
				cnt++
			}
			if at(x+1, y+1) {
				cnt++
			}
			if cnt == 1 {
				out = append(out, [2]int{x + 1, y + 1})
			}
		}
	}
	return out
}

// stampSquare sets a size×size square centred on lattice point (cx, cy),
// clamped to the grid.
func stampSquare(mask *grid.Field, cx, cy, size int) {
	half := size / 2
	x0, y0 := cx-half, cy-half
	x1, y1 := x0+size, y0+size
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > mask.W {
		x1 = mask.W
	}
	if y1 > mask.H {
		y1 = mask.H
	}
	for y := y0; y < y1; y++ {
		row := mask.Row(y)
		for x := x0; x < x1; x++ {
			row[x] = 1
		}
	}
}
