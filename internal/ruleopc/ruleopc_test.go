package ruleopc

import (
	"testing"

	"lsopc/internal/grid"
)

func rectMask(n, x0, y0, x1, y1 int) *grid.Field {
	f := grid.NewField(n, n)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			f.Set(x, y, 1)
		}
	}
	return f
}

func TestBiasGrowsMask(t *testing.T) {
	m := rectMask(64, 20, 20, 40, 40)
	out, err := Apply(m, Options{BiasPx: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Sum() <= m.Sum() {
		t.Fatal("positive bias must grow the mask")
	}
	// Original pixels retained.
	for i := range m.Data {
		if m.Data[i] == 1 && out.Data[i] != 1 {
			t.Fatal("bias dropped original pixels")
		}
	}
	// Two-pixel dilation of a 20×20 square: edges move out by 2 on each
	// side along the axes.
	if out.At(18, 30) != 1 || out.At(41, 30) != 1 || out.At(30, 18) != 1 {
		t.Fatal("axis dilation wrong")
	}
	if out.At(15, 30) != 0 {
		t.Fatal("dilation overshot")
	}
}

func TestNegativeBiasShrinks(t *testing.T) {
	m := rectMask(64, 20, 20, 40, 40)
	out, err := Apply(m, Options{BiasPx: -3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Sum() >= m.Sum() {
		t.Fatal("negative bias must shrink the mask")
	}
	if out.At(20, 30) != 0 || out.At(30, 30) != 1 {
		t.Fatal("erosion shape wrong")
	}
}

func TestSerifsAtConvexCorners(t *testing.T) {
	m := rectMask(64, 24, 24, 40, 40)
	corners := convexCorners(m)
	if len(corners) != 4 {
		t.Fatalf("square has %d convex corners, want 4", len(corners))
	}
	out, err := Apply(m, Options{SerifPx: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Serif material outside the original corner.
	if out.At(22, 22) != 1 || out.At(42, 42) != 1 {
		t.Fatal("corner serifs missing")
	}
	// Mid-edge must not gain serif material (only 4 corners).
	if out.At(32, 21) != 0 {
		t.Fatal("serif leaked onto edge")
	}
}

func TestConcaveCornerGetsNoSerif(t *testing.T) {
	// L-shape: 5 convex corners + 1 concave.
	m := rectMask(64, 20, 20, 28, 44)
	for y := 36; y < 44; y++ {
		for x := 28; x < 44; x++ {
			m.Set(x, y, 1)
		}
	}
	corners := convexCorners(m)
	if len(corners) != 5 {
		t.Fatalf("L has %d convex corners, want 5", len(corners))
	}
}

func TestSerifClampsAtBorder(t *testing.T) {
	m := rectMask(16, 0, 0, 4, 4)
	if _, err := Apply(m, Options{SerifPx: 8}); err != nil {
		t.Fatal(err) // must not panic at the grid border
	}
}

func TestValidate(t *testing.T) {
	if err := (Options{SerifPx: -1}).Validate(); err == nil {
		t.Fatal("negative serif accepted")
	}
	if _, err := Apply(grid.NewField(8, 8), Options{SerifPx: -2}); err == nil {
		t.Fatal("Apply accepted invalid options")
	}
	o := DefaultOptions(4)
	if o.BiasPx != 2.5 || o.SerifPx != 8 {
		t.Fatalf("default recipe %+v", o)
	}
}

func TestZeroOptionsIdentityBias(t *testing.T) {
	m := rectMask(32, 10, 10, 22, 22)
	out, err := Apply(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(m, 0) {
		t.Fatal("zero recipe must reproduce the target")
	}
}
