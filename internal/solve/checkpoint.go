package solve

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"lsopc/internal/grid"
	"lsopc/internal/obs"
)

// Checkpoint is the serialisable state of a run captured at an
// iteration boundary. It holds everything a bit-exact resume needs:
// the evolving fields (ψ or θ plus the CG memory), the driver's scalar
// bookkeeping (step scale, previous/best cost), the history recorded so
// far, the watchdog counters, and — for multi-resolution runs — the
// completed coarser levels' history and the level position. Snapshots
// are not checkpointed: a resumed run re-records snapshots only from
// its resume point onward.
//
// The optimizer loops consume no randomness, so no RNG state is
// captured; identical options plus a checkpoint reproduce the
// uninterrupted run exactly on the default float64 path.
type Checkpoint struct {
	// Method tags the optimizer that produced the checkpoint
	// ("level-set" or a pixel-baseline variant name).
	Method string
	// Factor is the resolution level the run was in (grid downsample
	// factor; 1 = full resolution).
	Factor int
	// Iter is the next level-local iteration index.
	Iter int
	// Offset is the level's global iteration offset.
	Offset int
	// Scale is the adaptive step scale (λ_t for the level set).
	Scale    float64
	PrevCost float64
	HasPrev  bool
	BestCost float64
	Evals    int
	// History holds the current level's iterations recorded so far
	// (globally numbered).
	History []IterStats
	// Done holds the completed coarser levels' merged history.
	Done      []IterStats
	DoneIters int
	DoneEvals int
	Watchdog  *obs.WatchdogState
	// State maps the method's field names ("psi", "theta", …) to
	// cloned grids.
	State map[string]*grid.Field
}

// WriteCheckpoint gob-encodes a checkpoint. The encoding is binary, so
// NaN/Inf costs survive a round trip bitwise.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error {
	return gob.NewEncoder(w).Encode(cp)
}

// ReadCheckpoint decodes a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	cp := new(Checkpoint)
	if err := gob.NewDecoder(r).Decode(cp); err != nil {
		return nil, fmt.Errorf("solve: decoding checkpoint: %w", err)
	}
	return cp, nil
}

// SaveCheckpoint writes a checkpoint to a file.
func SaveCheckpoint(path string, cp *Checkpoint) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCheckpoint(f, cp); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCheckpoint reads a checkpoint from a file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// Cancelled is the error Driver.Run (and everything layered on it)
// returns when the context is cancelled at an iteration boundary. It
// carries the checkpoint captured at that boundary and unwraps to the
// context's error, so errors.Is(err, context.Canceled) works and
// errors.As recovers the checkpoint.
type Cancelled struct {
	Checkpoint *Checkpoint
	cause      error
}

// NewCancelled wraps a cause and checkpoint — exposed for layers (like
// the tiled runner) that surface their own cancellation boundary.
func NewCancelled(cp *Checkpoint, cause error) *Cancelled {
	return &Cancelled{Checkpoint: cp, cause: cause}
}

func (c *Cancelled) Error() string {
	return fmt.Sprintf("solve: %s run cancelled at iteration %d: %v",
		c.Checkpoint.Method, c.Checkpoint.Offset+c.Checkpoint.Iter, c.cause)
}

// Unwrap returns the cancellation cause (usually context.Canceled or
// context.DeadlineExceeded).
func (c *Cancelled) Unwrap() error { return c.cause }
