package solve

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"strconv"
	"time"

	"lsopc/internal/grid"
	"lsopc/internal/litho"
	"lsopc/internal/obs"
)

// LevelConfig describes one resolution level of a schedule to
// Program.Level.
type LevelConfig struct {
	// MaxIter is the level's iteration budget.
	MaxIter int
	// Offset is the global iteration number of the level's first step.
	Offset int
	// State is the previous level's upsampled hand-off (ψ or θ), nil on
	// the first level run (including a level being resumed from a
	// checkpoint, whose state arrives via Driver.Restore instead).
	State *grid.Field
	// Coarse marks every level except the final full-resolution one;
	// methods disable final-mask-only bookkeeping (keep-best,
	// snapshots, cleanup) on coarse levels.
	Coarse bool
}

// Program adapts a method (core, pixelilt) to the multi-resolution
// runner: it builds one Driver per level and owns the state
// interpolation between levels.
type Program interface {
	// Level builds the driver for one level. finish is invoked with the
	// level's outcome after a successful run while the level's
	// resources are still live (methods assemble their final masks
	// there); cleanup releases the level's scratch and is always called
	// after the level ends, success or not.
	Level(sim *litho.Simulator, target *grid.Field, cfg LevelConfig) (drv *Driver, finish func(*Outcome), cleanup func(), err error)
	// Upsample lifts the evolving state onto a 2× finer grid (the
	// method decides whether to redistance afterwards).
	Upsample(state *grid.Field) *grid.Field
	// TraceName tags level_switch events ("" omits the field).
	TraceName() string
}

// RunLevels executes a coarse-to-fine schedule over the program:
// Algorithm 1 on a downsampled grid first, halving the factor each
// level, finishing at full resolution on sim itself. Coarse sessions
// are created on exactly-truncated kernel banks (sharing sim's resource
// pool) and released before the next level starts; histories
// concatenate with globally renumbered iterations and each hand-off
// emits a level_switch trace event.
//
// offset seeds the global iteration numbering. A non-nil resume
// checkpoint fast-forwards the schedule to the checkpointed level and
// restores its driver, continuing bit-identically. On cancellation the
// returned *Cancelled checkpoint is annotated with the schedule
// position (factor, completed levels' history) so resume can rebuild
// the whole run.
func RunLevels(ctx context.Context, sim *litho.Simulator, target *grid.Field, sched Schedule, prog Program, sink obs.Sink, trace string, offset int, resume *Checkpoint) (*Outcome, error) {
	total := &Outcome{}
	globalIter := offset
	start := 0
	if resume != nil {
		start = -1
		for li, f := range sched.Factors {
			if f == resume.Factor {
				start = li
				break
			}
		}
		if start < 0 {
			return nil, fmt.Errorf("solve: checkpoint level factor %d is not in the schedule %v", resume.Factor, sched.Factors)
		}
		total.History = append(total.History, resume.Done...)
		total.Evals = resume.DoneEvals
		globalIter = resume.DoneIters
		total.Iterations = globalIter
	}

	var state *grid.Field // hand-off, already at the next level's resolution
	for li := start; li < len(sched.Factors); li++ {
		f := sched.Factors[li]
		lsim := sim
		var csim *litho.Simulator
		if f > 1 {
			cres, err := sim.Resources().Coarse(f)
			if err != nil {
				return nil, err
			}
			ccfg := sim.Config()
			ccfg.Optics = cres.Optics()
			csim, err = litho.NewSession(cres, ccfg, sim.Engine())
			if err != nil {
				return nil, err
			}
			lsim = csim
		}
		ltarget := target
		if f > 1 {
			// The coarse target is the box-averaged design re-binarised
			// at half coverage — the same pattern at the coarse pitch.
			ltarget = target.Downsample(f)
			ltarget.Binarize(ltarget)
		}

		drv, finish, cleanup, err := prog.Level(lsim, ltarget, LevelConfig{
			MaxIter: sched.Iters[li],
			Offset:  globalIter,
			State:   state,
			Coarse:  f > 1,
		})
		if err != nil {
			if csim != nil {
				csim.Release()
			}
			return nil, err
		}
		if resume != nil && li == start {
			if err := drv.Restore(resume); err != nil {
				cleanup()
				if csim != nil {
					csim.Release()
				}
				return nil, err
			}
		}
		out, err := runLevel(ctx, drv, lsim.GridSize())
		if err != nil {
			// Annotate the level checkpoint with the schedule position
			// so resume can rebuild the surrounding levels.
			var c *Cancelled
			if errors.As(err, &c) {
				c.Checkpoint.Factor = f
				c.Checkpoint.Done = append([]IterStats(nil), total.History...)
				c.Checkpoint.DoneIters = globalIter
				c.Checkpoint.DoneEvals = total.Evals
			}
			cleanup()
			if csim != nil {
				csim.Release()
			}
			return nil, err
		}
		if out.AbortCheckpoint != nil {
			// Same schedule-position annotation for watchdog aborts, so
			// the postmortem checkpoint resumes through RunLevels too.
			out.AbortCheckpoint.Factor = f
			out.AbortCheckpoint.Done = append([]IterStats(nil), total.History...)
			out.AbortCheckpoint.DoneIters = globalIter
			out.AbortCheckpoint.DoneEvals = total.Evals
		}
		finish(out)
		cleanup()
		if csim != nil {
			csim.Release()
		}

		total.History = append(total.History, out.History...)
		globalIter += out.Iterations
		total.Iterations = globalIter
		total.Evals += out.Evals

		if f == 1 {
			// Final full-resolution level: the outcome is the run's.
			total.Converged = out.Converged
			total.Aborted = out.Aborted
			total.AbortReason = out.AbortReason
			total.AbortCheckpoint = out.AbortCheckpoint
			total.Snapshots = out.Snapshots
			total.BestCost = out.BestCost
			total.State = out.State
			return total, nil
		}
		if out.Aborted {
			// A poisoned coarse run must not feed the next level.
			// Surface the abort with the state lifted to full resolution
			// so the result shape matches the caller's grid.
			total.Aborted = true
			total.AbortReason = out.AbortReason
			total.AbortCheckpoint = out.AbortCheckpoint
			st := out.State
			for lift := f; lift > 1; lift /= 2 {
				st = prog.Upsample(st)
			}
			total.State = st
			return total, nil
		}

		// Hand-off: interpolate onto the next level's grid.
		interpStart := time.Now()
		state = prog.Upsample(out.State)
		if sink != nil {
			sink.Emit(obs.Event{
				Type:   obs.EventLevelSwitch,
				Trace:  trace,
				Name:   prog.TraceName(),
				Engine: sim.Engine().Name(),
				Iter:   globalIter,
				OldN:   out.State.W,
				N:      state.W,
				DurNS:  time.Since(interpStart).Nanoseconds(),
			})
		}
	}
	return total, nil
}

// runLevel executes one level's driver under a `level` pprof label (the
// level's grid edge), composing with the run_id/phase labels Driver.Run
// applies, so CPU profiles of a coarse-to-fine run slice per level.
func runLevel(ctx context.Context, drv *Driver, gridN int) (out *Outcome, err error) {
	pprof.Do(ctx, pprof.Labels("level", strconv.Itoa(gridN)), func(ctx context.Context) {
		out, err = drv.Run(ctx)
	})
	return out, err
}
