package solve

// Schedule is a resolved multi-resolution iteration plan: one entry per
// level, coarsest first, always ending at full resolution (factor 1).
type Schedule struct {
	Factors []int // grid downsample factor per level
	Iters   []int // iteration budget per level
}

// Levels returns the number of levels in the schedule.
func (s Schedule) Levels() int { return len(s.Factors) }

// Total returns the scheduled iteration count. It can exceed maxIter
// only when the degenerate-budget clamps padded levels to one
// iteration each.
func (s Schedule) Total() int {
	t := 0
	for _, n := range s.Iters {
		t += n
	}
	return t
}

// Plan splits an iteration budget across the coarse-to-fine schedule —
// the arithmetic core and pixelilt used to duplicate. With factor ≤ 1
// it degenerates to a single full-resolution level holding the whole
// budget. Otherwise each coarse level (factor, factor/2, …, 2) runs
// perLevel iterations — defaulting to maxIter/2 split evenly across the
// coarse levels — and full resolution gets the remainder. Every level
// is clamped to at least one iteration, so a budget smaller than the
// level count still visits every resolution (and then overruns maxIter
// by the padding).
func Plan(maxIter, factor, perLevel int) Schedule {
	if factor <= 1 {
		return Schedule{Factors: []int{1}, Iters: []int{maxIter}}
	}
	numCoarse := 0
	for f := factor; f > 1; f /= 2 {
		numCoarse++
	}
	perCoarse := perLevel
	if perCoarse == 0 {
		perCoarse = maxIter / (2 * numCoarse)
	}
	if perCoarse < 1 {
		perCoarse = 1
	}
	fine := maxIter - numCoarse*perCoarse
	if fine < 1 {
		fine = 1
	}
	s := Schedule{
		Factors: make([]int, 0, numCoarse+1),
		Iters:   make([]int, 0, numCoarse+1),
	}
	for f := factor; f > 1; f /= 2 {
		s.Factors = append(s.Factors, f)
		s.Iters = append(s.Iters, perCoarse)
	}
	s.Factors = append(s.Factors, 1)
	s.Iters = append(s.Iters, fine)
	return s
}
