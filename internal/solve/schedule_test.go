package solve

import (
	"reflect"
	"testing"
)

// TestPlanSchedules pins the coarse-to-fine budget split — including the
// degenerate clamps — for the one scheduler core and pixelilt now share.
func TestPlanSchedules(t *testing.T) {
	cases := []struct {
		name            string
		maxIter, factor int
		perLevel        int
		factors, iters  []int
		totalOverBudget bool
	}{
		{"single level", 10, 1, 0, []int{1}, []int{10}, false},
		{"factor zero degenerates", 10, 0, 5, []int{1}, []int{10}, false},
		{"default split factor 2", 100, 2, 0, []int{2, 1}, []int{50, 50}, false},
		{"default split factor 4", 100, 4, 0, []int{4, 2, 1}, []int{25, 25, 50}, false},
		{"explicit per-level", 9, 2, 5, []int{2, 1}, []int{5, 4}, false},
		{"per-level eats the budget", 6, 2, 10, []int{2, 1}, []int{10, 1}, true},
		{"budget below level count", 2, 8, 0, []int{8, 4, 2, 1}, []int{1, 1, 1, 1}, true},
		{"budget one", 1, 2, 0, []int{2, 1}, []int{1, 1}, true},
		{"tiny default per-coarse clamps", 3, 4, 0, []int{4, 2, 1}, []int{1, 1, 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Plan(tc.maxIter, tc.factor, tc.perLevel)
			if !reflect.DeepEqual(s.Factors, tc.factors) || !reflect.DeepEqual(s.Iters, tc.iters) {
				t.Fatalf("Plan(%d, %d, %d) = %v/%v, want %v/%v",
					tc.maxIter, tc.factor, tc.perLevel, s.Factors, s.Iters, tc.factors, tc.iters)
			}
			if s.Levels() != len(tc.factors) {
				t.Fatalf("Levels() = %d, want %d", s.Levels(), len(tc.factors))
			}
			if over := s.Total() > tc.maxIter; over != tc.totalOverBudget {
				t.Fatalf("Total() = %d vs budget %d: overrun %v, want %v", s.Total(), tc.maxIter, over, tc.totalOverBudget)
			}
			// Invariants every schedule keeps: ends at full resolution,
			// halving factors, every level gets at least one iteration.
			if s.Factors[len(s.Factors)-1] != 1 {
				t.Fatalf("schedule %v does not end at full resolution", s.Factors)
			}
			for i, n := range s.Iters {
				if n < 1 {
					t.Fatalf("level %d scheduled %d iterations", i, n)
				}
			}
			for i := 1; i < len(s.Factors); i++ {
				if prev := s.Factors[i-1]; s.Factors[i] != prev/2 && !(s.Factors[i] == 1 && prev == 2) {
					t.Fatalf("factors %v do not halve", s.Factors)
				}
			}
		})
	}
}
